package marp

// Benchmarks regenerating every figure in the paper's evaluation (§4) plus
// the ablations in DESIGN.md. Each benchmark runs the corresponding harness
// experiment at reduced scale (the full-scale sweeps are produced by
// cmd/marpbench) and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` prints the series the paper plots:
//
//	BenchmarkFigure2_ALT         — avg lock-acquisition time (ms)
//	BenchmarkFigure3_ATT         — avg total update time (ms)
//	BenchmarkFigure4_PRK         — % of locks obtained with 3 visits
//	BenchmarkCompareProtocols    — MARP vs message passing, WAN ATT ratio
//	BenchmarkMigrationBounds     — Theorem 3 mean winner visits
//	BenchmarkAblationInfoSharing — A1
//	BenchmarkAblationRouting     — A2
//	BenchmarkAblationBatching    — A3
//	BenchmarkFailureInjection    — A4
import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/harness"
)

func quickOpts(seed int64) harness.FigureOptions {
	return harness.FigureOptions{Quick: true, Seed: seed, RequestsPerServer: 15}
}

// BenchmarkFigure2Sweep runs the same quick Figure 2 grid at parallelism 1
// and at GOMAXPROCS, so `go test -bench Figure2Sweep` shows the sweep
// engine's wall-clock speedup directly (the results themselves are identical
// at every setting — see TestSweepParallelismDeterminism).
func BenchmarkFigure2Sweep(b *testing.B) {
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := quickOpts(int64(i + 1))
				opts.Parallelism = par
				if _, _, err := harness.Figure2(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure2_ALT(b *testing.B) {
	var lastHigh, lastLow float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.Figure2(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		lastHigh = float64(results[0].Summary.MeanALT) / 1e6             // fastest arrivals, 3 servers
		lastLow = float64(results[len(results)-1].Summary.MeanALT) / 1e6 // slowest arrivals, 5 servers
	}
	b.ReportMetric(lastHigh, "alt-highrate-ms")
	b.ReportMetric(lastLow, "alt-lowrate-ms")
}

func BenchmarkFigure3_ATT(b *testing.B) {
	var lastHigh, lastLow float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.Figure3(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		lastHigh = float64(results[0].Summary.MeanATT) / 1e6
		lastLow = float64(results[len(results)-1].Summary.MeanATT) / 1e6
	}
	b.ReportMetric(lastHigh, "att-highrate-ms")
	b.ReportMetric(lastLow, "att-lowrate-ms")
}

func BenchmarkFigure4_PRK(b *testing.B) {
	var prk3Fast, prk3Slow, prk5Fast float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.Figure4(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		first, last := results[0], results[len(results)-1]
		prk3Fast = first.Summary.PRK(3)
		prk5Fast = first.Summary.PRK(5)
		prk3Slow = last.Summary.PRK(3)
	}
	b.ReportMetric(prk5Fast, "prk5-highrate-%")
	b.ReportMetric(prk3Fast, "prk3-highrate-%")
	b.ReportMetric(prk3Slow, "prk3-lowrate-%")
}

func BenchmarkCompareProtocols(b *testing.B) {
	var marpWAN, mcvWAN, ratio float64
	for i := 0; i < b.N; i++ {
		opts := quickOpts(int64(i + 1))
		opts.RequestsPerServer = 8
		opts.Means = []time.Duration{60 * time.Millisecond}
		opts.Servers = []int{5}
		_, results, err := harness.CompareProtocols(opts)
		if err != nil {
			b.Fatal(err)
		}
		// Results are ordered preset-major, protocol-minor:
		// lan{marp,mcv,ac,primary}, wan{marp,mcv,ac,primary}.
		marpWAN = float64(results[4].Summary.MeanATT) / 1e6
		mcvWAN = float64(results[5].Summary.MeanATT) / 1e6
		if marpWAN > 0 {
			ratio = mcvWAN / marpWAN
		}
	}
	b.ReportMetric(marpWAN, "marp-wan-att-ms")
	b.ReportMetric(mcvWAN, "mcv-wan-att-ms")
	b.ReportMetric(ratio, "mcv/marp-att")
}

func BenchmarkMigrationBounds(b *testing.B) {
	var mean5 float64
	for i := 0; i < b.N; i++ {
		opts := quickOpts(int64(i + 1))
		opts.RequestsPerServer = 10
		_, results, err := harness.MigrationBounds(opts)
		if err != nil {
			b.Fatal(err)
		}
		mean5 = results[1].Summary.MeanVisits() // N=5 row
	}
	b.ReportMetric(mean5, "winner-visits-n5")
}

func BenchmarkAblationInfoSharing(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.AblationInfoSharing(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		on = float64(results[0].Summary.MeanALT) / 1e6
		off = float64(results[1].Summary.MeanALT) / 1e6
	}
	b.ReportMetric(on, "alt-sharing-on-ms")
	b.ReportMetric(off, "alt-sharing-off-ms")
}

func BenchmarkAblationRouting(b *testing.B) {
	var ordered, random float64
	for i := 0; i < b.N; i++ {
		opts := quickOpts(int64(i + 1))
		opts.RequestsPerServer = 8
		_, results, err := harness.AblationRouting(opts)
		if err != nil {
			b.Fatal(err)
		}
		ordered = float64(results[0].Summary.MeanATT) / 1e6
		random = float64(results[1].Summary.MeanATT) / 1e6
	}
	b.ReportMetric(ordered, "att-cost-ordered-ms")
	b.ReportMetric(random, "att-random-ms")
}

func BenchmarkAblationBatching(b *testing.B) {
	var batch1, batch8 float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.AblationBatching(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		batch1 = float64(results[0].Summary.MeanATT) / 1e6
		batch8 = float64(results[len(results)-1].Summary.MeanATT) / 1e6
	}
	b.ReportMetric(batch1, "att-batch1-ms")
	b.ReportMetric(batch8, "att-batch8-ms")
}

func BenchmarkFailureInjection(b *testing.B) {
	var committedFrac float64
	for i := 0; i < b.N; i++ {
		opts := quickOpts(int64(i + 1))
		opts.RequestsPerServer = 8
		_, results, err := harness.FailureInjection(opts)
		if err != nil {
			b.Fatal(err)
		}
		worst := results[len(results)-1].Summary
		if worst.Count > 0 {
			committedFrac = 100 * float64(worst.Count-worst.Failures) / float64(worst.Count)
		}
	}
	b.ReportMetric(committedFrac, "committed-2crashes-%")
}

// BenchmarkProtocolThroughput measures raw simulator throughput: committed
// updates per wall-clock second across a contended 5-server cluster. This is
// the engineering metric (how fast the reproduction runs), not a paper
// figure.
func BenchmarkProtocolThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(Options{Servers: 5, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			j := j
			c.After(time.Duration(j)*2*time.Millisecond, func() {
				_ = c.Submit(NodeID(j%5+1), Set("hot", "v"))
			})
		}
		c.RunFor(110 * time.Millisecond)
		if err := c.Run(5 * time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRatio(b *testing.B) {
	var opLatencyReadHeavy float64
	for i := 0; i < b.N; i++ {
		opts := quickOpts(int64(i + 1))
		_, results, err := harness.ReadRatio(opts)
		if err != nil {
			b.Fatal(err)
		}
		heavy := results[2] // 90% reads (the 99% row often has <1 update at quick scale)
		updates := heavy.Summary.Count - heavy.Summary.Failures
		totalOps := heavy.Config.RequestsPerServer * heavy.Config.N
		opLatencyReadHeavy = float64(heavy.Summary.MeanATT) / 1e6 * float64(updates) / float64(totalOps)
	}
	b.ReportMetric(opLatencyReadHeavy, "oplat-90%reads-ms")
}
