// Package marp is a Go implementation of MARP — the Mobile Agent enabled
// Replication Protocol of Cao, Chan and Wu, "Achieving Replication
// Consistency Using Cooperating Mobile Agents" (ICPP 2001).
//
// MARP maintains strict consistency across N replicated servers without the
// message storms of conventional quorum protocols: each update request is
// carried by a mobile agent that travels the replicas, enqueues itself in
// their Locking Lists, and wins the update permission when it heads the
// lists of a majority (Majority Consensus Voting). The winner reads the most
// recent copy from its quorum, broadcasts UPDATE, collects a majority of
// acknowledgements, broadcasts COMMIT, and releases. Reads are served by the
// local replica.
//
// The package is a facade over the full system in internal/:
//
//	internal/des      deterministic discrete-event simulator
//	internal/simnet   simulated network (latency models, partitions, costs)
//	internal/agent    mobile-agent platform emulation (state mobility)
//	internal/store    versioned replica store with a committed-update log
//	internal/replica  the replicated server (paper Algorithm 2)
//	internal/core     the mobile agent protocol (paper Algorithm 1) + cluster
//	internal/quorum   vote assignments and quorum arithmetic
//	internal/baseline message-passing comparators (MCV, available-copy, primary)
//	internal/workload request generators (exponential arrivals)
//	internal/metrics  ALT/ATT/PRK aggregation
//	internal/harness  the paper's experiments (Figures 2-4 and more)
//
// Quick start:
//
//	cluster, err := marp.NewCluster(marp.Options{Servers: 5, Seed: 42})
//	if err != nil { ... }
//	cluster.Submit(1, marp.Set("config", "v1"))
//	cluster.Run(time.Minute)
//	v, ok := cluster.Read(3, "config")
//
// Everything runs in deterministic virtual time: Run advances the simulation
// until the submitted updates commit. See the examples/ directory for
// runnable scenarios and cmd/marpbench for the paper's evaluation.
package marp

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// NodeID identifies one replicated server (1..Servers).
type NodeID = simnet.NodeID

// Request is a single update request.
type Request = core.Request

// Outcome describes one completed update batch (one agent).
type Outcome = core.Outcome

// Value is a versioned datum read from a replica.
type Value = store.Value

// Set returns a request that overwrites key with val.
func Set(key, val string) Request { return core.Set(key, val) }

// Append returns a read-modify-write request that appends val to the most
// recent committed value of key.
func Append(key, val string) Request { return core.Append(key, val) }

// Latency names a network environment.
type Latency string

// The built-in latency environments.
const (
	// LAN models a local network of workstations (sub-millisecond).
	LAN Latency = "lan"
	// Prototype models the paper's Aglets-on-LAN migration costs.
	Prototype Latency = "prototype"
	// WAN models wide-area Internet paths (tens of milliseconds).
	WAN Latency = "wan"
)

// Options configures a cluster. The zero value is usable: five servers on a
// simulated LAN.
type Options struct {
	// Servers is the number of replicas (default 5).
	Servers int
	// Seed makes the whole run reproducible (default 1).
	Seed int64
	// Latency selects the network environment (default LAN).
	Latency Latency
	// BatchSize dispatches one agent per this many requests (default 1).
	BatchSize int
	// BatchDelay flushes a partial batch after this delay (default 20ms
	// when BatchSize > 1).
	BatchDelay time.Duration
	// DisableInfoSharing turns off agent/server locking-information
	// exchange.
	DisableInfoSharing bool
	// RandomItinerary makes agents ignore routing costs.
	RandomItinerary bool
	// Votes assigns per-server vote weights (Gifford's weighted voting);
	// nil gives every server one vote, the paper's majority scheme.
	Votes map[NodeID]int
	// Shards partitions the key space into independent locking domains
	// (default 1, the paper's single-object system): each shard has its
	// own Locking Lists, sequence space, and quorums, and agents visit
	// only the replica group owning their keys.
	Shards int
	// GroupSize limits each shard's replica group to this many servers
	// (rendezvous-hashed); 0 replicates every shard everywhere.
	GroupSize int
	// Geometry selects the quorum construction: "majority" (default),
	// "grid" (O(sqrt N) write quorums), or "tree".
	Geometry string
	// CaptureTrace records a full protocol timeline, retrievable with
	// Cluster.Trace.
	CaptureTrace bool
}

// Cluster is a MARP deployment: N mobile-agent-enabled replicated servers on
// a simulated network, driven in deterministic virtual time.
type Cluster struct {
	inner *desengine.Cluster
	log   *trace.Log
}

// NewCluster assembles a cluster.
func NewCluster(o Options) (*Cluster, error) {
	if o.Servers == 0 {
		o.Servers = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	var model simnet.LatencyModel
	switch o.Latency {
	case LAN, "":
		model = simnet.LAN()
	case Prototype:
		model = simnet.Prototype()
	case WAN:
		model = simnet.WAN()
	default:
		return nil, fmt.Errorf("marp: unknown latency %q", o.Latency)
	}
	var log *trace.Log
	if o.CaptureTrace {
		log = trace.New(0)
	}
	batchDelay := o.BatchDelay
	if batchDelay == 0 && o.BatchSize > 1 {
		batchDelay = 20 * time.Millisecond
	}
	geometry, err := quorum.ParseGeometry(o.Geometry)
	if err != nil {
		return nil, fmt.Errorf("marp: %w", err)
	}
	inner, err := desengine.New(desengine.Config{
		Seed:    o.Seed,
		Latency: model,
		Cluster: core.Config{
			N:                  o.Servers,
			Votes:              o.Votes,
			Shards:             o.Shards,
			GroupSize:          o.GroupSize,
			Geometry:           geometry,
			BatchMaxRequests:   o.BatchSize,
			BatchMaxDelay:      batchDelay,
			DisableInfoSharing: o.DisableInfoSharing,
			RandomItinerary:    o.RandomItinerary,
			Trace:              log,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, log: log}, nil
}

// Servers returns the replica IDs.
func (c *Cluster) Servers() []NodeID { return c.inner.Nodes() }

// Submit queues update requests at a home server; a mobile agent carries
// them through the protocol. It returns an error for malformed requests.
func (c *Cluster) Submit(home NodeID, reqs ...Request) error {
	return c.inner.Submit(home, reqs...)
}

// Read serves a read from a replica's local copy — the paper's fast read
// path. It may be stale while updates are in flight; after Run it reflects
// every committed update.
func (c *Cluster) Read(node NodeID, key string) (Value, bool) {
	return c.inner.Read(node, key)
}

// ReadQuorum performs a consistent read (read quorum = majority), the
// one-copy-serializable extension of the paper's read-one scheme: it pays
// network round trips but always observes the most recent completed update.
// It advances virtual time until the quorum answers.
func (c *Cluster) ReadQuorum(home NodeID, key string) (Value, bool, error) {
	return c.inner.ReadQuorum(home, key, 30*time.Second)
}

// Run advances virtual time until every submitted update has committed (or
// maxVirtual elapses, which returns an error). It then lets in-flight
// commit messages settle and verifies the consistency invariants.
func (c *Cluster) Run(maxVirtual time.Duration) error {
	if err := c.inner.RunUntilDone(maxVirtual); err != nil {
		return err
	}
	c.inner.Settle(5 * time.Second)
	if err := c.inner.Referee().Err(); err != nil {
		return err
	}
	return c.inner.CheckConvergence()
}

// RunFor advances virtual time by d without waiting for completion.
func (c *Cluster) RunFor(d time.Duration) { c.inner.Settle(d) }

// After schedules fn at a virtual-time offset — the way to script crashes,
// submissions and probes inside a deterministic run.
func (c *Cluster) After(d time.Duration, fn func()) { c.inner.Engine().AfterFunc(d, fn) }

// Now returns the current virtual time since the start of the run.
func (c *Cluster) Now() time.Duration { return c.inner.Now().Duration() }

// Crash fail-stops a server: its volatile locking state is lost and agents
// hosted there die. Committed data survives on stable storage.
func (c *Cluster) Crash(node NodeID) { c.inner.Crash(node) }

// Recover restarts a crashed server; it pulls missed updates from its peers.
func (c *Cluster) Recover(node NodeID) { c.inner.Recover(node) }

// Outcomes returns per-agent results (latency, visits, retries) for every
// finished update batch.
func (c *Cluster) Outcomes() []Outcome { return c.inner.Outcomes() }

// Outstanding reports how many dispatched agents have not finished.
func (c *Cluster) Outstanding() int { return c.inner.Outstanding() }

// Trace returns the recorded protocol timeline (nil unless Options.
// CaptureTrace was set).
func (c *Cluster) Trace() []trace.Event {
	return c.log.Events()
}

// TraceString renders the recorded timeline, one event per line.
func (c *Cluster) TraceString() string {
	var out []byte
	for _, e := range c.log.Events() {
		out = append(out, e.String()...)
		out = append(out, '\n')
	}
	return string(out)
}

// Stats summarizes platform and network activity.
type Stats struct {
	Network simnet.Stats
	Agents  agent.Stats
}

// Stats returns traffic and agent-platform counters for the run so far.
func (c *Cluster) Stats() Stats {
	return Stats{Network: c.inner.NetStats(), Agents: c.inner.Platform().Stats()}
}

// Internal returns the underlying simulated cluster for advanced use
// (benchmark harness, tests).
func (c *Cluster) Internal() *desengine.Cluster { return c.inner }
