// Command marpbench regenerates the paper's evaluation: every figure of
// "Achieving Replication Consistency Using Cooperating Mobile Agents"
// (Cao, Chan, Wu — ICPP 2001) plus the comparisons and ablations indexed in
// DESIGN.md. Output is one aligned table per experiment, with the same rows
// and series the paper plots.
//
// Usage:
//
//	marpbench                  # run everything at full scale
//	marpbench -exp f2,f4       # only Figures 2 and 4
//	marpbench -exp help        # list every experiment with its description
//	marpbench -quick           # reduced scale (seconds instead of minutes)
//	marpbench -seed 7          # different random seed
//	marpbench -latency wan     # latency preset for the figure sweeps
//	marpbench -requests 100    # requests per server per run
//	marpbench -parallel 8      # sweep-point workers (results identical at any value)
//	marpbench -cpuprofile p.out -memprofile m.out   # pprof the run
//
// Every sweep point is an independent deterministic simulation, so -parallel
// fans the grid across goroutines without changing a single output digit:
// parallelism buys wall-clock time only. Per-experiment wall-clock is
// printed so the speedup is visible.
//
// Experiments: f2 f3 f4 c1 t3 a1 a2 a3 a4 a5 a6 a7 a8 a9 a10 (see DESIGN.md §4).
// Unknown -exp names are rejected; the list above, `-exp help`, and the
// DESIGN.md per-experiment index enumerate the same set.
//
// Separately from the figure experiments, `-exp replay -scenario <file>`
// re-executes a recorded incident bundle on the DES engine and checks its
// per-key commit digests (DESIGN.md §12). Exit status: 0 = digests match,
// 1 = mismatch (a per-key diff is printed), 2 = malformed or unreadable
// bundle — the same operator-error status an unknown -exp name gets.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

var experiments = []string{"f2", "f3", "f4", "c1", "t3", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10"}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments to run ("+strings.Join(experiments, ",")+"), all, or help")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		seed     = flag.Int64("seed", 1, "random seed")
		latency  = flag.String("latency", "lan", "latency preset for figure sweeps: lan, prototype, wan")
		requests = flag.Int("requests", 0, "requests per server per run (0 = experiment default)")
		seeds    = flag.Int("seeds", 1, "replications per sweep point for Figures 2-3 (mean±sd)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep-point worker goroutines (1 = sequential; results are identical at any value)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		scenPath = flag.String("scenario", "", "incident bundle to replay (with -exp replay)")
	)
	flag.Parse()

	if *expFlag == "replay" {
		os.Exit(runReplay(*scenPath))
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	// run does the real work so deferred profile writers flush before the
	// process exits (os.Exit skips defers).
	os.Exit(run(*expFlag, *cpuProf, *memProf, harness.FigureOptions{
		Seed:              *seed,
		Seeds:             *seeds,
		Quick:             *quick,
		RequestsPerServer: *requests,
		Latency:           harness.LatencyPreset(*latency),
		Parallelism:       *parallel,
	}))
}

func run(expFlag, cpuProf, memProf string, opts harness.FigureOptions) int {
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if memProf != "" {
		defer func() {
			f, err := os.Create(memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
			}
		}()
	}

	// Experiments produce one table each, except A7 (three: overhead,
	// recovery, raw replay) and A8 (two: simulator and live) — run
	// therefore yields a slice.
	type experiment struct {
		id   string
		name string
		run  func(harness.FigureOptions) ([]*metrics.Table, error)
		// isolate re-execs the experiment in a child process when it runs
		// as part of a multi-experiment batch. A9 measures wall-clock
		// throughput whose gob baseline is GC-pacing-bound: the live heap
		// the preceding experiments leave behind raises the pacer's goal
		// and moves that one row ±15% between a fresh process and a warm
		// one. Isolation makes the batch measure the same fresh process
		// that `marpbench -exp a9` — the documented reproduce line — does.
		isolate bool
	}
	table := func(f func(harness.FigureOptions) (*metrics.Table, []harness.RunResult, error)) func(harness.FigureOptions) ([]*metrics.Table, error) {
		return func(o harness.FigureOptions) ([]*metrics.Table, error) {
			t, _, err := f(o)
			return []*metrics.Table{t}, err
		}
	}
	all := []experiment{
		{id: "f2", name: "Figure 2 (ALT)", run: table(harness.Figure2)},
		{id: "f3", name: "Figure 3 (ATT)", run: table(harness.Figure3)},
		{id: "f4", name: "Figure 4 (PRK)", run: table(harness.Figure4)},
		{id: "c1", name: "Comparison vs message passing", run: table(harness.CompareProtocols)},
		{id: "t3", name: "Theorem 3 migration bounds", run: table(harness.MigrationBounds)},
		{id: "a1", name: "Ablation: information sharing", run: table(harness.AblationInfoSharing)},
		{id: "a2", name: "Ablation: itinerary routing", run: table(harness.AblationRouting)},
		{id: "a3", name: "Ablation: request batching", run: table(harness.AblationBatching)},
		{id: "a4", name: "Ablation: failure injection", run: func(o harness.FigureOptions) ([]*metrics.Table, error) {
			t, _, err := harness.FailureInjection(o)
			return []*metrics.Table{t}, err
		}},
		{id: "a5", name: "Ablation: read-to-update ratio", run: table(harness.ReadRatio)},
		{id: "a6", name: "Ablation: chaos (loss x partition churn)", run: func(o harness.FigureOptions) ([]*metrics.Table, error) {
			t, _, err := harness.Chaos(o)
			if err != nil {
				return nil, err
			}
			// The optimistic protocol rides the same grid: no reliable-
			// delivery machinery, one digest-verified stable prefix required.
			opt, _, err := harness.ChaosOptimistic(o)
			return []*metrics.Table{t, opt}, err
		}},
		{id: "a7", name: "Durability: WAL overhead and crash recovery", run: harness.Durability},
		{id: "a8", name: "Ablation: keyspace sharding throughput", run: harness.Sharding},
		{id: "a9", name: "Ablation: live-path raw speed (codec/pipelining/group commit)", run: harness.LiveSpeed, isolate: true},
		{id: "a10", name: "Ablation: optimistic asynchronous commitment (WAN showdown)", run: harness.Optimistic},
	}

	// The flag, the doc comment, and the experiment table must enumerate
	// the same set — DESIGN.md's per-experiment index is keyed off it.
	if len(all) != len(experiments) {
		panic("marpbench: experiments list out of sync with the experiment table")
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.id] = true
	}

	if expFlag == "help" || expFlag == "list" {
		for _, e := range all {
			fmt.Printf("%-3s  %s\n", e.id, e.name)
		}
		fmt.Printf("%-3s  %s\n", "replay", "Replay an incident bundle on the DES engine (needs -scenario <file>)")
		return 0
	}
	want := map[string]bool{}
	if expFlag == "all" {
		for _, e := range experiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(expFlag, ",") {
			e = strings.TrimSpace(strings.ToLower(e))
			if e == "" {
				continue
			}
			if e == "replay" {
				fmt.Fprintln(os.Stderr, "marpbench: -exp replay must be the only experiment (and needs -scenario <file>)")
				return 2
			}
			if !known[e] {
				fmt.Fprintf(os.Stderr, "marpbench: unknown experiment %q (want %s, all, or help)\n",
					e, strings.Join(experiments, ","))
				return 2
			}
			want[e] = true
		}
	}

	ran := 0
	total := time.Now()
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		ran++
		if e.isolate && len(want) > 1 {
			if err := reexec(e.id, opts); err == nil {
				continue // the child printed its table and timing line
			} else {
				fmt.Fprintf(os.Stderr, "marpbench: isolated %s re-exec failed (%v); running in-process\n", e.id, err)
			}
		}
		start := time.Now()
		tbls, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "marpbench: %s failed: %v\n", e.id, err)
			return 1
		}
		for _, tbl := range tbls {
			if err := tbl.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
				return 1
			}
		}
		fmt.Printf("  [%s completed in %.2fs wall clock, parallel=%d]\n\n",
			e.id, time.Since(start).Seconds(), opts.Parallelism)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "marpbench: no experiments matched %q (want %s or all)\n",
			expFlag, strings.Join(experiments, ","))
		return 2
	}
	if ran > 1 {
		fmt.Printf("[%d experiments in %.2fs total]\n", ran, time.Since(total).Seconds())
	}
	return 0
}

// runReplay deterministically re-executes one incident bundle on the DES
// engine and checks invariant 14 (equal per-key commit digests). Exit
// status is scripting-grade: 0 match, 1 mismatch (with a per-key diff) or
// replay failure, 2 malformed/unreadable bundle.
func runReplay(path string) int {
	if path == "" {
		fmt.Fprintln(os.Stderr, "marpbench: -exp replay needs -scenario <bundle.jsonl>")
		return 2
	}
	b, err := scenario.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
		return 2
	}
	fmt.Printf("replaying %s: %d servers, %d events, %d recorded commits over %v\n",
		b.Header.Name, b.Header.Servers, len(b.Events), b.Digest.Commits, b.Span().Round(time.Millisecond))
	start := time.Now()
	res, err := scenario.Replay(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marpbench: %v\n", err)
		if errors.Is(err, scenario.ErrMalformed) {
			return 2
		}
		return 1
	}
	if !res.OK() {
		fmt.Printf("DIGEST MISMATCH: %d divergence(s)\n", len(res.Mismatches))
		for _, m := range res.Mismatches {
			fmt.Printf("  %s\n", m)
		}
		return 1
	}
	fmt.Printf("ok: %d commits, %d keys, digests match the recording (%.2fs wall clock)\n",
		res.Commits, len(res.Keys), time.Since(start).Seconds())
	return 0
}

// reexec runs a single experiment in a child marpbench process (see the
// isolate field), forwarding every option that shapes its output and
// inheriting stdout so the table lands in sequence with the batch's.
func reexec(id string, opts harness.FigureOptions) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	args := []string{
		"-exp", id,
		"-seed", fmt.Sprint(opts.Seed),
		"-seeds", fmt.Sprint(opts.Seeds),
		"-requests", fmt.Sprint(opts.RequestsPerServer),
		"-latency", string(opts.Latency),
		"-parallel", fmt.Sprint(opts.Parallelism),
	}
	if opts.Quick {
		args = append(args, "-quick")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}
