package main

import (
	"net"
	"strings"
	"testing"
	"time"

	marp "repro"
	"repro/internal/transport"
)

// TestFanoutDeadEndpoint pins the partial-failure contract: the sweep
// still reaches the live processes, and the returned error names exactly
// the addresses that failed (marpctl exits non-zero on it).
func TestFanoutDeadEndpoint(t *testing.T) {
	srv, err := transport.Serve("127.0.0.1:0", marp.Options{Servers: 3}, 1)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	// A port that was listening a moment ago and no longer is: the
	// canonical dead cluster process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	visited := 0
	err = fanout([]string{srv.Addr(), deadAddr}, time.Second, func(cli *transport.Client) error {
		visited++
		return cli.Heal()
	})
	if err == nil {
		t.Fatal("fanout with a dead endpoint returned nil error")
	}
	if visited != 1 {
		t.Errorf("fn ran %d time(s), want 1 (live endpoint only)", visited)
	}
	if !strings.Contains(err.Error(), deadAddr) {
		t.Errorf("error does not name the dead endpoint %s: %v", deadAddr, err)
	}
	if strings.Contains(err.Error(), srv.Addr()) {
		t.Errorf("error blames the live endpoint %s: %v", srv.Addr(), err)
	}

	// All endpoints alive: no error, every process visited.
	visited = 0
	if err := fanout([]string{srv.Addr()}, time.Second, func(cli *transport.Client) error {
		visited++
		return cli.Heal()
	}); err != nil || visited != 1 {
		t.Errorf("healthy fanout: err = %v, visited = %d", err, visited)
	}
}
