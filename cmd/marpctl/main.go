// Command marpctl is the client for a marpd service.
//
// Usage:
//
//	marpctl [-addr host:port] [-timeout 5s] [-guard expected] submit <home> <key> <value>
//	marpctl [-addr host:port] append <home> <key> <value>
//	marpctl [-addr host:port] read <node> <key>
//	marpctl [-addr host:port] crash <node>
//	marpctl [-addr host:port] recover <node>
//	marpctl [-addrs a,b,c] partition <groups>   (e.g. "1,2/3")
//	marpctl [-addrs a,b,c] heal
//	marpctl [-addr host:port] [-json] digest <node>
//	marpctl [-addr host:port] [-json] referee
//	marpctl [-addr host:port] stats
//	marpctl spec expand <cluster.toml|cluster.json>
//
// Connecting retries up to three times with exponential backoff (covers the
// common race of starting marpd and marpctl together); -timeout bounds each
// request/response exchange once connected (0 disables the deadline).
// -json switches digest and referee output to one JSON object per line,
// for scripts (the CI restart-smoke gate parses it).
//
// partition and heal fan out to every address in -addrs (default: just
// -addr): a live cluster's fabric filters at the endpoints, so each process
// must be told about the split. The sweep visits every address even when
// one is down, then exits non-zero naming each process that missed the
// command. Incident recording rides along:
//
//	marpctl -record <dir> crash 3            # inject AND record the fault
//	marpctl -record <dir> record-fault crash 3   # record only (kill -9 etc.)
//	marpctl -record <dir> -addrs a,b,c snapshot-scenario -name my-incident -out my.jsonl
//
// snapshot-scenario queries every process, refuses unclean captures (failed
// or outstanding requests, diverged digests — exit 1), merges the spool
// files marpd -record and marpctl -record wrote, and writes one replayable
// bundle (replay it with `marpbench -exp replay -scenario <file>`).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/clusterspec"
	"repro/internal/scenario"
	"repro/internal/transport"
)

// dialRetry connects to addr, retrying with exponential backoff (100ms,
// 200ms) between attempts so a service still binding its socket is not a
// fatal error.
func dialRetry(addr string, attempts int) (*transport.Client, error) {
	backoff := 100 * time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var cli *transport.Client
		if cli, err = transport.Dial(addr); err == nil {
			return cli, nil
		}
	}
	return nil, fmt.Errorf("%v (after %d attempts)", err, attempts)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: marpctl [-addr host:port] <command> [args]
commands:
  submit <home> <key> <value>   update key from server <home> (-guard <expected> for optimistic CAS)
  append <home> <key> <value>   read-modify-write append
  read <node> <key>             read the local copy at server <node>
  crash <node>                  fail-stop a server
  recover <node>                restart a crashed server
  partition <groups>            split the network, e.g. "1,2/3" (all -addrs)
  heal                          remove all partitions, trigger anti-entropy (all -addrs)
  record-fault <kind> [args]    record a fault event without injecting it
  snapshot-scenario             finalize a recorded incident into a bundle
  digest <node>                 kind-tagged digest of a replica's store (optimistic: stable + tentative tiers)
  referee                       kind-tagged verdict: lock grants/violations, or stable-prefix agreement
  stats                         service counters
  spec expand <file>            print the per-node marpd flag sets a cluster spec derives
flags: -addr host:port, -addrs a,b,c (partition/heal/snapshot-scenario),
       -timeout 5s, -json (digest/referee), -record <dir> (fault spooling),
       -name/-note/-seed/-out (snapshot-scenario)`)
	os.Exit(2)
}

// parseGroups turns "1,2/3" into partition groups [[1 2] [3]].
func parseGroups(spec string) ([][]int, error) {
	var groups [][]int
	for _, part := range strings.Split(spec, "/") {
		var g []int
		for _, s := range strings.Split(part, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad node id %q in groups %q", s, spec)
			}
			g = append(g, n)
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("empty partition groups %q", spec)
	}
	return groups, nil
}

// fanout applies fn to every address — the partition/heal injection path,
// where each live process must hear the same command. A failing address
// does not stop the sweep: the remaining processes are still told, and
// the returned error names every address that failed so the operator
// knows exactly which processes missed the command.
func fanout(addrs []string, timeout time.Duration, fn func(*transport.Client) error) error {
	var errs []error
	for _, a := range addrs {
		err := func() error {
			cli, err := dialRetry(a, 3)
			if err != nil {
				return err
			}
			defer cli.Close()
			cli.SetRequestTimeout(timeout)
			return fn(cli)
		}()
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", a, err))
		}
	}
	return errors.Join(errs...)
}

// record appends one fault event to the -record spool (no-op without it).
func record(dir string, e scenario.Event) {
	if dir == "" {
		return
	}
	rec, err := scenario.OpenRecorder(dir, "ctl")
	if err != nil {
		fatal(err)
	}
	if err := rec.Record(e); err != nil {
		fatal(err)
	}
	if err := rec.Close(); err != nil {
		fatal(err)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "marpd address")
	addrsFlag := flag.String("addrs", "", "comma-separated addresses of every cluster process (partition, heal, snapshot-scenario); default: -addr")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
	asJSON := flag.Bool("json", false, "machine-readable output (digest, referee)")
	guard := flag.String("guard", "", "CAS guard for submit against an optimistic service: the expected last stable value, or !unwritten (empty = unconditional; MARP services reject guards)")
	recordDir := flag.String("record", "", "incident spool directory: crash/recover/partition/heal/record-fault append scenario events here")
	name := flag.String("name", "incident", "scenario name (snapshot-scenario)")
	note := flag.String("note", "", "scenario note (snapshot-scenario)")
	seed := flag.Int64("seed", 1, "replay seed stamped into the bundle header (snapshot-scenario)")
	out := flag.String("out", "", "bundle output path (snapshot-scenario; default <name>.jsonl)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	addrs := []string{*addr}
	if *addrsFlag != "" {
		addrs = addrs[:0]
		for _, a := range strings.Split(*addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			fatal(fmt.Errorf("empty -addrs"))
		}
	}

	node := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad server id %q", s))
		}
		return n
	}

	// Multi-process and offline commands first — they manage their own
	// connections (or none at all).
	switch args[0] {
	case "spec":
		if len(args) != 3 || args[1] != "expand" {
			usage()
		}
		s, err := clusterspec.Load(args[2])
		if err != nil {
			fatal(err)
		}
		if s.Name != "" {
			fmt.Printf("# cluster %q: %d node(s)\n", s.Name, len(s.Nodes))
		}
		for _, id := range s.IDs() {
			fmt.Printf("marpd %s\n", strings.Join(s.Flags(id), " "))
		}
		return
	case "partition":
		if len(args) != 2 {
			usage()
		}
		groups, err := parseGroups(args[1])
		if err != nil {
			fatal(err)
		}
		if err := fanout(addrs, *timeout, func(cli *transport.Client) error {
			return cli.Partition(groups)
		}); err != nil {
			fatal(err)
		}
		record(*recordDir, scenario.Event{Kind: scenario.KindPartition, Groups: groups})
		fmt.Printf("ok: partitioned %s at %d process(es)\n", args[1], len(addrs))
		return
	case "heal":
		if len(args) != 1 {
			usage()
		}
		if err := fanout(addrs, *timeout, func(cli *transport.Client) error {
			return cli.Heal()
		}); err != nil {
			fatal(err)
		}
		record(*recordDir, scenario.Event{Kind: scenario.KindHeal})
		fmt.Printf("ok: healed %d process(es)\n", len(addrs))
		return
	case "record-fault":
		if *recordDir == "" {
			fatal(fmt.Errorf("record-fault needs -record <dir>"))
		}
		record(*recordDir, parseFault(args[1:], node))
		fmt.Println("ok: fault recorded")
		return
	case "snapshot-scenario":
		if len(args) != 1 {
			usage()
		}
		snapshotScenario(addrs, *timeout, *recordDir, *name, *note, *seed, *out)
		return
	}

	cli, err := dialRetry(*addr, 3)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(*timeout)

	switch args[0] {
	case "submit", "append":
		if len(args) != 4 {
			usage()
		}
		if args[0] == "append" {
			if *guard != "" {
				fatal(fmt.Errorf("-guard applies to submit only (optimistic read-modify-write is submit -guard <expected>)"))
			}
			if err := cli.Submit(node(args[1]), args[2], args[3], true); err != nil {
				fatal(err)
			}
			fmt.Println("ok: agent dispatched")
			return
		}
		txn, err := cli.SubmitCAS(node(args[1]), args[2], args[3], *guard)
		if err != nil {
			fatal(err)
		}
		if txn != "" {
			// An optimistic service names the transaction it tentatively
			// committed; a MARP service dispatched an agent.
			fmt.Printf("ok: %s tentatively committed\n", txn)
		} else {
			fmt.Println("ok: agent dispatched")
		}
	case "read":
		if len(args) != 3 {
			usage()
		}
		value, seq, found, err := cli.Read(node(args[1]), args[2])
		if err != nil {
			fatal(err)
		}
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s (update #%d)\n", value, seq)
	case "crash":
		if len(args) != 2 {
			usage()
		}
		if err := cli.Crash(node(args[1])); err != nil {
			fatal(err)
		}
		record(*recordDir, scenario.Event{Kind: scenario.KindCrash, Node: node(args[1])})
		fmt.Println("ok: server crashed")
	case "recover":
		if len(args) != 2 {
			usage()
		}
		if err := cli.Recover(node(args[1])); err != nil {
			fatal(err)
		}
		record(*recordDir, scenario.Event{Kind: scenario.KindRecover, Node: node(args[1])})
		fmt.Println("ok: server recovering")
	case "digest":
		if len(args) != 2 {
			usage()
		}
		resp, err := cli.DigestReport(node(args[1]))
		if err != nil {
			fatal(err)
		}
		kind := resp.Kind
		if kind == "" {
			kind = transport.DigestKindCommitSet // pre-kind server
		}
		if *asJSON {
			out := map[string]any{
				"node": node(args[1]), "kind": kind,
				"digest": resp.Value, "commits": int(resp.Seq),
				"queue_drops": resp.QueueDrops,
			}
			// Optimistic services report both tiers, per-key digests
			// included; "digest"/"commits" above alias the stable tier.
			if resp.Stable != nil {
				out["stable"] = resp.Stable
			}
			if resp.Tentative != nil {
				out["tentative"] = resp.Tentative
			}
			if len(resp.Shards) > 0 {
				out["shards"] = resp.Shards
			}
			printJSON(out)
			return
		}
		if kind == transport.DigestKindStablePrefix && resp.Stable != nil && resp.Tentative != nil {
			fmt.Printf("stable    %s (%d entries, %d keys)\n", resp.Stable.Digest, resp.Stable.Entries, len(resp.Stable.Keys))
			fmt.Printf("tentative %s (%d entries, %d keys)\n", resp.Tentative.Digest, resp.Tentative.Entries, len(resp.Tentative.Keys))
		} else {
			fmt.Printf("%s (%d commits)\n", resp.Value, resp.Seq)
		}
		if resp.QueueDrops > 0 {
			fmt.Printf("  warning: %d fabric queue drops at this process\n", resp.QueueDrops)
		}
		for _, sh := range resp.Shards {
			fmt.Printf("  shard %-3d %s (%d commits, %d requests, alt %.2fms, att %.2fms, %.1f visits)\n",
				sh.Shard, sh.Digest, sh.Commits, sh.Requests, sh.MeanALTMs, sh.MeanATTMs, sh.MeanVisits)
		}
	case "referee":
		resp, err := cli.RefereeReport()
		if err != nil {
			fatal(err)
		}
		kind := resp.Kind
		if kind == "" {
			kind = transport.RefereeKindGrants // pre-kind server
		}
		if *asJSON {
			printJSON(map[string]any{"kind": kind, "wins": resp.Wins, "violations": resp.Violations})
			return
		}
		if kind == transport.DigestKindStablePrefix {
			fmt.Printf("stable-prefix elections %d, divergences %d\n", resp.Wins, resp.Violations)
		} else {
			fmt.Printf("wins %d, violations %d\n", resp.Wins, resp.Violations)
		}
	case "stats":
		st, err := cli.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("servers      %d\n", st.Servers)
		fmt.Printf("committed    %d\n", st.Committed)
		fmt.Printf("failed       %d\n", st.Failed)
		fmt.Printf("outstanding  %d\n", st.Outstanding)
		fmt.Printf("messages     %d (%d bytes)\n", st.Messages, st.Bytes)
		fmt.Printf("migrations   %d\n", st.Migrations)
		fmt.Printf("virtual time %dms\n", st.VirtualMs)
	default:
		usage()
	}
}

// parseFault builds the scenario event for a record-fault command:
//
//	record-fault crash <node> | recover <node> | partition <groups> |
//	             heal | lossy <probability> | fsyncstall <duration>
//
// record-fault writes the spool without touching the cluster — for faults
// injected outside marpctl, like a kill -9 of a replica process or a real
// disk stall.
func parseFault(args []string, node func(string) int) scenario.Event {
	bad := func() scenario.Event {
		fatal(fmt.Errorf("bad record-fault %q (want crash/recover <node>, partition <groups>, heal, lossy <p>, fsyncstall <duration>)", strings.Join(args, " ")))
		panic("unreachable")
	}
	if len(args) == 0 {
		return bad()
	}
	switch args[0] {
	case "crash", "recover":
		if len(args) != 2 {
			return bad()
		}
		kind := scenario.KindCrash
		if args[0] == "recover" {
			kind = scenario.KindRecover
		}
		return scenario.Event{Kind: kind, Node: node(args[1])}
	case "partition":
		if len(args) != 2 {
			return bad()
		}
		groups, err := parseGroups(args[1])
		if err != nil {
			fatal(err)
		}
		return scenario.Event{Kind: scenario.KindPartition, Groups: groups}
	case "heal":
		if len(args) != 1 {
			return bad()
		}
		return scenario.Event{Kind: scenario.KindHeal}
	case "lossy":
		if len(args) != 2 {
			return bad()
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			fatal(fmt.Errorf("bad loss probability %q", args[1]))
		}
		return scenario.Event{Kind: scenario.KindLossy, Loss: p}
	case "fsyncstall":
		if len(args) != 2 {
			return bad()
		}
		d, err := time.ParseDuration(args[1])
		if err != nil {
			fatal(fmt.Errorf("bad fsync stall %q", args[1]))
		}
		return scenario.Event{Kind: scenario.KindFsyncStall, StallUS: d.Microseconds()}
	}
	return bad()
}

// snapshotScenario finalizes a recorded incident: it queries every process
// for its scenario snapshot, refuses unclean captures, merges the spool
// directory, and writes one bundle. The cleanliness rules exist because a
// replay arms agent regeneration under a validated fault plane, so every
// recorded submit WILL commit — a capture with failed or still-outstanding
// requests could never digest-match its own replay.
func snapshotScenario(addrs []string, timeout time.Duration, dir, name, note string, seed int64, out string) {
	if dir == "" {
		fatal(fmt.Errorf("snapshot-scenario needs -record <dir>"))
	}
	var ref *transport.ScenarioBody
	var refAddr string
	commits, failed, outstanding := 0, 0, 0
	// Digests of different kinds (a MARP commit-set vs an optimistic stable
	// prefix) are incomparable by construction: name the mismatch instead of
	// diffing the key maps as if they meant the same thing. Empty means a
	// pre-kind server — commit-set.
	kindOf := func(b *transport.ScenarioBody) string {
		if b.DigestKind == "" {
			return transport.DigestKindCommitSet
		}
		return b.DigestKind
	}
	for _, a := range addrs {
		cli, err := dialRetry(a, 3)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", a, err))
		}
		cli.SetRequestTimeout(timeout)
		body, err := cli.Scenario()
		cli.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", a, err))
		}
		commits += body.Commits
		failed += body.Failed
		outstanding += body.Outstanding
		if ref == nil {
			ref, refAddr = body, a
			continue
		}
		if body.Servers != ref.Servers || body.Shards != ref.Shards ||
			body.Geometry != ref.Geometry || body.Fsync != ref.Fsync {
			fatal(fmt.Errorf("%s and %s disagree on the cluster shape", refAddr, a))
		}
		if kindOf(body) != kindOf(ref) {
			fatal(fmt.Errorf("%s reports %s digests but %s reports %s; refusing to compare mixed digest kinds",
				refAddr, kindOf(ref), a, kindOf(body)))
		}
		if diffs := scenario.DiffDigests(ref.Keys, body.Keys); len(diffs) > 0 {
			fatal(fmt.Errorf("%s and %s have not converged (%s); heal/recover and retry", refAddr, a, diffs[0]))
		}
	}
	if kindOf(ref) != transport.DigestKindCommitSet {
		fatal(fmt.Errorf("capture digests are %q: replay bundles verify commit-set digests, and the replayer drives the MARP protocol only", kindOf(ref)))
	}
	if failed > 0 {
		fatal(fmt.Errorf("unclean capture: %d failed request(s); a replay cannot reproduce lost submissions", failed))
	}
	if outstanding > 0 {
		fatal(fmt.Errorf("capture still settling: %d outstanding request(s); retry when drained", outstanding))
	}
	hdr := scenario.Header{
		Name:          name,
		Servers:       ref.Servers,
		Seed:          seed,
		Shards:        ref.Shards,
		Geometry:      ref.Geometry,
		Fsync:         ref.Fsync,
		CommitDelayUS: ref.CommitDelayUS,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Note:          note,
	}
	dig := scenario.Digest{Commits: commits, Keys: ref.Keys}
	b, err := scenario.Finalize(dir, hdr, dig)
	if err != nil {
		fatal(err)
	}
	if out == "" {
		out = name + ".jsonl"
	}
	if err := b.WriteFile(out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d servers, %d events, %d commits, %d keys\n",
		out, hdr.Servers, len(b.Events), commits, len(b.Digest.Keys))
}

// printJSON writes one sorted-key JSON object per line to stdout.
func printJSON(v map[string]any) {
	b, err := json.Marshal(v)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "marpctl: %v\n", err)
	os.Exit(1)
}
