// Command marpctl is the client for a marpd service.
//
// Usage:
//
//	marpctl [-addr host:port] [-timeout 5s] submit <home> <key> <value>
//	marpctl [-addr host:port] append <home> <key> <value>
//	marpctl [-addr host:port] read <node> <key>
//	marpctl [-addr host:port] crash <node>
//	marpctl [-addr host:port] recover <node>
//	marpctl [-addr host:port] [-json] digest <node>
//	marpctl [-addr host:port] [-json] referee
//	marpctl [-addr host:port] stats
//
// Connecting retries up to three times with exponential backoff (covers the
// common race of starting marpd and marpctl together); -timeout bounds each
// request/response exchange once connected (0 disables the deadline).
// -json switches digest and referee output to one JSON object per line,
// for scripts (the CI restart-smoke gate parses it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/transport"
)

// dialRetry connects to addr, retrying with exponential backoff (100ms,
// 200ms) between attempts so a service still binding its socket is not a
// fatal error.
func dialRetry(addr string, attempts int) (*transport.Client, error) {
	backoff := 100 * time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var cli *transport.Client
		if cli, err = transport.Dial(addr); err == nil {
			return cli, nil
		}
	}
	return nil, fmt.Errorf("%v (after %d attempts)", err, attempts)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: marpctl [-addr host:port] <command> [args]
commands:
  submit <home> <key> <value>   update key via a mobile agent from server <home>
  append <home> <key> <value>   read-modify-write append
  read <node> <key>             read the local copy at server <node>
  crash <node>                  fail-stop a server
  recover <node>                restart a crashed server
  digest <node>                 commit-set digest of a replica's store
  referee                       grants and single-claimant violations
  stats                         service counters
flags: -addr host:port, -timeout 5s, -json (digest/referee)`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "marpd address")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
	asJSON := flag.Bool("json", false, "machine-readable output (digest, referee)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	cli, err := dialRetry(*addr, 3)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(*timeout)

	node := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad server id %q", s))
		}
		return n
	}

	switch args[0] {
	case "submit", "append":
		if len(args) != 4 {
			usage()
		}
		if err := cli.Submit(node(args[1]), args[2], args[3], args[0] == "append"); err != nil {
			fatal(err)
		}
		fmt.Println("ok: agent dispatched")
	case "read":
		if len(args) != 3 {
			usage()
		}
		value, seq, found, err := cli.Read(node(args[1]), args[2])
		if err != nil {
			fatal(err)
		}
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s (update #%d)\n", value, seq)
	case "crash":
		if len(args) != 2 {
			usage()
		}
		if err := cli.Crash(node(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok: server crashed")
	case "recover":
		if len(args) != 2 {
			usage()
		}
		if err := cli.Recover(node(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok: server recovering")
	case "digest":
		if len(args) != 2 {
			usage()
		}
		digest, commits, shards, drops, err := cli.DigestShards(node(args[1]))
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			out := map[string]any{"node": node(args[1]), "digest": digest, "commits": commits, "queue_drops": drops}
			if len(shards) > 0 {
				out["shards"] = shards
			}
			printJSON(out)
			return
		}
		fmt.Printf("%s (%d commits)\n", digest, commits)
		if drops > 0 {
			fmt.Printf("  warning: %d fabric queue drops at this process\n", drops)
		}
		for _, sh := range shards {
			fmt.Printf("  shard %-3d %s (%d commits, %d requests, alt %.2fms, att %.2fms, %.1f visits)\n",
				sh.Shard, sh.Digest, sh.Commits, sh.Requests, sh.MeanALTMs, sh.MeanATTMs, sh.MeanVisits)
		}
	case "referee":
		wins, violations, err := cli.Referee()
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			printJSON(map[string]any{"wins": wins, "violations": violations})
			return
		}
		fmt.Printf("wins %d, violations %d\n", wins, violations)
	case "stats":
		st, err := cli.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("servers      %d\n", st.Servers)
		fmt.Printf("committed    %d\n", st.Committed)
		fmt.Printf("failed       %d\n", st.Failed)
		fmt.Printf("outstanding  %d\n", st.Outstanding)
		fmt.Printf("messages     %d (%d bytes)\n", st.Messages, st.Bytes)
		fmt.Printf("migrations   %d\n", st.Migrations)
		fmt.Printf("virtual time %dms\n", st.VirtualMs)
	default:
		usage()
	}
}

// printJSON writes one sorted-key JSON object per line to stdout.
func printJSON(v map[string]any) {
	b, err := json.Marshal(v)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "marpctl: %v\n", err)
	os.Exit(1)
}
