package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestGenerateScenarioCorpus re-captures the named incident bundles under
// scenarios/ from real live clusters. It is a generator, not a gate: it
// only runs with UPDATE_SCENARIO_BUNDLES=1, spawns marpd/marpctl processes
// for each scenario, and verifies every captured bundle replays cleanly on
// the DES engine before leaving it on disk. The checked-in bundles are
// replayed by TestScenarioCorpus (and the CI scenario gate) on every run.
func TestGenerateScenarioCorpus(t *testing.T) {
	if os.Getenv("UPDATE_SCENARIO_BUNDLES") == "" {
		t.Skip("generator; run with UPDATE_SCENARIO_BUNDLES=1 to re-capture scenarios/")
	}
	bin := t.TempDir()
	marpd := filepath.Join(bin, "marpd")
	marpctl := filepath.Join(bin, "marpctl")
	for path, pkg := range map[string]string{marpd: "repro/cmd/marpd", marpctl: "repro/cmd/marpctl"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	outDir, err := filepath.Abs(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}

	t.Run("wan-geo-split", func(t *testing.T) {
		h := newCorpusHarness(t, marpd, marpctl, 5, false, nil)
		for w := 0; w < 5; w++ {
			h.write(w+1, fmt.Sprintf("geo-%d", w))
		}
		h.converge(1, 2, 3, 4, 5)
		h.ctl("partition", "1,2,3/4,5")
		for w := 0; w < 6; w++ {
			h.write(w%3+1, fmt.Sprintf("split-%d", w))
		}
		h.converge(1, 2, 3)
		h.ctl("heal")
		h.converge(1, 2, 3, 4, 5)
		h.snapshot("wan-geo-split", 11,
			"two-site geo split: the three-replica site keeps committing, the minority site repairs on heal",
			filepath.Join(outDir, "wan-geo-split.jsonl"))
	})

	t.Run("thundering-herd", func(t *testing.T) {
		h := newCorpusHarness(t, marpd, marpctl, 3, false, nil)
		for w := 0; w < 3; w++ {
			h.write(w+1, fmt.Sprintf("warm-%d", w))
		}
		// The herd: every home hammers the same key back to back.
		for w := 0; w < 12; w++ {
			h.write(w%3+1, "hot")
		}
		h.converge(1, 2, 3)
		h.snapshot("thundering-herd", 13,
			"twelve agents from three homes contend on one hot key; no faults, pure lock contention",
			filepath.Join(outDir, "thundering-herd.jsonl"))
	})

	t.Run("rolling-restart", func(t *testing.T) {
		h := newCorpusHarness(t, marpd, marpctl, 3, true, nil)
		// Sustained load homes at process 1, which never restarts — a killed
		// process forgets its outcome counters, and the capture requires them.
		for w := 0; w < 3; w++ {
			h.write(1, fmt.Sprintf("roll-a%d", w))
		}
		h.converge(1, 2, 3)
		for _, victim := range []int{3, 2} {
			h.ctl("record-fault", "crash", fmt.Sprint(victim))
			h.kill(victim)
			for w := 0; w < 2; w++ {
				h.write(1, fmt.Sprintf("roll-down%d-%d", victim, w))
			}
			h.convergeExcept(victim)
			h.ctl("record-fault", "recover", fmt.Sprint(victim))
			h.restart(victim)
			h.converge(1, 2, 3)
		}
		h.write(1, "roll-final")
		h.converge(1, 2, 3)
		h.snapshot("rolling-restart", 17,
			"kill -9 and restart each follower in turn under sustained load; WAL replay plus anti-entropy repair",
			filepath.Join(outDir, "rolling-restart.jsonl"))
	})

	t.Run("fsync-stall", func(t *testing.T) {
		h := newCorpusHarness(t, marpd, marpctl, 3, true, []string{"-commit-delay", "200us"})
		for w := 0; w < 3; w++ {
			h.write(w%2+1, fmt.Sprintf("fs-a%d", w))
		}
		h.converge(1, 2, 3)
		// The stall is out of band (a real slow disk cannot be injected
		// through the protocol); the replay retargets the modelled fsync
		// latency of its in-memory disks.
		h.ctl("record-fault", "fsyncstall", "2ms")
		for w := 0; w < 4; w++ {
			h.write(w%2+1, fmt.Sprintf("fs-b%d", w))
		}
		h.converge(1, 2, 3)
		h.ctl("record-fault", "fsyncstall", "0s")
		h.write(1, "fs-c0")
		h.converge(1, 2, 3)
		h.snapshot("fsync-stall", 23,
			"fsync=commit with group commit on; a 2ms disk stall window mid-run, then the disk recovers",
			filepath.Join(outDir, "fsync-stall.jsonl"))
	})
}

// corpusHarness drives one live cluster for a scenario capture.
type corpusHarness struct {
	t              *testing.T
	marpd, marpctl string
	n              int
	client         []string
	dataDirs       []string
	spool          string
	procs          []*exec.Cmd
	clients        []*clientConn
	peers          string
	extra          []string
	writes         int
}

func newCorpusHarness(t *testing.T, marpd, marpctl string, n int, durable bool, extra []string) *corpusHarness {
	t.Helper()
	h := &corpusHarness{
		t: t, marpd: marpd, marpctl: marpctl, n: n,
		client:   make([]string, n+1),
		dataDirs: make([]string, n+1),
		spool:    t.TempDir(),
		procs:    make([]*exec.Cmd, n+1),
		clients:  make([]*clientConn, n+1),
		extra:    extra,
	}
	fabric := make([]string, n+1)
	var peerSpec []string
	for i := 1; i <= n; i++ {
		fabric[i] = freePort(t)
		h.client[i] = freePort(t)
		if durable {
			h.dataDirs[i] = t.TempDir()
		}
		peerSpec = append(peerSpec, fmt.Sprintf("%d=%s", i, fabric[i]))
	}
	h.peers = strings.Join(peerSpec, ",")
	for i := 1; i <= n; i++ {
		h.restart(i)
	}
	t.Cleanup(func() {
		for i := 1; i <= n; i++ {
			if h.procs[i] != nil && h.procs[i].Process != nil {
				h.procs[i].Process.Kill()
				h.procs[i].Wait()
			}
		}
	})
	return h
}

// restart (re)starts process i with the scenario's standing flags.
func (h *corpusHarness) restart(i int) {
	h.t.Helper()
	args := []string{
		"-mode", "live",
		"-node", fmt.Sprint(i),
		"-peers", h.peers,
		"-addr", h.client[i],
		"-record", h.spool,
	}
	if h.dataDirs[i] != "" {
		args = append(args, "-data-dir", h.dataDirs[i], "-fsync", "commit")
	}
	args = append(args, h.extra...)
	cmd := exec.Command(h.marpd, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		h.t.Fatalf("starting replica %d: %v", i, err)
	}
	h.procs[i] = cmd
	h.clients[i] = &clientConn{c: dialWait(h.t, h.client[i], 10*time.Second)}
}

// kill delivers the out-of-band kill -9.
func (h *corpusHarness) kill(i int) {
	h.t.Helper()
	if err := h.procs[i].Process.Kill(); err != nil {
		h.t.Fatal(err)
	}
	h.procs[i].Wait()
	h.clients[i].close()
}

func (h *corpusHarness) ctl(args ...string) {
	h.t.Helper()
	full := append([]string{"-record", h.spool, "-addrs", h.liveAddrs()}, args...)
	out, err := exec.Command(h.marpctl, full...).CombinedOutput()
	if err != nil {
		h.t.Fatalf("marpctl %s: %v\n%s", strings.Join(args, " "), err, out)
	}
}

// liveAddrs lists the client addresses of processes currently running.
func (h *corpusHarness) liveAddrs() string {
	var addrs []string
	for i := 1; i <= h.n; i++ {
		if h.procs[i] != nil && h.procs[i].ProcessState == nil {
			addrs = append(addrs, h.client[i])
		}
	}
	return strings.Join(addrs, ",")
}

func (h *corpusHarness) write(home int, key string) {
	h.t.Helper()
	if err := h.clients[home].c.Submit(home, key, fmt.Sprintf("val-%d", h.writes), false); err != nil {
		h.t.Fatalf("submit %s via process %d: %v", key, home, err)
	}
	h.writes++
}

func (h *corpusHarness) converge(ids ...int) {
	h.t.Helper()
	type digestLine struct {
		Digest  string `json:"digest"`
		Commits int    `json:"commits"`
	}
	end := time.Now().Add(45 * time.Second)
	for {
		ds := make([]digestLine, len(ids))
		ok := true
		for j, id := range ids {
			out, err := exec.Command(h.marpctl, "-json", "-addr", h.client[id], "digest", fmt.Sprint(id)).Output()
			if err != nil {
				h.t.Fatalf("marpctl -json digest %d: %v", id, err)
			}
			if err := json.Unmarshal(out, &ds[j]); err != nil {
				h.t.Fatalf("parsing digest JSON %q: %v", out, err)
			}
			if ds[j].Commits < h.writes || ds[j].Digest != ds[0].Digest {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(end) {
			h.t.Fatalf("processes %v did not converge on >= %d commits: %+v", ids, h.writes, ds)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (h *corpusHarness) convergeExcept(victim int) {
	var ids []int
	for i := 1; i <= h.n; i++ {
		if i != victim {
			ids = append(ids, i)
		}
	}
	h.converge(ids...)
}

// snapshot finalizes the capture and proves the bundle replays before it is
// allowed into the corpus.
func (h *corpusHarness) snapshot(name string, seed int64, note, outPath string) {
	h.t.Helper()
	h.ctl("-name", name, "-seed", fmt.Sprint(seed), "-note", note, "-out", outPath, "snapshot-scenario")
	b, err := scenario.ReadFile(outPath)
	if err != nil {
		h.t.Fatalf("captured bundle does not read back: %v", err)
	}
	res, err := scenario.Replay(b)
	if err != nil {
		h.t.Fatalf("captured bundle does not replay: %v", err)
	}
	if !res.OK() {
		h.t.Fatalf("captured bundle diverges from its own replay: %v", res.Mismatches)
	}
	h.t.Logf("captured %s: %d events, %d commits, %d keys", name, len(b.Events), b.Digest.Commits, len(b.Digest.Keys))
}
