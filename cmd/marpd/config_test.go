package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The resolveLive errors below are exactly the cases marpd exits 2 on:
// operator mistakes in -peers or -spec caught before anything listens.

func baseFlags() liveFlags {
	return liveFlags{
		Node:     2,
		Peers:    "1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803",
		Addr:     "127.0.0.1:7707",
		Seed:     1,
		Fsync:    "commit",
		Shards:   1,
		Geometry: "majority",
		Codec:    "wire",
	}
}

func TestResolveLivePeers(t *testing.T) {
	cfg, client, opsAddr, err := resolveLive(baseFlags())
	if err != nil {
		t.Fatalf("resolveLive: %v", err)
	}
	if cfg.Self != 2 || len(cfg.Addrs) != 3 || cfg.Addrs[3] != "127.0.0.1:7803" {
		t.Errorf("cfg = %+v", cfg)
	}
	if client != "127.0.0.1:7707" || opsAddr != "" {
		t.Errorf("client = %q, ops = %q", client, opsAddr)
	}
}

func TestResolveLivePeerErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*liveFlags)
		wantErr string
	}{
		{"duplicate node id", func(f *liveFlags) {
			f.Peers = "1=127.0.0.1:7801,1=127.0.0.1:7802"
			f.Node = 1
		}, "duplicate peer id"},
		{"missing self entry", func(f *liveFlags) { f.Node = 9 }, "no entry for this process"},
		{"zero node id", func(f *liveFlags) { f.Node = 0 }, "want >= 1"},
		{"unparseable addr", func(f *liveFlags) {
			f.Peers = "1=127.0.0.1:7801,2=localhost"
		}, "bad address"},
		{"malformed peer entry", func(f *liveFlags) { f.Peers = "oops" }, "want id=host:port"},
		{"bad geometry", func(f *liveFlags) { f.Geometry = "ring" }, "geometry"},
	}
	for _, c := range cases {
		f := baseFlags()
		c.mutate(&f)
		if _, _, _, err := resolveLive(f); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestResolveLiveSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "cluster.toml")
	if err := os.WriteFile(specPath, []byte(`
shards = 2
geometry = "majority"
fsync = "none"
commit_delay = "150us"
seed = 11
data_root = "`+dir+`"

[[node]]
id = 1
fabric = "127.0.0.1:7801"
client = "127.0.0.1:7707"
ops = "127.0.0.1:9101"

[[node]]
id = 2
fabric = "127.0.0.1:7802"
client = "127.0.0.1:7708"
ops = "127.0.0.1:9102"

[[node]]
id = 3
fabric = "127.0.0.1:7803"
client = "127.0.0.1:7709"
ops = "127.0.0.1:9103"
`), 0o644); err != nil {
		t.Fatal(err)
	}
	f := baseFlags()
	f.Peers = ""
	f.Spec = specPath
	cfg, client, opsAddr, err := resolveLive(f)
	if err != nil {
		t.Fatalf("resolveLive(spec): %v", err)
	}
	if cfg.Self != 2 || len(cfg.Addrs) != 3 || cfg.Fsync != "none" || cfg.Seed != 11 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.CommitDelay != 150*time.Microsecond {
		t.Errorf("CommitDelay = %v", cfg.CommitDelay)
	}
	if cfg.Cluster.Shards != 2 {
		t.Errorf("Shards = %d", cfg.Cluster.Shards)
	}
	if cfg.DataDir != filepath.Join(dir, "node-2") {
		t.Errorf("DataDir = %q", cfg.DataDir)
	}
	if client != "127.0.0.1:7708" || opsAddr != "127.0.0.1:9102" {
		t.Errorf("client = %q, ops = %q", client, opsAddr)
	}

	// The spec must contain this process's node.
	f.Node = 9
	if _, _, _, err := resolveLive(f); err == nil || !strings.Contains(err.Error(), "no node 9") {
		t.Errorf("missing node err = %v", err)
	}

	// A spec that fails validation (duplicate IDs) is rejected.
	badPath := filepath.Join(dir, "bad.toml")
	os.WriteFile(badPath, []byte("[[node]]\nid = 1\nfabric = \"127.0.0.1:1\"\n[[node]]\nid = 1\nfabric = \"127.0.0.1:2\"\n"), 0o644)
	f = baseFlags()
	f.Spec, f.Peers, f.Node = badPath, "", 1
	if _, _, _, err := resolveLive(f); err == nil || !strings.Contains(err.Error(), "duplicate node id") {
		t.Errorf("duplicate-id spec err = %v", err)
	}
}
