package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestScenarioRecordReplay is the incident record/replay pipeline end to
// end, at deployment granularity: three durable marpd processes spool every
// accepted submit (-record), the operator injects a partition through
// marpctl and a kill -9 outside it (record-fault), snapshot-scenario merges
// the spools into one bundle, and the bundle replays deterministically on
// the DES engine with byte-equal per-key commit digests — DESIGN.md's
// invariant 14. A deliberately corrupted copy of the bundle must be
// rejected cleanly (exit 2), never panic.
//
// All writes are homed at processes 1 and 2: commit/failed counters live in
// process memory, so a kill -9 of process 3 must not take any accepted
// submission's accounting with it (its *data* recovers from the WAL and
// anti-entropy; the counter would not).
func TestScenarioRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and uses wall-clock timeouts")
	}
	bin := t.TempDir()
	marpd := filepath.Join(bin, "marpd")
	marpctl := filepath.Join(bin, "marpctl")
	marpbench := filepath.Join(bin, "marpbench")
	for path, pkg := range map[string]string{
		marpd: "repro/cmd/marpd", marpctl: "repro/cmd/marpctl", marpbench: "repro/cmd/marpbench",
	} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const n = 3
	fabric := make([]string, n+1)
	client := make([]string, n+1)
	dataDirs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		fabric[i] = freePort(t)
		client[i] = freePort(t)
		dataDirs[i] = t.TempDir()
	}
	var peerSpec []string
	for i := 1; i <= n; i++ {
		peerSpec = append(peerSpec, fmt.Sprintf("%d=%s", i, fabric[i]))
	}
	peers := strings.Join(peerSpec, ",")
	spool := t.TempDir()
	allAddrs := strings.Join(client[1:], ",")

	start := func(i int) *exec.Cmd {
		cmd := exec.Command(marpd,
			"-mode", "live",
			"-node", fmt.Sprint(i),
			"-peers", peers,
			"-addr", client[i],
			"-data-dir", dataDirs[i],
			"-fsync", "commit",
			"-record", spool)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting replica %d: %v", i, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, n+1)
	for i := 1; i <= n; i++ {
		procs[i] = start(i)
	}
	t.Cleanup(func() {
		for i := 1; i <= n; i++ {
			if procs[i] != nil && procs[i].Process != nil {
				procs[i].Process.Kill()
				procs[i].Wait()
			}
		}
	})

	clients := make([]*clientConn, n+1)
	for i := 1; i <= n; i++ {
		clients[i] = &clientConn{c: dialWait(t, client[i], 5*time.Second)}
		defer clients[i].close()
	}

	// ctl runs the marpctl binary with the shared spool and address book.
	ctl := func(args ...string) string {
		t.Helper()
		full := append([]string{"-record", spool, "-addrs", allAddrs}, args...)
		out, err := exec.Command(marpctl, full...).CombinedOutput()
		if err != nil {
			t.Fatalf("marpctl %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	type digestLine struct {
		Digest  string `json:"digest"`
		Commits int    `json:"commits"`
	}
	digestJSON := func(i int) digestLine {
		out, err := exec.Command(marpctl, "-json", "-addr", client[i], "digest", fmt.Sprint(i)).Output()
		if err != nil {
			t.Fatalf("marpctl -json digest %d: %v", i, err)
		}
		var d digestLine
		if err := json.Unmarshal(out, &d); err != nil {
			t.Fatalf("parsing digest JSON %q: %v", out, err)
		}
		return d
	}
	// converge waits until every listed process reports the same digest over
	// at least min commits.
	converge := func(min int, deadline time.Duration, ids ...int) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			ds := make([]digestLine, len(ids))
			ok := true
			for j, id := range ids {
				ds[j] = digestJSON(id)
				if ds[j].Commits < min || ds[j].Digest != ds[0].Digest {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("processes %v did not converge on >= %d commits: %+v", ids, min, ds)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	writes := 0
	write := func(home int, key string) {
		t.Helper()
		if err := clients[home].c.Submit(home, key, fmt.Sprintf("val-%d", writes), false); err != nil {
			t.Fatalf("submit %s via process %d: %v", key, home, err)
		}
		writes++
	}

	// Phase 1: calm traffic on both writer homes, full convergence.
	for w := 0; w < 4; w++ {
		write(w%2+1, fmt.Sprintf("calm-%d", w))
	}
	converge(writes, 30*time.Second, 1, 2, 3)

	// Phase 2: split {1,2} | {3}; the majority keeps committing.
	ctl("partition", "1,2/3")
	for w := 0; w < 4; w++ {
		write(w%2+1, fmt.Sprintf("split-%d", w))
	}
	converge(writes, 30*time.Second, 1, 2)

	// Phase 3: heal; anti-entropy repairs process 3.
	ctl("heal")
	converge(writes, 30*time.Second, 1, 2, 3)

	// Phase 4: kill -9 process 3 at a quiet, converged moment. The fault is
	// out of band, so it is recorded without being injected through the
	// protocol.
	ctl("record-fault", "crash", "3")
	if err := procs[3].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[3].Wait()
	clients[3].close()
	for w := 0; w < 4; w++ {
		write(w%2+1, fmt.Sprintf("down-%d", w))
	}
	converge(writes, 30*time.Second, 1, 2)

	// Phase 5: restart under the same data directory, record the recovery.
	ctl("record-fault", "recover", "3")
	procs[3] = start(3)
	clients[3] = &clientConn{c: dialWait(t, client[3], 10*time.Second)}
	write(1, "rejoin-0")
	converge(writes, 45*time.Second, 1, 2, 3)

	// Snapshot: merge the spools into one bundle.
	bundlePath := filepath.Join(t.TempDir(), "incident.jsonl")
	out := ctl("-name", "e2e-incident", "-seed", "7", "-note", "record/replay E2E",
		"-out", bundlePath, "snapshot-scenario")
	if !strings.Contains(out, "wrote "+bundlePath) {
		t.Fatalf("snapshot-scenario output: %s", out)
	}

	// The bundle carries the whole incident: every write, the split, the
	// heal, and the out-of-band crash/recover pair.
	b, err := scenario.ReadFile(bundlePath)
	if err != nil {
		t.Fatalf("reading the captured bundle: %v", err)
	}
	if b.Header.Servers != n || b.Header.Fsync != "commit" || b.Digest.Commits != writes {
		t.Fatalf("bundle header/footer off: %+v / commits %d, want %d servers, fsync commit, %d commits",
			b.Header, b.Digest.Commits, n, writes)
	}
	kinds := map[scenario.EventKind]int{}
	for _, e := range b.Events {
		kinds[e.Kind]++
	}
	if kinds[scenario.KindSubmit] != writes || kinds[scenario.KindPartition] != 1 ||
		kinds[scenario.KindHeal] != 1 || kinds[scenario.KindCrash] != 1 || kinds[scenario.KindRecover] != 1 {
		t.Fatalf("event census %v, want %d submits and one of each fault", kinds, writes)
	}

	// Invariant 14: the recorded live run and its DES replay produce equal
	// per-key commit digests — through the real marpbench binary, exit 0.
	replay, err := exec.Command(marpbench, "-exp", "replay", "-scenario", bundlePath).CombinedOutput()
	if err != nil {
		t.Fatalf("marpbench replay: %v\n%s", err, replay)
	}
	if !strings.Contains(string(replay), "digests match the recording") {
		t.Fatalf("replay output: %s", replay)
	}

	// A corrupted copy — the digest footer torn off mid-line — is rejected
	// with exit 2 and a malformed-bundle message, no panic.
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(filepath.Dir(bundlePath), "corrupt.jsonl")
	if err := os.WriteFile(corrupt, raw[:len(raw)-30], 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err := exec.Command(marpbench, "-exp", "replay", "-scenario", corrupt).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted bundle replayed successfully:\n%s", bad)
	}
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("corrupted bundle: err %v (want exit 2)\n%s", err, bad)
	}
	if strings.Contains(string(bad), "panic") {
		t.Fatalf("corrupted bundle panicked the replayer:\n%s", bad)
	}

	// A tampered footer digest is a *mismatch*: exit 1, with a per-key diff.
	tampered := filepath.Join(filepath.Dir(bundlePath), "tampered.jsonl")
	text := strings.Replace(string(raw), `"calm-0":"`, `"calm-0":"dead`, 1)
	if text == string(raw) {
		t.Fatal("tamper target key not found in bundle")
	}
	if err := os.WriteFile(tampered, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	mis, err := exec.Command(marpbench, "-exp", "replay", "-scenario", tampered).CombinedOutput()
	exit, ok = err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("tampered bundle: err %v (want exit 1)\n%s", err, mis)
	}
	if !strings.Contains(string(mis), "DIGEST MISMATCH") || !strings.Contains(string(mis), "calm-0") {
		t.Fatalf("tampered-bundle output missing the per-key diff:\n%s", mis)
	}
}
