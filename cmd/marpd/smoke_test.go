package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestLiveMultiProcessSmoke is the deployment-shaped end of the runtime
// seam: it builds the real marpd and marpctl binaries, spawns three live
// replica processes, drives ~50 submits and reads through the client
// protocol, and asserts that the processes converge on identical commit
// digests, that the per-process referees stay clean, and that SIGTERM shuts
// every process down with exit status 0.
func TestLiveMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and uses wall-clock timeouts")
	}
	bin := t.TempDir()
	marpd := filepath.Join(bin, "marpd")
	marpctl := filepath.Join(bin, "marpctl")
	for path, pkg := range map[string]string{marpd: "repro/cmd/marpd", marpctl: "repro/cmd/marpctl"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const n = 3
	fabric := make([]string, n+1) // replica-to-replica addresses, 1-based
	client := make([]string, n+1) // client protocol addresses, 1-based
	for i := 1; i <= n; i++ {
		fabric[i] = freePort(t)
		client[i] = freePort(t)
	}
	var peerSpec []string
	for i := 1; i <= n; i++ {
		peerSpec = append(peerSpec, fmt.Sprintf("%d=%s", i, fabric[i]))
	}
	peers := strings.Join(peerSpec, ",")

	procs := make([]*exec.Cmd, n+1)
	for i := 1; i <= n; i++ {
		cmd := exec.Command(marpd,
			"-mode", "live",
			"-node", fmt.Sprint(i),
			"-peers", peers,
			"-addr", client[i])
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting replica %d: %v", i, err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
	}

	// Connect one client per process, waiting out process startup.
	clients := make([]*transport.Client, n+1)
	for i := 1; i <= n; i++ {
		clients[i] = dialWait(t, client[i], 5*time.Second)
		defer clients[i].Close()
	}

	// ~50 writes, spread across all three processes; each process submits
	// for its own replica (a live process can only originate agents for the
	// node it hosts).
	const writes = 51
	for w := 0; w < writes; w++ {
		home := w%n + 1
		key := fmt.Sprintf("key-%d-%d", home, w)
		if err := clients[home].Submit(home, key, fmt.Sprintf("val-%d", w), false); err != nil {
			t.Fatalf("submit %d via process %d: %v", w, home, err)
		}
	}

	// Convergence: all three processes report the same digest over the same
	// number of commits (driven through the marpctl binary, as an operator
	// would).
	deadline := time.Now().Add(30 * time.Second)
	var digests [n + 1]string
	for {
		agree := true
		for i := 1; i <= n; i++ {
			out, err := exec.Command(marpctl, "-addr", client[i], "digest", fmt.Sprint(i)).Output()
			if err != nil {
				t.Fatalf("marpctl digest %d: %v", i, err)
			}
			digests[i] = strings.TrimSpace(string(out))
			if !strings.Contains(digests[i], fmt.Sprintf("(%d commits)", writes)) || digests[i] != digests[1] {
				agree = false
			}
		}
		if agree {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("processes did not converge: %q %q %q", digests[1], digests[2], digests[3])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Reads: every process must serve every key from its local copy now.
	for w := 0; w < writes; w++ {
		home := w%n + 1
		node := (w+1)%n + 1 // deliberately read at a non-writing replica
		key := fmt.Sprintf("key-%d-%d", home, w)
		value, _, found, err := clients[node].Read(node, key)
		if err != nil || !found || value != fmt.Sprintf("val-%d", w) {
			t.Fatalf("read %s at process %d: %q found=%v err=%v", key, node, value, found, err)
		}
	}

	// The per-process referees observed no exclusivity violations.
	for i := 1; i <= n; i++ {
		out, err := exec.Command(marpctl, "-addr", client[i], "referee").Output()
		if err != nil {
			t.Fatalf("marpctl referee (process %d): %v", i, err)
		}
		if !strings.Contains(string(out), "violations 0") {
			t.Fatalf("process %d referee: %s", i, out)
		}
	}

	// Clean shutdown: SIGTERM, exit status 0.
	for i := 1; i <= n; i++ {
		if err := procs[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signalling replica %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		done := make(chan error, 1)
		go func() { done <- procs[i].Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("replica %d did not exit cleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d did not exit within 10s of SIGTERM", i)
		}
	}
}

// freePort reserves a loopback address by briefly listening on an ephemeral
// port — same accepted test-only race as the in-process live tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialWait connects to a transport service, retrying until the process has
// bound its socket.
func dialWait(t *testing.T, addr string, timeout time.Duration) *transport.Client {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		cli, err := transport.Dial(addr)
		if err == nil {
			return cli
		}
		if time.Now().After(deadline) {
			t.Fatalf("dialing %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
