package main

import (
	"fmt"
	"time"

	"repro/internal/clusterspec"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
)

// liveFlags carries the operator's live-mode input, either raw flags or a
// -spec file reference, before validation.
type liveFlags struct {
	Spec        string // -spec: path to a cluster spec file; overrides cluster-level flags
	Node        int
	Peers       string
	Addr        string // client listen address (-addr)
	Ops         string // ops listen address (-ops)
	Seed        int64
	DataDir     string
	Fsync       string
	Shards      int
	Geometry    string
	Codec       string
	CommitDelay time.Duration
	AckDelay    time.Duration
}

// resolveLive validates the operator's input and produces the live node
// config plus the client and ops listen addresses. Every error it returns
// is an operator mistake — main exits 2 on them, before anything listens.
func resolveLive(f liveFlags) (cfg live.NodeConfig, clientAddr, opsAddr string, err error) {
	self := runtime.NodeID(f.Node)
	clientAddr, opsAddr = f.Addr, f.Ops

	var addrs map[runtime.NodeID]string
	geometry, fsync, codec := f.Geometry, f.Fsync, f.Codec
	seed, dataDir := f.Seed, f.DataDir
	commitDelay, ackDelay := f.CommitDelay, f.AckDelay
	shards := f.Shards

	if f.Spec != "" {
		spec, lerr := clusterspec.Load(f.Spec)
		if lerr != nil {
			return cfg, "", "", lerr
		}
		node := spec.Find(f.Node)
		if node == nil {
			return cfg, "", "", fmt.Errorf("spec %s has no node %d (nodes: %v)", f.Spec, f.Node, spec.IDs())
		}
		addrs = spec.FabricAddrs()
		if node.Client != "" {
			clientAddr = node.Client
		}
		if node.Ops != "" {
			opsAddr = node.Ops
		}
		if spec.Geometry != "" {
			geometry = spec.Geometry
		}
		if spec.Fsync != "" {
			fsync = spec.Fsync
		}
		if spec.Codec != "" {
			codec = spec.Codec
		}
		if spec.Seed != 0 {
			seed = spec.Seed
		}
		if spec.Shards != 0 {
			shards = spec.Shards
		}
		if dir := spec.DataDirOf(f.Node); dir != "" {
			dataDir = dir
		}
		// Spec delay strings were validated by Load.
		if spec.CommitDelay != "" {
			commitDelay, _ = time.ParseDuration(spec.CommitDelay)
		}
		if spec.AckDelay != "" {
			ackDelay, _ = time.ParseDuration(spec.AckDelay)
		}
	} else {
		if addrs, err = clusterspec.ParsePeers(f.Peers); err != nil {
			return cfg, "", "", err
		}
	}
	if err = clusterspec.ValidatePeers(self, addrs); err != nil {
		return cfg, "", "", err
	}
	geom, err := quorum.ParseGeometry(geometry)
	if err != nil {
		return cfg, "", "", err
	}
	cfg = live.NodeConfig{
		Self:        self,
		Addrs:       addrs,
		Seed:        seed,
		DataDir:     dataDir,
		Fsync:       fsync,
		Codec:       codec,
		CommitDelay: commitDelay,
		Cluster: core.Config{
			Shards:          shards,
			Geometry:        geom,
			MigrateAckDelay: ackDelay,
		},
	}
	return cfg, clientAddr, opsAddr, nil
}
