package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestOpsGate is the CI ops-plane gate: a 3-node live cluster boots
// end-to-end from one declarative spec file (no hand-written -peers
// string anywhere), every node serves Prometheus /metrics covering at
// least five subsystems with monotonic counters, /healthz reports a
// reachable write quorum, and partitioning the minority node flips its
// /healthz to degraded until the partition heals.
func TestOpsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and uses wall-clock timeouts")
	}
	bin := t.TempDir()
	marpd := filepath.Join(bin, "marpd")
	marpctl := filepath.Join(bin, "marpctl")
	for path, pkg := range map[string]string{marpd: "repro/cmd/marpd", marpctl: "repro/cmd/marpctl"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// One spec file is the whole cluster description.
	const n = 3
	fabric := make([]string, n+1)
	client := make([]string, n+1)
	opsAddr := make([]string, n+1)
	spec := "name = \"ops-gate\"\nshards = 2\ngeometry = \"majority\"\n"
	for i := 1; i <= n; i++ {
		fabric[i], client[i], opsAddr[i] = freePort(t), freePort(t), freePort(t)
		spec += fmt.Sprintf("\n[[node]]\nid = %d\nfabric = %q\nclient = %q\nops = %q\n",
			i, fabric[i], client[i], opsAddr[i])
	}
	specPath := filepath.Join(t.TempDir(), "cluster.toml")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	// The operator's dry run: spec expand prints one flag set per node.
	out, err := exec.Command(marpctl, "spec", "expand", specPath).Output()
	if err != nil {
		t.Fatalf("marpctl spec expand: %v", err)
	}
	if got := strings.Count(string(out), "marpd -mode live"); got != n {
		t.Fatalf("spec expand printed %d node lines, want %d:\n%s", got, n, out)
	}

	procs := make([]*exec.Cmd, n+1)
	for i := 1; i <= n; i++ {
		cmd := exec.Command(marpd, "-spec", specPath, "-mode", "live", "-node", fmt.Sprint(i))
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting replica %d: %v", i, err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
	}

	clients := make([]*transport.Client, n+1)
	for i := 1; i <= n; i++ {
		clients[i] = dialWait(t, client[i], 5*time.Second)
		defer clients[i].Close()
	}

	// Some traffic so the counters have something to count.
	const writes = 12
	for w := 0; w < writes; w++ {
		home := w%n + 1
		if err := clients[home].Submit(home, fmt.Sprintf("k%d", w), fmt.Sprintf("v%d", w), false); err != nil {
			t.Fatalf("submit %d: %v", w, err)
		}
	}

	// Every node: healthy /healthz and a /metrics surface spanning >= 5
	// subsystems, with counters monotonic across scrapes.
	for i := 1; i <= n; i++ {
		h := healthz(t, opsAddr[i], http.StatusOK)
		if !h.QuorumOK {
			t.Fatalf("node %d /healthz degraded at boot: %+v", i, h)
		}
		if len(h.Shards) != 2 {
			t.Fatalf("node %d /healthz shards = %d, want 2", i, len(h.Shards))
		}
		first := promScrape(t, opsAddr[i])
		subsystems := map[string]bool{}
		for name := range first {
			if rest, found := strings.CutPrefix(name, "marp_"); found {
				sub, _, _ := strings.Cut(rest, "_")
				subsystems[sub] = true
			}
		}
		if len(subsystems) < 5 {
			t.Fatalf("node %d exports %d subsystems (%v), want >= 5", i, len(subsystems), subsystems)
		}
		second := promScrape(t, opsAddr[i])
		for _, name := range []string{"marp_fabric_messages_sent", "marp_replica_commits", "marp_agent_created"} {
			if _, present := first[name]; !present {
				t.Fatalf("node %d: %s missing from scrape", i, name)
			}
			if second[name] < first[name] {
				t.Fatalf("node %d: %s went backwards across scrapes: %v -> %v",
					i, name, first[name], second[name])
			}
		}
	}

	// Wait for every node's backlog to drain so the partition cannot
	// strand agents (outstanding counts are per originating process).
	for i := 1; i <= n; i++ {
		waitDrained(t, clients[i])
	}

	// Partition the minority: {1,2} / {3}, told to every process. Node 3
	// can no longer assemble a write quorum; nodes 1 and 2 still can.
	addrsFlag := strings.Join([]string{client[1], client[2], client[3]}, ",")
	if out, err := exec.Command(marpctl, "-addrs", addrsFlag, "partition", "1,2/3").CombinedOutput(); err != nil {
		t.Fatalf("marpctl partition: %v\n%s", err, out)
	}
	h := healthz(t, opsAddr[3], http.StatusServiceUnavailable)
	if h.QuorumOK {
		t.Fatalf("minority node /healthz still claims quorum: %+v", h)
	}
	for _, sh := range h.Shards {
		if sh.QuorumOK || sh.Reachable != 1 {
			t.Fatalf("minority node shard health: %+v, want 1 reachable member and no quorum", sh)
		}
	}
	if h = healthz(t, opsAddr[1], http.StatusOK); !h.QuorumOK {
		t.Fatalf("majority node /healthz degraded during minority partition: %+v", h)
	}

	// Heal and confirm the minority recovers its quorum view.
	if out, err := exec.Command(marpctl, "-addrs", addrsFlag, "heal").CombinedOutput(); err != nil {
		t.Fatalf("marpctl heal: %v\n%s", err, out)
	}
	if h = healthz(t, opsAddr[3], http.StatusOK); !h.QuorumOK {
		t.Fatalf("node 3 /healthz still degraded after heal: %+v", h)
	}

	for i := 1; i <= n; i++ {
		if err := procs[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signalling replica %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		done := make(chan error, 1)
		go func() { done <- procs[i].Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("replica %d did not exit cleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d did not exit within 10s of SIGTERM", i)
		}
	}
}

// healthzBody mirrors the wire shape of core.Health (decoded structurally
// so the gate notices if the JSON contract drifts).
type healthzBody struct {
	Vantage  int  `json:"vantage"`
	QuorumOK bool `json:"quorum_ok"`
	Shards   []struct {
		Shard     int   `json:"shard"`
		Group     []int `json:"group"`
		Reachable int   `json:"reachable"`
		MinWrite  int   `json:"min_write"`
		QuorumOK  bool  `json:"quorum_ok"`
	} `json:"shards"`
}

// healthz polls a node's /healthz until it answers with wantStatus (ops
// listeners come up just after the process prints its banner; health
// flips take effect as soon as the injected fault lands).
func healthz(t *testing.T, addr string, wantStatus int) healthzBody {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == wantStatus {
				var h healthzBody
				if err := json.Unmarshal(body, &h); err != nil {
					t.Fatalf("/healthz at %s is not JSON: %v\n%s", addr, err, body)
				}
				return h
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz at %s never reached status %d (last err %v)", addr, wantStatus, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// promScrape fetches and parses a node's /metrics samples.
func promScrape(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
					t.Fatalf("/metrics content type %q, want the 0.0.4 text format", ct)
				}
				samples := make(map[string]float64)
				for _, line := range strings.Split(string(body), "\n") {
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					name, val, found := strings.Cut(line, " ")
					if !found {
						t.Fatalf("unparseable /metrics line %q", line)
					}
					f, err := strconv.ParseFloat(val, 64)
					if err != nil {
						t.Fatalf("bad sample %q: %v", line, err)
					}
					samples[name] = f
				}
				return samples
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics at %s unreachable: %v", addr, lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitDrained waits until a node reports no outstanding requests.
func waitDrained(t *testing.T, cli *transport.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cli.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Outstanding == 0 && st.Failed == 0 {
			return
		}
		if st.Failed > 0 {
			t.Fatalf("%d request(s) failed while draining", st.Failed)
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never drained (outstanding %d)", st.Outstanding)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
