// Command marpd runs a live MARP replicated data service, reachable over
// TCP with a line-delimited JSON protocol (see internal/transport). It has
// two modes behind the same protocol code:
//
//   - sim (default): one process hosts a whole cluster of mobile-agent-
//     enabled replicated servers on the deterministic simulation engine,
//     paced against the wall clock;
//   - live: each replica is its own OS process on the wall clock, and
//     mobile agents migrate between processes over TCP as serialized state.
//
// Both modes can instead run the optimistic commitment protocol
// (-protocol optimistic): submits commit tentatively at local latency and
// reconciliation agents merge the replicas in the background
// (internal/optimistic). `marpctl digest` then reports the stable and
// tentative tiers separately. An unknown -protocol exits 2.
//
// Usage (sim):
//
//	marpd -addr :7707 -servers 5 -latency lan -speed 1
//
// Usage (live, one line per terminal):
//
//	marpd -mode live -node 1 -peers 1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803 -addr :7707
//	marpd -mode live -node 2 -peers 1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803 -addr :7708
//	marpd -mode live -node 3 -peers 1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803 -addr :7709
//
// Or declaratively, with every address and cluster-level setting in one
// spec file (internal/clusterspec; `marpctl spec expand` shows the
// derived flags):
//
//	marpd -spec cluster.toml -mode live -node 1
//	marpd -spec cluster.toml -mode live -node 2
//	marpd -spec cluster.toml -mode live -node 3
//
// A malformed -peers string or spec (duplicate IDs, missing self entry,
// unparseable address) makes marpd exit 2 before anything listens.
//
// Add -ops host:port (or an `ops` address per node in the spec) to serve
// the ops endpoints: Prometheus-text /metrics and JSON /healthz, the
// latter reporting per-shard write-quorum reachability.
//
// Add -data-dir <dir> (one directory per replica) to make a live replica
// durable: its write-ahead log and snapshots land there, SIGTERM flushes
// and closes the log, and restarting with the same -data-dir replays it
// before rejoining (README.md walks through a kill-and-restart).
//
// Add -record <dir> (one shared directory for the whole cluster) to spool
// every accepted submit as an incident-scenario event. Faults are recorded
// by the injector (`marpctl -record <dir> crash ...` and friends), and
// `marpctl snapshot-scenario` merges the spools into a replayable bundle
// (see internal/scenario and `marpbench -exp replay`).
//
// Then drive it with marpctl:
//
//	marpctl -addr :7707 submit 1 mykey myvalue
//	marpctl -addr :7707 read 3 mykey
//	marpctl -addr :7707 stats
//	marpctl -addr :7707 crash 4
//	marpctl -addr :7707 recover 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	marp "repro"
	"repro/internal/desengine"
	"repro/internal/ops"
	"repro/internal/optimistic"
	"repro/internal/runtime/live"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// latencyModel maps the -latency preset names to simnet models for the
// protocols assembled here directly (the MARP path maps inside marp.Options).
func latencyModel(name string) (simnet.LatencyModel, error) {
	switch name {
	case "lan":
		return simnet.LAN(), nil
	case "prototype":
		return simnet.Prototype(), nil
	case "wan":
		return simnet.WAN(), nil
	}
	return nil, fmt.Errorf("unknown latency %q", name)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "TCP listen address for clients")
		servers  = flag.Int("servers", 5, "number of replicated servers (sim mode)")
		seed     = flag.Int64("seed", 1, "random seed")
		latency  = flag.String("latency", "lan", "replica network latency (sim mode): lan, prototype, wan")
		speed    = flag.Float64("speed", 1, "virtual seconds per wall-clock second (sim mode)")
		batch    = flag.Int("batch", 1, "requests per mobile agent")
		mode     = flag.String("mode", "sim", "sim (whole cluster, simulated network) or live (one replica per process)")
		node     = flag.Int("node", 0, "this process's replica ID (live mode)")
		peers    = flag.String("peers", "", "replica fabric addresses, id=host:port comma-separated (live mode)")
		spec     = flag.String("spec", "", "cluster spec file (.toml or .json); replaces -peers and cluster-level flags (live mode)")
		opsAddr  = flag.String("ops", "", "ops HTTP listen address serving /metrics and /healthz (empty = no ops listener)")
		dataDir  = flag.String("data-dir", "", "durability directory: WAL + snapshots; restart with the same dir to recover (live mode)")
		fsync    = flag.String("fsync", "commit", "WAL fsync policy with -data-dir: commit, always, none")
		shards   = flag.Int("shards", 1, "key-space shards (independent per-key locking domains)")
		geometry = flag.String("geometry", "majority", "quorum geometry: majority, grid, tree")
		codec    = flag.String("codec", "wire", "fabric codec (live mode): wire (zero-alloc binary) or gob (legacy)")
		commit   = flag.Duration("commit-delay", 0, "WAL group-commit window with -data-dir, e.g. 200us; 0 = fsync per commit (live mode)")
		ackDelay = flag.Duration("ack-delay", 0, "migration ack aggregation window, e.g. 500us; 0 = ack immediately (live mode)")
		record   = flag.String("record", "", "incident-recording spool directory: accepted submits are appended as scenario events (share one dir across the cluster; see marpctl snapshot-scenario)")
		protocol = flag.String("protocol", "marp", "replication protocol: marp (pessimistic locking agents) or optimistic (tentative commits + reconciliation agents)")
	)
	flag.Parse()

	if *protocol != "marp" && *protocol != "optimistic" {
		// Operator mistake, like a malformed -peers: exit 2 before anything
		// listens.
		fmt.Fprintf(os.Stderr, "marpd: unknown protocol %q (marp or optimistic)\n", *protocol)
		os.Exit(2)
	}
	var srv *transport.Server
	var err error
	peerCount := 0
	clientAddr, opsListen := *addr, *opsAddr
	switch *mode {
	case "sim":
		if *protocol == "optimistic" {
			model, merr := latencyModel(*latency)
			if merr != nil {
				fmt.Fprintf(os.Stderr, "marpd: %v\n", merr)
				os.Exit(2)
			}
			srv, err = transport.ServeOptimistic(clientAddr, desengine.OptConfig{
				Seed:    *seed,
				Latency: model,
				Cluster: optimistic.Config{N: *servers, Shards: *shards},
			}, *speed)
			break
		}
		srv, err = transport.Serve(clientAddr, marp.Options{
			Servers:   *servers,
			Seed:      *seed,
			Latency:   marp.Latency(*latency),
			BatchSize: *batch,
			Shards:    *shards,
			Geometry:  *geometry,
		}, *speed)
	case "live":
		cfg, cAddr, oAddr, rerr := resolveLive(liveFlags{
			Spec: *spec, Node: *node, Peers: *peers,
			Addr: *addr, Ops: *opsAddr,
			Seed: *seed, DataDir: *dataDir, Fsync: *fsync,
			Shards: *shards, Geometry: *geometry, Codec: *codec,
			CommitDelay: *commit, AckDelay: *ackDelay,
		})
		if rerr != nil {
			// Operator mistake in -peers/-spec: exit 2, distinct from the
			// runtime failures below.
			fmt.Fprintf(os.Stderr, "marpd: %v\n", rerr)
			os.Exit(2)
		}
		clientAddr, opsListen = cAddr, oAddr
		peerCount = len(cfg.Addrs)
		if *protocol == "optimistic" {
			// The spec/flag resolution is shared; the optimistic node takes
			// the subset that applies (no quorum geometry, no migration acks).
			srv, err = transport.ServeLiveOptimistic(clientAddr, live.OptNodeConfig{
				Self: cfg.Self, Addrs: cfg.Addrs, Seed: cfg.Seed,
				DataDir: cfg.DataDir, Fsync: cfg.Fsync, Codec: cfg.Codec,
				Shards: cfg.Cluster.Shards,
			})
			break
		}
		srv, err = transport.ServeLive(clientAddr, cfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "marpd: %v\n", err)
		os.Exit(1)
	}
	var opsSrv *ops.Server
	if opsListen != "" {
		opsSrv, err = ops.Serve(opsListen, ops.Config{
			Gather: srv.GatherMetrics,
			Health: srv.Health,
		})
		if err != nil {
			srv.Close()
			fmt.Fprintf(os.Stderr, "marpd: ops listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("marpd: ops listener on http://%s (/metrics, /healthz)\n", opsSrv.Addr())
	}
	var rec *scenario.Recorder
	if *record != "" {
		name := "sim"
		if *mode == "live" {
			name = fmt.Sprintf("node-%d", *node)
		}
		rec, err = scenario.OpenRecorder(*record, name)
		if err != nil {
			srv.Close()
			fmt.Fprintf(os.Stderr, "marpd: %v\n", err)
			os.Exit(1)
		}
		srv.SetRecorder(rec)
	}
	if *mode == "live" {
		fmt.Printf("marpd: live replica %d of %d, listening on %s\n",
			*node, peerCount, srv.Addr())
	} else {
		fmt.Printf("marpd: %d replicated servers, %s latency, %gx time, listening on %s\n",
			*servers, *latency, *speed, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nmarpd: shutting down")
	if opsSrv != nil {
		opsSrv.Close()
	}
	srv.Close()
	if rec != nil {
		rec.Close()
	}
}
