// Command marpd runs a live MARP replicated data service: a cluster of
// mobile-agent-enabled replicated servers, paced in real time, reachable
// over TCP with a line-delimited JSON protocol (see internal/transport).
//
// Usage:
//
//	marpd -addr :7707 -servers 5 -latency lan -speed 1
//
// Then drive it with marpctl:
//
//	marpctl -addr :7707 submit 1 mykey myvalue
//	marpctl -addr :7707 read 3 mykey
//	marpctl -addr :7707 stats
//	marpctl -addr :7707 crash 4
//	marpctl -addr :7707 recover 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	marp "repro"
	"repro/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7707", "TCP listen address")
		servers = flag.Int("servers", 5, "number of replicated servers")
		seed    = flag.Int64("seed", 1, "simulation seed")
		latency = flag.String("latency", "lan", "replica network latency: lan, prototype, wan")
		speed   = flag.Float64("speed", 1, "virtual seconds per wall-clock second")
		batch   = flag.Int("batch", 1, "requests per mobile agent")
	)
	flag.Parse()

	srv, err := transport.Serve(*addr, marp.Options{
		Servers:   *servers,
		Seed:      *seed,
		Latency:   marp.Latency(*latency),
		BatchSize: *batch,
	}, *speed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marpd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("marpd: %d replicated servers, %s latency, %gx time, listening on %s\n",
		*servers, *latency, *speed, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nmarpd: shutting down")
	srv.Close()
}
