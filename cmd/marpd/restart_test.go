package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestLiveRestartSmoke is the durability story at deployment granularity —
// the same scenario the CI restart-smoke gate runs from the shell: three
// durable marpd processes, a workload in flight, kill -9 one process
// mid-workload, restart it under the same -data-dir, and require all three
// digests to agree on the full commit set. The restarted process replays
// its WAL for everything it acked and pulls the rest via anti-entropy.
func TestLiveRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and uses wall-clock timeouts")
	}
	bin := t.TempDir()
	marpd := filepath.Join(bin, "marpd")
	marpctl := filepath.Join(bin, "marpctl")
	for path, pkg := range map[string]string{marpd: "repro/cmd/marpd", marpctl: "repro/cmd/marpctl"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const n = 3
	fabric := make([]string, n+1)
	client := make([]string, n+1)
	dataDirs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		fabric[i] = freePort(t)
		client[i] = freePort(t)
		dataDirs[i] = t.TempDir()
	}
	var peerSpec []string
	for i := 1; i <= n; i++ {
		peerSpec = append(peerSpec, fmt.Sprintf("%d=%s", i, fabric[i]))
	}
	peers := strings.Join(peerSpec, ",")

	start := func(i int) *exec.Cmd {
		cmd := exec.Command(marpd,
			"-mode", "live",
			"-node", fmt.Sprint(i),
			"-peers", peers,
			"-addr", client[i],
			"-data-dir", dataDirs[i],
			"-fsync", "commit")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting replica %d: %v", i, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, n+1)
	for i := 1; i <= n; i++ {
		procs[i] = start(i)
	}
	t.Cleanup(func() {
		for i := 1; i <= n; i++ {
			if procs[i] != nil && procs[i].Process != nil {
				procs[i].Process.Kill()
				procs[i].Wait()
			}
		}
	})

	clients := make([]*clientConn, n+1)
	for i := 1; i <= n; i++ {
		clients[i] = &clientConn{c: dialWait(t, client[i], 5*time.Second)}
		defer clients[i].close()
	}

	// digestJSON asks a process for its digest through the marpctl binary's
	// -json output, the way the CI gate does.
	type digestLine struct {
		Node    int    `json:"node"`
		Digest  string `json:"digest"`
		Commits int    `json:"commits"`
	}
	digestJSON := func(i int) digestLine {
		out, err := exec.Command(marpctl, "-json", "-addr", client[i], "digest", fmt.Sprint(i)).Output()
		if err != nil {
			t.Fatalf("marpctl -json digest %d: %v", i, err)
		}
		var d digestLine
		if err := json.Unmarshal(out, &d); err != nil {
			t.Fatalf("parsing digest JSON %q: %v", out, err)
		}
		return d
	}

	// First half of the workload lands on all three; wait for full
	// convergence so every one of these commits is on process 3's disk.
	const half = 12
	write := func(w int) {
		home := w%n + 1
		if err := clients[home].c.Submit(home, fmt.Sprintf("key-%d", w), fmt.Sprintf("val-%d", w), false); err != nil {
			t.Fatalf("submit %d via process %d: %v", w, home, err)
		}
	}
	converge := func(min int, deadline time.Duration) digestLine {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			d1, d2, d3 := digestJSON(1), digestJSON(2), digestJSON(3)
			if d1.Commits >= min && d1.Digest == d2.Digest && d2.Digest == d3.Digest {
				return d1
			}
			if time.Now().After(end) {
				t.Fatalf("no convergence: %+v %+v %+v (want >= %d commits)", d1, d2, d3, min)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	for w := 0; w < half; w++ {
		write(w)
	}
	converge(half, 30*time.Second)

	// Second half starts flowing, and mid-workload process 3 gets kill -9:
	// no signal handler, no journal close, no trace flush. Agents resident
	// on the dying process die with it — those writes are legitimately
	// lost (the paper's known mobile-agent failure mode; regeneration is a
	// separate knob) — but every commit process 3 ACKED is on its disk.
	write(half)
	write(half + 1)
	if err := procs[3].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[3].Wait()
	clients[3].close()
	guaranteed := half // in-flight second-half writes carry no promise
	for w := half + 2; w < 2*half; w++ {
		if home := w%n + 1; home != 3 {
			write(w)
			guaranteed++ // submitted to a live majority after the kill
		}
	}

	// Restart under the same data directory and flags.
	procs[3] = start(3)
	clients[3] = &clientConn{c: dialWait(t, client[3], 10*time.Second)}

	// All three digests must converge on the identical commit set, which
	// includes everything acked before the kill plus the post-kill writes:
	// the restarted process replays its WAL and pulls the rest from peers.
	converge(guaranteed, 45*time.Second)

	// The restarted process serves recovered data from its local copy.
	value, _, found, err := clients[3].c.Read(3, "key-0")
	if err != nil || !found || value != "val-0" {
		t.Fatalf("read at restarted process: %q found=%v err=%v", value, found, err)
	}

	// Referees stayed clean through the kill, and -json renders them too.
	for i := 1; i <= n; i++ {
		out, err := exec.Command(marpctl, "-json", "-addr", client[i], "referee").Output()
		if err != nil {
			t.Fatalf("marpctl -json referee %d: %v", i, err)
		}
		var ref struct {
			Wins       int `json:"wins"`
			Violations int `json:"violations"`
		}
		if err := json.Unmarshal(out, &ref); err != nil {
			t.Fatalf("parsing referee JSON %q: %v", out, err)
		}
		if ref.Violations != 0 {
			t.Fatalf("process %d referee: %+v", i, ref)
		}
	}

	// All three shut down cleanly, including the restarted one.
	for i := 1; i <= n; i++ {
		if err := procs[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signalling replica %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		done := make(chan error, 1)
		go func() { done <- procs[i].Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("replica %d did not exit cleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d did not exit within 10s of SIGTERM", i)
		}
		procs[i] = nil
	}
}

// clientConn wraps a transport client with an idempotent close, so the
// deferred cleanup and the mid-test close after kill -9 do not collide.
type clientConn struct {
	c      *transport.Client
	closed bool
}

func (cc *clientConn) close() {
	if !cc.closed {
		cc.closed = true
		cc.c.Close()
	}
}
