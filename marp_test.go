package marp

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	c, err := NewCluster(Options{Servers: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, Set("greeting", "hello")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.Servers() {
		v, ok := c.Read(id, "greeting")
		if !ok || v.Data != "hello" {
			t.Fatalf("server %d: %+v %v", id, v, ok)
		}
	}
	if len(c.Outcomes()) != 1 {
		t.Fatalf("outcomes = %d", len(c.Outcomes()))
	}
	st := c.Stats()
	if st.Agents.AgentsCreated != 1 || st.Network.MessagesSent == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeDefaults(t *testing.T) {
	c, err := NewCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers()) != 5 {
		t.Fatalf("default servers = %d", len(c.Servers()))
	}
}

func TestFacadeBadLatency(t *testing.T) {
	if _, err := NewCluster(Options{Latency: "carrier-pigeon"}); err == nil {
		t.Fatal("bad latency accepted")
	}
}

func TestFacadeTraceCapture(t *testing.T) {
	c, err := NewCluster(Options{Servers: 3, Seed: 7, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, Set("k", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace()) == 0 {
		t.Fatal("no trace recorded")
	}
	s := c.TraceString()
	for _, want := range []string{"agent-created", "commit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q:\n%s", want, s)
		}
	}
}

func TestFacadeNoTraceByDefault(t *testing.T) {
	c, err := NewCluster(Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace() != nil {
		t.Fatal("trace captured without opt-in")
	}
	if c.TraceString() != "" {
		t.Fatal("trace string non-empty without opt-in")
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	c, err := NewCluster(Options{Servers: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(5)
	if err := c.Submit(1, Set("x", "1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Read(5, "x"); ok {
		t.Fatal("crashed server served a read")
	}
	c.Recover(5)
	c.RunFor(5 * time.Second)
	if v, ok := c.Read(5, "x"); !ok || v.Data != "1" {
		t.Fatalf("recovered read = %+v %v", v, ok)
	}
}

func TestFacadeScriptedScenario(t *testing.T) {
	c, err := NewCluster(Options{Servers: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Duration(i)*5*time.Millisecond, func() {
			_ = c.Submit(NodeID(i%3+1), Set("counter", fmt.Sprintf("%d", i)))
		})
	}
	c.RunFor(60 * time.Millisecond)
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Outcomes()); got != 10 {
		t.Fatalf("outcomes = %d", got)
	}
	if c.Outstanding() != 0 {
		t.Fatal("outstanding after Run")
	}
	if c.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestFacadeAppendSemantics(t *testing.T) {
	c, err := NewCluster(Options{Servers: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := c.Submit(NodeID(i), Append("log", fmt.Sprintf("<%d>", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Read(1, "log")
	for i := 1; i <= 3; i++ {
		if !strings.Contains(v.Data, fmt.Sprintf("<%d>", i)) {
			t.Fatalf("append lost <%d>: %q", i, v.Data)
		}
	}
}

func TestFacadeBatching(t *testing.T) {
	c, err := NewCluster(Options{Servers: 3, Seed: 17, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Submit(1, Set(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Agents.AgentsCreated; got != 1 {
		t.Fatalf("agents = %d, want 1 for a full batch", got)
	}
}

func TestFacadeReadQuorum(t *testing.T) {
	c, err := NewCluster(Options{Servers: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, Set("cfg", "v9")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.ReadQuorum(4, "cfg")
	if err != nil || !found || v.Data != "v9" {
		t.Fatalf("quorum read = %+v %v %v", v, found, err)
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	// The ablation knobs must produce working clusters.
	for _, opt := range []Options{
		{Servers: 5, Seed: 23, DisableInfoSharing: true},
		{Servers: 5, Seed: 23, RandomItinerary: true},
		{Servers: 5, Seed: 23, Latency: Prototype},
		{Servers: 5, Seed: 23, Latency: WAN},
	} {
		c, err := NewCluster(opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 5; i++ {
			if err := c.Submit(NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(5 * time.Minute); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
	}
}
