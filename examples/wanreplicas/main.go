// Wide-area replication: the scenario the paper's introduction motivates.
// Replicas of a data store are spread across the Internet; update requests
// arrive at every site. The example runs the same workload twice — once
// under MARP (cooperating mobile agents) and once under a conventional
// message-passing majority-consensus protocol — and prints the latency and
// traffic comparison that is the paper's headline claim.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	fmt.Println("== Wide-area replication: MARP vs message-passing majority consensus ==")
	fmt.Println()
	fmt.Println("Workload: 7 replicas across a simulated WAN (40ms+ one-way latency),")
	fmt.Println("exponential request arrivals at every site, single contended object.")
	fmt.Println()

	run := func(p harness.Protocol) harness.RunResult {
		res, err := harness.Run(harness.RunConfig{
			Protocol:          p,
			N:                 7,
			Seed:              42,
			Mean:              400 * time.Millisecond,
			RequestsPerServer: 25,
			Latency:           harness.WAN,
		})
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		return res
	}

	tbl := &metrics.Table{
		Title:   "MARP vs message passing on a WAN (7 replicas, 175 updates)",
		Columns: []string{"protocol", "mean ATT (ms)", "p95 ATT (ms)", "msgs/update", "KB/update"},
	}
	for _, p := range []harness.Protocol{harness.MARP, harness.MCV, harness.PrimaryCopy} {
		res := run(p)
		tbl.AddRow(string(p),
			metrics.Ms(res.Summary.MeanATT),
			metrics.Ms(res.Summary.P95ATT),
			fmt.Sprintf("%.1f", res.MsgsPerUpdate()),
			fmt.Sprintf("%.1f", res.BytesPerUpdate()/1024),
		)
	}
	if err := tbl.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The mobile-agent protocol wins on the WAN because the agent converses")
	fmt.Println("with each replica locally after one migration, while the stationary")
	fmt.Println("coordinator pays a wide-area round trip for every lock/vote exchange —")
	fmt.Println("exactly the argument of the paper's Section 1.")
}
