// Failure handling: the paper's fail-stop model in action. A five-server
// cluster processes updates while one server crashes mid-workload, taking
// its volatile locking state (and any agent hosted there) with it. The
// remaining majority keeps committing; when the server recovers, it pulls
// the updates it missed (the paper's "background information transfer") and
// reconverges.
package main

import (
	"fmt"
	"log"
	"time"

	marp "repro"
)

func main() {
	cluster, err := marp.NewCluster(marp.Options{Servers: 5, Seed: 77, CaptureTrace: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== MARP under fail-stop server failures ==")
	fmt.Println()

	// A steady trickle of updates from all five sites.
	for i := 0; i < 20; i++ {
		i := i
		home := marp.NodeID(i%5 + 1)
		cluster.After(time.Duration(i)*25*time.Millisecond, func() {
			_ = cluster.Submit(home, marp.Set("seq", fmt.Sprintf("update-%02d", i)))
		})
	}

	// Crash server 4 in the middle of the workload, recover it later.
	cluster.After(120*time.Millisecond, func() {
		fmt.Printf("%8s  server 4 crashes (fail-stop: locking state and hosted agents are lost)\n",
			cluster.Now().Round(time.Millisecond))
		cluster.Crash(4)
	})
	cluster.After(400*time.Millisecond, func() {
		fmt.Printf("%8s  server 4 recovers and requests a background sync from its peers\n",
			cluster.Now().Round(time.Millisecond))
		cluster.Recover(4)
	})

	cluster.RunFor(600 * time.Millisecond)
	if err := cluster.Run(2 * time.Minute); err != nil {
		log.Fatal(err)
	}

	committed, failed := 0, 0
	for _, o := range cluster.Outcomes() {
		if o.Failed {
			failed++
		} else {
			committed++
		}
	}
	fmt.Println()
	fmt.Printf("Outcome: %d updates committed, %d lost with the crashed host\n", committed, failed)
	fmt.Println("(an agent resident on a fail-stop host dies with it; its locks are")
	fmt.Println(" evicted everywhere via the platform's failure notification service)")
	fmt.Println()

	fmt.Println("Final state of every replica (all identical, including the recovered one):")
	for _, id := range cluster.Servers() {
		v, ok := cluster.Read(id, "seq")
		fmt.Printf("  S%d: seq=%q version=%d (%v)\n", id, v.Data, v.Version.Seq, ok)
	}

	fmt.Println()
	fmt.Println("Recovery-related protocol events:")
	for _, ev := range cluster.Trace() {
		switch ev.Type {
		case "server-crashed", "server-recovered", "server-synced", "agent-died":
			fmt.Println("  " + ev.String())
		}
	}
}
