// Weighted voting: Gifford's generalization of the majority scheme the
// paper builds on. A "headquarters" replica holds three votes while four
// branch replicas hold one each (7 votes total, quorum 4). An agent born at
// headquarters wins the permission after visiting just two servers —
// headquarters' three votes plus any single branch — while a branch-born
// agent must gather four sites or pass through headquarters.
package main

import (
	"fmt"
	"log"
	"time"

	marp "repro"
)

func main() {
	votes := map[marp.NodeID]int{1: 3, 2: 1, 3: 1, 4: 1, 5: 1}
	cluster, err := marp.NewCluster(marp.Options{
		Servers: 5,
		Seed:    1979, // the year of Gifford's weighted voting
		Votes:   votes,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Weighted voting: headquarters holds 3 of 7 votes ==")
	fmt.Println()
	fmt.Println("vote assignment: S1=3 (headquarters), S2..S5=1 (branches); quorum = 4 votes")
	fmt.Println()

	// One update from headquarters, one from a branch, spaced apart so
	// each shows its uncontended tour length.
	if err := cluster.Submit(1, marp.Set("policy", "hq-edition")); err != nil {
		log.Fatal(err)
	}
	cluster.RunFor(2 * time.Second)
	if err := cluster.Submit(4, marp.Set("policy", "branch-edition")); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Run(time.Minute); err != nil {
		log.Fatal(err)
	}

	for _, o := range cluster.Outcomes() {
		fmt.Printf("agent from S%d: visited %d server(s) to win the weighted quorum (lock in %v)\n",
			o.Home, o.Visits, o.LockLatency().Duration().Round(time.Microsecond))
	}
	fmt.Println()
	v, _ := cluster.Read(3, "policy")
	fmt.Printf("replicated value everywhere: %q (update #%d)\n", v.Data, v.Version.Seq)
	fmt.Println()
	fmt.Println("The headquarters agent needed only 2 visits (3+1 votes >= 4), and the")
	fmt.Println("branch agent also assembled 4 votes in 2 visits by touring headquarters")
	fmt.Println("first — weighted quorums reward visiting heavyweight sites early.")
}
