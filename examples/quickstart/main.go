// Quickstart: bring up a five-server MARP cluster, commit a handful of
// updates carried by mobile agents, and read the replicated values back from
// every server. The run is fully deterministic (virtual time, seeded
// randomness), so the output is identical on every machine.
package main

import (
	"fmt"
	"log"
	"time"

	marp "repro"
)

func main() {
	cluster, err := marp.NewCluster(marp.Options{
		Servers:      5,
		Seed:         2001, // the year of the paper
		Latency:      marp.LAN,
		CaptureTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== MARP quickstart: 5 replicated servers, mobile-agent updates ==")
	fmt.Println()

	// Submit updates from three different home servers. Each submission
	// dispatches a mobile agent that tours the replicas, wins the
	// majority-consensus lock, and commits everywhere.
	submissions := []struct {
		home marp.NodeID
		req  marp.Request
	}{
		{1, marp.Set("motd", "hello from server 1")},
		{3, marp.Set("owner", "icpp-2001")},
		{5, marp.Append("audit", "[boot]")},
		{2, marp.Append("audit", "[configured]")},
	}
	for _, s := range submissions {
		if err := cluster.Submit(s.home, s.req); err != nil {
			log.Fatal(err)
		}
	}

	if err := cluster.Run(time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Replicated state as seen by each server (read-one, local copy):")
	for _, id := range cluster.Servers() {
		motd, _ := cluster.Read(id, "motd")
		audit, _ := cluster.Read(id, "audit")
		fmt.Printf("  S%d: motd=%q audit=%q\n", id, motd.Data, audit.Data)
	}
	fmt.Println()

	fmt.Println("Per-agent outcomes (the paper's ALT/ATT/visit metrics):")
	for _, o := range cluster.Outcomes() {
		fmt.Printf("  agent %-6s from S%d: lock in %8s, total %8s, visited %d servers\n",
			o.Agent, o.Home, o.LockLatency().Duration().Round(time.Microsecond),
			o.TotalLatency().Duration().Round(time.Microsecond), o.Visits)
	}
	fmt.Println()

	st := cluster.Stats()
	fmt.Printf("Traffic: %d messages (%d bytes) on the wire, %d agent migrations\n",
		st.Network.MessagesSent, st.Network.BytesSent, st.Agents.MigrationsCompleted)
	fmt.Println()

	fmt.Println("First 12 protocol events:")
	for i, ev := range cluster.Trace() {
		if i >= 12 {
			break
		}
		fmt.Println("  " + ev.String())
	}
}
