// Disconnected operation: one of the paper's motivations for mobile agents
// is that "mobile agents can support mobile computing by carrying out tasks
// for a mobile user temporarily disconnected from the network. After being
// dispatched, the mobile agents become independent of the creating process
// and can operate asynchronously and autonomously" (§1).
//
// This example plays that scenario: a mobile user connected to server 2
// submits an update and immediately "disconnects" (never waits). The agent
// completes the majority-consensus protocol entirely on its own. Much later
// the user reconnects — to a different server — and finds the update
// committed everywhere.
package main

import (
	"fmt"
	"log"
	"time"

	marp "repro"
)

func main() {
	cluster, err := marp.NewCluster(marp.Options{Servers: 5, Seed: 8, CaptureTrace: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Mobile user, disconnected operation ==")
	fmt.Println()

	// t=0: the user, attached to server 2, fires an update and disconnects.
	if err := cluster.Submit(2, marp.Set("inbox/user42", "sync my calendar")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("t=0        user submits the update at S2 and disconnects immediately;")
	fmt.Println("           the agent now operates autonomously on the user's behalf")

	// While the user is away, other clients keep the system busy.
	for i := 0; i < 8; i++ {
		i := i
		cluster.After(time.Duration(i+1)*7*time.Millisecond, func() {
			_ = cluster.Submit(marp.NodeID(i%5+1), marp.Set("background", fmt.Sprintf("noise-%d", i)))
		})
	}

	cluster.RunFor(80 * time.Millisecond)
	if err := cluster.Run(time.Minute); err != nil {
		log.Fatal(err)
	}

	// The user reconnects elsewhere — server 5 — and reads the local copy.
	v, ok := cluster.Read(5, "inbox/user42")
	fmt.Printf("t=%-8s user reconnects at S5 and reads the local replica:\n",
		cluster.Now().Round(time.Millisecond))
	fmt.Printf("           inbox/user42 = %q (found=%v, committed as update #%d)\n",
		v.Data, ok, v.Version.Seq)
	fmt.Println()

	// Show the agent's autonomous journey.
	fmt.Println("The agent's autonomous journey while the user was offline:")
	var agentID string
	for _, ev := range cluster.Trace() {
		if ev.Type == "agent-created" && ev.Node == 2 {
			agentID = ev.Actor
			break
		}
	}
	for _, ev := range cluster.Trace() {
		if ev.Actor == agentID {
			fmt.Println("  " + ev.String())
		}
	}
}
