// Package replica implements the replicated server side of the MARP
// protocol — Algorithm 2 of the paper plus the server duties the paper's
// system model assigns to replicas: holding the data copy, maintaining the
// Locking List (LL) and Updated List (UL), providing routing information to
// visiting agents, exchanging locking information with them, validating and
// applying updates, and performing failure recovery through background
// information transfer.
//
// The key space is sharded: each server keeps one Locking List, one data
// store, and one exclusive grant per (server, shard), so updates on
// different shards never contend. With one shard (the default) the server
// behaves exactly as the paper describes.
package replica

import (
	"repro/internal/agent"
	"repro/internal/runtime"
	"repro/internal/store"
)

func init() {
	// The Algorithm 2 message set must decode on the far side of a
	// serializing fabric (the live gob-over-TCP deployment).
	for _, m := range []any{
		&UpdateMsg{}, &AckMsg{}, &CommitMsg{}, &AbortMsg{},
		&ReadReq{}, &ReadRep{}, &SyncRequest{}, &SyncReply{},
		LLChanged{},
	} {
		runtime.RegisterWireType(m)
	}
}

// QueueSnapshot is one shard's Locking List at one server as known at some
// moment. Agents accumulate these in their Locking Table and leave them
// behind at the servers they visit (the paper's information sharing); both
// directions use this type. Snapshots are ordered by (Epoch, Version):
// Epoch increments when a server recovers from a crash and its volatile
// locking state resets, Version increments on every LL mutation within an
// epoch.
type QueueSnapshot struct {
	Server      runtime.NodeID
	Shard       int
	Epoch       uint64
	Version     uint64
	HeadVersion uint64 // version of the last mutation that changed the head
	Queue       []agent.ID
}

// Newer reports whether s is strictly fresher information than o.
func (s QueueSnapshot) Newer(o QueueSnapshot) bool {
	if s.Epoch != o.Epoch {
		return s.Epoch > o.Epoch
	}
	return s.Version > o.Version
}

// Clone returns a deep copy (snapshots are shared across "hosts" in the
// simulator, so mutation isolation matters).
func (s QueueSnapshot) Clone() QueueSnapshot {
	q := make([]agent.ID, len(s.Queue))
	copy(q, s.Queue)
	s.Queue = q
	return s
}

// LockInfo is everything a server hands to a visiting agent when the agent
// requests its locks (paper §3.2–3.3): the local LL of every shard the
// agent asked for, the UL ("gone" agents), the server's cached views of
// other servers' LLs on those shards, the routing table, and the data
// version horizon.
type LockInfo struct {
	Locals  []QueueSnapshot // this server's LLs, ascending shard order
	Gone    []agent.ID      // agents that finished (UL) or died — prune these everywhere
	Remote  []QueueSnapshot // cached peer LLs, sorted by (shard, server)
	Costs   map[runtime.NodeID]float64
	LastSeq uint64 // highest committed Seq across the requested shards
}

// LLChanged is the local event a server raises to its resident agents when
// one of its Locking Lists mutates — the cue for parked agents to recompute
// their priority (paper §3.3: "other mobile agents will then be able to
// change their priorities in their locking tables").
type LLChanged struct {
	Server runtime.NodeID
	// Shards, when non-nil, limits the change to the listed shards
	// (ascending): locking state moved only there, and any gone-set growth
	// concerns only agents locked on those shards (a transaction locks the
	// same shards everywhere, so it never appears in another shard's local
	// or cached queue). An agent whose shards don't intersect may skip its
	// refresh entirely — the decision inputs it can observe are unchanged.
	// nil means "anything may have changed" and nobody may skip. Only the
	// live engine emits scoped events; the DES engine always raises nil
	// Shards, keeping simulated schedules bit-identical.
	Shards []int
}

// Protocol messages. Sizes are modelled wire sizes for traffic accounting;
// the shard extensions add bytes only when a message spans more than one
// shard, so single-shard runs are byte-identical to the unsharded protocol.

// UpdateMsg is the winning agent's UPDATE broadcast: a permission claim plus
// the identity of the data it wants to write. Servers validate the claim on
// every named shard they replicate — all-or-nothing — install an exclusive
// per-shard grant, and reply with an AckMsg carrying their current copy of
// the requested keys so the winner can "use the most recent copy" (paper
// §3.1).
type UpdateMsg struct {
	Txn      agent.ID
	Attempt  int            // claim attempt number, echoed in the AckMsg
	Origin   runtime.NodeID // where the claiming agent currently resides
	Keys     []string
	Shards   []int // distinct shards of Keys, ascending (canonical lock order)
	ByTie    bool
	Evidence map[runtime.NodeID]uint64 // claimed head-version per server (tie claims)
}

// Kind implements runtime.Kinder.
func (UpdateMsg) Kind() string { return "update" }

// WireSize returns the modelled size of the message.
func (m UpdateMsg) WireSize() int {
	n := 96 + 24*len(m.Keys) + 16*len(m.Evidence)
	if len(m.Shards) > 1 {
		n += 8 * (len(m.Shards) - 1)
	}
	return n
}

// AckMsg is a server's reply to an UpdateMsg. On success it carries the
// server's committed values for the requested keys and its per-shard data
// horizons (parallel to the claim's Shards); on refusal it carries a fresh
// LockInfo so the claimant can repair its Locking Table before retrying.
type AckMsg struct {
	Txn       agent.ID
	Attempt   int // echo of the claim's attempt number
	From      runtime.NodeID
	OK        bool
	Reason    string
	ShardSeqs []uint64 // committed horizon per claimed shard (0 where not replicated here)
	Values    map[string]store.Value
	Info      *LockInfo // populated on NACK
}

// Kind implements runtime.Kinder.
func (AckMsg) Kind() string { return "ack" }

// WireSize returns the modelled size of the message.
func (m AckMsg) WireSize() int {
	n := 96 + 48*len(m.Values)
	if len(m.ShardSeqs) > 1 {
		n += 8 * (len(m.ShardSeqs) - 1)
	}
	if m.Info != nil {
		queued := 0
		for _, l := range m.Info.Locals {
			queued += len(l.Queue)
		}
		n += 64 + 24*queued + 24*len(m.Info.Gone) + 48*len(m.Info.Remote)
	}
	return n
}

// CommitMsg finalizes the winner's updates at every replica and releases its
// locks (paper §3.1: "multicasts a COMMIT message to these servers and then
// releases the lock"; §3.3: "locks from this agent will be removed from all
// locking lists"). Each update routes to the shard owning its key; a
// replica applies only the shards it is a group member of.
type CommitMsg struct {
	Txn     agent.ID
	Origin  runtime.NodeID
	Updates []store.Update
}

// Kind implements runtime.Kinder.
func (CommitMsg) Kind() string { return "commit" }

// WireSize returns the modelled size of the message.
func (m CommitMsg) WireSize() int { return 64 + 96*len(m.Updates) }

// AbortMsg withdraws a failed claim, releasing the grants the claimant
// collected on every shard (the agent keeps its queue positions and retries
// later). Attempt scopes the abort: a server releases a grant only if the
// grant was installed by an attempt not newer than this one, so a stray
// abort provoked by a long-delayed acknowledgement of an old attempt can
// never release the claimant's own current grant.
type AbortMsg struct {
	Txn     agent.ID
	Attempt int
}

// Kind implements runtime.Kinder.
func (AbortMsg) Kind() string { return "abort" }

// WireSize returns the modelled size of the message.
func (AbortMsg) WireSize() int { return 48 }

// ReadReq asks a replica for its committed value of a key — one leg of the
// consistent-read extension (read quorum R = majority, making the system
// one-copy serializable per Gifford's R+W > N condition; see
// internal/quorum.StrictSpec). The paper's protocol serves reads locally;
// this is the stricter variant its §5 invites ("the MARP approach is a
// generic method, which can be used to implement different kinds of
// replication control algorithms").
type ReadReq struct {
	ReqID uint64
	From  runtime.NodeID
	Key   string
}

// Kind implements runtime.Kinder.
func (ReadReq) Kind() string { return "read-req" }

// WireSize returns the modelled size of the message.
func (ReadReq) WireSize() int { return 48 }

// ReadRep answers a ReadReq with the replica's committed value.
type ReadRep struct {
	ReqID uint64
	From  runtime.NodeID
	Found bool
	Value store.Value
}

// Kind implements runtime.Kinder.
func (ReadRep) Kind() string { return "read-rep" }

// WireSize returns the modelled size of the message.
func (ReadRep) WireSize() int { return 96 }

// SyncRequest asks a peer for one shard's committed updates after Since —
// the paper's "background information transfer", used by replicas
// recovering from a failure or detecting a sequence gap. Shards journal and
// sync independently (the shard-isolation invariant): a recovering replica
// issues one request per shard it replicates.
type SyncRequest struct {
	From  runtime.NodeID
	Shard int
	Since uint64
}

// Kind implements runtime.Kinder.
func (SyncRequest) Kind() string { return "sync-req" }

// WireSize returns the modelled size of the message.
func (SyncRequest) WireSize() int { return 32 }

// SyncReply carries one shard's missing updates, in order, plus the
// sender's list of finished/dead agents so the recovering replica can prune
// stale lock information too.
type SyncReply struct {
	From    runtime.NodeID
	Shard   int
	Updates []store.Update
	Gone    []agent.ID
}

// Kind implements runtime.Kinder.
func (SyncReply) Kind() string { return "sync-reply" }

// WireSize returns the modelled size of the message.
func (m SyncReply) WireSize() int { return 32 + 96*len(m.Updates) + 24*len(m.Gone) }
