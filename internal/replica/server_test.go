package replica

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/simnet"
	"repro/internal/store"
)

// stubAgent is a no-op behavior used to occupy places and count local events.
type stubAgent struct {
	events int
}

func (a *stubAgent) OnArrive(*agent.Context)                       {}
func (a *stubAgent) OnMigrateFailed(*agent.Context, simnet.NodeID) {}
func (a *stubAgent) OnMessage(*agent.Context, simnet.NodeID, any)  {}
func (a *stubAgent) OnLocalEvent(ctx *agent.Context, ev any)       { a.events++ }

type fixture struct {
	sim      *des.Simulator
	net      *simnet.Network
	platform *agent.Platform
	servers  map[simnet.NodeID]*Server
}

func newFixture(t *testing.T, n int, cfg Config) *fixture {
	t.Helper()
	sim := des.New(31)
	net := simnet.New(sim, simnet.FullMesh(n), simnet.Constant(2*time.Millisecond))
	platform := agent.NewPlatform(sim, net, agent.Config{DeathNoticeDelay: 5 * time.Millisecond})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i + 1)
	}
	f := &fixture{sim: sim, net: net, platform: platform, servers: make(map[simnet.NodeID]*Server)}
	for _, id := range peers {
		f.servers[id] = New(sim, id, peers, net, platform, store.New(), cfg)
	}
	return f
}

func aid(home int, seq uint64) agent.ID {
	return agent.ID{Home: simnet.NodeID(home), Born: int64(seq), Seq: seq}
}

func TestVisitAndLockEnqueues(t *testing.T) {
	f := newFixture(t, 3, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)
	info := s.VisitAndLock(a, nil, nil, nil)
	if len(info.Locals[0].Queue) != 1 || info.Locals[0].Queue[0] != a {
		t.Fatalf("queue = %v", info.Locals[0].Queue)
	}
	info = s.VisitAndLock(b, nil, nil, nil)
	if len(info.Locals[0].Queue) != 2 || info.Locals[0].Queue[1] != b {
		t.Fatalf("queue = %v", info.Locals[0].Queue)
	}
	// Re-visiting must not duplicate the entry.
	info = s.VisitAndLock(a, nil, nil, nil)
	if len(info.Locals[0].Queue) != 2 {
		t.Fatalf("duplicate enqueue: %v", info.Locals[0].Queue)
	}
	if info.Costs[2] != 1 || info.Costs[3] != 1 {
		t.Fatalf("costs = %v", info.Costs)
	}
	if _, self := info.Costs[1]; self {
		t.Fatal("costs include self")
	}
}

func TestHeadVersionOnlyOnHeadChange(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	i1 := s.VisitAndLock(aid(1, 1), nil, nil, nil)
	hv := i1.Locals[0].HeadVersion
	i2 := s.VisitAndLock(aid(2, 2), nil, nil, nil)
	if i2.Locals[0].HeadVersion != hv {
		t.Fatal("tail append changed head version")
	}
	if i2.Locals[0].Version == i1.Locals[0].Version {
		t.Fatal("tail append did not change version")
	}
}

func remoteOf(info LockInfo, server simnet.NodeID) (QueueSnapshot, bool) {
	for _, r := range info.Remote {
		if r.Server == server {
			return r, true
		}
	}
	return QueueSnapshot{}, false
}

func TestInfoSharing(t *testing.T) {
	f := newFixture(t, 3, Config{})
	s := f.servers[1]
	snapOld := QueueSnapshot{Server: 2, Version: 1, Queue: []agent.ID{aid(1, 1)}}
	snapNew := QueueSnapshot{Server: 2, Version: 5, Queue: []agent.ID{aid(2, 2)}}
	s.VisitAndLock(aid(3, 3), nil, []QueueSnapshot{snapNew}, nil)
	info := s.VisitAndLock(aid(4, 4), nil, []QueueSnapshot{snapOld}, nil)
	got, ok := remoteOf(info, 2)
	if !ok || got.Version != 5 {
		t.Fatalf("cache = %+v", info.Remote)
	}
	// Snapshots about the server itself are ignored.
	info = s.VisitAndLock(aid(5, 5), nil, []QueueSnapshot{{Server: 1, Version: 99}}, nil)
	if _, ok := remoteOf(info, 1); ok {
		t.Fatal("server cached a snapshot about itself")
	}
}

func TestInfoSharingDisabled(t *testing.T) {
	f := newFixture(t, 3, Config{DisableInfoSharing: true})
	s := f.servers[1]
	snap := QueueSnapshot{Server: 2, Version: 5, Queue: []agent.ID{aid(2, 2)}}
	info := s.VisitAndLock(aid(3, 3), nil, []QueueSnapshot{snap}, nil)
	if info.Remote != nil {
		t.Fatalf("remote info returned with sharing disabled: %+v", info.Remote)
	}
}

func TestKnownGoneEvictsAndBlocksEnqueue(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)
	s.VisitAndLock(a, nil, nil, nil)
	s.VisitAndLock(b, nil, nil, nil)
	info := s.VisitAndLock(aid(3, 3), nil, nil, []agent.ID{a})
	if len(info.Locals[0].Queue) != 2 || info.Locals[0].Queue[0] != b {
		t.Fatalf("queue after eviction = %v", info.Locals[0].Queue)
	}
	// A gone agent can never re-enqueue.
	info = s.VisitAndLock(a, nil, nil, nil)
	for _, e := range info.Locals[0].Queue {
		if e == a {
			t.Fatal("gone agent re-enqueued")
		}
	}
}

func claim(txn agent.ID, origin simnet.NodeID, keys ...string) *UpdateMsg {
	return &UpdateMsg{Txn: txn, Origin: origin, Keys: keys}
}

func TestHandleUpdateHeadAcks(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a := aid(1, 1)
	s.VisitAndLock(a, nil, nil, nil)
	ack := s.HandleUpdateLocal(claim(a, 1, "x"))
	if !ack.OK {
		t.Fatalf("head claim nacked: %+v", ack)
	}
	if s.Granted() != a {
		t.Fatal("grant not installed")
	}
}

func TestHandleUpdateValidation(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)

	// Not enqueued.
	if ack := s.HandleUpdateLocal(claim(a, 1, "x")); ack.OK || ack.Reason != "not-enqueued" {
		t.Fatalf("ack = %+v", ack)
	}
	s.VisitAndLock(a, nil, nil, nil)
	s.VisitAndLock(b, nil, nil, nil)

	// Not head, no tie evidence.
	if ack := s.HandleUpdateLocal(claim(b, 2, "x")); ack.OK || ack.Reason != "not-head" {
		t.Fatalf("ack = %+v", ack)
	}
	if ack := s.HandleUpdateLocal(claim(b, 2, "x")); ack.Info == nil {
		t.Fatal("NACK carried no fresh lock info")
	}

	// Head claim grants; then the server is busy for everyone else.
	if ack := s.HandleUpdateLocal(claim(a, 1, "x")); !ack.OK {
		t.Fatalf("ack = %+v", ack)
	}
	if ack := s.HandleUpdateLocal(claim(b, 2, "x")); ack.OK || ack.Reason != "busy" {
		t.Fatalf("ack = %+v", ack)
	}
	// Re-claim by the grant holder stays OK (idempotent).
	if ack := s.HandleUpdateLocal(claim(a, 1, "x")); !ack.OK {
		t.Fatalf("re-claim = %+v", ack)
	}
}

func TestHandleUpdateTieEvidence(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)
	infoA := s.VisitAndLock(a, nil, nil, nil)
	s.VisitAndLock(b, nil, nil, nil) // tail append: head version unchanged

	m := claim(b, 2, "x")
	m.ByTie = true
	m.Evidence = map[simnet.NodeID]uint64{1: infoA.Locals[0].HeadVersion}
	if ack := s.HandleUpdateLocal(m); !ack.OK {
		t.Fatalf("valid tie claim nacked: %+v", ack)
	}
	s.HandleAbortLocal(&AbortMsg{Txn: b})

	// Stale evidence after a head change.
	s.OnAgentDeath(a) // head evicted -> head version bumps
	m2 := claim(b, 2, "x")
	m2.ByTie = true
	m2.Evidence = map[simnet.NodeID]uint64{1: infoA.Locals[0].HeadVersion}
	ack := s.HandleUpdateLocal(m2)
	// b is now head, so it wins as head regardless of evidence.
	if !ack.OK {
		t.Fatalf("head claim after eviction nacked: %+v", ack)
	}
}

func TestTieClaimsArbitratedByGrantOrder(t *testing.T) {
	// Two tie claimants with divergent (possibly stale) views: the grant
	// goes to whichever claim arrives first; the second is refused until
	// the first commits or aborts. This is the safety net that makes
	// stale lock tables harmless (DESIGN.md, protocol fortification).
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	b, c := aid(2, 2), aid(3, 3)
	s.VisitAndLock(b, nil, nil, nil)
	s.VisitAndLock(c, nil, nil, nil)

	mc := claim(c, 2, "x")
	mc.ByTie = true
	if ack := s.HandleUpdateLocal(mc); !ack.OK {
		t.Fatalf("first tie claim refused: %+v", ack)
	}
	mb := claim(b, 2, "x")
	mb.ByTie = true
	if ack := s.HandleUpdateLocal(mb); ack.OK || ack.Reason != "busy" {
		t.Fatalf("second tie claim not refused: %+v", ack)
	}
	s.HandleAbortLocal(&AbortMsg{Txn: c})
	if ack := s.HandleUpdateLocal(mb); !ack.OK {
		t.Fatalf("tie claim after release refused: %+v", ack)
	}
}

func TestCommitAppliesReleasesAndRecords(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)
	s.VisitAndLock(a, nil, nil, nil)
	s.VisitAndLock(b, nil, nil, nil)
	stub := &stubAgent{}
	f.platform.Spawn(1, stub)

	ack := s.HandleUpdateLocal(claim(a, 1, "x"))
	if !ack.OK {
		t.Fatal("claim failed")
	}
	s.HandleCommitLocal(&CommitMsg{
		Txn:     a,
		Origin:  1,
		Updates: []store.Update{{TxnID: a.String(), Key: "x", Data: "v1", Seq: 1, Stamp: 10}},
	})
	if v, ok := s.LocalRead("x"); !ok || v.Data != "v1" {
		t.Fatalf("read = %+v %v", v, ok)
	}
	q := s.Queue()
	if len(q) != 1 || q[0] != b {
		t.Fatalf("queue after commit = %v", q)
	}
	if !s.Granted().IsZero() {
		t.Fatal("grant not released")
	}
	gone := s.Gone()
	if len(gone) != 1 || gone[0] != a {
		t.Fatalf("gone = %v", gone)
	}
	if stub.events == 0 {
		t.Fatal("residents not notified of commit")
	}
}

func TestAbortReleasesGrantOnly(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a := aid(1, 1)
	s.VisitAndLock(a, nil, nil, nil)
	s.HandleUpdateLocal(claim(a, 1, "x"))
	s.HandleAbortLocal(&AbortMsg{Txn: a})
	if !s.Granted().IsZero() {
		t.Fatal("grant survived abort")
	}
	if len(s.Queue()) != 1 {
		t.Fatal("abort removed the queue entry")
	}
	// Aborting a non-holder is a no-op.
	s.HandleUpdateLocal(claim(a, 1, "x"))
	s.HandleAbortLocal(&AbortMsg{Txn: aid(9, 9)})
	if s.Granted() != a {
		t.Fatal("unrelated abort cleared grant")
	}
}

func TestCommitGapTriggersSyncAndBacklog(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s1, s2 := f.servers[1], f.servers[2]
	// s1 has updates 1 and 2; s2 only learns about 2 -> gap -> sync from s1.
	u1 := store.Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1, Stamp: 1}
	u2 := store.Update{TxnID: "t2", Key: "x", Data: "b", Seq: 2, Stamp: 2}
	if err := s1.Store().ApplyCommitted(u1); err != nil {
		t.Fatal(err)
	}
	if err := s1.Store().ApplyCommitted(u2); err != nil {
		t.Fatal(err)
	}
	s2.Deliver(simnet.Message{From: 1, To: 2, Payload: &CommitMsg{Txn: aid(9, 9), Origin: 1, Updates: []store.Update{u2}}})
	if s2.Store().LastSeq() != 0 {
		t.Fatal("gapped update applied immediately")
	}
	f.sim.Run()
	if s2.Store().LastSeq() != 2 {
		t.Fatalf("after sync LastSeq = %d, want 2", s2.Store().LastSeq())
	}
	if v, _ := s2.LocalRead("x"); v.Data != "b" {
		t.Fatalf("read = %+v", v)
	}
}

func TestCrashClearsVolatileKeepsStore(t *testing.T) {
	f := newFixture(t, 3, Config{})
	s := f.servers[1]
	a := aid(1, 1)
	s.VisitAndLock(a, nil, nil, nil)
	s.HandleUpdateLocal(claim(a, 1, "x"))
	if err := s.Store().ApplyCommitted(store.Update{TxnID: "t", Key: "x", Data: "v", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if !s.Down() || len(s.Queue()) != 0 || !s.Granted().IsZero() {
		t.Fatal("volatile state survived crash")
	}
	if v, ok := s.LocalRead("x"); !ok || v.Data != "v" {
		t.Fatal("stable store lost on crash")
	}
	// A down server ignores deliveries.
	s.Deliver(simnet.Message{From: 2, To: 1, Payload: &CommitMsg{Txn: aid(2, 2), Origin: 2,
		Updates: []store.Update{{TxnID: "t2", Key: "y", Data: "w", Seq: 2}}}})
	if s.Store().LastSeq() != 1 {
		t.Fatal("down server applied an update")
	}
}

func TestRecoverSyncsFromPeers(t *testing.T) {
	f := newFixture(t, 3, Config{})
	s1, s2 := f.servers[1], f.servers[2]
	for i := 1; i <= 4; i++ {
		u := store.Update{TxnID: "t", Key: "x", Data: "v", Seq: uint64(i), Stamp: int64(i)}
		u.TxnID = u.TxnID + string(rune('0'+i))
		if err := s2.Store().ApplyCommitted(u); err != nil {
			t.Fatal(err)
		}
		if err := f.servers[3].Store().ApplyCommitted(u); err != nil {
			t.Fatal(err)
		}
	}
	s1.Crash()
	f.net.SetDown(1, true)
	f.sim.RunFor(10 * time.Millisecond)
	f.net.SetDown(1, false)
	s1.Recover()
	f.sim.Run()
	if s1.Store().LastSeq() != 4 {
		t.Fatalf("recovered LastSeq = %d, want 4", s1.Store().LastSeq())
	}
	if s1.snapshot(0).Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", s1.snapshot(0).Epoch)
	}
}

func TestOnAgentDeathReleasesEverything(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a, b := aid(1, 1), aid(2, 2)
	s.VisitAndLock(a, nil, nil, nil)
	s.VisitAndLock(b, nil, nil, nil)
	s.HandleUpdateLocal(claim(a, 1, "x"))
	stub := &stubAgent{}
	f.platform.Spawn(1, stub)
	s.OnAgentDeath(a)
	if len(s.Queue()) != 1 || s.Queue()[0] != b {
		t.Fatalf("queue = %v", s.Queue())
	}
	if !s.Granted().IsZero() {
		t.Fatal("dead agent's grant survived")
	}
	if stub.events == 0 {
		t.Fatal("death eviction did not notify residents")
	}
	// Idempotent.
	s.OnAgentDeath(a)
}

func TestQueueSnapshotNewerAndClone(t *testing.T) {
	a := QueueSnapshot{Epoch: 0, Version: 5}
	b := QueueSnapshot{Epoch: 0, Version: 6}
	c := QueueSnapshot{Epoch: 1, Version: 1}
	if !b.Newer(a) || a.Newer(b) {
		t.Fatal("version ordering")
	}
	if !c.Newer(b) {
		t.Fatal("epoch dominates version")
	}
	orig := QueueSnapshot{Queue: []agent.ID{aid(1, 1)}}
	cl := orig.Clone()
	cl.Queue[0] = aid(2, 2)
	if orig.Queue[0] != aid(1, 1) {
		t.Fatal("Clone aliases queue")
	}
}

func TestUpdateAckRoundTripOverNetwork(t *testing.T) {
	f := newFixture(t, 2, Config{})
	s2 := f.servers[2]
	a := aid(1, 1)
	s2.VisitAndLock(a, nil, nil, nil)

	// Spawn an agent at node 1 to receive the ack.
	var got *AckMsg
	recv := &msgAgent{onMsg: func(payload any) { got = payload.(*AckMsg) }}
	ctx := f.platform.Spawn(1, recv)
	// Claims carry the real agent ID; enqueue it at server 2 first.
	s2.VisitAndLock(ctx.ID(), nil, nil, []agent.ID{a})
	m := claim(ctx.ID(), 1, "x")
	f.net.Send(simnet.Message{From: 1, To: 2, Payload: m, Size: m.WireSize()})
	f.sim.Run()
	if got == nil || !got.OK {
		t.Fatalf("ack = %+v", got)
	}
}

type msgAgent struct {
	onMsg func(any)
}

func (m *msgAgent) OnArrive(*agent.Context)                       {}
func (m *msgAgent) OnMigrateFailed(*agent.Context, simnet.NodeID) {}
func (m *msgAgent) OnMessage(ctx *agent.Context, from simnet.NodeID, payload any) {
	if m.onMsg != nil {
		m.onMsg(payload)
	}
}
func (m *msgAgent) OnLocalEvent(*agent.Context, any) {}

func TestStaleAbortCannotReleaseNewerGrant(t *testing.T) {
	// A long-delayed abort for claim attempt 1 arrives after the same
	// transaction re-acquired the grant with attempt 2: the grant must
	// survive, or an ack-majority would no longer imply a grant-majority.
	f := newFixture(t, 2, Config{})
	s := f.servers[1]
	a := aid(1, 1)
	s.VisitAndLock(a, nil, nil, nil)
	m1 := claim(a, 1, "x")
	m1.Attempt = 1
	if ack := s.HandleUpdateLocal(m1); !ack.OK {
		t.Fatalf("attempt 1 claim: %+v", ack)
	}
	// Attempt 1 aborted and attempt 2 granted...
	s.HandleAbortLocal(&AbortMsg{Txn: a, Attempt: 1})
	m2 := claim(a, 1, "x")
	m2.Attempt = 2
	if ack := s.HandleUpdateLocal(m2); !ack.OK {
		t.Fatalf("attempt 2 claim: %+v", ack)
	}
	// ...then the stray attempt-1 abort finally lands.
	s.HandleAbortLocal(&AbortMsg{Txn: a, Attempt: 1})
	if s.Granted() != a {
		t.Fatal("stale abort released the newer grant")
	}
	// A current-attempt abort still releases.
	s.HandleAbortLocal(&AbortMsg{Txn: a, Attempt: 2})
	if !s.Granted().IsZero() {
		t.Fatal("current abort did not release")
	}
}
