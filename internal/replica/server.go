package replica

import (
	"errors"
	"sort"

	"repro/internal/agent"
	"repro/internal/durable"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config carries per-server options.
type Config struct {
	// DisableInfoSharing turns off the paper's locking-information
	// exchange: servers neither cache nor hand out remote LL snapshots
	// (ablation A1 in DESIGN.md).
	DisableInfoSharing bool
	// GrantObserver, if non-nil, is invoked whenever the server's grant
	// changes (installed, released, aborted, or evicted). The core
	// package's Referee uses it to check Theorem 2 on every run; a zero
	// txn means the grant was released.
	GrantObserver func(server runtime.NodeID, txn agent.ID)
	// Intercept, if non-nil, sees every server-bound message before the
	// Algorithm 2 handlers; returning true consumes it. The cluster layer
	// uses it for cross-process notifications (e.g. an agent reporting its
	// outcome back to its home node) that are not part of the replica
	// protocol itself.
	Intercept func(msg runtime.Message) bool
	// Trace, if non-nil, receives server events.
	Trace *trace.Log
	// Journal, if non-nil, makes the server durable: every store and
	// locking-state mutation is logged through it after succeeding.
	Journal *durable.Journal
	// Restore, if non-nil, is the state recovered from Journal's log; the
	// server rebuilds itself from it before attaching the journal (pass a
	// nil store to New in that case — Restore supplies it).
	Restore *durable.State
}

// Server is one replicated server: data copy, Locking List, Updated List,
// routing table, and the message handlers of the paper's Algorithm 2.
//
// A Server is driven entirely from its engine's execution context (network
// deliveries, local calls from co-located agents), so it needs no locking.
type Server struct {
	id       runtime.NodeID
	peers    []runtime.NodeID // all other replicas
	net      runtime.Fabric
	clock    runtime.Clock
	platform *agent.Platform
	place    *agent.Place
	st       *store.Store
	cfg      Config
	journal  *durable.Journal // nil = volatile server (the default)

	// Volatile locking state. Version counters deliberately survive
	// crashes (see Crash): monotone versions make stale-evidence checks
	// sound across recoveries without a persisted epoch.
	epoch        uint64
	llVersion    uint64
	headVersion  uint64
	ll           []agent.ID
	gone         map[agent.ID]bool
	goneList     []agent.ID
	cache        map[runtime.NodeID]QueueSnapshot
	grant        agent.ID
	grantAttempt int
	backlog      map[uint64]store.Update
	down         bool

	// Pending quorum reads coordinated by this server.
	readSeq uint64
	reads   map[uint64]*quorumRead
}

// quorumRead tracks one in-flight consistent read.
type quorumRead struct {
	key     string
	replies map[runtime.NodeID]ReadRep
	needed  int
	done    func(store.Value, bool)
}

// New creates a server for node id over the given substrates, hosts an
// agent place on its node, and registers itself for network delivery and
// agent-death notices. peers must list every replica ID including id (in a
// multi-process deployment: every replica in the system, not just the local
// one). clock supplies timestamps for traces.
func New(clock runtime.Clock, id runtime.NodeID, peers []runtime.NodeID, net runtime.Fabric, platform *agent.Platform, st *store.Store, cfg Config) *Server {
	if st == nil {
		st = store.New()
	}
	others := make([]runtime.NodeID, 0, len(peers))
	for _, p := range peers {
		if p != id {
			others = append(others, p)
		}
	}
	s := &Server{
		id:       id,
		peers:    others,
		net:      net,
		clock:    clock,
		platform: platform,
		st:       st,
		cfg:      cfg,
		gone:     make(map[agent.ID]bool),
		cache:    make(map[runtime.NodeID]QueueSnapshot),
		backlog:  make(map[uint64]store.Update),
		reads:    make(map[uint64]*quorumRead),
	}
	s.place = platform.Host(id, s)
	s.place.SetDeathListener(s)
	if cfg.Restore != nil {
		s.restore(cfg.Restore)
	}
	if cfg.Journal != nil {
		s.attachJournal(cfg.Journal)
		if cfg.Restore != nil {
			// Persist the recovery epoch bump immediately: a second crash
			// before any other mutation must still see a fresh epoch.
			s.logLock(true)
		}
	}
	return s
}

// restore rebuilds the server's durable state from a recovered snapshot.
// No journal is attached yet, so the rebuild itself is not re-logged.
// Counters merge by max with whatever the server already holds (the DES
// restart path keeps memory across Crash), then the epoch is bumped so
// agents can tell post-recovery snapshots from pre-crash ones. The Locking
// List and grant are restored as-is: stale entries only ever cause extra
// nacks (safe under Theorem 2), and the gone-set propagation plus claim
// timeouts clear them.
func (s *Server) restore(st *durable.State) {
	s.st = store.FromState(st.Store)
	if st.Lock.Epoch > s.epoch {
		s.epoch = st.Lock.Epoch
	}
	s.epoch++
	if st.Lock.LLVersion > s.llVersion {
		s.llVersion = st.Lock.LLVersion
	}
	if st.Lock.HeadVersion > s.headVersion {
		s.headVersion = st.Lock.HeadVersion
	}
	s.ll = append([]agent.ID(nil), st.Lock.LL...)
	for _, id := range st.Gone {
		if !s.gone[id] {
			s.gone[id] = true
			s.goneList = append(s.goneList, id)
		}
	}
	s.setGrant(st.Lock.Grant)
	if st.Lock.GrantAttempt > s.grantAttempt {
		s.grantAttempt = st.Lock.GrantAttempt
	}
	s.bump(true) // recovery is a fresh head state
}

// attachJournal wires the journal into the store and registers the
// server's contribution to compaction snapshots.
func (s *Server) attachJournal(j *durable.Journal) {
	s.journal = j
	s.st.SetJournal(j)
	j.AddSource(func(st *durable.State) {
		st.Store = s.st.State()
		st.Lock = s.lockState()
		st.Gone = append([]agent.ID(nil), s.goneList...)
	})
}

// DetachJournal unhooks durability without touching protocol state — the
// graceful-shutdown path, where the journal is about to be closed while the
// server may still field stray callbacks that must not append to it.
func (s *Server) DetachJournal() {
	s.journal = nil
	s.st.SetJournal(nil)
}

// lockState captures the serializable locking state.
func (s *Server) lockState() durable.LockState {
	return durable.LockState{
		Epoch:        s.epoch,
		LLVersion:    s.llVersion,
		HeadVersion:  s.headVersion,
		LL:           append([]agent.ID(nil), s.ll...),
		Grant:        s.grant,
		GrantAttempt: s.grantAttempt,
	}
}

// logLock journals the full locking state after a mutation. barrier marks
// grant and epoch transitions — the mutations whose loss could re-grant a
// lock this server already released, or reuse an epoch.
func (s *Server) logLock(barrier bool) {
	if s.journal != nil {
		s.journal.LogLock(s.lockState(), barrier)
	}
}

// ID returns the server's node ID.
func (s *Server) ID() runtime.NodeID { return s.id }

// Store returns the server's data store.
func (s *Server) Store() *store.Store { return s.st }

// Place returns the agent place co-located with the server.
func (s *Server) Place() *agent.Place { return s.place }

// Queue returns a copy of the current Locking List (head first).
func (s *Server) Queue() []agent.ID {
	out := make([]agent.ID, len(s.ll))
	copy(out, s.ll)
	return out
}

// Granted returns the transaction currently holding this server's grant
// (zero ID if none).
func (s *Server) Granted() agent.ID { return s.grant }

// Down reports whether the server is crashed.
func (s *Server) Down() bool { return s.down }

// LocalRead serves a read from the local copy — the paper's fast read path
// ("a read operation may be executed on an arbitrary copy").
func (s *Server) LocalRead(key string) (store.Value, bool) {
	return s.st.Get(key)
}

// snapshot captures the current LL for handing to agents.
func (s *Server) snapshot() QueueSnapshot {
	q := make([]agent.ID, len(s.ll))
	copy(q, s.ll)
	return QueueSnapshot{
		Server:      s.id,
		Epoch:       s.epoch,
		Version:     s.llVersion,
		HeadVersion: s.headVersion,
		Queue:       q,
	}
}

// bump records an LL mutation; headChanged marks mutations that altered the
// head (the only ones that can change any agent's priority decision).
func (s *Server) bump(headChanged bool) {
	s.llVersion++
	if headChanged {
		s.headVersion = s.llVersion
	}
}

// setGrant changes the exclusive grant and informs the observer.
func (s *Server) setGrant(txn agent.ID) {
	if s.grant == txn {
		return
	}
	s.grant = txn
	if s.cfg.GrantObserver != nil {
		s.cfg.GrantObserver(s.id, txn)
	}
}

// markGone records that an agent finished or died, evicting its LL entry.
// It reports whether local state changed.
func (s *Server) markGone(id agent.ID) bool {
	changed := false
	if !s.gone[id] {
		s.gone[id] = true
		s.goneList = append(s.goneList, id)
		if s.journal != nil {
			s.journal.LogGone(id)
		}
		changed = true
	}
	lockChanged := false
	for i, e := range s.ll {
		if e == id {
			headChanged := i == 0
			s.ll = append(s.ll[:i], s.ll[i+1:]...)
			s.bump(headChanged)
			lockChanged = true
			break
		}
	}
	released := false
	if s.grant == id {
		s.setGrant(agent.ID{})
		released = true
	}
	if lockChanged || released {
		s.logLock(released)
	}
	return changed || lockChanged || released
}

// notify raises LLChanged to resident agents.
func (s *Server) notify() {
	s.place.NotifyResidents(LLChanged{Server: s.id})
}

// VisitAndLock is the local interaction of a just-arrived agent with its
// host server (paper Algorithm 2, "upon arrival of a mobile agent"): the
// server appends the agent to its Locking List, absorbs the locking
// information the agent carries, and returns everything the agent needs to
// update its own data structures.
func (s *Server) VisitAndLock(id agent.ID, shared map[runtime.NodeID]QueueSnapshot, knownGone []agent.ID) LockInfo {
	// Absorb the agent's knowledge of finished/dead agents first, so a
	// stale entry never blocks the queue.
	mutated := false
	for _, g := range knownGone {
		if s.markGone(g) {
			mutated = true
		}
	}
	if !s.cfg.DisableInfoSharing {
		for node, snap := range shared {
			if node == s.id {
				continue
			}
			if cur, ok := s.cache[node]; !ok || snap.Newer(cur) {
				s.cache[node] = snap.Clone()
			}
		}
	}
	if !s.gone[id] && !s.contains(id) {
		s.ll = append(s.ll, id)
		s.bump(len(s.ll) == 1)
		s.logLock(false)
		mutated = len(s.ll) == 1 || mutated
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), id.String(), trace.LockRequested, "pos %d", len(s.ll))
	}
	if mutated {
		s.notify()
	}
	return s.lockInfo()
}

func (s *Server) contains(id agent.ID) bool {
	for _, e := range s.ll {
		if e == id {
			return true
		}
	}
	return false
}

// lockInfo assembles the LockInfo for a visiting or refreshing agent.
func (s *Server) lockInfo() LockInfo {
	gone := make([]agent.ID, len(s.goneList))
	copy(gone, s.goneList)
	costs := make(map[runtime.NodeID]float64, len(s.peers))
	for _, p := range s.peers {
		costs[p] = s.net.Cost(s.id, p)
	}
	var remote map[runtime.NodeID]QueueSnapshot
	if !s.cfg.DisableInfoSharing && len(s.cache) > 0 {
		remote = make(map[runtime.NodeID]QueueSnapshot, len(s.cache))
		for n, snap := range s.cache {
			remote[n] = snap.Clone()
		}
	}
	return LockInfo{
		Local:   s.snapshot(),
		Gone:    gone,
		Remote:  remote,
		Costs:   costs,
		LastSeq: s.st.LastSeq(),
	}
}

// RefreshInfo returns current LockInfo without enqueueing anybody — used by
// parked agents recomputing their priority after a notification.
func (s *Server) RefreshInfo() LockInfo { return s.lockInfo() }

// Deliver implements runtime.Handler for server-bound protocol messages.
func (s *Server) Deliver(msg runtime.Message) {
	if s.down {
		return
	}
	if s.cfg.Intercept != nil && s.cfg.Intercept(msg) {
		return
	}
	switch m := msg.Payload.(type) {
	case *UpdateMsg:
		ack := s.handleUpdate(m)
		s.platform.SendToAgent(s.id, m.Origin, m.Txn, ack, ack.WireSize())
	case *CommitMsg:
		s.handleCommit(m)
	case *AbortMsg:
		s.handleAbort(m)
	case *SyncRequest:
		s.handleSyncRequest(m)
	case *SyncReply:
		s.handleSyncReply(m)
	case *ReadReq:
		v, ok := s.st.Get(m.Key)
		rep := &ReadRep{ReqID: m.ReqID, From: s.id, Found: ok, Value: v}
		s.net.Send(runtime.Message{From: s.id, To: m.From, Payload: rep, Size: rep.WireSize()})
	case *ReadRep:
		s.handleReadRep(m)
	}
}

// QuorumRead coordinates a consistent read: it collects the committed value
// of key from a majority of replicas (this one included) and calls done with
// the most recent version. Because any read majority intersects any write
// majority's COMMIT set eventually — and the global sequence number makes
// "most recent" unambiguous — the result is never older than the last update
// whose commit round completed.
func (s *Server) QuorumRead(key string, done func(store.Value, bool)) {
	s.readSeq++
	majority := (len(s.peers)+1)/2 + 1
	qr := &quorumRead{
		key:     key,
		replies: make(map[runtime.NodeID]ReadRep),
		needed:  majority,
		done:    done,
	}
	s.reads[s.readSeq] = qr
	// Local copy counts immediately.
	v, ok := s.st.Get(key)
	qr.replies[s.id] = ReadRep{ReqID: s.readSeq, From: s.id, Found: ok, Value: v}
	if s.maybeFinishRead(s.readSeq) {
		return
	}
	req := &ReadReq{ReqID: s.readSeq, From: s.id, Key: key}
	for _, p := range s.peers {
		s.net.Send(runtime.Message{From: s.id, To: p, Payload: req, Size: req.WireSize()})
	}
}

func (s *Server) handleReadRep(m *ReadRep) {
	qr, ok := s.reads[m.ReqID]
	if !ok {
		return
	}
	qr.replies[m.From] = *m
	s.maybeFinishRead(m.ReqID)
}

func (s *Server) maybeFinishRead(id uint64) bool {
	qr := s.reads[id]
	if qr == nil || len(qr.replies) < qr.needed {
		return false
	}
	delete(s.reads, id)
	var best store.Value
	found := false
	for _, rep := range qr.replies {
		if !rep.Found {
			continue
		}
		if !found || best.Version.Less(rep.Value.Version) {
			best = rep.Value
		}
		found = true
	}
	qr.done(best, found)
	return true
}

// HandleUpdateLocal processes the claim of a co-located agent at memory
// speed (the mobile-agent advantage: the conversation with the local server
// pays no network latency).
func (s *Server) HandleUpdateLocal(m *UpdateMsg) *AckMsg { return s.handleUpdate(m) }

// HandleCommitLocal applies a co-located agent's commit directly.
func (s *Server) HandleCommitLocal(m *CommitMsg) { s.handleCommit(m) }

// HandleAbortLocal applies a co-located agent's abort directly.
func (s *Server) HandleAbortLocal(m *AbortMsg) { s.handleAbort(m) }

// handleUpdate validates a permission claim (see DESIGN.md, "protocol
// fortification"): the server ACKs only if it is not already granted to
// another claimant AND the claimant either heads the local LL or claims via
// the tie-break rule while enqueued here. A majority of ACKs implies a
// unique winner regardless of how stale the claimant's view was, because
// grants are exclusive until COMMIT or ABORT and any two majorities
// intersect — the grants, not the evidence, are the arbiter.
func (s *Server) handleUpdate(m *UpdateMsg) *AckMsg {
	nack := func(reason string) *AckMsg {
		info := s.lockInfo()
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.UpdateNacked, "%s", reason)
		return &AckMsg{Txn: m.Txn, Attempt: m.Attempt, From: s.id, Reason: reason, Info: &info}
	}
	if !s.grant.IsZero() && s.grant != m.Txn {
		return nack("busy")
	}
	if s.gone[m.Txn] {
		return nack("gone")
	}
	if !s.contains(m.Txn) {
		return nack("not-enqueued")
	}
	isHead := len(s.ll) > 0 && s.ll[0] == m.Txn
	if !isHead && !m.ByTie {
		return nack("not-head")
	}
	s.setGrant(m.Txn)
	s.grantAttempt = m.Attempt
	s.logLock(true) // a lost grant record could let a restart re-grant
	values := make(map[string]store.Value, len(m.Keys))
	for _, k := range m.Keys {
		if v, ok := s.st.Get(k); ok {
			values[k] = v
		}
	}
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.UpdateAcked, "")
	return &AckMsg{Txn: m.Txn, Attempt: m.Attempt, From: s.id, OK: true, LastSeq: s.st.LastSeq(), Values: values}
}

// handleCommit applies the winner's updates, releases its locks, and adds it
// to the Updated List. A sequence gap means this replica missed earlier
// updates (it was down); the updates are held back and a sync is requested.
func (s *Server) handleCommit(m *CommitMsg) {
	for _, u := range m.Updates {
		if err := s.st.ApplyCommitted(u); err != nil {
			if errors.Is(err, store.ErrSeqGap) {
				s.backlog[u.Seq] = u
				s.requestSync(m.Origin)
				continue
			}
			// Stale updates are idempotently ignored by ApplyCommitted;
			// anything else indicates a protocol bug.
			panic("replica: commit apply failed: " + err.Error())
		}
	}
	// This commit may have filled the gap ahead of earlier out-of-order
	// arrivals (jittered links do not preserve FIFO).
	s.drainBacklog()
	s.markGone(m.Txn)
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.Committed, "%d updates, seq now %d", len(m.Updates), s.st.LastSeq())
	s.notify()
	if s.journal != nil {
		s.journal.MaybeCompact() // post-commit is a quiescent point
	}
}

// handleAbort withdraws a claim's grant.
func (s *Server) handleAbort(m *AbortMsg) {
	if s.grant == m.Txn && m.Attempt >= s.grantAttempt {
		s.setGrant(agent.ID{})
		s.logLock(true)
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.ClaimAborted, "grant released")
	}
}

// RequestSync starts an anti-entropy round with all peers: fetch the
// committed updates after the local horizon. The cluster invokes it on every
// live server after a partition heals, because a minority partition that
// missed final COMMIT broadcasts has no sequence gap of its own to notice.
func (s *Server) RequestSync() {
	if s.down {
		return
	}
	s.requestSync(runtime.None)
}

// requestSync asks origin (falling back to all peers if origin is the
// server itself) for the updates after the local horizon.
func (s *Server) requestSync(origin runtime.NodeID) {
	req := &SyncRequest{From: s.id, Since: s.st.LastSeq()}
	if origin != s.id && origin != runtime.None {
		s.net.Send(runtime.Message{From: s.id, To: origin, Payload: req, Size: req.WireSize()})
		return
	}
	for _, p := range s.peers {
		s.net.Send(runtime.Message{From: s.id, To: p, Payload: req, Size: req.WireSize()})
	}
}

func (s *Server) handleSyncRequest(m *SyncRequest) {
	updates := s.st.UpdatesSince(m.Since)
	if len(updates) == 0 && len(s.goneList) == 0 {
		return
	}
	gone := make([]agent.ID, len(s.goneList))
	copy(gone, s.goneList)
	reply := &SyncReply{From: s.id, Updates: updates, Gone: gone}
	s.net.Send(runtime.Message{From: s.id, To: m.From, Payload: reply, Size: reply.WireSize()})
}

// drainBacklog applies consecutive backlogged commits now that earlier
// updates may have landed. It reports whether anything was applied.
func (s *Server) drainBacklog() bool {
	applied := false
	for {
		u, ok := s.backlog[s.st.LastSeq()+1]
		if !ok {
			return applied
		}
		delete(s.backlog, u.Seq)
		if err := s.st.ApplyCommitted(u); err != nil {
			return applied
		}
		applied = true
	}
}

func (s *Server) handleSyncReply(m *SyncReply) {
	applied := false
	for _, u := range m.Updates {
		if err := s.st.ApplyCommitted(u); err == nil && u.Seq == s.st.LastSeq() {
			applied = true
		}
	}
	if s.drainBacklog() {
		applied = true
	}
	mutated := false
	for _, g := range m.Gone {
		if s.markGone(g) {
			mutated = true
		}
	}
	if applied || mutated {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerSynced, "seq now %d", s.st.LastSeq())
		s.notify()
		if s.journal != nil {
			s.journal.MaybeCompact()
		}
	}
}

// OnAgentDeath implements agent.DeathListener: evict the dead agent's lock
// entry and release its grant, so a crashed agent never wedges the queue.
func (s *Server) OnAgentDeath(id agent.ID) {
	if s.down {
		return
	}
	if s.markGone(id) {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), id.String(), trace.LockReleased, "agent died")
		s.notify()
	}
}

// Crash models a fail-stop failure: all volatile locking state is lost; the
// committed store survives (stable storage). The caller is responsible for
// also marking the node down in the network and killing resident agents —
// the cluster layer in internal/core orchestrates all three.
func (s *Server) Crash() {
	// Detach durability first: a dead node journals nothing, and the
	// volatile wipe below must not masquerade as protocol mutations. The
	// cluster layer additionally kills the journal's log handle and crashes
	// the backing disk.
	s.journal = nil
	s.st.SetJournal(nil)
	s.down = true
	s.ll = nil
	s.cache = make(map[runtime.NodeID]QueueSnapshot)
	s.setGrant(agent.ID{})
	s.backlog = make(map[uint64]store.Update)
	// gone survives: it is derived from committed state and death notices,
	// and keeping it only ever suppresses already-finished agents.
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerCrashed, "")
}

// Recover brings the server back: it bumps its epoch (so agents can tell
// post-recovery snapshots from pre-crash ones) and starts a background sync
// with its peers to fetch the updates it missed.
func (s *Server) Recover() {
	s.down = false
	s.epoch++
	s.bump(true) // the (now empty) LL is a fresh head state
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerRecover, "epoch %d", s.epoch)
	s.requestSync(runtime.None)
}

// Restart is the durable counterpart of Recover: the server comes back
// from its journal rather than from nothing. j is the freshly re-opened
// journal and st the state it replayed (nil on an empty log). Like Recover
// it ends with an anti-entropy round — the WAL restores what this replica
// committed; the peers supply what it missed while down.
func (s *Server) Restart(j *durable.Journal, st *durable.State) {
	s.down = false
	s.cache = make(map[runtime.NodeID]QueueSnapshot)
	s.backlog = make(map[uint64]store.Update)
	if st != nil {
		s.restore(st)
	} else {
		s.epoch++
		s.bump(true)
	}
	if j != nil {
		s.attachJournal(j)
		s.logLock(true) // make the recovery epoch durable immediately
	}
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerRecover, "epoch %d, seq %d restored", s.epoch, s.st.LastSeq())
	s.requestSync(runtime.None)
}

// Gone returns the agents this server knows to have finished or died, in
// discovery order.
func (s *Server) Gone() []agent.ID {
	out := make([]agent.ID, len(s.goneList))
	copy(out, s.goneList)
	return out
}

// Peers returns the other replica IDs, sorted.
func (s *Server) Peers() []runtime.NodeID {
	out := make([]runtime.NodeID, len(s.peers))
	copy(out, s.peers)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
