package replica

import (
	"errors"
	"sort"

	"repro/internal/agent"
	"repro/internal/durable"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config carries per-server options.
type Config struct {
	// Shards is the number of key-space shards (default 1). Every shard
	// has its own Locking List, store, and exclusive grant on this
	// server; keys map to shards by hash (internal/shard).
	Shards int
	// Groups lists the replica group of every shard (ascending node
	// order). nil means every replica serves every shard — full
	// replication, the pre-sharding behavior.
	Groups [][]runtime.NodeID
	// Quorums optionally overrides the read-quorum geometry per shard
	// for consistent reads. nil keeps the legacy node-count majority
	// over the shard's group.
	Quorums []quorum.Assignment
	// DisableInfoSharing turns off the paper's locking-information
	// exchange: servers neither cache nor hand out remote LL snapshots
	// (ablation A1 in DESIGN.md).
	DisableInfoSharing bool
	// GrantObserver, if non-nil, is invoked whenever one of the server's
	// per-shard grants changes (installed, released, aborted, or
	// evicted). The core package's Referee uses it to check Theorem 2 on
	// every run; a zero txn means the grant was released.
	GrantObserver func(server runtime.NodeID, shrd int, txn agent.ID)
	// Intercept, if non-nil, sees every server-bound message before the
	// Algorithm 2 handlers; returning true consumes it. The cluster layer
	// uses it for cross-process notifications (e.g. an agent reporting its
	// outcome back to its home node) that are not part of the replica
	// protocol itself.
	Intercept func(msg runtime.Message) bool
	// Trace, if non-nil, receives server events.
	Trace *trace.Log
	// Journal, if non-nil, makes the server durable: every store and
	// locking-state mutation is logged through it after succeeding.
	Journal *durable.Journal
	// Restore, if non-nil, is the state recovered from Journal's log; the
	// server rebuilds itself from it before attaching the journal (pass a
	// nil store to New in that case — Restore supplies it).
	Restore *durable.State
}

// shardState is one shard's locking domain on this server: its slice of the
// data, its Locking List, and its exclusive grant. Commits on one shard
// never block, reorder with, or share volatile state with commits on
// another (the shard-isolation invariant).
type shardState struct {
	st           *store.Store
	llVersion    uint64
	headVersion  uint64
	ll           []agent.ID
	cache        map[runtime.NodeID]QueueSnapshot
	grant        agent.ID
	grantAttempt int
	backlog      map[uint64]store.Update
	member       bool             // this server is in the shard's replica group
	peers        []runtime.NodeID // other group members
}

// Server is one replicated server: data copy, per-shard Locking Lists,
// Updated List, routing table, and the message handlers of the paper's
// Algorithm 2.
//
// A Server is driven entirely from its engine's execution context (network
// deliveries, local calls from co-located agents), so it needs no locking.
type Server struct {
	id       runtime.NodeID
	peers    []runtime.NodeID // all other replicas
	net      runtime.Fabric
	clock    runtime.Clock
	platform *agent.Platform
	place    *agent.Place
	cfg      Config
	journal  *durable.Journal // nil = volatile server (the default)

	// Per-shard locking state. Version counters deliberately survive
	// crashes (see Crash): monotone versions make stale-evidence checks
	// sound across recoveries without a persisted epoch.
	shards []*shardState

	// Global volatile state: the epoch and the Updated List span shards
	// (an agent is "gone" everywhere once it committed or died).
	epoch    uint64
	gone     map[agent.ID]bool
	goneList []agent.ID
	down     bool

	// Pending quorum reads coordinated by this server.
	readSeq uint64
	reads   map[uint64]*quorumRead

	// costs caches the per-peer link costs handed out in every LockInfo —
	// topology is static, so the map is built once and shared read-only.
	costs map[runtime.NodeID]float64

	// scoped enables shard-scoped LLChanged events. Only set over a
	// wire-delivery fabric (the live deployment): the global wakeup also let
	// agents on unrelated shards observe silent (non-head) queue mutations,
	// and the simulator's figures depend on that exact schedule, so the DES
	// engine keeps raising unscoped events bit-for-bit as before.
	scoped bool
}

// quorumRead tracks one in-flight consistent read.
type quorumRead struct {
	key        string
	replies    map[runtime.NodeID]ReadRep
	needed     int
	assignment quorum.Assignment // nil = node-count majority (needed)
	done       func(store.Value, bool)
}

// New creates a server for node id over the given substrates, hosts an
// agent place on its node, and registers itself for network delivery and
// agent-death notices. peers must list every replica ID including id (in a
// multi-process deployment: every replica in the system, not just the local
// one). clock supplies timestamps for traces. st becomes shard 0's store
// (nil allocates fresh stores for every shard).
func New(clock runtime.Clock, id runtime.NodeID, peers []runtime.NodeID, net runtime.Fabric, platform *agent.Platform, st *store.Store, cfg Config) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	others := make([]runtime.NodeID, 0, len(peers))
	for _, p := range peers {
		if p != id {
			others = append(others, p)
		}
	}
	s := &Server{
		id:       id,
		peers:    others,
		net:      net,
		clock:    clock,
		platform: platform,
		cfg:      cfg,
		shards:   make([]*shardState, cfg.Shards),
		gone:     make(map[agent.ID]bool),
		reads:    make(map[uint64]*quorumRead),
	}
	if wf, ok := net.(runtime.WireFabric); ok && wf.WireDelivery() {
		s.scoped = true
	}
	for i := range s.shards {
		sd := &shardState{
			st:      store.New(),
			cache:   make(map[runtime.NodeID]QueueSnapshot),
			backlog: make(map[uint64]store.Update),
			member:  true,
			peers:   others,
		}
		if i < len(cfg.Groups) && cfg.Groups[i] != nil {
			sd.member = false
			sd.peers = sd.peers[:0:0]
			for _, n := range cfg.Groups[i] {
				if n == id {
					sd.member = true
				} else {
					sd.peers = append(sd.peers, n)
				}
			}
		}
		s.shards[i] = sd
	}
	if st != nil {
		s.shards[0].st = st
	}
	s.place = platform.Host(id, s)
	s.place.SetDeathListener(s)
	if cfg.Restore != nil {
		s.restore(cfg.Restore)
	}
	if cfg.Journal != nil {
		s.attachJournal(cfg.Journal)
		if cfg.Restore != nil {
			// Persist the recovery epoch bump immediately: a second crash
			// before any other mutation must still see a fresh epoch.
			s.logLockAll(true)
		}
	}
	return s
}

// shardOf routes a key to its shard.
func (s *Server) shardOf(key string) int { return shard.Of(key, len(s.shards)) }

// restore rebuilds the server's durable state from a recovered snapshot.
// No journal is attached yet, so the rebuild itself is not re-logged.
// Counters merge by max with whatever the server already holds (the DES
// restart path keeps memory across Crash), then the epoch is bumped so
// agents can tell post-recovery snapshots from pre-crash ones. Locking
// Lists and grants are restored as-is: stale entries only ever cause extra
// nacks (safe under Theorem 2), and the gone-set propagation plus claim
// timeouts clear them.
func (s *Server) restore(st *durable.State) {
	stores := make([]store.State, len(s.shards))
	locks := make([]durable.LockState, len(s.shards))
	stores[0], locks[0] = st.Store, st.Lock
	for i := 0; i+1 < len(s.shards) && i < len(st.ExtraStores); i++ {
		stores[i+1] = st.ExtraStores[i]
	}
	for i := 0; i+1 < len(s.shards) && i < len(st.ExtraLocks); i++ {
		locks[i+1] = st.ExtraLocks[i]
	}
	for _, ls := range locks {
		if ls.Epoch > s.epoch {
			s.epoch = ls.Epoch
		}
	}
	s.epoch++
	for _, id := range st.Gone {
		if !s.gone[id] {
			s.gone[id] = true
			s.goneList = append(s.goneList, id)
		}
	}
	for i, sd := range s.shards {
		sd.st = store.FromState(stores[i])
		if locks[i].LLVersion > sd.llVersion {
			sd.llVersion = locks[i].LLVersion
		}
		if locks[i].HeadVersion > sd.headVersion {
			sd.headVersion = locks[i].HeadVersion
		}
		sd.ll = append([]agent.ID(nil), locks[i].LL...)
		s.setGrant(i, locks[i].Grant)
		if locks[i].GrantAttempt > sd.grantAttempt {
			sd.grantAttempt = locks[i].GrantAttempt
		}
		s.bump(sd, true) // recovery is a fresh head state
	}
}

// attachJournal wires the journal into every shard's store and registers
// the server's contribution to compaction snapshots. The journal derives
// each record's shard from its key at replay time, so one journal serves
// all shards while their records stay independent.
func (s *Server) attachJournal(j *durable.Journal) {
	s.journal = j
	for _, sd := range s.shards {
		sd.st.SetJournal(j)
	}
	j.AddSource(func(st *durable.State) {
		st.Store = s.shards[0].st.State()
		st.Lock = s.lockState(0)
		if len(s.shards) > 1 {
			st.ExtraStores = make([]store.State, len(s.shards)-1)
			st.ExtraLocks = make([]durable.LockState, len(s.shards)-1)
			for i := 1; i < len(s.shards); i++ {
				st.ExtraStores[i-1] = s.shards[i].st.State()
				st.ExtraLocks[i-1] = s.lockState(i)
			}
		}
		st.Gone = append([]agent.ID(nil), s.goneList...)
	})
}

// DetachJournal unhooks durability without touching protocol state — the
// graceful-shutdown path, where the journal is about to be closed while the
// server may still field stray callbacks that must not append to it.
func (s *Server) DetachJournal() {
	s.journal = nil
	for _, sd := range s.shards {
		sd.st.SetJournal(nil)
	}
}

// lockState captures one shard's serializable locking state.
func (s *Server) lockState(shrd int) durable.LockState {
	sd := s.shards[shrd]
	return durable.LockState{
		Epoch:        s.epoch,
		LLVersion:    sd.llVersion,
		HeadVersion:  sd.headVersion,
		LL:           append([]agent.ID(nil), sd.ll...),
		Grant:        sd.grant,
		GrantAttempt: sd.grantAttempt,
	}
}

// logLock journals one shard's locking state after a mutation. barrier
// marks grant and epoch transitions — the mutations whose loss could
// re-grant a lock this server already released, or reuse an epoch.
func (s *Server) logLock(shrd int, barrier bool) {
	if s.journal != nil {
		s.journal.LogLockShard(shrd, s.lockState(shrd), barrier)
	}
}

// logLockAll journals every shard's locking state.
func (s *Server) logLockAll(barrier bool) {
	for i := range s.shards {
		s.logLock(i, barrier)
	}
}

// ID returns the server's node ID.
func (s *Server) ID() runtime.NodeID { return s.id }

// Store returns shard 0's data store (the only store when unsharded).
func (s *Server) Store() *store.Store { return s.shards[0].st }

// StoreOf returns one shard's data store.
func (s *Server) StoreOf(shrd int) *store.Store { return s.shards[shrd].st }

// Shards returns the number of shards.
func (s *Server) Shards() int { return len(s.shards) }

// Member reports whether this server is in shrd's replica group.
func (s *Server) Member(shrd int) bool { return s.shards[shrd].member }

// Place returns the agent place co-located with the server.
func (s *Server) Place() *agent.Place { return s.place }

// Queue returns a copy of shard 0's current Locking List (head first).
func (s *Server) Queue() []agent.ID { return s.QueueOf(0) }

// QueueOf returns a copy of one shard's Locking List (head first).
func (s *Server) QueueOf(shrd int) []agent.ID {
	out := make([]agent.ID, len(s.shards[shrd].ll))
	copy(out, s.shards[shrd].ll)
	return out
}

// QueueLen returns one shard's Locking List depth without copying — the
// ops plane samples it on every scrape.
func (s *Server) QueueLen(shrd int) int { return len(s.shards[shrd].ll) }

// Granted returns the transaction currently holding shard 0's grant
// (zero ID if none).
func (s *Server) Granted() agent.ID { return s.shards[0].grant }

// GrantedOf returns the transaction holding one shard's grant.
func (s *Server) GrantedOf(shrd int) agent.ID { return s.shards[shrd].grant }

// Down reports whether the server is crashed.
func (s *Server) Down() bool { return s.down }

// LocalRead serves a read from the local copy — the paper's fast read path
// ("a read operation may be executed on an arbitrary copy").
func (s *Server) LocalRead(key string) (store.Value, bool) {
	return s.shards[s.shardOf(key)].st.Get(key)
}

// snapshot captures one shard's current LL for handing to agents.
func (s *Server) snapshot(shrd int) QueueSnapshot {
	sd := s.shards[shrd]
	q := make([]agent.ID, len(sd.ll))
	copy(q, sd.ll)
	return QueueSnapshot{
		Server:      s.id,
		Shard:       shrd,
		Epoch:       s.epoch,
		Version:     sd.llVersion,
		HeadVersion: sd.headVersion,
		Queue:       q,
	}
}

// bump records an LL mutation; headChanged marks mutations that altered the
// head (the only ones that can change any agent's priority decision).
func (s *Server) bump(sd *shardState, headChanged bool) {
	sd.llVersion++
	if headChanged {
		sd.headVersion = sd.llVersion
	}
}

// setGrant changes one shard's exclusive grant and informs the observer.
func (s *Server) setGrant(shrd int, txn agent.ID) {
	sd := s.shards[shrd]
	if sd.grant == txn {
		return
	}
	sd.grant = txn
	if s.cfg.GrantObserver != nil {
		s.cfg.GrantObserver(s.id, shrd, txn)
	}
}

// markGone records that an agent finished or died, evicting its LL entries
// and releasing its grants on every shard. It reports whether local state
// changed.
func (s *Server) markGone(id agent.ID) bool {
	changed := false
	if !s.gone[id] {
		s.gone[id] = true
		s.goneList = append(s.goneList, id)
		if s.journal != nil {
			s.journal.LogGone(id)
		}
		changed = true
	}
	for shrd, sd := range s.shards {
		lockChanged := false
		for i, e := range sd.ll {
			if e == id {
				headChanged := i == 0
				sd.ll = append(sd.ll[:i], sd.ll[i+1:]...)
				s.bump(sd, headChanged)
				lockChanged = true
				break
			}
		}
		released := false
		if sd.grant == id {
			s.setGrant(shrd, agent.ID{})
			released = true
		}
		if lockChanged || released {
			s.logLock(shrd, released)
			changed = true
		}
	}
	return changed
}

// notify raises LLChanged to resident agents: anything — including the
// gone set — may have changed, so nobody may skip.
func (s *Server) notify() {
	s.place.NotifyResidents(LLChanged{Server: s.id})
}

// notifyShards raises a shard-scoped LLChanged: only the listed shards
// (ascending) moved and the gone set is untouched, so residents of other
// shards skip their refresh — their view of this server is unchanged.
// Outside the live engine it degrades to the unscoped notify (see scoped).
func (s *Server) notifyShards(shards []int) {
	if !s.scoped {
		s.notify()
		return
	}
	s.place.NotifyResidents(LLChanged{Server: s.id, Shards: shards})
}

// VisitAndLock is the local interaction of a just-arrived agent with its
// host server (paper Algorithm 2, "upon arrival of a mobile agent"): the
// server appends the agent to the Locking List of every requested shard it
// replicates, absorbs the locking information the agent carries, and
// returns everything the agent needs to update its own data structures.
// shards must be ascending (nil = every shard, the single-shard default).
func (s *Server) VisitAndLock(id agent.ID, shards []int, shared []QueueSnapshot, knownGone []agent.ID) LockInfo {
	// Absorb the agent's knowledge of finished/dead agents first, so a
	// stale entry never blocks the queue.
	goneChanged := false
	for _, g := range knownGone {
		if s.markGone(g) {
			goneChanged = true
		}
	}
	if !s.cfg.DisableInfoSharing {
		for _, snap := range shared {
			if snap.Server == s.id || snap.Shard < 0 || snap.Shard >= len(s.shards) {
				continue
			}
			cache := s.shards[snap.Shard].cache
			if cur, ok := cache[snap.Server]; !ok || snap.Newer(cur) {
				cache[snap.Server] = snap.Clone()
			}
		}
	}
	if shards == nil {
		shards = s.allShards()
	}
	var headShards []int
	for _, shrd := range shards {
		sd := s.shards[shrd]
		if !sd.member || s.gone[id] || s.contains(sd, id) {
			continue
		}
		sd.ll = append(sd.ll, id)
		s.bump(sd, len(sd.ll) == 1)
		s.logLock(shrd, false)
		if len(sd.ll) == 1 {
			headShards = append(headShards, shrd)
		}
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), id.String(), trace.LockRequested, "pos %d", len(sd.ll))
		}
	}
	if goneChanged {
		s.notify()
	} else if len(headShards) > 0 {
		s.notifyShards(headShards)
	}
	return s.lockInfo(shards)
}

// allShards returns 0..Shards-1.
func (s *Server) allShards() []int {
	out := make([]int, len(s.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

func (s *Server) contains(sd *shardState, id agent.ID) bool {
	for _, e := range sd.ll {
		if e == id {
			return true
		}
	}
	return false
}

// lockInfo assembles the LockInfo for a visiting or refreshing agent over
// the requested shards (nil = all). The gone slice aliases the server's
// list: goneList is append-only (entries below the capped length are never
// rewritten, growth reallocates past the cap), so the alias stays valid
// even in messages that outlive this call — and visits are frequent enough
// that the old full copy was a top allocation site on the live path.
func (s *Server) lockInfo(shards []int) LockInfo {
	gone := s.goneList[:len(s.goneList):len(s.goneList)]
	return s.lockInfoWith(shards, gone)
}

// lockInfoWith builds LockInfo around a caller-supplied gone slice — the
// full-list path and the refresh path (a suffix the caller merges
// synchronously) share everything else.
func (s *Server) lockInfoWith(shards []int, gone []agent.ID) LockInfo {
	if shards == nil {
		shards = s.allShards()
	}
	if s.costs == nil {
		// Link costs are a static property of the topology, so one shared
		// read-only map serves every LockInfo this server ever hands out.
		s.costs = make(map[runtime.NodeID]float64, len(s.peers))
		for _, p := range s.peers {
			s.costs[p] = s.net.Cost(s.id, p)
		}
	}
	info := LockInfo{Gone: gone, Costs: s.costs}
	for _, shrd := range shards {
		sd := s.shards[shrd]
		if !sd.member {
			continue
		}
		info.Locals = append(info.Locals, s.snapshot(shrd))
		if seq := sd.st.LastSeq(); seq > info.LastSeq {
			info.LastSeq = seq
		}
		if !s.cfg.DisableInfoSharing && len(sd.cache) > 0 {
			nodes := make([]runtime.NodeID, 0, len(sd.cache))
			for n := range sd.cache {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			for _, n := range nodes {
				info.Remote = append(info.Remote, sd.cache[n].Clone())
			}
		}
	}
	return info
}

// RefreshInfo returns current LockInfo for the requested shards (nil = all)
// without enqueueing anybody — used by parked agents recomputing their
// priority after a notification.
func (s *Server) RefreshInfo(shards []int) LockInfo { return s.lockInfo(shards) }

// RefreshInfoSince is RefreshInfo for a repeat customer: a resident agent
// that has already merged the first seen entries of this server's gone list
// gets only the suffix (the list is append-only for the life of the Server,
// so a valid prefix count stays valid). The returned LockInfo aliases the
// live goneList and must be consumed before control returns to the server —
// parked agents merge it synchronously, which is the point: the refresh
// storm after every commit was the live path's hottest loop, and re-marking
// hundreds of long-gone agents per resident per notification was most of it.
// The second result is the new prefix count to remember.
func (s *Server) RefreshInfoSince(shards []int, seen int) (LockInfo, int) {
	total := len(s.goneList)
	if seen < 0 || seen > total {
		seen = 0
	}
	return s.lockInfoWith(shards, s.goneList[seen:total]), total
}

// Deliver implements runtime.Handler for server-bound protocol messages.
func (s *Server) Deliver(msg runtime.Message) {
	if s.down {
		return
	}
	if s.cfg.Intercept != nil && s.cfg.Intercept(msg) {
		return
	}
	switch m := msg.Payload.(type) {
	case *UpdateMsg:
		ack := s.handleUpdate(m)
		s.platform.SendToAgent(s.id, m.Origin, m.Txn, ack, ack.WireSize())
	case *CommitMsg:
		s.handleCommit(m)
	case *AbortMsg:
		s.handleAbort(m)
	case *SyncRequest:
		s.handleSyncRequest(m)
	case *SyncReply:
		s.handleSyncReply(m)
	case *ReadReq:
		v, ok := s.LocalRead(m.Key)
		rep := &ReadRep{ReqID: m.ReqID, From: s.id, Found: ok, Value: v}
		s.net.Send(runtime.Message{From: s.id, To: m.From, Payload: rep, Size: rep.WireSize()})
	case *ReadRep:
		s.handleReadRep(m)
	}
}

// QuorumRead coordinates a consistent read: it collects the committed value
// of key from a read quorum of the key's replica group (this server
// included when it is a member) and calls done with the most recent
// version. Because any read quorum intersects any write quorum's COMMIT set
// eventually — and the per-shard sequence number makes "most recent"
// unambiguous — the result is never older than the last update whose commit
// round completed.
func (s *Server) QuorumRead(key string, done func(store.Value, bool)) {
	shrd := s.shardOf(key)
	sd := s.shards[shrd]
	s.readSeq++
	qr := &quorumRead{
		key:     key,
		replies: make(map[runtime.NodeID]ReadRep),
		needed:  (len(sd.peers)+1)/2 + 1,
		done:    done,
	}
	if shrd < len(s.cfg.Quorums) && s.cfg.Quorums[shrd] != nil {
		qr.assignment = s.cfg.Quorums[shrd]
	}
	s.reads[s.readSeq] = qr
	if sd.member {
		// Local copy counts immediately.
		v, ok := sd.st.Get(key)
		qr.replies[s.id] = ReadRep{ReqID: s.readSeq, From: s.id, Found: ok, Value: v}
		if s.maybeFinishRead(s.readSeq) {
			return
		}
	}
	req := &ReadReq{ReqID: s.readSeq, From: s.id, Key: key}
	for _, p := range sd.peers {
		s.net.Send(runtime.Message{From: s.id, To: p, Payload: req, Size: req.WireSize()})
	}
}

func (s *Server) handleReadRep(m *ReadRep) {
	qr, ok := s.reads[m.ReqID]
	if !ok {
		return
	}
	qr.replies[m.From] = *m
	s.maybeFinishRead(m.ReqID)
}

func (s *Server) maybeFinishRead(id uint64) bool {
	qr := s.reads[id]
	if qr == nil {
		return false
	}
	if qr.assignment != nil {
		nodes := make([]runtime.NodeID, 0, len(qr.replies))
		for n := range qr.replies {
			nodes = append(nodes, n)
		}
		if !qr.assignment.HasRead(nodes) {
			return false
		}
	} else if len(qr.replies) < qr.needed {
		return false
	}
	delete(s.reads, id)
	var best store.Value
	found := false
	for _, rep := range qr.replies {
		if !rep.Found {
			continue
		}
		if !found || best.Version.Less(rep.Value.Version) {
			best = rep.Value
		}
		found = true
	}
	qr.done(best, found)
	return true
}

// HandleUpdateLocal processes the claim of a co-located agent at memory
// speed (the mobile-agent advantage: the conversation with the local server
// pays no network latency).
func (s *Server) HandleUpdateLocal(m *UpdateMsg) *AckMsg { return s.handleUpdate(m) }

// HandleCommitLocal applies a co-located agent's commit directly.
func (s *Server) HandleCommitLocal(m *CommitMsg) { s.handleCommit(m) }

// HandleAbortLocal applies a co-located agent's abort directly.
func (s *Server) HandleAbortLocal(m *AbortMsg) { s.handleAbort(m) }

// claimShards resolves the shards a claim names (defaulting to shard 0 for
// an unsharded claim) restricted to the shards this server replicates.
func (s *Server) claimShards(m *UpdateMsg) (all, relevant []int) {
	all = m.Shards
	if len(all) == 0 {
		all = []int{0}
	}
	for _, shrd := range all {
		if shrd >= 0 && shrd < len(s.shards) && s.shards[shrd].member {
			relevant = append(relevant, shrd)
		}
	}
	return all, relevant
}

// handleUpdate validates a permission claim (see DESIGN.md, "protocol
// fortification"): the server ACKs only if, on EVERY claimed shard it
// replicates, it is not already granted to another claimant AND the
// claimant either heads that shard's LL or claims via the tie-break rule
// while enqueued there. The validation is all-or-nothing across the shards
// — a multi-shard claim acquires its per-shard grants atomically here, in
// the claim's canonical ascending shard order, so two claimants can never
// deadlock a server against itself. A write quorum of ACKs on every shard
// implies a unique winner regardless of how stale the claimant's view was,
// because grants are exclusive until COMMIT or ABORT and any two write
// quorums intersect — the grants, not the evidence, are the arbiter.
func (s *Server) handleUpdate(m *UpdateMsg) *AckMsg {
	all, relevant := s.claimShards(m)
	nack := func(reason string) *AckMsg {
		info := s.lockInfo(relevant)
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.UpdateNacked, "%s", reason)
		return &AckMsg{Txn: m.Txn, Attempt: m.Attempt, From: s.id, Reason: reason, Info: &info}
	}
	if len(relevant) == 0 {
		return nack("not-member")
	}
	for _, shrd := range relevant {
		if g := s.shards[shrd].grant; !g.IsZero() && g != m.Txn {
			return nack("busy")
		}
	}
	if s.gone[m.Txn] {
		return nack("gone")
	}
	for _, shrd := range relevant {
		if !s.contains(s.shards[shrd], m.Txn) {
			return nack("not-enqueued")
		}
	}
	for _, shrd := range relevant {
		sd := s.shards[shrd]
		isHead := len(sd.ll) > 0 && sd.ll[0] == m.Txn
		if !isHead && !m.ByTie {
			return nack("not-head")
		}
	}
	for _, shrd := range relevant {
		s.setGrant(shrd, m.Txn)
		s.shards[shrd].grantAttempt = m.Attempt
		s.logLock(shrd, true) // a lost grant record could let a restart re-grant
	}
	seqs := make([]uint64, len(all))
	values := make(map[string]store.Value, len(m.Keys))
	for i, shrd := range all {
		if shrd >= 0 && shrd < len(s.shards) && s.shards[shrd].member {
			seqs[i] = s.shards[shrd].st.LastSeq()
		}
	}
	for _, k := range m.Keys {
		sd := s.shards[s.shardOf(k)]
		if !sd.member {
			continue
		}
		if v, ok := sd.st.Get(k); ok {
			values[k] = v
		}
	}
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.UpdateAcked, "")
	return &AckMsg{Txn: m.Txn, Attempt: m.Attempt, From: s.id, OK: true, ShardSeqs: seqs, Values: values}
}

// handleCommit applies the winner's updates — each routed to its key's
// shard, on the shards this server replicates — releases its locks, and
// adds it to the Updated List. A per-shard sequence gap means this replica
// missed earlier updates on that shard (it was down); the updates are held
// back and a shard sync is requested.
func (s *Server) handleCommit(m *CommitMsg) {
	for _, u := range m.Updates {
		shrd := s.shardOf(u.Key)
		sd := s.shards[shrd]
		if !sd.member {
			continue
		}
		if err := sd.st.ApplyCommitted(u); err != nil {
			if errors.Is(err, store.ErrSeqGap) {
				sd.backlog[u.Seq] = u
				s.requestSyncShard(shrd, m.Origin)
				continue
			}
			// Stale updates are idempotently ignored by ApplyCommitted;
			// anything else indicates a protocol bug.
			panic("replica: commit apply failed: " + err.Error())
		}
	}
	// This commit may have filled the gap ahead of earlier out-of-order
	// arrivals (jittered links do not preserve FIFO).
	for shrd := range s.shards {
		s.drainBacklog(shrd)
	}
	s.markGone(m.Txn)
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.Committed, "%d updates, seq now %d", len(m.Updates), s.maxLastSeq())
	}
	// A transaction locks the same shards at every server, so its commit —
	// queue removal, grant release, and its own disappearance into the gone
	// set — is invisible to agents holding no shard in common with its
	// updates: the txn never appears in any local or cached queue of another
	// shard, and LastSeq is computed per requested shard. Scope the wakeup
	// to the txn's shards (live engine only; notifyShards degrades to the
	// global notify elsewhere).
	if txShards := s.updateShards(m.Updates); len(txShards) > 0 {
		s.notifyShards(txShards)
	} else {
		s.notify()
	}
	if s.journal != nil {
		s.journal.MaybeCompact() // post-commit is a quiescent point
	}
}

// updateShards returns the distinct shards of a commit's updates, ascending
// (the transaction's locked shard set — claims lock exactly the shards of
// the keys they write).
func (s *Server) updateShards(updates []store.Update) []int {
	var out []int
	for _, u := range updates {
		shrd := s.shardOf(u.Key)
		found := false
		for _, o := range out {
			if o == shrd {
				found = true
				break
			}
		}
		if !found {
			out = append(out, shrd)
		}
	}
	sort.Ints(out)
	return out
}

// maxLastSeq returns the highest committed horizon across shards (trace
// diagnostics).
func (s *Server) maxLastSeq() uint64 {
	var max uint64
	for _, sd := range s.shards {
		if seq := sd.st.LastSeq(); seq > max {
			max = seq
		}
	}
	return max
}

// handleAbort withdraws a claim's grants on every shard.
func (s *Server) handleAbort(m *AbortMsg) {
	released := false
	for shrd, sd := range s.shards {
		if sd.grant == m.Txn && m.Attempt >= sd.grantAttempt {
			s.setGrant(shrd, agent.ID{})
			s.logLock(shrd, true)
			released = true
		}
	}
	if released {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), m.Txn.String(), trace.ClaimAborted, "grant released")
	}
}

// RequestSync starts an anti-entropy round with the replica group of every
// shard this server replicates: fetch the committed updates after the local
// horizon. The cluster invokes it on every live server after a partition
// heals, because a minority partition that missed final COMMIT broadcasts
// has no sequence gap of its own to notice.
func (s *Server) RequestSync() {
	if s.down {
		return
	}
	for shrd := range s.shards {
		s.requestSyncShard(shrd, runtime.None)
	}
}

// requestSyncShard asks origin (falling back to the whole replica group if
// origin is the server itself) for one shard's updates after the local
// horizon.
func (s *Server) requestSyncShard(shrd int, origin runtime.NodeID) {
	sd := s.shards[shrd]
	if !sd.member {
		return
	}
	req := &SyncRequest{From: s.id, Shard: shrd, Since: sd.st.LastSeq()}
	if origin != s.id && origin != runtime.None {
		s.net.Send(runtime.Message{From: s.id, To: origin, Payload: req, Size: req.WireSize()})
		return
	}
	for _, p := range sd.peers {
		s.net.Send(runtime.Message{From: s.id, To: p, Payload: req, Size: req.WireSize()})
	}
}

func (s *Server) handleSyncRequest(m *SyncRequest) {
	if m.Shard < 0 || m.Shard >= len(s.shards) {
		return
	}
	updates := s.shards[m.Shard].st.UpdatesSince(m.Since)
	if len(updates) == 0 && len(s.goneList) == 0 {
		return
	}
	gone := make([]agent.ID, len(s.goneList))
	copy(gone, s.goneList)
	reply := &SyncReply{From: s.id, Shard: m.Shard, Updates: updates, Gone: gone}
	s.net.Send(runtime.Message{From: s.id, To: m.From, Payload: reply, Size: reply.WireSize()})
}

// drainBacklog applies one shard's consecutive backlogged commits now that
// earlier updates may have landed. It reports whether anything was applied.
func (s *Server) drainBacklog(shrd int) bool {
	sd := s.shards[shrd]
	applied := false
	for {
		u, ok := sd.backlog[sd.st.LastSeq()+1]
		if !ok {
			return applied
		}
		delete(sd.backlog, u.Seq)
		if err := sd.st.ApplyCommitted(u); err != nil {
			return applied
		}
		applied = true
	}
}

func (s *Server) handleSyncReply(m *SyncReply) {
	if m.Shard < 0 || m.Shard >= len(s.shards) {
		return
	}
	sd := s.shards[m.Shard]
	applied := false
	for _, u := range m.Updates {
		if err := sd.st.ApplyCommitted(u); err == nil && u.Seq == sd.st.LastSeq() {
			applied = true
		}
	}
	if s.drainBacklog(m.Shard) {
		applied = true
	}
	mutated := false
	for _, g := range m.Gone {
		if s.markGone(g) {
			mutated = true
		}
	}
	if applied || mutated {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerSynced, "seq now %d", sd.st.LastSeq())
		if mutated {
			s.notify()
		} else {
			s.notifyShards([]int{m.Shard})
		}
		if s.journal != nil {
			s.journal.MaybeCompact()
		}
	}
}

// OnAgentDeath implements agent.DeathListener: evict the dead agent's lock
// entries and release its grants, so a crashed agent never wedges a queue.
func (s *Server) OnAgentDeath(id agent.ID) {
	if s.down {
		return
	}
	if s.markGone(id) {
		s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), id.String(), trace.LockReleased, "agent died")
		s.notify()
	}
}

// Crash models a fail-stop failure: all volatile locking state is lost; the
// committed stores survive (stable storage). The caller is responsible for
// also marking the node down in the network and killing resident agents —
// the cluster layer in internal/core orchestrates all three.
func (s *Server) Crash() {
	// Detach durability first: a dead node journals nothing, and the
	// volatile wipe below must not masquerade as protocol mutations. The
	// cluster layer additionally kills the journal's log handle and crashes
	// the backing disk.
	s.journal = nil
	for _, sd := range s.shards {
		sd.st.SetJournal(nil)
	}
	s.down = true
	for shrd, sd := range s.shards {
		sd.ll = nil
		sd.cache = make(map[runtime.NodeID]QueueSnapshot)
		s.setGrant(shrd, agent.ID{})
		sd.backlog = make(map[uint64]store.Update)
	}
	// gone survives: it is derived from committed state and death notices,
	// and keeping it only ever suppresses already-finished agents.
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerCrashed, "")
}

// Recover brings the server back: it bumps its epoch (so agents can tell
// post-recovery snapshots from pre-crash ones) and starts a background sync
// with each shard's group to fetch the updates it missed.
func (s *Server) Recover() {
	s.down = false
	s.epoch++
	for _, sd := range s.shards {
		s.bump(sd, true) // the (now empty) LL is a fresh head state
	}
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerRecover, "epoch %d", s.epoch)
	s.RequestSync()
}

// Restart is the durable counterpart of Recover: the server comes back
// from its journal rather than from nothing. j is the freshly re-opened
// journal and st the state it replayed (nil on an empty log). Like Recover
// it ends with an anti-entropy round — the WAL restores what this replica
// committed; the peers supply what it missed while down.
func (s *Server) Restart(j *durable.Journal, st *durable.State) {
	s.down = false
	for _, sd := range s.shards {
		sd.cache = make(map[runtime.NodeID]QueueSnapshot)
		sd.backlog = make(map[uint64]store.Update)
	}
	if st != nil {
		s.restore(st)
	} else {
		s.epoch++
		for _, sd := range s.shards {
			s.bump(sd, true)
		}
	}
	if j != nil {
		s.attachJournal(j)
		s.logLockAll(true) // make the recovery epoch durable immediately
	}
	s.cfg.Trace.Addf(int64(s.clock.Now()), int(s.id), "", trace.ServerRecover, "epoch %d, seq %d restored", s.epoch, s.maxLastSeq())
	s.RequestSync()
}

// Gone returns the agents this server knows to have finished or died, in
// discovery order.
func (s *Server) Gone() []agent.ID {
	out := make([]agent.ID, len(s.goneList))
	copy(out, s.goneList)
	return out
}

// Peers returns the other replica IDs, sorted.
func (s *Server) Peers() []runtime.NodeID {
	out := make([]runtime.NodeID, len(s.peers))
	copy(out, s.peers)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
