package replica

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/simnet"
	"repro/internal/store"
)

func TestQuorumReadCollectsLatest(t *testing.T) {
	f := newFixture(t, 5, Config{})
	// Stagger replica states: servers 1-3 have seq 2, servers 4-5 only seq 1.
	u1 := store.Update{TxnID: "t1", Key: "x", Data: "old", Seq: 1, Stamp: 1}
	u2 := store.Update{TxnID: "t2", Key: "x", Data: "new", Seq: 2, Stamp: 2}
	for i := 1; i <= 5; i++ {
		if err := f.servers[simnet.NodeID(i)].Store().ApplyCommitted(u1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if err := f.servers[simnet.NodeID(i)].Store().ApplyCommitted(u2); err != nil {
			t.Fatal(err)
		}
	}
	// Coordinate from a STALE server: the quorum must surface "new".
	var got store.Value
	var found bool
	f.servers[5].QuorumRead("x", func(v store.Value, ok bool) { got, found = v, ok })
	f.sim.Run()
	if !found || got.Data != "new" || got.Version.Seq != 2 {
		t.Fatalf("quorum read = %+v %v", got, found)
	}
}

func TestQuorumReadLocalShortCircuit(t *testing.T) {
	// N=1: the local copy alone is the majority; no messages needed.
	f := newFixture(t, 1, Config{})
	if err := f.servers[1].Store().ApplyCommitted(store.Update{TxnID: "t", Key: "k", Data: "v", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	called := false
	f.servers[1].QuorumRead("k", func(v store.Value, ok bool) {
		called = true
		if !ok || v.Data != "v" {
			t.Fatalf("value = %+v %v", v, ok)
		}
	})
	if !called {
		t.Fatal("single-node quorum read did not resolve synchronously")
	}
	if f.net.Stats().MessagesSent != 0 {
		t.Fatal("single-node quorum read sent messages")
	}
}

func TestQuorumReadMissingEverywhere(t *testing.T) {
	f := newFixture(t, 3, Config{})
	var found bool
	resolved := false
	f.servers[2].QuorumRead("ghost", func(v store.Value, ok bool) { found, resolved = ok, true })
	f.sim.Run()
	if !resolved || found {
		t.Fatalf("resolved=%v found=%v", resolved, found)
	}
}

func TestQuorumReadStallsWithoutMajority(t *testing.T) {
	f := newFixture(t, 5, Config{})
	f.net.SetDown(3, true)
	f.net.SetDown(4, true)
	f.net.SetDown(5, true)
	resolved := false
	f.servers[1].QuorumRead("x", func(store.Value, bool) { resolved = true })
	f.sim.RunFor(10 * time.Second)
	if resolved {
		t.Fatal("quorum read resolved with a majority down")
	}
}

func TestAccessors(t *testing.T) {
	f := newFixture(t, 3, Config{})
	s := f.servers[2]
	if s.ID() != 2 {
		t.Fatalf("ID = %d", s.ID())
	}
	if s.Place() == nil || s.Place().Node() != 2 {
		t.Fatal("Place wrong")
	}
	peers := s.Peers()
	if len(peers) != 2 || peers[0] != 1 || peers[1] != 3 {
		t.Fatalf("Peers = %v", peers)
	}
	info := s.RefreshInfo(nil)
	if info.Locals[0].Server != 2 || info.LastSeq != 0 {
		t.Fatalf("RefreshInfo = %+v", info)
	}
}

func TestMessageKindsAndSizes(t *testing.T) {
	msgs := []interface {
		Kind() string
		WireSize() int
	}{
		UpdateMsg{Keys: []string{"a", "b"}, Evidence: map[simnet.NodeID]uint64{1: 1}},
		AckMsg{Values: map[string]store.Value{"a": {}}, Info: &LockInfo{}},
		AckMsg{},
		CommitMsg{Updates: make([]store.Update, 3)},
		AbortMsg{},
		SyncRequest{},
		SyncReply{Updates: make([]store.Update, 2), Gone: []agent.ID{aid(1, 1)}},
		ReadReq{},
		ReadRep{},
	}
	seen := make(map[string]bool)
	for _, m := range msgs {
		if m.Kind() == "" {
			t.Fatalf("%T has empty kind", m)
		}
		if m.WireSize() <= 0 {
			t.Fatalf("%T has non-positive wire size", m)
		}
		seen[m.Kind()] = true
	}
	if len(seen) < 8 {
		t.Fatalf("kinds not distinct: %v", seen)
	}
	// Sizes must grow with content.
	small := CommitMsg{}.WireSize()
	big := CommitMsg{Updates: make([]store.Update, 5)}.WireSize()
	if big <= small {
		t.Fatal("CommitMsg size does not grow with updates")
	}
}
