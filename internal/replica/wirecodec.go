package replica

import (
	"sort"

	"repro/internal/agent"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/wire"
)

// Wire-codec tags for the Algorithm 2 message set (DESIGN.md §11). Tags
// are part of the wire format: never renumber.
const (
	tagUpdateMsg   = 10
	tagAckMsg      = 11
	tagCommitMsg   = 12
	tagAbortMsg    = 13
	tagReadReq     = 14
	tagReadRep     = 15
	tagSyncRequest = 16
	tagSyncReply   = 17
	tagLLChanged   = 18
)

func init() {
	wire.Register(tagUpdateMsg, &UpdateMsg{}, encUpdateMsg, decUpdateMsg)
	wire.Register(tagAckMsg, &AckMsg{}, encAckMsg, decAckMsg)
	wire.Register(tagCommitMsg, &CommitMsg{}, encCommitMsg, decCommitMsg)
	wire.Register(tagAbortMsg, &AbortMsg{},
		func(b []byte, v any) []byte {
			m := v.(*AbortMsg)
			b = agent.AppendID(b, m.Txn)
			return wire.AppendVarint(b, int64(m.Attempt))
		},
		func(r *wire.Reader) any {
			return &AbortMsg{Txn: agent.DecodeID(r), Attempt: int(r.Varint())}
		})
	wire.Register(tagReadReq, &ReadReq{},
		func(b []byte, v any) []byte {
			m := v.(*ReadReq)
			b = wire.AppendUvarint(b, m.ReqID)
			b = wire.AppendVarint(b, int64(m.From))
			return wire.AppendString(b, m.Key)
		},
		func(r *wire.Reader) any {
			return &ReadReq{ReqID: r.Uvarint(), From: runtime.NodeID(r.Varint()), Key: r.String()}
		})
	wire.Register(tagReadRep, &ReadRep{},
		func(b []byte, v any) []byte {
			m := v.(*ReadRep)
			b = wire.AppendUvarint(b, m.ReqID)
			b = wire.AppendVarint(b, int64(m.From))
			b = wire.AppendBool(b, m.Found)
			return appendValue(b, m.Value)
		},
		func(r *wire.Reader) any {
			return &ReadRep{ReqID: r.Uvarint(), From: runtime.NodeID(r.Varint()), Found: r.Bool(), Value: decodeValue(r)}
		})
	wire.Register(tagSyncRequest, &SyncRequest{},
		func(b []byte, v any) []byte {
			m := v.(*SyncRequest)
			b = wire.AppendVarint(b, int64(m.From))
			b = wire.AppendVarint(b, int64(m.Shard))
			return wire.AppendUvarint(b, m.Since)
		},
		func(r *wire.Reader) any {
			return &SyncRequest{From: runtime.NodeID(r.Varint()), Shard: int(r.Varint()), Since: r.Uvarint()}
		})
	wire.Register(tagSyncReply, &SyncReply{},
		func(b []byte, v any) []byte {
			m := v.(*SyncReply)
			b = wire.AppendVarint(b, int64(m.From))
			b = wire.AppendVarint(b, int64(m.Shard))
			b = wire.AppendUvarint(b, uint64(len(m.Updates)))
			for i := range m.Updates {
				b = AppendUpdate(b, m.Updates[i])
			}
			b = wire.AppendUvarint(b, uint64(len(m.Gone)))
			for _, id := range m.Gone {
				b = agent.AppendID(b, id)
			}
			return b
		},
		func(r *wire.Reader) any {
			m := &SyncReply{From: runtime.NodeID(r.Varint()), Shard: int(r.Varint())}
			n := r.Count(5)
			m.Updates = make([]store.Update, 0, n)
			for i := 0; i < n; i++ {
				m.Updates = append(m.Updates, DecodeUpdate(r))
			}
			n = r.Count(3)
			m.Gone = make([]agent.ID, 0, n)
			for i := 0; i < n; i++ {
				m.Gone = append(m.Gone, agent.DecodeID(r))
			}
			return m
		})
	// LLChanged travels as a value (it is a local event, but registered for
	// the wire like the rest of the set).
	wire.Register(tagLLChanged, LLChanged{},
		func(b []byte, v any) []byte {
			ev := v.(LLChanged)
			b = wire.AppendVarint(b, int64(ev.Server))
			b = wire.AppendUvarint(b, uint64(len(ev.Shards)))
			for _, s := range ev.Shards {
				b = wire.AppendVarint(b, int64(s))
			}
			return b
		},
		func(r *wire.Reader) any {
			ev := LLChanged{Server: runtime.NodeID(r.Varint())}
			if n := r.Count(1); n > 0 {
				ev.Shards = make([]int, n)
				for i := range ev.Shards {
					ev.Shards[i] = int(r.Varint())
				}
			}
			return ev
		})
}

func encUpdateMsg(b []byte, v any) []byte {
	m := v.(*UpdateMsg)
	b = agent.AppendID(b, m.Txn)
	b = wire.AppendVarint(b, int64(m.Attempt))
	b = wire.AppendVarint(b, int64(m.Origin))
	b = wire.AppendUvarint(b, uint64(len(m.Keys)))
	for _, k := range m.Keys {
		b = wire.AppendString(b, k)
	}
	b = wire.AppendUvarint(b, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		b = wire.AppendVarint(b, int64(s))
	}
	b = wire.AppendBool(b, m.ByTie)
	b = wire.AppendUvarint(b, uint64(len(m.Evidence)))
	nodes := make([]runtime.NodeID, 0, len(m.Evidence))
	for id := range m.Evidence {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		b = wire.AppendVarint(b, int64(id))
		b = wire.AppendUvarint(b, m.Evidence[id])
	}
	return b
}

func decUpdateMsg(r *wire.Reader) any {
	m := &UpdateMsg{Txn: agent.DecodeID(r), Attempt: int(r.Varint()), Origin: runtime.NodeID(r.Varint())}
	n := r.Count(1)
	m.Keys = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m.Keys = append(m.Keys, r.String())
	}
	n = r.Count(1)
	m.Shards = make([]int, 0, n)
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, int(r.Varint()))
	}
	m.ByTie = r.Bool()
	if n = r.Count(2); n > 0 {
		m.Evidence = make(map[runtime.NodeID]uint64, n)
		for i := 0; i < n; i++ {
			id := runtime.NodeID(r.Varint())
			m.Evidence[id] = r.Uvarint()
		}
	}
	return m
}

func encAckMsg(b []byte, v any) []byte {
	m := v.(*AckMsg)
	b = agent.AppendID(b, m.Txn)
	b = wire.AppendVarint(b, int64(m.Attempt))
	b = wire.AppendVarint(b, int64(m.From))
	b = wire.AppendBool(b, m.OK)
	b = wire.AppendString(b, m.Reason)
	b = wire.AppendUvarint(b, uint64(len(m.ShardSeqs)))
	for _, s := range m.ShardSeqs {
		b = wire.AppendUvarint(b, s)
	}
	b = wire.AppendUvarint(b, uint64(len(m.Values)))
	keys := make([]string, 0, len(m.Values))
	for k := range m.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = wire.AppendString(b, k)
		b = appendValue(b, m.Values[k])
	}
	b = wire.AppendBool(b, m.Info != nil)
	if m.Info != nil {
		b = appendLockInfo(b, m.Info)
	}
	return b
}

func decAckMsg(r *wire.Reader) any {
	m := &AckMsg{Txn: agent.DecodeID(r), Attempt: int(r.Varint()), From: runtime.NodeID(r.Varint()), OK: r.Bool(), Reason: r.String()}
	n := r.Count(1)
	m.ShardSeqs = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		m.ShardSeqs = append(m.ShardSeqs, r.Uvarint())
	}
	if n = r.Count(2); n > 0 {
		m.Values = make(map[string]store.Value, n)
		for i := 0; i < n; i++ {
			k := r.String()
			m.Values[k] = decodeValue(r)
		}
	}
	if r.Bool() {
		m.Info = decodeLockInfo(r)
	}
	return m
}

func encCommitMsg(b []byte, v any) []byte {
	m := v.(*CommitMsg)
	b = agent.AppendID(b, m.Txn)
	b = wire.AppendVarint(b, int64(m.Origin))
	b = wire.AppendUvarint(b, uint64(len(m.Updates)))
	for i := range m.Updates {
		b = AppendUpdate(b, m.Updates[i])
	}
	return b
}

func decCommitMsg(r *wire.Reader) any {
	m := &CommitMsg{Txn: agent.DecodeID(r), Origin: runtime.NodeID(r.Varint())}
	n := r.Count(5)
	m.Updates = make([]store.Update, 0, n)
	for i := 0; i < n; i++ {
		m.Updates = append(m.Updates, DecodeUpdate(r))
	}
	return m
}

// AppendUpdate appends one store.Update in wire-codec form. Exported for
// the durable-layer and agent-state codecs that embed updates.
func AppendUpdate(b []byte, u store.Update) []byte {
	b = wire.AppendString(b, u.TxnID)
	b = wire.AppendString(b, u.Key)
	b = wire.AppendString(b, u.Data)
	b = wire.AppendUvarint(b, u.Seq)
	return wire.AppendVarint(b, u.Stamp)
}

// DecodeUpdate reads an update written by AppendUpdate.
func DecodeUpdate(r *wire.Reader) store.Update {
	return store.Update{
		TxnID: r.String(),
		Key:   r.String(),
		Data:  r.String(),
		Seq:   r.Uvarint(),
		Stamp: r.Varint(),
	}
}

func appendValue(b []byte, v store.Value) []byte {
	b = wire.AppendString(b, v.Data)
	b = wire.AppendUvarint(b, v.Version.Seq)
	b = wire.AppendVarint(b, v.Version.Stamp)
	return wire.AppendString(b, v.Version.Writer)
}

func decodeValue(r *wire.Reader) store.Value {
	return store.Value{
		Data:    r.String(),
		Version: store.Version{Seq: r.Uvarint(), Stamp: r.Varint(), Writer: r.String()},
	}
}

// AppendQueueSnapshot appends one locking-list snapshot. Exported for the
// agent-state codec in internal/core, which carries snapshots inside
// WireState.
func AppendQueueSnapshot(b []byte, s *QueueSnapshot) []byte {
	b = wire.AppendVarint(b, int64(s.Server))
	b = wire.AppendVarint(b, int64(s.Shard))
	b = wire.AppendUvarint(b, s.Epoch)
	b = wire.AppendUvarint(b, s.Version)
	b = wire.AppendUvarint(b, s.HeadVersion)
	b = wire.AppendUvarint(b, uint64(len(s.Queue)))
	for _, id := range s.Queue {
		b = agent.AppendID(b, id)
	}
	return b
}

// DecodeQueueSnapshotInto reads a snapshot written by AppendQueueSnapshot
// into *s, reusing s.Queue's capacity — the zero-allocation decode path.
func DecodeQueueSnapshotInto(s *QueueSnapshot, r *wire.Reader) {
	s.Server = runtime.NodeID(r.Varint())
	s.Shard = int(r.Varint())
	s.Epoch = r.Uvarint()
	s.Version = r.Uvarint()
	s.HeadVersion = r.Uvarint()
	n := r.Count(3)
	s.Queue = wire.Grow(s.Queue, n)
	for i := 0; i < n; i++ {
		s.Queue[i] = agent.DecodeID(r)
	}
}

func appendLockInfo(b []byte, li *LockInfo) []byte {
	b = wire.AppendUvarint(b, uint64(len(li.Locals)))
	for i := range li.Locals {
		b = AppendQueueSnapshot(b, &li.Locals[i])
	}
	b = wire.AppendUvarint(b, uint64(len(li.Gone)))
	for _, id := range li.Gone {
		b = agent.AppendID(b, id)
	}
	b = wire.AppendUvarint(b, uint64(len(li.Remote)))
	for i := range li.Remote {
		b = AppendQueueSnapshot(b, &li.Remote[i])
	}
	b = wire.AppendUvarint(b, uint64(len(li.Costs)))
	nodes := make([]runtime.NodeID, 0, len(li.Costs))
	for id := range li.Costs {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		b = wire.AppendVarint(b, int64(id))
		b = wire.AppendFloat(b, li.Costs[id])
	}
	return wire.AppendUvarint(b, li.LastSeq)
}

func decodeLockInfo(r *wire.Reader) *LockInfo {
	li := &LockInfo{}
	n := r.Count(6)
	li.Locals = make([]QueueSnapshot, n)
	for i := range li.Locals {
		DecodeQueueSnapshotInto(&li.Locals[i], r)
	}
	n = r.Count(3)
	li.Gone = make([]agent.ID, 0, n)
	for i := 0; i < n; i++ {
		li.Gone = append(li.Gone, agent.DecodeID(r))
	}
	n = r.Count(6)
	li.Remote = make([]QueueSnapshot, n)
	for i := range li.Remote {
		DecodeQueueSnapshotInto(&li.Remote[i], r)
	}
	if n = r.Count(9); n > 0 {
		li.Costs = make(map[runtime.NodeID]float64, n)
		for i := 0; i < n; i++ {
			id := runtime.NodeID(r.Varint())
			li.Costs[id] = r.Float()
		}
	}
	li.LastSeq = r.Uvarint()
	return li
}
