package replica

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/durable"
	"repro/internal/runtime"
	"repro/internal/simnet"
	"repro/internal/store"
)

// durableServer is a single durable replica on its own Mem disk, with the
// crash/restart choreography the cluster layer normally performs.
type durableServer struct {
	sim *des.Simulator
	net *simnet.Network
	mem *disk.Mem
	j   *durable.Journal
	s   *Server
}

func newDurableServer(t *testing.T) *durableServer {
	t.Helper()
	sim := des.New(7)
	net := simnet.New(sim, simnet.FullMesh(1), simnet.Constant(time.Millisecond))
	platform := agent.NewPlatform(sim, net, agent.Config{})
	mem := disk.NewMem()
	j, st, err := durable.Open(mem, durable.Options{})
	if err != nil || st != nil {
		t.Fatalf("fresh Open = %v, %v", err, st)
	}
	s := New(sim, 1, []runtime.NodeID{1}, net, platform, store.New(), Config{Journal: j})
	return &durableServer{sim: sim, net: net, mem: mem, j: j, s: s}
}

// crashRestart power-cuts the node and brings it back from its disk.
func (d *durableServer) crashRestart(t *testing.T) *durable.State {
	t.Helper()
	d.s.Crash()
	d.j.Kill()
	d.mem.Crash()
	j, st, err := durable.Open(d.mem, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	d.j = j
	d.s.Restart(j, st)
	return st
}

func upd(seq int, key, data string) store.Update {
	return store.Update{TxnID: "txn-" + key + data, Key: key, Data: data, Seq: uint64(seq), Stamp: int64(seq)}
}

func TestRestartDoesNotReapplyCommittedUpdate(t *testing.T) {
	d := newDurableServer(t)
	a := aid(1, 1)
	d.s.VisitAndLock(a, nil, nil, nil)
	ack := d.s.HandleUpdateLocal(&UpdateMsg{Txn: a, Attempt: 1, Origin: 1, Keys: []string{"k"}})
	if !ack.OK {
		t.Fatalf("claim nacked: %s", ack.Reason)
	}
	commit := &CommitMsg{Txn: a, Origin: 1, Updates: []store.Update{upd(1, "k", "v1")}}
	d.s.HandleCommitLocal(commit)
	if d.s.Store().LastSeq() != 1 {
		t.Fatalf("LastSeq = %d", d.s.Store().LastSeq())
	}
	epochBefore := d.s.snapshot(0).Epoch

	d.crashRestart(t)

	// Invariant 11: the committed update came back off this node's own disk.
	if got := d.s.Store().LastSeq(); got != 1 {
		t.Fatalf("after restart LastSeq = %d, want 1", got)
	}
	if v, ok := d.s.LocalRead("k"); !ok || v.Data != "v1" {
		t.Fatalf("after restart read k = %+v %v", v, ok)
	}
	if got := d.s.snapshot(0).Epoch; got <= epochBefore {
		t.Fatalf("epoch %d not bumped past %d", got, epochBefore)
	}
	// A retransmitted COMMIT straddling the crash is idempotent.
	d.s.HandleCommitLocal(commit)
	if got := len(d.s.Store().Log()); got != 1 {
		t.Fatalf("duplicate commit grew the log to %d", got)
	}
}

func TestRestartDoesNotRegrantReleasedLock(t *testing.T) {
	d := newDurableServer(t)
	a := aid(1, 1)
	d.s.VisitAndLock(a, nil, nil, nil)
	if ack := d.s.HandleUpdateLocal(&UpdateMsg{Txn: a, Attempt: 1, Origin: 1, Keys: []string{"k"}}); !ack.OK {
		t.Fatalf("claim nacked: %s", ack.Reason)
	}
	// COMMIT releases the grant and marks the agent gone.
	d.s.HandleCommitLocal(&CommitMsg{Txn: a, Origin: 1, Updates: []store.Update{upd(1, "k", "v")}})
	if !d.s.Granted().IsZero() {
		t.Fatal("grant not released by commit")
	}

	d.crashRestart(t)

	if got := d.s.Granted(); !got.IsZero() {
		t.Fatalf("restart re-granted released lock to %v", got)
	}
	// The finished agent stays gone: its re-claim is refused.
	if ack := d.s.HandleUpdateLocal(&UpdateMsg{Txn: a, Attempt: 2, Origin: 1, Keys: []string{"k"}}); ack.OK {
		t.Fatal("gone agent re-acquired the lock after restart")
	}
}

func TestRestartRestoresUnreleasedGrant(t *testing.T) {
	d := newDurableServer(t)
	a, b := aid(1, 1), aid(2, 2)
	d.s.VisitAndLock(a, nil, nil, nil)
	if ack := d.s.HandleUpdateLocal(&UpdateMsg{Txn: a, Attempt: 1, Origin: 1, Keys: []string{"k"}}); !ack.OK {
		t.Fatalf("claim nacked: %s", ack.Reason)
	}

	d.crashRestart(t)

	// The grant was never released, so it comes back: conservative for
	// Theorem 2 — a competitor must keep getting nacks...
	if got := d.s.Granted(); got != a {
		t.Fatalf("after restart grant = %v, want %v", got, a)
	}
	d.s.VisitAndLock(b, nil, nil, nil)
	if ack := d.s.HandleUpdateLocal(&UpdateMsg{Txn: b, Attempt: 1, Origin: 1, Keys: []string{"k"}}); ack.OK {
		t.Fatal("competitor claimed a restored grant")
	}
	// ...until the holder's own abort (or gone-propagation) clears it.
	d.s.HandleAbortLocal(&AbortMsg{Txn: a, Attempt: 1})
	if !d.s.Granted().IsZero() {
		t.Fatal("abort did not release the restored grant")
	}
}

// TestSyncReplyDuplicatedReordered exercises the recovery-log pull under
// the deliveries a lossy retransmitting network can produce: replies that
// arrive out of order, contain overlapping ranges, and repeat. The store's
// sequence discipline must assemble exactly the committed prefix.
func TestSyncReplyDuplicatedReordered(t *testing.T) {
	d := newDurableServer(t)
	u1, u2, u3 := upd(1, "a", "1"), upd(2, "b", "2"), upd(3, "a", "3")

	// A reply starting past the horizon is useless and must be dropped.
	d.s.Deliver(runtime.Message{From: 2, To: 1, Payload: &SyncReply{From: 2, Updates: []store.Update{u2, u3}}})
	if got := d.s.Store().LastSeq(); got != 0 {
		t.Fatalf("gap reply applied: LastSeq = %d", got)
	}
	// A complete reply lands everything.
	d.s.Deliver(runtime.Message{From: 3, To: 1, Payload: &SyncReply{From: 3, Updates: []store.Update{u1, u2, u3}}})
	if got := d.s.Store().LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	// Duplicates (a retransmitted reply) are idempotent.
	d.s.Deliver(runtime.Message{From: 3, To: 1, Payload: &SyncReply{From: 3, Updates: []store.Update{u1, u2, u3}}})
	d.s.Deliver(runtime.Message{From: 2, To: 1, Payload: &SyncReply{From: 2, Updates: []store.Update{u2, u3}}})
	if got := len(d.s.Store().Log()); got != 3 {
		t.Fatalf("duplicated replies grew the log to %d", got)
	}

	// Everything the sync pulled was journaled: a crash right now loses
	// none of it.
	d.crashRestart(t)
	log := d.s.Store().Log()
	if len(log) != 3 || log[0] != u1 || log[1] != u2 || log[2] != u3 {
		t.Fatalf("after restart log = %+v", log)
	}
}

func TestGracefulCloseThenReopen(t *testing.T) {
	d := newDurableServer(t)
	d.s.VisitAndLock(aid(1, 1), nil, nil, nil)
	d.s.HandleCommitLocal(&CommitMsg{Txn: aid(1, 1), Origin: 1, Updates: []store.Update{upd(1, "k", "v")}})
	// Graceful shutdown: Close syncs, so even unbarriered records survive.
	if err := d.j.Close(); err != nil {
		t.Fatal(err)
	}
	d.s.Store().SetJournal(nil)
	j, st, err := durable.Open(d.mem, durable.Options{})
	if err != nil || st == nil {
		t.Fatalf("reopen: %v, %v", err, st)
	}
	defer j.Close()
	if len(st.Store.Log) != 1 || len(st.Gone) != 1 {
		t.Fatalf("state = %d updates, %d gone", len(st.Store.Log), len(st.Gone))
	}
}
