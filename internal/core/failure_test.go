package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestUpdateSucceedsWithMinorityDown(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	// Two servers down: 3 of 5 remain, exactly a majority.
	c.Crash(4)
	c.Crash(5)
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{1, 2, 3} {
		if v, ok := c.Read(id, "x"); !ok || v.Data != "v" {
			t.Fatalf("server %d: %+v %v", id, v, ok)
		}
	}
	o := c.Outcomes()[0]
	if o.Failed {
		t.Fatal("agent failed")
	}
	if o.Visits > 3 {
		t.Fatalf("visited %d servers with only 3 up", o.Visits)
	}
}

func TestRecoveredServerCatchesUp(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	c.Crash(5)
	for i := 0; i < 3; i++ {
		if err := c.Submit(1, Set(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	c.Recover(5)
	c.Settle(2 * time.Second)
	if got := c.Server(5).Store().LastSeq(); got != 3 {
		t.Fatalf("recovered server LastSeq = %d, want 3", got)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	// The recovered replica serves reads again.
	if v, ok := c.Read(5, "k0"); !ok || v.Data != "v" {
		t.Fatalf("read from recovered = %+v %v", v, ok)
	}
}

func TestCommitDuringDowntimeBackfilledOnRecovery(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	if err := c.Submit(1, Set("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	if err := c.Submit(1, Set("b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Recover(3)
	c.Settle(2 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Read(3, "b"); !ok || v.Data != "2" {
		t.Fatalf("read = %+v %v", v, ok)
	}
}

func TestAgentDiesWithCrashedHost(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 3})
	if err := c.Submit(1, Set("x", "doomed")); err != nil {
		t.Fatal(err)
	}
	// Let the agent start travelling, then crash whichever server hosts
	// it (stepping past in-transit moments where it is nowhere).
	var host simnet.NodeID
	for i := 0; i < 10000 && host == simnet.None; i++ {
		if !c.Sim().Step() {
			break
		}
		for _, id := range c.Nodes() {
			if len(c.Platform().Place(id).Residents()) > 0 {
				host = id
				break
			}
		}
	}
	if host == simnet.None {
		t.Fatal("agent not found anywhere")
	}
	c.Crash(host)
	c.Settle(5 * time.Second)
	outs := c.Outcomes()
	if len(outs) != 1 || !outs[0].Failed {
		t.Fatalf("outcomes = %+v", outs)
	}
	if c.Outstanding() != 0 {
		t.Fatal("dead agent still outstanding")
	}
	// The dead agent's lock entries must have been evicted everywhere.
	for _, id := range c.Nodes() {
		if id == host {
			continue
		}
		for _, e := range c.Server(id).Queue() {
			if e == outs[0].Agent {
				t.Fatalf("dead agent still queued at server %d", id)
			}
		}
	}
}

func TestDeadAgentDoesNotBlockOthers(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 8})
	if err := c.Submit(2, Set("x", "victim")); err != nil {
		t.Fatal(err)
	}
	c.Sim().RunFor(500 * time.Microsecond)
	c.Crash(2) // kill the home with its agent (likely still resident or nearby)
	// A competing agent must still make progress.
	if err := c.Submit(1, Set("x", "survivor")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Read(1, "x")
	if !ok || v.Data != "survivor" {
		// The victim may have won first if it escaped before the crash;
		// accept either, but the survivor must have committed.
		found := false
		for _, u := range c.Server(1).Store().Log() {
			if u.Data == "survivor" {
				found = true
			}
		}
		if !found {
			t.Fatalf("survivor never committed; read=%+v log=%+v", v, c.Server(1).Store().Log())
		}
	}
}

func TestAgentSkipsUnavailableServerAndRetriesNextRound(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, MigrationTimeout: 20 * time.Millisecond, RetryInterval: 100 * time.Millisecond}, simEnv{seed: 4})
	c.Crash(3)
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	o := c.Outcomes()[0]
	if o.Failed {
		t.Fatal("agent failed despite available majority")
	}
	c.Recover(3)
	c.Settle(2 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSurvivesCrashRecoverCycle(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, MigrationTimeout: 30 * time.Millisecond}, simEnv{seed: 6})
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Sim().After(2*time.Millisecond, func() { c.Crash(4) })
	c.Sim().After(300*time.Millisecond, func() { c.Recover(4) })
	if err := c.RunUntilDone(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(3 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	// Count committed vs failed: every agent either committed or died on
	// the crashed host.
	committed := 0
	for _, o := range c.Outcomes() {
		if !o.Failed {
			committed++
		}
	}
	if got := int(c.Server(1).Store().LastSeq()); got != committed {
		t.Fatalf("LastSeq = %d but %d agents committed", got, committed)
	}
}

func TestCrashAndRecoverIdempotent(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	c.Crash(2)
	c.Crash(2) // no-op
	c.Recover(2)
	c.Recover(2) // no-op
	if c.Network().Down(2) {
		t.Fatal("server still down")
	}
}

func TestReadFromDownServerFails(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	c.Crash(2)
	if _, ok := c.Read(2, "x"); ok {
		t.Fatal("read served by a crashed replica")
	}
}
