package core

import (
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/wal"
)

// This file is the cluster's ops plane: the metric registry every
// subsystem reports into under its stable dotted name (DESIGN.md §13
// tables the scheme), and the quorum-reachability health summary behind
// /healthz. Both are read paths — gathering a snapshot or computing
// health reads the same counters and fabric state the protocol already
// maintains, schedules nothing, and therefore cannot perturb a DES run.

// fsyncBuckets spans 10µs (page-cache Mem backend) to 1s (a stalling
// device), in seconds.
var fsyncBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// Metrics returns the cluster's registry. Read-through collectors sample
// engine-owned state, so Gather must run on the engine's execution context
// (transport.Server.GatherMetrics wraps that; the DES harness is already
// single-threaded).
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// initMetrics creates the registry and the typed instruments that hot
// paths observe into; NewCluster calls it before any journal opens so the
// WAL fsync histogram exists when durableOptions wires the OnSync hook.
func (c *Cluster) initMetrics() {
	c.metrics = metrics.NewRegistry()
	c.mWalFsync = c.metrics.Histogram("marp.wal.fsync_seconds",
		"Wall-clock latency of WAL segment fsyncs.", fsyncBuckets)
}

// registerMetrics installs the read-through collectors over every
// subsystem's existing counters. Called once at the end of NewCluster.
func (c *Cluster) registerMetrics() {
	r := c.metrics

	// WAL: summed across locally hosted journals (live mode hosts one).
	walCounter := func(name, help string, get func(s wal.Stats) int) {
		r.CounterFunc("marp.wal."+name, help, func() float64 {
			return float64(get(c.JournalStats()))
		})
	}
	walCounter("appends", "Records appended to the write-ahead log.",
		func(s wal.Stats) int { return s.Appends })
	walCounter("appended_bytes", "Bytes appended to the write-ahead log.",
		func(s wal.Stats) int { return s.AppendedBytes })
	walCounter("syncs", "WAL segment fsyncs issued.",
		func(s wal.Stats) int { return s.Syncs })
	walCounter("rotations", "WAL segment rotations.",
		func(s wal.Stats) int { return s.Rotations })
	walCounter("snapshots", "Snapshot compactions installed.",
		func(s wal.Stats) int { return s.Snapshots })
	walCounter("replayed", "Records replayed by journal open.",
		func(s wal.Stats) int { return s.Replayed })
	walCounter("group_batches", "Group-commit fsyncs that covered parked barriers.",
		func(s wal.Stats) int { return s.GroupBatches })
	walCounter("group_barriers", "Commit barriers covered by group-commit fsyncs.",
		func(s wal.Stats) int { return s.GroupBarriers })

	// Disk: backend I/O summed across locally hosted nodes.
	r.CounterFunc("marp.disk.writes", "Write calls issued to the disk backend.",
		func() float64 { return float64(c.DiskStats().Writes) })
	r.CounterFunc("marp.disk.bytes_written", "Bytes written to the disk backend.",
		func() float64 { return float64(c.DiskStats().BytesWritten) })
	r.CounterFunc("marp.disk.syncs", "Sync calls issued to the disk backend.",
		func() float64 { return float64(c.DiskStats().Syncs) })
	// Duration.Seconds, not a raw ns/1e9 divide: the A7 table formats this
	// value and the two conversions can differ in the last ulp.
	r.CounterFunc("marp.disk.sync_seconds_total", "Modelled or measured time spent in disk Sync calls.",
		func() float64 { return time.Duration(c.DiskStats().SyncTime).Seconds() })

	// Reliable delivery: zeros when the cluster runs on raw channels, so
	// the family is always present and scrapes need no existence dance.
	r.CounterFunc("marp.reliable.retransmissions", "Frames sent beyond their first transmission.",
		func() float64 { return float64(c.ReliableStats().Retransmissions) })
	r.CounterFunc("marp.reliable.duplicates_suppressed", "Frames received more than once and dropped.",
		func() float64 { return float64(c.ReliableStats().DuplicatesSuppressed) })
	r.CounterFunc("marp.reliable.acks_sent", "Acknowledgement frames sent.",
		func() float64 { return float64(c.ReliableStats().AcksSent) })
	r.CounterFunc("marp.reliable.gave_up", "Sends that exhausted the retry cap.",
		func() float64 { return float64(c.ReliableStats().GaveUp) })

	// Fabric: the transport the protocol actually sends on.
	r.CounterFunc("marp.fabric.messages_sent", "Protocol messages handed to the fabric.",
		func() float64 { return float64(c.NetStats().MessagesSent) })
	r.CounterFunc("marp.fabric.messages_delivered", "Messages delivered (or handed to the kernel).",
		func() float64 { return float64(c.NetStats().MessagesDelivered) })
	r.CounterFunc("marp.fabric.messages_dropped", "Messages dropped: destination down, partitioned, or detached.",
		func() float64 { return float64(c.NetStats().MessagesDropped) })
	r.CounterFunc("marp.fabric.messages_lost", "Messages eaten by the fault model or a dead connection.",
		func() float64 { return float64(c.NetStats().MessagesLost) })
	r.CounterFunc("marp.fabric.messages_duplicated", "Messages delivered twice by the fault model.",
		func() float64 { return float64(c.NetStats().MessagesDuplicated) })
	r.CounterFunc("marp.fabric.queue_drops", "Messages dropped by a full per-peer writer queue (live fabric).",
		func() float64 { return float64(c.NetStats().QueueDrops) })
	r.CounterFunc("marp.fabric.bytes_sent", "Modelled payload bytes handed to the fabric.",
		func() float64 { return float64(c.NetStats().BytesSent) })

	// Agent platform: migration traffic.
	r.CounterFunc("marp.agent.created", "Mobile agents created.",
		func() float64 { return float64(c.platform.Stats().AgentsCreated) })
	r.CounterFunc("marp.agent.migrations_started", "Agent migrations started.",
		func() float64 { return float64(c.platform.Stats().MigrationsStarted) })
	r.CounterFunc("marp.agent.migrations_completed", "Agent migrations completed.",
		func() float64 { return float64(c.platform.Stats().MigrationsCompleted) })
	r.CounterFunc("marp.agent.migrations_failed", "Agent migrations that timed out.",
		func() float64 { return float64(c.platform.Stats().MigrationsFailed) })
	r.CounterFunc("marp.agent.killed", "Agents that died with a crashed host or in transit to one.",
		func() float64 { return float64(c.platform.Stats().AgentsKilled) })

	// Replica / request level.
	r.CounterFunc("marp.replica.commits", "Client requests committed (batch members counted individually).",
		func() float64 {
			n := 0
			for _, o := range c.outcomes {
				if !o.Failed {
					n += o.Requests
				}
			}
			return float64(n)
		})
	r.CounterFunc("marp.replica.failures", "Client requests that failed.",
		func() float64 {
			n := 0
			for _, o := range c.outcomes {
				if o.Failed {
					n += o.Requests
				}
			}
			return float64(n)
		})
	r.GaugeFunc("marp.replica.outstanding", "Dispatched agents not yet finished.",
		func() float64 { return float64(c.outstanding) })
	r.CounterFunc("marp.replica.regenerated", "Lost agents respawned from checkpoints.",
		func() float64 { return float64(c.regenerated) })

	// Per-shard views. Locking-list depth sums over the replicas this
	// process hosts; committed counts read one representative local
	// replica (the lowest-ID live one) so a sim-mode process does not
	// multiply every commit by N.
	r.GaugeVecFunc("marp.shard.ll_depth", "Locking List depth per shard, summed over locally hosted replicas.",
		"shard", func() map[string]float64 {
			out := make(map[string]float64, c.shards)
			for sh := 0; sh < c.shards; sh++ {
				depth := 0
				for _, id := range c.nodes {
					if s := c.servers[id]; s != nil {
						depth += s.QueueLen(sh)
					}
				}
				out[strconv.Itoa(sh)] = float64(depth)
			}
			return out
		})
	r.CounterVecFunc("marp.shard.commits", "Committed updates per shard at a representative local replica.",
		"shard", func() map[string]float64 {
			out := make(map[string]float64, c.shards)
			rep := c.representative()
			for sh := 0; sh < c.shards; sh++ {
				v := 0.0
				if rep != nil {
					v = float64(rep.StoreOf(sh).LogLen())
				}
				out[strconv.Itoa(sh)] = v
			}
			return out
		})

	// Health, as scrape-able gauges mirroring /healthz.
	r.GaugeFunc("marp.health.quorum_ok", "1 when every shard group has a reachable write quorum from this process's vantage.",
		func() float64 {
			if c.Health().QuorumOK {
				return 1
			}
			return 0
		})
	r.GaugeFunc("marp.health.shards_degraded", "Shard groups without a reachable write quorum.",
		func() float64 {
			n := 0
			for _, sh := range c.Health().Shards {
				if !sh.QuorumOK {
					n++
				}
			}
			return float64(n)
		})
}

// ShardHealth is one shard group's quorum reachability from this
// process's vantage node.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Group is the shard's replica group, ascending.
	Group []runtime.NodeID `json:"group"`
	// Reachable counts group members this process can currently reach
	// (itself included when it is a member).
	Reachable int `json:"reachable"`
	// MinWrite is the size of the smallest write quorum for the shard's
	// geometry.
	MinWrite int `json:"min_write"`
	// QuorumOK reports whether the reachable members contain a write
	// quorum.
	QuorumOK bool `json:"quorum_ok"`
	// Unreachable lists the members counted out, if any.
	Unreachable []runtime.NodeID `json:"unreachable,omitempty"`
}

// Health is the /healthz body: quorum reachability per shard group,
// computed from the same fabric state — crashes the fabric knows about,
// partitions it was told of — that gates the protocol's own sends.
type Health struct {
	// Vantage is the local replica the reachability is judged from (the
	// lowest-ID locally hosted live node; None when every local replica is
	// down, which is itself degraded).
	Vantage runtime.NodeID `json:"vantage"`
	// QuorumOK is the summary verdict: every shard group has a reachable
	// write quorum.
	QuorumOK bool          `json:"quorum_ok"`
	Shards   []ShardHealth `json:"shards"`
}

// representative returns the lowest-ID locally hosted live replica (nil
// when all are down).
func (c *Cluster) representative() *replica.Server {
	for _, id := range c.nodes {
		if !c.local[id] {
			continue
		}
		if s := c.servers[id]; s != nil && !s.Down() {
			return s
		}
	}
	return nil
}

// Health computes the quorum-reachability summary. Like every cluster
// read it must run on the engine's execution context.
func (c *Cluster) Health() Health {
	vantage := runtime.None
	for _, id := range c.nodes {
		if !c.local[id] {
			continue
		}
		if s := c.servers[id]; s != nil && !s.Down() {
			vantage = id
			break
		}
	}
	h := Health{Vantage: vantage, QuorumOK: true}
	reachSrc, _ := c.base.(runtime.ReachabilitySource)
	reachable := func(m runtime.NodeID) bool {
		if vantage == runtime.None {
			return false
		}
		if s, hosted := c.servers[m]; hosted && s.Down() {
			return false
		}
		if c.base.Down(m) {
			return false
		}
		if m == vantage || reachSrc == nil {
			return true
		}
		return reachSrc.Reachable(vantage, m)
	}
	for sh := 0; sh < c.shards; sh++ {
		group := c.groups[sh]
		shh := ShardHealth{Shard: sh, Group: group, MinWrite: c.assigns[sh].MinWrite()}
		var ok []runtime.NodeID
		for _, m := range group {
			if reachable(m) {
				ok = append(ok, m)
			} else {
				shh.Unreachable = append(shh.Unreachable, m)
			}
		}
		shh.Reachable = len(ok)
		shh.QuorumOK = c.assigns[sh].HasWrite(ok)
		if !shh.QuorumOK {
			h.QuorumOK = false
		}
		h.Shards = append(h.Shards, shh)
	}
	return h
}
