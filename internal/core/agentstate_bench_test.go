package core

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/wire"
)

// benchState is a representative migrating-agent state: a few requests, a
// partially filled locking table over a handful of shards, some gone
// knowledge — the shape the live fabric encodes on every hop.
func benchState() WireState {
	id := func(h, s int) agent.ID { return agent.ID{Home: runtime.NodeID(h), Born: int64(1000 * s), Seq: uint64(s)} }
	snap := func(server, shard, version int) replica.QueueSnapshot {
		return replica.QueueSnapshot{
			Server: runtime.NodeID(server), Shard: shard, Epoch: 1,
			Version: uint64(version), HeadVersion: uint64(version - 1),
			Queue: []agent.ID{id(1, 7), id(2, 9), id(3, 11)},
		}
	}
	return WireState{
		Requests:    []Request{{Key: "user:42", Op: OpSet, Arg: "payload-value"}, {Key: "user:43", Op: OpAppend, Arg: "x"}},
		USL:         []runtime.NodeID{2, 3},
		Unavailable: []runtime.NodeID{5},
		Visits:      4, Retries: 1, Attempt: 2, Dispatched: 123456,
		Snapshots: []replica.QueueSnapshot{snap(1, 0, 4), snap(2, 0, 6), snap(3, 1, 2)},
		Gone:      []agent.ID{id(4, 2), id(5, 3)},
		Visited:   []VisitMark{{Server: 1, Shard: 0, Epoch: 1, Version: 4}, {Server: 2, Shard: 0, Epoch: 1, Version: 6}},
		Floors:    []replica.QueueSnapshot{snap(1, 0, 3)},
	}
}

// BenchmarkEncodeWireState gates the zero-allocation encode path: appending
// into a reused buffer must not allocate at steady state.
func BenchmarkEncodeWireState(b *testing.B) {
	st := benchState()
	buf := AppendWireState(nil, &st)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendWireState(buf[:0], &st)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendWireState(buf[:0], &st)
	}); allocs != 0 {
		b.Fatalf("encode allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDecodeWireState gates the zero-allocation decode path: decoding
// into a reused state with an interner must not allocate at steady state.
func BenchmarkDecodeWireState(b *testing.B) {
	st := benchState()
	data := AppendWireState(nil, &st)
	var into WireState
	var intern wire.Interner
	r := wire.NewReader(data)
	r.SetInterner(&intern)
	if err := DecodeWireStateInto(&into, r); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		if err := DecodeWireStateInto(&into, r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Reset(data)
		if err := DecodeWireStateInto(&into, r); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("decode allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkEncodeWireStateGob is the ablation twin: the gob encoding of the
// same state (the PR 6 migration format).
func BenchmarkEncodeWireStateGob(b *testing.B) {
	st := benchState()
	data, err := st.EncodeGob()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.EncodeGob(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeWireStateGob decodes the gob twin.
func BenchmarkDecodeWireStateGob(b *testing.B) {
	st := benchState()
	data, err := st.EncodeGob()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeWireState(data); err != nil {
			b.Fatal(err)
		}
	}
}
