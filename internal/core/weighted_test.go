package core

import (
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/quorum"
	"repro/internal/simnet"
)

// Weighted voting (Gifford [5]) generalizes the paper's majority scheme:
// the update permission requires heading servers that hold more than half
// the votes, not more than half the servers.

func TestWeightedClusterValidation(t *testing.T) {
	if _, err := newSimCluster(Config{N: 3, Votes: map[simnet.NodeID]int{9: 1}}); err == nil {
		t.Fatal("unknown server in vote map accepted")
	}
	if _, err := newSimCluster(Config{N: 3, Votes: map[simnet.NodeID]int{1: 1, 2: 1}}); err == nil {
		t.Fatal("server without votes accepted")
	}
	if _, err := newSimCluster(Config{N: 3, Votes: map[simnet.NodeID]int{1: 1, 2: 1, 3: 0}}); err == nil {
		t.Fatal("zero-vote server accepted")
	}
}

func TestWeightedWorkloadSerializes(t *testing.T) {
	// Server 1 holds 3 of 7 votes: heading servers {1, any-other} is a
	// quorum (4 votes), heading {2,3,4,5} without 1 is also a quorum.
	votes := map[simnet.NodeID]int{1: 3, 2: 1, 3: 1, 4: 1, 5: 1}
	c := newTestCluster(t, Config{N: 5, Votes: votes}, simEnv{seed: 51})
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
	if got := int(c.Server(1).Store().LastSeq()); got != 5 {
		t.Fatalf("LastSeq = %d", got)
	}
}

func TestWeightedDecideUsesVotes(t *testing.T) {
	votes := quorum.Weighted(map[simnet.NodeID]int{1: 3, 2: 1, 3: 1})
	lt := NewWeightedLockTable(3, votes)
	me := agentID(1)
	// Heading only the heavyweight server: 3 of 5 votes = majority.
	lt.MergeSnapshot(snap(1, 1, me))
	d := lt.Decide(me)
	if !d.Found || d.Winner != me || d.TopCount != 3 {
		t.Fatalf("decision = %+v", d)
	}
	// Heading both lightweights (2 votes of 5) is NOT a majority, and the
	// heavyweight head is unknown — no decision yet.
	lt2 := NewWeightedLockTable(3, votes)
	lt2.MergeSnapshot(snap(2, 1, me))
	lt2.MergeSnapshot(snap(3, 1, me))
	if d := lt2.Decide(me); d.Found {
		t.Fatalf("2/5 votes decided: %+v", d)
	}
	// With the heavyweight known to be headed by another agent, the tie
	// rule applies on vote weights: other has 3, me has 2 -> other wins.
	other := agentID(2)
	lt2.MergeSnapshot(snap(1, 1, other))
	d = lt2.Decide(me)
	if !d.Found || d.Winner != other {
		t.Fatalf("decision = %+v", d)
	}
}

func TestWeightedHeavyweightWinsWithTwoVisits(t *testing.T) {
	// An uncontended agent born at the heavyweight can win after visiting
	// only the servers worth a majority of votes.
	votes := map[simnet.NodeID]int{1: 3, 2: 1, 3: 1, 4: 1, 5: 1}
	c := newTestCluster(t, Config{N: 5, Votes: votes}, simEnv{seed: 53})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	o := c.Outcomes()[0]
	// Home (3 votes) + one more server (1 vote) = 4 of 7 votes.
	if o.Visits != 2 {
		t.Fatalf("visits = %d, want 2 (weighted quorum)", o.Visits)
	}
}

func TestWeightedRefereeMajority(t *testing.T) {
	votes := quorum.Weighted(map[simnet.NodeID]int{1: 3, 2: 1, 3: 1})
	r := NewWeightedReferee(votes, func() des.Time { return 0 })
	a := agentID(1)
	// The heavyweight server alone is a vote majority (3 of 5).
	r.OnGrant(1, 0, a)
	if r.Holder() != a {
		t.Fatalf("holder = %v", r.Holder())
	}
	r.OnGrant(1, 0, agent.ID{})
	// Both lightweights together are not.
	b := agentID(2)
	r.OnGrant(2, 0, b)
	r.OnGrant(3, 0, b)
	if r.Holder() == b {
		t.Fatal("2 of 5 votes treated as a majority")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
