package core

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/simnet"
)

func snap(server int, version uint64, ids ...agent.ID) replica.QueueSnapshot {
	return replica.QueueSnapshot{
		Server:  simnet.NodeID(server),
		Version: version,
		Queue:   ids,
	}
}

func agentID(n int) agent.ID {
	return agent.ID{Home: simnet.NodeID(n), Born: int64(n), Seq: uint64(n)}
}

func TestLockTableHeadFiltering(t *testing.T) {
	lt := NewLockTable(3)
	a, b := agentID(1), agentID(2)
	lt.MergeSnapshot(snap(1, 1, a, b))
	if h, ok := lt.Head(1); !ok || h != a {
		t.Fatalf("head = %v %v", h, ok)
	}
	lt.MarkGone(a)
	if h, ok := lt.Head(1); !ok || h != b {
		t.Fatalf("head after gone = %v %v", h, ok)
	}
	lt.MarkGone(b)
	if _, ok := lt.Head(1); ok {
		t.Fatal("head of fully-gone queue")
	}
	if _, ok := lt.Head(2); ok {
		t.Fatal("head of unknown server")
	}
}

func TestLockTableMergeKeepsFreshest(t *testing.T) {
	lt := NewLockTable(3)
	a, b := agentID(1), agentID(2)
	lt.MergeSnapshot(snap(1, 5, a))
	lt.MergeSnapshot(snap(1, 3, b)) // older: ignored
	if h, _ := lt.Head(1); h != a {
		t.Fatalf("head = %v", h)
	}
	lt.MergeSnapshot(snap(1, 7, b))
	if h, _ := lt.Head(1); h != b {
		t.Fatalf("head = %v", h)
	}
	// Higher epoch beats higher version.
	withEpoch := snap(1, 1, a)
	withEpoch.Epoch = 2
	lt.MergeSnapshot(withEpoch)
	if h, _ := lt.Head(1); h != a {
		t.Fatalf("head = %v", h)
	}
}

func TestLockTableRevTracksMutations(t *testing.T) {
	lt := NewLockTable(3)
	r0 := lt.Rev()
	lt.MergeSnapshot(snap(1, 1, agentID(1)))
	if lt.Rev() == r0 {
		t.Fatal("rev unchanged after merge")
	}
	r1 := lt.Rev()
	lt.MergeSnapshot(snap(1, 1, agentID(1))) // not newer
	if lt.Rev() != r1 {
		t.Fatal("rev changed on rejected merge")
	}
	lt.MarkGone(agentID(9))
	if lt.Rev() == r1 {
		t.Fatal("rev unchanged after MarkGone")
	}
	r2 := lt.Rev()
	lt.MarkGone(agentID(9)) // already gone
	if lt.Rev() != r2 {
		t.Fatal("rev changed on duplicate MarkGone")
	}
}

func TestLockTableForgetTombstone(t *testing.T) {
	lt := NewLockTable(3)
	lt.MergeSnapshot(snap(1, 5, agentID(1)))
	lt.Forget(1)
	if _, ok := lt.Head(1); ok {
		t.Fatal("head survives Forget")
	}
	// Same or older info must not resurrect.
	lt.MergeSnapshot(snap(1, 5, agentID(1)))
	lt.MergeSnapshot(snap(1, 4, agentID(1)))
	if _, ok := lt.Snapshot(1); ok {
		t.Fatal("stale snapshot resurrected after Forget")
	}
	// Strictly newer info is accepted again.
	lt.MergeSnapshot(snap(1, 6, agentID(2)))
	if h, ok := lt.Head(1); !ok || h != agentID(2) {
		t.Fatalf("fresh snapshot rejected: %v %v", h, ok)
	}
	// Forgetting an unknown server is a no-op.
	rev := lt.Rev()
	lt.Forget(99)
	if lt.Rev() != rev {
		t.Fatal("Forget of unknown server mutated table")
	}
}

func TestLockTableDecideMajority(t *testing.T) {
	lt := NewLockTable(5)
	me, other := agentID(1), agentID(2)
	lt.MergeSnapshot(snap(1, 1, me))
	lt.MergeSnapshot(snap(2, 1, me))
	d := lt.Decide(me)
	if d.Found {
		t.Fatalf("decided with 2/5 tops: %+v", d)
	}
	if d.SelfTops != 2 {
		t.Fatalf("SelfTops = %d", d.SelfTops)
	}
	lt.MergeSnapshot(snap(3, 1, me, other))
	d = lt.Decide(me)
	if !d.Found || d.Winner != me || d.ByTie || d.TopCount != 3 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestLockTableDecideOtherWins(t *testing.T) {
	lt := NewLockTable(3)
	me, other := agentID(2), agentID(1)
	lt.MergeSnapshot(snap(1, 1, other, me))
	lt.MergeSnapshot(snap(2, 1, other, me))
	d := lt.Decide(me)
	if !d.Found || d.Winner != other {
		t.Fatalf("decision = %+v", d)
	}
}

func TestLockTableDecideTieByID(t *testing.T) {
	lt := NewLockTable(5)
	a, b, c := agentID(1), agentID(2), agentID(3)
	// Heads: a, a, b, b, c — nobody can reach 3.
	lt.MergeSnapshot(snap(1, 1, a, b))
	lt.MergeSnapshot(snap(2, 1, a, c))
	lt.MergeSnapshot(snap(3, 1, b, a))
	lt.MergeSnapshot(snap(4, 1, b, c))
	lt.MergeSnapshot(snap(5, 1, c, a))
	d := lt.Decide(b)
	if !d.Found || !d.ByTie {
		t.Fatalf("decision = %+v", d)
	}
	if d.Winner != a {
		t.Fatalf("tie winner = %v, want lowest ID %v", d.Winner, a)
	}
	if d.TopCount != 2 {
		t.Fatalf("TopCount = %d", d.TopCount)
	}
}

func TestLockTableDecideEarlyTie(t *testing.T) {
	// Paper's S + (N - M*S) < N/2 condition with partial knowledge:
	// N=5, heads known for 4 servers split 2-2, one unknown server.
	// best(2) + unclaimed(1) = 3 = majority: still possible, no decision.
	lt := NewLockTable(5)
	a, b := agentID(1), agentID(2)
	lt.MergeSnapshot(snap(1, 1, a))
	lt.MergeSnapshot(snap(2, 1, a))
	lt.MergeSnapshot(snap(3, 1, b))
	lt.MergeSnapshot(snap(4, 1, b))
	if d := lt.Decide(a); d.Found {
		t.Fatalf("decided while a majority is still reachable: %+v", d)
	}
	// N=7 with heads 3-3 known on 6 servers and 1 unknown: best(3)+1 = 4
	// = majority of 7 -> still possible. But 2-2-2 with 1 unknown: 2+1=3
	// < 4 -> tie decided early.
	lt7 := NewLockTable(7)
	c := agentID(3)
	lt7.MergeSnapshot(snap(1, 1, a))
	lt7.MergeSnapshot(snap(2, 1, a))
	lt7.MergeSnapshot(snap(3, 1, b))
	lt7.MergeSnapshot(snap(4, 1, b))
	lt7.MergeSnapshot(snap(5, 1, c))
	lt7.MergeSnapshot(snap(6, 1, c))
	d := lt7.Decide(a)
	if !d.Found || !d.ByTie || d.Winner != a {
		t.Fatalf("early tie not decided: %+v", d)
	}
}

func TestLockTableDecideEmpty(t *testing.T) {
	lt := NewLockTable(5)
	if d := lt.Decide(agentID(1)); d.Found {
		t.Fatalf("decision on empty table: %+v", d)
	}
}

func TestLockTableRank(t *testing.T) {
	lt := NewLockTable(3)
	a, b, c := agentID(1), agentID(2), agentID(3)
	lt.MergeSnapshot(snap(1, 1, a, b, c))
	lt.MarkGone(a)
	if r := lt.Rank(1, b); r != 1 {
		t.Fatalf("rank b = %d", r)
	}
	if r := lt.Rank(1, c); r != 2 {
		t.Fatalf("rank c = %d", r)
	}
	if r := lt.Rank(1, agentID(9)); r != 0 {
		t.Fatalf("rank missing = %d", r)
	}
	if r := lt.Rank(2, b); r != 0 {
		t.Fatalf("rank unknown server = %d", r)
	}
}

func TestLockTableNeedRevisit(t *testing.T) {
	lt := NewLockTable(3)
	me := agentID(1)
	visit := replica.LockInfo{Locals: []replica.QueueSnapshot{snap(1, 3, agentID(2), me)}}
	lt.MergeInfo(visit, true)
	if got := lt.NeedRevisit(me); len(got) != 0 {
		t.Fatalf("revisit = %v", got)
	}
	// Fresher snapshot without our entry (server recovered after a crash).
	fresh := snap(1, 1, agentID(2))
	fresh.Epoch = 1
	lt.MergeSnapshot(fresh)
	got := lt.NeedRevisit(me)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("revisit = %v", got)
	}
	// A stale snapshot (older than the visit) must not trigger revisit:
	// merge refuses it anyway, so the state is unchanged.
	lt2 := NewLockTable(3)
	lt2.MergeInfo(visit, true)
	lt2.MergeSnapshot(snap(1, 2, agentID(2))) // version 2 < visit version 3
	if got := lt2.NeedRevisit(me); len(got) != 0 {
		t.Fatalf("revisit on stale info = %v", got)
	}
}

func TestLockTableExportAndEvidence(t *testing.T) {
	lt := NewLockTable(3)
	s := snap(1, 4, agentID(1))
	s.HeadVersion = 2
	lt.MergeSnapshot(s)
	exp := lt.Export()
	if len(exp) != 1 || exp[0].Server != 1 || exp[0].Version != 4 {
		t.Fatalf("export = %+v", exp)
	}
	exp[0].Queue[0] = agentID(9)
	if h, _ := lt.Head(1); h != agentID(1) {
		t.Fatal("Export aliases table")
	}
	ev := lt.Evidence()
	if ev[1] != 2 {
		t.Fatalf("evidence = %v", ev)
	}
}

func TestLockTableVisitedAndGoneList(t *testing.T) {
	lt := NewLockTable(3)
	lt.MergeInfo(replica.LockInfo{Locals: []replica.QueueSnapshot{snap(2, 1, agentID(1))}}, true)
	if !lt.Visited(2) || lt.Visited(1) {
		t.Fatal("Visited wrong")
	}
	lt.MarkGone(agentID(3), agentID(2))
	gl := lt.GoneList()
	if len(gl) != 2 || !gl[0].Less(gl[1]) {
		t.Fatalf("gone list = %v", gl)
	}
	if !lt.IsGone(agentID(3)) || lt.IsGone(agentID(4)) {
		t.Fatal("IsGone wrong")
	}
}
