package core

import (
	"sort"

	"repro/internal/agent"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/runtime"
)

// LockTable is the mobile agent's view of the global locking state: the LT
// of the paper (§3.2), fused with the UAL (agents known to have finished or
// died, whose stale queue entries must be ignored) and the bookkeeping
// needed to notice that a visited server lost the agent's entry in a crash.
//
// Queue snapshots about a server change only in constrained ways — entries
// are appended at the tail and removed when their agent finishes or dies —
// so the head computed from a stale snapshot, after filtering agents known
// to be gone, equals the server's true current head whenever the snapshot
// still contains at least one live entry (see DESIGN.md §6, invariant 5).
type LockTable struct {
	n     int
	votes quorum.Assignment
	snaps map[runtime.NodeID]replica.QueueSnapshot
	gone  map[agent.ID]bool
	// visitMark records the snapshot position (epoch, version) at which
	// this agent last observed itself enqueued at a server by visiting it.
	visitMark map[runtime.NodeID]visitMark
	// floor holds distrust tombstones left by Forget: snapshots for the
	// server are ignored unless strictly newer, so stale information from
	// server caches cannot resurrect a view the agent already rejected.
	floor map[runtime.NodeID]replica.QueueSnapshot
	// rev counts effective mutations; a stable rev across retry rounds
	// tells the agent the system is genuinely stuck, not just slow.
	rev uint64
}

type visitMark struct {
	epoch   uint64
	version uint64
}

// NewLockTable returns an empty table for a system of n replicas with one
// vote each (the paper's plain majority scheme).
func NewLockTable(n int) *LockTable {
	nodes := make([]runtime.NodeID, n)
	for i := range nodes {
		nodes[i] = runtime.NodeID(i + 1)
	}
	return NewWeightedLockTable(n, quorum.Equal(nodes))
}

// NewWeightedLockTable returns a table using an explicit vote assignment —
// Gifford's weighted-voting generalization [5] of the paper's majority
// scheme: an agent wins when the servers whose locking lists it heads hold
// more than half the votes.
func NewWeightedLockTable(n int, votes quorum.Assignment) *LockTable {
	return &LockTable{
		n:         n,
		votes:     votes,
		snaps:     make(map[runtime.NodeID]replica.QueueSnapshot),
		gone:      make(map[agent.ID]bool),
		visitMark: make(map[runtime.NodeID]visitMark),
		floor:     make(map[runtime.NodeID]replica.QueueSnapshot),
	}
}

// N returns the number of replicas in the system.
func (lt *LockTable) N() int { return lt.n }

// Rev returns the table's mutation revision.
func (lt *LockTable) Rev() uint64 { return lt.rev }

// MarkGone records agents known to have finished or died.
func (lt *LockTable) MarkGone(ids ...agent.ID) {
	for _, id := range ids {
		if !lt.gone[id] {
			lt.gone[id] = true
			lt.rev++
		}
	}
}

// IsGone reports whether the agent is known to have finished or died.
func (lt *LockTable) IsGone(id agent.ID) bool { return lt.gone[id] }

// GoneList returns the known-gone agents in a deterministic order.
func (lt *LockTable) GoneList() []agent.ID {
	out := make([]agent.ID, 0, len(lt.gone))
	for id := range lt.gone {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// MergeSnapshot absorbs a queue snapshot, keeping the freshest per server
// and respecting any distrust tombstone left by Forget.
func (lt *LockTable) MergeSnapshot(s replica.QueueSnapshot) {
	if f, ok := lt.floor[s.Server]; ok && !s.Newer(f) {
		return
	}
	cur, ok := lt.snaps[s.Server]
	if !ok || s.Newer(cur) {
		lt.snaps[s.Server] = s.Clone()
		lt.rev++
	}
}

// Forget drops all knowledge about a server and refuses to re-learn
// anything not strictly newer. Agents forget servers that do not answer a
// claim: whatever snapshot led to the claim is evidently useless, an
// unknown head is handled more gracefully than a stale one, and without the
// tombstone the same stale snapshot would flow right back out of a peer
// server's information-sharing cache.
func (lt *LockTable) Forget(server runtime.NodeID) {
	if s, ok := lt.snaps[server]; ok {
		lt.floor[server] = replica.QueueSnapshot{Server: server, Epoch: s.Epoch, Version: s.Version}
		delete(lt.snaps, server)
		lt.rev++
	}
}

// MergeInfo absorbs everything a server handed out. If visited is true the
// local snapshot came from this agent's own visit (it just enqueued there),
// and the table records the visit mark used by NeedRevisit.
func (lt *LockTable) MergeInfo(info replica.LockInfo, visited bool) {
	lt.MergeSnapshot(info.Local)
	lt.MarkGone(info.Gone...)
	for _, snap := range info.Remote {
		lt.MergeSnapshot(snap)
	}
	if visited {
		lt.visitMark[info.Local.Server] = visitMark{epoch: info.Local.Epoch, version: info.Local.Version}
	}
}

// Visited reports whether the agent has visited (enqueued at) the server.
func (lt *LockTable) Visited(server runtime.NodeID) bool {
	_, ok := lt.visitMark[server]
	return ok
}

// Snapshot returns the freshest known snapshot for a server.
func (lt *LockTable) Snapshot(server runtime.NodeID) (replica.QueueSnapshot, bool) {
	s, ok := lt.snaps[server]
	return s, ok
}

// Head returns the server's head of queue after filtering gone agents.
// ok is false when the table has no information for the server or the
// filtered queue is empty.
func (lt *LockTable) Head(server runtime.NodeID) (agent.ID, bool) {
	s, ok := lt.snaps[server]
	if !ok {
		return agent.ID{}, false
	}
	for _, id := range s.Queue {
		if !lt.gone[id] {
			return id, true
		}
	}
	return agent.ID{}, false
}

// Rank returns self's 1-based position in the server's filtered queue
// (0 if absent or unknown) — diagnostic/metrics helper.
func (lt *LockTable) Rank(server runtime.NodeID, self agent.ID) int {
	s, ok := lt.snaps[server]
	if !ok {
		return 0
	}
	rank := 0
	for _, id := range s.Queue {
		if lt.gone[id] {
			continue
		}
		rank++
		if id == self {
			return rank
		}
	}
	return 0
}

// Export returns the table's snapshots for leaving behind at a server (the
// paper's information sharing). The server merges by version, so sharing is
// always safe.
func (lt *LockTable) Export() map[runtime.NodeID]replica.QueueSnapshot {
	out := make(map[runtime.NodeID]replica.QueueSnapshot, len(lt.snaps))
	for n, s := range lt.snaps {
		out[n] = s.Clone()
	}
	return out
}

// Evidence returns the head-version claimed for every known server; servers
// validate tie-break claims against it.
func (lt *LockTable) Evidence() map[runtime.NodeID]uint64 {
	out := make(map[runtime.NodeID]uint64, len(lt.snaps))
	for n, s := range lt.snaps {
		out[n] = s.HeadVersion
	}
	return out
}

// NeedRevisit returns visited servers that, according to information at
// least as fresh as the visit, no longer hold self's queue entry — which
// happens when the server crashed (losing its volatile LL) and recovered.
// The agent must travel there again to re-enqueue.
func (lt *LockTable) NeedRevisit(self agent.ID) []runtime.NodeID {
	var out []runtime.NodeID
	for server, mark := range lt.visitMark {
		s, ok := lt.snaps[server]
		if !ok {
			continue
		}
		fresher := s.Epoch > mark.epoch || (s.Epoch == mark.epoch && s.Version >= mark.version)
		if !fresher {
			continue
		}
		present := false
		for _, id := range s.Queue {
			if id == self {
				present = true
				break
			}
		}
		if !present {
			out = append(out, server)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ranking computes the next k winners the priority rule would elect in
// sequence, simulating each winner's completion — the extension the paper
// sketches in §3.3 ("it can be extended so that mobile agents can determine
// not only the first mobile agent who will obtain the lock next, but also
// the second agent, the third agent, etc."). The ranking is exact when the
// table covers all servers and best-effort otherwise; it stops early when
// the rule becomes inconclusive.
func (lt *LockTable) Ranking(self agent.ID, k int) []agent.ID {
	var out []agent.ID
	var simulated []agent.ID
	for len(out) < k {
		d := lt.Decide(self)
		if !d.Found {
			break
		}
		out = append(out, d.Winner)
		simulated = append(simulated, d.Winner)
		lt.gone[d.Winner] = true // tentative: undone below
	}
	for _, id := range simulated {
		delete(lt.gone, id)
	}
	return out
}

// Decision is the result of the fully distributed priority calculation.
type Decision struct {
	Found    bool
	Winner   agent.ID
	ByTie    bool
	SelfTops int // servers where self heads the queue, per current knowledge
	TopCount int // the winner's top count
}

// Decide runs the paper's priority rule (§3.3) over the table's knowledge:
//
//   - an agent heading the locking lists of a majority of the N servers has
//     the highest priority;
//   - otherwise, if even claiming every server whose head is unknown cannot
//     lift any agent to a majority — the paper's S + (N − M·S) < N/2
//     condition, generalized to partial knowledge — the tie is resolved in
//     favor of the smallest agent identifier among the current leaders.
//
// A Decision with Found == false means the agent must gather more
// information (keep travelling, or wait for locking lists to change).
func (lt *LockTable) Decide(self agent.ID) Decision {
	majority := lt.votes.Majority()
	counts := make(map[agent.ID]int) // vote-weighted top counts
	known := 0                       // votes of servers with a known head
	for server := 1; server <= lt.n; server++ {
		id := runtime.NodeID(server)
		head, ok := lt.Head(id)
		if !ok {
			continue
		}
		counts[head] += lt.votes.Votes(id)
		known += lt.votes.Votes(id)
	}
	d := Decision{SelfTops: counts[self]}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	for id, c := range counts {
		if c >= majority {
			d.Found = true
			d.Winner = id
			d.TopCount = c
			return d
		}
	}
	unclaimed := lt.votes.Total() - known
	if best == 0 || best+unclaimed >= majority {
		return d // someone could still reach a majority: no decision yet
	}
	// Tie: resolve by smallest identifier among the agents with the most
	// top ranks.
	var winner agent.ID
	for id, c := range counts {
		if c != best {
			continue
		}
		if winner.IsZero() || id.Less(winner) {
			winner = id
		}
	}
	d.Found = true
	d.Winner = winner
	d.ByTie = true
	d.TopCount = best
	return d
}
