package core

import (
	"sort"

	"repro/internal/agent"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/runtime"
)

// ShardView is everything an agent's LockTable knows about one shard it
// operates on: the replica group owning the shard and the quorum geometry
// arbitrating its write permission. A single-shard system has one view
// covering all N servers — the paper's configuration.
type ShardView struct {
	Shard int
	Group []runtime.NodeID // ascending
	Votes quorum.Assignment
}

// snapKey identifies one Locking List: a (shard, server) pair.
type snapKey struct {
	shard  int
	server runtime.NodeID
}

// LockTable is the mobile agent's view of the global locking state: the LT
// of the paper (§3.2), fused with the UAL (agents known to have finished or
// died, whose stale queue entries must be ignored) and the bookkeeping
// needed to notice that a visited server lost the agent's entry in a crash.
// Snapshots are kept per (server, shard): a multi-shard agent tracks every
// Locking List its claim depends on.
//
// Queue snapshots about a locking list change only in constrained ways —
// entries are appended at the tail and removed when their agent finishes or
// dies — so the head computed from a stale snapshot, after filtering agents
// known to be gone, equals the list's true current head whenever the
// snapshot still contains at least one live entry (see DESIGN.md §6,
// invariant 5).
type LockTable struct {
	n     int
	views []ShardView
	snaps map[snapKey]replica.QueueSnapshot
	gone  map[agent.ID]bool
	// visitMark records the snapshot position (epoch, version) at which
	// this agent last observed itself enqueued in a locking list by
	// visiting its server.
	visitMark map[snapKey]visitMark
	// floor holds distrust tombstones left by Forget: snapshots for the
	// list are ignored unless strictly newer, so stale information from
	// server caches cannot resurrect a view the agent already rejected.
	floor map[snapKey]replica.QueueSnapshot
	// rev counts effective mutations; a stable rev across retry rounds
	// tells the agent the system is genuinely stuck, not just slow.
	rev uint64
	// Decide scratch, reused across calls: the table lives on one agent's
	// goroutine and decides after every locking-list event, which made
	// these transient structures the live path's hottest allocations.
	scratchSubs   []shardDecision
	scratchHeaded []map[agent.ID][]runtime.NodeID
	scratchReach  []runtime.NodeID
}

type visitMark struct {
	epoch   uint64
	version uint64
}

// NewLockTable returns an empty table for an unsharded system of n replicas
// with one vote each (the paper's plain majority scheme).
func NewLockTable(n int) *LockTable {
	nodes := make([]runtime.NodeID, n)
	for i := range nodes {
		nodes[i] = runtime.NodeID(i + 1)
	}
	return NewWeightedLockTable(n, quorum.Equal(nodes))
}

// NewWeightedLockTable returns an unsharded table using an explicit vote
// assignment — Gifford's weighted-voting generalization [5] of the paper's
// majority scheme: an agent wins when the servers whose locking lists it
// heads form a write quorum.
func NewWeightedLockTable(n int, votes quorum.Assignment) *LockTable {
	nodes := make([]runtime.NodeID, n)
	for i := range nodes {
		nodes[i] = runtime.NodeID(i + 1)
	}
	return NewShardedLockTable(n, []ShardView{{Shard: 0, Group: nodes, Votes: votes}})
}

// NewShardedLockTable returns a table over explicit shard views (ascending
// shard order). The agent wins only when every view elects it.
func NewShardedLockTable(n int, views []ShardView) *LockTable {
	return &LockTable{
		n:         n,
		views:     views,
		snaps:     make(map[snapKey]replica.QueueSnapshot),
		gone:      make(map[agent.ID]bool),
		visitMark: make(map[snapKey]visitMark),
		floor:     make(map[snapKey]replica.QueueSnapshot),
	}
}

// N returns the number of replicas in the system.
func (lt *LockTable) N() int { return lt.n }

// Rev returns the table's mutation revision.
func (lt *LockTable) Rev() uint64 { return lt.rev }

// MarkGone records agents known to have finished or died.
func (lt *LockTable) MarkGone(ids ...agent.ID) {
	if len(lt.gone) == 0 && len(ids) > 8 {
		// First sizeable merge (a fresh or just-thawed agent absorbing a
		// server's whole gone list): allocate the map at its final size
		// instead of growing it through every doubling.
		lt.gone = make(map[agent.ID]bool, len(ids))
	}
	for _, id := range ids {
		if !lt.gone[id] {
			lt.gone[id] = true
			lt.rev++
		}
	}
}

// IsGone reports whether the agent is known to have finished or died.
func (lt *LockTable) IsGone(id agent.ID) bool { return lt.gone[id] }

// GoneList returns the known-gone agents in a deterministic order.
func (lt *LockTable) GoneList() []agent.ID {
	out := make([]agent.ID, 0, len(lt.gone))
	for id := range lt.gone {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// MergeSnapshot absorbs a queue snapshot, keeping the freshest per
// (shard, server) and respecting any distrust tombstone left by Forget.
func (lt *LockTable) MergeSnapshot(s replica.QueueSnapshot) {
	k := snapKey{shard: s.Shard, server: s.Server}
	if f, ok := lt.floor[k]; ok && !s.Newer(f) {
		return
	}
	cur, ok := lt.snaps[k]
	if !ok || s.Newer(cur) {
		lt.snaps[k] = s.Clone()
		lt.rev++
	}
}

// Forget drops all knowledge about a server (every shard) and refuses to
// re-learn anything not strictly newer. Agents forget servers that do not
// answer a claim: whatever snapshot led to the claim is evidently useless,
// an unknown head is handled more gracefully than a stale one, and without
// the tombstone the same stale snapshot would flow right back out of a peer
// server's information-sharing cache.
func (lt *LockTable) Forget(server runtime.NodeID) {
	for k, s := range lt.snaps {
		if k.server != server {
			continue
		}
		lt.floor[k] = replica.QueueSnapshot{Server: server, Shard: k.shard, Epoch: s.Epoch, Version: s.Version}
		delete(lt.snaps, k)
		lt.rev++
	}
}

// MergeInfo absorbs everything a server handed out. If visited is true the
// local snapshots came from this agent's own visit (it just enqueued
// there), and the table records the visit marks used by NeedRevisit.
func (lt *LockTable) MergeInfo(info replica.LockInfo, visited bool) {
	for _, local := range info.Locals {
		lt.MergeSnapshot(local)
		if visited {
			lt.visitMark[snapKey{shard: local.Shard, server: local.Server}] =
				visitMark{epoch: local.Epoch, version: local.Version}
		}
	}
	lt.MarkGone(info.Gone...)
	for _, snap := range info.Remote {
		lt.MergeSnapshot(snap)
	}
}

// Visited reports whether the agent has visited (enqueued at) the server.
func (lt *LockTable) Visited(server runtime.NodeID) bool {
	for k := range lt.visitMark {
		if k.server == server {
			return true
		}
	}
	return false
}

// Snapshot returns the freshest known shard-0 snapshot for a server.
func (lt *LockTable) Snapshot(server runtime.NodeID) (replica.QueueSnapshot, bool) {
	s, ok := lt.snaps[snapKey{server: server}]
	return s, ok
}

// Head returns the head of the server's shard-0 queue after filtering gone
// agents; ok is false when the table has no information for the server or
// the filtered queue is empty.
func (lt *LockTable) Head(server runtime.NodeID) (agent.ID, bool) {
	return lt.headAt(0, server)
}

func (lt *LockTable) headAt(shrd int, server runtime.NodeID) (agent.ID, bool) {
	s, ok := lt.snaps[snapKey{shard: shrd, server: server}]
	if !ok {
		return agent.ID{}, false
	}
	for _, id := range s.Queue {
		if !lt.gone[id] {
			return id, true
		}
	}
	return agent.ID{}, false
}

// Rank returns self's 1-based position in the server's filtered shard-0
// queue (0 if absent or unknown) — diagnostic/metrics helper.
func (lt *LockTable) Rank(server runtime.NodeID, self agent.ID) int {
	s, ok := lt.snaps[snapKey{server: server}]
	if !ok {
		return 0
	}
	rank := 0
	for _, id := range s.Queue {
		if lt.gone[id] {
			continue
		}
		rank++
		if id == self {
			return rank
		}
	}
	return 0
}

// Export returns the table's snapshots for leaving behind at a server (the
// paper's information sharing), sorted by (shard, server). The server
// merges by version, so sharing is always safe.
func (lt *LockTable) Export() []replica.QueueSnapshot {
	out := make([]replica.QueueSnapshot, 0, len(lt.snaps))
	for _, s := range lt.snaps {
		out = append(out, s.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Server < out[j].Server
	})
	return out
}

// Evidence returns the head-version claimed for every known server (the
// freshest across its shards); servers validate tie-break claims against it.
func (lt *LockTable) Evidence() map[runtime.NodeID]uint64 {
	out := make(map[runtime.NodeID]uint64, len(lt.snaps))
	for k, s := range lt.snaps {
		if cur, ok := out[k.server]; !ok || s.HeadVersion > cur {
			out[k.server] = s.HeadVersion
		}
	}
	return out
}

// NeedRevisit returns visited servers where, according to information at
// least as fresh as the visit, some locking list no longer holds self's
// queue entry — which happens when the server crashed (losing its volatile
// LLs) and recovered. The agent must travel there again to re-enqueue.
func (lt *LockTable) NeedRevisit(self agent.ID) []runtime.NodeID {
	seen := make(map[runtime.NodeID]bool)
	var out []runtime.NodeID
	for k, mark := range lt.visitMark {
		if seen[k.server] {
			continue
		}
		s, ok := lt.snaps[k]
		if !ok {
			continue
		}
		fresher := s.Epoch > mark.epoch || (s.Epoch == mark.epoch && s.Version >= mark.version)
		if !fresher {
			continue
		}
		present := false
		for _, id := range s.Queue {
			if id == self {
				present = true
				break
			}
		}
		if !present {
			seen[k.server] = true
			out = append(out, k.server)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ranking computes the next k winners the priority rule would elect in
// sequence, simulating each winner's completion — the extension the paper
// sketches in §3.3 ("it can be extended so that mobile agents can determine
// not only the first mobile agent who will obtain the lock next, but also
// the second agent, the third agent, etc."). The ranking is exact when the
// table covers all servers and best-effort otherwise; it stops early when
// the rule becomes inconclusive.
func (lt *LockTable) Ranking(self agent.ID, k int) []agent.ID {
	var out []agent.ID
	var simulated []agent.ID
	for len(out) < k {
		d := lt.Decide(self)
		if !d.Found {
			break
		}
		out = append(out, d.Winner)
		simulated = append(simulated, d.Winner)
		lt.gone[d.Winner] = true // tentative: undone below
	}
	for _, id := range simulated {
		delete(lt.gone, id)
	}
	return out
}

// Decision is the result of the fully distributed priority calculation.
type Decision struct {
	Found    bool
	Winner   agent.ID
	ByTie    bool
	SelfTops int // write-quorum score of the lists self heads, summed over shards
	TopCount int // the winner's score
}

// shardDecision is one shard's sub-decision.
type shardDecision struct {
	found  bool
	winner agent.ID
	byTie  bool
	headed map[agent.ID][]runtime.NodeID
	votes  quorum.Assignment
}

// Decide runs the paper's priority rule (§3.3) over the table's knowledge,
// generalized to quorum geometries and shards:
//
//   - on each shard, an agent heading the locking lists of a write quorum of
//     the shard's replica group has the highest priority (the paper's
//     majority of N servers, under the majority geometry);
//   - otherwise, if even claiming every list whose head is unknown cannot
//     lift any agent to a write quorum — the paper's S + (N − M·S) < N/2
//     condition, generalized to partial knowledge — the tie resolves in
//     favor of the heaviest current leader, smallest identifier first;
//   - the agent wins overall when every shard it operates on elects it. If
//     all shards decide but disagree, the cross-shard tie resolves to the
//     leader with the highest total score (then smallest identifier), and
//     the losers wait.
//
// A Decision with Found == false means the agent must gather more
// information (keep travelling, or wait for locking lists to change).
func (lt *LockTable) Decide(self agent.ID) Decision {
	if cap(lt.scratchSubs) < len(lt.views) {
		lt.scratchSubs = make([]shardDecision, len(lt.views))
	}
	for len(lt.scratchHeaded) < len(lt.views) {
		lt.scratchHeaded = append(lt.scratchHeaded, make(map[agent.ID][]runtime.NodeID))
	}
	subs := lt.scratchSubs[:len(lt.views)]
	selfTops := 0
	for i, v := range lt.views {
		clear(lt.scratchHeaded[i])
		subs[i] = lt.decideShard(v, self, lt.scratchHeaded[i])
		selfTops += v.Votes.Score(subs[i].headed[self])
	}
	d := Decision{SelfTops: selfTops}
	for _, s := range subs {
		if !s.found {
			return d
		}
	}
	winner := subs[0].winner
	agreed := true
	for _, s := range subs[1:] {
		if s.winner != winner {
			agreed = false
			break
		}
	}
	if !agreed {
		// Cross-shard tie (multi-shard systems only): different shards
		// elected different leaders. Resolve deterministically so exactly
		// one agent proceeds to claim; the servers' grant exclusivity
		// arbitrates safely either way.
		winner = agent.ID{}
		best := -1
		for _, s := range subs {
			total := 0
			for _, x := range subs {
				total += x.votes.Score(x.headed[s.winner])
			}
			if total > best || (total == best && s.winner.Less(winner)) {
				winner, best = s.winner, total
			}
		}
		d.Found = true
		d.Winner = winner
		d.ByTie = true
		d.TopCount = best
		return d
	}
	d.Found = true
	d.Winner = winner
	for _, s := range subs {
		d.TopCount += s.votes.Score(s.headed[winner])
		d.ByTie = d.ByTie || s.byTie
	}
	return d
}

// decideShard elects one shard's highest-priority agent from the heads the
// table knows on that shard's replica group. headed is a caller-owned
// (cleared) scratch map the result aliases; it is only read until the next
// Decide call.
func (lt *LockTable) decideShard(v ShardView, self agent.ID, headed map[agent.ID][]runtime.NodeID) shardDecision {
	d := shardDecision{headed: headed, votes: v.Votes}
	var unknown []runtime.NodeID
	for _, server := range v.Group {
		head, ok := lt.headAt(v.Shard, server)
		if !ok {
			unknown = append(unknown, server)
			continue
		}
		d.headed[head] = append(d.headed[head], server)
	}
	for id, nodes := range d.headed {
		if v.Votes.HasWrite(nodes) {
			d.found = true
			d.winner = id
			return d
		}
	}
	if len(d.headed) == 0 {
		return d // nothing known yet
	}
	for _, nodes := range d.headed {
		lt.scratchReach = append(append(lt.scratchReach[:0], nodes...), unknown...)
		if v.Votes.HasWrite(lt.scratchReach) {
			return d // someone could still reach a write quorum: no decision yet
		}
	}
	// Tie: resolve by score, then smallest identifier among the leaders.
	best := -1
	var winner agent.ID
	for id, nodes := range d.headed {
		score := v.Votes.Score(nodes)
		if score > best || (score == best && id.Less(winner)) {
			winner, best = id, score
		}
	}
	d.found = true
	d.winner = winner
	d.byTie = true
	return d
}
