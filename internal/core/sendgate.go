package core

import "repro/internal/runtime"

// sendGate sits between the protocol layers and the raw fabric to preserve
// DESIGN.md invariant 11 under WAL group commit. When a commit barrier
// parks awaiting its covering fsync (durable.Journal.OnBarrier → Hold),
// the gate dams every outbound message; when the fsync lands (Release,
// marshalled back onto the engine's execution context) the dam opens and
// the queue drains in order. Nothing a deferred barrier justifies — an
// acknowledgement, a grant, a migrating agent — can leave the node before
// the barrier is durable, which is exactly the property the synchronous
// fsync used to provide for free.
//
// The gate is single-threaded by construction: Hold, Release, and Send all
// run on the engine's execution context.
type sendGate struct {
	net     runtime.Fabric
	pending int
	queue   []runtime.Message
}

var _ runtime.Fabric = (*sendGate)(nil)

func newSendGate(net runtime.Fabric) *sendGate { return &sendGate{net: net} }

// Hold dams outbound sends until a matching Release.
func (g *sendGate) Hold() { g.pending++ }

// Release undoes one Hold; at zero the dammed queue drains in order.
func (g *sendGate) Release() {
	g.pending--
	if g.pending > 0 {
		return
	}
	if g.pending < 0 {
		panic("core: send gate released more than held")
	}
	q := g.queue
	g.queue = nil
	for _, msg := range q {
		g.net.Send(msg)
	}
}

// Send forwards msg, or queues it while a barrier is pending.
func (g *sendGate) Send(msg runtime.Message) {
	if g.pending > 0 {
		g.queue = append(g.queue, msg)
		return
	}
	g.net.Send(msg)
}

func (g *sendGate) Attach(id runtime.NodeID, h runtime.Handler) { g.net.Attach(id, h) }
func (g *sendGate) Cost(from, to runtime.NodeID) float64        { return g.net.Cost(from, to) }
func (g *sendGate) Down(id runtime.NodeID) bool                 { return g.net.Down(id) }

// NetStats forwards the runtime.StatsSource capability.
func (g *sendGate) NetStats() runtime.NetStats {
	if src, ok := g.net.(runtime.StatsSource); ok {
		return src.NetStats()
	}
	return runtime.NetStats{}
}

// Reachable forwards the runtime.ReachabilitySource capability; a fabric
// with no reachability knowledge reports everything reachable.
func (g *sendGate) Reachable(from, to runtime.NodeID) bool {
	if src, ok := g.net.(runtime.ReachabilitySource); ok {
		return src.Reachable(from, to)
	}
	return true
}

// WireDelivery forwards the runtime.WireFabric capability: gating does not
// change whether payloads are physically serialized.
func (g *sendGate) WireDelivery() bool {
	if wf, ok := g.net.(runtime.WireFabric); ok {
		return wf.WireDelivery()
	}
	return false
}
