package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

// TestPropertyRandomWorkloadInvariants runs randomized workloads (random
// cluster size, submission times, homes and keys) and checks the standing
// invariants after every run: no mutual-exclusion violation, identical
// committed logs at every replica, gapless sequence numbers, and Theorem 3's
// visit bounds for rank-majority winners.
func TestPropertyRandomWorkloadInvariants(t *testing.T) {
	f := func(seed int64, nRaw, opsRaw uint8) bool {
		n := int(nRaw%4)*2 + 3 // 3,5,7,9
		ops := int(opsRaw%12) + 1
		c, err := newSimCluster(Config{N: n}, simEnv{seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		rng := c.Sim().Rand()
		keys := []string{"a", "b", "c"}
		for i := 0; i < ops; i++ {
			i := i
			home := simnet.NodeID(rng.Intn(n) + 1)
			key := keys[rng.Intn(len(keys))]
			delay := time.Duration(rng.Intn(50)) * time.Millisecond
			c.Sim().After(delay, func() {
				_ = c.Submit(home, Set(key, fmt.Sprintf("v%d", i)))
			})
		}
		c.Sim().RunFor(60 * time.Millisecond)
		if err := c.RunUntilDone(5 * time.Minute); err != nil {
			t.Log(err)
			return false
		}
		c.Settle(2 * time.Second)
		if err := c.Referee().Err(); err != nil {
			t.Log(err)
			return false
		}
		if err := c.CheckConvergence(); err != nil {
			t.Log(err)
			return false
		}
		log := c.Server(1).Store().Log()
		if len(log) != ops {
			t.Logf("committed %d of %d updates", len(log), ops)
			return false
		}
		for i, u := range log {
			if u.Seq != uint64(i+1) {
				t.Logf("gap at %d: %+v", i, u)
				return false
			}
		}
		majority := n/2 + 1
		for _, o := range c.Outcomes() {
			if o.Failed {
				t.Logf("agent %v failed without any crash", o.Agent)
				return false
			}
			if !o.ByTie && (o.Visits < majority || o.Visits > n) {
				t.Logf("visits %d outside [%d,%d]", o.Visits, majority, n)
				return false
			}
			if o.LockAt < o.Dispatched || o.DoneAt < o.LockAt {
				t.Logf("time travel in outcome %+v", o)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCrashRecoveryConvergence injects a random crash/recover cycle
// into a random workload and checks that the system still serializes all
// surviving updates and converges.
func TestPropertyCrashRecoveryConvergence(t *testing.T) {
	f := func(seed int64, victimRaw uint8) bool {
		const n = 5
		c, err := newSimCluster(Config{N: n, MigrationTimeout: 30 * time.Millisecond}, simEnv{seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		rng := c.Sim().Rand()
		victim := simnet.NodeID(int(victimRaw%n) + 1)
		for i := 0; i < 6; i++ {
			i := i
			home := simnet.NodeID(rng.Intn(n) + 1)
			delay := time.Duration(rng.Intn(40)) * time.Millisecond
			c.Sim().After(delay, func() {
				_ = c.Submit(home, Set("k", fmt.Sprintf("v%d", i)))
			})
		}
		crashAt := time.Duration(rng.Intn(30)) * time.Millisecond
		c.Sim().After(crashAt, func() { c.Crash(victim) })
		c.Sim().After(crashAt+400*time.Millisecond, func() { c.Recover(victim) })
		c.Sim().RunFor(500 * time.Millisecond)
		if err := c.RunUntilDone(5 * time.Minute); err != nil {
			t.Log(err)
			return false
		}
		c.Settle(3 * time.Second)
		if err := c.Referee().Err(); err != nil {
			t.Log(err)
			return false
		}
		if err := c.CheckConvergence(); err != nil {
			t.Log(err)
			return false
		}
		committed := 0
		for _, o := range c.Outcomes() {
			if !o.Failed {
				committed++
			}
		}
		return int(c.Server(1).Store().LastSeq()) == committed
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
