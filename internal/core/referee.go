package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/quorum"
	"repro/internal/runtime"
)

// Referee is a simulation-only oracle that checks the protocol's central
// safety property — Theorem 2 of the paper, "there is only one highest
// priority mobile agent in the system at any time" — per shard. It observes
// every server's per-shard exclusive grant (via
// replica.Config.GrantObserver) and flags a violation the instant two
// different transactions simultaneously hold grants forming a write quorum
// of the same shard's replica group, since a validated write quorum of
// grants is what constitutes the update permission in this implementation.
// Grants on different shards are independent by design (shard isolation),
// so the oracle never relates them.
//
// The referee is pure observation: it never influences the protocol, so a
// run with a referee behaves identically to one without.
type Referee struct {
	clock      func() runtime.Time
	shards     []*refShard
	violations []string
}

// refShard tracks one shard's grants against its quorum geometry.
type refShard struct {
	votes  quorum.Assignment
	grants map[runtime.NodeID]agent.ID
	holder agent.ID // txn currently holding a write quorum of grants
	wins   int
}

// NewReferee returns a referee for an unsharded system of n equally
// weighted replicas. clock supplies the current virtual time for violation
// reports.
func NewReferee(n int, clock func() runtime.Time) *Referee {
	nodes := make([]runtime.NodeID, n)
	for i := range nodes {
		nodes[i] = runtime.NodeID(i + 1)
	}
	return NewWeightedReferee(quorum.Equal(nodes), clock)
}

// NewWeightedReferee returns an unsharded referee for an explicit vote
// assignment: the exclusion invariant becomes "no two transactions
// simultaneously hold grants forming a write quorum".
func NewWeightedReferee(votes quorum.Assignment, clock func() runtime.Time) *Referee {
	return NewShardedReferee([]quorum.Assignment{votes}, clock)
}

// NewShardedReferee returns a referee observing one grant space per shard,
// each judged against its own quorum geometry.
func NewShardedReferee(assigns []quorum.Assignment, clock func() runtime.Time) *Referee {
	r := &Referee{clock: clock}
	for _, a := range assigns {
		r.shards = append(r.shards, &refShard{votes: a, grants: make(map[runtime.NodeID]agent.ID)})
	}
	return r
}

// OnGrant implements the grant observation hook: server's grant on shard
// shrd changed to txn (zero = released).
func (r *Referee) OnGrant(server runtime.NodeID, shrd int, txn agent.ID) {
	if shrd < 0 || shrd >= len(r.shards) {
		return
	}
	rs := r.shards[shrd]
	if prev, ok := rs.grants[server]; ok && !prev.IsZero() && !txn.IsZero() && txn != prev {
		r.violations = append(r.violations, fmt.Sprintf(
			"grant exclusivity violated at %v: server %d shard %d reassigned %v -> %v without release",
			r.clock(), server, shrd, prev, txn))
	}
	rs.grants[server] = txn
	r.check(shrd, rs)
}

func (r *Referee) check(shrd int, rs *refShard) {
	holding := make(map[agent.ID][]runtime.NodeID)
	for server, txn := range rs.grants {
		if !txn.IsZero() {
			holding[txn] = append(holding[txn], server)
		}
	}
	var atQuorum []agent.ID
	for txn, nodes := range holding {
		if rs.votes.HasWrite(nodes) {
			atQuorum = append(atQuorum, txn)
		}
	}
	switch {
	case len(atQuorum) > 1:
		r.violations = append(r.violations, fmt.Sprintf(
			"mutual exclusion violated at %v: %d agents hold grant write quorums on shard %d: %v",
			r.clock(), len(atQuorum), shrd, atQuorum))
	case len(atQuorum) == 1:
		if rs.holder != atQuorum[0] {
			rs.holder = atQuorum[0]
			rs.wins++
		}
	default:
		rs.holder = agent.ID{}
	}
}

// Holder returns the transaction currently holding a write quorum of
// shard-0 grants (zero if none).
func (r *Referee) Holder() agent.ID { return r.shards[0].holder }

// HolderOf returns the transaction holding a write quorum of the shard's
// grants (zero if none).
func (r *Referee) HolderOf(shrd int) agent.ID { return r.shards[shrd].holder }

// Wins reports how many distinct times some transaction reached a grant
// write quorum, summed over shards.
func (r *Referee) Wins() int {
	total := 0
	for _, rs := range r.shards {
		total += rs.wins
	}
	return total
}

// Violations returns the recorded safety violations (empty on a correct run).
func (r *Referee) Violations() []string {
	out := make([]string, len(r.violations))
	copy(out, r.violations)
	return out
}

// Err returns an error summarizing violations, or nil if none occurred.
func (r *Referee) Err() error {
	if len(r.violations) == 0 {
		return nil
	}
	return fmt.Errorf("referee: %d violation(s), first: %s", len(r.violations), r.violations[0])
}
