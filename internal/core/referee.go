package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/quorum"
	"repro/internal/runtime"
)

// Referee is a simulation-only oracle that checks the protocol's central
// safety property — Theorem 2 of the paper, "there is only one highest
// priority mobile agent in the system at any time". It observes every
// server's exclusive grant (via replica.Config.GrantObserver) and flags a
// violation the instant two different transactions simultaneously hold
// grants at a majority of servers, since a validated majority of grants is
// what constitutes the update permission in this implementation.
//
// The referee is pure observation: it never influences the protocol, so a
// run with a referee behaves identically to one without.
type Referee struct {
	votes      quorum.Assignment
	majority   int
	clock      func() runtime.Time
	grants     map[runtime.NodeID]agent.ID
	counts     map[agent.ID]int
	holder     agent.ID // txn currently at or above majority
	wins       int
	violations []string
}

// NewReferee returns a referee for a system of n equally-weighted replicas.
// clock supplies the current virtual time for violation reports.
func NewReferee(n int, clock func() runtime.Time) *Referee {
	nodes := make([]runtime.NodeID, n)
	for i := range nodes {
		nodes[i] = runtime.NodeID(i + 1)
	}
	return NewWeightedReferee(quorum.Equal(nodes), clock)
}

// NewWeightedReferee returns a referee for an explicit vote assignment:
// the exclusion invariant becomes "no two transactions simultaneously hold
// grants worth a majority of the votes".
func NewWeightedReferee(votes quorum.Assignment, clock func() runtime.Time) *Referee {
	return &Referee{
		votes:    votes,
		majority: votes.Majority(),
		clock:    clock,
		grants:   make(map[runtime.NodeID]agent.ID),
		counts:   make(map[agent.ID]int),
	}
}

// OnGrant implements the grant observation hook: server's grant changed to
// txn (zero = released).
func (r *Referee) OnGrant(server runtime.NodeID, txn agent.ID) {
	if prev, ok := r.grants[server]; ok && !prev.IsZero() {
		if !txn.IsZero() && txn != prev {
			r.violations = append(r.violations, fmt.Sprintf(
				"grant exclusivity violated at %v: server %d reassigned %v -> %v without release",
				r.clock(), server, prev, txn))
		}
		r.counts[prev] -= r.votes.Votes(server)
		if r.counts[prev] <= 0 {
			delete(r.counts, prev)
		}
	}
	r.grants[server] = txn
	if !txn.IsZero() {
		r.counts[txn] += r.votes.Votes(server)
	}
	r.check()
}

func (r *Referee) check() {
	var atMajority []agent.ID
	for txn, c := range r.counts {
		if c >= r.majority {
			atMajority = append(atMajority, txn)
		}
	}
	switch {
	case len(atMajority) > 1:
		r.violations = append(r.violations, fmt.Sprintf(
			"mutual exclusion violated at %v: %d agents hold grant majorities: %v",
			r.clock(), len(atMajority), atMajority))
	case len(atMajority) == 1:
		if r.holder != atMajority[0] {
			r.holder = atMajority[0]
			r.wins++
		}
	default:
		r.holder = agent.ID{}
	}
}

// Holder returns the transaction currently holding a grant majority (zero
// if none).
func (r *Referee) Holder() agent.ID { return r.holder }

// Wins reports how many distinct times some transaction reached a grant
// majority.
func (r *Referee) Wins() int { return r.wins }

// Violations returns the recorded safety violations (empty on a correct run).
func (r *Referee) Violations() []string {
	out := make([]string, len(r.violations))
	copy(out, r.violations)
	return out
}

// Err returns an error summarizing violations, or nil if none occurred.
func (r *Referee) Err() error {
	if len(r.violations) == 0 {
		return nil
	}
	return fmt.Errorf("referee: %d violation(s), first: %s", len(r.violations), r.violations[0])
}
