package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

// captureTravellingAgent runs a contended cluster until some agent has
// visited at least two servers and is not mid-claim, then returns it.
func captureTravellingAgent(t *testing.T, c *testCluster) *UpdateAgent {
	t.Helper()
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	for steps := 0; steps < 100000; steps++ {
		if !c.Sim().Step() {
			break
		}
		for _, ua := range c.active {
			if ua.visits >= 2 && (ua.phase == phaseTravelling || ua.phase == phaseParked) {
				return ua
			}
		}
	}
	t.Fatal("no travelling agent with >= 2 visits found")
	return nil
}

func TestAgentStateGobRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 71})
	ua := captureTravellingAgent(t, c)
	st := ua.Freeze()

	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	back, err := DecodeWireState(data)
	if err != nil {
		t.Fatal(err)
	}
	// gob canonically collapses empty slices to nil, so compare by
	// re-encoding rather than structural equality.
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, data2) {
		t.Fatalf("round trip changed state:\nbefore %+v\nafter  %+v", st, back)
	}
	if len(back.Snapshots) != len(st.Snapshots) || back.Visits != st.Visits || len(back.USL) != len(st.USL) {
		t.Fatalf("content differs: %+v vs %+v", st, back)
	}
}

func TestThawPreservesProtocolState(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 73})
	ua := captureTravellingAgent(t, c)
	st := ua.Freeze()

	// Thaw at a second cluster instance (the receiving process).
	c2 := newTestCluster(t, Config{N: 5}, simEnv{seed: 73})
	ua2 := Thaw(c2.Cluster, st)

	if ua2.visits != ua.visits || ua2.retries != ua.retries || ua2.attempt != ua.attempt {
		t.Fatalf("counters differ: %d/%d/%d vs %d/%d/%d",
			ua2.visits, ua2.retries, ua2.attempt, ua.visits, ua.retries, ua.attempt)
	}
	if !reflect.DeepEqual(ua2.usl, ua.usl) {
		t.Fatalf("USL differs: %v vs %v", ua2.usl, ua.usl)
	}
	// The thawed lock table reaches the same conclusions.
	self := agentID(999)
	d1, d2 := ua.lt.Decide(self), ua2.lt.Decide(self)
	if d1 != d2 {
		t.Fatalf("decisions differ: %+v vs %+v", d1, d2)
	}
	for s := 1; s <= 5; s++ {
		h1, ok1 := ua.lt.Head(simnet.NodeID(s))
		h2, ok2 := ua2.lt.Head(simnet.NodeID(s))
		if h1 != h2 || ok1 != ok2 {
			t.Fatalf("head of %d differs: %v/%v vs %v/%v", s, h1, ok1, h2, ok2)
		}
	}
	if !reflect.DeepEqual(ua2.Freeze(), st) {
		t.Fatal("freeze(thaw(state)) != state")
	}
}

func TestModelledWireSizeTracksRealEncoding(t *testing.T) {
	// The simulator charges WireSize() bytes per migration; the gob
	// encoding the model was calibrated against must stay the same order
	// of magnitude, or the traffic accounting in every figure would be
	// fiction. (The model deliberately stays on the gob-era calibration —
	// recalibrating to the wire codec would change every DES figure's
	// byte counts and break cross-version comparability.)
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 75})
	ua := captureTravellingAgent(t, c)
	st := ua.Freeze()
	gobData, err := st.EncodeGob()
	if err != nil {
		t.Fatal(err)
	}
	modelled := ua.WireSize()
	real := len(gobData)
	ratio := float64(real) / float64(modelled)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("modelled %dB vs real gob %dB (ratio %.2f) — model out of calibration", modelled, real, ratio)
	}
	// The wire codec exists to beat gob; if it ever stops doing so the
	// live path lost its point.
	wireData, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wireData) >= len(gobData) {
		t.Fatalf("wire encoding %dB not smaller than gob %dB", len(wireData), len(gobData))
	}
}

func TestFrozenStateIsDeterministic(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 77})
	ua := captureTravellingAgent(t, c)
	a, err := ua.Freeze().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ua.Freeze().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two freezes of the same agent encode differently")
	}
}

func TestThawedAgentCanFinishTheProtocol(t *testing.T) {
	// End-to-end: freeze a travelling agent, discard it, thaw the state
	// into a fresh cluster (same seed, so the same world), spawn it, and
	// let it commit.
	c := newTestCluster(t, Config{N: 3}, simEnv{seed: 79})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	var ua *UpdateAgent
	for _, cand := range c.active {
		if cand.visits >= 1 && cand.phase == phaseTravelling {
			ua = cand
		}
	}
	if ua == nil {
		t.Fatal("no agent captured")
	}
	st := ua.Freeze()

	// A brand new "process": same configuration, fresh servers.
	c2 := newTestCluster(t, Config{N: 3}, simEnv{seed: 79})
	ua2 := Thaw(c2.Cluster, st)
	c2.outstanding++
	ctx := c2.platform.Spawn(1, ua2)
	if ua2.phase != phaseDone {
		c2.active[ctx.ID()] = ua2
	}
	if err := c2.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c2.Settle(time.Second)
	if v, ok := c2.Read(2, "x"); !ok || v.Data != "v" {
		t.Fatalf("thawed agent's update missing: %+v %v", v, ok)
	}
}
