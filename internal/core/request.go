// Package core implements the paper's primary contribution: the MARP
// (Mobile Agent enabled Replication Protocol) consistent replication
// control protocol, written — as the paper puts it — "from the point of
// view of the navigating mobile agents".
//
// The pieces map onto the paper as follows:
//
//   - LockTable     — the agent's LT, UAL and USL bookkeeping (§3.2)
//   - UpdateAgent   — Algorithm 1, the mobile agent's program (§3.3)
//   - replica.Server— Algorithm 2, the replicated server's program (§3.3)
//   - Cluster       — assembly of N agent-enabled replicated servers over
//     the simulated network, plus client-facing Submit/Read
//   - Referee       — a simulation-only oracle checking Theorem 2 (mutual
//     exclusion of the update permission) on every run
package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/runtime"
)

// Op is the kind of update a request performs.
type Op int

// Supported update operations. OpAppend exists to exercise the paper's
// "uses the most recent copy" step: the winner must read the latest
// committed value from its quorum before producing the new one.
const (
	OpSet Op = iota
	OpAppend
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpAppend:
		return "append"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is a single client update request, as stored in an agent's
// Request List (RL).
type Request struct {
	Key string
	Op  Op
	Arg string
}

// Validate reports whether the request is well-formed.
func (r Request) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("core: request with empty key")
	}
	if r.Op != OpSet && r.Op != OpAppend {
		return fmt.Errorf("core: unknown op %d", int(r.Op))
	}
	return nil
}

// Set returns a request that overwrites key with val.
func Set(key, val string) Request { return Request{Key: key, Op: OpSet, Arg: val} }

// Append returns a request that appends val to the latest committed value
// of key (a read-modify-write).
func Append(key, val string) Request { return Request{Key: key, Op: OpAppend, Arg: val} }

// Outcome records what happened to one dispatched agent (one request
// batch). The benchmark harness derives the paper's metrics from it:
//
//	ALT = LockAt - Dispatched     (Figure 2)
//	ATT = DoneAt - Dispatched     (Figure 3)
//	PRK = distribution of Visits  (Figure 4)
type Outcome struct {
	Agent      agent.ID
	Home       runtime.NodeID
	Requests   int
	Dispatched runtime.Time
	LockAt     runtime.Time // when the winning priority was established
	DoneAt     runtime.Time // when the COMMIT broadcast was sent
	Visits     int          // servers visited before the lock was obtained
	ByTie      bool         // won via the identifier tie-break rule
	Retries    int          // claims aborted before the successful one
	Failed     bool         // the agent died (host crash) before committing
	Shards     []int        // distinct shards of the batch's keys, ascending
}

// LockLatency returns ALT for this outcome.
func (o Outcome) LockLatency() runtime.Time { return o.LockAt - o.Dispatched }

// TotalLatency returns ATT for this outcome.
func (o Outcome) TotalLatency() runtime.Time { return o.DoneAt - o.Dispatched }
