package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/runtime"
)

func TestHealthQuorumReachability(t *testing.T) {
	c := newTestCluster(t, Config{N: 3, Shards: 2})

	h := c.Health()
	if !h.QuorumOK || h.Vantage != 1 || len(h.Shards) != 2 {
		t.Fatalf("healthy cluster: %+v", h)
	}
	for _, sh := range h.Shards {
		if !sh.QuorumOK || sh.Reachable != len(sh.Group) || len(sh.Unreachable) != 0 {
			t.Fatalf("healthy shard: %+v", sh)
		}
	}
	if got := c.Metrics().Value("marp.health.quorum_ok"); got != 1 {
		t.Fatalf("marp.health.quorum_ok = %v, want 1", got)
	}

	// Cut the vantage node off from the other two: no shard group can
	// assemble a write quorum from node 1's side of the split.
	c.PartitionNet([]runtime.NodeID{1}, []runtime.NodeID{2, 3})
	h = c.Health()
	if h.QuorumOK {
		t.Fatalf("minority vantage still claims quorum: %+v", h)
	}
	for _, sh := range h.Shards {
		if sh.QuorumOK || sh.Reachable != 1 || len(sh.Unreachable) != 2 {
			t.Fatalf("partitioned shard: %+v", sh)
		}
	}
	if got := c.Metrics().Value("marp.health.shards_degraded"); got != 2 {
		t.Fatalf("marp.health.shards_degraded = %v, want 2", got)
	}

	c.HealNet()
	if h = c.Health(); !h.QuorumOK {
		t.Fatalf("healed cluster still degraded: %+v", h)
	}

	// A crashed member counts as unreachable; with majority geometry on
	// N=3, losing one node keeps the quorum, losing two does not.
	c.Crash(3)
	if h = c.Health(); !h.QuorumOK {
		t.Fatalf("one crash of three broke quorum: %+v", h)
	}
	c.Crash(2)
	if h = c.Health(); h.QuorumOK {
		t.Fatalf("two crashes of three left quorum: %+v", h)
	}

	// All nodes down: no vantage, trivially degraded.
	c.Crash(1)
	if h = c.Health(); h.Vantage != runtime.None || h.QuorumOK {
		t.Fatalf("all-down health: %+v", h)
	}
}

// TestRegistryMirrorsClusterStats pins the collector wiring: a scrape
// after a real run must agree with the legacy Stats accessors it reads
// through, and the whole documented subsystem surface must be present.
func TestRegistryMirrorsClusterStats(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	for i := 0; i < 4; i++ {
		if err := c.Submit(runtime.NodeID(i%3+1), Set("k"+string(rune('a'+i)), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunUntilDone(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)

	snap := c.Metrics().Gather()
	checks := []struct {
		name string
		want float64
	}{
		{"marp.fabric.messages_sent", float64(c.NetStats().MessagesSent)},
		{"marp.fabric.bytes_sent", float64(c.NetStats().BytesSent)},
		{"marp.agent.migrations_completed", float64(c.Platform().Stats().MigrationsCompleted)},
		{"marp.wal.appends", float64(c.JournalStats().Appends)},
		{"marp.disk.syncs", float64(c.DiskStats().Syncs)},
		{"marp.reliable.retransmissions", float64(c.ReliableStats().Retransmissions)},
		{"marp.replica.commits", 4},
		{"marp.replica.outstanding", 0},
	}
	for _, ck := range checks {
		if got := snap.Value(ck.name); got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, got, ck.want)
		}
	}

	subsystems := map[string]bool{}
	for _, p := range snap {
		parts := strings.SplitN(p.Name, ".", 3)
		if len(parts) == 3 && parts[0] == "marp" {
			subsystems[parts[1]] = true
		}
	}
	for _, want := range []string{"wal", "disk", "reliable", "fabric", "agent", "replica", "shard", "health"} {
		if !subsystems[want] {
			t.Errorf("no metrics exported for subsystem %q (got %v)", want, subsystems)
		}
	}

	// Shard-labelled commits at the representative replica cover every
	// committed update exactly once (single shard here).
	if got := snap.Labeled("marp.shard.commits", "0"); got != 4 {
		t.Errorf("marp.shard.commits{shard=0} = %v, want 4", got)
	}
}
