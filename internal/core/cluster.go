package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/disk"
	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/reliable"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config assembles a MARP deployment over a runtime engine and fabric. It
// carries only protocol knobs: the engine (simulated or live), the network
// (topology, latency, fault model — or real sockets), and the seed all
// belong to whoever builds the engine (internal/desengine,
// internal/runtime/live).
type Config struct {
	// N is the number of replicated servers (IDs 1..N).
	N int
	// Local limits which of the N servers this cluster instance hosts. In
	// a multi-process deployment each process hosts one replica and lists
	// it here; nil hosts all N in-process (the simulated deployment).
	Local []runtime.NodeID
	// Votes assigns per-server vote weights (Gifford's weighted voting).
	// Nil gives every server one vote — the paper's majority scheme. The
	// update permission then requires heading servers holding more than
	// half the total votes, and UPDATE acknowledgements are weighted the
	// same way.
	Votes map[runtime.NodeID]int
	// Shards partitions the key space into this many independent locking
	// domains (default 1 — the paper's single-object system). Keys map to
	// shards by hash (internal/shard); each shard has its own Locking
	// Lists, sequence space, and quorums, and agents visit only the
	// replica group owning their keys.
	Shards int
	// GroupSize is the replica-group size per shard, chosen by rendezvous
	// hashing over the N servers. Zero (or >= N) replicates every shard on
	// every server — full replication.
	GroupSize int
	// Geometry selects the quorum construction for every shard:
	// quorum.GeomMajority (default), GeomGrid, or GeomTree. Grid and tree
	// geometries require Votes to be nil (they are structural, not
	// weighted).
	Geometry quorum.Geometry
	// ShardGeometry overrides Geometry for individual shards.
	ShardGeometry map[int]quorum.Geometry

	// BatchMaxRequests dispatches an agent once this many requests are
	// pending at a server (paper §3.2: "after a pre-defined number of
	// requests have been received or periodically"). Default 1.
	BatchMaxRequests int
	// BatchMaxDelay dispatches a partial batch after this delay. Zero
	// dispatches every Submit call immediately.
	BatchMaxDelay time.Duration

	// MigrationTimeout bounds how long an agent migration may take before
	// the origin declares it failed. Must exceed the worst-case one-way
	// latency. Default 300ms.
	MigrationTimeout time.Duration
	// DeathNoticeDelay is the failure-detection latency for dead agents.
	// Default 100ms.
	DeathNoticeDelay time.Duration
	// ClaimTimeout bounds how long a claim waits for acknowledgements.
	// Default 1s.
	ClaimTimeout time.Duration
	// RetryInterval is a parked agent's re-probe period (the paper's
	// "next round"). Default 250ms.
	RetryInterval time.Duration
	// RetryBackoff is the randomized delay before re-evaluating after an
	// aborted claim. Default 50ms.
	RetryBackoff time.Duration
	// MaxMigrateAttempts is how many failed migrations to one server an
	// agent tolerates before declaring it unavailable. Default 3.
	MaxMigrateAttempts int
	// MigrateAckDelay aggregates migration acknowledgements: a destination
	// buffers acks for up to this long (or MigrateAckMax acks, whichever
	// first) and sends one MigrateAckBatch per origin. Zero — the default,
	// and the only value the DES engine uses — acks every arrival
	// immediately, byte-identical to the pre-pipelining behaviour. Must be
	// well below MigrationTimeout.
	MigrateAckDelay time.Duration
	// MigrateAckMax bounds buffered acks per flush (default 32). Only
	// meaningful with MigrateAckDelay.
	MigrateAckMax int
	// GobAgentState forces migrating agents to serialize their WireState
	// with encoding/gob instead of the wire codec — the A9 codec-ablation
	// baseline.
	GobAgentState bool

	// DisableInfoSharing turns off server-mediated locking-information
	// exchange (ablation A1).
	DisableInfoSharing bool
	// RandomItinerary makes agents visit servers in random order instead
	// of cheapest-first (ablation A2).
	RandomItinerary bool

	// Reliable runs all protocol messages and agent migrations over the
	// ack/retransmit layer in internal/reliable. Required for liveness
	// whenever Faults injects loss; off by default so fault-free runs send
	// no acks and stay byte-identical to the baseline.
	Reliable bool
	// RetransmitBase is the reliable layer's first-retry delay (default
	// reliable.DefaultConfig.Base). Only meaningful with Reliable.
	RetransmitBase time.Duration
	// RetransmitAttempts caps transmissions per message (default
	// reliable.DefaultConfig.Attempts). Only meaningful with Reliable.
	RetransmitAttempts int
	// RegenerateAgents makes the cluster checkpoint each agent's frozen
	// protocol state (WireState) at every server visit and claim start,
	// and regenerate agents lost to host crashes from the latest
	// checkpoint under their original ID — the classic answer to the
	// mobile-agent single-point-of-failure. Without it, lost agents'
	// requests fail as in the seed behaviour.
	RegenerateAgents bool

	// Durability, if non-nil, makes every locally hosted replica durable:
	// its store, locking state, and reliable-delivery endpoint are
	// journaled to a per-node write-ahead log, and Recover restarts a
	// crashed node from its log instead of from nothing. Off by default so
	// baseline runs touch no storage path and stay byte-identical.
	Durability *DurabilityConfig

	// OnGrant, if non-nil, observes every grant change in addition to the
	// built-in referee. Cross-engine tests use it to assemble a global
	// single-claimant oracle spanning several cluster processes.
	OnGrant func(server runtime.NodeID, shrd int, txn agent.ID)

	// Trace, if non-nil, records the full protocol timeline.
	Trace *trace.Log
}

// DurabilityConfig selects stable storage for the cluster's replicas.
type DurabilityConfig struct {
	// Backend returns node id's stable-storage backend: disk.NewFS for a
	// live data dir, disk.NewMem for deterministic simulation. Called once
	// per local node at construction; the cluster keeps the backend for
	// crash/recover cycles.
	Backend func(id runtime.NodeID) disk.Backend
	// Policy is the fsync policy (default wal.PolicyCommit).
	Policy wal.Policy
	// SegmentBytes and CompactEvery tune the journal (see durable.Options).
	SegmentBytes int
	CompactEvery int
	// GroupCommitDelay enables WAL group commit: commit barriers park for
	// up to this long so one fsync covers every barrier that accumulated,
	// while the send gate dams the node's outbound messages until the
	// covering fsync lands (invariant 11 is preserved wholesale). Zero —
	// the default, and the only value the DES engine uses — keeps the
	// synchronous fsync-per-barrier path.
	GroupCommitDelay time.Duration
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("core: config needs N >= 1, got %d", c.N)
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.BatchMaxRequests <= 0 {
		c.BatchMaxRequests = 1
	}
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 300 * time.Millisecond
	}
	if c.DeathNoticeDelay <= 0 {
		c.DeathNoticeDelay = 100 * time.Millisecond
	}
	if c.ClaimTimeout <= 0 {
		c.ClaimTimeout = time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 250 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxMigrateAttempts <= 0 {
		c.MaxMigrateAttempts = 3
	}
	return nil
}

// Cluster is a fully assembled MARP system: mobile-agent-enabled
// replicated servers over a runtime fabric, with client entry points and
// correctness oracles. It is the package's public face; examples, tests and
// the benchmark harness all drive one of these.
//
// A Cluster never sees the concrete engine: under simulation it hosts all N
// replicas in one process on the deterministic event loop; in a live
// deployment each process hosts one replica (Config.Local) and the same
// code runs on wall-clock timers with agents migrating over TCP.
type Cluster struct {
	cfg      Config
	eng      runtime.Engine
	base     runtime.Fabric  // the engine's raw fabric (capability surface)
	fabric   runtime.Fabric  // what the protocol layers send on
	gate     *sendGate       // non-nil iff group commit is enabled
	rel      *reliable.Layer // non-nil iff cfg.Reliable
	platform *agent.Platform
	servers  map[runtime.NodeID]*replica.Server // locally hosted replicas
	nodes    []runtime.NodeID                   // all replicas, local or not
	local    map[runtime.NodeID]bool
	referee  *Referee
	backends map[runtime.NodeID]disk.Backend // durability only
	journals map[runtime.NodeID]*durable.Journal

	votes       quorum.Assignment
	shards      int
	groups      [][]runtime.NodeID  // replica group per shard, ascending
	assigns     []quorum.Assignment // quorum geometry per shard
	batches     map[runtime.NodeID]*batch
	active      map[agent.ID]*UpdateAgent
	checkpoints map[agent.ID]WireState
	outcomes    []Outcome
	done        map[agent.ID]int // agent -> index into outcomes, for dedup
	outstanding int
	regenerated int

	// Ops plane (ops.go): the metric registry every subsystem reports
	// into, plus the typed instruments hot paths observe directly.
	metrics   *metrics.Registry
	mWalFsync *metrics.Histogram
}

type batch struct {
	reqs  []Request
	timer runtime.Timer
}

// OutcomeMsg carries a finished agent's Outcome back to its home node in a
// multi-process deployment. Within one process finish() records outcomes
// directly and this message never hits the fabric.
type OutcomeMsg struct{ Outcome Outcome }

// Kind implements runtime.Kinder.
func (*OutcomeMsg) Kind() string { return "outcome" }

// WireSize is the modelled size of an outcome report.
func (*OutcomeMsg) WireSize() int { return 96 }

func init() { runtime.RegisterWireType(&OutcomeMsg{}) }

// NewCluster wires a cluster per cfg onto the given engine and fabric.
func NewCluster(eng runtime.Engine, fab runtime.Fabric, cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	fabric := fab
	// Group commit defers commit-barrier fsyncs; the send gate sits under
	// every other layer (including the reliable layer's retransmissions) so
	// no message a parked barrier justifies escapes before its fsync.
	var gate *sendGate
	if cfg.Durability != nil && cfg.Durability.GroupCommitDelay > 0 {
		gate = newSendGate(fabric)
		fabric = gate
	}
	var rel *reliable.Layer
	if cfg.Reliable {
		rel = reliable.NewLayer(eng, fabric, reliable.Config{
			Base:     cfg.RetransmitBase,
			Attempts: cfg.RetransmitAttempts,
		})
		fabric = rel
	}
	c := &Cluster{
		cfg:         cfg,
		eng:         eng,
		base:        fab,
		fabric:      fabric,
		gate:        gate,
		rel:         rel,
		servers:     make(map[runtime.NodeID]*replica.Server),
		local:       make(map[runtime.NodeID]bool),
		batches:     make(map[runtime.NodeID]*batch),
		active:      make(map[agent.ID]*UpdateAgent),
		checkpoints: make(map[agent.ID]WireState),
		done:        make(map[agent.ID]int),
		backends:    make(map[runtime.NodeID]disk.Backend),
		journals:    make(map[runtime.NodeID]*durable.Journal),
	}
	c.initMetrics()
	c.platform = agent.NewPlatform(eng, fabric, agent.Config{
		MigrationTimeout: cfg.MigrationTimeout,
		DeathNoticeDelay: cfg.DeathNoticeDelay,
		// Always installed: even without regeneration the cluster must
		// learn about agents lost in transit, or their outcomes would
		// never be recorded and RunUntilDone would wait forever.
		LostHandler: func(id agent.ID, _ agent.Behavior) bool { return c.loseAgent(id) },
		// Wire migration (multi-process fabrics): rebuild arriving agents
		// from their frozen protocol state. Unused over in-memory fabrics.
		ThawWire:      c.thawWire,
		AckFlushDelay: cfg.MigrateAckDelay,
		AckFlushMax:   cfg.MigrateAckMax,
		Trace:         cfg.Trace,
	})
	for i := 1; i <= cfg.N; i++ {
		c.nodes = append(c.nodes, runtime.NodeID(i))
	}
	if len(cfg.Local) == 0 {
		for _, id := range c.nodes {
			c.local[id] = true
		}
	} else {
		for _, id := range cfg.Local {
			if int(id) < 1 || int(id) > cfg.N {
				return nil, fmt.Errorf("core: local server %d outside 1..%d", id, cfg.N)
			}
			c.local[id] = true
		}
	}
	if cfg.Votes == nil {
		c.votes = quorum.Equal(c.nodes)
	} else {
		for id := range cfg.Votes {
			if int(id) < 1 || int(id) > cfg.N {
				return nil, fmt.Errorf("core: vote assignment names unknown server %d", id)
			}
		}
		for _, id := range c.nodes {
			if cfg.Votes[id] <= 0 {
				return nil, fmt.Errorf("core: server %d needs a positive vote count", id)
			}
		}
		c.votes = quorum.Weighted(cfg.Votes)
	}
	c.shards = cfg.Shards
	if err := c.buildShardMap(); err != nil {
		return nil, err
	}
	c.referee = NewShardedReferee(c.assigns, eng.Now)
	observer := c.referee.OnGrant
	if cfg.OnGrant != nil {
		inner, extra := observer, cfg.OnGrant
		observer = func(server runtime.NodeID, shrd int, txn agent.ID) {
			inner(server, shrd, txn)
			extra(server, shrd, txn)
		}
	}
	// A sharded or grouped or non-majority deployment tells the replicas
	// about its shard map; the default single-shard majority system passes
	// none, keeping the replica layer on its legacy paths byte-for-byte.
	explicit := cfg.Shards > 1 || c.grouped() || c.nonMajority()
	for _, id := range c.nodes {
		if !c.local[id] {
			continue
		}
		rcfg := replica.Config{
			Shards:             cfg.Shards,
			DisableInfoSharing: cfg.DisableInfoSharing,
			GrantObserver:      observer,
			Intercept:          c.intercept,
			Trace:              cfg.Trace,
		}
		if explicit {
			rcfg.Groups = c.groups
			rcfg.Quorums = c.assigns
		}
		if cfg.Durability != nil {
			b := cfg.Durability.Backend(id)
			j, st, err := durable.Open(b, c.durableOptions())
			if err != nil {
				return nil, fmt.Errorf("core: opening journal for server %d: %w", id, err)
			}
			if gate != nil {
				// Hold fires synchronously on the execution context; the
				// covering fsync lands on the flush goroutine, so Release is
				// marshalled back through the engine before the dam opens.
				j.OnBarrier(gate.Hold, func() { eng.AfterFunc(0, gate.Release) })
			}
			c.backends[id] = b
			c.journals[id] = j
			c.wireRelJournal(id, j, st)
			rcfg.Journal = j
			rcfg.Restore = st
			if st != nil {
				// The engine's clock restarted at zero; keep new agent IDs
				// clear of everything the recovered state remembers.
				c.platform.AdvanceBirth(st.BirthFloor() + 1)
			}
		}
		c.servers[id] = replica.New(eng, id, c.nodes, fabric, c.platform, store.New(), rcfg)
		if rcfg.Restore != nil {
			// The node has history: pull what it missed while down. Deferred
			// so the sends land after every node has attached to the fabric.
			srv := c.servers[id]
			eng.AfterFunc(0, srv.RequestSync)
		}
	}
	c.registerMetrics()
	return c, nil
}

func (c *Cluster) durableOptions() durable.Options {
	d := c.cfg.Durability
	return durable.Options{
		Policy:           d.Policy,
		SegmentBytes:     d.SegmentBytes,
		CompactEvery:     d.CompactEvery,
		Shards:           c.cfg.Shards,
		GroupCommitDelay: d.GroupCommitDelay,
		OnSync:           func(d time.Duration) { c.mWalFsync.Observe(d.Seconds()) },
	}
}

// buildShardMap derives every shard's replica group (rendezvous hashing
// over the N servers) and quorum assignment (per Geometry/ShardGeometry)
// from the config. With one shard, full replication and majority geometry
// this reduces exactly to the pre-sharding system.
func (c *Cluster) buildShardMap() error {
	c.groups = make([][]runtime.NodeID, c.shards)
	c.assigns = make([]quorum.Assignment, c.shards)
	for sh := 0; sh < c.shards; sh++ {
		group := shard.Group(sh, c.nodes, c.cfg.GroupSize)
		geom := c.cfg.Geometry
		if g, ok := c.cfg.ShardGeometry[sh]; ok {
			geom = g
		}
		var a quorum.Assignment
		var err error
		switch {
		case geom == "" || geom == quorum.GeomMajority:
			if c.cfg.Votes == nil || len(group) == len(c.nodes) {
				a, err = quorum.Build(quorum.GeomMajority, group, c.subVotes(group))
			} else {
				return fmt.Errorf("core: weighted votes require full replication (GroupSize 0), got group size %d", len(group))
			}
		default:
			if c.cfg.Votes != nil {
				return fmt.Errorf("core: geometry %q cannot be combined with weighted votes", geom)
			}
			a, err = quorum.Build(geom, group, nil)
		}
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", sh, err)
		}
		c.groups[sh] = group
		c.assigns[sh] = a
	}
	return nil
}

// subVotes restricts the configured vote map to the group (nil in, nil out).
func (c *Cluster) subVotes(group []runtime.NodeID) map[runtime.NodeID]int {
	if c.cfg.Votes == nil {
		return nil
	}
	sub := make(map[runtime.NodeID]int, len(group))
	for _, id := range group {
		sub[id] = c.cfg.Votes[id]
	}
	return sub
}

// grouped reports whether any shard's replica group is a strict subset of
// the servers.
func (c *Cluster) grouped() bool {
	for _, g := range c.groups {
		if len(g) != len(c.nodes) {
			return true
		}
	}
	return false
}

// nonMajority reports whether any shard uses a structural (grid/tree)
// quorum geometry.
func (c *Cluster) nonMajority() bool {
	for _, a := range c.assigns {
		if _, ok := a.(quorum.Voting); !ok {
			return true
		}
	}
	return false
}

// shardsOf returns the distinct shards of the batch's keys, ascending.
func (c *Cluster) shardsOf(reqs []Request) []int {
	seen := make(map[int]bool, len(reqs))
	var out []int
	for _, r := range reqs {
		sh := shard.Of(r.Key, c.shards)
		if !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	sort.Ints(out)
	return out
}

// groupUnion returns the union of the shards' replica groups, ascending.
func (c *Cluster) groupUnion(shards []int) []runtime.NodeID {
	if len(shards) == 1 {
		out := make([]runtime.NodeID, len(c.groups[shards[0]]))
		copy(out, c.groups[shards[0]])
		return out
	}
	seen := make(map[runtime.NodeID]bool)
	var out []runtime.NodeID
	for _, sh := range shards {
		for _, id := range c.groups[sh] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockTableFor builds an agent's lock table scoped to the given shards.
func (c *Cluster) lockTableFor(shards []int) *LockTable {
	views := make([]ShardView, len(shards))
	for i, sh := range shards {
		views[i] = ShardView{Shard: sh, Group: c.groups[sh], Votes: c.assigns[sh]}
	}
	return NewShardedLockTable(c.cfg.N, views)
}

// wireRelJournal connects node id's journal to the reliable layer (when one
// is active): endpoint mutations are journaled, compaction snapshots carry
// the port state, and recovered state is reinstated.
func (c *Cluster) wireRelJournal(id runtime.NodeID, j *durable.Journal, st *durable.State) {
	if c.rel == nil {
		return
	}
	c.rel.SetJournal(id, j)
	if st != nil {
		c.rel.Restore(id, st.RelNextSeq, st.RelSeen)
	}
	rel := c.rel
	j.AddSource(func(ds *durable.State) {
		ds.RelNextSeq, ds.RelSeen = rel.PortState(id)
	})
}

// Engine returns the runtime engine the cluster is scheduled on.
func (c *Cluster) Engine() runtime.Engine { return c.eng }

// Now returns the engine's current time.
func (c *Cluster) Now() runtime.Time { return c.eng.Now() }

// NetStats returns the fabric's traffic counters (zero counters when the
// fabric keeps none).
func (c *Cluster) NetStats() runtime.NetStats {
	if src, ok := c.fabric.(runtime.StatsSource); ok {
		return src.NetStats()
	}
	return runtime.NetStats{}
}

// Platform returns the agent platform.
func (c *Cluster) Platform() *agent.Platform { return c.platform }

// intercept consumes cluster-level (non-Algorithm 2) messages delivered to
// a local server: outcome reports from agents that finished away from home.
func (c *Cluster) intercept(msg runtime.Message) bool {
	om, ok := msg.Payload.(*OutcomeMsg)
	if !ok {
		return false
	}
	o := om.Outcome
	delete(c.active, o.Agent)
	delete(c.checkpoints, o.Agent)
	if c.local[o.Home] {
		c.recordOutcome(o)
	}
	return true
}

// thawWire implements the agent platform's wire-migration hook: decode the
// frozen protocol state an agent travelled as and rebind it to this
// cluster. The reborn UpdateAgent is tracked as active here so local crash
// handling sees it.
func (c *Cluster) thawWire(id agent.ID, state []byte) (agent.Behavior, error) {
	st, err := DecodeWireState(state)
	if err != nil {
		return nil, err
	}
	ua := Thaw(c, st)
	c.active[id] = ua
	return ua, nil
}

// Server returns the replica at node id.
func (c *Cluster) Server(id runtime.NodeID) *replica.Server { return c.servers[id] }

// Nodes returns the replica IDs 1..N.
func (c *Cluster) Nodes() []runtime.NodeID {
	out := make([]runtime.NodeID, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Shape is the engine-neutral summary of a cluster's configuration — the
// facts a scenario-bundle header must carry for a replay to rebuild an
// equivalent cluster on the other engine.
type Shape struct {
	N        int
	Shards   int
	Geometry quorum.Geometry
	// Fsync is the durability policy name, empty when the cluster runs
	// volatile.
	Fsync string
	// GroupCommitDelay is the WAL group-commit window (zero = synchronous
	// fsync per barrier).
	GroupCommitDelay time.Duration
}

// Describe reports the cluster's shape.
func (c *Cluster) Describe() Shape {
	s := Shape{N: c.cfg.N, Shards: c.cfg.Shards, Geometry: c.cfg.Geometry}
	if s.Geometry == "" {
		s.Geometry = quorum.GeomMajority
	}
	if d := c.cfg.Durability; d != nil {
		s.Fsync = d.Policy.String()
		s.GroupCommitDelay = d.GroupCommitDelay
	}
	return s
}

// Referee returns the Theorem 2 oracle.
func (c *Cluster) Referee() *Referee { return c.referee }

// Outcomes returns the outcomes of all finished agents so far.
func (c *Cluster) Outcomes() []Outcome {
	out := make([]Outcome, len(c.outcomes))
	copy(out, c.outcomes)
	return out
}

// Outstanding reports how many dispatched agents have not finished.
func (c *Cluster) Outstanding() int { return c.outstanding }

// Submit queues update requests at the given home server, dispatching a
// mobile agent per the batch policy.
func (c *Cluster) Submit(home runtime.NodeID, reqs ...Request) error {
	if c.servers[home] == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if len(reqs) == 0 {
		return fmt.Errorf("core: empty submission")
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	c.cfg.Trace.Addf(int64(c.eng.Now()), int(home), "", trace.RequestArrived, "%d request(s)", len(reqs))
	b := c.batches[home]
	if b == nil {
		b = &batch{}
		c.batches[home] = b
	}
	b.reqs = append(b.reqs, reqs...)
	switch {
	case len(b.reqs) >= c.cfg.BatchMaxRequests || c.cfg.BatchMaxDelay == 0:
		c.dispatch(home)
	case !b.timer.Active():
		b.timer = c.eng.AfterFunc(c.cfg.BatchMaxDelay, func() { c.dispatch(home) })
	}
	return nil
}

// dispatch ships the pending batch at home as one mobile agent.
func (c *Cluster) dispatch(home runtime.NodeID) {
	b := c.batches[home]
	if b == nil || len(b.reqs) == 0 {
		return
	}
	b.timer.Cancel()
	reqs := b.reqs
	b.reqs = nil
	if c.fabric.Down(home) {
		// The home server crashed before the batch left: the requests
		// are lost with it, like the paper's fail-stop clients-at-server.
		return
	}
	ua := newUpdateAgent(c, home, reqs)
	c.outstanding++
	ctx := c.platform.Spawn(home, ua)
	if ua.phase != phaseDone {
		c.active[ctx.ID()] = ua
	}
}

// finish records a completed agent. at is where the agent finished: when
// its home replica is hosted by another process, the outcome is reported
// there over the fabric — the home cluster owns the outstanding count.
func (c *Cluster) finish(at runtime.NodeID, o Outcome) {
	delete(c.active, o.Agent)
	delete(c.checkpoints, o.Agent)
	if c.local[o.Home] {
		c.recordOutcome(o)
		return
	}
	msg := &OutcomeMsg{Outcome: o}
	c.fabric.Send(runtime.Message{From: at, To: o.Home, Payload: msg, Size: msg.WireSize()})
}

// recordOutcome books a finished agent against this cluster's counters.
// Recording is idempotent per agent: on a live deployment the home can
// declare a slow migration failed (a Failed outcome) and still hear from
// the agent when it commits anyway — the success then replaces the false
// death in place, and the outstanding count never double-decrements.
func (c *Cluster) recordOutcome(o Outcome) {
	if i, ok := c.done[o.Agent]; ok {
		if c.outcomes[i].Failed && !o.Failed {
			c.outcomes[i] = o
		}
		return
	}
	c.done[o.Agent] = len(c.outcomes)
	c.outcomes = append(c.outcomes, o)
	c.outstanding--
	if o.Failed {
		return
	}
	c.cfg.Trace.Addf(int64(c.eng.Now()), int(o.Home), o.Agent.String(), trace.RequestDone,
		"alt=%v att=%v visits=%d", o.LockLatency().Duration(), o.TotalLatency().Duration(), o.Visits)
}

// checkpoint refreshes the agent's regeneration snapshot. Called at every
// server visit and at claim start, so a lost agent resumes from its latest
// quiescent protocol state.
func (c *Cluster) checkpoint(id agent.ID, a *UpdateAgent) {
	if !c.cfg.RegenerateAgents || a.phase == phaseDone {
		return
	}
	c.checkpoints[id] = a.Freeze()
}

// loseAgent handles the death of an agent incarnation (its host crashed, or
// it was lost in transit when its origin crashed). With regeneration on and
// a checkpoint available the agent is respawned under its original ID;
// otherwise the loss is recorded as a failed outcome so RunUntilDone does
// not wait for it. Reports whether the loss was claimed for regeneration —
// the caller must then suppress death notices, because a tombstone for the
// reused ID would make every server reject the reborn agent.
func (c *Cluster) loseAgent(id agent.ID) bool {
	ua, ok := c.active[id]
	if !ok {
		return false
	}
	if c.cfg.RegenerateAgents {
		if st, ok := c.checkpoints[id]; ok {
			c.scheduleRegeneration(id, st, ua)
			return true
		}
	}
	ua.phase = phaseDone
	c.recordOutcome(Outcome{
		Agent:      id,
		Home:       id.Home,
		Requests:   len(ua.reqs),
		Dispatched: ua.dispatched,
		Visits:     ua.visits,
		Retries:    ua.retries,
		Failed:     true,
	})
	delete(c.active, id)
	delete(c.checkpoints, id)
	return false
}

// scheduleRegeneration respawns a lost agent from its checkpoint after the
// death-notice delay. The delay is the honest failure-detection latency, and
// it also guarantees any stale in-flight message from the dead incarnation
// (an ABORT carrying the same attempt number, a late ACK) lands before the
// reborn agent can touch a grant — preserving Theorem 2's single-claimant
// argument without new machinery.
func (c *Cluster) scheduleRegeneration(id agent.ID, st WireState, old *UpdateAgent) {
	old.phase = phaseDone
	delete(c.active, id)
	c.eng.AfterFunc(c.cfg.DeathNoticeDelay, func() {
		home := c.regenHome(id)
		if home == runtime.None {
			// Nowhere alive to respawn: the requests fail like any other
			// loss. (Schedules validated by internal/failure keep a
			// majority up, so this is a pathological-schedule path.)
			c.recordOutcome(Outcome{
				Agent:      id,
				Home:       id.Home,
				Requests:   len(st.Requests),
				Dispatched: runtime.Time(st.Dispatched),
				Visits:     st.Visits,
				Retries:    st.Retries,
				Failed:     true,
			})
			delete(c.checkpoints, id)
			return
		}
		na := Thaw(c, st)
		c.active[id] = na
		c.regenerated++
		c.platform.Respawn(home, na, id)
	})
}

// regenHome picks where a regenerated agent resumes: its home server if that
// is up, else the lowest-numbered live server (deterministic).
func (c *Cluster) regenHome(id agent.ID) runtime.NodeID {
	if !c.fabric.Down(id.Home) && c.local[id.Home] {
		return id.Home
	}
	for _, n := range c.nodes {
		if !c.fabric.Down(n) && c.local[n] {
			return n
		}
	}
	return runtime.None
}

// Crash fail-stops the server at id: the network drops its traffic, its
// volatile locking state (and, when the reliable layer is active, its
// unacked sends and dedup tables) is lost, and every agent resident there
// dies. Dead agents with checkpoints are regenerated when
// Config.RegenerateAgents is set; the rest trigger death notices after the
// detection delay.
func (c *Cluster) Crash(id runtime.NodeID) {
	cr, ok := c.base.(runtime.Crasher)
	if !ok || c.servers[id] == nil {
		return // the fabric cannot fail-stop nodes, or the replica is remote
	}
	if c.base.Down(id) {
		return
	}
	cr.SetDown(id, true)
	if c.rel != nil {
		c.rel.Crash(id)
	}
	c.servers[id].Crash()
	if j := c.journals[id]; j != nil {
		// Kill the journal handle (no final sync — this is a crash, not a
		// shutdown) and power-cut the disk model: everything past the last
		// fsync is gone, exactly what Recover must cope with.
		j.Kill()
		c.journals[id] = nil
		if dc, ok := c.backends[id].(disk.Crasher); ok {
			dc.Crash()
		}
	}
	var dead []agent.ID
	for _, cas := range c.platform.TakeResidents(id) {
		if !c.loseAgent(cas.ID) {
			dead = append(dead, cas.ID)
		}
	}
	c.platform.AnnounceDeaths(dead)
}

// Recover restarts a crashed server; it rejoins the network and pulls the
// updates it missed from its peers. With durability configured the node
// first replays its journal — what it committed before the crash comes off
// its own disk, and only the suffix it missed comes from the peers.
func (c *Cluster) Recover(id runtime.NodeID) {
	cr, ok := c.base.(runtime.Crasher)
	if !ok || c.servers[id] == nil {
		return
	}
	if !c.base.Down(id) {
		return
	}
	cr.SetDown(id, false)
	if c.cfg.Durability == nil {
		c.servers[id].Recover()
		return
	}
	j, st, err := durable.Open(c.backends[id], c.durableOptions())
	if err != nil {
		// Fail-stop: a replica whose stable storage will not replay must
		// not rejoin — and in simulation any corruption is a bug.
		panic(fmt.Sprintf("core: recovering server %d: %v", id, err))
	}
	c.journals[id] = j
	if c.gate != nil {
		j.OnBarrier(c.gate.Hold, func() { c.eng.AfterFunc(0, c.gate.Release) })
	}
	c.wireRelJournal(id, j, st)
	c.servers[id].Restart(j, st)
}

// PartitionNet splits the network into the given groups; nodes in different
// groups cannot exchange messages (failure.Partition events). A no-op when
// the fabric cannot partition. On a live deployment each process must be
// told separately (its fabric filters its own endpoints); the transport
// layer's partition op exists for exactly that fan-out.
func (c *Cluster) PartitionNet(groups ...[]runtime.NodeID) {
	if p, ok := c.base.(runtime.Partitioner); ok {
		p.Partition(groups...)
	}
}

// HealNet removes all partitions and starts an anti-entropy round at every
// live server. The explicit sync matters: a replica that sat in a minority
// partition through a commit round has no sequence gap of its own to notice
// — it missed whole COMMIT broadcasts — so without this pull it would stay
// behind until the next commit happens to reach it.
func (c *Cluster) HealNet() {
	if p, ok := c.base.(runtime.Partitioner); ok {
		p.Heal()
	}
	for _, id := range c.nodes {
		if s := c.servers[id]; s != nil {
			s.RequestSync()
		}
	}
}

// SetLoss sets the dynamic network-wide message-loss level (failure.Lossy
// events). It is a no-op unless the fabric was built with a fault model.
func (c *Cluster) SetLoss(p float64) {
	if lc, ok := c.base.(runtime.LossController); ok {
		lc.SetExtraLoss(p)
	}
}

// Regenerated reports how many lost agents were respawned from checkpoints.
func (c *Cluster) Regenerated() int { return c.regenerated }

// Journal returns node id's open durability journal (nil when durability is
// off or the node is crashed).
func (c *Cluster) Journal(id runtime.NodeID) *durable.Journal { return c.journals[id] }

// JournalStats sums the WAL counters across all locally hosted journals.
func (c *Cluster) JournalStats() wal.Stats {
	var total wal.Stats
	for _, j := range c.journals {
		if j == nil {
			continue
		}
		s := j.Stats()
		total.Appends += s.Appends
		total.AppendedBytes += s.AppendedBytes
		total.Syncs += s.Syncs
		total.Rotations += s.Rotations
		total.Snapshots += s.Snapshots
		total.Replayed += s.Replayed
		total.TailDropped += s.TailDropped
		total.GroupBatches += s.GroupBatches
		total.GroupBarriers += s.GroupBarriers
	}
	return total
}

// DiskStats sums the backend I/O counters across all locally hosted nodes.
func (c *Cluster) DiskStats() disk.Stats {
	var total disk.Stats
	for _, b := range c.backends {
		if src, ok := b.(disk.StatsSource); ok {
			s := src.Stats()
			total.Writes += s.Writes
			total.BytesWritten += s.BytesWritten
			total.Syncs += s.Syncs
			total.SyncTime += s.SyncTime
		}
	}
	return total
}

// CloseJournals flushes and closes every open journal — the graceful
// shutdown path (live nodes call it on SIGTERM; tests call it before
// re-opening a data dir). Every attachment point is detached before the
// close: a message handled after this call (the live fabric drains after
// the journals close) must fall back to volatile behaviour, not append to
// a closed log.
func (c *Cluster) CloseJournals() error {
	var first error
	for id, j := range c.journals {
		if j == nil {
			continue
		}
		if s := c.servers[id]; s != nil {
			s.DetachJournal()
		}
		if c.rel != nil {
			c.rel.SetJournal(id, nil)
		}
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
		c.journals[id] = nil
	}
	return first
}

// ReliableStats returns the ack/retransmit layer's counters (the zero value
// when the cluster runs on raw channels).
func (c *Cluster) ReliableStats() reliable.Stats {
	if c.rel == nil {
		return reliable.Stats{}
	}
	return c.rel.Stats()
}

// Read serves a read from node's local copy — the paper's fast read path.
func (c *Cluster) Read(node runtime.NodeID, key string) (store.Value, bool) {
	s := c.servers[node]
	if s == nil || s.Down() {
		return store.Value{}, false
	}
	return s.LocalRead(key)
}

// ReadQuorumAsync starts a consistent read coordinated by home (read quorum
// = majority; the one-copy-serializable extension) and invokes done when a
// majority has answered. The callback runs on the simulation loop.
func (c *Cluster) ReadQuorumAsync(home runtime.NodeID, key string, done func(store.Value, bool)) error {
	s := c.servers[home]
	if s == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if s.Down() {
		return fmt.Errorf("core: home server %d is down", home)
	}
	s.QuorumRead(key, done)
	return nil
}

// ReadQuorum issues a consistent read and advances the simulation until it
// resolves (or maxVirtual of virtual time passes — e.g. when a majority of
// replicas is unreachable).
func (c *Cluster) ReadQuorum(home runtime.NodeID, key string, maxVirtual time.Duration) (store.Value, bool, error) {
	var (
		val      store.Value
		found    bool
		resolved bool
	)
	if err := c.ReadQuorumAsync(home, key, func(v store.Value, ok bool) {
		val, found, resolved = v, ok, true
	}); err != nil {
		return store.Value{}, false, err
	}
	switch err := c.eng.Wait(maxVirtual, func() bool { return resolved }); {
	case err == nil:
		return val, found, nil
	case errors.Is(err, runtime.ErrStalled):
		return store.Value{}, false, fmt.Errorf("core: quorum read starved (no events, majority unreachable?)")
	default:
		return store.Value{}, false, fmt.Errorf("core: quorum read timed out after %v", maxVirtual)
	}
}

// RunUntilDone advances the simulation until every dispatched agent has
// finished, failing if that takes more than maxVirtual of simulated time or
// if the event queue drains first (a protocol deadlock).
func (c *Cluster) RunUntilDone(maxVirtual time.Duration) error {
	switch err := c.eng.Wait(maxVirtual, func() bool { return c.outstanding == 0 }); {
	case err == nil:
		return nil
	case errors.Is(err, runtime.ErrStalled):
		return fmt.Errorf("core: event queue drained with %d agents outstanding (deadlock)", c.outstanding)
	default:
		return fmt.Errorf("core: %d agents still outstanding after %v of virtual time", c.outstanding, maxVirtual)
	}
}

// Settle runs the engine d further so in-flight commits and syncs land.
func (c *Cluster) Settle(d time.Duration) { c.eng.Sleep(d) }

// CheckConvergence verifies DESIGN.md invariants 2 and 6 per shard: every
// live member of a shard's replica group holds the identical committed
// update log for that shard (hence identical state).
func (c *Cluster) CheckConvergence() error {
	for sh := 0; sh < c.shards; sh++ {
		var ref []store.Update
		var refNode runtime.NodeID
		for _, id := range c.groups[sh] {
			s := c.servers[id]
			if s == nil || s.Down() {
				continue
			}
			log := s.StoreOf(sh).Log()
			if ref == nil {
				ref, refNode = log, id
				continue
			}
			if len(log) != len(ref) {
				return fmt.Errorf("core: shard %d: server %d has %d updates, server %d has %d", sh, id, len(log), refNode, len(ref))
			}
			for i := range log {
				if log[i] != ref[i] {
					return fmt.Errorf("core: shard %d: server %d log[%d] = %+v, server %d has %+v", sh, id, i, log[i], refNode, ref[i])
				}
			}
		}
	}
	return nil
}
