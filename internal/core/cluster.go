package core

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config assembles a simulated MARP deployment.
type Config struct {
	// N is the number of replicated servers (IDs 1..N).
	N int
	// Seed drives every random choice in the simulation.
	Seed int64
	// Votes assigns per-server vote weights (Gifford's weighted voting).
	// Nil gives every server one vote — the paper's majority scheme. The
	// update permission then requires heading servers holding more than
	// half the total votes, and UPDATE acknowledgements are weighted the
	// same way.
	Votes map[simnet.NodeID]int
	// Topology supplies inter-server travel costs; defaults to a full
	// mesh with uniform costs (the paper's LAN prototype).
	Topology *simnet.Topology
	// Latency is the network delay model; defaults to simnet.LAN().
	Latency simnet.LatencyModel

	// BatchMaxRequests dispatches an agent once this many requests are
	// pending at a server (paper §3.2: "after a pre-defined number of
	// requests have been received or periodically"). Default 1.
	BatchMaxRequests int
	// BatchMaxDelay dispatches a partial batch after this delay. Zero
	// dispatches every Submit call immediately.
	BatchMaxDelay time.Duration

	// MigrationTimeout bounds how long an agent migration may take before
	// the origin declares it failed. Must exceed the worst-case one-way
	// latency. Default 300ms.
	MigrationTimeout time.Duration
	// DeathNoticeDelay is the failure-detection latency for dead agents.
	// Default 100ms.
	DeathNoticeDelay time.Duration
	// ClaimTimeout bounds how long a claim waits for acknowledgements.
	// Default 1s.
	ClaimTimeout time.Duration
	// RetryInterval is a parked agent's re-probe period (the paper's
	// "next round"). Default 250ms.
	RetryInterval time.Duration
	// RetryBackoff is the randomized delay before re-evaluating after an
	// aborted claim. Default 50ms.
	RetryBackoff time.Duration
	// MaxMigrateAttempts is how many failed migrations to one server an
	// agent tolerates before declaring it unavailable. Default 3.
	MaxMigrateAttempts int

	// DisableInfoSharing turns off server-mediated locking-information
	// exchange (ablation A1).
	DisableInfoSharing bool
	// RandomItinerary makes agents visit servers in random order instead
	// of cheapest-first (ablation A2).
	RandomItinerary bool

	// Trace, if non-nil, records the full protocol timeline.
	Trace *trace.Log
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("core: config needs N >= 1, got %d", c.N)
	}
	if c.Topology == nil {
		c.Topology = simnet.FullMesh(c.N)
	}
	if c.Topology.Len() < c.N {
		return fmt.Errorf("core: topology has %d nodes, need %d", c.Topology.Len(), c.N)
	}
	if c.Latency == nil {
		c.Latency = simnet.LAN()
	}
	if c.BatchMaxRequests <= 0 {
		c.BatchMaxRequests = 1
	}
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 300 * time.Millisecond
	}
	if c.DeathNoticeDelay <= 0 {
		c.DeathNoticeDelay = 100 * time.Millisecond
	}
	if c.ClaimTimeout <= 0 {
		c.ClaimTimeout = time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 250 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxMigrateAttempts <= 0 {
		c.MaxMigrateAttempts = 3
	}
	return nil
}

// Cluster is a fully assembled MARP system: N mobile-agent-enabled
// replicated servers over a simulated network, with client entry points and
// correctness oracles. It is the package's public face; examples, tests and
// the benchmark harness all drive one of these.
type Cluster struct {
	cfg      Config
	sim      *des.Simulator
	net      *simnet.Network
	platform *agent.Platform
	servers  map[simnet.NodeID]*replica.Server
	nodes    []simnet.NodeID
	referee  *Referee

	votes       quorum.Assignment
	batches     map[simnet.NodeID]*batch
	active      map[agent.ID]*UpdateAgent
	outcomes    []Outcome
	outstanding int
}

type batch struct {
	reqs  []Request
	timer des.Timer
}

// NewCluster builds and wires a cluster per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	sim := des.New(cfg.Seed)
	net := simnet.New(sim, cfg.Topology, cfg.Latency)
	platform := agent.NewPlatform(net, agent.Config{
		MigrationTimeout: cfg.MigrationTimeout,
		DeathNoticeDelay: cfg.DeathNoticeDelay,
		Trace:            cfg.Trace,
	})
	c := &Cluster{
		cfg:      cfg,
		sim:      sim,
		net:      net,
		platform: platform,
		servers:  make(map[simnet.NodeID]*replica.Server),
		batches:  make(map[simnet.NodeID]*batch),
		active:   make(map[agent.ID]*UpdateAgent),
	}
	for i := 1; i <= cfg.N; i++ {
		c.nodes = append(c.nodes, simnet.NodeID(i))
	}
	if cfg.Votes == nil {
		c.votes = quorum.Equal(c.nodes)
	} else {
		for id := range cfg.Votes {
			if int(id) < 1 || int(id) > cfg.N {
				return nil, fmt.Errorf("core: vote assignment names unknown server %d", id)
			}
		}
		for _, id := range c.nodes {
			if cfg.Votes[id] <= 0 {
				return nil, fmt.Errorf("core: server %d needs a positive vote count", id)
			}
		}
		c.votes = quorum.Weighted(cfg.Votes)
	}
	c.referee = NewWeightedReferee(c.votes, sim.Now)
	for _, id := range c.nodes {
		c.servers[id] = replica.New(id, c.nodes, net, platform, store.New(), replica.Config{
			DisableInfoSharing: cfg.DisableInfoSharing,
			GrantObserver:      c.referee.OnGrant,
			Trace:              cfg.Trace,
		})
	}
	return c, nil
}

// Sim returns the cluster's simulator.
func (c *Cluster) Sim() *des.Simulator { return c.sim }

// Network returns the simulated network.
func (c *Cluster) Network() *simnet.Network { return c.net }

// Platform returns the agent platform.
func (c *Cluster) Platform() *agent.Platform { return c.platform }

// Server returns the replica at node id.
func (c *Cluster) Server(id simnet.NodeID) *replica.Server { return c.servers[id] }

// Nodes returns the replica IDs 1..N.
func (c *Cluster) Nodes() []simnet.NodeID {
	out := make([]simnet.NodeID, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Referee returns the Theorem 2 oracle.
func (c *Cluster) Referee() *Referee { return c.referee }

// Outcomes returns the outcomes of all finished agents so far.
func (c *Cluster) Outcomes() []Outcome {
	out := make([]Outcome, len(c.outcomes))
	copy(out, c.outcomes)
	return out
}

// Outstanding reports how many dispatched agents have not finished.
func (c *Cluster) Outstanding() int { return c.outstanding }

// Submit queues update requests at the given home server, dispatching a
// mobile agent per the batch policy.
func (c *Cluster) Submit(home simnet.NodeID, reqs ...Request) error {
	if c.servers[home] == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if len(reqs) == 0 {
		return fmt.Errorf("core: empty submission")
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	c.cfg.Trace.Addf(int64(c.sim.Now()), int(home), "", trace.RequestArrived, "%d request(s)", len(reqs))
	b := c.batches[home]
	if b == nil {
		b = &batch{}
		c.batches[home] = b
	}
	b.reqs = append(b.reqs, reqs...)
	switch {
	case len(b.reqs) >= c.cfg.BatchMaxRequests || c.cfg.BatchMaxDelay == 0:
		c.dispatch(home)
	case !b.timer.Active():
		b.timer = c.sim.After(c.cfg.BatchMaxDelay, func() { c.dispatch(home) })
	}
	return nil
}

// dispatch ships the pending batch at home as one mobile agent.
func (c *Cluster) dispatch(home simnet.NodeID) {
	b := c.batches[home]
	if b == nil || len(b.reqs) == 0 {
		return
	}
	b.timer.Cancel()
	reqs := b.reqs
	b.reqs = nil
	if c.net.Down(home) {
		// The home server crashed before the batch left: the requests
		// are lost with it, like the paper's fail-stop clients-at-server.
		return
	}
	ua := newUpdateAgent(c, home, reqs)
	c.outstanding++
	ctx := c.platform.Spawn(home, ua)
	if ua.phase != phaseDone {
		c.active[ctx.ID()] = ua
	}
}

// finish records a completed agent.
func (c *Cluster) finish(o Outcome) {
	c.outcomes = append(c.outcomes, o)
	c.outstanding--
	delete(c.active, o.Agent)
	c.cfg.Trace.Addf(int64(c.sim.Now()), int(o.Home), o.Agent.String(), trace.RequestDone,
		"alt=%v att=%v visits=%d", o.LockLatency().Duration(), o.TotalLatency().Duration(), o.Visits)
}

// Crash fail-stops the server at id: the network drops its traffic, its
// volatile locking state is lost, and every agent resident there dies (death
// notices reach the survivors after the detection delay).
func (c *Cluster) Crash(id simnet.NodeID) {
	if c.net.Down(id) {
		return
	}
	c.net.SetDown(id, true)
	c.servers[id].Crash()
	for _, killed := range c.platform.KillResidents(id) {
		if ua, ok := c.active[killed]; ok {
			ua.phase = phaseDone
			c.outcomes = append(c.outcomes, Outcome{
				Agent:      killed,
				Home:       killed.Home,
				Requests:   len(ua.reqs),
				Dispatched: ua.dispatched,
				Visits:     ua.visits,
				Retries:    ua.retries,
				Failed:     true,
			})
			c.outstanding--
			delete(c.active, killed)
		}
	}
}

// Recover restarts a crashed server; it rejoins the network and pulls the
// updates it missed from its peers.
func (c *Cluster) Recover(id simnet.NodeID) {
	if !c.net.Down(id) {
		return
	}
	c.net.SetDown(id, false)
	c.servers[id].Recover()
}

// Read serves a read from node's local copy — the paper's fast read path.
func (c *Cluster) Read(node simnet.NodeID, key string) (store.Value, bool) {
	s := c.servers[node]
	if s == nil || s.Down() {
		return store.Value{}, false
	}
	return s.LocalRead(key)
}

// ReadQuorumAsync starts a consistent read coordinated by home (read quorum
// = majority; the one-copy-serializable extension) and invokes done when a
// majority has answered. The callback runs on the simulation loop.
func (c *Cluster) ReadQuorumAsync(home simnet.NodeID, key string, done func(store.Value, bool)) error {
	s := c.servers[home]
	if s == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if s.Down() {
		return fmt.Errorf("core: home server %d is down", home)
	}
	s.QuorumRead(key, done)
	return nil
}

// ReadQuorum issues a consistent read and advances the simulation until it
// resolves (or maxVirtual of virtual time passes — e.g. when a majority of
// replicas is unreachable).
func (c *Cluster) ReadQuorum(home simnet.NodeID, key string, maxVirtual time.Duration) (store.Value, bool, error) {
	var (
		val      store.Value
		found    bool
		resolved bool
	)
	if err := c.ReadQuorumAsync(home, key, func(v store.Value, ok bool) {
		val, found, resolved = v, ok, true
	}); err != nil {
		return store.Value{}, false, err
	}
	deadline := c.sim.Now().Add(maxVirtual)
	for !resolved {
		if c.sim.Now() > deadline {
			return store.Value{}, false, fmt.Errorf("core: quorum read timed out after %v", maxVirtual)
		}
		if !c.sim.Step() {
			return store.Value{}, false, fmt.Errorf("core: quorum read starved (no events, majority unreachable?)")
		}
	}
	return val, found, nil
}

// RunUntilDone advances the simulation until every dispatched agent has
// finished, failing if that takes more than maxVirtual of simulated time or
// if the event queue drains first (a protocol deadlock).
func (c *Cluster) RunUntilDone(maxVirtual time.Duration) error {
	deadline := c.sim.Now().Add(maxVirtual)
	for c.outstanding > 0 {
		if c.sim.Now() > deadline {
			return fmt.Errorf("core: %d agents still outstanding after %v of virtual time", c.outstanding, maxVirtual)
		}
		if !c.sim.Step() {
			return fmt.Errorf("core: event queue drained with %d agents outstanding (deadlock)", c.outstanding)
		}
	}
	return nil
}

// Settle runs the simulation d further so in-flight commits and syncs land.
func (c *Cluster) Settle(d time.Duration) { c.sim.RunFor(d) }

// CheckConvergence verifies DESIGN.md invariants 2 and 6: every live
// replica holds the identical committed update log (hence identical state).
func (c *Cluster) CheckConvergence() error {
	var ref []store.Update
	var refNode simnet.NodeID
	for _, id := range c.nodes {
		s := c.servers[id]
		if s.Down() {
			continue
		}
		log := s.Store().Log()
		if ref == nil {
			ref, refNode = log, id
			continue
		}
		if len(log) != len(ref) {
			return fmt.Errorf("core: server %d has %d updates, server %d has %d", id, len(log), refNode, len(ref))
		}
		for i := range log {
			if log[i] != ref[i] {
				return fmt.Errorf("core: server %d log[%d] = %+v, server %d has %+v", id, i, log[i], refNode, ref[i])
			}
		}
	}
	return nil
}
