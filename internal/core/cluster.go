package core

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/quorum"
	"repro/internal/reliable"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config assembles a simulated MARP deployment.
type Config struct {
	// N is the number of replicated servers (IDs 1..N).
	N int
	// Seed drives every random choice in the simulation.
	Seed int64
	// Votes assigns per-server vote weights (Gifford's weighted voting).
	// Nil gives every server one vote — the paper's majority scheme. The
	// update permission then requires heading servers holding more than
	// half the total votes, and UPDATE acknowledgements are weighted the
	// same way.
	Votes map[simnet.NodeID]int
	// Topology supplies inter-server travel costs; defaults to a full
	// mesh with uniform costs (the paper's LAN prototype).
	Topology *simnet.Topology
	// Latency is the network delay model; defaults to simnet.LAN().
	Latency simnet.LatencyModel

	// BatchMaxRequests dispatches an agent once this many requests are
	// pending at a server (paper §3.2: "after a pre-defined number of
	// requests have been received or periodically"). Default 1.
	BatchMaxRequests int
	// BatchMaxDelay dispatches a partial batch after this delay. Zero
	// dispatches every Submit call immediately.
	BatchMaxDelay time.Duration

	// MigrationTimeout bounds how long an agent migration may take before
	// the origin declares it failed. Must exceed the worst-case one-way
	// latency. Default 300ms.
	MigrationTimeout time.Duration
	// DeathNoticeDelay is the failure-detection latency for dead agents.
	// Default 100ms.
	DeathNoticeDelay time.Duration
	// ClaimTimeout bounds how long a claim waits for acknowledgements.
	// Default 1s.
	ClaimTimeout time.Duration
	// RetryInterval is a parked agent's re-probe period (the paper's
	// "next round"). Default 250ms.
	RetryInterval time.Duration
	// RetryBackoff is the randomized delay before re-evaluating after an
	// aborted claim. Default 50ms.
	RetryBackoff time.Duration
	// MaxMigrateAttempts is how many failed migrations to one server an
	// agent tolerates before declaring it unavailable. Default 3.
	MaxMigrateAttempts int

	// DisableInfoSharing turns off server-mediated locking-information
	// exchange (ablation A1).
	DisableInfoSharing bool
	// RandomItinerary makes agents visit servers in random order instead
	// of cheapest-first (ablation A2).
	RandomItinerary bool

	// Faults, if non-nil, attaches a message fault model to the network:
	// messages between live, connected nodes may then be lost or
	// duplicated (chaos experiment A6). Nil keeps the paper's §2 reliable
	// channels — and keeps executions byte-identical to the baseline,
	// because the fault model owns its random source.
	Faults *simnet.FaultModel
	// Reliable runs all protocol messages and agent migrations over the
	// ack/retransmit layer in internal/reliable. Required for liveness
	// whenever Faults injects loss; off by default so fault-free runs send
	// no acks and stay byte-identical to the baseline.
	Reliable bool
	// RetransmitBase is the reliable layer's first-retry delay (default
	// reliable.DefaultConfig.Base). Only meaningful with Reliable.
	RetransmitBase time.Duration
	// RetransmitAttempts caps transmissions per message (default
	// reliable.DefaultConfig.Attempts). Only meaningful with Reliable.
	RetransmitAttempts int
	// RegenerateAgents makes the cluster checkpoint each agent's frozen
	// protocol state (WireState) at every server visit and claim start,
	// and regenerate agents lost to host crashes from the latest
	// checkpoint under their original ID — the classic answer to the
	// mobile-agent single-point-of-failure. Without it, lost agents'
	// requests fail as in the seed behaviour.
	RegenerateAgents bool

	// Trace, if non-nil, records the full protocol timeline.
	Trace *trace.Log
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("core: config needs N >= 1, got %d", c.N)
	}
	if c.Topology == nil {
		c.Topology = simnet.FullMesh(c.N)
	}
	if c.Topology.Len() < c.N {
		return fmt.Errorf("core: topology has %d nodes, need %d", c.Topology.Len(), c.N)
	}
	if c.Latency == nil {
		c.Latency = simnet.LAN()
	}
	if c.BatchMaxRequests <= 0 {
		c.BatchMaxRequests = 1
	}
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 300 * time.Millisecond
	}
	if c.DeathNoticeDelay <= 0 {
		c.DeathNoticeDelay = 100 * time.Millisecond
	}
	if c.ClaimTimeout <= 0 {
		c.ClaimTimeout = time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 250 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxMigrateAttempts <= 0 {
		c.MaxMigrateAttempts = 3
	}
	return nil
}

// Cluster is a fully assembled MARP system: N mobile-agent-enabled
// replicated servers over a simulated network, with client entry points and
// correctness oracles. It is the package's public face; examples, tests and
// the benchmark harness all drive one of these.
type Cluster struct {
	cfg      Config
	sim      *des.Simulator
	net      *simnet.Network
	fabric   simnet.Fabric   // what the protocol layers send on
	rel      *reliable.Layer // non-nil iff cfg.Reliable
	platform *agent.Platform
	servers  map[simnet.NodeID]*replica.Server
	nodes    []simnet.NodeID
	referee  *Referee

	votes       quorum.Assignment
	batches     map[simnet.NodeID]*batch
	active      map[agent.ID]*UpdateAgent
	checkpoints map[agent.ID]WireState
	outcomes    []Outcome
	outstanding int
	regenerated int
}

type batch struct {
	reqs  []Request
	timer des.Timer
}

// NewCluster builds and wires a cluster per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	sim := des.New(cfg.Seed)
	net := simnet.New(sim, cfg.Topology, cfg.Latency)
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
	var fabric simnet.Fabric = net
	var rel *reliable.Layer
	if cfg.Reliable {
		rel = reliable.NewLayer(net, reliable.Config{
			Base:     cfg.RetransmitBase,
			Attempts: cfg.RetransmitAttempts,
		})
		fabric = rel
	}
	c := &Cluster{
		cfg:         cfg,
		sim:         sim,
		net:         net,
		fabric:      fabric,
		rel:         rel,
		servers:     make(map[simnet.NodeID]*replica.Server),
		batches:     make(map[simnet.NodeID]*batch),
		active:      make(map[agent.ID]*UpdateAgent),
		checkpoints: make(map[agent.ID]WireState),
	}
	c.platform = agent.NewPlatform(fabric, agent.Config{
		MigrationTimeout: cfg.MigrationTimeout,
		DeathNoticeDelay: cfg.DeathNoticeDelay,
		// Always installed: even without regeneration the cluster must
		// learn about agents lost in transit, or their outcomes would
		// never be recorded and RunUntilDone would wait forever.
		LostHandler: func(id agent.ID, _ agent.Behavior) bool { return c.loseAgent(id) },
		Trace:       cfg.Trace,
	})
	for i := 1; i <= cfg.N; i++ {
		c.nodes = append(c.nodes, simnet.NodeID(i))
	}
	if cfg.Votes == nil {
		c.votes = quorum.Equal(c.nodes)
	} else {
		for id := range cfg.Votes {
			if int(id) < 1 || int(id) > cfg.N {
				return nil, fmt.Errorf("core: vote assignment names unknown server %d", id)
			}
		}
		for _, id := range c.nodes {
			if cfg.Votes[id] <= 0 {
				return nil, fmt.Errorf("core: server %d needs a positive vote count", id)
			}
		}
		c.votes = quorum.Weighted(cfg.Votes)
	}
	c.referee = NewWeightedReferee(c.votes, sim.Now)
	for _, id := range c.nodes {
		c.servers[id] = replica.New(id, c.nodes, fabric, c.platform, store.New(), replica.Config{
			DisableInfoSharing: cfg.DisableInfoSharing,
			GrantObserver:      c.referee.OnGrant,
			Trace:              cfg.Trace,
		})
	}
	return c, nil
}

// Sim returns the cluster's simulator.
func (c *Cluster) Sim() *des.Simulator { return c.sim }

// Network returns the simulated network.
func (c *Cluster) Network() *simnet.Network { return c.net }

// Platform returns the agent platform.
func (c *Cluster) Platform() *agent.Platform { return c.platform }

// Server returns the replica at node id.
func (c *Cluster) Server(id simnet.NodeID) *replica.Server { return c.servers[id] }

// Nodes returns the replica IDs 1..N.
func (c *Cluster) Nodes() []simnet.NodeID {
	out := make([]simnet.NodeID, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Referee returns the Theorem 2 oracle.
func (c *Cluster) Referee() *Referee { return c.referee }

// Outcomes returns the outcomes of all finished agents so far.
func (c *Cluster) Outcomes() []Outcome {
	out := make([]Outcome, len(c.outcomes))
	copy(out, c.outcomes)
	return out
}

// Outstanding reports how many dispatched agents have not finished.
func (c *Cluster) Outstanding() int { return c.outstanding }

// Submit queues update requests at the given home server, dispatching a
// mobile agent per the batch policy.
func (c *Cluster) Submit(home simnet.NodeID, reqs ...Request) error {
	if c.servers[home] == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if len(reqs) == 0 {
		return fmt.Errorf("core: empty submission")
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	c.cfg.Trace.Addf(int64(c.sim.Now()), int(home), "", trace.RequestArrived, "%d request(s)", len(reqs))
	b := c.batches[home]
	if b == nil {
		b = &batch{}
		c.batches[home] = b
	}
	b.reqs = append(b.reqs, reqs...)
	switch {
	case len(b.reqs) >= c.cfg.BatchMaxRequests || c.cfg.BatchMaxDelay == 0:
		c.dispatch(home)
	case !b.timer.Active():
		b.timer = c.sim.After(c.cfg.BatchMaxDelay, func() { c.dispatch(home) })
	}
	return nil
}

// dispatch ships the pending batch at home as one mobile agent.
func (c *Cluster) dispatch(home simnet.NodeID) {
	b := c.batches[home]
	if b == nil || len(b.reqs) == 0 {
		return
	}
	b.timer.Cancel()
	reqs := b.reqs
	b.reqs = nil
	if c.net.Down(home) {
		// The home server crashed before the batch left: the requests
		// are lost with it, like the paper's fail-stop clients-at-server.
		return
	}
	ua := newUpdateAgent(c, home, reqs)
	c.outstanding++
	ctx := c.platform.Spawn(home, ua)
	if ua.phase != phaseDone {
		c.active[ctx.ID()] = ua
	}
}

// finish records a completed agent.
func (c *Cluster) finish(o Outcome) {
	c.outcomes = append(c.outcomes, o)
	c.outstanding--
	delete(c.active, o.Agent)
	delete(c.checkpoints, o.Agent)
	c.cfg.Trace.Addf(int64(c.sim.Now()), int(o.Home), o.Agent.String(), trace.RequestDone,
		"alt=%v att=%v visits=%d", o.LockLatency().Duration(), o.TotalLatency().Duration(), o.Visits)
}

// checkpoint refreshes the agent's regeneration snapshot. Called at every
// server visit and at claim start, so a lost agent resumes from its latest
// quiescent protocol state.
func (c *Cluster) checkpoint(id agent.ID, a *UpdateAgent) {
	if !c.cfg.RegenerateAgents || a.phase == phaseDone {
		return
	}
	c.checkpoints[id] = a.Freeze()
}

// loseAgent handles the death of an agent incarnation (its host crashed, or
// it was lost in transit when its origin crashed). With regeneration on and
// a checkpoint available the agent is respawned under its original ID;
// otherwise the loss is recorded as a failed outcome so RunUntilDone does
// not wait for it. Reports whether the loss was claimed for regeneration —
// the caller must then suppress death notices, because a tombstone for the
// reused ID would make every server reject the reborn agent.
func (c *Cluster) loseAgent(id agent.ID) bool {
	ua, ok := c.active[id]
	if !ok {
		return false
	}
	if c.cfg.RegenerateAgents {
		if st, ok := c.checkpoints[id]; ok {
			c.scheduleRegeneration(id, st, ua)
			return true
		}
	}
	ua.phase = phaseDone
	c.outcomes = append(c.outcomes, Outcome{
		Agent:      id,
		Home:       id.Home,
		Requests:   len(ua.reqs),
		Dispatched: ua.dispatched,
		Visits:     ua.visits,
		Retries:    ua.retries,
		Failed:     true,
	})
	c.outstanding--
	delete(c.active, id)
	delete(c.checkpoints, id)
	return false
}

// scheduleRegeneration respawns a lost agent from its checkpoint after the
// death-notice delay. The delay is the honest failure-detection latency, and
// it also guarantees any stale in-flight message from the dead incarnation
// (an ABORT carrying the same attempt number, a late ACK) lands before the
// reborn agent can touch a grant — preserving Theorem 2's single-claimant
// argument without new machinery.
func (c *Cluster) scheduleRegeneration(id agent.ID, st WireState, old *UpdateAgent) {
	old.phase = phaseDone
	delete(c.active, id)
	c.sim.After(c.cfg.DeathNoticeDelay, func() {
		home := c.regenHome(id)
		if home == simnet.None {
			// Nowhere alive to respawn: the requests fail like any other
			// loss. (Schedules validated by internal/failure keep a
			// majority up, so this is a pathological-schedule path.)
			c.outcomes = append(c.outcomes, Outcome{
				Agent:      id,
				Home:       id.Home,
				Requests:   len(st.Requests),
				Dispatched: des.Time(st.Dispatched),
				Visits:     st.Visits,
				Retries:    st.Retries,
				Failed:     true,
			})
			c.outstanding--
			delete(c.checkpoints, id)
			return
		}
		na := Thaw(c, st)
		c.active[id] = na
		c.regenerated++
		c.platform.Respawn(home, na, id)
	})
}

// regenHome picks where a regenerated agent resumes: its home server if that
// is up, else the lowest-numbered live server (deterministic).
func (c *Cluster) regenHome(id agent.ID) simnet.NodeID {
	if !c.net.Down(id.Home) {
		return id.Home
	}
	for _, n := range c.nodes {
		if !c.net.Down(n) {
			return n
		}
	}
	return simnet.None
}

// Crash fail-stops the server at id: the network drops its traffic, its
// volatile locking state (and, when the reliable layer is active, its
// unacked sends and dedup tables) is lost, and every agent resident there
// dies. Dead agents with checkpoints are regenerated when
// Config.RegenerateAgents is set; the rest trigger death notices after the
// detection delay.
func (c *Cluster) Crash(id simnet.NodeID) {
	if c.net.Down(id) {
		return
	}
	c.net.SetDown(id, true)
	if c.rel != nil {
		c.rel.Crash(id)
	}
	c.servers[id].Crash()
	var dead []agent.ID
	for _, cas := range c.platform.TakeResidents(id) {
		if !c.loseAgent(cas.ID) {
			dead = append(dead, cas.ID)
		}
	}
	c.platform.AnnounceDeaths(dead)
}

// Recover restarts a crashed server; it rejoins the network and pulls the
// updates it missed from its peers.
func (c *Cluster) Recover(id simnet.NodeID) {
	if !c.net.Down(id) {
		return
	}
	c.net.SetDown(id, false)
	c.servers[id].Recover()
}

// PartitionNet splits the network into the given groups; nodes in different
// groups cannot exchange messages (failure.Partition events).
func (c *Cluster) PartitionNet(groups ...[]simnet.NodeID) { c.net.Partition(groups...) }

// HealNet removes all partitions and starts an anti-entropy round at every
// live server. The explicit sync matters: a replica that sat in a minority
// partition through a commit round has no sequence gap of its own to notice
// — it missed whole COMMIT broadcasts — so without this pull it would stay
// behind until the next commit happens to reach it.
func (c *Cluster) HealNet() {
	c.net.Heal()
	for _, id := range c.nodes {
		c.servers[id].RequestSync()
	}
}

// SetLoss sets the dynamic network-wide message-loss level (failure.Lossy
// events). It is a no-op unless the cluster was built with a fault model.
func (c *Cluster) SetLoss(p float64) {
	if f := c.net.Faults(); f != nil {
		f.SetExtraLoss(p)
	}
}

// Regenerated reports how many lost agents were respawned from checkpoints.
func (c *Cluster) Regenerated() int { return c.regenerated }

// ReliableStats returns the ack/retransmit layer's counters (the zero value
// when the cluster runs on raw channels).
func (c *Cluster) ReliableStats() reliable.Stats {
	if c.rel == nil {
		return reliable.Stats{}
	}
	return c.rel.Stats()
}

// Read serves a read from node's local copy — the paper's fast read path.
func (c *Cluster) Read(node simnet.NodeID, key string) (store.Value, bool) {
	s := c.servers[node]
	if s == nil || s.Down() {
		return store.Value{}, false
	}
	return s.LocalRead(key)
}

// ReadQuorumAsync starts a consistent read coordinated by home (read quorum
// = majority; the one-copy-serializable extension) and invokes done when a
// majority has answered. The callback runs on the simulation loop.
func (c *Cluster) ReadQuorumAsync(home simnet.NodeID, key string, done func(store.Value, bool)) error {
	s := c.servers[home]
	if s == nil {
		return fmt.Errorf("core: unknown home server %d", home)
	}
	if s.Down() {
		return fmt.Errorf("core: home server %d is down", home)
	}
	s.QuorumRead(key, done)
	return nil
}

// ReadQuorum issues a consistent read and advances the simulation until it
// resolves (or maxVirtual of virtual time passes — e.g. when a majority of
// replicas is unreachable).
func (c *Cluster) ReadQuorum(home simnet.NodeID, key string, maxVirtual time.Duration) (store.Value, bool, error) {
	var (
		val      store.Value
		found    bool
		resolved bool
	)
	if err := c.ReadQuorumAsync(home, key, func(v store.Value, ok bool) {
		val, found, resolved = v, ok, true
	}); err != nil {
		return store.Value{}, false, err
	}
	deadline := c.sim.Now().Add(maxVirtual)
	for !resolved {
		if c.sim.Now() > deadline {
			return store.Value{}, false, fmt.Errorf("core: quorum read timed out after %v", maxVirtual)
		}
		if !c.sim.Step() {
			return store.Value{}, false, fmt.Errorf("core: quorum read starved (no events, majority unreachable?)")
		}
	}
	return val, found, nil
}

// RunUntilDone advances the simulation until every dispatched agent has
// finished, failing if that takes more than maxVirtual of simulated time or
// if the event queue drains first (a protocol deadlock).
func (c *Cluster) RunUntilDone(maxVirtual time.Duration) error {
	deadline := c.sim.Now().Add(maxVirtual)
	for c.outstanding > 0 {
		if c.sim.Now() > deadline {
			return fmt.Errorf("core: %d agents still outstanding after %v of virtual time", c.outstanding, maxVirtual)
		}
		if !c.sim.Step() {
			return fmt.Errorf("core: event queue drained with %d agents outstanding (deadlock)", c.outstanding)
		}
	}
	return nil
}

// Settle runs the simulation d further so in-flight commits and syncs land.
func (c *Cluster) Settle(d time.Duration) { c.sim.RunFor(d) }

// CheckConvergence verifies DESIGN.md invariants 2 and 6: every live
// replica holds the identical committed update log (hence identical state).
func (c *Cluster) CheckConvergence() error {
	var ref []store.Update
	var refNode simnet.NodeID
	for _, id := range c.nodes {
		s := c.servers[id]
		if s.Down() {
			continue
		}
		log := s.Store().Log()
		if ref == nil {
			ref, refNode = log, id
			continue
		}
		if len(log) != len(ref) {
			return fmt.Errorf("core: server %d has %d updates, server %d has %d", id, len(log), refNode, len(ref))
		}
		for i := range log {
			if log[i] != ref[i] {
				return fmt.Errorf("core: server %d log[%d] = %+v, server %d has %+v", id, i, log[i], refNode, ref[i])
			}
		}
	}
	return nil
}
