package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
)

// testCluster couples a core Cluster with the simulation machinery the
// package's own tests drive directly. The public assembly lives in
// internal/desengine, which this package cannot import without a cycle, so
// the tests carry a miniature of it.
type testCluster struct {
	*Cluster
	sim *des.Simulator
	net *simnet.Network
}

func (c *testCluster) Sim() *des.Simulator      { return c.sim }
func (c *testCluster) Network() *simnet.Network { return c.net }

// simEnv is the simulation-owned half of a test cluster's configuration —
// the knobs that lived on Config before the engine seam.
type simEnv struct {
	seed     int64
	topology *simnet.Topology
	latency  simnet.LatencyModel
	faults   *simnet.FaultModel
}

func newSimCluster(cfg Config, envs ...simEnv) (*testCluster, error) {
	var env simEnv
	if len(envs) > 0 {
		env = envs[0]
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("core: config needs N >= 1, got %d", cfg.N)
	}
	topo := env.topology
	if topo == nil {
		topo = simnet.FullMesh(cfg.N)
	}
	if topo.Len() < cfg.N {
		return nil, fmt.Errorf("core: topology has %d nodes, need %d", topo.Len(), cfg.N)
	}
	if env.latency == nil {
		env.latency = simnet.LAN()
	}
	sim := des.New(env.seed)
	net := simnet.New(sim, topo, env.latency)
	if env.faults != nil {
		net.SetFaults(env.faults)
	}
	c, err := NewCluster(sim, net, cfg)
	if err != nil {
		return nil, err
	}
	return &testCluster{Cluster: c, sim: sim, net: net}, nil
}

func newTestCluster(t *testing.T, cfg Config, envs ...simEnv) *testCluster {
	t.Helper()
	var env simEnv
	if len(envs) > 0 {
		env = envs[0]
	}
	if env.seed == 0 {
		env.seed = 42
	}
	c, err := newSimCluster(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// finishRun drives the cluster to completion and checks the standing
// invariants: no referee violations and fully converged replicas.
func finishRun(t *testing.T, c *testCluster) {
	t.Helper()
	if err := c.RunUntilDone(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleUpdateCommitsEverywhere(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	if err := c.Submit(1, Set("x", "hello")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	for _, id := range c.Nodes() {
		v, ok := c.Read(id, "x")
		if !ok || v.Data != "hello" {
			t.Fatalf("server %d: read = %+v, %v", id, v, ok)
		}
		if v.Version.Seq != 1 {
			t.Fatalf("server %d: seq = %d", id, v.Version.Seq)
		}
	}
	outs := c.Outcomes()
	if len(outs) != 1 || outs[0].Failed {
		t.Fatalf("outcomes = %+v", outs)
	}
	if outs[0].Visits < 1 {
		t.Fatalf("visits = %d", outs[0].Visits)
	}
}

func TestUncontendedWinnerVisitsMajority(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		c := newTestCluster(t, Config{N: n})
		if err := c.Submit(1, Set("k", "v")); err != nil {
			t.Fatal(err)
		}
		finishRun(t, c)
		o := c.Outcomes()[0]
		majority := n/2 + 1
		if o.Visits != majority {
			t.Errorf("N=%d: uncontended winner visited %d servers, want exactly the majority %d", n, o.Visits, majority)
		}
	}
}

func TestConcurrentUpdatesSerialize(t *testing.T) {
	const n = 5
	c := newTestCluster(t, Config{N: n})
	for i := 1; i <= n; i++ {
		id := simnet.NodeID(i)
		if err := c.Submit(id, Set("x", fmt.Sprintf("from-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
	outs := c.Outcomes()
	if len(outs) != n {
		t.Fatalf("outcomes = %d, want %d", len(outs), n)
	}
	for _, o := range outs {
		if o.Failed {
			t.Fatalf("agent %v failed", o.Agent)
		}
	}
	// All replicas saw the same 5 updates in the same order (order
	// preservation), with gapless sequence numbers.
	log := c.Server(1).Store().Log()
	if len(log) != n {
		t.Fatalf("log has %d updates, want %d", len(log), n)
	}
	for i, u := range log {
		if u.Seq != uint64(i+1) {
			t.Fatalf("log[%d].Seq = %d", i, u.Seq)
		}
	}
	if c.Referee().Wins() != n {
		t.Fatalf("referee wins = %d, want %d", c.Referee().Wins(), n)
	}
}

func TestTheorem3VisitBounds(t *testing.T) {
	// Under contention, with no failures, every winner obtains the lock
	// after visiting at least (N+1)/2 and at most N servers.
	for _, n := range []int{3, 5, 7, 9} {
		c := newTestCluster(t, Config{N: n}, simEnv{seed: int64(n)})
		for i := 1; i <= n; i++ {
			if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		finishRun(t, c)
		majority := n/2 + 1
		for _, o := range c.Outcomes() {
			if o.ByTie {
				continue // the bound in Theorem 3 is argued for rank-majority wins
			}
			if o.Visits < majority || o.Visits > n {
				t.Errorf("N=%d: winner %v visited %d servers, want in [%d, %d]",
					n, o.Agent, o.Visits, majority, n)
			}
		}
	}
}

func TestAppendUsesMostRecentCopy(t *testing.T) {
	const n = 5
	c := newTestCluster(t, Config{N: n}, simEnv{seed: 7})
	for i := 1; i <= n; i++ {
		if err := c.Submit(simnet.NodeID(i), Append("log", fmt.Sprintf("[%d]", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
	v, ok := c.Read(1, "log")
	if !ok {
		t.Fatal("key missing")
	}
	// Every fragment must appear exactly once: each writer read the most
	// recent copy, so nothing was lost or duplicated.
	for i := 1; i <= n; i++ {
		frag := fmt.Sprintf("[%d]", i)
		if count := countOccurrences(v.Data, frag); count != 1 {
			t.Fatalf("fragment %q appears %d times in %q", frag, count, v.Data)
		}
	}
	if len(v.Data) != n*3 {
		t.Fatalf("final value %q has wrong length", v.Data)
	}
}

func countOccurrences(s, sub string) int {
	count := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			count++
		}
	}
	return count
}

func TestBatchingCarriesMultipleRequests(t *testing.T) {
	c := newTestCluster(t, Config{N: 3, BatchMaxRequests: 3, BatchMaxDelay: 50 * time.Millisecond})
	if err := c.Submit(1, Set("a", "1"), Set("b", "2"), Set("c", "3")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	outs := c.Outcomes()
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d, want 1 (one agent for the whole batch)", len(outs))
	}
	if outs[0].Requests != 3 {
		t.Fatalf("requests = %d", outs[0].Requests)
	}
	for _, key := range []string{"a", "b", "c"} {
		if v, ok := c.Read(2, key); !ok || len(v.Data) != 1 {
			t.Fatalf("read %s = %+v %v", key, v, ok)
		}
	}
	if got := c.Server(1).Store().LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
}

func TestBatchTimerFlushesPartialBatch(t *testing.T) {
	c := newTestCluster(t, Config{N: 3, BatchMaxRequests: 10, BatchMaxDelay: 30 * time.Millisecond})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() != 0 {
		t.Fatal("partial batch dispatched before timer")
	}
	finishRun(t, c)
	if len(c.Outcomes()) != 1 {
		t.Fatal("batch never flushed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []Outcome {
		c := newTestCluster(t, Config{N: 5}, simEnv{seed: 99})
		for i := 1; i <= 5; i++ {
			if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
		return c.Outcomes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different outcome counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("outcome %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestLocalReadsAreLocal(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	if _, ok := c.Read(2, "nope"); ok {
		t.Fatal("read of missing key succeeded")
	}
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	if v, ok := c.Read(3, "x"); !ok || v.Data != "v" {
		t.Fatalf("read = %+v %v", v, ok)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	if err := c.Submit(9, Set("x", "v")); err == nil {
		t.Fatal("unknown home accepted")
	}
	if err := c.Submit(1); err == nil {
		t.Fatal("empty submission accepted")
	}
	if err := c.Submit(1, Request{Key: "", Op: OpSet}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := c.Submit(1, Request{Key: "x", Op: Op(99)}); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := newSimCluster(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := newSimCluster(Config{N: 5}, simEnv{topology: simnet.FullMesh(3)}); err == nil {
		t.Fatal("undersized topology accepted")
	}
}

func TestHighContentionManyAgentsPerServer(t *testing.T) {
	const n, perServer = 5, 4
	c := newTestCluster(t, Config{N: n}, simEnv{seed: 5})
	for round := 0; round < perServer; round++ {
		for i := 1; i <= n; i++ {
			if err := c.Submit(simnet.NodeID(i), Set("hot", fmt.Sprintf("r%d-s%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	finishRun(t, c)
	if len(c.Outcomes()) != n*perServer {
		t.Fatalf("outcomes = %d", len(c.Outcomes()))
	}
	if got := c.Server(3).Store().LastSeq(); got != n*perServer {
		t.Fatalf("LastSeq = %d, want %d", got, n*perServer)
	}
}

func TestStaggeredSubmissions(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 13})
	for i := 0; i < 20; i++ {
		i := i
		home := simnet.NodeID(i%5 + 1)
		c.Sim().After(time.Duration(i)*7*time.Millisecond, func() {
			_ = c.Submit(home, Set("k", fmt.Sprintf("v%d", i)))
		})
	}
	c.Sim().RunFor(200 * time.Millisecond)
	finishRun(t, c)
	if len(c.Outcomes()) != 20 {
		t.Fatalf("outcomes = %d", len(c.Outcomes()))
	}
}

func TestLargeClusterStress(t *testing.T) {
	// Scale check: 15 replicas, 60 contending agents on one key. The
	// protocol must stay safe and live well beyond the paper's 3-5
	// server prototype.
	if testing.Short() {
		t.Skip("stress test")
	}
	const n, perServer = 15, 4
	c := newTestCluster(t, Config{N: n}, simEnv{seed: 81})
	for r := 0; r < perServer; r++ {
		for i := 1; i <= n; i++ {
			home := simnet.NodeID(i)
			val := fmt.Sprintf("r%d-s%d", r, i)
			delay := time.Duration(r*n+i) * 3 * time.Millisecond
			c.Sim().After(delay, func() { _ = c.Submit(home, Set("hot", val)) })
		}
	}
	c.Sim().RunFor(time.Duration(perServer*n+1) * 3 * time.Millisecond)
	finishRun(t, c)
	if got := int(c.Server(8).Store().LastSeq()); got != n*perServer {
		t.Fatalf("LastSeq = %d, want %d", got, n*perServer)
	}
	majority := n/2 + 1
	for _, o := range c.Outcomes() {
		if !o.ByTie && (o.Visits < majority || o.Visits > n) {
			t.Fatalf("visits %d outside [%d,%d]", o.Visits, majority, n)
		}
	}
}

func TestManyKeysInterleaved(t *testing.T) {
	// Distinct keys still serialize through the single global lock order
	// (the paper's LL covers the replicated data as a whole), and every
	// key ends with its last-committed writer's value on every replica.
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 83})
	const writers = 30
	for i := 0; i < writers; i++ {
		i := i
		home := simnet.NodeID(i%5 + 1)
		key := fmt.Sprintf("key-%d", i%6)
		c.Sim().After(time.Duration(i)*4*time.Millisecond, func() {
			_ = c.Submit(home, Set(key, fmt.Sprintf("w%d", i)))
		})
	}
	c.Sim().RunFor(150 * time.Millisecond)
	finishRun(t, c)
	log := c.Server(1).Store().Log()
	if len(log) != writers {
		t.Fatalf("log = %d", len(log))
	}
	// Per-key final value identical across replicas (already implied by
	// CheckConvergence, asserted explicitly per key here).
	for k := 0; k < 6; k++ {
		key := fmt.Sprintf("key-%d", k)
		ref, ok := c.Read(1, key)
		if !ok {
			t.Fatalf("key %s missing", key)
		}
		for _, id := range c.Nodes() {
			if v, _ := c.Read(id, key); v != ref {
				t.Fatalf("replica %d disagrees on %s", id, key)
			}
		}
	}
}

func TestSingleServerDegenerateCluster(t *testing.T) {
	// N=1: the agent is born at the only replica, is instantly a majority
	// of one, and commits without any network traffic.
	c := newTestCluster(t, Config{N: 1})
	if err := c.Submit(1, Set("x", "solo")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	if v, ok := c.Read(1, "x"); !ok || v.Data != "solo" {
		t.Fatalf("read = %+v %v", v, ok)
	}
	o := c.Outcomes()[0]
	if o.Visits != 1 || o.LockLatency() != 0 {
		t.Fatalf("outcome = %+v", o)
	}
	if c.Network().Stats().MessagesSent != 0 {
		t.Fatalf("N=1 sent %d messages", c.Network().Stats().MessagesSent)
	}
}
