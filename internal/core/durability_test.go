package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/runtime"
	"repro/internal/simnet"
	"repro/internal/wal"
)

// memDurability builds a DurabilityConfig over per-node Mem disks and
// returns the disks so tests can inspect them.
func memDurability(policy wal.Policy) (*DurabilityConfig, map[runtime.NodeID]*disk.Mem) {
	disks := make(map[runtime.NodeID]*disk.Mem)
	return &DurabilityConfig{
		Policy: policy,
		Backend: func(id runtime.NodeID) disk.Backend {
			if disks[id] == nil {
				disks[id] = disk.NewMem()
			}
			return disks[id]
		},
	}, disks
}

func TestDurableRecoverRestoresCommitsFromDisk(t *testing.T) {
	dur, _ := memDurability(wal.PolicyCommit)
	c := newTestCluster(t, Config{N: 3, Durability: dur})
	for i := 0; i < 3; i++ {
		if err := c.Submit(1, Set(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle(time.Second)
	if got := c.Server(3).Store().LastSeq(); got != 3 {
		t.Fatalf("pre-crash LastSeq = %d", got)
	}
	c.Crash(3)
	// Two more commits happen while 3 is down.
	for i := 3; i < 5; i++ {
		if err := c.Submit(1, Set(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	c.Recover(3)
	// Replay is synchronous: before a single network event runs, the
	// node's own commits are back. Anti-entropy has not delivered yet.
	if got := c.Server(3).Store().LastSeq(); got != 3 {
		t.Fatalf("right after Recover LastSeq = %d, want 3 (from WAL)", got)
	}
	// The anti-entropy round supplies the two it missed.
	c.Settle(2 * time.Second)
	if got := c.Server(3).Store().LastSeq(); got != 5 {
		t.Fatalf("after catch-up LastSeq = %d, want 5", got)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if st := c.JournalStats(); st.Appends == 0 || st.Syncs == 0 {
		t.Fatalf("journal stats = %+v", st)
	}
	if st := c.DiskStats(); st.BytesWritten == 0 {
		t.Fatalf("disk stats = %+v", st)
	}
}

func TestDurablePolicyNoneStillConvergesViaPeers(t *testing.T) {
	// PolicyNone journals to the page cache only: a power cut loses the
	// tail, and recovery leans on anti-entropy — convergence must hold
	// anyway, just with more missed updates to pull.
	dur, disks := memDurability(wal.PolicyNone)
	c := newTestCluster(t, Config{N: 3, Durability: dur})
	for i := 0; i < 4; i++ {
		if err := c.Submit(1, Set(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle(time.Second)
	c.Crash(3)
	if got := disks[3].Stats().Syncs; got != 0 {
		t.Fatalf("PolicyNone performed %d fsyncs", got)
	}
	c.Recover(3)
	c.Settle(2 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(3).Store().LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d, want 4", got)
	}
}

func TestDurableRestartChurnUnderLossyNetwork(t *testing.T) {
	// Crash/restart churn with a lossy fabric and the reliable layer: the
	// persisted dedup table means retransmits straddling a restart are
	// suppressed, and the persisted store means restarts never lose acked
	// commits. The standing oracles must stay green throughout.
	dur, _ := memDurability(wal.PolicyCommit)
	c := newTestCluster(t,
		Config{N: 5, Durability: dur, Reliable: true, RegenerateAgents: true},
		simEnv{seed: 11, faults: simnet.NewFaultModel(11, 0.03, 0.01)},
	)
	seq := 0
	// Agents are born at live homes only: one homed on a down node could
	// not start until its recovery.
	submit := func(n int, homes ...runtime.NodeID) {
		for i := 0; i < n; i++ {
			seq++
			home := homes[seq%len(homes)]
			if err := c.Submit(home, Set(fmt.Sprintf("k%d", seq%4), fmt.Sprintf("v%d", seq))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.RunUntilDone(5 * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	submit(4, 1, 2, 3, 4, 5)
	c.Crash(2)
	submit(4, 1, 3, 4, 5)
	c.Recover(2)
	submit(4, 1, 2, 3, 4, 5)
	c.Crash(4)
	c.Crash(5) // two down: still a majority of 5
	submit(3, 1, 2, 3)
	c.Recover(4)
	c.Recover(5)
	submit(3, 1, 2, 3, 4, 5)
	c.Settle(3 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityOffRunsIdentical(t *testing.T) {
	// Durability must be invisible when enabled: it draws no randomness and
	// schedules no events, so the same seed produces the identical commit
	// history with and without it. (The byte-identical marpbench check in
	// CI is the end-to-end version of this.)
	run := func(dur *DurabilityConfig) ([]string, int) {
		c := newTestCluster(t, Config{N: 5, Durability: dur}, simEnv{seed: 23})
		for i := 0; i < 6; i++ {
			if err := c.Submit(runtime.NodeID(i%5+1), Set(fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
			if err := c.RunUntilDone(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		c.Settle(time.Second)
		var log []string
		for _, u := range c.Server(1).Store().Log() {
			log = append(log, fmt.Sprintf("%s=%s@%d by %s", u.Key, u.Data, u.Seq, u.TxnID))
		}
		return log, c.NetStats().MessagesSent
	}
	dur, _ := memDurability(wal.PolicyAlways)
	logOff, msgsOff := run(nil)
	logOn, msgsOn := run(dur)
	if len(logOff) != len(logOn) {
		t.Fatalf("log lengths differ: %d vs %d", len(logOff), len(logOn))
	}
	for i := range logOff {
		if logOff[i] != logOn[i] {
			t.Fatalf("log[%d]: %q vs %q", i, logOff[i], logOn[i])
		}
	}
	if msgsOff != msgsOn {
		t.Fatalf("message counts differ: %d vs %d", msgsOff, msgsOn)
	}
}

func TestCloseJournalsDetachesEveryAttachmentPoint(t *testing.T) {
	// A message handled after CloseJournals (in live mode the fabric drains
	// its last callbacks around shutdown) must fall back to volatile
	// behaviour, not append to a closed WAL and panic. The reliable layer is
	// on so its Seen/NextSeq journal hooks — attachment points beyond the
	// store's — are exercised too, as are the server's lock-state hooks.
	dur, _ := memDurability(wal.PolicyCommit)
	c := newTestCluster(t, Config{N: 3, Durability: dur, Reliable: true})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if err := c.CloseJournals(); err != nil {
		t.Fatal(err)
	}
	// The cluster keeps working with the journals gone: commits, reliable
	// frames, and locking traffic all still flow.
	if err := c.Submit(2, Set("y", "w")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableGracefulCloseReopensClean(t *testing.T) {
	dur, disks := memDurability(wal.PolicyCommit)
	c := newTestCluster(t, Config{N: 3, Durability: dur})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if err := c.CloseJournals(); err != nil {
		t.Fatal(err)
	}
	// A second cluster generation over the same disks (a full fleet
	// restart) starts from the committed state.
	c2 := newTestCluster(t, Config{N: 3, Durability: &DurabilityConfig{
		Policy:  wal.PolicyCommit,
		Backend: func(id runtime.NodeID) disk.Backend { return disks[id] },
	}})
	for _, id := range c2.Nodes() {
		if got := c2.Server(id).Store().LastSeq(); got != 1 {
			t.Fatalf("server %d restarted with LastSeq %d, want 1", id, got)
		}
	}
	if v, ok := c2.Read(2, "x"); !ok || v.Data != "v" {
		t.Fatalf("read after fleet restart: %+v %v", v, ok)
	}
	// And it keeps working.
	if err := c2.Submit(1, Set("y", "w")); err != nil {
		t.Fatal(err)
	}
	if err := c2.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c2.Settle(time.Second)
	if err := c2.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}
