package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

// crashCurrentHost steps the simulation until the (single) in-flight agent
// is resident somewhere, then crashes that host. It returns the host.
func crashCurrentHost(t *testing.T, c *testCluster) simnet.NodeID {
	t.Helper()
	var host simnet.NodeID
	for i := 0; i < 10000 && host == simnet.None; i++ {
		if !c.Sim().Step() {
			break
		}
		for _, id := range c.Nodes() {
			if len(c.Platform().Place(id).Residents()) > 0 {
				host = id
				break
			}
		}
	}
	if host == simnet.None {
		t.Fatal("agent not found anywhere")
	}
	c.Crash(host)
	return host
}

func TestRegeneratedAgentCommitsAfterHostCrash(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, RegenerateAgents: true}, simEnv{seed: 3})
	if err := c.Submit(1, Set("x", "survives")); err != nil {
		t.Fatal(err)
	}
	crashCurrentHost(t, c)
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if c.Regenerated() < 1 {
		t.Fatal("no agent was regenerated")
	}
	outs := c.Outcomes()
	if len(outs) != 1 || outs[0].Failed {
		t.Fatalf("outcomes = %+v, want one committed", outs)
	}
	// Theorem 2's tie-breaking is identifier-based: the reborn agent must
	// have kept the original identity.
	if got := c.Platform().Stats().AgentsRegenerated; got < 1 {
		t.Fatalf("platform regenerated %d agents", got)
	}
	for _, id := range c.Nodes() {
		if c.Server(id).Down() {
			continue
		}
		if v, ok := c.Read(id, "x"); !ok || v.Data != "survives" {
			t.Fatalf("server %d: %+v %v", id, v, ok)
		}
	}
}

func TestAgentLostInTransitIsRegenerated(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, RegenerateAgents: true}, simEnv{seed: 1})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	// After Submit the agent has already left home (node 1) for the
	// cheapest unvisited server, node 2 on a uniform mesh. Crash both ends
	// before the envelope lands: the envelope is dropped at 2 and the
	// migration timeout at 1 finds the origin down — the agent is lost in
	// transit, the exact weakness regeneration addresses.
	c.Crash(2)
	c.Crash(1)
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	if c.Regenerated() != 1 {
		t.Fatalf("Regenerated = %d, want 1", c.Regenerated())
	}
	outs := c.Outcomes()
	if len(outs) != 1 || outs[0].Failed {
		t.Fatalf("outcomes = %+v, want one committed", outs)
	}
	if outs[0].Agent.Home != 1 {
		t.Fatalf("outcome carries agent %v, want the original node-1 identity", outs[0].Agent)
	}
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestRegenerationOffStillRecordsLostInTransit(t *testing.T) {
	// Without regeneration the same in-transit loss must surface as a
	// failed outcome instead of wedging RunUntilDone (the lost-agent hook
	// is installed unconditionally).
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 1})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	c.Crash(1)
	c.Settle(5 * time.Second)
	if c.Outstanding() != 0 {
		t.Fatal("lost agent still outstanding")
	}
	outs := c.Outcomes()
	if len(outs) != 1 || !outs[0].Failed {
		t.Fatalf("outcomes = %+v, want one failed", outs)
	}
}

func TestReliableFabricCommitsUnderLoss(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, Reliable: true}, simEnv{seed: 9, faults: simnet.NewFaultModel(99, 0.3, 0.05)})
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunUntilDone(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(5 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Outcomes() {
		if o.Failed {
			t.Fatalf("outcome failed under loss: %+v", o)
		}
	}
	rs := c.ReliableStats()
	if rs.Retransmissions == 0 {
		t.Fatalf("no retransmissions under 30%% loss: %+v", rs)
	}
	if rs.DuplicatesSuppressed == 0 {
		t.Fatalf("no duplicates suppressed with dup=0.05: %+v", rs)
	}
	ns := c.Network().Stats()
	if ns.MessagesLost == 0 {
		t.Fatal("fault model ate no messages")
	}
}

func TestPartitionHealConvergesViaSync(t *testing.T) {
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 2})
	// Commit once so there is history, then cut {4,5} off and commit again:
	// the minority misses the COMMIT broadcast entirely.
	if err := c.Submit(1, Set("a", "1")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	c.PartitionNet([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})
	if err := c.Submit(1, Set("b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(time.Second)
	if got := c.Server(4).Store().LastSeq(); got != 1 {
		t.Fatalf("partitioned server LastSeq = %d, want 1 (missed the commit)", got)
	}
	// Healing alone would leave 4 and 5 behind (no gap to notice); HealNet
	// also starts an anti-entropy round.
	c.HealNet()
	c.Settle(2 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Read(4, "b"); !ok || v.Data != "2" {
		t.Fatalf("healed minority read = %+v %v", v, ok)
	}
}
