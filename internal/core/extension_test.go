package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/simnet"
)

// Tests for the extensions beyond the paper's base protocol: consistent
// quorum reads, the k-winner lookahead ranking, and behaviour under network
// partitions (the environment the paper's §2 describes but never tests).

func TestQuorumReadSeesLatestCommit(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	if err := c.Submit(1, Set("x", "v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Do NOT settle: some replicas may not have received the commit yet,
	// so a local read can be stale — but a quorum read cannot miss it.
	v, found, err := c.ReadQuorum(3, "x", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v.Data != "v1" || v.Version.Seq != 1 {
		t.Fatalf("quorum read = %+v %v", v, found)
	}
}

func TestQuorumReadMissingKey(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	_, found, err := c.ReadQuorum(1, "nope", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("missing key found")
	}
}

func TestQuorumReadSurvivesMinorityCrash(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	if err := c.Submit(1, Set("x", "v")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	c.Crash(4)
	c.Crash(5)
	v, found, err := c.ReadQuorum(1, "x", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v.Data != "v" {
		t.Fatalf("quorum read with 2 down = %+v %v", v, found)
	}
}

func TestQuorumReadFailsWithoutMajority(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	c.Crash(3)
	c.Crash(4)
	c.Crash(5)
	if _, _, err := c.ReadQuorum(1, "x", 5*time.Second); err == nil {
		t.Fatal("quorum read succeeded with majority down")
	}
}

func TestQuorumReadFromDownHomeFails(t *testing.T) {
	c := newTestCluster(t, Config{N: 3})
	c.Crash(2)
	if _, _, err := c.ReadQuorum(2, "x", time.Second); err == nil {
		t.Fatal("quorum read from crashed home succeeded")
	}
	if _, _, err := c.ReadQuorum(99, "x", time.Second); err == nil {
		t.Fatal("quorum read from unknown home succeeded")
	}
}

func TestQuorumReadStrongerThanLocalRead(t *testing.T) {
	// Demonstrate the staleness gap the paper accepts: right after a
	// commit completes, a replica outside the acknowledging majority may
	// still serve the old value locally, while a quorum read returns the
	// new one.
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 31})
	if err := c.Submit(1, Set("x", "old")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	if err := c.Submit(1, Set("x", "new")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, id := range c.Nodes() {
		if v, _ := c.Read(id, "x"); v.Data == "old" {
			stale++
		}
	}
	v, _, err := c.ReadQuorum(5, "x", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data != "new" {
		t.Fatalf("quorum read returned stale %q (local stale count was %d)", v.Data, stale)
	}
}

func TestRankingLookahead(t *testing.T) {
	lt := NewLockTable(5)
	a, b, c := agentID(1), agentID(2), agentID(3)
	// Heads: a,a,a,b,b with b second everywhere and c third: a wins now;
	// after a completes, b heads everything; then c.
	lt.MergeSnapshot(snap(1, 1, a, b, c))
	lt.MergeSnapshot(snap(2, 1, a, b, c))
	lt.MergeSnapshot(snap(3, 1, a, b, c))
	lt.MergeSnapshot(snap(4, 1, b, c, a))
	lt.MergeSnapshot(snap(5, 1, b, a, c))
	got := lt.Ranking(a, 3)
	want := []agent.ID{a, b, c}
	if len(got) != 3 {
		t.Fatalf("ranking = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
	// Ranking must not disturb the table.
	if lt.IsGone(a) || lt.IsGone(b) {
		t.Fatal("Ranking left gone marks behind")
	}
	if d := lt.Decide(a); !d.Found || d.Winner != a {
		t.Fatalf("Decide after Ranking = %+v", d)
	}
}

func TestRankingStopsWhenInconclusive(t *testing.T) {
	lt := NewLockTable(5)
	a := agentID(1)
	lt.MergeSnapshot(snap(1, 1, a))
	lt.MergeSnapshot(snap(2, 1, a))
	lt.MergeSnapshot(snap(3, 1, a))
	// a wins, but after a there is nobody left and two servers are unknown.
	got := lt.Ranking(a, 5)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("ranking = %v", got)
	}
}

func TestPartitionMinorityCannotCommit(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, MigrationTimeout: 20 * time.Millisecond, RetryInterval: 60 * time.Millisecond, ClaimTimeout: 50 * time.Millisecond}, simEnv{seed: 33})
	c.Network().Partition([]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5})

	// Minority-side update: must NOT commit while partitioned.
	if err := c.Submit(1, Set("x", "minority")); err != nil {
		t.Fatal(err)
	}
	// Majority-side update: commits despite the partition.
	if err := c.Submit(4, Set("y", "majority")); err != nil {
		t.Fatal(err)
	}
	c.Settle(3 * time.Second)
	if v, ok := c.Read(3, "y"); !ok || v.Data != "majority" {
		t.Fatalf("majority side did not commit: %+v %v", v, ok)
	}
	for _, id := range c.Nodes() {
		if v, ok := c.Read(id, "x"); ok && v.Data == "minority" {
			t.Fatalf("minority-side update committed at %d during partition", id)
		}
	}
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}

	// Heal: the stranded agent eventually completes and everyone converges.
	c.Network().Heal()
	if err := c.RunUntilDone(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(3 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Read(5, "x"); !ok || v.Data != "minority" {
		t.Fatalf("minority update lost after heal: %+v %v", v, ok)
	}
}

func TestPartitionBothSidesNoSplitBrain(t *testing.T) {
	// Symmetric 2/3 split with writers on both sides and a shared key:
	// only the majority side may commit while partitioned.
	c := newTestCluster(t, Config{N: 5, MigrationTimeout: 20 * time.Millisecond, RetryInterval: 60 * time.Millisecond, ClaimTimeout: 50 * time.Millisecond}, simEnv{seed: 35})
	c.Network().Partition([]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5})
	for i := 0; i < 4; i++ {
		home := simnet.NodeID(i%2 + 1) // minority side
		_ = c.Submit(home, Set("k", fmt.Sprintf("min-%d", i)))
		home = simnet.NodeID(i%3 + 3) // majority side
		_ = c.Submit(home, Set("k", fmt.Sprintf("maj-%d", i)))
	}
	c.Settle(5 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	// The two sides must not have diverging committed logs: the minority
	// side has committed nothing.
	if got := c.Server(1).Store().LastSeq(); got != 0 {
		t.Fatalf("minority server committed %d updates during partition", got)
	}
	if got := c.Server(3).Store().LastSeq(); got != 4 {
		t.Fatalf("majority side committed %d of its 4 updates", got)
	}
	c.Network().Heal()
	if err := c.RunUntilDone(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(5 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(1).Store().LastSeq(); got != 8 {
		t.Fatalf("after heal LastSeq = %d, want 8", got)
	}
}
