package core

import (
	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/wire"
)

// Wire-codec tag for the cluster's own fabric message (DESIGN.md §11).
// Tags are part of the wire format: never renumber.
const tagOutcomeMsg = 30

// wireStateMagic leads a wire-codec-encoded WireState. Gob streams can
// never start with this byte (a gob stream opens with a type definition
// whose leading varint byte is small), so DecodeWireState can sniff the
// format and fall back to gob — old state in flight or on disk stays
// readable.
const wireStateMagic = 0xA7

func init() {
	wire.Register(tagOutcomeMsg, &OutcomeMsg{},
		func(b []byte, v any) []byte {
			o := &v.(*OutcomeMsg).Outcome
			b = agent.AppendID(b, o.Agent)
			b = wire.AppendVarint(b, int64(o.Home))
			b = wire.AppendVarint(b, int64(o.Requests))
			b = wire.AppendVarint(b, int64(o.Dispatched))
			b = wire.AppendVarint(b, int64(o.LockAt))
			b = wire.AppendVarint(b, int64(o.DoneAt))
			b = wire.AppendVarint(b, int64(o.Visits))
			b = wire.AppendBool(b, o.ByTie)
			b = wire.AppendVarint(b, int64(o.Retries))
			b = wire.AppendBool(b, o.Failed)
			b = wire.AppendUvarint(b, uint64(len(o.Shards)))
			for _, s := range o.Shards {
				b = wire.AppendVarint(b, int64(s))
			}
			return b
		},
		func(r *wire.Reader) any {
			m := &OutcomeMsg{Outcome: Outcome{
				Agent:      agent.DecodeID(r),
				Home:       runtime.NodeID(r.Varint()),
				Requests:   int(r.Varint()),
				Dispatched: runtime.Time(r.Varint()),
				LockAt:     runtime.Time(r.Varint()),
				DoneAt:     runtime.Time(r.Varint()),
				Visits:     int(r.Varint()),
				ByTie:      r.Bool(),
				Retries:    int(r.Varint()),
				Failed:     r.Bool(),
			}}
			n := r.Count(1)
			m.Outcome.Shards = make([]int, 0, n)
			for i := 0; i < n; i++ {
				m.Outcome.Shards = append(m.Outcome.Shards, int(r.Varint()))
			}
			return m
		})
}

// AppendWireState appends st in wire-codec form (after the magic byte the
// caller writes). It is the allocation-free counterpart of gob encoding on
// the migration hot path.
func AppendWireState(b []byte, st *WireState) []byte {
	b = wire.AppendUvarint(b, uint64(len(st.Requests)))
	for i := range st.Requests {
		b = wire.AppendString(b, st.Requests[i].Key)
		b = wire.AppendVarint(b, int64(st.Requests[i].Op))
		b = wire.AppendString(b, st.Requests[i].Arg)
	}
	b = wire.AppendUvarint(b, uint64(len(st.USL)))
	for _, id := range st.USL {
		b = wire.AppendVarint(b, int64(id))
	}
	b = wire.AppendUvarint(b, uint64(len(st.Unavailable)))
	for _, id := range st.Unavailable {
		b = wire.AppendVarint(b, int64(id))
	}
	b = wire.AppendVarint(b, int64(st.Visits))
	b = wire.AppendVarint(b, int64(st.Retries))
	b = wire.AppendVarint(b, int64(st.Attempt))
	b = wire.AppendVarint(b, st.Dispatched)
	b = wire.AppendUvarint(b, uint64(len(st.Snapshots)))
	for i := range st.Snapshots {
		b = replica.AppendQueueSnapshot(b, &st.Snapshots[i])
	}
	b = wire.AppendUvarint(b, uint64(len(st.Gone)))
	for _, id := range st.Gone {
		b = agent.AppendID(b, id)
	}
	b = wire.AppendUvarint(b, uint64(len(st.Visited)))
	for i := range st.Visited {
		v := &st.Visited[i]
		b = wire.AppendVarint(b, int64(v.Server))
		b = wire.AppendVarint(b, int64(v.Shard))
		b = wire.AppendUvarint(b, v.Epoch)
		b = wire.AppendUvarint(b, v.Version)
	}
	b = wire.AppendUvarint(b, uint64(len(st.Floors)))
	for i := range st.Floors {
		b = replica.AppendQueueSnapshot(b, &st.Floors[i])
	}
	return b
}

// DecodeWireStateInto reads a state written by AppendWireState into *st,
// reusing every slice already hanging off it — the zero-allocation decode
// path the migration benchmarks gate on.
func DecodeWireStateInto(st *WireState, r *wire.Reader) error {
	n := r.Count(3)
	st.Requests = wire.Grow(st.Requests, n)
	for i := 0; i < n; i++ {
		st.Requests[i] = Request{Key: r.String(), Op: Op(r.Varint()), Arg: r.String()}
	}
	n = r.Count(1)
	st.USL = wire.Grow(st.USL, n)
	for i := 0; i < n; i++ {
		st.USL[i] = runtime.NodeID(r.Varint())
	}
	n = r.Count(1)
	st.Unavailable = wire.Grow(st.Unavailable, n)
	for i := 0; i < n; i++ {
		st.Unavailable[i] = runtime.NodeID(r.Varint())
	}
	st.Visits = int(r.Varint())
	st.Retries = int(r.Varint())
	st.Attempt = int(r.Varint())
	st.Dispatched = r.Varint()
	n = r.Count(6)
	st.Snapshots = wire.Grow(st.Snapshots, n)
	for i := 0; i < n; i++ {
		replica.DecodeQueueSnapshotInto(&st.Snapshots[i], r)
	}
	n = r.Count(3)
	st.Gone = wire.Grow(st.Gone, n)
	for i := 0; i < n; i++ {
		st.Gone[i] = agent.DecodeID(r)
	}
	n = r.Count(4)
	st.Visited = wire.Grow(st.Visited, n)
	for i := 0; i < n; i++ {
		st.Visited[i] = VisitMark{
			Server:  runtime.NodeID(r.Varint()),
			Shard:   int(r.Varint()),
			Epoch:   r.Uvarint(),
			Version: r.Uvarint(),
		}
	}
	n = r.Count(6)
	st.Floors = wire.Grow(st.Floors, n)
	for i := 0; i < n; i++ {
		replica.DecodeQueueSnapshotInto(&st.Floors[i], r)
	}
	return r.Finish()
}
