package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/simnet"
)

func TestOpString(t *testing.T) {
	if OpSet.String() != "set" || OpAppend.String() != "append" {
		t.Fatal("op names wrong")
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatalf("unknown op string: %q", Op(9).String())
	}
}

func TestOutcomeLatencyHelpers(t *testing.T) {
	o := Outcome{Dispatched: 100, LockAt: 300, DoneAt: 700}
	if o.LockLatency() != 200 || o.TotalLatency() != 600 {
		t.Fatalf("latencies: %v %v", o.LockLatency(), o.TotalLatency())
	}
}

func TestAgentWireSizeGrowsWithState(t *testing.T) {
	c := newTestCluster(t, Config{N: 5})
	small := newUpdateAgent(c.Cluster, 1, []Request{Set("k", "v")})
	base := small.WireSize()
	big := newUpdateAgent(c.Cluster, 1, []Request{Set("a", "1"), Set("b", "2"), Set("c", "3")})
	if big.WireSize() <= base {
		t.Fatal("request list does not grow the agent")
	}
	// Accumulated locking information grows the agent too (the cost the
	// paper trades against message rounds).
	small.lt.MergeSnapshot(replica.QueueSnapshot{Server: 1, Version: 1,
		Queue: []agent.ID{agentID(1), agentID(2), agentID(3)}})
	small.lt.MarkGone(agentID(9))
	if small.WireSize() <= base {
		t.Fatal("locking table does not grow the agent")
	}
}

func TestAgentIgnoresForeignMessages(t *testing.T) {
	// An agent must ignore messages that are not acks for its own claim.
	c := newTestCluster(t, Config{N: 3})
	ua := newUpdateAgent(c.Cluster, 1, []Request{Set("k", "v")})
	c.outstanding++
	ctx := c.platform.Spawn(1, ua)
	if ua.phase != phaseDone {
		c.active[ctx.ID()] = ua
	}
	// Deliver a bogus payload and a foreign ack; neither may disturb it.
	ua.OnMessage(ctx, 2, "garbage")
	ua.OnMessage(ctx, 2, &replica.AckMsg{Txn: agentID(99), OK: true})
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStrayGrantReleasedByLateAck(t *testing.T) {
	// An OK ack arriving for an abandoned claim attempt must trigger an
	// abort to the granting server so the grant cannot dangle.
	c := newTestCluster(t, Config{N: 5}, simEnv{seed: 41})
	ua := newUpdateAgent(c.Cluster, 1, []Request{Set("k", "v")})
	c.outstanding++
	ctx := c.platform.Spawn(1, ua)
	c.active[ctx.ID()] = ua
	// Simulate: the agent is parked mid-protocol and receives a stale OK
	// ack from attempt 0 while its current attempt is different.
	c.Server(2).VisitAndLock(ctx.ID(), nil, nil, nil)
	ack := c.Server(2).HandleUpdateLocal(&replica.UpdateMsg{
		Txn: ctx.ID(), Attempt: 99, Origin: 2, Keys: []string{"k"}, ByTie: true,
	})
	if !ack.OK {
		t.Fatalf("setup claim failed: %+v", ack)
	}
	if c.Server(2).Granted() != ctx.ID() {
		t.Fatal("grant not installed")
	}
	ua.OnMessage(ctx, 2, ack) // stale attempt -> agent must send AbortMsg
	c.Sim().RunFor(time.Second)
	if got := c.Server(2).Granted(); got == ctx.ID() {
		t.Fatal("stale grant never released")
	}
	// Let the agent finish normally so the run stays clean.
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestRandomItineraryStillCorrect(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, RandomItinerary: true}, simEnv{seed: 43})
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
	if len(c.Outcomes()) != 5 {
		t.Fatalf("outcomes = %d", len(c.Outcomes()))
	}
}

func TestInfoSharingDisabledStillCorrect(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, DisableInfoSharing: true}, simEnv{seed: 45})
	for i := 1; i <= 5; i++ {
		if err := c.Submit(simnet.NodeID(i), Set("k", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
}

func TestCostOrderedItineraryIsDeterministicNearestFirst(t *testing.T) {
	// On a ring topology the cheapest-first itinerary from node 1 visits
	// neighbours before the far side.
	c, err := newSimCluster(Config{N: 5}, simEnv{seed: 47, topology: simnet.Ring(5), latency: simnet.Constant(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, Set("k", "v")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	o := c.Outcomes()[0]
	// Uncontended majority win on N=5: home + the two ring neighbours
	// (cost 1), never the far nodes (cost 2).
	if o.Visits != 3 {
		t.Fatalf("visits = %d", o.Visits)
	}
	for _, far := range []simnet.NodeID{3, 4} {
		for _, e := range c.Server(far).Queue() {
			if e == o.Agent {
				t.Fatalf("agent visited far node %d despite nearer options", far)
			}
		}
	}
}
