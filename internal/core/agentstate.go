package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/wire"
)

// WireState is the serializable form of an UpdateAgent's protocol state —
// what actually crosses the wire when the agent migrates between hosts in a
// multi-process deployment. It substantiates the repository's central
// substitution argument (DESIGN.md): Go has no code mobility, but the MARP
// agent never needs any — everything Algorithm 1 requires is plain data
// (the Request List, the Un-visited Servers List, the Locking Table, the
// Updated Agents List, counters), and all of it survives an encoding round
// trip. Only the behaviour code stays put, identical at every host, exactly
// as the Aglets class files were pre-installed on every Tahiti server of
// the paper's prototype.
type WireState struct {
	Requests    []Request
	USL         []runtime.NodeID
	Unavailable []runtime.NodeID
	Visits      int
	Retries     int
	Attempt     int
	Dispatched  int64

	Snapshots []replica.QueueSnapshot
	Gone      []agent.ID
	Visited   []VisitMark
	Floors    []replica.QueueSnapshot
}

// VisitMark records where (and at which snapshot position) the agent
// enqueued itself by visiting.
type VisitMark struct {
	Server  runtime.NodeID
	Shard   int
	Epoch   uint64
	Version uint64
}

// Freeze captures the agent's migratable protocol state. The agent must be
// quiescent (travelling or parked): claim-phase bookkeeping is deliberately
// not serialized, matching the protocol, in which an agent never migrates
// mid-claim.
func (a *UpdateAgent) Freeze() WireState {
	st := WireState{
		Requests:   append([]Request(nil), a.reqs...),
		USL:        append([]runtime.NodeID(nil), a.usl...),
		Visits:     a.visits,
		Retries:    a.retries,
		Attempt:    a.attempt,
		Dispatched: int64(a.dispatched),
	}
	for id := range a.unavailable {
		st.Unavailable = append(st.Unavailable, id)
	}
	sort.Slice(st.Unavailable, func(i, j int) bool { return st.Unavailable[i] < st.Unavailable[j] })
	for _, snap := range a.lt.snaps {
		st.Snapshots = append(st.Snapshots, snap.Clone())
	}
	sort.Slice(st.Snapshots, func(i, j int) bool {
		a, b := st.Snapshots[i], st.Snapshots[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Server < b.Server
	})
	st.Gone = a.lt.GoneList()
	for k, mark := range a.lt.visitMark {
		st.Visited = append(st.Visited, VisitMark{Server: k.server, Shard: k.shard, Epoch: mark.epoch, Version: mark.version})
	}
	sort.Slice(st.Visited, func(i, j int) bool {
		a, b := st.Visited[i], st.Visited[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Server < b.Server
	})
	for _, f := range a.lt.floor {
		st.Floors = append(st.Floors, f)
	}
	sort.Slice(st.Floors, func(i, j int) bool {
		a, b := st.Floors[i], st.Floors[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Server < b.Server
	})
	return st
}

// Thaw reconstructs an UpdateAgent from a frozen state at a (possibly
// different) cluster instance — the receiving end of a cross-process
// migration. The agent resumes in the travelling phase; its next OnArrive
// continues Algorithm 1 where the frozen agent left off.
func Thaw(c *Cluster, st WireState) *UpdateAgent {
	shards := c.shardsOf(st.Requests)
	a := &UpdateAgent{
		c:           c,
		reqs:        append([]Request(nil), st.Requests...),
		lt:          c.lockTableFor(shards),
		shards:      shards,
		targets:     c.groupUnion(shards),
		usl:         append([]runtime.NodeID(nil), st.USL...),
		unavailable: make(map[runtime.NodeID]bool, len(st.Unavailable)),
		attempts:    make(map[runtime.NodeID]int),
		visits:      st.Visits,
		retries:     st.Retries,
		attempt:     st.Attempt,
		dispatched:  runtime.Time(st.Dispatched),
	}
	for _, id := range st.Unavailable {
		a.unavailable[id] = true
	}
	for _, f := range st.Floors {
		a.lt.floor[snapKey{shard: f.Shard, server: f.Server}] = f
	}
	for _, snap := range st.Snapshots {
		a.lt.MergeSnapshot(snap)
	}
	a.lt.MarkGone(st.Gone...)
	for _, m := range st.Visited {
		a.lt.visitMark[snapKey{shard: m.Shard, server: m.Server}] = visitMark{epoch: m.Epoch, version: m.Version}
	}
	return a
}

// Encode serializes the state with the hand-rolled wire codec, returning
// the wire bytes. The leading magic byte distinguishes the format from gob
// so DecodeWireState accepts both.
func (st WireState) Encode() ([]byte, error) {
	buf := make([]byte, 1, 256)
	buf[0] = wireStateMagic
	return AppendWireState(buf, &st), nil
}

// EncodeGob serializes the state with encoding/gob — the pre-wire-codec
// format, kept for the A9 codec ablation and the comparison benchmarks.
func (st WireState) EncodeGob() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encoding agent state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWireState deserializes wire bytes produced by Encode or EncodeGob,
// sniffing the leading byte: wireStateMagic never begins a gob stream.
func DecodeWireState(data []byte) (WireState, error) {
	var st WireState
	if len(data) > 0 && data[0] == wireStateMagic {
		if err := DecodeWireStateInto(&st, wire.NewReader(data[1:])); err != nil {
			return WireState{}, fmt.Errorf("core: decoding agent state: %w", err)
		}
		return st, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return WireState{}, fmt.Errorf("core: decoding agent state: %w", err)
	}
	return st, nil
}

// MarshalWire implements agent.WireBehavior: over a serializing fabric the
// agent travels as its encoded WireState, and the destination cluster's
// thawWire hook rebinds it (the same freeze/thaw path regeneration uses).
// Config.GobAgentState forces the legacy gob encoding — the A9 baseline.
func (a *UpdateAgent) MarshalWire() ([]byte, error) {
	st := a.Freeze()
	if a.c.cfg.GobAgentState {
		return st.EncodeGob()
	}
	return st.Encode()
}
