package core

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/simnet"
)

func TestRefereeCleanSerialRun(t *testing.T) {
	r := NewReferee(5, func() des.Time { return 0 })
	a, b := agentID(1), agentID(2)
	// a wins 3 grants, commits (grants released), then b.
	r.OnGrant(1, 0, a)
	r.OnGrant(2, 0, a)
	if r.Holder() != (agent.ID{}) {
		t.Fatal("holder before majority")
	}
	r.OnGrant(3, 0, a)
	if r.Holder() != a {
		t.Fatalf("holder = %v", r.Holder())
	}
	for i := 1; i <= 3; i++ {
		r.OnGrant(simnet.NodeID(i), 0, agent.ID{})
	}
	r.OnGrant(1, 0, b)
	r.OnGrant(2, 0, b)
	r.OnGrant(4, 0, b)
	if r.Holder() != b {
		t.Fatalf("holder = %v", r.Holder())
	}
	if r.Wins() != 2 {
		t.Fatalf("wins = %d", r.Wins())
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRefereeDetectsOverlap(t *testing.T) {
	r := NewReferee(5, func() des.Time { return 100 })
	a, b := agentID(1), agentID(2)
	r.OnGrant(1, 0, a)
	r.OnGrant(2, 0, a)
	r.OnGrant(3, 0, a)
	// A second majority without releasing the first: impossible with
	// exclusive grants, but the referee must catch it if it happens.
	r.OnGrant(4, 0, b)
	r.OnGrant(5, 0, b)
	r.OnGrant(3, 0, b) // server 3 betrays its exclusivity
	if err := r.Err(); err == nil {
		t.Fatal("overlap not detected")
	}
	if len(r.Violations()) == 0 {
		t.Fatal("no violations recorded")
	}
}

func TestRefereeHolderClearsOnRelease(t *testing.T) {
	r := NewReferee(3, func() des.Time { return 0 })
	a := agentID(1)
	r.OnGrant(1, 0, a)
	r.OnGrant(2, 0, a)
	if r.Holder() != a {
		t.Fatal("no holder at majority")
	}
	r.OnGrant(1, 0, agent.ID{})
	if r.Holder() != (agent.ID{}) {
		t.Fatal("holder survived dropping below majority")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
