package core

import (
	"time"

	"repro/internal/agent"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
)

// agentPhase tracks where an UpdateAgent is in Algorithm 1.
type agentPhase int

const (
	phaseTravelling agentPhase = iota // visiting servers off the USL
	phaseParked                       // waiting for locking lists to change
	phaseClaiming                     // UPDATE broadcast out, collecting ACKs
	phaseDone                         // committed (or failed) and disposed
)

// UpdateAgent is the mobile agent of the paper's Algorithm 1. It carries a
// Request List from its home server, travels the replicas enqueuing itself
// in their Locking Lists, accumulates a LockTable, and — once the
// fully-distributed priority calculation elects it — claims the update
// permission, applies the most recent copy, and commits everywhere.
type UpdateAgent struct {
	c       *Cluster
	reqs    []Request
	lt      *LockTable
	shards  []int            // distinct shards of the request keys, ascending
	targets []runtime.NodeID // union of those shards' replica groups, ascending

	usl         []runtime.NodeID        // unvisited servers
	unavailable map[runtime.NodeID]bool // declared unavailable this round
	attempts    map[runtime.NodeID]int  // consecutive failed migrations per server

	phase      agentPhase
	visits     int
	retries    int
	dispatched runtime.Time
	claimStart runtime.Time
	lockVisits int // visits at the moment the winning claim started

	attempt  int // current claim attempt number
	byTie    bool
	acksOK   map[runtime.NodeID]*replica.AckMsg
	acksNo   map[runtime.NodeID]bool
	claimTmr runtime.Timer

	retryArmed  bool   // a parked-retry timer is pending
	parkedTicks int    // consecutive fruitless retry rounds while parked
	lastRev     uint64 // lock-table revision at the previous retry round

	// Gone-list refresh cursor: how much of goneNode's append-only gone
	// list this agent has already merged, so repeat refreshes at the same
	// server fetch only the suffix. Deliberately not serialized — a thawed
	// agent simply re-reads the full list once. Zero values are safe: the
	// cursor only applies when goneNode matches the current residence.
	goneNode runtime.NodeID
	goneSeen int
}

// newUpdateAgent builds an agent for a batch of requests originating at
// home. The itinerary is hash-routed: the USL initially contains every
// member of the replica groups owning the batch's shards, except home
// (which the agent visits implicitly on spawn). With one shard and full
// replication that is every replica — the paper's itinerary.
func newUpdateAgent(c *Cluster, home runtime.NodeID, reqs []Request) *UpdateAgent {
	shards := c.shardsOf(reqs)
	a := &UpdateAgent{
		c:           c,
		reqs:        reqs,
		lt:          c.lockTableFor(shards),
		shards:      shards,
		targets:     c.groupUnion(shards),
		unavailable: make(map[runtime.NodeID]bool),
		attempts:    make(map[runtime.NodeID]int),
		dispatched:  c.eng.Now(),
	}
	for _, id := range a.targets {
		if id != home {
			a.usl = append(a.usl, id)
		}
	}
	return a
}

// WireSize models the agent's serialized size: it grows with the request
// list it carries and the locking information it has accumulated — the cost
// the paper trades against message rounds.
func (a *UpdateAgent) WireSize() int {
	n := 256 + 64*len(a.reqs) + 24*len(a.lt.gone)
	for _, s := range a.lt.snaps {
		n += 48 + 24*len(s.Queue)
	}
	return n
}

// OnArrive implements Algorithm 1's per-site block: request the lock, update
// the data structures with server-provided information, and recalculate the
// priority.
func (a *UpdateAgent) OnArrive(ctx *agent.Context) {
	if a.phase == phaseDone {
		return
	}
	node := ctx.Node()
	a.visits++
	a.parkedTicks = 0
	a.removeFromUSL(node)
	a.attempts[node] = 0
	srv := a.c.Server(node)
	var shared []replica.QueueSnapshot
	if !a.c.cfg.DisableInfoSharing {
		shared = a.lt.Export()
	}
	info := srv.VisitAndLock(ctx.ID(), a.shards, shared, a.lt.GoneList())
	a.lt.MergeInfo(info, true)
	a.phase = phaseTravelling
	a.c.checkpoint(ctx.ID(), a)
	a.evaluate(ctx)
}

// OnMigrateFailed counts the unsuccessful attempt; after the configured
// number of attempts the replica is declared unavailable and skipped until
// the next retry round (paper §2).
func (a *UpdateAgent) OnMigrateFailed(ctx *agent.Context, dest runtime.NodeID) {
	if a.phase == phaseDone {
		return
	}
	a.attempts[dest]++
	if a.attempts[dest] >= a.c.cfg.MaxMigrateAttempts {
		a.unavailable[dest] = true
		a.removeFromUSL(dest)
		a.c.cfg.Trace.Addf(int64(ctx.Now()), int(dest), ctx.ID().String(), trace.AgentBlocked,
			"declared unavailable after %d attempts", a.attempts[dest])
	}
	a.phase = phaseTravelling
	a.evaluate(ctx)
}

// OnMessage handles ACK/NACK replies to the agent's UPDATE broadcast.
func (a *UpdateAgent) OnMessage(ctx *agent.Context, from runtime.NodeID, payload any) {
	ack, ok := payload.(*replica.AckMsg)
	if !ok || ack.Txn != ctx.ID() {
		return
	}
	if a.phase != phaseClaiming || ack.Attempt != a.attempt {
		// A stray OK from an already-abandoned claim leaves a grant
		// dangling at the sender; release it. The abort is scoped to the
		// stale attempt so it cannot touch a grant this agent has since
		// re-acquired with a newer claim.
		if ack.OK && a.phase != phaseDone {
			m := &replica.AbortMsg{Txn: ctx.ID(), Attempt: ack.Attempt}
			ctx.Send(ack.From, m, m.WireSize())
		}
		return
	}
	a.handleAck(ctx, ack)
}

// OnLocalEvent reacts to the co-located server's locking-list change
// notifications while the agent is parked. A shard-scoped notification
// whose shards don't intersect this agent's is skipped outright: the
// server guarantees nothing the agent's refresh could observe changed, so
// the refresh would merge identical information and re-park — pure cost.
func (a *UpdateAgent) OnLocalEvent(ctx *agent.Context, ev any) {
	ch, ok := ev.(replica.LLChanged)
	if !ok {
		return
	}
	if a.phase != phaseParked {
		return
	}
	if ch.Shards != nil && !intersectsSorted(ch.Shards, a.shards) {
		return
	}
	a.refreshLocal(ctx)
	a.evaluate(ctx)
}

// intersectsSorted reports whether two ascending int slices share a value.
func intersectsSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// refreshLocal re-reads the co-located server's lock information. Repeat
// refreshes at the same server use the gone-list cursor: only the suffix
// of the server's append-only gone list is fetched and merged, which turns
// the per-notification cost from O(total gone) into O(new gone).
func (a *UpdateAgent) refreshLocal(ctx *agent.Context) {
	srv := a.c.Server(ctx.Node())
	seen := 0
	if a.goneNode == ctx.Node() {
		seen = a.goneSeen
	}
	info, total := srv.RefreshInfoSince(a.shards, seen)
	a.goneNode, a.goneSeen = ctx.Node(), total
	a.lt.MergeInfo(info, false)
}

func (a *UpdateAgent) removeFromUSL(node runtime.NodeID) {
	for i, id := range a.usl {
		if id == node {
			a.usl = append(a.usl[:i], a.usl[i+1:]...)
			return
		}
	}
}

// evaluate is the heart of Algorithm 1's loop: calculate the priority from
// the LockTable; claim if this agent wins; otherwise keep travelling while
// the USL is non-empty, or park and wait for the locking lists to change.
func (a *UpdateAgent) evaluate(ctx *agent.Context) {
	if a.phase == phaseClaiming || a.phase == phaseDone {
		return
	}
	d := a.lt.Decide(ctx.ID())
	if d.Found && d.Winner == ctx.ID() {
		a.startClaim(ctx, d)
		return
	}
	// Re-enqueue at servers that lost our entry in a crash.
	for _, node := range a.lt.NeedRevisit(ctx.ID()) {
		if node != ctx.Node() && !a.inUSL(node) && !a.unavailable[node] {
			a.usl = append(a.usl, node)
		}
	}
	if next, ok := a.nextStop(ctx); ok {
		a.phase = phaseTravelling
		ctx.MigrateTo(next)
		return
	}
	a.park(ctx)
}

func (a *UpdateAgent) inUSL(node runtime.NodeID) bool {
	for _, id := range a.usl {
		if id == node {
			return true
		}
	}
	return false
}

// nextStop picks the next server to visit: the cheapest-to-reach unvisited
// server per the routing information (paper §3.2), or a uniformly random one
// under the RandomItinerary ablation.
func (a *UpdateAgent) nextStop(ctx *agent.Context) (runtime.NodeID, bool) {
	var candidates []runtime.NodeID
	for _, id := range a.usl {
		if !a.unavailable[id] && id != ctx.Node() {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return runtime.None, false
	}
	if a.c.cfg.RandomItinerary {
		return candidates[ctx.Rand().Intn(len(candidates))], true
	}
	best := candidates[0]
	bestCost := ctx.Cost(best)
	for _, id := range candidates[1:] {
		if c := ctx.Cost(id); c < bestCost || (c == bestCost && id < best) {
			best, bestCost = id, c
		}
	}
	return best, true
}

// park waits at the current server for locking-list changes, with a
// periodic retry that re-probes unavailable servers (the paper's "next
// round of request").
func (a *UpdateAgent) park(ctx *agent.Context) {
	a.phase = phaseParked
	if tr := a.c.cfg.Trace; tr.Enabled() {
		tr.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.AgentParked,
			"tops=%d", a.lt.Decide(ctx.ID()).SelfTops)
	}
	a.armRetry(ctx)
}

// armRetry schedules (at most one) parked-retry round.
func (a *UpdateAgent) armRetry(ctx *agent.Context) {
	if a.retryArmed {
		return
	}
	a.retryArmed = true
	ctx.After(a.c.cfg.RetryInterval, func() {
		a.retryArmed = false
		if a.phase != phaseParked {
			return
		}
		// Only rounds in which nothing changed anywhere count as
		// fruitless: any lock-table mutation resets the clock.
		a.refreshLocal(ctx)
		if a.lt.Rev() != a.lastRev {
			a.lastRev = a.lt.Rev()
			a.parkedTicks = 0
		} else {
			a.parkedTicks++
		}
		// Desperation: with unreachable replicas or divergent views the
		// paper's priority rule can stay inconclusive forever (no agent
		// can prove a majority and the tie condition never triggers).
		// After two genuinely stagnant rounds the agent claims anyway;
		// the servers' grant exclusivity arbitrates safely (DESIGN.md,
		// fortification).
		if a.parkedTicks >= 2 {
			a.parkedTicks = 0
			a.startClaim(ctx, Decision{Found: true, Winner: ctx.ID(), ByTie: true})
			return
		}
		// New round: forgive unavailable servers and revisit anything
		// we are not enqueued at.
		for id := range a.unavailable {
			delete(a.unavailable, id)
			a.attempts[id] = 0
			if !a.lt.Visited(id) && !a.inUSL(id) && id != ctx.Node() {
				a.usl = append(a.usl, id)
			}
		}
		a.evaluate(ctx)
		if a.phase == phaseParked {
			a.armRetry(ctx)
		}
	})
}

// startClaim broadcasts the UPDATE message to all replicas (paper §3.1:
// "it then broadcasts a message to all the replicas to request the update of
// the replica") and begins collecting acknowledgements.
func (a *UpdateAgent) startClaim(ctx *agent.Context, d Decision) {
	// Checkpoint while still quiescent: a regenerated incarnation resumes
	// from just before this claim and re-runs it with the same attempt
	// number (safe — the regeneration delay outlives any stale message).
	a.c.checkpoint(ctx.ID(), a)
	a.phase = phaseClaiming
	a.parkedTicks = 0
	a.attempt++
	a.byTie = d.ByTie
	a.claimStart = ctx.Now()
	a.lockVisits = a.visits
	a.acksOK = make(map[runtime.NodeID]*replica.AckMsg)
	a.acksNo = make(map[runtime.NodeID]bool)
	if d.ByTie {
		a.c.cfg.Trace.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.TieBreak,
			"won tie with %d tops", d.TopCount)
	}
	a.c.cfg.Trace.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.ClaimStarted,
		"attempt %d, tie=%v", a.attempt, d.ByTie)

	keys := a.keys()
	m := &replica.UpdateMsg{
		Txn:     ctx.ID(),
		Attempt: a.attempt,
		Origin:  ctx.Node(),
		Keys:    keys,
		Shards:  a.shards,
		ByTie:   d.ByTie,
	}
	if d.ByTie {
		m.Evidence = a.lt.Evidence()
	}
	for _, id := range a.targets {
		if id == ctx.Node() {
			continue
		}
		ctx.Send(id, m, m.WireSize())
	}
	a.c.cfg.Trace.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.UpdateSent,
		"%d keys", len(keys))
	// The co-located server answers at memory speed.
	local := a.c.Server(ctx.Node()).HandleUpdateLocal(m)
	a.handleAck(ctx, local)
	if a.phase != phaseClaiming {
		return
	}
	a.claimTmr = ctx.After(a.c.cfg.ClaimTimeout, func() {
		if a.phase != phaseClaiming {
			return
		}
		// Servers that never answered are suspected down: whatever this
		// agent believed about their locking lists is what led to the
		// futile claim, so forget it and re-learn.
		for _, id := range a.c.nodes {
			if _, ok := a.acksOK[id]; ok {
				continue
			}
			if a.acksNo[id] {
				continue
			}
			a.lt.Forget(id)
		}
		a.abortClaim(ctx, "timeout")
	})
}

// keys returns the distinct keys of the request list, in first-seen order.
func (a *UpdateAgent) keys() []string {
	seen := make(map[string]bool, len(a.reqs))
	var out []string
	for _, r := range a.reqs {
		if !seen[r.Key] {
			seen[r.Key] = true
			out = append(out, r.Key)
		}
	}
	return out
}

// handleAck folds one acknowledgement into the claim. A write quorum of
// OKs on every claimed shard wins (a majority of the votes, under the
// default geometry); once that has become arithmetically impossible on any
// shard the claim is withdrawn.
func (a *UpdateAgent) handleAck(ctx *agent.Context, ack *replica.AckMsg) {
	if ack.OK {
		a.acksOK[ack.From] = ack
	} else {
		a.acksNo[ack.From] = true
		if ack.Info != nil {
			a.lt.MergeInfo(*ack.Info, false)
		}
	}
	win, dead := true, false
	for _, shrd := range a.shards {
		var oks, reachable []runtime.NodeID
		for _, id := range a.c.groups[shrd] {
			if _, ok := a.acksOK[id]; ok {
				oks = append(oks, id)
				reachable = append(reachable, id)
			} else if !a.acksNo[id] {
				reachable = append(reachable, id) // still unanswered
			}
		}
		assign := a.c.assigns[shrd]
		if !assign.HasWrite(oks) {
			win = false
		}
		if !assign.HasWrite(reachable) {
			dead = true
		}
	}
	if win {
		a.finishWin(ctx)
		return
	}
	if dead {
		a.abortClaim(ctx, "majority impossible")
	}
}

// finishWin applies the paper's commit step: determine the most recent copy
// from the quorum's replies, produce the updates in request order, multicast
// COMMIT to all replicas, release the lock, and dispose.
func (a *UpdateAgent) finishWin(ctx *agent.Context) {
	a.claimTmr.Cancel()
	// Most recent copy per key — and committed horizon per shard — across
	// the acknowledging quorum. Sequence numbers are per shard: commits on
	// one shard never reorder against another (the shard-isolation
	// invariant).
	latest := make(map[string]store.Value)
	baseSeq := make(map[int]uint64, len(a.shards))
	for _, ack := range a.acksOK {
		for i, shrd := range a.shards {
			if i < len(ack.ShardSeqs) && ack.ShardSeqs[i] > baseSeq[shrd] {
				baseSeq[shrd] = ack.ShardSeqs[i]
			}
		}
		for k, v := range ack.Values {
			if cur, ok := latest[k]; !ok || cur.Version.Less(v.Version) {
				latest[k] = v
			}
		}
	}
	now := int64(ctx.Now())
	updates := make([]store.Update, 0, len(a.reqs))
	written := make(map[int]uint64, len(a.shards))
	for _, r := range a.reqs {
		data := r.Arg
		if r.Op == OpAppend {
			data = latest[r.Key].Data + r.Arg
		}
		shrd := shard.Of(r.Key, a.c.shards)
		written[shrd]++
		u := store.Update{
			TxnID: ctx.ID().String(),
			Key:   r.Key,
			Data:  data,
			Seq:   baseSeq[shrd] + written[shrd],
			Stamp: now,
		}
		latest[r.Key] = store.Value{Data: data, Version: store.Version{Seq: u.Seq, Stamp: now, Writer: u.TxnID}}
		updates = append(updates, u)
	}
	commit := &replica.CommitMsg{Txn: ctx.ID(), Origin: ctx.Node(), Updates: updates}
	for _, id := range a.targets {
		if id == ctx.Node() {
			continue
		}
		ctx.Send(id, commit, commit.WireSize())
	}
	a.c.Server(ctx.Node()).HandleCommitLocal(commit)
	a.c.cfg.Trace.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.CommitSent,
		"seq %d..%d", baseSeq[a.shards[0]]+1, baseSeq[a.shards[0]]+written[a.shards[0]])

	a.phase = phaseDone
	a.c.finish(ctx.Node(), Outcome{
		Agent:      ctx.ID(),
		Home:       ctx.ID().Home,
		Requests:   len(a.reqs),
		Dispatched: a.dispatched,
		LockAt:     a.claimStart,
		DoneAt:     ctx.Now(),
		Visits:     a.lockVisits,
		ByTie:      a.byTie,
		Retries:    a.retries,
		Shards:     a.shards,
	})
	ctx.Dispose()
}

// abortClaim withdraws the UPDATE claim, releasing any grants, and retries
// after a randomized backoff (fresh NACK information usually changes the
// next decision).
func (a *UpdateAgent) abortClaim(ctx *agent.Context, reason string) {
	a.claimTmr.Cancel()
	a.retries++
	m := &replica.AbortMsg{Txn: ctx.ID(), Attempt: a.attempt}
	for _, id := range a.targets {
		if id == ctx.Node() {
			continue
		}
		ctx.Send(id, m, m.WireSize())
	}
	a.c.Server(ctx.Node()).HandleAbortLocal(m)
	a.c.cfg.Trace.Addf(int64(ctx.Now()), int(ctx.Node()), ctx.ID().String(), trace.ClaimAborted,
		"%s (attempt %d)", reason, a.attempt)
	a.phase = phaseParked
	backoff := a.c.cfg.RetryBackoff/2 + time.Duration(ctx.Rand().Int63n(int64(a.c.cfg.RetryBackoff)))
	ctx.After(backoff, func() {
		if a.phase != phaseParked {
			return
		}
		a.refreshLocal(ctx)
		a.evaluate(ctx)
	})
}
