package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/shard"
	"repro/internal/simnet"
	"repro/internal/wal"
)

// submitMany issues one single-key update per (server, i) pair across many
// distinct keys and returns the key->value map for verification.
func submitMany(t *testing.T, c *testCluster, perServer int) map[string]string {
	t.Helper()
	want := make(map[string]string)
	for _, id := range c.Nodes() {
		for i := 0; i < perServer; i++ {
			k := fmt.Sprintf("key-%d-%d", id, i)
			v := fmt.Sprintf("val-%d-%d", id, i)
			if err := c.Submit(id, Set(k, v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
	}
	return want
}

func verifyReads(t *testing.T, c *testCluster, want map[string]string) {
	t.Helper()
	for k, v := range want {
		// Every member of the owning shard's group must have the value.
		sh := shard.Of(k, c.shards)
		for _, id := range c.groups[sh] {
			got, ok := c.Read(id, k)
			if !ok || got.Data != v {
				t.Fatalf("server %d shard %d: read %q = %+v %v, want %q", id, sh, k, got, ok, v)
			}
		}
	}
}

func TestShardedMultiKeyCommits(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := newTestCluster(t, Config{N: 5, Shards: shards})
			want := submitMany(t, c, 4)
			finishRun(t, c)
			verifyReads(t, c, want)
			if got := len(c.Outcomes()); got != 20 {
				t.Fatalf("outcomes = %d", got)
			}
		})
	}
}

func TestShardedContendedKeys(t *testing.T) {
	// Several servers race on the same keys: per-shard serialization must
	// hold (the referee checks exclusion per shard) and appends must not
	// lose updates.
	c := newTestCluster(t, Config{N: 5, Shards: 8})
	keys := []string{"alpha", "beta", "gamma"}
	perKey := make(map[string]int)
	for round := 0; round < 3; round++ {
		for _, id := range c.Nodes() {
			k := keys[(int(id)+round)%len(keys)]
			if err := c.Submit(id, Append(k, "x")); err != nil {
				t.Fatal(err)
			}
			perKey[k]++
		}
	}
	finishRun(t, c)
	for k, n := range perKey {
		sh := shard.Of(k, c.shards)
		v, ok := c.Read(c.groups[sh][0], k)
		if !ok || len(v.Data) != n {
			t.Fatalf("%s: %d appends survived of %d", k, len(v.Data), n)
		}
	}
}

func TestCrossShardBatch(t *testing.T) {
	// One agent carries a batch whose keys span several shards: the claim
	// must take all shard locks atomically and commit with per-shard
	// sequence numbers.
	c := newTestCluster(t, Config{N: 5, Shards: 16})
	var reqs []Request
	want := make(map[string]string)
	for i := 0; i < 8; i++ {
		k, v := fmt.Sprintf("span-%d", i), fmt.Sprintf("v%d", i)
		reqs = append(reqs, Set(k, v))
		want[k] = v
	}
	if err := c.Submit(2, reqs...); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	verifyReads(t, c, want)
	o := c.Outcomes()[0]
	if len(o.Shards) < 2 {
		t.Fatalf("batch spanned %d shards, want several: %+v", len(o.Shards), o)
	}
	for i := 1; i < len(o.Shards); i++ {
		if o.Shards[i-1] >= o.Shards[i] {
			t.Fatalf("outcome shards not ascending: %v", o.Shards)
		}
	}
}

func TestCrossShardContention(t *testing.T) {
	// Two servers submit overlapping cross-shard batches in both shard
	// orders; canonical ascending lock order plus claim timeouts must
	// resolve any deadlock, and every batch commits.
	c := newTestCluster(t, Config{N: 3, Shards: 8})
	ka, kb := "left", "right"
	if shard.Of(ka, 8) == shard.Of(kb, 8) {
		t.Fatalf("test keys landed on one shard; pick different keys")
	}
	for i := 0; i < 4; i++ {
		if err := c.Submit(1, Set(ka, fmt.Sprintf("a%d", i)), Set(kb, fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, Set(kb, fmt.Sprintf("c%d", i)), Set(ka, fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	finishRun(t, c)
	if got := len(c.Outcomes()); got != 8 {
		t.Fatalf("outcomes = %d", got)
	}
	for _, o := range c.Outcomes() {
		if o.Failed {
			t.Fatalf("cross-shard batch failed: %+v", o)
		}
	}
}

func TestShardGroupsPartialReplication(t *testing.T) {
	// GroupSize 3 of N=6: each shard lives on 3 servers only; commits land
	// on group members and convergence is checked per group.
	c := newTestCluster(t, Config{N: 6, Shards: 8, GroupSize: 3})
	for sh, g := range c.groups {
		if len(g) != 3 {
			t.Fatalf("shard %d group = %v", sh, g)
		}
	}
	want := submitMany(t, c, 2)
	finishRun(t, c)
	verifyReads(t, c, want)
	// A non-member must not hold the data.
	for k := range want {
		sh := shard.Of(k, c.shards)
		member := make(map[simnet.NodeID]bool)
		for _, id := range c.groups[sh] {
			member[id] = true
		}
		for _, id := range c.Nodes() {
			if member[id] {
				continue
			}
			if _, ok := c.Read(id, k); ok {
				t.Fatalf("non-member %d holds %q (shard %d group %v)", id, k, sh, c.groups[sh])
			}
		}
		break // one key suffices
	}
}

func TestShardedGridGeometry(t *testing.T) {
	c := newTestCluster(t, Config{N: 9, Shards: 4, Geometry: quorum.GeomGrid})
	want := submitMany(t, c, 2)
	finishRun(t, c)
	verifyReads(t, c, want)
}

func TestShardedTreeGeometry(t *testing.T) {
	c := newTestCluster(t, Config{N: 7, Shards: 2, Geometry: quorum.GeomTree})
	want := submitMany(t, c, 2)
	finishRun(t, c)
	verifyReads(t, c, want)
}

func TestShardGeometryPerShardOverride(t *testing.T) {
	c := newTestCluster(t, Config{
		N: 9, Shards: 2,
		Geometry:      quorum.GeomMajority,
		ShardGeometry: map[int]quorum.Geometry{1: quorum.GeomGrid},
	})
	if _, ok := c.assigns[0].(quorum.Voting); !ok {
		t.Fatalf("shard 0 geometry = %s", c.assigns[0].Name())
	}
	if c.assigns[1].Name() != "grid" {
		t.Fatalf("shard 1 geometry = %s", c.assigns[1].Name())
	}
	want := submitMany(t, c, 2)
	finishRun(t, c)
	verifyReads(t, c, want)
}

func TestShardConfigValidation(t *testing.T) {
	if _, err := newSimCluster(Config{N: 5, Geometry: "hex"}); err == nil {
		t.Fatal("unknown geometry accepted")
	}
	if _, err := newSimCluster(Config{N: 5, Geometry: quorum.GeomGrid, Votes: map[simnet.NodeID]int{1: 2, 2: 1, 3: 1, 4: 1, 5: 1}}); err == nil {
		t.Fatal("grid geometry with weighted votes accepted")
	}
	if _, err := newSimCluster(Config{N: 5, GroupSize: 3, Votes: map[simnet.NodeID]int{1: 2, 2: 1, 3: 1, 4: 1, 5: 1}}); err == nil {
		t.Fatal("weighted votes with partial replication accepted")
	}
}

func TestShardedQuorumRead(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, Shards: 8, Geometry: quorum.GeomGrid})
	if err := c.Submit(1, Set("qr", "deep")); err != nil {
		t.Fatal(err)
	}
	finishRun(t, c)
	sh := shard.Of("qr", c.shards)
	home := c.groups[sh][0]
	v, ok, err := c.ReadQuorum(home, "qr", 30*time.Second)
	if err != nil || !ok || v.Data != "deep" {
		t.Fatalf("quorum read = %+v %v %v", v, ok, err)
	}
}

func TestShardedDeterministicRuns(t *testing.T) {
	run := func() []Outcome {
		c := newTestCluster(t, Config{N: 5, Shards: 16, Geometry: quorum.GeomGrid}, simEnv{seed: 7})
		for i := 1; i <= 5; i++ {
			id := simnet.NodeID(i)
			if err := c.Submit(id, Set(fmt.Sprintf("k%d", i), "v"), Set("shared", fmt.Sprintf("s%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.RunUntilDone(time.Minute); err != nil {
			t.Fatal(err)
		}
		return c.Outcomes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("outcome counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("outcome %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestShardedCrashRecovery(t *testing.T) {
	c := newTestCluster(t, Config{N: 5, Shards: 4})
	want := submitMany(t, c, 2)
	finishRun(t, c)
	c.Crash(3)
	// Commit more while node 3 is down.
	for i := 0; i < 4; i++ {
		k, v := fmt.Sprintf("late-%d", i), fmt.Sprintf("lv%d", i)
		if err := c.Submit(1, Set(k, v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	finishRun(t, c)
	c.Recover(3)
	c.Settle(5 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	verifyReads(t, c, want)
}

func TestShardIsolationSequences(t *testing.T) {
	// The shard-isolation invariant: each shard's committed log carries its
	// own dense sequence numbers starting at 1, independent of commits on
	// other shards.
	c := newTestCluster(t, Config{N: 3, Shards: 4})
	want := submitMany(t, c, 6)
	finishRun(t, c)
	_ = want
	for sh := 0; sh < c.shards; sh++ {
		log := c.Server(c.groups[sh][0]).StoreOf(sh).Log()
		for i, u := range log {
			if u.Seq != uint64(i+1) {
				t.Fatalf("shard %d log[%d].Seq = %d", sh, i, u.Seq)
			}
			if shard.Of(u.Key, c.shards) != sh {
				t.Fatalf("shard %d holds foreign key %q", sh, u.Key)
			}
		}
	}
}

func TestShardedDurableRecovery(t *testing.T) {
	// Sharded journal: per-shard stores and locking state go through one
	// WAL per node; replay must route every record back to its shard.
	dur, _ := memDurability(wal.PolicyCommit)
	c := newTestCluster(t, Config{N: 3, Shards: 4, Durability: dur})
	want := submitMany(t, c, 3)
	finishRun(t, c)
	c.Crash(2)
	for i := 0; i < 3; i++ {
		k, v := fmt.Sprintf("post-%d", i), fmt.Sprintf("pv%d", i)
		if err := c.Submit(1, Set(k, v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	finishRun(t, c)
	c.Recover(2)
	// Replay is synchronous: node 2's own per-shard commits are back from
	// its WAL before any network event runs.
	recovered := 0
	for sh := 0; sh < c.shards; sh++ {
		recovered += len(c.Server(2).StoreOf(sh).Log())
	}
	if recovered != 9 {
		t.Fatalf("right after Recover node 2 has %d commits, want 9 from WAL", recovered)
	}
	c.Settle(5 * time.Second)
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	verifyReads(t, c, want)
}
