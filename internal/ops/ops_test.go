package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runtime"
)

func testConfig(healthy *bool) Config {
	r := metrics.NewRegistry()
	c := r.Counter("marp.test.hits", "Scrapes served.")
	return Config{
		Gather: func() (metrics.Snapshot, *metrics.Registry, error) {
			c.Inc()
			return r.Gather(), r, nil
		},
		Health: func() (core.Health, error) {
			return core.Health{
				Vantage:  1,
				QuorumOK: *healthy,
				Shards: []core.ShardHealth{{
					Shard: 0, Group: []runtime.NodeID{1, 2, 3},
					Reachable: 3, MinWrite: 2, QuorumOK: *healthy,
				}},
			}, nil
		},
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsAndHealthz(t *testing.T) {
	healthy := true
	s, err := Serve("127.0.0.1:0", testConfig(&healthy))
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	for _, want := range []string{
		"# HELP marp_test_hits Scrapes served.",
		"# TYPE marp_test_hits counter",
		"marp_test_hits 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics body missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200; body %s", code, body)
	}
	var h core.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if !h.QuorumOK || h.Vantage != 1 || len(h.Shards) != 1 {
		t.Errorf("healthz = %+v, want quorum ok from vantage 1 with 1 shard", h)
	}

	healthy = false
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status = %d, want 503; body %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("degraded /healthz not JSON: %v\n%s", err, body)
	}
	if h.QuorumOK {
		t.Errorf("degraded healthz still reports quorum ok: %s", body)
	}
}
