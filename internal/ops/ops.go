// Package ops serves the operational HTTP endpoints of a marpd process:
// Prometheus-text /metrics and JSON /healthz. It is deliberately thin —
// both handlers delegate to callbacks the embedding process wires to its
// engine's execution context (transport.Server.GatherMetrics / Health),
// so the package knows nothing about engines, clusters, or locking.
//
// The listener is separate from the client/fabric listeners on purpose:
// scrapes and health probes must keep answering while the protocol ports
// are saturated, and firewalling the ops port differently from the data
// ports is the common deployment shape.
package ops

import (
	"encoding/json"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Config wires the endpoints to the process's cluster.
type Config struct {
	// Gather samples the metric registry on the engine's execution
	// context and returns the snapshot to render plus the registry it
	// came from (for HELP/TYPE text). Required.
	Gather func() (metrics.Snapshot, *metrics.Registry, error)
	// Health computes the quorum-reachability summary. Required.
	Health func() (core.Health, error)
}

// Server is a running ops listener.
type Server struct {
	ln   net.Listener
	http *http.Server
	done chan struct{}
}

// Serve starts the ops listener on addr (host:port; port 0 picks a free
// one) and serves until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, reg, err := cfg.Gather()
		if err != nil {
			http.Error(w, "gather: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h, err := cfg.Health()
		if err != nil {
			http.Error(w, "health: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.QuorumOK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
	s := &Server{
		ln: ln,
		http: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.http.Serve(ln)
	}()
	return s, nil
}

// Addr returns the address the listener is bound to.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}
