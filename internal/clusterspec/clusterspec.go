// Package clusterspec is the declarative description of a live MARP
// cluster: which nodes exist, where they listen (fabric, client, ops),
// how the key space is sharded, which quorum geometry and fsync policy
// apply, and where durable state lives. One spec file replaces the
// hand-written -peers string every process had to agree on —
// `marpd -spec cluster.toml -node 2` derives all its flags from the
// file, and `marpctl spec expand cluster.toml` prints the per-node
// flag sets for anyone scripting around it.
//
// Specs load from JSON (stdlib) or from a deliberately small TOML
// subset parsed by hand (the toolchain bakes in no TOML dependency):
// comments, top-level `key = value` pairs, and `[[node]]` array tables
// with string/integer values. That subset is exactly what a cluster
// spec needs; anything fancier is rejected with a line number.
package clusterspec

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/quorum"
	"repro/internal/runtime"
)

// Node is one replica process in the cluster.
type Node struct {
	// ID is the replica's node ID (unique, >= 1).
	ID int `json:"id"`
	// Fabric is the host:port the replica's fabric listener binds and
	// peers dial; required, and the host part must be non-empty so other
	// nodes can reach it.
	Fabric string `json:"fabric"`
	// Client is the optional host:port for the line-JSON client
	// protocol (marpctl). Empty = no client listener derived from the
	// spec (marpd's -addr default applies).
	Client string `json:"client,omitempty"`
	// Ops is the optional host:port for the ops listener (/metrics,
	// /healthz). Empty = no ops listener.
	Ops string `json:"ops,omitempty"`
	// DataDir is the replica's durability directory. Empty with a
	// spec-level DataRoot means DataRoot/node-<ID>; empty without one
	// means the replica runs volatile.
	DataDir string `json:"data_dir,omitempty"`
}

// Spec is a whole cluster's declarative description.
type Spec struct {
	// Name labels the cluster in diagnostics. Optional.
	Name string `json:"name,omitempty"`
	// Shards is the key-space shard count (default 1).
	Shards int `json:"shards,omitempty"`
	// Geometry is the quorum geometry: majority (default), grid, tree.
	Geometry string `json:"geometry,omitempty"`
	// Fsync is the WAL fsync policy when a node is durable: commit
	// (default), always, none.
	Fsync string `json:"fsync,omitempty"`
	// CommitDelay is the WAL group-commit window as a Go duration
	// string ("200us"); empty = fsync per commit.
	CommitDelay string `json:"commit_delay,omitempty"`
	// AckDelay is the migration ack aggregation window as a Go
	// duration string; empty = ack immediately.
	AckDelay string `json:"ack_delay,omitempty"`
	// Codec is the fabric codec: wire (default) or gob.
	Codec string `json:"codec,omitempty"`
	// Seed is the per-process random seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DataRoot, when set, gives every node without an explicit DataDir
	// the directory DataRoot/node-<ID>.
	DataRoot string `json:"data_root,omitempty"`
	// Nodes lists the cluster's replicas.
	Nodes []Node `json:"nodes"`
}

// Load reads and validates a spec file; the extension picks the format
// (.json or .toml).
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s *Spec
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		s, err = ParseJSON(data)
	case ".toml":
		s, err = ParseTOML(data)
	default:
		return nil, fmt.Errorf("clusterspec: unknown spec format %q (want .json or .toml)", ext)
	}
	if err != nil {
		return nil, fmt.Errorf("clusterspec: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("clusterspec: %s: %w", path, err)
	}
	return s, nil
}

// ParseJSON parses (but does not validate) a JSON spec.
func ParseJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseTOML parses (but does not validate) a spec in the supported TOML
// subset: '#' comments, top-level `key = value` pairs, `[[node]]` array
// tables, values either double-quoted strings or integers.
func ParseTOML(data []byte) (*Spec, error) {
	s := &Spec{}
	var cur *Node
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		if line == "[[node]]" {
			s.Nodes = append(s.Nodes, Node{})
			cur = &s.Nodes[len(s.Nodes)-1]
			continue
		}
		if strings.HasPrefix(line, "[") {
			return nil, fmt.Errorf("line %d: unsupported table %s (only [[node]])", lineNo, line)
		}
		key, rawVal, found := strings.Cut(line, "=")
		if !found {
			return nil, fmt.Errorf("line %d: expected key = value", lineNo)
		}
		key = strings.TrimSpace(key)
		str, num, isStr, err := parseValue(strings.TrimSpace(rawVal))
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if err := assign(s, cur, key, str, num, isStr); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	return s, nil
}

// stripComment removes a trailing '#' comment, respecting double quotes.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			// The subset has no escapes inside strings except what
			// strconv.Unquote handles; a backslash-quote stays quoted.
			if i == 0 || line[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// parseValue parses a TOML-subset value: quoted string or integer.
func parseValue(v string) (str string, num int64, isStr bool, err error) {
	if v == "" {
		return "", 0, false, fmt.Errorf("missing value")
	}
	if v[0] == '"' {
		s, err := strconv.Unquote(v)
		if err != nil {
			return "", 0, false, fmt.Errorf("bad string %s", v)
		}
		return s, 0, true, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return "", 0, false, fmt.Errorf("bad value %s (want \"string\" or integer)", v)
	}
	return "", n, false, nil
}

func assign(s *Spec, cur *Node, key, str string, num int64, isStr bool) error {
	wantStr := func(dst *string) error {
		if !isStr {
			return fmt.Errorf("%s: want a quoted string", key)
		}
		*dst = str
		return nil
	}
	wantInt := func(dst *int64) error {
		if isStr {
			return fmt.Errorf("%s: want an integer", key)
		}
		*dst = num
		return nil
	}
	if cur != nil {
		switch key {
		case "id":
			var v int64
			if err := wantInt(&v); err != nil {
				return err
			}
			cur.ID = int(v)
			return nil
		case "fabric":
			return wantStr(&cur.Fabric)
		case "client":
			return wantStr(&cur.Client)
		case "ops":
			return wantStr(&cur.Ops)
		case "data_dir":
			return wantStr(&cur.DataDir)
		}
		return fmt.Errorf("unknown [[node]] key %q", key)
	}
	switch key {
	case "name":
		return wantStr(&s.Name)
	case "shards":
		var v int64
		if err := wantInt(&v); err != nil {
			return err
		}
		s.Shards = int(v)
		return nil
	case "geometry":
		return wantStr(&s.Geometry)
	case "fsync":
		return wantStr(&s.Fsync)
	case "commit_delay":
		return wantStr(&s.CommitDelay)
	case "ack_delay":
		return wantStr(&s.AckDelay)
	case "codec":
		return wantStr(&s.Codec)
	case "seed":
		return wantInt(&s.Seed)
	case "data_root":
		return wantStr(&s.DataRoot)
	}
	return fmt.Errorf("unknown key %q", key)
}

// Validate checks the spec's internal consistency: at least one node,
// unique positive IDs, required and parseable fabric addresses, no
// address claimed twice, known geometry/fsync/codec, parseable delays.
func (s *Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("spec has no nodes")
	}
	if s.Shards < 0 {
		return fmt.Errorf("shards = %d, want >= 1", s.Shards)
	}
	if s.Geometry != "" {
		if _, err := quorum.ParseGeometry(s.Geometry); err != nil {
			return err
		}
	}
	switch s.Fsync {
	case "", "commit", "always", "none":
	default:
		return fmt.Errorf("unknown fsync policy %q (want commit, always, none)", s.Fsync)
	}
	switch s.Codec {
	case "", "wire", "gob":
	default:
		return fmt.Errorf("unknown codec %q (want wire or gob)", s.Codec)
	}
	for _, field := range []struct{ name, v string }{
		{"commit_delay", s.CommitDelay}, {"ack_delay", s.AckDelay},
	} {
		if field.v == "" {
			continue
		}
		d, err := time.ParseDuration(field.v)
		if err != nil {
			return fmt.Errorf("bad %s %q: %v", field.name, field.v, err)
		}
		if d < 0 {
			return fmt.Errorf("negative %s %q", field.name, field.v)
		}
	}
	seenID := make(map[int]bool)
	seenAddr := make(map[string]string) // addr -> "node 2 fabric"
	claim := func(addr, what string, required bool) error {
		if addr == "" {
			if required {
				return fmt.Errorf("%s: missing address", what)
			}
			return nil
		}
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			return fmt.Errorf("%s: bad address %q: %v", what, addr, err)
		}
		if required && host == "" {
			return fmt.Errorf("%s: address %q has no host (peers must be able to dial it)", what, addr)
		}
		if prev, dup := seenAddr[addr]; dup {
			return fmt.Errorf("%s: address %q already used by %s", what, addr, prev)
		}
		seenAddr[addr] = what
		return nil
	}
	for _, n := range s.Nodes {
		if n.ID < 1 {
			return fmt.Errorf("node id %d, want >= 1", n.ID)
		}
		if seenID[n.ID] {
			return fmt.Errorf("duplicate node id %d", n.ID)
		}
		seenID[n.ID] = true
		what := fmt.Sprintf("node %d", n.ID)
		if err := claim(n.Fabric, what+" fabric", true); err != nil {
			return err
		}
		if err := claim(n.Client, what+" client", false); err != nil {
			return err
		}
		if err := claim(n.Ops, what+" ops", false); err != nil {
			return err
		}
	}
	return nil
}

// Find returns the node with the given ID, or nil.
func (s *Spec) Find(id int) *Node {
	for i := range s.Nodes {
		if s.Nodes[i].ID == id {
			return &s.Nodes[i]
		}
	}
	return nil
}

// IDs returns the node IDs in ascending order.
func (s *Spec) IDs() []int {
	ids := make([]int, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)
	return ids
}

// FabricAddrs returns the fabric address map every live replica process
// must agree on — the programmatic form of the -peers string.
func (s *Spec) FabricAddrs() map[runtime.NodeID]string {
	addrs := make(map[runtime.NodeID]string, len(s.Nodes))
	for _, n := range s.Nodes {
		addrs[runtime.NodeID(n.ID)] = n.Fabric
	}
	return addrs
}

// PeerString renders the -peers flag value: "1=host:port,2=host:port",
// ascending by ID.
func (s *Spec) PeerString() string {
	parts := make([]string, 0, len(s.Nodes))
	for _, id := range s.IDs() {
		parts = append(parts, fmt.Sprintf("%d=%s", id, s.Find(id).Fabric))
	}
	return strings.Join(parts, ",")
}

// DataDirOf returns the durability directory for a node: its explicit
// DataDir, else DataRoot/node-<id>, else "" (volatile).
func (s *Spec) DataDirOf(id int) string {
	n := s.Find(id)
	if n == nil {
		return ""
	}
	if n.DataDir != "" {
		return n.DataDir
	}
	if s.DataRoot != "" {
		return filepath.Join(s.DataRoot, fmt.Sprintf("node-%d", id))
	}
	return ""
}

// Flags renders the marpd argv a node would run with if it consumed the
// spec by hand — what `marpctl spec expand` prints, and a readable
// definition of exactly which settings -spec derives.
func (s *Spec) Flags(id int) []string {
	n := s.Find(id)
	if n == nil {
		return nil
	}
	args := []string{"-mode", "live", "-node", strconv.Itoa(id), "-peers", s.PeerString()}
	if n.Client != "" {
		args = append(args, "-addr", n.Client)
	}
	if n.Ops != "" {
		args = append(args, "-ops", n.Ops)
	}
	if dir := s.DataDirOf(id); dir != "" {
		args = append(args, "-data-dir", dir)
	}
	if s.Fsync != "" {
		args = append(args, "-fsync", s.Fsync)
	}
	if s.Shards != 0 {
		args = append(args, "-shards", strconv.Itoa(s.Shards))
	}
	if s.Geometry != "" {
		args = append(args, "-geometry", s.Geometry)
	}
	if s.Codec != "" {
		args = append(args, "-codec", s.Codec)
	}
	if s.Seed != 0 {
		args = append(args, "-seed", strconv.FormatInt(s.Seed, 10))
	}
	if s.CommitDelay != "" {
		args = append(args, "-commit-delay", s.CommitDelay)
	}
	if s.AckDelay != "" {
		args = append(args, "-ack-delay", s.AckDelay)
	}
	return args
}

// ParsePeers turns "1=host:port,2=host:port,..." into the address map
// every live replica process must agree on. Unlike a plain map insert it
// rejects duplicate IDs — a typo like "1=a,1=b" used to silently drop
// an address.
func ParsePeers(spec string) (map[runtime.NodeID]string, error) {
	addrs := make(map[runtime.NodeID]string)
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad peer id %q", id)
		}
		if prev, dup := addrs[runtime.NodeID(n)]; dup {
			return nil, fmt.Errorf("duplicate peer id %d (%s and %s)", n, prev, addr)
		}
		addrs[runtime.NodeID(n)] = addr
	}
	return addrs, nil
}

// ValidatePeers checks a parsed peer map from one process's standpoint:
// the process's own ID must appear, and every address must parse as
// host:port.
func ValidatePeers(self runtime.NodeID, addrs map[runtime.NodeID]string) error {
	if self < 1 {
		return fmt.Errorf("node id %d, want >= 1", self)
	}
	if _, ok := addrs[self]; !ok {
		return fmt.Errorf("peers have no entry for this process (node %d)", self)
	}
	for id, addr := range addrs {
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return fmt.Errorf("peer %d: bad address %q: %v", id, addr, err)
		}
	}
	return nil
}
