package clusterspec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/runtime"
)

const sampleTOML = `
# Three durable replicas on localhost.
name = "demo"
shards = 4
geometry = "grid"
fsync = "commit"
commit_delay = "200us"
seed = 7
data_root = "/tmp/marp-demo"

[[node]]
id = 1
fabric = "127.0.0.1:7801"
client = "127.0.0.1:7707"
ops = "127.0.0.1:9101"

[[node]]
id = 2
fabric = "127.0.0.1:7802"   # trailing comment
client = "127.0.0.1:7708"
ops = "127.0.0.1:9102"

[[node]]
id = 3
fabric = "127.0.0.1:7803"
client = "127.0.0.1:7709"
ops = "127.0.0.1:9103"
data_dir = "/tmp/elsewhere"
`

func TestParseTOML(t *testing.T) {
	s, err := ParseTOML([]byte(sampleTOML))
	if err != nil {
		t.Fatalf("ParseTOML: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Name != "demo" || s.Shards != 4 || s.Geometry != "grid" ||
		s.CommitDelay != "200us" || s.Seed != 7 {
		t.Errorf("top-level fields wrong: %+v", s)
	}
	if len(s.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(s.Nodes))
	}
	if s.Nodes[1].Fabric != "127.0.0.1:7802" {
		t.Errorf("node 2 fabric = %q (comment stripping broken?)", s.Nodes[1].Fabric)
	}
	if got := s.PeerString(); got != "1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803" {
		t.Errorf("PeerString = %q", got)
	}
	if got := s.DataDirOf(1); got != filepath.Join("/tmp/marp-demo", "node-1") {
		t.Errorf("DataDirOf(1) = %q", got)
	}
	if got := s.DataDirOf(3); got != "/tmp/elsewhere" {
		t.Errorf("DataDirOf(3) = %q (explicit data_dir should win)", got)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"bad table", "[cluster]\n", "unsupported table"},
		{"no equals", "shards\n", "key = value"},
		{"unknown key", `color = "red"`, "unknown key"},
		{"unknown node key", "[[node]]\nport = 7\n", "unknown [[node]] key"},
		{"bare string", "name = demo\n", "bad value"},
		{"string for int", `shards = "4"`, "want an integer"},
		{"int for string", "name = 3\n", "want a quoted string"},
		{"missing value", "name =\n", "missing value"},
	}
	for _, c := range cases {
		if _, err := ParseTOML([]byte(c.in)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func validSpec() *Spec {
	return &Spec{
		Shards:   2,
		Geometry: "majority",
		Nodes: []Node{
			{ID: 1, Fabric: "127.0.0.1:7801", Client: "127.0.0.1:7707", Ops: "127.0.0.1:9101"},
			{ID: 2, Fabric: "127.0.0.1:7802"},
			{ID: 3, Fabric: "127.0.0.1:7803"},
		},
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }, "no nodes"},
		{"duplicate id", func(s *Spec) { s.Nodes[1].ID = 1 }, "duplicate node id"},
		{"zero id", func(s *Spec) { s.Nodes[0].ID = 0 }, "want >= 1"},
		{"missing fabric", func(s *Spec) { s.Nodes[2].Fabric = "" }, "missing address"},
		{"unparseable fabric", func(s *Spec) { s.Nodes[0].Fabric = "localhost" }, "bad address"},
		{"hostless fabric", func(s *Spec) { s.Nodes[0].Fabric = ":7801" }, "no host"},
		{"duplicate address", func(s *Spec) { s.Nodes[1].Fabric = "127.0.0.1:7801" }, "already used"},
		{"bad client", func(s *Spec) { s.Nodes[0].Client = "nope" }, "bad address"},
		{"bad geometry", func(s *Spec) { s.Geometry = "ring" }, "geometry"},
		{"bad fsync", func(s *Spec) { s.Fsync = "sometimes" }, "fsync"},
		{"bad codec", func(s *Spec) { s.Codec = "xml" }, "codec"},
		{"bad delay", func(s *Spec) { s.CommitDelay = "fast" }, "commit_delay"},
		{"negative delay", func(s *Spec) { s.AckDelay = "-1ms" }, "negative"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(s)
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestLoadJSONAndTOML(t *testing.T) {
	dir := t.TempDir()
	tomlPath := filepath.Join(dir, "c.toml")
	if err := os.WriteFile(tomlPath, []byte(sampleTOML), 0o644); err != nil {
		t.Fatal(err)
	}
	fromTOML, err := Load(tomlPath)
	if err != nil {
		t.Fatalf("Load toml: %v", err)
	}
	jsonPath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(jsonPath, []byte(`{
		"name": "demo", "shards": 4, "geometry": "grid", "fsync": "commit",
		"commit_delay": "200us", "seed": 7, "data_root": "/tmp/marp-demo",
		"nodes": [
			{"id": 1, "fabric": "127.0.0.1:7801", "client": "127.0.0.1:7707", "ops": "127.0.0.1:9101"},
			{"id": 2, "fabric": "127.0.0.1:7802", "client": "127.0.0.1:7708", "ops": "127.0.0.1:9102"},
			{"id": 3, "fabric": "127.0.0.1:7803", "client": "127.0.0.1:7709", "ops": "127.0.0.1:9103", "data_dir": "/tmp/elsewhere"}
		]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(jsonPath)
	if err != nil {
		t.Fatalf("Load json: %v", err)
	}
	if !reflect.DeepEqual(fromTOML, fromJSON) {
		t.Errorf("TOML and JSON forms disagree:\ntoml: %+v\njson: %+v", fromTOML, fromJSON)
	}
	if _, err := Load(filepath.Join(dir, "missing.toml")); err == nil {
		t.Error("Load of missing file succeeded")
	}
	badPath := filepath.Join(dir, "c.yaml")
	os.WriteFile(badPath, []byte("x"), 0o644)
	if _, err := Load(badPath); err == nil || !strings.Contains(err.Error(), "unknown spec format") {
		t.Errorf("Load .yaml err = %v", err)
	}
}

func TestFlags(t *testing.T) {
	s, err := ParseTOML([]byte(sampleTOML))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Flags(2)
	want := []string{
		"-mode", "live", "-node", "2",
		"-peers", "1=127.0.0.1:7801,2=127.0.0.1:7802,3=127.0.0.1:7803",
		"-addr", "127.0.0.1:7708",
		"-ops", "127.0.0.1:9102",
		"-data-dir", filepath.Join("/tmp/marp-demo", "node-2"),
		"-fsync", "commit",
		"-shards", "4",
		"-geometry", "grid",
		"-seed", "7",
		"-commit-delay", "200us",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Flags(2) =\n%v\nwant\n%v", got, want)
	}
	if s.Flags(9) != nil {
		t.Error("Flags of unknown node should be nil")
	}
}

func TestParsePeers(t *testing.T) {
	addrs, err := ParsePeers("1=127.0.0.1:7801, 2=127.0.0.1:7802")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(addrs) != 2 || addrs[1] != "127.0.0.1:7801" {
		t.Errorf("addrs = %v", addrs)
	}
	for _, bad := range []struct{ in, wantErr string }{
		{"1=a:1,1=b:2", "duplicate peer id"},
		{"one=a:1", "bad peer id"},
		{"0=a:1", "bad peer id"},
		{"justanaddr", "want id=host:port"},
	} {
		if _, err := ParsePeers(bad.in); err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("ParsePeers(%q) err = %v, want %q", bad.in, err, bad.wantErr)
		}
	}
}

func TestValidatePeers(t *testing.T) {
	addrs := map[runtime.NodeID]string{1: "127.0.0.1:7801", 2: "127.0.0.1:7802"}
	if err := ValidatePeers(1, addrs); err != nil {
		t.Errorf("ValidatePeers(self present): %v", err)
	}
	if err := ValidatePeers(3, addrs); err == nil || !strings.Contains(err.Error(), "no entry for this process") {
		t.Errorf("missing self err = %v", err)
	}
	if err := ValidatePeers(0, addrs); err == nil {
		t.Error("ValidatePeers accepted node 0")
	}
	bad := map[runtime.NodeID]string{1: "notanaddr"}
	if err := ValidatePeers(1, bad); err == nil || !strings.Contains(err.Error(), "bad address") {
		t.Errorf("bad addr err = %v", err)
	}
}
