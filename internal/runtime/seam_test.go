package runtime_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestProtocolPackagesStayEngineNeutral enforces the runtime seam at build
// time: the protocol packages may depend on the runtime interfaces only,
// never on a concrete engine. If this test fails, engine-specific types have
// leaked back into protocol code and the live deployment no longer runs the
// same implementation as the simulator.
//
// Test files are exempt: they legitimately use the DES engine as a
// deterministic oracle for protocol behaviour.
func TestProtocolPackagesStayEngineNeutral(t *testing.T) {
	protocol := []string{"agent", "replica", "core", "reliable", "optimistic"}
	forbidden := []string{"repro/internal/des", "repro/internal/simnet", "repro/internal/runtime/live", "repro/internal/desengine"}

	fset := token.NewFileSet()
	for _, pkg := range protocol {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import %s", path, imp.Path.Value)
				}
				for _, bad := range forbidden {
					if ipath == bad {
						t.Errorf("%s imports %s: protocol packages must depend only on internal/runtime interfaces", path, ipath)
					}
				}
			}
		}
	}
}
