// Package live implements the runtime seam on real infrastructure: wall
// clock timers, one OS process per replica, and a gob-over-TCP fabric on
// which mobile agents migrate as serialized wire state.
//
// The protocol packages are written for a single-threaded execution
// context — the discrete-event simulator runs every callback on one
// goroutine, and the code carries no locks. The live engine preserves that
// contract with an actor loop: all protocol callbacks (timer fires, message
// deliveries, client submits) are injected into one goroutine and run
// there, one at a time. Concurrency lives at the edges (socket readers and
// writers, the wall-clock timer wheel), never inside protocol state.
package live

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/runtime"
)

var _ runtime.Engine = (*Engine)(nil)

// Engine is the live implementation of runtime.Engine. Create one per
// process with NewEngine and stop it with Close.
type Engine struct {
	start time.Time
	rng   *rand.Rand // guarded by the loop: only touched from loop callbacks
	inbox chan func()
	quit  chan struct{}
	once  sync.Once
}

// NewEngine starts the engine's actor loop. The seed feeds the protocol's
// random source; unlike the simulator, equal seeds do not make live runs
// identical (the wall clock and the network interleave for real).
func NewEngine(seed int64) *Engine {
	e := &Engine{
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		inbox: make(chan func(), 1024),
		quit:  make(chan struct{}),
	}
	go e.loop()
	return e
}

func (e *Engine) loop() {
	for {
		select {
		case fn := <-e.inbox:
			fn()
		case <-e.quit:
			return
		}
	}
}

// Inject schedules fn to run on the engine's execution context. It is safe
// from any goroutine and never blocks forever: after Close the function is
// silently discarded.
func (e *Engine) Inject(fn func()) {
	select {
	case e.inbox <- fn:
	case <-e.quit:
	}
}

// Do runs fn on the engine's execution context and waits for it to finish.
// It reports false when the engine closed before fn could run.
func (e *Engine) Do(fn func()) bool {
	done := make(chan struct{})
	e.Inject(func() {
		defer close(done)
		fn()
	})
	select {
	case <-done:
		return true
	case <-e.quit:
		return false
	}
}

// Close stops the actor loop. Idempotent.
func (e *Engine) Close() { e.once.Do(func() { close(e.quit) }) }

// Now returns wall-clock time since the engine started.
func (e *Engine) Now() runtime.Time { return runtime.Time(time.Since(e.start)) }

// Rand returns the engine's seeded random source. It must only be used
// from loop callbacks, which is exactly how protocol code reaches it.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// AfterFunc schedules fn on the actor loop d from now.
func (e *Engine) AfterFunc(d time.Duration, fn func()) runtime.Timer {
	if d < 0 {
		d = 0
	}
	lt := &liveTimer{}
	lt.t = time.AfterFunc(d, func() {
		lt.mu.Lock()
		lt.fired = true
		lt.mu.Unlock()
		e.Inject(fn)
	})
	return runtime.MakeTimer(lt)
}

// Sleep blocks the caller for d of wall-clock time while the actor loop
// keeps running — the live counterpart of advancing virtual time.
func (e *Engine) Sleep(d time.Duration) { time.Sleep(d) }

// Wait polls done() on the actor loop until it reports true or the time
// budget elapses (runtime.ErrDeadline). A live engine never stalls: the
// wall clock always advances, so runtime.ErrStalled is returned only when
// the engine is closed underneath the wait.
func (e *Engine) Wait(d time.Duration, done func() bool) error {
	start := time.Now()
	deadline := start.Add(d)
	for {
		var ok bool
		if !e.Do(func() { ok = done() }) {
			return runtime.ErrStalled
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return runtime.ErrDeadline
		}
		// Poll finely at first and back off as the wait drags on: the
		// interval tracks 1/64 of the elapsed wait (200µs floor, 5ms
		// ceiling), so the overshoot past done() stays ~2% of the
		// workload's makespan whether it runs for milliseconds or
		// minutes. A fixed coarse tick was a measurable makespan tail
		// for the sub-100ms A9 cells.
		iv := time.Since(start) / 64
		if iv < 200*time.Microsecond {
			iv = 200 * time.Microsecond
		} else if iv > 5*time.Millisecond {
			iv = 5 * time.Millisecond
		}
		time.Sleep(iv)
	}
}

// liveTimer adapts time.Timer to runtime.TimerHandle. The mutex makes
// Active/Cancel safe against the timer goroutine marking the fire.
type liveTimer struct {
	mu    sync.Mutex
	t     *time.Timer
	fired bool
}

func (lt *liveTimer) Active() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return !lt.fired && lt.t != nil
}

func (lt *liveTimer) Cancel() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.fired || lt.t == nil {
		return false
	}
	stopped := lt.t.Stop()
	lt.t = nil
	return stopped
}
