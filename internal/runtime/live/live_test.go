package live_test

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/disk"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/store"
	"repro/internal/wal"
)

// freeAddrs reserves n distinct loopback addresses by briefly listening on
// ephemeral ports. The tiny window between Close and the node's own Listen
// is an accepted test-only race.
func freeAddrs(t *testing.T, n int) map[runtime.NodeID]string {
	t.Helper()
	addrs := make(map[runtime.NodeID]string, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[runtime.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// sharedReferee spans all processes of a live cluster: each node's OnGrant
// hook feeds one global single-claimant oracle, restoring the cross-replica
// view the in-process referee has for free on the simulator.
type sharedReferee struct {
	mu  sync.Mutex
	ref *core.Referee
}

func newSharedReferee(n int) *sharedReferee {
	start := time.Now()
	return &sharedReferee{
		ref: core.NewReferee(n, func() runtime.Time { return runtime.Time(time.Since(start)) }),
	}
}

func (s *sharedReferee) onGrant(server runtime.NodeID, shrd int, txn agent.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ref.OnGrant(server, shrd, txn)
}

func (s *sharedReferee) report() (wins int, violations []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ref.Wins(), s.ref.Violations()
}

// startLiveCluster brings up one live node per replica, all in this process,
// wired through real TCP sockets.
func startLiveCluster(t *testing.T, n int, cfg core.Config) ([]*live.Node, *sharedReferee) {
	t.Helper()
	addrs := freeAddrs(t, n)
	ref := newSharedReferee(n)
	nodes := make([]*live.Node, n)
	for i := 1; i <= n; i++ {
		c := cfg
		c.OnGrant = ref.onGrant
		node, err := live.StartNode(live.NodeConfig{
			Self:    runtime.NodeID(i),
			Addrs:   addrs,
			Seed:    int64(100 + i),
			Cluster: c,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i-1] = node
		t.Cleanup(node.Close)
	}
	return nodes, ref
}

// submitAt runs a Submit on the owning node's actor loop.
func submitAt(t *testing.T, node *live.Node, home runtime.NodeID, reqs ...core.Request) {
	t.Helper()
	var err error
	if !node.Eng.Do(func() { err = node.Cluster.Submit(home, reqs...) }) {
		t.Fatal("engine closed during submit")
	}
	if err != nil {
		t.Fatal(err)
	}
}

// fullLog concatenates every shard's commit log of one replica. With one
// shard this is exactly the replica's single log; sharded replicas keep one
// log per shard and equivalence checks must see all of them.
func fullLog(srv *replica.Server) []store.Update {
	var log []store.Update
	for sh := 0; sh < srv.Shards(); sh++ {
		log = append(log, srv.StoreOf(sh).Log()...)
	}
	return log
}

// localLog snapshots the commit log of the node's own replica (all shards).
func localLog(t *testing.T, node *live.Node, self runtime.NodeID) []store.Update {
	t.Helper()
	var log []store.Update
	if !node.Eng.Do(func() { log = fullLog(node.Cluster.Server(self)) }) {
		t.Fatal("engine closed during log read")
	}
	return log
}

// commitSet reduces a log to its engine-independent content: the set of
// (key, txn, data) triples. Seq and Stamp are deliberately excluded — the
// global commit order is an artefact of scheduling, so two correct engines
// (or two runs of the live one) may commit the same transactions in
// different orders.
func commitSet(log []store.Update) map[string]bool {
	set := make(map[string]bool, len(log))
	for _, u := range log {
		set[u.Key+"\x00"+u.TxnID+"\x00"+u.Data] = true
	}
	return set
}

// normalizeTxns rewrites each entry's TxnID ("A<home>.<seq>") to its home
// prefix ("A<home>"). Agent sequence numbers are an engine artefact — the
// simulator allocates them from one cluster-global counter, a live
// deployment from one counter per process — so cross-ENGINE comparison must
// ignore them, while cross-REPLICA comparison within one run keeps them.
func normalizeTxns(set map[string]bool) map[string]bool {
	out := make(map[string]bool, len(set))
	for k := range set {
		parts := strings.SplitN(k, "\x00", 3)
		if i := strings.IndexByte(parts[1], '.'); i >= 0 {
			parts[1] = parts[1][:i]
		}
		out[strings.Join(parts, "\x00")] = true
	}
	return out
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// waitConverged polls until every node's local replica holds exactly the
// same commit set of the expected size.
func waitConverged(t *testing.T, nodes []*live.Node, want int, deadline time.Duration) []map[string]bool {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		sets := make([]map[string]bool, len(nodes))
		ok := true
		for i, node := range nodes {
			sets[i] = commitSet(localLog(t, node, runtime.NodeID(i+1)))
			if len(sets[i]) != want || !equalSets(sets[i], sets[0]) {
				ok = false
			}
		}
		if ok {
			return sets
		}
		if time.Now().After(end) {
			for i := range sets {
				t.Logf("replica %d: %d commits", i+1, len(sets[i]))
			}
			t.Fatalf("replicas did not converge on %d commits within %v", want, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLiveClusterMigratesAndConverges is the live engine's basic liveness
// check: three replica processes (in-process here, real sockets between
// them), concurrent writers on every node, agents physically migrating as
// serialized state, every replica ending with the identical committed log.
func TestLiveClusterMigratesAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	nodes, ref := startLiveCluster(t, 3, core.Config{})

	const perNode = 3
	for i, node := range nodes {
		home := runtime.NodeID(i + 1)
		for s := 1; s <= perNode; s++ {
			submitAt(t, node, home, core.Set(fmt.Sprintf("k%d-%d", home, s), fmt.Sprintf("v%d-%d", home, s)))
		}
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	waitConverged(t, nodes, 3*perNode, 10*time.Second)

	// Agents must have genuinely crossed sockets: every update visits a
	// majority, so each node's platform completed remote migrations.
	migrations := 0
	for _, node := range nodes {
		var st agent.Stats
		node.Eng.Do(func() { st = node.Cluster.Platform().Stats() })
		migrations += st.MigrationsCompleted
	}
	if migrations == 0 {
		t.Fatal("no agent migrations happened — agents never left their home process")
	}

	wins, violations := ref.report()
	if len(violations) > 0 {
		t.Fatalf("shared referee saw %d violation(s): %s", len(violations), violations[0])
	}
	if wins < 3*perNode {
		t.Fatalf("referee saw %d majority wins, want >= %d (one per committed txn)", wins, 3*perNode)
	}
}

// TestCrossEngineEquivalence runs the same workload once on the discrete-
// event simulator and once on a three-process live deployment, then checks
// that both engines commit exactly the same transaction set and that every
// replica of both runs ends in the same final store state.
//
// Equality is on commit *sets*, not sequences: MARP totally orders updates
// within one run (the store's Seq), but which interleaving wins is an
// artefact of scheduling, so the two engines may order commits differently.
// The workload therefore gives every transaction its own key — making the
// final per-key state order-independent — plus one deliberately contended
// key whose committed-writer set must still match even though its final
// value may legitimately differ between engines.
func TestCrossEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	const n, perNode = 3, 3
	type write struct {
		home       runtime.NodeID
		key, value string
	}
	var workload []write
	for home := 1; home <= n; home++ {
		for s := 1; s <= perNode; s++ {
			workload = append(workload, write{
				home:  runtime.NodeID(home),
				key:   fmt.Sprintf("k%d-%d", home, s),
				value: fmt.Sprintf("v%d-%d", home, s),
			})
		}
		workload = append(workload, write{
			home:  runtime.NodeID(home),
			key:   "hot",
			value: fmt.Sprintf("h%d", home),
		})
	}
	total := len(workload)

	// Engine 1: the simulator.
	des, err := desengine.New(desengine.Config{Seed: 42, Cluster: core.Config{N: n}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload {
		if err := des.Submit(w.home, core.Set(w.key, w.value)); err != nil {
			t.Fatal(err)
		}
	}
	if err := des.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	des.Settle(time.Second)
	if err := des.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	desSet := commitSet(des.Server(1).Store().Log())

	// Engine 2: three live replica processes.
	nodes, ref := startLiveCluster(t, n, core.Config{})
	for _, w := range workload {
		submitAt(t, nodes[w.home-1], w.home, core.Set(w.key, w.value))
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("live node %d: %v", i+1, err)
		}
	}
	liveSets := waitConverged(t, nodes, total, 10*time.Second)

	if _, violations := ref.report(); len(violations) > 0 {
		t.Fatalf("shared referee saw violations: %s", violations[0])
	}

	// Same transactions committed, on every replica of both engines.
	if !equalSets(normalizeTxns(desSet), normalizeTxns(liveSets[0])) {
		t.Fatalf("commit sets differ:\nsim:  %d commits\nlive: %d commits", len(desSet), len(liveSets[0]))
	}

	// Single-writer keys must agree on final state across engines too.
	for _, w := range workload {
		if w.key == "hot" {
			continue
		}
		dv, ok := des.Read(1, w.key)
		if !ok || dv.Data != w.value {
			t.Fatalf("sim: %s = %q (%v), want %q", w.key, dv.Data, ok, w.value)
		}
		var lv store.Value
		var lok bool
		nodes[0].Eng.Do(func() { lv, lok = nodes[0].Cluster.Read(1, w.key) })
		if !lok || lv.Data != dv.Data {
			t.Fatalf("live: %s = %q (%v), sim has %q", w.key, lv.Data, lok, dv.Data)
		}
	}
}

// keyDigests reduces a commit log to one digest per key: the sorted set of
// (txn, data) pairs committed to that key, joined into a canonical string.
// Commit order is excluded for the same reason commitSet excludes Seq. With
// normalize set, agent sequence numbers are stripped from the TxnIDs (see
// normalizeTxns) so the digests compare across engines.
func keyDigests(log []store.Update, normalize bool) map[string]string {
	byKey := map[string][]string{}
	for _, u := range log {
		txn := u.TxnID
		if normalize {
			if i := strings.IndexByte(txn, '.'); i >= 0 {
				txn = txn[:i]
			}
		}
		byKey[u.Key] = append(byKey[u.Key], txn+"="+u.Data)
	}
	out := make(map[string]string, len(byKey))
	for k, entries := range byKey {
		sort.Strings(entries)
		out[k] = strings.Join(entries, "|")
	}
	return out
}

func equalDigests(t *testing.T, label string, a, b map[string]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d keys vs %d keys", label, len(a), len(b))
	}
	for k, d := range a {
		if b[k] != d {
			t.Fatalf("%s: key %q digests differ:\n  %s\n  %s", label, k, d, b[k])
		}
	}
}

// TestCrossEngineEquivalenceSharded is the sharded, multi-key version of
// the cross-engine check: the same contended workload — every server
// updates every key of a small universe — runs once on the simulator and
// once on a three-process live deployment, both with four shards. Every
// replica of both runs must end with the same per-key commit-set digest:
// hash routing may spread the keys across shard-local locking lists and
// logs, but it must not lose, duplicate, or cross-wire a single commit.
func TestCrossEngineEquivalenceSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	const n, shards, keys = 3, 4, 8
	type write struct {
		home       runtime.NodeID
		key, value string
	}
	var workload []write
	for home := 1; home <= n; home++ {
		for k := 0; k < keys; k++ {
			workload = append(workload, write{
				home:  runtime.NodeID(home),
				key:   fmt.Sprintf("key-%d", k),
				value: fmt.Sprintf("v%d-%d", home, k),
			})
		}
	}
	total := len(workload)

	// Engine 1: the simulator, four shards.
	des, err := desengine.New(desengine.Config{Seed: 42, Cluster: core.Config{N: n, Shards: shards}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload {
		if err := des.Submit(w.home, core.Set(w.key, w.value)); err != nil {
			t.Fatal(err)
		}
	}
	if err := des.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	des.Settle(time.Second)
	if err := des.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	desDigest := keyDigests(fullLog(des.Server(1)), false)
	if len(desDigest) != keys {
		t.Fatalf("sim committed to %d keys, want %d", len(desDigest), keys)
	}
	for id := 2; id <= n; id++ {
		equalDigests(t, fmt.Sprintf("sim replica 1 vs %d", id),
			desDigest, keyDigests(fullLog(des.Server(runtime.NodeID(id))), false))
	}

	// Engine 2: three live replica processes, four shards.
	nodes, ref := startLiveCluster(t, n, core.Config{Shards: shards})
	for _, w := range workload {
		submitAt(t, nodes[w.home-1], w.home, core.Set(w.key, w.value))
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("live node %d: %v", i+1, err)
		}
	}
	waitConverged(t, nodes, total, 10*time.Second)
	if _, violations := ref.report(); len(violations) > 0 {
		t.Fatalf("shared referee saw violations: %s", violations[0])
	}
	liveDigest := keyDigests(localLog(t, nodes[0], 1), false)
	for id := 2; id <= n; id++ {
		equalDigests(t, fmt.Sprintf("live replica 1 vs %d", id),
			liveDigest, keyDigests(localLog(t, nodes[id-1], runtime.NodeID(id)), false))
	}

	// Cross-engine: identical per-key commit sets modulo agent sequence
	// numbers, which are an engine artefact (see normalizeTxns).
	equalDigests(t, "sim vs live",
		keyDigests(fullLog(des.Server(1)), true),
		keyDigests(localLog(t, nodes[0], 1), true))
}

// TestCrossEngineEquivalencePipelined re-runs the sharded cross-engine
// check with every live-path optimisation of the A9 fast path switched on
// at once — the zero-alloc wire codec (the default fabric framing),
// migration-ack aggregation, and WAL group commit at fsync=commit — against
// the plain simulator reference. The optimisations only move bytes and
// fsyncs around; the committed transaction set per key must be exactly the
// one the unoptimised protocol produces.
func TestCrossEngineEquivalencePipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	const n, shards, keys = 3, 4, 6
	type write struct {
		home       runtime.NodeID
		key, value string
	}
	var workload []write
	for home := 1; home <= n; home++ {
		for k := 0; k < keys; k++ {
			workload = append(workload, write{
				home:  runtime.NodeID(home),
				key:   fmt.Sprintf("key-%d", k),
				value: fmt.Sprintf("v%d-%d", home, k),
			})
		}
	}
	total := len(workload)

	// Reference: the simulator, no live-path knobs.
	des, err := desengine.New(desengine.Config{Seed: 7, Cluster: core.Config{N: n, Shards: shards}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload {
		if err := des.Submit(w.home, core.Set(w.key, w.value)); err != nil {
			t.Fatal(err)
		}
	}
	if err := des.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	des.Settle(time.Second)
	if err := des.CheckConvergence(); err != nil {
		t.Fatal(err)
	}

	// Live cluster with the full fast path: wire codec (default), batched
	// migration acks, group-committed WAL.
	nodes, ref := startLiveCluster(t, n, core.Config{
		Shards:          shards,
		MigrateAckDelay: 500 * time.Microsecond,
		Durability: &core.DurabilityConfig{
			Backend:          func(runtime.NodeID) disk.Backend { return disk.NewMem() },
			Policy:           wal.PolicyCommit,
			GroupCommitDelay: 200 * time.Microsecond,
		},
	})
	for _, w := range workload {
		submitAt(t, nodes[w.home-1], w.home, core.Set(w.key, w.value))
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("live node %d: %v", i+1, err)
		}
	}
	waitConverged(t, nodes, total, 10*time.Second)
	if _, violations := ref.report(); len(violations) > 0 {
		t.Fatalf("shared referee saw violations: %s", violations[0])
	}

	// The optimised run actually used its machinery.
	var batches, acksBatched int
	for i, node := range nodes {
		var js wal.Stats
		var as agent.Stats
		if !node.Eng.Do(func() { js = node.Cluster.JournalStats(); as = node.Cluster.Platform().Stats() }) {
			t.Fatal("engine closed during stats read")
		}
		batches += js.GroupBatches
		acksBatched += as.AcksBatched
		_ = i
	}
	if batches == 0 {
		t.Fatal("group commit enabled but no batches recorded")
	}
	if acksBatched == 0 {
		t.Fatal("ack aggregation enabled but no acks batched")
	}

	// Replicas agree among themselves...
	liveDigest := keyDigests(localLog(t, nodes[0], 1), false)
	for id := 2; id <= n; id++ {
		equalDigests(t, fmt.Sprintf("live replica 1 vs %d", id),
			liveDigest, keyDigests(localLog(t, nodes[id-1], runtime.NodeID(id)), false))
	}
	// ...and with the unoptimised simulator, modulo agent sequence numbers.
	equalDigests(t, "sim vs pipelined live",
		keyDigests(fullLog(des.Server(1)), true),
		keyDigests(localLog(t, nodes[0], 1), true))
}
