package live

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runtime"
)

// NodeConfig describes one replica process of a live deployment.
type NodeConfig struct {
	// Self is this process's replica ID (1..N).
	Self runtime.NodeID
	// Addrs maps every replica ID — including Self — to its TCP address.
	// All processes must agree on this map.
	Addrs map[runtime.NodeID]string
	// Seed feeds the protocol's random source (retry jitter and the like).
	Seed int64
	// Cluster carries the engine-neutral protocol configuration. N and
	// Local are derived from Addrs/Self and must be left unset.
	Cluster core.Config
}

// Node is one running replica process: an actor-loop engine, a TCP fabric,
// and the same core.Cluster the simulator drives.
type Node struct {
	Eng     *Engine
	Fab     *Fabric
	Cluster *core.Cluster
}

// StartNode brings up the engine, the fabric, and the local replica. The
// node is ready to exchange protocol traffic when StartNode returns; peers
// that are not up yet simply cost a few dropped messages, which the
// protocol's timeouts absorb.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Cluster.N != 0 || cfg.Cluster.Local != nil {
		return nil, fmt.Errorf("live: Cluster.N and Cluster.Local are derived from Addrs; leave them unset")
	}
	cfg.Cluster.N = len(cfg.Addrs)
	cfg.Cluster.Local = []runtime.NodeID{cfg.Self}
	eng := NewEngine(cfg.Seed)
	fab, err := NewFabric(eng, cfg.Self, cfg.Addrs)
	if err != nil {
		eng.Close()
		return nil, err
	}
	cl, err := core.NewCluster(eng, fab, cfg.Cluster)
	if err != nil {
		fab.Close()
		eng.Close()
		return nil, err
	}
	return &Node{Eng: eng, Fab: fab, Cluster: cl}, nil
}

// Close tears the node down: fabric first (stops inbound traffic), then
// the actor loop.
func (n *Node) Close() {
	n.Fab.Close()
	n.Eng.Close()
}
