package live

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/runtime"
	"repro/internal/wal"
)

// NodeConfig describes one replica process of a live deployment.
type NodeConfig struct {
	// Self is this process's replica ID (1..N).
	Self runtime.NodeID
	// Addrs maps every replica ID — including Self — to its TCP address.
	// All processes must agree on this map.
	Addrs map[runtime.NodeID]string
	// Seed feeds the protocol's random source (retry jitter and the like).
	Seed int64
	// DataDir, if non-empty, makes the replica durable: its write-ahead log
	// and snapshots live in this directory, and a restart with the same
	// DataDir replays them before rejoining. Empty keeps the replica
	// volatile (the seed behaviour).
	DataDir string
	// Fsync selects the WAL fsync policy ("commit", "always", "none"; see
	// wal.ParsePolicy). Only meaningful with DataDir.
	Fsync string
	// CommitDelay enables WAL group commit with the given coalescing
	// window (200µs is a good start; zero keeps one fsync per commit
	// barrier). Only meaningful with DataDir and Fsync=commit.
	CommitDelay time.Duration
	// Codec selects the fabric frame encoding: "wire" (default) or "gob"
	// (the legacy reflective codec, kept for the A9 ablation and for
	// talking to pre-wire-codec peers). All processes must agree.
	Codec string
	// Cluster carries the engine-neutral protocol configuration. N and
	// Local are derived from Addrs/Self and must be left unset. Durability
	// is derived from DataDir/Fsync; alternatively, with DataDir empty, an
	// explicit Cluster.Durability supplies a custom backend (the A9 harness
	// uses this to run live nodes against a modelled-latency Mem disk).
	Cluster core.Config
}

// Node is one running replica process: an actor-loop engine, a TCP fabric,
// and the same core.Cluster the simulator drives.
type Node struct {
	Eng     *Engine
	Fab     *Fabric
	Cluster *core.Cluster
}

// StartNode brings up the engine, the fabric, and the local replica. The
// node is ready to exchange protocol traffic when StartNode returns; peers
// that are not up yet simply cost a few dropped messages, which the
// protocol's timeouts absorb.
//
// With NodeConfig.DataDir set, startup begins with a recovery phase: the
// replica replays its journal (snapshot plus WAL suffix) before it attaches
// to the network, then runs an anti-entropy round against its peers to
// fetch whatever it missed while down. A fresh directory replays nothing
// and the node starts empty, exactly like a volatile one.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Cluster.N != 0 || cfg.Cluster.Local != nil {
		return nil, fmt.Errorf("live: Cluster.N and Cluster.Local are derived from Addrs; leave them unset")
	}
	if cfg.Cluster.Durability != nil && cfg.DataDir != "" {
		return nil, fmt.Errorf("live: set either DataDir or an explicit Cluster.Durability, not both")
	}
	cfg.Cluster.N = len(cfg.Addrs)
	cfg.Cluster.Local = []runtime.NodeID{cfg.Self}
	if cfg.DataDir != "" {
		policy, err := wal.ParsePolicy(cfg.Fsync)
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		fsb, err := disk.NewFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		cfg.Cluster.Durability = &core.DurabilityConfig{
			Backend:          func(runtime.NodeID) disk.Backend { return fsb },
			Policy:           policy,
			GroupCommitDelay: cfg.CommitDelay,
		}
	}
	eng := NewEngine(cfg.Seed)
	fab, err := NewFabricOptions(eng, cfg.Self, cfg.Addrs, FabricOptions{Codec: cfg.Codec, Trace: cfg.Cluster.Trace})
	if err != nil {
		eng.Close()
		return nil, err
	}
	cl, err := core.NewCluster(eng, fab, cfg.Cluster)
	if err != nil {
		fab.Close()
		eng.Close()
		return nil, err
	}
	return &Node{Eng: eng, Fab: fab, Cluster: cl}, nil
}

// Close tears the node down: fabric first (stops inbound traffic, so no
// protocol callback can arrive after its journal is gone), then the journal
// (flush and close, so a graceful shutdown leaves nothing to replay), then
// the actor loop. The journal close runs on the actor loop, serialized
// after any callbacks the fabric injected before it closed.
func (n *Node) Close() {
	n.Fab.Close()
	n.Eng.Do(func() {
		if err := n.Cluster.CloseJournals(); err != nil {
			fmt.Printf("live: closing journal: %v\n", err)
		}
	})
	n.Eng.Close()
}
