package live_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
)

// TestLiveRestartRecoversFromDisk is the in-process version of the
// kill-and-restart walkthrough in the README: three durable replicas, one
// stops without closing its journal (as a crashed process would), misses a
// round of commits, and comes back under the same data directory. Restart
// must replay its own commits from the WAL before the socket even opens,
// then pull the missed round via anti-entropy, then keep winning locks.
func TestLiveRestartRecoversFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	const n = 3
	addrs := freeAddrs(t, n)
	ref := newSharedReferee(n)
	dirs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		dirs[i] = t.TempDir()
	}
	start := func(i int) *live.Node {
		node, err := live.StartNode(live.NodeConfig{
			Self:    runtime.NodeID(i),
			Addrs:   addrs,
			Seed:    int64(100 + i),
			DataDir: dirs[i],
			Fsync:   "commit",
			Cluster: core.Config{OnGrant: ref.onGrant},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		return node
	}
	nodes := make([]*live.Node, n)
	for i := 1; i <= n; i++ {
		nodes[i-1] = start(i)
	}
	closed := false
	defer func() {
		for i, node := range nodes {
			if node != nil && !(closed && i == 2) {
				node.Close()
			}
		}
	}()

	// Round 1: everybody commits.
	const perNode = 2
	for i, node := range nodes {
		home := runtime.NodeID(i + 1)
		for s := 1; s <= perNode; s++ {
			submitAt(t, node, home, core.Set(fmt.Sprintf("r1-k%d-%d", home, s), "v"))
		}
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	waitConverged(t, nodes, n*perNode, 10*time.Second)

	// Node 3 dies abruptly: fabric and loop go down, the journal is never
	// closed — exactly what kill -9 leaves behind.
	nodes[2].Fab.Close()
	nodes[2].Eng.Close()
	closed = true

	// Round 2 commits on the surviving majority.
	for i := 0; i < 2; i++ {
		home := runtime.NodeID(i + 1)
		submitAt(t, nodes[i], home, core.Set(fmt.Sprintf("r2-k%d", home), "v"))
	}
	for i := 0; i < 2; i++ {
		if err := nodes[i].Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}

	// Restart under the same data directory. Recovery is synchronous inside
	// StartNode, so by the time it returns the replica already holds every
	// commit it acked before dying — before any peer has said a word.
	nodes[2] = start(3)
	closed = false
	if got := len(localLog(t, nodes[2], 3)); got < n*perNode {
		t.Fatalf("right after restart the log has %d commits, want >= %d from the WAL", got, n*perNode)
	}

	// Anti-entropy supplies round 2, and the reborn node can still win
	// locks itself (its new agent IDs must not collide with its own
	// persisted gone set).
	submitAt(t, nodes[2], 3, core.Set("r2-k3", "v"))
	if err := nodes[2].Cluster.RunUntilDone(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, nodes, n*perNode+3, 15*time.Second)

	if _, violations := ref.report(); len(violations) > 0 {
		t.Fatalf("shared referee saw violations: %s", violations[0])
	}
}
