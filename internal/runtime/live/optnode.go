package live

// The optimistic protocol's live assembly, mirroring StartNode: same
// actor-loop engine, same TCP fabric, a different protocol cluster on top.
// One process hosts one optimistic replica; reconciliation agents migrate
// to the peers over real sockets as wire-encoded state.

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/optimistic"
	"repro/internal/runtime"
	"repro/internal/wal"
)

// OptNodeConfig configures one live optimistic replica process.
type OptNodeConfig struct {
	// Self is this process's replica ID (1..N).
	Self runtime.NodeID
	// Addrs maps every replica ID — including Self — to its TCP address.
	Addrs map[runtime.NodeID]string
	// Seed feeds the protocol's random source.
	Seed int64
	// DataDir, if non-empty, makes the replica durable (FS-backed journal;
	// a restart with the same DataDir replays it before rejoining).
	DataDir string
	// Fsync selects the WAL fsync policy (see wal.ParsePolicy). Only
	// meaningful with DataDir.
	Fsync string
	// Codec selects the fabric frame encoding: "wire" (default) or "gob".
	Codec string
	// GossipInterval overrides the reconciliation launch period (zero
	// keeps the protocol default).
	GossipInterval time.Duration
	// Shards is the keyspace shard count (zero means 1).
	Shards int
}

// OptNode is one running optimistic replica process.
type OptNode struct {
	Eng     *Engine
	Fab     *Fabric
	Cluster *optimistic.Cluster
}

// StartOptNode brings up the engine, the fabric, and the local optimistic
// replica. Unlike the pessimistic StartNode there is no anti-entropy phase
// to run at startup: the periodic reconciliation schedule IS the
// anti-entropy path, and the first launch after recovery advertises the
// journal-restored state to the peers.
func StartOptNode(cfg OptNodeConfig) (*OptNode, error) {
	ocfg := optimistic.Config{
		N:              len(cfg.Addrs),
		Local:          []runtime.NodeID{cfg.Self},
		Shards:         cfg.Shards,
		GossipInterval: cfg.GossipInterval,
	}
	if cfg.DataDir != "" {
		policy, err := wal.ParsePolicy(cfg.Fsync)
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		fsb, err := disk.NewFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		ocfg.Durability = &optimistic.DurabilityConfig{
			Backend: func(runtime.NodeID) disk.Backend { return fsb },
			Policy:  policy,
		}
	}
	eng := NewEngine(cfg.Seed)
	fab, err := NewFabricOptions(eng, cfg.Self, cfg.Addrs, FabricOptions{Codec: cfg.Codec})
	if err != nil {
		eng.Close()
		return nil, err
	}
	var cl *optimistic.Cluster
	var clErr error
	// Journal replay and the first fabric attach run on the actor loop,
	// serialized against inbound deliveries, exactly like StartNode's
	// recovery phase.
	eng.Do(func() { cl, clErr = optimistic.NewCluster(eng, fab, ocfg) })
	if clErr != nil {
		fab.Close()
		eng.Close()
		return nil, clErr
	}
	return &OptNode{Eng: eng, Fab: fab, Cluster: cl}, nil
}

// Close tears the node down: fabric first (no protocol callback can arrive
// after its journal is gone), then the journal on the actor loop, then the
// loop itself.
func (n *OptNode) Close() {
	n.Fab.Close()
	n.Eng.Do(func() {
		if err := n.Cluster.Close(); err != nil {
			fmt.Printf("live: closing optimistic journal: %v\n", err)
		}
	})
	n.Eng.Close()
}
