package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/runtime"
)

var _ runtime.Fabric = (*Fabric)(nil)

// frame is the unit on the wire: one gob-encoded protocol message. From
// identifies the sender (no separate handshake); Size carries the sender's
// modelled payload size so traffic accounting matches across engines.
type frame struct {
	From, To runtime.NodeID
	Size     int
	Payload  any
}

// Fabric is a gob-over-TCP implementation of runtime.Fabric for a fixed
// set of replica processes. Each process listens on its own address and
// lazily dials every peer it first sends to; one outbound connection per
// peer, written by a dedicated goroutine fed from a bounded queue.
//
// Send keeps the seam's fail-stop semantics: when a peer is unreachable or
// its queue is full the message is dropped and the sender finds out by
// protocol timeout, exactly as on the simulated network. Down always
// reports false — a live fabric has no oracle for remote liveness.
type Fabric struct {
	eng   *Engine
	self  runtime.NodeID
	addrs map[runtime.NodeID]string
	ln    net.Listener

	mu       sync.Mutex
	handlers map[runtime.NodeID]runtime.Handler
	peers    map[runtime.NodeID]*peer
	inbound  map[net.Conn]bool
	stats    runtime.NetStats
	closed   bool
	wg       sync.WaitGroup
}

type peer struct {
	out chan frame
}

// NewFabric starts listening on addrs[self] and returns the fabric.
// Peer connections are dialed on first send.
func NewFabric(eng *Engine, self runtime.NodeID, addrs map[runtime.NodeID]string) (*Fabric, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("live: no address for self node %d", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	f := &Fabric{
		eng:      eng,
		self:     self,
		addrs:    addrs,
		ln:       ln,
		handlers: make(map[runtime.NodeID]runtime.Handler),
		peers:    make(map[runtime.NodeID]*peer),
		inbound:  make(map[net.Conn]bool),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the address the fabric actually listens on (useful with
// ":0" test listeners).
func (f *Fabric) Addr() string { return f.ln.Addr().String() }

// WireDelivery reports that payloads are physically serialized: agents
// must migrate as encoded wire state, not live pointers.
func (f *Fabric) WireDelivery() bool { return true }

// Attach registers the handler for a local node.
func (f *Fabric) Attach(id runtime.NodeID, h runtime.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[id] = h
}

// Cost returns a uniform unit cost between distinct nodes — localhost
// deployments have no meaningful topology; agents visit in ID order.
func (f *Fabric) Cost(from, to runtime.NodeID) float64 {
	if from == to {
		return 0
	}
	return 1
}

// Down always reports false: the live fabric cannot observe remote
// liveness; failures surface as protocol timeouts.
func (f *Fabric) Down(runtime.NodeID) bool { return false }

// NetStats implements runtime.StatsSource.
func (f *Fabric) NetStats() runtime.NetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	if f.stats.ByKind != nil {
		s.ByKind = make(map[string]int, len(f.stats.ByKind))
		for k, v := range f.stats.ByKind {
			s.ByKind[k] = v
		}
	}
	return s
}

// Send transmits msg: locally injected when the destination handler lives
// in this process, otherwise queued to the peer's writer. Fire-and-forget.
func (f *Fabric) Send(msg runtime.Message) {
	if msg.From == runtime.None || msg.To == runtime.None {
		panic(fmt.Sprintf("live: message with unset endpoints %+v", msg))
	}
	f.mu.Lock()
	f.stats.MessagesSent++
	f.stats.BytesSent += msg.Size
	if k, ok := msg.Payload.(runtime.Kinder); ok {
		if f.stats.ByKind == nil {
			f.stats.ByKind = make(map[string]int)
		}
		f.stats.ByKind[k.Kind()]++
	}
	if h, ok := f.handlers[msg.To]; ok {
		f.stats.MessagesDelivered++
		f.mu.Unlock()
		f.eng.Inject(func() { h.Deliver(msg) })
		return
	}
	p, err := f.peerLocked(msg.To)
	if err != nil {
		f.stats.MessagesDropped++
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	select {
	case p.out <- frame{From: msg.From, To: msg.To, Size: msg.Size, Payload: msg.Payload}:
	default:
		// Queue full: drop, per fail-stop semantics. The reliable layer or
		// the protocol's own timeouts recover.
		f.mu.Lock()
		f.stats.MessagesDropped++
		f.mu.Unlock()
	}
}

// peerLocked returns (starting if needed) the writer for a remote node.
// Caller holds f.mu.
func (f *Fabric) peerLocked(id runtime.NodeID) (*peer, error) {
	if f.closed {
		return nil, fmt.Errorf("live: fabric closed")
	}
	if p, ok := f.peers[id]; ok {
		return p, nil
	}
	addr, ok := f.addrs[id]
	if !ok {
		return nil, fmt.Errorf("live: unknown node %d", id)
	}
	p := &peer{out: make(chan frame, 256)}
	f.peers[id] = p
	f.wg.Add(1)
	go f.writeLoop(p, addr)
	return p, nil
}

// writeLoop owns one outbound connection: dial lazily per frame, encode,
// and on any error drop the connection (the next frame redials). Frames
// that cannot be sent are counted lost — the live analogue of the fault
// model eating a message on an otherwise healthy link.
func (f *Fabric) writeLoop(p *peer, addr string) {
	defer f.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	drop := func() {
		if conn != nil {
			conn.Close()
			conn, enc = nil, nil
		}
		f.mu.Lock()
		f.stats.MessagesLost++
		f.mu.Unlock()
	}
	for fr := range p.out {
		if conn == nil {
			c, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				drop()
				continue
			}
			conn = c
			enc = gob.NewEncoder(conn)
		}
		if err := enc.Encode(&fr); err != nil {
			drop()
			continue
		}
		f.mu.Lock()
		f.stats.MessagesDelivered++ // handed to the kernel; receipt is the peer's count
		f.mu.Unlock()
	}
	if conn != nil {
		conn.Close()
	}
}

func (f *Fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			continue
		}
		f.inbound[conn] = true
		f.mu.Unlock()
		f.wg.Add(1)
		go f.readLoop(conn)
	}
}

// readLoop decodes inbound frames and injects deliveries onto the actor
// loop, preserving the single-threaded protocol contract.
func (f *Fabric) readLoop(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		conn.Close()
		f.mu.Lock()
		delete(f.inbound, conn)
		f.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var fr frame
		if err := dec.Decode(&fr); err != nil {
			return
		}
		f.mu.Lock()
		h, ok := f.handlers[fr.To]
		if !ok {
			f.stats.MessagesDropped++
			f.mu.Unlock()
			continue
		}
		f.mu.Unlock()
		msg := runtime.Message{From: fr.From, To: fr.To, Payload: fr.Payload, Size: fr.Size}
		f.eng.Inject(func() { h.Deliver(msg) })
	}
}

// Close shuts the listener and all peer writers down and waits for the
// socket goroutines to exit.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	peers := f.peers
	f.peers = make(map[runtime.NodeID]*peer)
	conns := make([]net.Conn, 0, len(f.inbound))
	for c := range f.inbound {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	f.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		close(p.out)
	}
	f.wg.Wait()
}
