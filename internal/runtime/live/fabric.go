package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/wire"
)

var (
	_ runtime.Fabric             = (*Fabric)(nil)
	_ runtime.Partitioner        = (*Fabric)(nil)
	_ runtime.ReachabilitySource = (*Fabric)(nil)
)

// frame is the unit on the wire: one encoded protocol message. From
// identifies the sender (no separate handshake); Size carries the sender's
// modelled payload size so traffic accounting matches across engines.
type frame struct {
	From, To runtime.NodeID
	Size     int
	Payload  any
}

// FabricOptions tunes a Fabric beyond its address book.
type FabricOptions struct {
	// Codec selects the frame encoding: "wire" (default) is the hand-rolled
	// zero-alloc codec from internal/wire, spoken behind a versioned
	// connection preamble; "gob" is the legacy reflective encoding. The two
	// are mutually unintelligible by design — a peer speaking the other one
	// is refused loudly, never mis-decoded (DESIGN.md §11).
	Codec string
	// Trace, if non-nil, receives fabric-level events (currently the
	// once-per-peer writer-queue-overflow notice).
	Trace *trace.Log
}

// Fabric is a TCP implementation of runtime.Fabric for a fixed set of
// replica processes. Each process listens on its own address and lazily
// dials every peer it first sends to; one outbound connection per peer,
// written by a dedicated goroutine fed from a bounded queue. The writer
// drains its whole queue into one reused buffer and hands the kernel a
// single write per drain — frames coalesce under load instead of costing a
// syscall each.
//
// Send keeps the seam's fail-stop semantics: when a peer is unreachable or
// its queue is full the message is dropped and the sender finds out by
// protocol timeout, exactly as on the simulated network. Down always
// reports false — a live fabric has no oracle for remote liveness.
type Fabric struct {
	eng    *Engine
	self   runtime.NodeID
	addrs  map[runtime.NodeID]string
	ln     net.Listener
	gobby  bool // legacy gob codec (FabricOptions.Codec == "gob")
	tracer *trace.Log

	mu       sync.Mutex
	handlers map[runtime.NodeID]runtime.Handler
	peers    map[runtime.NodeID]*peer
	inbound  map[net.Conn]bool
	group    map[runtime.NodeID]int // partition group per node; nil = healed
	stats    runtime.NetStats
	closed   bool
	wg       sync.WaitGroup
}

type peer struct {
	id          runtime.NodeID
	out         chan frame
	dropNoticed bool // the once-per-peer queue-overflow trace fired
}

// NewFabric starts listening on addrs[self] and returns the fabric, using
// the default (wire-codec) options. Peer connections are dialed on first
// send.
func NewFabric(eng *Engine, self runtime.NodeID, addrs map[runtime.NodeID]string) (*Fabric, error) {
	return NewFabricOptions(eng, self, addrs, FabricOptions{})
}

// NewFabricOptions is NewFabric with explicit options.
func NewFabricOptions(eng *Engine, self runtime.NodeID, addrs map[runtime.NodeID]string, opts FabricOptions) (*Fabric, error) {
	switch opts.Codec {
	case "", "wire", "gob":
	default:
		return nil, fmt.Errorf("live: unknown codec %q (want \"wire\" or \"gob\")", opts.Codec)
	}
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("live: no address for self node %d", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	f := &Fabric{
		eng:      eng,
		self:     self,
		addrs:    addrs,
		ln:       ln,
		gobby:    opts.Codec == "gob",
		tracer:   opts.Trace,
		handlers: make(map[runtime.NodeID]runtime.Handler),
		peers:    make(map[runtime.NodeID]*peer),
		inbound:  make(map[net.Conn]bool),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the address the fabric actually listens on (useful with
// ":0" test listeners).
func (f *Fabric) Addr() string { return f.ln.Addr().String() }

// WireDelivery reports that payloads are physically serialized: agents
// must migrate as encoded wire state, not live pointers.
func (f *Fabric) WireDelivery() bool { return true }

// Attach registers the handler for a local node.
func (f *Fabric) Attach(id runtime.NodeID, h runtime.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[id] = h
}

// Cost returns a uniform unit cost between distinct nodes — localhost
// deployments have no meaningful topology; agents visit in ID order.
func (f *Fabric) Cost(from, to runtime.NodeID) float64 {
	if from == to {
		return 0
	}
	return 1
}

// Down always reports false: the live fabric cannot observe remote
// liveness; failures surface as protocol timeouts.
func (f *Fabric) Down(runtime.NodeID) bool { return false }

// Partition implements runtime.Partitioner by filtering at the endpoints:
// frames whose sender and receiver sit in different groups are dropped at
// the sending fabric, and — because each process only learns of a
// partition when the operator's injection reaches it — once more on
// receipt, so a frame from a peer that has not applied the split yet still
// cannot cross it. Nodes not named in any group fall in group 0. Drops are
// counted like any other loss; the reliable layer and protocol timeouts
// see exactly what a switch-level split would produce.
func (f *Fabric) Partition(groups ...[]runtime.NodeID) {
	g := make(map[runtime.NodeID]int)
	for gi, nodes := range groups {
		for _, id := range nodes {
			g[id] = gi + 1
		}
	}
	f.mu.Lock()
	f.group = g
	f.mu.Unlock()
}

// Heal implements runtime.Partitioner: all groups rejoin.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.group = nil
	f.mu.Unlock()
}

// cutLocked reports whether the current partition separates a and b.
// Caller holds f.mu.
func (f *Fabric) cutLocked(a, b runtime.NodeID) bool {
	return f.group != nil && f.group[a] != f.group[b]
}

// Reachable implements runtime.ReachabilitySource: delivery is attempted
// unless an injected partition separates the endpoints. Remote liveness is
// unobservable on a live fabric (Down always reports false), so this is
// exactly the send-side filter Send applies — the state /healthz reads.
func (f *Fabric) Reachable(from, to runtime.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.cutLocked(from, to)
}

// NetStats implements runtime.StatsSource.
func (f *Fabric) NetStats() runtime.NetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	if f.stats.ByKind != nil {
		s.ByKind = make(map[string]int, len(f.stats.ByKind))
		for k, v := range f.stats.ByKind {
			s.ByKind[k] = v
		}
	}
	return s
}

// Send transmits msg: locally injected when the destination handler lives
// in this process, otherwise queued to the peer's writer. Fire-and-forget.
func (f *Fabric) Send(msg runtime.Message) {
	if msg.From == runtime.None || msg.To == runtime.None {
		panic(fmt.Sprintf("live: message with unset endpoints %+v", msg))
	}
	if !f.gobby && !wire.Registered(msg.Payload) {
		// The protocol message set is closed; an unregistered payload is a
		// programming error and must fail before it is queued, not decode
		// as garbage on the peer.
		panic(fmt.Sprintf("live: payload type %T has no wire codec", msg.Payload))
	}
	f.mu.Lock()
	f.stats.MessagesSent++
	f.stats.BytesSent += msg.Size
	if k, ok := msg.Payload.(runtime.Kinder); ok {
		if f.stats.ByKind == nil {
			f.stats.ByKind = make(map[string]int)
		}
		f.stats.ByKind[k.Kind()]++
	}
	if f.cutLocked(msg.From, msg.To) {
		f.stats.MessagesDropped++
		f.mu.Unlock()
		return
	}
	if h, ok := f.handlers[msg.To]; ok {
		f.stats.MessagesDelivered++
		f.mu.Unlock()
		f.eng.Inject(func() { h.Deliver(msg) })
		return
	}
	p, err := f.peerLocked(msg.To)
	if err != nil {
		f.stats.MessagesDropped++
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	select {
	case p.out <- frame{From: msg.From, To: msg.To, Size: msg.Size, Payload: msg.Payload}:
	default:
		// Queue full: drop, per fail-stop semantics. The reliable layer or
		// the protocol's own timeouts recover — but never silently: the
		// drop is counted, and the first one per peer leaves a trace.
		f.mu.Lock()
		f.stats.MessagesDropped++
		f.stats.QueueDrops++
		noticed := p.dropNoticed
		p.dropNoticed = true
		f.mu.Unlock()
		if !noticed {
			f.tracer.Addf(0, int(f.self), "fabric", trace.FabricOverflow,
				"writer queue to S%d full; dropping (counted in QueueDrops)", p.id)
		}
	}
}

// peerLocked returns (starting if needed) the writer for a remote node.
// Caller holds f.mu.
func (f *Fabric) peerLocked(id runtime.NodeID) (*peer, error) {
	if f.closed {
		return nil, fmt.Errorf("live: fabric closed")
	}
	if p, ok := f.peers[id]; ok {
		return p, nil
	}
	addr, ok := f.addrs[id]
	if !ok {
		return nil, fmt.Errorf("live: unknown node %d", id)
	}
	p := &peer{id: id, out: make(chan frame, 256)}
	f.peers[id] = p
	f.wg.Add(1)
	go f.writeLoop(p, addr)
	return p, nil
}

// writeLoop owns one outbound connection: dial lazily per frame, encode,
// and on any error drop the connection (the next frame redials). Frames
// that cannot be sent are counted lost — the live analogue of the fault
// model eating a message on an otherwise healthy link.
//
// Each wake-up drains the whole queue: every pending frame is encoded into
// one reused buffer and flushed with a single conn.Write. Under load the
// per-frame syscall cost amortizes across the batch; an idle fabric still
// sends every frame immediately (a drain of one).
func (f *Fabric) writeLoop(p *peer, addr string) {
	defer f.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder // gob codec only
	var gw *bufio.Writer // gob codec only: flushed once per drain
	var buf []byte       // wire codec only: the reused drain buffer
	batch := make([]frame, 0, 64)
	drop := func(n int) {
		if conn != nil {
			conn.Close()
			conn, enc, gw = nil, nil, nil
		}
		f.mu.Lock()
		f.stats.MessagesLost += n
		f.mu.Unlock()
	}
	for fr := range p.out {
		// Drain: take everything already queued behind fr.
		batch = append(batch[:0], fr)
	fill:
		for {
			select {
			case more, ok := <-p.out:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				drop(len(batch))
				continue
			}
			conn = c
			if f.gobby {
				gw = bufio.NewWriter(conn)
				enc = gob.NewEncoder(gw)
			} else {
				if _, err := conn.Write(wire.Preamble[:]); err != nil {
					drop(len(batch))
					continue
				}
			}
		}
		if err := f.writeBatch(conn, enc, gw, &buf, batch); err != nil {
			drop(len(batch))
			continue
		}
		f.mu.Lock()
		f.stats.MessagesDelivered += len(batch) // handed to the kernel; receipt is the peer's count
		f.mu.Unlock()
	}
	if conn != nil {
		conn.Close()
	}
}

// writeBatch encodes every frame of the batch and hands the kernel one
// write (wire codec) or one Flush (gob).
func (f *Fabric) writeBatch(conn net.Conn, enc *gob.Encoder, gw *bufio.Writer, buf *[]byte, batch []frame) error {
	if f.gobby {
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				return err
			}
		}
		return gw.Flush()
	}
	b := (*buf)[:0]
	for i := range batch {
		fr := &batch[i]
		// Frame: u32 LE body length, then varint From, varint To, varint
		// modelled Size, tagged message.
		lenAt := len(b)
		b = append(b, 0, 0, 0, 0)
		b = wire.AppendVarint(b, int64(fr.From))
		b = wire.AppendVarint(b, int64(fr.To))
		b = wire.AppendVarint(b, int64(fr.Size))
		var err error
		if b, err = wire.AppendMessage(b, fr.Payload); err != nil {
			// Unreachable: Send checks wire.Registered before queueing.
			panic("live: " + err.Error())
		}
		body := len(b) - lenAt - 4
		if body > wire.MaxFrame {
			panic(fmt.Sprintf("live: frame of %d bytes exceeds wire.MaxFrame", body))
		}
		binary.LittleEndian.PutUint32(b[lenAt:], uint32(body))
	}
	*buf = b
	_, err := conn.Write(b)
	return err
}

func (f *Fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			continue
		}
		f.inbound[conn] = true
		f.mu.Unlock()
		f.wg.Add(1)
		go f.readLoop(conn)
	}
}

// readLoop decodes inbound frames and injects deliveries onto the actor
// loop, preserving the single-threaded protocol contract. A peer speaking
// the wrong codec or wire version is refused with a loud complaint — the
// version byte exists so mixed deployments fail fast instead of
// mis-decoding each other.
func (f *Fabric) readLoop(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		conn.Close()
		f.mu.Lock()
		delete(f.inbound, conn)
		f.mu.Unlock()
	}()
	if f.gobby {
		f.readGob(conn)
		return
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var pre [5]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return
	}
	if pre != wire.Preamble {
		detail := "not a MARP wire-codec stream (gob-codec peer?)"
		if bytes.Equal(pre[:4], wire.Preamble[:4]) {
			detail = fmt.Sprintf("wire version %d, want %d", pre[4], wire.Version)
		}
		fmt.Printf("live: S%d refusing connection from %s: %s\n", f.self, conn.RemoteAddr(), detail)
		return
	}
	var body []byte
	r := wire.NewReader(nil)
	r.SetInterner(&wire.Interner{}) // per-connection: decoded strings are canonical
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenb[:])
		if n > wire.MaxFrame {
			fmt.Printf("live: S%d dropping connection from %s: frame of %d bytes exceeds limit\n",
				f.self, conn.RemoteAddr(), n)
			return
		}
		body = wire.Grow(body, int(n))
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		r.Reset(body)
		from := runtime.NodeID(r.Varint())
		to := runtime.NodeID(r.Varint())
		size := int(r.Varint())
		payload, err := wire.DecodeMessage(r)
		if err == nil {
			err = r.Finish()
		}
		if err != nil {
			fmt.Printf("live: S%d dropping connection from %s: %v\n", f.self, conn.RemoteAddr(), err)
			return
		}
		f.deliver(frame{From: from, To: to, Size: size, Payload: payload})
	}
}

// readGob is the legacy decode loop.
func (f *Fabric) readGob(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var fr frame
		if err := dec.Decode(&fr); err != nil {
			return
		}
		f.deliver(fr)
	}
}

// deliver injects one decoded frame onto the actor loop.
func (f *Fabric) deliver(fr frame) {
	f.mu.Lock()
	h, ok := f.handlers[fr.To]
	if !ok || f.cutLocked(fr.From, fr.To) {
		f.stats.MessagesDropped++
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	msg := runtime.Message{From: fr.From, To: fr.To, Payload: fr.Payload, Size: fr.Size}
	f.eng.Inject(func() { h.Deliver(msg) })
}

// Close shuts the listener and all peer writers down and waits for the
// socket goroutines to exit.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	peers := f.peers
	f.peers = make(map[runtime.NodeID]*peer)
	conns := make([]net.Conn, 0, len(f.inbound))
	for c := range f.inbound {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	f.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		close(p.out)
	}
	f.wg.Wait()
}
