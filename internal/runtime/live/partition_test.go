package live_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
)

// TestLivePartitionAndHeal covers the operator-injected network split on
// real sockets: a minority replica is cut off at the endpoints (frames
// dropped on send and on receipt), the majority keeps committing under the
// reliable layer's retransmissions, and healing lets anti-entropy repair
// the minority to the identical commit set.
func TestLivePartitionAndHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test uses wall-clock timeouts")
	}
	const n = 3
	cfg := core.Config{
		Reliable:           true,
		RetransmitBase:     25 * time.Millisecond,
		RetransmitAttempts: 8,
		MigrationTimeout:   150 * time.Millisecond,
		ClaimTimeout:       600 * time.Millisecond,
		RetryInterval:      300 * time.Millisecond,
		RegenerateAgents:   true,
	}
	nodes, ref := startLiveCluster(t, n, cfg)

	// Round 1: everybody commits, everybody converges.
	for i, node := range nodes {
		home := runtime.NodeID(i + 1)
		submitAt(t, node, home, core.Set("r1-k"+string('0'+byte(home)), "v"))
	}
	for i, node := range nodes {
		if err := node.Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	waitConverged(t, nodes, n, 10*time.Second)

	// Split {1,2} | {3} — applied on every process, as the operator's
	// marpctl fan-out would.
	partition := func(groups ...[]runtime.NodeID) {
		for _, node := range nodes {
			node := node
			if !node.Eng.Do(func() { node.Cluster.PartitionNet(groups...) }) {
				t.Fatal("engine closed during partition")
			}
		}
	}
	partition([]runtime.NodeID{1, 2}, []runtime.NodeID{3})

	// The majority side still commits.
	submitAt(t, nodes[0], 1, core.Set("r2-k1", "v"))
	submitAt(t, nodes[1], 2, core.Set("r2-k2", "v"))
	for i := 0; i < 2; i++ {
		if err := nodes[i].Cluster.RunUntilDone(30 * time.Second); err != nil {
			t.Fatalf("majority node %d: %v", i+1, err)
		}
	}

	// The minority replica must not have seen either round-2 commit, and
	// the cut must be visible in the drop accounting.
	if got := len(localLog(t, nodes[2], 3)); got != n {
		t.Fatalf("partitioned replica holds %d commits, want %d (pre-split only)", got, n)
	}
	dropped := 0
	for _, node := range nodes {
		dropped += node.Fab.NetStats().MessagesDropped
	}
	if dropped == 0 {
		t.Fatal("no frames dropped — the partition never filtered anything")
	}

	// Heal everywhere; anti-entropy repairs the minority.
	for _, node := range nodes {
		node := node
		if !node.Eng.Do(func() { node.Cluster.HealNet() }) {
			t.Fatal("engine closed during heal")
		}
	}
	waitConverged(t, nodes, n+2, 20*time.Second)

	if _, violations := ref.report(); len(violations) > 0 {
		t.Fatalf("shared referee saw violations: %s", violations[0])
	}
}
