// Package runtime defines the seam between the MARP protocol layers and
// the engine that executes them. The protocol packages (internal/agent,
// internal/replica, internal/core, internal/reliable) depend only on the
// small interfaces here — a clock with cancellable timers, a seeded random
// source, and a message fabric between nodes — never on a concrete engine.
//
// Two engines implement the seam:
//
//   - the deterministic discrete-event simulator (internal/des as the
//     Engine, internal/simnet as the Fabric), where an entire multi-node
//     execution is a single-threaded, byte-for-byte reproducible function
//     of its seed — the test oracle;
//   - the live engine (internal/runtime/live), where each replica is its
//     own OS process with wall-clock timers and a gob-over-TCP fabric, and
//     mobile agents migrate across real sockets.
//
// The invariant this package exists to protect: engine choice is invisible
// to protocol code. The same agent and server logic that is model-checked
// under simulation is what runs in production.
package runtime

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"time"
)

// NodeID identifies a host. The paper numbers its replicated servers 1..N;
// this package follows that convention (zero is reserved as "no node").
type NodeID int

// None is the zero NodeID, meaning "no node".
const None NodeID = 0

// Time is a virtual timestamp: nanoseconds since the engine's epoch. Under
// the simulation engine the epoch is the start of the simulation and time
// advances only when events fire; under the live engine it is process start
// and time tracks the wall clock.
type Time int64

// Duration converts a timestamp to the duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the timestamp as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Message is a single datagram on the fabric. Payload is an arbitrary
// protocol-level value; Size is the modelled wire size in bytes and exists
// for traffic accounting (a serializing fabric reports real sizes).
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
	Size    int
}

// Kinder is implemented by payloads that want per-kind traffic accounting.
type Kinder interface{ Kind() string }

// Handler receives messages delivered to a node.
type Handler interface {
	Deliver(msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Message)

// Deliver calls f(msg).
func (f HandlerFunc) Deliver(msg Message) { f(msg) }

// NetStats aggregates fabric traffic counters. Losses and duplicates
// injected by a fault model are counted separately from drops, so an
// experiment can tell "the link ate it" apart from "the destination was
// down or partitioned".
type NetStats struct {
	MessagesSent       int
	MessagesDelivered  int
	MessagesDropped    int // destination down, partitioned, or detached
	MessagesLost       int // eaten by the fault model on a live, connected link
	MessagesDuplicated int // delivered twice by the fault model
	QueueDrops         int // live fabric only: a full per-peer writer queue ate it
	BytesSent          int
	ByKind             map[string]int
}

// Fabric is the message-passing surface the protocol layers run on: the
// simulated network, the reliability shim wrapping it, or the live TCP
// fabric. Send is fire-and-forget with fail-stop semantics: a message to an
// unreachable node is silently dropped and the sender finds out by timeout,
// exactly as the paper's system model prescribes (§2).
type Fabric interface {
	Attach(id NodeID, h Handler)
	Send(msg Message)
	Cost(from, to NodeID) float64
	Down(id NodeID) bool
}

// TimerHandle is the engine-specific state behind a Timer. Both methods
// must be safe to call after the timer fired.
type TimerHandle interface {
	// Active reports whether the timer is still pending.
	Active() bool
	// Cancel stops the timer, reporting whether it was still pending.
	Cancel() bool
}

// Timer is a cancellable handle to a scheduled callback. The zero Timer is
// valid and inert — Active is false, Cancel is a no-op — matching the
// semantics protocol code relied on under the simulator.
type Timer struct{ h TimerHandle }

// MakeTimer wraps an engine's timer state in the portable handle.
func MakeTimer(h TimerHandle) Timer { return Timer{h: h} }

// Active reports whether the timer is still pending.
func (t Timer) Active() bool { return t.h != nil && t.h.Active() }

// Cancel stops the timer, reporting whether it was still pending.
func (t Timer) Cancel() bool {
	if t.h == nil {
		return false
	}
	return t.h.Cancel()
}

// Clock tells time and schedules callbacks.
type Clock interface {
	// Now returns the current time.
	Now() Time
	// AfterFunc schedules fn to run d from now. Negative durations are
	// clamped to zero. The callback runs on the engine's execution context
	// (the simulation loop, or the live engine's actor goroutine) — never
	// concurrently with other protocol code.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Errors distinguishing why a Wait gave up. Engines return these wrapped or
// bare; callers test with errors.Is.
var (
	// ErrDeadline reports that the wait's time budget elapsed first.
	ErrDeadline = errors.New("runtime: wait deadline exceeded")
	// ErrStalled reports that the engine ran out of work with the
	// condition still false (only the simulation engine can stall; live
	// time always advances).
	ErrStalled = errors.New("runtime: engine stalled")
)

// Engine is everything the protocol needs from its execution substrate.
type Engine interface {
	Clock
	// Rand returns the engine's seeded random source. All randomness in
	// protocol code must come from here: under simulation that preserves
	// determinism, and the source is only ever touched from the engine's
	// execution context.
	Rand() *rand.Rand
	// Sleep advances time by d, running everything that comes due. Under
	// simulation this is virtual and instant; live it blocks the caller.
	Sleep(d time.Duration)
	// Wait runs the engine until done() reports true, the time budget d
	// elapses (ErrDeadline), or the engine has no work left (ErrStalled).
	// done is polled from the engine's execution context.
	Wait(d time.Duration, done func() bool) error
}

// Capability interfaces: fault-injection surfaces an engine's fabric MAY
// support. Protocol code asserts for them and degrades to a no-op when the
// fabric does not cooperate — the live TCP fabric, for instance, has no
// loss dial, though it does partition (by filtering at the endpoints).

// StatsSource is a fabric that keeps traffic counters.
type StatsSource interface {
	NetStats() NetStats
}

// Crasher is a fabric that can fail-stop a node's connectivity.
type Crasher interface {
	SetDown(id NodeID, down bool)
}

// Partitioner is a fabric that can split nodes into disconnected groups.
type Partitioner interface {
	Partition(groups ...[]NodeID)
	Heal()
}

// ReachabilitySource is a fabric that can report whether it would
// currently attempt delivery from one node to another — the state the
// /healthz quorum computation reads. The answer reflects only what the
// fabric itself knows: the simulated network knows crashes and partitions;
// the live TCP fabric knows the partitions it was told about (remote
// liveness is unobservable there, exactly as for the protocol).
type ReachabilitySource interface {
	Reachable(from, to NodeID) bool
}

// LossController is a fabric whose transient message-loss level can be set
// at run time (zero restores clean links).
type LossController interface {
	SetExtraLoss(p float64)
}

// WireFabric is a fabric that physically serializes payloads — processes at
// each end do not share memory. Over such a fabric the agent platform must
// migrate agents as encoded WireState rather than live pointers.
type WireFabric interface {
	WireDelivery() bool
}

// RegisterWireType registers a payload's concrete type for wire encoding.
// Every package that sends a payload type across a serializing fabric calls
// this from an init function; over the in-memory simulated fabric the
// registration is harmless.
func RegisterWireType(v any) { gob.Register(v) }
