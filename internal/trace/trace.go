// Package trace collects structured events from a simulated execution.
//
// The paper's prototype shipped a Tahiti-based viewer to "visualize the
// execution" of the agents; this package is its headless equivalent. Every
// protocol-relevant action (agent created, migrated, locked, won, committed,
// server crashed, …) is appended as an Event, and examples print the
// resulting timeline. Tracing is optional: a nil *Log is valid and records
// nothing, so hot benchmark paths pay a single nil check.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Type classifies an event.
type Type string

// Event types emitted by the substrates and the protocol.
const (
	AgentCreated   Type = "agent-created"
	AgentMigrate   Type = "agent-migrate"
	AgentArrived   Type = "agent-arrived"
	AgentBlocked   Type = "agent-migrate-failed"
	AgentParked    Type = "agent-parked"
	AgentDisposed  Type = "agent-disposed"
	AgentDied      Type = "agent-died"
	AgentRegen     Type = "agent-regenerated"
	LockRequested  Type = "lock-requested"
	LockReleased   Type = "lock-released"
	ClaimStarted   Type = "claim-started"
	ClaimAborted   Type = "claim-aborted"
	UpdateSent     Type = "update-sent"
	UpdateAcked    Type = "update-acked"
	UpdateNacked   Type = "update-nacked"
	CommitSent     Type = "commit-sent"
	Committed      Type = "committed"
	ServerCrashed  Type = "server-crashed"
	ServerRecover  Type = "server-recovered"
	ServerSynced   Type = "server-synced"
	TieBreak       Type = "tie-break"
	RequestArrived Type = "request-arrived"
	RequestDone    Type = "request-done"
	FabricOverflow Type = "fabric-queue-drop"
)

// Event is one timestamped occurrence.
type Event struct {
	At     int64 // virtual time, nanoseconds since simulation start
	Node   int   // node where the event happened (0 = global)
	Actor  string
	Type   Type
	Detail string
}

// String renders the event as a single timeline line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3fms", float64(e.At)/1e6)
	if e.Node != 0 {
		fmt.Fprintf(&b, "  S%-2d", e.Node)
	} else {
		b.WriteString("  -- ")
	}
	fmt.Fprintf(&b, "  %-22s", string(e.Type))
	if e.Actor != "" {
		fmt.Fprintf(&b, " %-14s", e.Actor)
	}
	if e.Detail != "" {
		b.WriteString(" ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Log is an append-only event collector. The zero value is ready to use; a
// nil *Log discards all events.
//
// Log is safe for concurrent use. Under the simulation engine every Add
// comes from the single event loop and the mutex is uncontended; under the
// live engine client-facing goroutines (transport reads, stats dumps) can
// observe the log while protocol callbacks append to it.
type Log struct {
	mu     sync.Mutex
	events []Event
	limit  int // 0 = unlimited
}

// New returns an empty log. If limit > 0, only the most recent limit events
// are retained (a ring of the tail).
func New(limit int) *Log { return &Log{limit: limit} }

// Enabled reports whether the log is collecting events. Hot paths check it
// before building Addf arguments — Addf on a nil log is a no-op, but Go
// still evaluates the arguments (ID formatting, diagnostic decisions), and
// on the live fast path that evaluation is measurable.
func (l *Log) Enabled() bool { return l != nil }

// Add appends an event. Add on a nil log is a no-op.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
	if l.limit > 0 && len(l.events) > l.limit {
		copy(l.events, l.events[len(l.events)-l.limit:])
		l.events = l.events[:l.limit]
	}
}

// Addf appends an event with a formatted detail string.
func (l *Log) Addf(at int64, node int, actor string, typ Type, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(Event{At: at, Node: node, Actor: actor, Type: typ, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events of the given types, in order.
func (l *Log) Filter(types ...Type) []Event {
	if l == nil {
		return nil
	}
	want := make(map[Type]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if want[e.Type] {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo prints the timeline to w, one event per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	var total int64
	for _, e := range l.Events() {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
