package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Event{Type: AgentCreated})
	l.Addf(1, 2, "a", AgentCreated, "x %d", 1)
	if l.Len() != 0 || l.Events() != nil || l.Filter(AgentCreated) != nil {
		t.Fatal("nil log not inert")
	}
	if n, err := l.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatal("nil WriteTo wrote something")
	}
}

func TestAddAndEvents(t *testing.T) {
	l := New(0)
	l.Add(Event{At: 1, Node: 2, Actor: "A1.1", Type: AgentCreated})
	l.Addf(2, 3, "A1.1", AgentMigrate, "-> S%d", 4)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[1].Detail != "-> S4" {
		t.Fatalf("detail = %q", evs[1].Detail)
	}
	evs[0].Actor = "mutated"
	if l.Events()[0].Actor != "A1.1" {
		t.Fatal("Events aliases log")
	}
}

func TestRingLimit(t *testing.T) {
	l := New(3)
	for i := 0; i < 10; i++ {
		l.Add(Event{At: int64(i)})
	}
	evs := l.Events()
	if len(evs) != 3 || evs[0].At != 7 || evs[2].At != 9 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestFilter(t *testing.T) {
	l := New(0)
	l.Add(Event{Type: AgentCreated})
	l.Add(Event{Type: Committed})
	l.Add(Event{Type: AgentCreated})
	got := l.Filter(AgentCreated)
	if len(got) != 2 {
		t.Fatalf("filter = %+v", got)
	}
	if len(l.Filter(TieBreak)) != 0 {
		t.Fatal("filter matched absent type")
	}
}

func TestEventStringFormat(t *testing.T) {
	e := Event{At: 1_500_000, Node: 3, Actor: "A1.1", Type: AgentMigrate, Detail: "-> S2"}
	s := e.String()
	for _, want := range []string{"1.500ms", "S3", "agent-migrate", "A1.1", "-> S2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	global := Event{At: 0, Node: 0, Type: ServerSynced}
	if !strings.Contains(global.String(), "--") {
		t.Fatalf("global event format: %q", global.String())
	}
}

func TestWriteTo(t *testing.T) {
	l := New(0)
	l.Add(Event{At: 1, Node: 1, Type: AgentCreated})
	l.Add(Event{At: 2, Node: 2, Type: Committed})
	var b strings.Builder
	n, err := l.WriteTo(&b)
	if err != nil || n == 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 2 {
		t.Fatalf("lines = %d", lines)
	}
}

// TestConcurrentAddRace hammers one Log from many goroutines — the live
// engine's transport goroutines read the log while protocol callbacks
// append — and relies on the -race gate in CI to flag unsynchronized
// access.
func TestConcurrentAddRace(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Addf(int64(i), g, "a", Committed, "g%d i%d", g, i)
				if i%10 == 0 {
					_ = l.Events()
					_ = l.Len()
					_ = l.Filter(Committed)
				}
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want ring limit 64", l.Len())
	}
}
