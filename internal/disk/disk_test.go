package disk

import (
	"errors"
	"os"
	"testing"
	"time"
)

// backends under test: the deterministic model and the real filesystem must
// satisfy the same contract wherever both can express it.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	return map[string]Backend{"mem": NewMem(), "fs": fs}
}

func writeAll(t *testing.T, b Backend, name, content string) {
	t.Helper()
	f, err := b.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatalf("Write(%s): %v", name, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync(%s): %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func TestBackendContract(t *testing.T) {
	for label, b := range backends(t) {
		t.Run(label, func(t *testing.T) {
			if _, err := b.ReadFile("absent"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("ReadFile(absent) = %v, want ErrNotExist", err)
			}
			if err := b.Remove("absent"); err != nil {
				t.Fatalf("Remove(absent) = %v, want nil", err)
			}
			writeAll(t, b, "a", "hello")
			// Append extends without truncating.
			f, err := b.Append("a")
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			f.Write([]byte(" world"))
			f.Sync()
			f.Close()
			got, err := b.ReadFile("a")
			if err != nil || string(got) != "hello world" {
				t.Fatalf("ReadFile(a) = %q, %v", got, err)
			}
			// Create truncates.
			writeAll(t, b, "a", "short")
			if got, _ := b.ReadFile("a"); string(got) != "short" {
				t.Fatalf("after Create, ReadFile(a) = %q", got)
			}
			// Rename replaces the target and frees the source name.
			writeAll(t, b, "b", "target")
			if err := b.Rename("a", "b"); err != nil {
				t.Fatalf("Rename: %v", err)
			}
			if got, _ := b.ReadFile("b"); string(got) != "short" {
				t.Fatalf("after Rename, ReadFile(b) = %q", got)
			}
			if _, err := b.ReadFile("a"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("after Rename, ReadFile(a) = %v, want ErrNotExist", err)
			}
			names, err := b.List()
			if err != nil || len(names) != 1 || names[0] != "b" {
				t.Fatalf("List = %v, %v, want [b]", names, err)
			}
			// Truncate chops to a prefix and rejects sizes outside [0, len].
			if err := b.Truncate("b", 2); err != nil {
				t.Fatalf("Truncate: %v", err)
			}
			if got, _ := b.ReadFile("b"); string(got) != "sh" {
				t.Fatalf("after Truncate, ReadFile(b) = %q", got)
			}
			if err := b.Truncate("b", 99); err == nil {
				t.Fatal("Truncate past end succeeded")
			}
			if err := b.Truncate("absent", 0); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Truncate(absent) = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestMemCrashDropsUnsyncedTail(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("f")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte(" volatile"))
	m.Crash()
	got, err := m.ReadFile("f")
	if err != nil || string(got) != "durable" {
		t.Fatalf("after crash, ReadFile = %q, %v; want \"durable\"", got, err)
	}
	// The old handle belongs to the dead process.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed handle = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync on crashed handle = %v, want ErrCrashed", err)
	}
	// A fresh handle appends where the stable prefix ended.
	f2, _ := m.Append("f")
	f2.Write([]byte("!"))
	if got, _ := m.ReadFile("f"); string(got) != "durable!" {
		t.Fatalf("after reopen, ReadFile = %q", got)
	}
}

func TestMemTruncateAndSize(t *testing.T) {
	m := NewMem()
	writeAll(t, m, "f", "0123456789")
	if n := m.Size("f"); n != 10 {
		t.Fatalf("Size = %d, want 10", n)
	}
	if err := m.Truncate("f", 4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got, _ := m.ReadFile("f"); string(got) != "0123" {
		t.Fatalf("after Truncate, ReadFile = %q", got)
	}
	if err := m.Truncate("f", 99); err == nil {
		t.Fatal("Truncate past end succeeded")
	}
	if err := m.Truncate("absent", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Truncate(absent) = %v, want ErrNotExist", err)
	}
}

func TestMemSyncDelayAccountsIntoStats(t *testing.T) {
	m := NewMem()
	m.SyncDelay = func() time.Duration { return 3 * time.Millisecond }
	f, _ := m.Create("f")
	f.Write([]byte("x"))
	f.Sync()
	f.Sync()
	st := m.Stats()
	if st.Syncs != 2 || st.SyncTime != int64(6*time.Millisecond) {
		t.Fatalf("stats = %+v, want 2 syncs, 6ms", st)
	}
	if st.Writes != 1 || st.BytesWritten != 1 {
		t.Fatalf("stats = %+v, want 1 write of 1 byte", st)
	}
}

func TestFSDirPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, fs1, "f", "persisted")
	fs2, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("f")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("second open ReadFile = %q, %v", got, err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("backing dir: %v", err)
	}
}
