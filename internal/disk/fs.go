package disk

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// FS is the real-filesystem backend: a flat directory of files. It is what
// a live replica's -data-dir opens. Writes go through the OS page cache;
// Sync is a real fsync; Rename is rename(2) followed by a directory fsync,
// which is the portable recipe for an atomic, durable name swap.
type FS struct {
	dir   string
	stats Stats
}

var (
	_ Backend     = (*FS)(nil)
	_ StatsSource = (*FS)(nil)
)

// NewFS opens (creating if necessary) the directory dir as a backend.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &FS{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *FS) Dir() string { return f.dir }

func (f *FS) path(name string) string { return filepath.Join(f.dir, name) }

// Create opens name for writing, truncating any existing content.
func (f *FS) Create(name string) (File, error) {
	return f.open(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
}

// Append opens name for appending, creating it if absent.
func (f *FS) Append(name string) (File, error) {
	return f.open(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY)
}

// open opens name with flag. When O_CREATE makes a file that did not
// previously exist, the parent directory is fsynced: without that, a power
// cut can lose the directory entry of a segment whose *contents* were
// fsynced, silently dropping acknowledged commits.
func (f *FS) open(name string, flag int) (File, error) {
	_, statErr := os.Stat(f.path(name))
	file, err := os.OpenFile(f.path(name), flag, 0o644)
	if err != nil {
		return nil, err
	}
	if errors.Is(statErr, fs.ErrNotExist) {
		if err := f.syncDir(); err != nil {
			file.Close()
			return nil, err
		}
	}
	return &fsFile{f: file, fs: f}, nil
}

// ReadFile returns the full content of name.
func (f *FS) ReadFile(name string) ([]byte, error) {
	b, err := os.ReadFile(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return b, err
}

// List returns the directory's file names in lexical order.
func (f *FS) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename atomically moves oldName over newName and fsyncs the directory so
// the swap itself is durable.
func (f *FS) Rename(oldName, newName string) error {
	if err := os.Rename(f.path(oldName), f.path(newName)); err != nil {
		return err
	}
	return f.syncDir()
}

// Remove deletes name; removing an absent file is not an error.
func (f *FS) Remove(name string) error {
	err := os.Remove(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Truncate chops name to size bytes and fsyncs it, so the cut survives a
// power cut as surely as the bytes it removed would not have.
func (f *FS) Truncate(name string, size int) error {
	file, err := os.OpenFile(f.path(name), os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return err
	}
	defer file.Close()
	info, err := file.Stat()
	if err != nil {
		return err
	}
	if size < 0 || int64(size) > info.Size() {
		return fmt.Errorf("disk: truncate %s to %d outside [0,%d]", name, size, info.Size())
	}
	if err := file.Truncate(int64(size)); err != nil {
		return err
	}
	return file.Sync()
}

// Stats returns the backend's I/O counters.
func (f *FS) Stats() Stats { return f.stats }

func (f *FS) syncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type fsFile struct {
	f  *os.File
	fs *FS
}

func (ff *fsFile) Write(p []byte) (int, error) {
	n, err := ff.f.Write(p)
	ff.fs.stats.Writes++
	ff.fs.stats.BytesWritten += n
	return n, err
}

func (ff *fsFile) Sync() error {
	start := time.Now()
	err := ff.f.Sync()
	ff.fs.stats.Syncs++
	ff.fs.stats.SyncTime += int64(time.Since(start))
	return err
}

func (ff *fsFile) Close() error { return ff.f.Close() }
