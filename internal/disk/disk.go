// Package disk is the stable-storage seam under the durability subsystem.
//
// The write-ahead log (internal/wal) talks to named append-only files
// through the Backend interface and never to the filesystem directly — the
// same pattern as the runtime seam in internal/runtime: one protocol-side
// consumer, two substrates. The FS backend is a directory of real files
// with real fsyncs for the live deployment; the Mem backend is a
// deterministic in-memory model of a disk for the simulation engine, with
// an explicit synced/unsynced boundary so crash experiments can discard
// exactly the bytes a real power cut would discard, an injectable fsync
// latency model for durability-cost accounting, and crash-point truncation
// for torn-write replay tests.
package disk

import (
	"errors"
	"io"
)

// ErrNotExist is returned when a named file is absent. Backends wrap their
// substrate's error so callers test with errors.Is.
var ErrNotExist = errors.New("disk: file does not exist")

// ErrCrashed is returned by Mem file handles after a simulated crash: the
// process that held them is dead, so writes through them must not land.
var ErrCrashed = errors.New("disk: backend crashed under open handle")

// File is one append-only stable-storage file. Write buffers in the "OS
// page cache" (real or modelled); Sync makes everything written so far
// survive a crash.
type File interface {
	io.Writer
	// Sync flushes all writes to stable storage (fsync).
	Sync() error
	// Close releases the handle without an implied Sync — exactly like a
	// POSIX close. Callers that need the tail durable must Sync first.
	Close() error
}

// Backend is a flat namespace of stable-storage files. Implementations
// must make Rename atomic with respect to crashes: after a crash the old
// name, the new name, or both exist, but never a half-written target —
// that is what makes snapshot installation safe.
type Backend interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// ReadFile returns the full content of name (ErrNotExist if absent).
	ReadFile(name string) ([]byte, error)
	// List returns all file names in lexical order.
	List() ([]string, error)
	// Rename atomically moves oldName over newName.
	Rename(oldName, newName string) error
	// Remove deletes name (nil if absent: removal is idempotent).
	Remove(name string) error
	// Truncate durably chops name to size bytes; size outside the file's
	// current [0, len] is an error. The WAL uses it to cut a tolerated
	// torn tail off a segment so the damage never resurfaces as
	// corruption on a later Open.
	Truncate(name string, size int) error
}

// Stats counts a backend's I/O for durability-cost accounting.
type Stats struct {
	Writes       int
	BytesWritten int
	Syncs        int
	// SyncTime is the modelled or measured time spent in Sync calls,
	// nanoseconds. The Mem backend accumulates its injected latency here.
	SyncTime int64
}

// StatsSource is a backend that counts its I/O.
type StatsSource interface {
	Stats() Stats
}

// Crasher is a backend that can simulate a machine crash: all unsynced
// bytes vanish and open handles die. The Mem backend implements it; the FS
// backend does not (a real kill -9 is the live equivalent, and the OS page
// cache survives it).
type Crasher interface {
	Crash()
}
