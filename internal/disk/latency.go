package disk

import "time"

// WithSyncLatency wraps b so every File.Sync really sleeps d before
// returning — a wall-clock model of a storage device's fsync cost on top
// of any backend. Mem's injectable SyncDelay only *accounts* latency (it
// feeds the DES clock); this wrapper *spends* it, which is what a live
// throughput experiment needs: the A9 harness runs real nodes against
// Mem+WithSyncLatency to measure commits/sec on a modelled NVMe or HDD
// without touching a physical disk.
func WithSyncLatency(b Backend, d time.Duration) Backend {
	if d <= 0 {
		return b
	}
	return &latencyBackend{Backend: b, d: d}
}

type latencyBackend struct {
	Backend
	d time.Duration
}

func (lb *latencyBackend) Create(name string) (File, error) {
	f, err := lb.Backend.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, d: lb.d}, nil
}

func (lb *latencyBackend) Append(name string) (File, error) {
	f, err := lb.Backend.Append(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, d: lb.d}, nil
}

// Stats forwards the StatsSource capability of the wrapped backend.
func (lb *latencyBackend) Stats() Stats {
	if src, ok := lb.Backend.(StatsSource); ok {
		return src.Stats()
	}
	return Stats{}
}

// Crash forwards the Crasher capability of the wrapped backend.
func (lb *latencyBackend) Crash() {
	if cr, ok := lb.Backend.(Crasher); ok {
		cr.Crash()
	}
}

type latencyFile struct {
	File
	d time.Duration
}

func (lf *latencyFile) Sync() error {
	time.Sleep(lf.d)
	return lf.File.Sync()
}
