package disk

import (
	"fmt"
	"sort"
	"time"
)

// Mem is the deterministic in-memory backend the simulation engine runs
// durability experiments on. It models exactly the part of a disk the
// protocol cares about:
//
//   - every file keeps a synced/unsynced boundary: Write lands in the
//     modelled page cache, Sync advances the stable mark;
//   - Crash discards every byte past the stable mark and kills open
//     handles, which is what a power cut does to a real disk;
//   - SyncDelay injects a per-fsync latency model whose cost accumulates
//     in Stats.SyncTime, so the A7 experiment can price a policy without
//     waiting on real hardware;
//   - Truncate chops a file at an arbitrary byte for torn-write replay
//     tests (the testing/quick crash-point property).
//
// Mem is not safe for concurrent use; like every simulated substrate it is
// driven from the engine's single execution context.
type Mem struct {
	files map[string]*memFile
	stats Stats
	// SyncDelay, if non-nil, returns the modelled duration of one fsync.
	// It is only accounted, never slept: virtual time cannot advance in
	// the middle of a protocol callback.
	SyncDelay func() time.Duration
}

var (
	_ Backend     = (*Mem)(nil)
	_ StatsSource = (*Mem)(nil)
	_ Crasher     = (*Mem)(nil)
)

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{files: make(map[string]*memFile)} }

type memFile struct {
	data   []byte
	stable int // bytes guaranteed to survive a Crash
	gen    uint64
}

// Create opens name for writing, truncating any existing content.
func (m *Mem) Create(name string) (File, error) {
	mf := m.files[name]
	if mf == nil {
		mf = &memFile{}
		m.files[name] = mf
	}
	mf.data = nil
	mf.stable = 0
	mf.gen++
	return &memHandle{m: m, f: mf, name: name, gen: mf.gen}, nil
}

// Append opens name for appending, creating it if absent.
func (m *Mem) Append(name string) (File, error) {
	mf := m.files[name]
	if mf == nil {
		mf = &memFile{}
		m.files[name] = mf
	}
	return &memHandle{m: m, f: mf, name: name, gen: mf.gen}, nil
}

// ReadFile returns a copy of name's full content, synced or not (the page
// cache serves reads; only a crash distinguishes the stable prefix).
func (m *Mem) ReadFile(name string) ([]byte, error) {
	mf := m.files[name]
	if mf == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	out := make([]byte, len(mf.data))
	copy(out, mf.data)
	return out, nil
}

// List returns the file names in lexical order.
func (m *Mem) List() ([]string, error) {
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Rename atomically moves oldName over newName. The swap is modelled as
// durable (the FS backend fsyncs the directory to get the same guarantee).
func (m *Mem) Rename(oldName, newName string) error {
	mf := m.files[oldName]
	if mf == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	delete(m.files, oldName)
	mf.gen++ // old handles must not keep writing under the new name
	m.files[newName] = mf
	return nil
}

// Remove deletes name; removing an absent file is not an error.
func (m *Mem) Remove(name string) error {
	if mf := m.files[name]; mf != nil {
		mf.gen++
		delete(m.files, name)
	}
	return nil
}

// Stats returns the backend's I/O counters.
func (m *Mem) Stats() Stats { return m.stats }

// Crash simulates a power cut: every file loses its unsynced tail and all
// open handles die (their owner's process is gone). The stable prefixes
// survive for the next Open — that is the whole point of the WAL.
func (m *Mem) Crash() {
	for _, mf := range m.files {
		mf.data = mf.data[:mf.stable]
		mf.gen++
	}
}

// Truncate chops name to size bytes (both caches), simulating an arbitrary
// crash-point torn write for replay tests.
func (m *Mem) Truncate(name string, size int) error {
	mf := m.files[name]
	if mf == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if size < 0 || size > len(mf.data) {
		return fmt.Errorf("disk: truncate %s to %d outside [0,%d]", name, size, len(mf.data))
	}
	mf.data = mf.data[:size]
	if mf.stable > size {
		mf.stable = size
	}
	mf.gen++
	return nil
}

// Size reports name's current length in bytes (0 if absent).
func (m *Mem) Size(name string) int {
	if mf := m.files[name]; mf != nil {
		return len(mf.data)
	}
	return 0
}

type memHandle struct {
	m    *Mem
	f    *memFile
	name string
	gen  uint64
}

func (h *memHandle) stale() bool { return h.f.gen != h.gen }

func (h *memHandle) Write(p []byte) (int, error) {
	if h.stale() {
		return 0, fmt.Errorf("%w: %s", ErrCrashed, h.name)
	}
	h.f.data = append(h.f.data, p...)
	h.m.stats.Writes++
	h.m.stats.BytesWritten += len(p)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if h.stale() {
		return fmt.Errorf("%w: %s", ErrCrashed, h.name)
	}
	h.f.stable = len(h.f.data)
	h.m.stats.Syncs++
	if h.m.SyncDelay != nil {
		h.m.stats.SyncTime += int64(h.m.SyncDelay())
	}
	return nil
}

func (h *memHandle) Close() error { return nil }
