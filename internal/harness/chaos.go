package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/reliable"
	"repro/internal/simnet"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ChaosPoint is one cell of the A6 grid: a message-loss rate crossed with a
// churn profile (partition window + loss burst + crash blip, or nothing).
type ChaosPoint struct {
	Loss  float64
	Churn bool
}

// ChaosResult extends RunResult with the recovery-stack counters the A6
// experiment reports.
type ChaosResult struct {
	RunResult
	Point       ChaosPoint
	Reliable    reliable.Stats
	Regenerated int
	Lost        int // messages eaten by the fault model
	Duplicated  int // messages duplicated by the fault model
	Converged   bool
}

// chaosGrid is the A6 sweep: loss rate × churn.
func chaosGrid() []ChaosPoint {
	var grid []ChaosPoint
	for _, loss := range []float64{0, 0.10, 0.30} {
		for _, churn := range []bool{false, true} {
			grid = append(grid, ChaosPoint{Loss: loss, Churn: churn})
		}
	}
	return grid
}

// Chaos runs the A6 experiment: the full fault-model stack — per-message
// loss and duplication, a minority partition window, a loss burst, and a
// crash blip — against the reliable-delivery layer and agent regeneration.
// Every cell must drain, pass the referee's single-copy oracle, and
// reconverge; the table reports the recovery work that made that true.
func Chaos(o FigureOptions) (*metrics.Table, []ChaosResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title: "Ablation A6: chaos — message loss x partition churn",
		Note: "reliable delivery + agent regeneration on; churn = minority partition, " +
			"loss burst, and one crash blip; every cell must drain, converge, and pass the referee",
		Columns: []string{"loss", "churn", "committed", "failed", "lost", "retrans",
			"dup dropped", "gave up", "regen", "converged"},
	}
	grid := chaosGrid()
	all, err := sweep.Run(o.runner(), grid, func(i int, p ChaosPoint) (ChaosResult, error) {
		res, err := runChaos(o, i, p)
		if err != nil {
			return res, fmt.Errorf("loss=%.2f churn=%v: %w", p.Loss, p.Churn, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, res := range all {
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", res.Point.Loss*100),
			fmt.Sprintf("%v", res.Point.Churn),
			fmt.Sprintf("%d", res.Summary.Count-res.Summary.Failures),
			fmt.Sprintf("%d", res.Summary.Failures),
			fmt.Sprintf("%d", res.Lost),
			fmt.Sprintf("%d", res.Reliable.Retransmissions),
			fmt.Sprintf("%d", res.Reliable.DuplicatesSuppressed),
			fmt.Sprintf("%d", res.Reliable.GaveUp),
			fmt.Sprintf("%d", res.Regenerated),
			fmt.Sprintf("%v", res.Converged))
	}
	return tbl, all, nil
}

// chaosSchedule builds the churn profile for one A6 cell over a workload of
// the given span: a minority partition for the middle third, a 20-percent
// loss burst overlapping it, and one crash blip afterwards. Node 1 is never
// crashed, so its submissions are never silently dropped at dispatch.
func chaosSchedule(span time.Duration) failure.Schedule {
	var s failure.Schedule
	s = append(s, failure.PartitionWindow(span/3, span/4,
		[]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})...)
	s = append(s, failure.LossBurst(span/3, span/5, 0.20)...)
	s = append(s, failure.Blip(5, span*3/4, span/6+50*time.Millisecond)...)
	return s
}

func runChaos(o FigureOptions, point int, p ChaosPoint) (ChaosResult, error) {
	const n = 5
	var dup float64
	if p.Loss > 0 {
		dup = 0.05
	}
	faults := simnet.NewFaultModel(o.Seed+5000+int64(point), p.Loss, dup)
	cl, err := desengine.New(desengine.Config{
		Seed:   o.Seed,
		Faults: faults,
		Cluster: core.Config{
			N:        n,
			Reliable: true,
			// At 30% loss a frame confirms with p≈0.49 per try; 12 attempts
			// drive the chance of an undelivered COMMIT below 1e-5 so a run
			// failing to converge points at a real bug, not sampling noise.
			RetransmitBase:     10 * time.Millisecond,
			RetransmitAttempts: 12,
			RegenerateAgents:   true,
			MigrationTimeout:   60 * time.Millisecond,
			ClaimTimeout:       250 * time.Millisecond,
			RetryInterval:      120 * time.Millisecond,
		},
	})
	if err != nil {
		return ChaosResult{}, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers:           n,
		RequestsPerServer: o.RequestsPerServer,
		MeanInterarrival:  30 * time.Millisecond,
		Seed:              o.Seed + 1000,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() { _ = cl.Submit(ev.Home, core.Set(ev.Key, ev.Value)) })
	}
	span := workload.Span(events)
	if p.Churn {
		sched := chaosSchedule(span)
		if err := sched.Validate(n, (n-1)/2); err != nil {
			return ChaosResult{}, err
		}
		sched.Apply(func(d time.Duration, fn func()) { cl.Sim().After(d, fn) }, cl)
	}
	cl.Sim().RunFor(span + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return ChaosResult{}, err
	}
	cl.Settle(10 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return ChaosResult{}, err
	}
	converged := cl.CheckConvergence() == nil
	if !converged {
		return ChaosResult{}, fmt.Errorf("replicas diverged: %w", cl.CheckConvergence())
	}
	var samples []metrics.Sample
	for _, out := range cl.Outcomes() {
		samples = append(samples, metrics.Sample{
			ALT:    out.LockLatency().Duration(),
			ATT:    out.TotalLatency().Duration(),
			Visits: out.Visits,
			ByTie:  out.ByTie,
			Failed: out.Failed,
		})
	}
	// The chaos table's counters read through the registry's stable names
	// (what a live /metrics scrape exports); the full Net/Agents structs
	// keep feeding the generic RunResult summaries.
	snap := cl.Metrics().Gather()
	return ChaosResult{
		RunResult: RunResult{
			Config:  RunConfig{Protocol: MARP, N: n, Seed: o.Seed},
			Summary: metrics.Summarize(samples),
			Net:     cl.Network().Stats(),
			Agents:  cl.Platform().Stats(),
		},
		Point: p,
		Reliable: reliable.Stats{
			Retransmissions:      int(snap.Value("marp.reliable.retransmissions")),
			DuplicatesSuppressed: int(snap.Value("marp.reliable.duplicates_suppressed")),
			AcksSent:             int(snap.Value("marp.reliable.acks_sent")),
			GaveUp:               int(snap.Value("marp.reliable.gave_up")),
		},
		Regenerated: int(snap.Value("marp.replica.regenerated")),
		Lost:        int(snap.Value("marp.fabric.messages_lost")),
		Duplicated:  int(snap.Value("marp.fabric.messages_duplicated")),
		Converged:   converged,
	}, nil
}
