package harness

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/disk"
	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Durability runs the A7 experiment suite: what the write-ahead log costs
// while the system is healthy (A7a), what recovery costs after a crash
// (A7b), and how fast a raw journal replays off a real filesystem (A7c).
func Durability(o FigureOptions) ([]*metrics.Table, error) {
	o.fill()
	overhead, err := durabilityOverhead(o)
	if err != nil {
		return nil, fmt.Errorf("a7 overhead: %w", err)
	}
	recovery, err := durabilityRecovery(o)
	if err != nil {
		return nil, fmt.Errorf("a7 recovery: %w", err)
	}
	replay, err := durabilityReplay(o)
	if err != nil {
		return nil, fmt.Errorf("a7 replay: %w", err)
	}
	return []*metrics.Table{overhead, recovery, replay}, nil
}

// a7Point is one cell of the overhead grid: an fsync policy (or durability
// off entirely) crossed with a write rate.
type a7Point struct {
	policy string // "off", "none", "commit", "always"
	mean   time.Duration
}

// a7SyncModel is the modelled device fsync latency charged by the Mem
// backend, a fast NVMe-class device. The table also prices each policy at
// a 5ms spinning-disk fsync from the same sync count, so one run covers
// both ends of the device spectrum.
const (
	a7SyncNVMe = 100 * time.Microsecond
	a7SyncHDD  = 5 * time.Millisecond
)

func durabilityOverhead(o FigureOptions) (*metrics.Table, error) {
	tbl := &metrics.Table{
		Title: "Ablation A7a: durability overhead — fsync policy x write rate",
		Note: fmt.Sprintf("N=5, Mem backend modelling a %v device fsync; the hdd column reprices "+
			"the same sync count at %v; 'off' is the volatile baseline", a7SyncNVMe, a7SyncHDD),
		Columns: []string{"policy", "interarrival", "committed", "appends", "fsyncs",
			"fsyncs/commit", "KB written", "sync ms (nvme)", "us/commit", "sync ms (hdd)"},
	}
	var grid []a7Point
	for _, mean := range []time.Duration{10 * time.Millisecond, 40 * time.Millisecond} {
		for _, policy := range []string{"off", "none", "commit", "always"} {
			grid = append(grid, a7Point{policy: policy, mean: mean})
		}
	}
	all, err := sweep.Run(o.runner(), grid, func(i int, p a7Point) ([]string, error) {
		row, err := runOverheadCell(o, p)
		if err != nil {
			return nil, fmt.Errorf("policy=%s mean=%v: %w", p.policy, p.mean, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range all {
		tbl.AddRow(row...)
	}
	return tbl, nil
}

func runOverheadCell(o FigureOptions, p a7Point) ([]string, error) {
	const n = 5
	cfg := core.Config{N: n}
	if p.policy != "off" {
		policy, err := wal.ParsePolicy(p.policy)
		if err != nil {
			return nil, err
		}
		cfg.Durability = &core.DurabilityConfig{
			Policy: policy,
			Backend: func(id runtime.NodeID) disk.Backend {
				m := disk.NewMem()
				m.SyncDelay = func() time.Duration { return a7SyncNVMe }
				return m
			},
		}
	}
	cl, err := desengine.New(desengine.Config{Seed: o.Seed, Cluster: cfg})
	if err != nil {
		return nil, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers:           n,
		RequestsPerServer: o.RequestsPerServer,
		MeanInterarrival:  p.mean,
		Seed:              o.Seed + 7000,
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() { _ = cl.Submit(ev.Home, core.Set(ev.Key, ev.Value)) })
	}
	cl.Sim().RunFor(workload.Span(events) + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return nil, err
	}
	cl.Settle(5 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return nil, err
	}
	if err := cl.CheckConvergence(); err != nil {
		return nil, err
	}
	committed := int(cl.Server(1).Store().LastSeq())
	// The table reads through the registry's stable names — the same
	// numbers an ops /metrics scrape of this cluster would export.
	snap := cl.Metrics().Gather()
	appends := int(snap.Value("marp.wal.appends"))
	syncs := int(snap.Value("marp.disk.syncs"))
	syncSeconds := snap.Value("marp.disk.sync_seconds_total")
	perCommit := func(v float64) string {
		if committed == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v/float64(committed))
	}
	return []string{
		p.policy,
		fmt.Sprint(p.mean),
		fmt.Sprint(committed),
		fmt.Sprint(appends),
		fmt.Sprint(syncs),
		perCommit(float64(syncs)),
		fmt.Sprintf("%.1f", snap.Value("marp.disk.bytes_written")/1024),
		fmt.Sprintf("%.2f", syncSeconds*1000),
		perCommit(syncSeconds * 1e6),
		fmt.Sprintf("%.1f", (time.Duration(syncs)*a7SyncHDD).Seconds()*1000),
	}, nil
}

// a7Recovery is one crash-recovery measurement: how many commits the node
// missed while down, and what it cost to come back.
type a7Recovery struct {
	missed     int
	walCommits uint64 // restored synchronously from the node's own WAL
	replayed   int    // journal records decoded during recovery
	catchup    time.Duration
}

func durabilityRecovery(o FigureOptions) (*metrics.Table, error) {
	base := 40
	missedGrid := []int{0, 25, 100}
	if o.Quick {
		base = 15
		missedGrid = []int{0, 10, 30}
	}
	tbl := &metrics.Table{
		Title: "Ablation A7b: crash recovery — WAL replay + anti-entropy catch-up",
		Note: fmt.Sprintf("N=3, PolicyCommit; node 3 crashes holding %d commits, misses the given "+
			"number, then recovers: its own commits return from the WAL before any network traffic, "+
			"the missed suffix arrives by anti-entropy", base),
		Columns: []string{"missed", "from WAL", "records replayed", "pulled", "catch-up (virtual)"},
	}
	all, err := sweep.Run(o.runner(), missedGrid, func(i int, missed int) (a7Recovery, error) {
		r, err := runRecoveryCell(o, base, missed)
		if err != nil {
			return r, fmt.Errorf("missed=%d: %w", missed, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range all {
		tbl.AddRow(
			fmt.Sprint(r.missed),
			fmt.Sprint(r.walCommits),
			fmt.Sprint(r.replayed),
			fmt.Sprint(uint64(base+r.missed)-r.walCommits),
			fmt.Sprint(r.catchup.Round(time.Microsecond)))
	}
	return tbl, nil
}

func runRecoveryCell(o FigureOptions, base, missed int) (a7Recovery, error) {
	const n = 3
	cl, err := desengine.New(desengine.Config{
		Seed: o.Seed,
		Cluster: core.Config{
			N: n,
			Durability: &core.DurabilityConfig{
				Policy:  wal.PolicyCommit,
				Backend: func(id runtime.NodeID) disk.Backend { return disk.NewMem() },
			},
		},
	})
	if err != nil {
		return a7Recovery{}, err
	}
	submit := func(count, homes int, tag string) error {
		for i := 0; i < count; i++ {
			home := runtime.NodeID(i%homes + 1)
			if err := cl.Submit(home, core.Set(fmt.Sprintf("%s-%d", tag, i), "v")); err != nil {
				return err
			}
		}
		if err := cl.RunUntilDone(30 * time.Minute); err != nil {
			return err
		}
		cl.Settle(2 * time.Second)
		return nil
	}
	if err := submit(base, n, "pre"); err != nil {
		return a7Recovery{}, err
	}
	if got := cl.Server(3).Store().LastSeq(); got != uint64(base) {
		return a7Recovery{}, fmt.Errorf("pre-crash LastSeq = %d, want %d", got, base)
	}
	cl.Crash(3)
	if err := submit(missed, n-1, "down"); err != nil {
		return a7Recovery{}, err
	}
	replayedBefore := int(cl.Metrics().Value("marp.wal.replayed"))
	start := cl.Now()
	cl.Recover(3)
	walCommits := cl.Server(3).Store().LastSeq() // synchronous: no events ran yet
	want := uint64(base + missed)
	for cl.Server(3).Store().LastSeq() < want {
		if time.Duration(cl.Now()-start) > 30*time.Second {
			return a7Recovery{}, fmt.Errorf("node 3 stuck at %d/%d commits", cl.Server(3).Store().LastSeq(), want)
		}
		cl.Settle(time.Millisecond)
	}
	return a7Recovery{
		missed:     missed,
		walCommits: walCommits,
		replayed:   int(cl.Metrics().Value("marp.wal.replayed")) - replayedBefore,
		catchup:    time.Duration(cl.Now() - start),
	}, nil
}

func durabilityReplay(o FigureOptions) (*metrics.Table, error) {
	sizes := []int{500, 2000, 8000}
	if o.Quick {
		sizes = []int{200, 800}
	}
	tbl := &metrics.Table{
		Title: "Ablation A7c: raw WAL replay off the filesystem",
		Note: "one journal on a real directory, K committed updates, clean close, reopen; " +
			"replay is wall-clock and machine-dependent",
		Columns: []string{"records", "KB on disk", "replay ms", "records/ms"},
	}
	for _, k := range sizes {
		row, err := runReplayCell(k)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

func runReplayCell(k int) ([]string, error) {
	dir, err := os.MkdirTemp("", "marp-a7-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fsb, err := disk.NewFS(dir)
	if err != nil {
		return nil, err
	}
	// PolicyNone builds the journal at memory speed; Close syncs once, so
	// the file set is complete without paying k fsyncs up front.
	j, _, err := durable.Open(fsb, durable.Options{Policy: wal.PolicyNone, CompactEvery: -1})
	if err != nil {
		return nil, err
	}
	s := store.New()
	s.SetJournal(j)
	for i := 1; i <= k; i++ {
		u := store.Update{
			TxnID: fmt.Sprintf("txn-%06d", i),
			Key:   fmt.Sprintf("key-%d", i%64),
			Data:  fmt.Sprintf("value-%06d-padding-padding", i),
			Seq:   uint64(i),
			Stamp: int64(i),
		}
		if err := s.ApplyCommitted(u); err != nil {
			return nil, err
		}
	}
	if err := j.Close(); err != nil {
		return nil, err
	}
	bytes := fsb.Stats().BytesWritten

	fsb2, err := disk.NewFS(dir)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	j2, st, err := durable.Open(fsb2, durable.Options{})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	defer j2.Close()
	if st == nil || len(st.Store.Log) != k {
		return nil, fmt.Errorf("replayed %v, want %d updates", st, k)
	}
	ms := elapsed.Seconds() * 1000
	perMS := "-"
	if ms > 0 {
		perMS = fmt.Sprintf("%.0f", float64(k)/ms)
	}
	return []string{
		fmt.Sprint(k),
		fmt.Sprintf("%.1f", float64(bytes)/1024),
		fmt.Sprintf("%.2f", ms),
		perMS,
	}, nil
}
