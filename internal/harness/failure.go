package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// newRand returns a seeded random source for harness-level choices (kept
// separate from the simulation's own source so sweeps stay reproducible).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// FailureResult extends RunResult with failure-experiment bookkeeping.
type FailureResult struct {
	RunResult
	Crashes       int
	AgentsKilled  int
	ConvergedOK   bool
	CommittedSeqs uint64
}

// FailureInjection runs the A4 experiment: a workload with periodic server
// crash/recovery cycles (the paper's transient-failure environment, §2).
// It reports completion and convergence under churn.
func FailureInjection(o FigureOptions) (*metrics.Table, []FailureResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title:   "Ablation A4: transient server failures during the workload",
		Note:    "one crash/recovery cycle per listed server; agents on a crashing host die",
		Columns: []string{"crashed servers", "committed", "failed", "mean ATT (ms)", "converged"},
	}
	crashCounts := []int{0, 1, 2}
	all, err := sweep.Run(o.runner(), crashCounts, func(_ int, crashes int) (FailureResult, error) {
		res, err := runWithFailures(o, crashes)
		if err != nil {
			return res, fmt.Errorf("%d crashes: %w", crashes, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		tbl.AddRow(fmt.Sprintf("%d", crashCounts[i]),
			fmt.Sprintf("%d", res.Summary.Count-res.Summary.Failures),
			fmt.Sprintf("%d", res.Summary.Failures),
			metrics.Ms(res.Summary.MeanATT),
			fmt.Sprintf("%v", res.ConvergedOK))
	}
	return tbl, all, nil
}

func runWithFailures(o FigureOptions, crashes int) (FailureResult, error) {
	const n = 5
	cl, err := desengine.New(desengine.Config{
		Seed: o.Seed,
		Cluster: core.Config{
			N:                n,
			MigrationTimeout: 30 * time.Millisecond,
		},
	})
	if err != nil {
		return FailureResult{}, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers:           n,
		RequestsPerServer: o.RequestsPerServer,
		MeanInterarrival:  30 * time.Millisecond,
		Seed:              o.Seed + 1000,
	})
	if err != nil {
		return FailureResult{}, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() { _ = cl.Submit(ev.Home, core.Set(ev.Key, ev.Value)) })
	}
	span := workload.Span(events)
	var sched failure.Schedule
	for i := 0; i < crashes; i++ {
		victim := simnet.NodeID(i + 2) // never crash server 1, varies per i
		at := span * time.Duration(i+1) / time.Duration(crashes+1)
		sched = append(sched, failure.Blip(victim, at, span/4+200*time.Millisecond)...)
	}
	if err := sched.Validate(n, (n-1)/2); err != nil {
		return FailureResult{}, err
	}
	sched.Apply(func(d time.Duration, fn func()) { cl.Sim().After(d, fn) }, cl)
	cl.Sim().RunFor(span + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return FailureResult{}, err
	}
	cl.Settle(10 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return FailureResult{}, err
	}
	converged := cl.CheckConvergence() == nil
	var samples []metrics.Sample
	for _, out := range cl.Outcomes() {
		samples = append(samples, metrics.Sample{
			ALT:    out.LockLatency().Duration(),
			ATT:    out.TotalLatency().Duration(),
			Visits: out.Visits,
			ByTie:  out.ByTie,
			Failed: out.Failed,
		})
	}
	return FailureResult{
		RunResult: RunResult{
			Config:  RunConfig{Protocol: MARP, N: n, Seed: o.Seed},
			Summary: metrics.Summarize(samples),
			Net:     cl.Network().Stats(),
			Agents:  cl.Platform().Stats(),
		},
		Crashes:       crashes,
		AgentsKilled:  cl.Platform().Stats().AgentsKilled,
		ConvergedOK:   converged,
		CommittedSeqs: cl.Server(1).Store().LastSeq(),
	}, nil
}
