package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// The harness tests run the real experiments at reduced scale and assert the
// qualitative shapes the paper reports — the actual reproduction criteria
// from DESIGN.md §4.

func TestFigure2ShapeALTDecreasesWithMean(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 3, RequestsPerServer: 30,
		Means:   []time.Duration{10 * time.Millisecond, 100 * time.Millisecond},
		Servers: []int{5}}
	tbl, results, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	fast, slow := results[0].Summary.MeanALT, results[1].Summary.MeanALT
	if fast <= slow {
		t.Fatalf("ALT did not decrease with slower arrivals: %v -> %v", fast, slow)
	}
	if !strings.Contains(tbl.String(), "Figure 2") {
		t.Fatal("table title missing")
	}
}

func TestFigure2ShapeALTGrowsWithServers(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 5, RequestsPerServer: 30,
		Means:   []time.Duration{20 * time.Millisecond},
		Servers: []int{3, 7}}
	_, results, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Summary.MeanALT >= results[1].Summary.MeanALT {
		t.Fatalf("ALT(3 servers)=%v >= ALT(7 servers)=%v",
			results[0].Summary.MeanALT, results[1].Summary.MeanALT)
	}
}

func TestFigure3ATTExceedsALT(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 7, RequestsPerServer: 25,
		Means: []time.Duration{40 * time.Millisecond}, Servers: []int{5}}
	_, results, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	s := results[0].Summary
	if s.MeanATT <= s.MeanALT {
		t.Fatalf("ATT %v not above ALT %v (must include UPDATE/COMMIT messaging)", s.MeanATT, s.MeanALT)
	}
}

func TestFigure4Crossover(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 9, RequestsPerServer: 40,
		Means: []time.Duration{15 * time.Millisecond, 120 * time.Millisecond}}
	_, results, err := Figure4(o)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := results[0].Summary, results[1].Summary
	if fast.PRK(5) < 50 {
		t.Fatalf("at high rates only %.1f%% of locks required all 5 visits", fast.PRK(5))
	}
	if slow.PRK(3) < 50 {
		t.Fatalf("at low rates only %.1f%% of locks required 3 visits", slow.PRK(3))
	}
	if fast.MeanVisits() <= slow.MeanVisits() {
		t.Fatalf("mean visits did not shrink with lower rates: %.2f vs %.2f",
			fast.MeanVisits(), slow.MeanVisits())
	}
}

func TestCompareProtocolsWANShape(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 11, RequestsPerServer: 8,
		Means: []time.Duration{60 * time.Millisecond}, Servers: []int{5}}
	_, results, err := CompareProtocols(o)
	if err != nil {
		t.Fatal(err)
	}
	// Order: lan{marp,mcv,ac,primary}, wan{marp,mcv,ac,primary}.
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	marpWAN, mcvWAN := results[4].Summary, results[5].Summary
	if marpWAN.MeanATT >= mcvWAN.MeanATT {
		t.Fatalf("MARP WAN ATT %v not below MCV-MP %v (the paper's headline claim)",
			marpWAN.MeanATT, mcvWAN.MeanATT)
	}
	if results[4].MsgsPerUpdate() >= results[5].MsgsPerUpdate() {
		t.Fatalf("MARP msgs/update %.1f not below MCV-MP %.1f",
			results[4].MsgsPerUpdate(), results[5].MsgsPerUpdate())
	}
}

func TestMigrationBoundsHold(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 13, RequestsPerServer: 15}
	tbl, results, err := MigrationBounds(o)
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{3, 5, 7, 9}
	for i, res := range results {
		n := ns[i]
		lo, hi := n/2+1, n
		for visits, count := range res.Summary.VisitDist {
			if count == 0 {
				continue
			}
			if visits < lo || visits > hi {
				// Tie-break wins may legitimately fall below the bound;
				// only flag if there were no ties at all.
				if res.Summary.TieCount == 0 {
					t.Errorf("N=%d: %d wins with %d visits outside [%d,%d]", n, count, visits, lo, hi)
				}
			}
		}
	}
	if !strings.Contains(tbl.String(), "Theorem 3") {
		t.Fatal("table title missing")
	}
}

func TestAblationBatchingAmortizes(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 15, RequestsPerServer: 24}
	_, results, err := AblationBatching(o)
	if err != nil {
		t.Fatal(err)
	}
	b1, b8 := results[0], results[len(results)-1]
	if b8.Agents.AgentsCreated >= b1.Agents.AgentsCreated {
		t.Fatalf("batching did not reduce agent count: %d vs %d",
			b8.Agents.AgentsCreated, b1.Agents.AgentsCreated)
	}
	if b8.BytesPerUpdate() >= b1.BytesPerUpdate() {
		t.Fatalf("batching did not reduce bytes/update: %.0f vs %.0f",
			b8.BytesPerUpdate(), b1.BytesPerUpdate())
	}
}

func TestFailureInjectionConverges(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 17, RequestsPerServer: 8}
	_, results, err := FailureInjection(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.ConvergedOK {
			t.Fatalf("%d crashes: replicas did not converge", r.Crashes)
		}
		committed := r.Summary.Count - r.Summary.Failures
		if int(r.CommittedSeqs) != committed {
			t.Fatalf("%d crashes: %d committed agents but LastSeq %d",
				r.Crashes, committed, r.CommittedSeqs)
		}
	}
}

func TestAblationInfoSharingRuns(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 19, RequestsPerServer: 12}
	_, results, err := AblationInfoSharing(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Config.DisableInfoSharing || !results[1].Config.DisableInfoSharing {
		t.Fatal("ablation arms mislabeled")
	}
}

func TestAblationRoutingCostOrderedWinsUncontended(t *testing.T) {
	// Cost-ordering is a tour-cost optimization; its advantage shows when
	// queueing does not dominate. (Under heavy contention the deterministic
	// greedy routes can convoy agents and lose to random itineraries — a
	// finding recorded in EXPERIMENTS.md A2.) Compare the two arms on an
	// essentially serial workload, averaged across seeds.
	var ordered, random time.Duration
	for seed := int64(21); seed < 26; seed++ {
		for _, rand := range []bool{false, true} {
			topo := simnet.RandomGeo(7, newRand(seed))
			res, err := Run(RunConfig{
				Protocol: MARP, N: 7, Seed: seed, Mean: 3 * time.Second,
				RequestsPerServer: 4, Latency: WAN,
				Topology: topo, CostPerUnit: 60 * time.Millisecond,
				RandomItinerary: rand,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rand {
				random += res.Summary.MeanALT
			} else {
				ordered += res.Summary.MeanALT
			}
		}
	}
	if ordered >= random {
		t.Fatalf("cost-ordered itinerary %v not better than random %v on serial workload (5-seed sums)",
			ordered, random)
	}
}

func TestRunRejectsUnknownProtocolAndPreset(t *testing.T) {
	if _, err := Run(RunConfig{Protocol: "pigeon", N: 3}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(RunConfig{Protocol: MARP, N: 3, Latency: "string-and-cans"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunBaselineProtocols(t *testing.T) {
	for _, p := range []Protocol{MCV, AvailableCopy, PrimaryCopy} {
		res, err := Run(RunConfig{Protocol: p, N: 3, Seed: 23, Mean: 50 * time.Millisecond,
			RequestsPerServer: 6})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Summary.Count != 18 || res.Summary.Failures != 0 {
			t.Fatalf("%s: summary %+v", p, res.Summary)
		}
	}
}

func TestRunWithReadsInWorkload(t *testing.T) {
	// Reads are local and free; the run must still complete and count
	// only updates.
	res, err := runMARP(RunConfig{Protocol: MARP, N: 3, Seed: 25,
		Mean: 30 * time.Millisecond, RequestsPerServer: 10, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != 30 {
		t.Fatalf("count = %d", res.Summary.Count)
	}
}

func TestReadRatioShape(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 27, RequestsPerServer: 30}
	_, results, err := ReadRatio(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// More reads -> fewer updates -> less total traffic.
	prevUpdates := 1 << 30
	prevMsgs := 1 << 62
	for i, r := range results {
		updates := r.Summary.Count - r.Summary.Failures
		if updates >= prevUpdates {
			t.Fatalf("row %d: updates did not fall (%d -> %d)", i, prevUpdates, updates)
		}
		prevUpdates = updates
		if r.Net.MessagesSent >= prevMsgs {
			t.Fatalf("row %d: traffic did not fall", i)
		}
		prevMsgs = r.Net.MessagesSent
	}
}

func TestMultiSeedReplication(t *testing.T) {
	o := FigureOptions{Quick: true, Seed: 29, Seeds: 3, RequestsPerServer: 15,
		Means: []time.Duration{40 * time.Millisecond}, Servers: []int{3}}
	tbl, results, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 replications", len(results))
	}
	seeds := map[int64]bool{}
	for _, r := range results {
		seeds[r.Config.Seed] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("replications reused seeds: %v", seeds)
	}
	if !strings.Contains(tbl.String(), "±") {
		t.Fatalf("no ±sd cell in table:\n%s", tbl.String())
	}
	if !strings.Contains(tbl.String(), "3 seeds") {
		t.Fatal("note does not mention replication count")
	}
}
