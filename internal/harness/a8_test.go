package harness

import (
	"testing"
)

// TestShardingDESDeterministic is the shard-determinism gate: the A8
// simulator table is virtual-time throughput, so sweeping its cells across
// 1 worker or 8 must render byte-identical tables. A divergence means a
// shard leaked shared state across concurrently simulated runs (the CI job
// runs this under -race to catch the low-level version of the same bug).
func TestShardingDESDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick A8 sweep twice")
	}
	opts := FigureOptions{Quick: true}
	seq, _, err := ShardingDES(FigureOptions{Quick: opts.Quick, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ShardingDES(FigureOptions{Quick: opts.Quick, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("A8 table differs between parallelism 1 and 8:\n--- parallel=1 ---\n%s--- parallel=8 ---\n%s", seq.String(), par.String())
	}
}

// TestShardingDESThroughputScales checks A8's acceptance claim: aggregate
// committed throughput rises with the shard count (per-shard locking lists
// remove cross-key queueing) for both quorum geometries.
func TestShardingDESThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick A8 sweep")
	}
	_, all, err := ShardingDES(FigureOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Results are shard-major, geometry-minor: [s0g0 s0g1 s1g0 s1g1 ...].
	geoms := len(a8Geometries)
	for g := 0; g < geoms; g++ {
		first := all[g]
		last := all[len(all)-geoms+g]
		if last.CommitsPerSec() <= first.CommitsPerSec() {
			t.Errorf("%s: commits/s did not rise with shards: %d shards %.0f/s vs %d shards %.0f/s",
				a8Geometries[g], first.Config.Shards, first.CommitsPerSec(),
				last.Config.Shards, last.CommitsPerSec())
		}
	}
}
