package harness

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// quickFig shrinks a sweep enough to run twice inside a unit test.
func quickFig(par int) FigureOptions {
	return FigureOptions{Quick: true, RequestsPerServer: 8, Seeds: 2, Parallelism: par}
}

// TestSweepParallelismDeterminism is the regression guard for the sweep
// engine's core guarantee: the same grid run sequentially and run across 8
// workers yields identical RunResult series — same summaries, same network
// stats, same agent stats, point by point. Parallelism buys wall-clock time
// only.
func TestSweepParallelismDeterminism(t *testing.T) {
	tblSeq, seq, err := Figure2(quickFig(1))
	if err != nil {
		t.Fatal(err)
	}
	tblPar, par, err := Figure2(quickFig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("point %d differs between parallelism 1 and 8:\nseq: %+v\npar: %+v",
				i, seq[i], par[i])
		}
	}
	if !reflect.DeepEqual(tblSeq, tblPar) {
		t.Error("rendered tables differ between parallelism 1 and 8")
	}
}

// The protocol-comparison grid mixes MARP and all three baselines; run it
// both ways too so every protocol path is exercised under the race detector.
func TestCompareProtocolsParallelismDeterminism(t *testing.T) {
	opts := func(par int) FigureOptions {
		o := quickFig(par)
		o.Seeds = 1
		o.RequestsPerServer = 6
		return o
	}
	_, seq, err := CompareProtocols(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := CompareProtocols(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("CompareProtocols results differ between parallelism 1 and 8")
	}
}

func TestSweepProgressReported(t *testing.T) {
	var calls atomic.Int32
	var lastTotal atomic.Int32
	o := quickFig(4)
	o.Progress = func(done, total int) {
		calls.Add(1)
		lastTotal.Store(int32(total))
	}
	_, results, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(results) {
		t.Fatalf("progress callbacks = %d, want %d", calls.Load(), len(results))
	}
	if int(lastTotal.Load()) != len(results) {
		t.Fatalf("progress total = %d, want %d", lastTotal.Load(), len(results))
	}
}

// FailureInjection sweeps crash counts rather than RunConfigs; make sure the
// generic path is deterministic too (it also exercises agent death and
// recovery sync under -race).
func TestFailureInjectionParallelismDeterminism(t *testing.T) {
	opts := func(par int) FigureOptions {
		return FigureOptions{Quick: true, RequestsPerServer: 6, Parallelism: par}
	}
	_, seq, err := FailureInjection(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := FailureInjection(opts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FailureInjection results differ between parallelism 1 and 3")
	}
}
