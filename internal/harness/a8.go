package harness

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/workload"
)

// A8 measures what the keyspace-sharding refactor buys: with one locking
// list per (server, shard) and hash-routed itineraries, agents bound for
// different shards never queue behind each other, so aggregate committed
// throughput should rise with the shard count until it exhausts the key
// universe. Both quorum geometries are swept — majority (vote counting)
// and grid (O(√N) write sets) — on both engines: the simulator table is
// deterministic virtual time, the live table is wall clock over real TCP.

// a8Servers is the cluster size: 9 suits the 3×3 grid geometry exactly.
const a8Servers = 9

// a8Keys is the fixed key universe; keeping it constant across shard
// counts makes the cells comparable (the workload never changes, only how
// finely the protocol partitions it).
const a8Keys = 64

func a8ShardCounts(quick bool) []int {
	if quick {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16, 64}
}

var a8Geometries = []quorum.Geometry{quorum.GeomMajority, quorum.GeomGrid}

func a8Columns() []string {
	cols := []string{"shards"}
	for _, g := range a8Geometries {
		cols = append(cols, string(g)+" commits/s", string(g)+" ATT (ms)")
	}
	return cols
}

// ShardingDES is the simulator half of A8: a Sweep over shard count ×
// quorum geometry under a heavily backlogged uniform multi-key workload.
// Throughput is committed updates over the virtual makespan (the time of
// the last COMMIT broadcast), so the table is byte-identical at any sweep
// parallelism — the shard-determinism test in CI relies on that.
func ShardingDES(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	shardCounts := a8ShardCounts(o.Quick)
	tbl := &metrics.Table{
		Title: "Ablation A8: keyspace sharding — aggregate throughput (simulator, virtual time)",
		Note: fmt.Sprintf("N=%d, %d keys uniform, %d requests/server, 2ms mean inter-arrival; commits/s = committed updates / virtual makespan",
			a8Servers, a8Keys, o.RequestsPerServer),
		Columns: a8Columns(),
	}
	var cfgs []RunConfig
	for _, s := range shardCounts {
		for _, g := range a8Geometries {
			cfgs = append(cfgs, RunConfig{
				Protocol: MARP, N: a8Servers, Seed: o.Seed,
				Mean: 2 * time.Millisecond, RequestsPerServer: o.RequestsPerServer,
				Latency: o.Latency, Keys: a8Keys,
				Shards: s, Geometry: g,
			})
		}
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	i := 0
	for _, s := range shardCounts {
		row := []string{fmt.Sprintf("%d", s)}
		for range a8Geometries {
			res := all[i]
			i++
			row = append(row, fmt.Sprintf("%.0f", res.CommitsPerSec()), metrics.Ms(res.Summary.MeanATT))
		}
		tbl.AddRow(row...)
	}
	return tbl, all, nil
}

// shardingLive is the live-engine half of A8: the same grid of cells, each
// run as nine replica processes in this process wired through real TCP
// sockets. Wall clock replaces virtual time, so — like A7c's replay
// columns — the numbers are machine-dependent; the shape (throughput
// rising with shards) is what the table demonstrates.
func shardingLive(o FigureOptions) (*metrics.Table, error) {
	o.fill()
	shardCounts := a8ShardCounts(o.Quick)
	reqs, seeds := 12, 3
	if o.Quick {
		reqs, seeds = 6, 1
	}
	seedNote := "1 seed"
	if seeds > 1 {
		seedNote = fmt.Sprintf("mean of %d seeds", seeds)
	}
	tbl := &metrics.Table{
		Title: "Ablation A8 (live): aggregate throughput on the TCP engine (wall clock)",
		Note: fmt.Sprintf("N=%d in-process replicas over loopback TCP, %d keys uniform, %d requests/server, %s; wall clock and machine-dependent",
			a8Servers, a8Keys, reqs, seedNote),
		Columns: a8Columns(),
	}
	for _, s := range shardCounts {
		row := []string{fmt.Sprintf("%d", s)}
		for _, g := range a8Geometries {
			// Wall-clock cells are quantized by the retry timers, so a
			// single run is noisy; averaging a few seeds recovers the
			// shape without stretching the workload (deeper backlogs
			// only add abort/retry churn, not signal).
			var cpsSum float64
			var attSum time.Duration
			for seed := int64(0); seed < int64(seeds); seed++ {
				cps, att, err := liveShardCell(o.Seed+seed*100, s, g, reqs)
				if err != nil {
					return nil, fmt.Errorf("live shards=%d geometry=%s seed=%d: %w", s, g, o.Seed+seed*100, err)
				}
				cpsSum += cps
				attSum += att
			}
			row = append(row,
				fmt.Sprintf("%.0f", cpsSum/float64(seeds)),
				fmt.Sprintf("%.2f", (attSum/time.Duration(seeds)).Seconds()*1e3))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// liveShardCell runs one (shards, geometry) cell on the live engine and
// returns committed updates per wall-clock second plus the mean ATT.
func liveShardCell(seed int64, shards int, geom quorum.Geometry, reqs int) (float64, time.Duration, error) {
	n := a8Servers
	addrs := make(map[runtime.NodeID]string, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		addrs[runtime.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	// Loopback round trips are sub-millisecond, but nine single-threaded
	// actor loops under a full backlog of agents lag far behind the
	// network: with dozens of claims broadcasting to every node, an ack
	// can sit queued past a LAN-calibrated (40ms) claim timeout, and the
	// resulting abort/retry storm sustains itself. Likewise a migration
	// can exceed an aggressive timeout on a loaded CI host and read as a
	// false agent death. Timers therefore stay at or near the protocol
	// defaults, shortened only where safe.
	migration, claim := 300*time.Millisecond, 500*time.Millisecond
	retry, backoff := 100*time.Millisecond, 10*time.Millisecond
	nodes := make([]*live.Node, n)
	for i := 1; i <= n; i++ {
		node, err := live.StartNode(live.NodeConfig{
			Self:  runtime.NodeID(i),
			Addrs: addrs,
			Seed:  seed + int64(i),
			Cluster: core.Config{
				Shards: shards, Geometry: geom,
				MigrationTimeout: migration, ClaimTimeout: claim,
				RetryInterval: retry, RetryBackoff: backoff,
			},
		})
		if err != nil {
			for _, up := range nodes[:i-1] {
				up.Close()
			}
			return 0, 0, err
		}
		nodes[i-1] = node
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()

	events, err := workload.Generate(workload.Spec{
		Servers: n, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Keys: a8Keys,
		Seed: seed + 1000,
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, ev := range events {
		node := nodes[ev.Home-1]
		var serr error
		if !node.Eng.Do(func() { serr = node.Cluster.Submit(ev.Home, core.Set(ev.Key, ev.Value)) }) {
			return 0, 0, fmt.Errorf("engine closed during submit")
		}
		if serr != nil {
			return 0, 0, serr
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.Node) {
			defer wg.Done()
			errs[i] = node.Cluster.RunUntilDone(2 * time.Minute)
		}(i, node)
	}
	wg.Wait()
	makespan := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("node %d: %w", i+1, err)
		}
	}
	committed, attSum := 0, time.Duration(0)
	for _, node := range nodes {
		var outs []core.Outcome
		if !node.Eng.Do(func() { outs = node.Cluster.Outcomes() }) {
			return 0, 0, fmt.Errorf("engine closed during outcome read")
		}
		for _, o := range outs {
			if o.Failed {
				continue
			}
			committed++
			attSum += o.TotalLatency().Duration()
		}
	}
	if committed == 0 {
		return 0, 0, fmt.Errorf("no updates committed")
	}
	return float64(committed) / makespan.Seconds(), attSum / time.Duration(committed), nil
}

// Sharding runs the A8 experiment: the deterministic simulator table
// followed by the live-engine table.
func Sharding(o FigureOptions) ([]*metrics.Table, error) {
	des, _, err := ShardingDES(o)
	if err != nil {
		return nil, err
	}
	lv, err := shardingLive(o)
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{des, lv}, nil
}
