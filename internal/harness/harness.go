// Package harness runs the paper's experiments end to end: it generates the
// workload, drives a MARP cluster or a message-passing baseline through it,
// verifies the correctness oracles, and aggregates the metrics into the
// exact series the paper's figures plot. Each exported Figure/Ablation
// function corresponds to one entry in DESIGN.md's per-experiment index.
package harness

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Protocol names a replication protocol under test.
type Protocol string

// The protocols the harness can drive.
const (
	MARP          Protocol = "marp"
	MCV           Protocol = "mcv-mp"
	AvailableCopy Protocol = "available-copy"
	PrimaryCopy   Protocol = "primary-copy"
)

// LatencyPreset names a latency environment.
type LatencyPreset string

// The built-in latency environments.
const (
	LAN       LatencyPreset = "lan"       // sub-millisecond local network
	Prototype LatencyPreset = "prototype" // the paper's Aglets-on-LAN costs
	WAN       LatencyPreset = "wan"       // wide-area Internet
)

func (p LatencyPreset) model() (simnet.LatencyModel, error) {
	switch p {
	case LAN:
		return simnet.LAN(), nil
	case Prototype, "":
		return simnet.Prototype(), nil
	case WAN:
		return simnet.WAN(), nil
	default:
		return nil, fmt.Errorf("harness: unknown latency preset %q", p)
	}
}

// timers returns protocol timeouts proportionate to the preset's delays:
// a migration timeout just above the worst-case one-way latency, a claim
// timeout covering a round trip with margin, and retry/backoff periods that
// do not dwarf the network they run over.
func (p LatencyPreset) timers() (migration, claim, retry, backoff time.Duration) {
	switch p {
	case LAN:
		return 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond, 4 * time.Millisecond
	case WAN:
		return 400 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond, 120 * time.Millisecond
	default: // Prototype
		return 60 * time.Millisecond, 120 * time.Millisecond, 120 * time.Millisecond, 15 * time.Millisecond
	}
}

// RunConfig describes one experiment run (one point of a sweep).
type RunConfig struct {
	Protocol          Protocol
	N                 int
	Seed              int64
	Mean              time.Duration // mean request inter-arrival time per server
	RequestsPerServer int
	Latency           LatencyPreset
	Topology          *simnet.Topology // nil = full mesh
	// CostPerUnit, when positive, replaces the preset latency with a
	// cost-proportional model: one-way delay = CostPerUnit x topology
	// cost (+10% exponential jitter). This is what makes itinerary
	// ordering matter on a geo topology.
	CostPerUnit time.Duration

	// MARP-specific knobs.
	BatchSize          int
	DisableInfoSharing bool
	RandomItinerary    bool

	// Sharding knobs (A8). Zero values reproduce the unsharded protocol:
	// one locking list per server, majority quorums over all N replicas.
	Shards    int
	GroupSize int
	Geometry  quorum.Geometry

	// Workload shape.
	Keys     int
	RateSkew float64
}

func (c *RunConfig) fill() {
	if c.Protocol == "" {
		c.Protocol = MARP
	}
	if c.N == 0 {
		c.N = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mean == 0 {
		c.Mean = 50 * time.Millisecond
	}
	if c.RequestsPerServer == 0 {
		c.RequestsPerServer = 40
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
}

// RunResult is the outcome of one experiment run.
type RunResult struct {
	Config  RunConfig
	Summary metrics.Summary
	Net     simnet.Stats
	Agents  agent.Stats // zero for baselines
	// Saturated is set when the offered load exceeded the protocol's
	// capacity and the run did not drain within the (generous) virtual
	// time budget. The summary then covers only the completed updates.
	// Write-all AvailableCopy saturates far earlier than the quorum
	// protocols — the very weakness that motivated voting schemes.
	Saturated bool
	// Makespan is the virtual time of the last COMMIT broadcast (MARP runs
	// only). Committed-updates / Makespan is the aggregate throughput A8
	// reports; being virtual time, it is deterministic at any parallelism.
	Makespan time.Duration
}

// CommitsPerSec returns the aggregate committed-update throughput over the
// run's virtual makespan.
func (r RunResult) CommitsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	ok := r.Summary.Count - r.Summary.Failures
	return float64(ok) / r.Makespan.Seconds()
}

// MsgsPerUpdate returns the average number of network messages per
// successful update (agent migrations included for MARP).
func (r RunResult) MsgsPerUpdate() float64 {
	ok := r.Summary.Count - r.Summary.Failures
	if ok == 0 {
		return 0
	}
	return float64(r.Net.MessagesSent) / float64(ok)
}

// BytesPerUpdate returns the average bytes on the wire per successful update.
func (r RunResult) BytesPerUpdate() float64 {
	ok := r.Summary.Count - r.Summary.Failures
	if ok == 0 {
		return 0
	}
	return float64(r.Net.BytesSent) / float64(ok)
}

// Run executes one experiment run and verifies the correctness oracles.
func Run(cfg RunConfig) (RunResult, error) {
	cfg.fill()
	if cfg.Protocol == MARP {
		return runMARP(cfg)
	}
	return runBaseline(cfg)
}

func (c RunConfig) events() ([]workload.Event, error) {
	return workload.Generate(workload.Spec{
		Servers:           c.N,
		RequestsPerServer: c.RequestsPerServer,
		MeanInterarrival:  c.Mean,
		RateSkew:          c.RateSkew,
		Keys:              c.Keys,
		Seed:              c.Seed + 1000,
	})
}

func (c RunConfig) latencyModel() (simnet.LatencyModel, error) {
	if c.CostPerUnit > 0 {
		return simnet.CostProportional(c.CostPerUnit, simnet.Exponential(0, c.CostPerUnit/10)), nil
	}
	return c.Latency.model()
}

func runMARP(cfg RunConfig) (RunResult, error) {
	model, err := cfg.latencyModel()
	if err != nil {
		return RunResult{}, err
	}
	migration, claim, retry, backoff := cfg.Latency.timers()
	cl, err := desengine.New(desengine.Config{
		Seed:     cfg.Seed,
		Topology: cfg.Topology,
		Latency:  model,
		Cluster: core.Config{
			N:                  cfg.N,
			Shards:             cfg.Shards,
			GroupSize:          cfg.GroupSize,
			Geometry:           cfg.Geometry,
			BatchMaxRequests:   cfg.BatchSize,
			BatchMaxDelay:      batchDelay(cfg.BatchSize),
			MigrationTimeout:   migration,
			ClaimTimeout:       claim,
			RetryInterval:      retry,
			RetryBackoff:       backoff,
			DisableInfoSharing: cfg.DisableInfoSharing,
			RandomItinerary:    cfg.RandomItinerary,
		},
	})
	if err != nil {
		return RunResult{}, err
	}
	events, err := cfg.events()
	if err != nil {
		return RunResult{}, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() {
			if ev.Read {
				cl.Read(ev.Home, ev.Key)
				return
			}
			_ = cl.Submit(ev.Home, core.Set(ev.Key, ev.Value))
		})
	}
	cl.Sim().RunFor(workload.Span(events) + time.Millisecond)
	saturated := false
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		saturated = true
	}
	cl.Settle(5 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return RunResult{}, err
	}
	if !saturated {
		if err := cl.CheckConvergence(); err != nil {
			return RunResult{}, err
		}
	}
	var samples []metrics.Sample
	var makespan time.Duration
	for _, o := range cl.Outcomes() {
		samples = append(samples, metrics.Sample{
			ALT:     o.LockLatency().Duration(),
			ATT:     o.TotalLatency().Duration(),
			Visits:  o.Visits,
			ByTie:   o.ByTie,
			Retries: o.Retries,
			Failed:  o.Failed,
			Shards:  o.Shards,
		})
		if !o.Failed && o.DoneAt.Duration() > makespan {
			makespan = o.DoneAt.Duration()
		}
	}
	return RunResult{
		Config:    cfg,
		Summary:   metrics.Summarize(samples),
		Net:       cl.Network().Stats(),
		Agents:    cl.Platform().Stats(),
		Saturated: saturated,
		Makespan:  makespan,
	}, nil
}

func batchDelay(size int) time.Duration {
	if size <= 1 {
		return 0
	}
	return 20 * time.Millisecond
}

func runBaseline(cfg RunConfig) (RunResult, error) {
	model, err := cfg.latencyModel()
	if err != nil {
		return RunResult{}, err
	}
	var kind baseline.Kind
	switch cfg.Protocol {
	case MCV:
		kind = baseline.MCV
	case AvailableCopy:
		kind = baseline.AvailableCopy
	case PrimaryCopy:
		kind = baseline.PrimaryCopy
	default:
		return RunResult{}, fmt.Errorf("harness: unknown protocol %q", cfg.Protocol)
	}
	_, claim, _, backoff := cfg.Latency.timers()
	sys, err := baseline.New(baseline.Config{
		Kind:         kind,
		N:            cfg.N,
		Seed:         cfg.Seed,
		Topology:     cfg.Topology,
		Latency:      model,
		LockTimeout:  25 * claim,
		RetryBackoff: backoff,
	})
	if err != nil {
		return RunResult{}, err
	}
	events, err := cfg.events()
	if err != nil {
		return RunResult{}, err
	}
	for _, ev := range events {
		ev := ev
		sys.Sim().After(ev.At, func() {
			if ev.Read {
				sys.Read(ev.Home, ev.Key)
				return
			}
			_ = sys.Submit(ev.Home, ev.Key, ev.Value)
		})
	}
	sys.Sim().RunFor(workload.Span(events) + time.Millisecond)
	saturated := false
	if err := sys.RunUntilDone(30 * time.Minute); err != nil {
		saturated = true
	}
	sys.Settle(5 * time.Second)
	if !saturated {
		if err := sys.CheckConvergence(); err != nil {
			return RunResult{}, err
		}
	}
	var samples []metrics.Sample
	for _, r := range sys.Results() {
		samples = append(samples, metrics.Sample{
			ALT:     r.LockLatency().Duration(),
			ATT:     r.TotalLatency().Duration(),
			Retries: r.Retries,
			Failed:  r.Failed,
		})
	}
	return RunResult{
		Config:    cfg,
		Summary:   metrics.Summarize(samples),
		Net:       sys.Network().Stats(),
		Saturated: saturated,
	}, nil
}

// runMARPWithReads runs a MARP cluster over a mixed read/update workload
// with the given read fraction (the A5 experiment).
func runMARPWithReads(o FigureOptions, readFraction float64) (RunResult, error) {
	cfg := RunConfig{
		Protocol: MARP, N: 5, Seed: o.Seed, Mean: 25 * time.Millisecond,
		RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
	}
	cfg.fill()
	model, err := cfg.latencyModel()
	if err != nil {
		return RunResult{}, err
	}
	migration, claim, retry, backoff := cfg.Latency.timers()
	cl, err := desengine.New(desengine.Config{
		Seed: cfg.Seed, Latency: model,
		Cluster: core.Config{
			N:                cfg.N,
			MigrationTimeout: migration, ClaimTimeout: claim,
			RetryInterval: retry, RetryBackoff: backoff,
		},
	})
	if err != nil {
		return RunResult{}, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers:           cfg.N,
		RequestsPerServer: cfg.RequestsPerServer,
		MeanInterarrival:  cfg.Mean,
		ReadFraction:      readFraction,
		Seed:              cfg.Seed + 1000,
	})
	if err != nil {
		return RunResult{}, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() {
			if ev.Read {
				cl.Read(ev.Home, ev.Key)
				return
			}
			_ = cl.Submit(ev.Home, core.Set(ev.Key, ev.Value))
		})
	}
	cl.Sim().RunFor(workload.Span(events) + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return RunResult{}, err
	}
	cl.Settle(5 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return RunResult{}, err
	}
	if err := cl.CheckConvergence(); err != nil {
		return RunResult{}, err
	}
	var samples []metrics.Sample
	for _, o := range cl.Outcomes() {
		samples = append(samples, metrics.Sample{
			ALT:    o.LockLatency().Duration(),
			ATT:    o.TotalLatency().Duration(),
			Visits: o.Visits,
			ByTie:  o.ByTie,
			Failed: o.Failed,
		})
	}
	return RunResult{
		Config:  cfg,
		Summary: metrics.Summarize(samples),
		Net:     cl.Network().Stats(),
		Agents:  cl.Platform().Stats(),
	}, nil
}
