package harness

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/sweep"
)

// FigureOptions tunes the sweeps. Zero values give the full paper-scale
// sweeps; Quick shrinks everything for use inside testing.B loops.
type FigureOptions struct {
	Seed              int64
	RequestsPerServer int
	Means             []time.Duration
	Servers           []int
	Latency           LatencyPreset
	Quick             bool
	// Seeds > 1 repeats every sweep point with seeds Seed, Seed+1, ... and
	// reports mean±sd across the replications (Figures 2-4 only).
	Seeds int
	// Parallelism is the number of worker goroutines the sweep fans out
	// across (<= 0 means GOMAXPROCS). Every sweep point is an independent
	// deterministic simulation, so parallelism changes wall-clock time
	// only — the results and tables are identical at any setting.
	Parallelism int
	// Progress, when non-nil, is called after each sweep point completes
	// (serialized, possibly from a worker goroutine).
	Progress func(done, total int)
}

// runner builds the worker pool shared by every experiment sweep.
func (o FigureOptions) runner() sweep.Runner {
	return sweep.Runner{Parallelism: o.Parallelism, OnProgress: o.Progress}
}

// Sweep executes each config through Run on a worker pool, preserving
// point order: out[i] is the result of cfgs[i] at any parallelism. Errors
// carry the offending config's coordinates and are aggregated across points.
func Sweep(r sweep.Runner, cfgs []RunConfig) ([]RunResult, error) {
	return sweep.Run(r, cfgs, func(_ int, c RunConfig) (RunResult, error) {
		res, err := Run(c)
		if err != nil {
			return res, fmt.Errorf("%s n=%d seed=%d mean=%v: %w", c.Protocol, c.N, c.Seed, c.Mean, err)
		}
		return res, nil
	})
}

func (o *FigureOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RequestsPerServer == 0 {
		o.RequestsPerServer = 60
		if o.Quick {
			o.RequestsPerServer = 12
		}
	}
	if len(o.Means) == 0 {
		if o.Quick {
			o.Means = []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond}
		} else {
			for ms := 10; ms <= 100; ms += 10 {
				o.Means = append(o.Means, time.Duration(ms)*time.Millisecond)
			}
		}
	}
	if len(o.Servers) == 0 {
		o.Servers = []int{3, 4, 5}
	}
	if o.Latency == "" {
		// LAN reproduces the paper's Figure 4 crossover (~45 ms mean
		// inter-arrival); the heavier Prototype preset saturates the
		// fast end of the sweep (see EXPERIMENTS.md, calibration).
		o.Latency = LAN
	}
	if o.Seeds < 1 {
		o.Seeds = 1
	}
}

// meanSD formats the mean and (for Seeds > 1) the sample standard deviation
// of a per-replication statistic, in milliseconds.
func meanSD(results []RunResult, stat func(metrics.Summary) float64) string {
	n := float64(len(results))
	var sum float64
	for _, r := range results {
		sum += stat(r.Summary)
	}
	mean := sum / n
	if len(results) == 1 {
		return fmt.Sprintf("%.2f", mean/1e6)
	}
	var ss float64
	for _, r := range results {
		d := stat(r.Summary) - mean
		ss += d * d
	}
	sd := 0.0
	if n > 1 {
		sd = ss / (n - 1)
	}
	return fmt.Sprintf("%.2f±%.2f", mean/1e6, sqrt(sd)/1e6)
}

// sqrt avoids importing math for one call site.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Figure2 reproduces the paper's Figure 2: the average time for a mobile
// agent to obtain the lock (ALT) versus the mean request inter-arrival
// time, for 3, 4 and 5 replicated servers.
func Figure2(o FigureOptions) (*metrics.Table, []RunResult, error) {
	return latencySweep(o, "Figure 2: average time for obtaining the lock by a mobile agent (ALT, ms)",
		func(s metrics.Summary) float64 { return float64(s.MeanALT) })
}

// Figure3 reproduces the paper's Figure 3: the average total time to
// complete an update request (ATT), including the UPDATE/COMMIT messaging.
func Figure3(o FigureOptions) (*metrics.Table, []RunResult, error) {
	return latencySweep(o, "Figure 3: average time for completing a request (ATT, ms)",
		func(s metrics.Summary) float64 { return float64(s.MeanATT) })
}

func latencySweep(o FigureOptions, title string, stat func(metrics.Summary) float64) (*metrics.Table, []RunResult, error) {
	o.fill()
	note := fmt.Sprintf("%s latency, %d requests/server, exponential arrivals", o.Latency, o.RequestsPerServer)
	if o.Seeds > 1 {
		note += fmt.Sprintf(", mean±sd over %d seeds", o.Seeds)
	}
	tbl := &metrics.Table{
		Title:   title,
		Note:    note,
		Columns: []string{"mean-interarrival"},
	}
	for _, n := range o.Servers {
		tbl.Columns = append(tbl.Columns, fmt.Sprintf("%d servers", n))
	}
	// The grid flattens mean-major, then server count, then replication
	// seed, so the result slice reads exactly like the sequential loops
	// it replaced.
	var cfgs []RunConfig
	for _, mean := range o.Means {
		for _, n := range o.Servers {
			for r := 0; r < o.Seeds; r++ {
				cfgs = append(cfgs, RunConfig{
					Protocol: MARP, N: n, Mean: mean, Seed: o.Seed + int64(r),
					RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
				})
			}
		}
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	i := 0
	for _, mean := range o.Means {
		row := []string{mean.String()}
		for range o.Servers {
			row = append(row, meanSD(all[i:i+o.Seeds], stat))
			i += o.Seeds
		}
		tbl.AddRow(row...)
	}
	return tbl, all, nil
}

// Figure4 reproduces the paper's Figure 4: the percentage of requests whose
// lock is obtained by visiting K servers (K = 3, 4, 5) on a 5-server
// system, versus the mean inter-arrival time. At high request rates most
// agents must tour all five servers; at low rates the (N+1)/2 = 3 lower
// bound dominates.
func Figure4(o FigureOptions) (*metrics.Table, []RunResult, error) {
	if len(o.Means) == 0 {
		if o.Quick {
			o.Means = []time.Duration{15 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond}
		} else {
			for ms := 15; ms <= 120; ms += 15 {
				o.Means = append(o.Means, time.Duration(ms)*time.Millisecond)
			}
		}
	}
	o.fill()
	const n = 5
	tbl := &metrics.Table{
		Title:   "Figure 4: percentage of requests whose lock is obtained by visiting K servers (5 servers)",
		Note:    fmt.Sprintf("%s latency, %d requests/server", o.Latency, o.RequestsPerServer),
		Columns: []string{"mean-interarrival", "K=3 (%)", "K=4 (%)", "K=5 (%)", "mean visits"},
	}
	cfgs := make([]RunConfig, 0, len(o.Means))
	for _, mean := range o.Means {
		cfgs = append(cfgs, RunConfig{
			Protocol: MARP, N: n, Seed: o.Seed, Mean: mean,
			RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
		})
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		tbl.AddRow(o.Means[i].String(),
			fmt.Sprintf("%.1f", res.Summary.PRK(3)),
			fmt.Sprintf("%.1f", res.Summary.PRK(4)),
			fmt.Sprintf("%.1f", res.Summary.PRK(5)),
			fmt.Sprintf("%.2f", res.Summary.MeanVisits()),
		)
	}
	return tbl, all, nil
}

// CompareProtocols reproduces the paper's §4 narrative claim ("message
// passing latency is the predominant factor... message passing would incur
// larger overhead in a wide-area network"): MARP versus the three
// message-passing baselines, in LAN and WAN environments, across server
// counts.
func CompareProtocols(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	if len(o.Servers) == 3 && o.Servers[0] == 3 && o.Servers[2] == 5 {
		o.Servers = []int{3, 5, 7}
	}
	protocols := []Protocol{MARP, MCV, AvailableCopy, PrimaryCopy}
	presets := []LatencyPreset{LAN, WAN}
	tbl := &metrics.Table{
		Title:   "Comparison C1: mean ATT (ms) and messages per update, MARP vs message passing",
		Note:    fmt.Sprintf("%d requests/server; WAN rows use a mean inter-arrival of at least 250ms", o.RequestsPerServer),
		Columns: []string{"latency", "N"},
	}
	for _, p := range protocols {
		tbl.Columns = append(tbl.Columns, string(p)+" att", string(p)+" msg/upd")
	}
	// Grid order (preset-major, then N, then protocol) is part of the
	// result contract: bench_test.go indexes into it.
	var cfgs []RunConfig
	for _, preset := range presets {
		mean := o.Means[len(o.Means)/2]
		if preset == WAN && mean < 250*time.Millisecond {
			// Keep the offered load comparable relative to the network:
			// WAN round trips are ~100x LAN ones, so the same absolute
			// arrival rate would saturate every protocol and measure
			// queueing collapse instead of protocol structure.
			mean = 250 * time.Millisecond
		}
		for _, n := range o.Servers {
			for _, p := range protocols {
				cfgs = append(cfgs, RunConfig{
					Protocol: p, N: n, Seed: o.Seed, Mean: mean,
					RequestsPerServer: o.RequestsPerServer, Latency: preset,
				})
			}
		}
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	i := 0
	for _, preset := range presets {
		for _, n := range o.Servers {
			row := []string{string(preset), fmt.Sprintf("%d", n)}
			for range protocols {
				res := all[i]
				i++
				att := metrics.Ms(res.Summary.MeanATT)
				if res.Saturated {
					att = "saturated"
				}
				row = append(row, att, fmt.Sprintf("%.1f", res.MsgsPerUpdate()))
			}
			tbl.AddRow(row...)
		}
	}
	return tbl, all, nil
}

// MigrationBounds verifies Theorem 3 empirically: the winning agent visits
// between (N+1)/2 and N servers before knowing the result.
func MigrationBounds(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	servers := []int{3, 5, 7, 9}
	tbl := &metrics.Table{
		Title:   "Theorem 3: winner migration counts, bounds [(N+1)/2, N]",
		Note:    "rank-majority wins only; tie-break wins annotated separately",
		Columns: []string{"N", "bound-lo", "bound-hi", "min", "mean", "max", "tie wins", "in bounds"},
	}
	cfgs := make([]RunConfig, 0, len(servers))
	for _, n := range servers {
		cfgs = append(cfgs, RunConfig{
			Protocol: MARP, N: n, Seed: o.Seed, Mean: 20 * time.Millisecond,
			RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
		})
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		n := servers[i]
		lo, hi := n/2+1, n
		min, max, sum, count := n+1, 0, 0, 0
		for k, c := range res.Summary.VisitDist {
			if c == 0 {
				continue
			}
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
			sum += k * c
			count += c
		}
		inBounds := min >= lo && max <= hi
		meanV := 0.0
		if count > 0 {
			meanV = float64(sum) / float64(count)
		}
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", lo), fmt.Sprintf("%d", hi),
			fmt.Sprintf("%d", min), fmt.Sprintf("%.2f", meanV), fmt.Sprintf("%d", max),
			fmt.Sprintf("%d", res.Summary.TieCount), fmt.Sprintf("%v", inBounds))
	}
	return tbl, all, nil
}

// AblationInfoSharing measures the effect of the paper's server-mediated
// locking-information exchange (A1): with sharing off, agents learn only
// from their own visits.
func AblationInfoSharing(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title:   "Ablation A1: information sharing between agents and servers",
		Columns: []string{"sharing", "mean ALT (ms)", "mean ATT (ms)", "mean visits", "tie wins"},
	}
	settings := []bool{false, true}
	cfgs := make([]RunConfig, 0, len(settings))
	for _, off := range settings {
		cfgs = append(cfgs, RunConfig{
			Protocol: MARP, N: 5, Seed: o.Seed, Mean: 20 * time.Millisecond,
			RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
			DisableInfoSharing: off,
		})
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		label := "on"
		if settings[i] {
			label = "off"
		}
		tbl.AddRow(label, metrics.Ms(res.Summary.MeanALT), metrics.Ms(res.Summary.MeanATT),
			fmt.Sprintf("%.2f", res.Summary.MeanVisits()), fmt.Sprintf("%d", res.Summary.TieCount))
	}
	return tbl, all, nil
}

// AblationRouting measures cost-aware itinerary ordering against a random
// itinerary (A2) on a geographically dispersed topology — the paper's
// "should tend to communicate with nearby replicas" design point. Two load
// regimes are reported: on a light (serial) load the tour cost dominates and
// cost-ordering wins; under contention the deterministic greedy routes
// convoy competing agents onto the same servers and random itineraries can
// come out ahead — a trade-off the paper does not discuss.
func AblationRouting(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title:   "Ablation A2: cost-ordered vs random itinerary (geo topology, cost-proportional latency)",
		Columns: []string{"load", "itinerary", "mean ALT (ms)", "mean ATT (ms)", "p95 ATT (ms)"},
	}
	var all []RunResult
	regimes := []struct {
		label string
		mean  time.Duration
		reqs  int
	}{
		{"serial", 3 * time.Second, o.RequestsPerServer / 4},
		{"contended", 400 * time.Millisecond, o.RequestsPerServer},
	}
	type point struct {
		regime string
		label  string
	}
	var cfgs []RunConfig
	var labels []point
	for _, regime := range regimes {
		reqs := regime.reqs
		if reqs < 2 {
			reqs = 2
		}
		for _, random := range []bool{false, true} {
			// A fresh deterministic geo topology per run (same seed ->
			// same map), generated serially here so no two concurrent
			// points ever share a topology or a random source.
			topoRng := simnet.RandomGeo(7, newRand(o.Seed))
			cfgs = append(cfgs, RunConfig{
				Protocol: MARP, N: 7, Seed: o.Seed, Mean: regime.mean,
				RequestsPerServer: reqs, Latency: WAN,
				Topology:        topoRng,
				CostPerUnit:     60 * time.Millisecond,
				RandomItinerary: random,
			})
			label := "cost-ordered"
			if random {
				label = "random"
			}
			labels = append(labels, point{regime.label, label})
		}
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		tbl.AddRow(labels[i].regime, labels[i].label, metrics.Ms(res.Summary.MeanALT),
			metrics.Ms(res.Summary.MeanATT), metrics.Ms(res.Summary.P95ATT))
	}
	return tbl, all, nil
}

// AblationBatching measures the request-batching policy (A3): more requests
// per agent amortize the tour.
func AblationBatching(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title:   "Ablation A3: requests per agent (batching)",
		Columns: []string{"batch", "agents", "mean ATT (ms)", "msgs/update", "bytes/update"},
	}
	batches := []int{1, 2, 4, 8}
	cfgs := make([]RunConfig, 0, len(batches))
	for _, b := range batches {
		cfgs = append(cfgs, RunConfig{
			Protocol: MARP, N: 5, Seed: o.Seed, Mean: 15 * time.Millisecond,
			RequestsPerServer: o.RequestsPerServer, Latency: o.Latency,
			BatchSize: b,
		})
	}
	all, err := Sweep(o.runner(), cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		tbl.AddRow(fmt.Sprintf("%d", batches[i]), fmt.Sprintf("%d", res.Agents.AgentsCreated),
			metrics.Ms(res.Summary.MeanATT),
			fmt.Sprintf("%.1f", res.MsgsPerUpdate()),
			fmt.Sprintf("%.0f", res.BytesPerUpdate()))
	}
	return tbl, all, nil
}

// ReadRatio runs the A5 experiment: the paper's premise is a read-dominated
// Internet workload ("the protocol described uses a strategy that yields
// good performance for an object that has a high read-to-update ratio, since
// a read operation needs only to access the local copy", §5). Reads are
// local and pay no network cost; the experiment quantifies how the average
// per-operation latency falls as the read fraction rises, with the update
// path's cost unchanged.
func ReadRatio(o FigureOptions) (*metrics.Table, []RunResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title:   "Ablation A5: read-to-update ratio (reads served from the local copy)",
		Note:    fmt.Sprintf("%s latency, %d ops/server", o.Latency, o.RequestsPerServer),
		Columns: []string{"read fraction", "updates", "mean update ATT (ms)", "mean op latency (ms)", "msgs/op"},
	}
	fracs := []float64{0, 0.5, 0.9, 0.99}
	all, err := sweep.Run(o.runner(), fracs, func(_ int, frac float64) (RunResult, error) {
		res, err := runMARPWithReads(o, frac)
		if err != nil {
			return res, fmt.Errorf("read fraction %.2f: %w", frac, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range all {
		frac := fracs[i]
		updates := res.Summary.Count - res.Summary.Failures
		totalOps := res.Config.RequestsPerServer * res.Config.N
		// Reads are synchronous local lookups: zero network latency.
		opLatency := float64(res.Summary.MeanATT) * float64(updates) / float64(totalOps)
		tbl.AddRow(fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%d", updates),
			metrics.Ms(res.Summary.MeanATT),
			fmt.Sprintf("%.2f", opLatency/1e6),
			fmt.Sprintf("%.1f", float64(res.Net.MessagesSent)/float64(totalOps)))
	}
	return tbl, all, nil
}
