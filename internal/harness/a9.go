package harness

import (
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/wal"
	"repro/internal/workload"
)

// A9 measures the live path's raw speed: committed updates per wall-clock
// second on real TCP nodes with the WAL at fsync=commit against a modelled
// NVMe device, ablated across the three live-path optimisations this repo
// grew on top of the seed protocol — the zero-alloc wire codec (vs the
// legacy gob fabric), pipelined hop-sequenced migration acks (vs one ack
// message per migration), and WAL group commit (vs one fsync per commit
// barrier). The workload is deliberately low-contention (hash-sharded keys,
// deep backlog) so the table isolates the mechanics under test rather than
// locking-list queueing, which A8 already characterises.

const (
	// a9Servers keeps the cluster small enough that three single-threaded
	// actor loops saturate before the loopback network does.
	a9Servers = 3
	// a9Shards spreads the locking lists so agents for different keys never
	// queue behind each other; raw per-commit cost dominates. One shard per
	// key makes every key its own locking domain (the A8 top row).
	a9Shards = 64
	// a9Keys is sized well above the in-flight agent count, keeping
	// head-of-line blocking rare without making every key unique.
	a9Keys = 64
)

// a9Retry/a9Backoff are the abort-retry timers for every variant. Contention
// backoff, unlike the migration/claim timeouts, carries no false-positive
// risk on a loaded host, so it can sit well below the protocol default; the
// low-contention workload keeps retries rare regardless. Variables, not
// constants, so one-off diagnostics can sweep them.
var (
	a9Retry   = 100 * time.Millisecond
	a9Backoff = 10 * time.Millisecond
)

// a9Knobs is one ablation row: which of the three optimisations are on.
type a9Knobs struct {
	label       string
	codec       string        // fabric framing: "gob" or "wire"
	gobState    bool          // force gob agent-state serialization too
	ackDelay    time.Duration // migration ack aggregation window (0 = legacy)
	commitDelay time.Duration // WAL group-commit window (0 = fsync per barrier)
}

func a9Rows() []a9Knobs {
	const ack = 500 * time.Microsecond
	// The group-commit window is sized to the device: parking a barrier
	// costs up to one window of added commit latency, so a window near the
	// modelled fsync latency (a7SyncNVMe) batches every barrier that shows
	// up during an fsync-sized interval while at most doubling the
	// latency. 2x the device latency measurably hurts this low-contention
	// workload (commit-barrier latency, not fsync count, then dominates).
	const grp = 100 * time.Microsecond
	return []a9Knobs{
		{label: "baseline (gob, per-ack, per-commit fsync)", codec: "gob", gobState: true},
		{label: "+wire codec", codec: "wire"},
		{label: "+pipelined acks", codec: "wire", ackDelay: ack},
		{label: "+group commit", codec: "wire", commitDelay: grp},
		{label: "all three", codec: "wire", ackDelay: ack, commitDelay: grp},
	}
}

// a9Cell is the measurement a single run yields.
type a9Cell struct {
	cps     float64
	att     time.Duration
	fsyncs  uint64
	commits int
	batches int
	bytes   int
}

// LiveSpeed runs the A9 experiment: the ablation table over real TCP nodes.
//
// The variants are interleaved within each seed (seed-major, variant-minor)
// rather than run as five consecutive blocks: wall-clock cells on a shared
// machine drift — background reclaim, whatever ran before this experiment,
// host noise — and block order would hand each variant a different slice of
// that drift. Interleaving spreads any slow patch across all five rows, so
// the speedup column measures the knobs, not the weather.
func LiveSpeed(o FigureOptions) ([]*metrics.Table, error) {
	o.fill()
	reqs, seeds := 60, 5
	if o.Quick {
		reqs, seeds = 15, 1
	}
	seedNote := "1 seed"
	if seeds > 1 {
		seedNote = fmt.Sprintf("mean of %d interleaved seeds", seeds)
	}
	tbl := &metrics.Table{
		Title: "Ablation A9: live-path raw speed — codec x ack pipelining x group commit (wall clock)",
		Note: fmt.Sprintf("N=%d in-process replicas over loopback TCP, fsync=commit on a modelled %v-fsync NVMe, "+
			"%d shards, %d keys, %d requests/server, %s; speedup is commits/s over the gob stop-and-wait baseline",
			a9Servers, a7SyncNVMe, a9Shards, a9Keys, reqs, seedNote),
		Columns: []string{"variant", "commits/s", "speedup", "ATT (ms)", "fsyncs/commit", "group batches", "MB sent"},
	}
	rows := a9Rows()
	sums := make([]a9Cell, len(rows))
	attSums := make([]time.Duration, len(rows))
	for seed := int64(0); seed < int64(seeds); seed++ {
		for i, k := range rows {
			cell, err := liveSpeedCell(o.Seed+seed*100, k, reqs)
			if err != nil {
				return nil, fmt.Errorf("a9 %q seed=%d: %w", k.label, o.Seed+seed*100, err)
			}
			sums[i].cps += cell.cps
			attSums[i] += cell.att
			sums[i].fsyncs += cell.fsyncs
			sums[i].commits += cell.commits
			sums[i].batches += cell.batches
			sums[i].bytes += cell.bytes
		}
	}
	var baseline float64
	for i, k := range rows {
		cps := sums[i].cps / float64(seeds)
		if baseline == 0 {
			baseline = cps
		}
		tbl.AddRow(
			k.label,
			fmt.Sprintf("%.0f", cps),
			fmt.Sprintf("%.2fx", cps/baseline),
			fmt.Sprintf("%.2f", (attSums[i]/time.Duration(seeds)).Seconds()*1e3),
			fmt.Sprintf("%.2f", float64(sums[i].fsyncs)/float64(sums[i].commits)),
			fmt.Sprint(sums[i].batches/seeds),
			fmt.Sprintf("%.2f", float64(sums[i].bytes)/float64(seeds)/(1<<20)),
		)
	}
	return []*metrics.Table{tbl}, nil
}

// liveSpeedCell runs one ablation variant on the live engine and returns
// its throughput and cost counters.
func liveSpeedCell(seed int64, k a9Knobs, reqs int) (a9Cell, error) {
	// The fast path is latency-bound, so GC pauses and background scavenger
	// work land directly on the commit chain. Heap state inherited from
	// whatever ran before this experiment (the full bench runs A9 after the
	// 200s A8 sweep) would otherwise skew the ablation — the scavenger
	// returning A8's heap to the OS trickles through A9's cells on a small
	// machine. Collect and scavenge synchronously so each cell starts clean.
	debug.FreeOSMemory()
	n := a9Servers
	addrs := make(map[runtime.NodeID]string, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return a9Cell{}, err
		}
		addrs[runtime.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	// Same timer rationale as A8's live cells: loaded actor loops, not the
	// loopback network, are the latency source, so timers stay near the
	// protocol defaults to keep false aborts and false deaths out of the
	// measurement.
	migration, claim := 300*time.Millisecond, 500*time.Millisecond
	retry, backoff := a9Retry, a9Backoff
	var dur *core.DurabilityConfig
	if k.commitDelay >= 0 {
		dur = &core.DurabilityConfig{
			Policy: wal.PolicyCommit,
			Backend: func(runtime.NodeID) disk.Backend {
				return disk.WithSyncLatency(disk.NewMem(), a7SyncNVMe)
			},
			GroupCommitDelay: k.commitDelay,
		}
	}
	nodes := make([]*live.Node, n)
	for i := 1; i <= n; i++ {
		node, err := live.StartNode(live.NodeConfig{
			Self:  runtime.NodeID(i),
			Addrs: addrs,
			Seed:  seed + int64(i),
			Codec: k.codec,
			Cluster: core.Config{
				Shards:           a9Shards,
				MigrationTimeout: migration, ClaimTimeout: claim,
				RetryInterval: retry, RetryBackoff: backoff,
				MigrateAckDelay: k.ackDelay,
				GobAgentState:   k.gobState,
				Durability:      dur,
			},
		})
		if err != nil {
			for _, up := range nodes[:i-1] {
				up.Close()
			}
			return a9Cell{}, err
		}
		nodes[i-1] = node
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()

	events, err := workload.Generate(workload.Spec{
		Servers: n, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Keys: a9Keys,
		Seed: seed + 9000,
	})
	if err != nil {
		return a9Cell{}, err
	}
	start := time.Now()
	for _, ev := range events {
		node := nodes[ev.Home-1]
		var serr error
		if !node.Eng.Do(func() { serr = node.Cluster.Submit(ev.Home, core.Set(ev.Key, ev.Value)) }) {
			return a9Cell{}, fmt.Errorf("engine closed during submit")
		}
		if serr != nil {
			return a9Cell{}, serr
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.Node) {
			defer wg.Done()
			errs[i] = node.Cluster.RunUntilDone(2 * time.Minute)
		}(i, node)
	}
	wg.Wait()
	makespan := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return a9Cell{}, fmt.Errorf("node %d: %w", i+1, err)
		}
	}
	var cell a9Cell
	var attSum time.Duration
	for _, node := range nodes {
		var outs []core.Outcome
		var snap metrics.Snapshot
		if !node.Eng.Do(func() {
			outs = node.Cluster.Outcomes()
			snap = node.Cluster.Metrics().Gather()
		}) {
			return a9Cell{}, fmt.Errorf("engine closed during outcome read")
		}
		for _, o := range outs {
			if o.Failed {
				continue
			}
			cell.commits++
			attSum += o.TotalLatency().Duration()
		}
		cell.fsyncs += uint64(snap.Value("marp.disk.syncs"))
		cell.batches += int(snap.Value("marp.wal.group_batches"))
		cell.bytes += int(snap.Value("marp.fabric.bytes_sent"))
	}
	if cell.commits == 0 {
		return a9Cell{}, fmt.Errorf("no updates committed")
	}
	cell.cps = float64(cell.commits) / makespan.Seconds()
	cell.att = attSum / time.Duration(cell.commits)
	return cell, nil
}
