package harness

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/desengine"
	"repro/internal/optimistic"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/workload"
)

// TestA10WANTentativeBeatsMARP is the A10 acceptance bound on the
// simulator: under WAN latency the optimistic tentative ALT must undercut
// MARP's locking ALT (the pessimistic agent tours hundred-millisecond
// links before the client hears anything; the tentative commit never waits
// on the network), while the run still converges to one digest-verified
// stable prefix.
func TestA10WANTentativeBeatsMARP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a WAN MARP simulation")
	}
	opt, err := runOptimisticDES(OptRunConfig{
		N: 5, Seed: 1, Latency: WAN, RequestsPerServer: 12, Mean: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	marp, err := Run(RunConfig{
		Protocol: MARP, N: 5, Seed: 1, Mean: 50 * time.Millisecond,
		RequestsPerServer: 12, Latency: WAN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TentativeALT >= marp.Summary.MeanALT {
		t.Fatalf("WAN: optimistic tentative ALT %v did not beat MARP ALT %v",
			opt.TentativeALT, marp.Summary.MeanALT)
	}
	if opt.Committed != 5*12 {
		t.Fatalf("committed %d of %d", opt.Committed, 5*12)
	}
	if opt.Digest == "" {
		t.Fatal("no stable digest reported")
	}
	t.Logf("WAN: optimistic tentative ALT %v (stable lag %v) vs MARP ALT %v",
		opt.TentativeALT, opt.StableLag, marp.Summary.MeanALT)
}

// TestA10LossGridConverges is the other half of the A10 acceptance claim:
// at 10%% and 30%% WAN message loss every replica still converges to the
// identical digest-verified stable prefix, with no retransmission layer —
// the periodic gossip rounds re-carry whatever was lost.
// runOptimisticDES itself fails the run on divergence or a stuck
// tentative, so the assertions here are the completeness counts.
func TestA10LossGridConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("runs lossy WAN simulations")
	}
	for _, loss := range []float64{0.10, 0.30} {
		res, err := runOptimisticDES(OptRunConfig{
			N: 5, Seed: 3, Latency: WAN, Loss: loss,
			RequestsPerServer: 10, Mean: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("loss=%.2f: %v", loss, err)
		}
		if res.Committed != 5*10 {
			t.Fatalf("loss=%.2f: committed %d of %d", loss, res.Committed, 5*10)
		}
		if res.Lost == 0 {
			t.Fatalf("loss=%.2f: fault model dropped nothing; the cell tested reliable delivery", loss)
		}
		t.Logf("loss=%.0f%%: stable lag %v, %d messages lost, digest %s",
			loss*100, res.StableLag, res.Lost, res.Digest)
	}
}

// TestChaosOptimisticCell runs the harshest chaos-grid cell (30%% loss +
// churn: minority partition, loss burst, crash blip on a Mem-journaled
// replica) and requires the single digest-verified stable prefix.
func TestChaosOptimisticCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a churned lossy simulation")
	}
	res, err := runOptimisticDES(OptRunConfig{
		N: 5, Seed: 7, Latency: LAN, Loss: 0.30,
		RequestsPerServer: 10, Mean: 30 * time.Millisecond,
		Durable: true, Churn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 5*10 {
		t.Fatalf("committed %d of %d", res.Committed, 5*10)
	}
	t.Logf("chaos cell: stable lag %v, %d rollbacks, digest %s",
		res.StableLag, res.Rollbacks, res.Digest)
}

// stableTxnSet runs one engine's outcomes into the sorted set of stable
// transaction IDs, failing if anything drained aborted or tentative.
func stableTxnSet(t *testing.T, engine string, outs []optimistic.Outcome) []string {
	t.Helper()
	set := make([]string, 0, len(outs))
	for _, o := range outs {
		if o.Aborted || o.StableAt == 0 {
			t.Fatalf("%s: %s drained without stabilizing (aborted=%v)", engine, o.Txn, o.Aborted)
		}
		set = append(set, o.Txn)
	}
	sort.Strings(set)
	return set
}

// TestOptCrossEngineEquivalence feeds the identical workload to the
// simulated cluster and to three live replica processes and requires the
// same stable commit set on every replica of both engines. Transaction IDs
// are engine-independent (origin, shard, per-origin sequence), so equal
// sets mean both engines elected exactly the same submissions; stable
// ORDER is compared within each engine only (digests), because it hangs
// off Lamport stamps, which depend on message interleaving and therefore
// legitimately differ between a simulated and a wall-clock run.
func TestOptCrossEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("starts live TCP replicas")
	}
	const n, reqs = 3, 8
	spec := workload.Spec{
		Servers: n, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Seed: 42,
	}

	// Simulated half.
	desRes, err := runOptimisticDES(OptRunConfig{
		N: n, Seed: 42, Latency: LAN, RequestsPerServer: reqs, Mean: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// runOptimisticDES generates with Seed+1000 and already verified
	// per-replica digest agreement; regenerate the same events for the
	// live half and rebuild the DES outcome set from a second run of the
	// same config (outcomes are not returned by the helper).
	desSet, err := optTxnSetDES(t, n, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(desSet) != n*reqs || desRes.Committed != n*reqs {
		t.Fatalf("DES stabilized %d of %d", len(desSet), n*reqs)
	}

	// Live half: three replica processes over loopback TCP.
	events, err := workload.Generate(workload.Spec{
		Servers: spec.Servers, RequestsPerServer: spec.RequestsPerServer,
		MeanInterarrival: spec.MeanInterarrival, Seed: spec.Seed + 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := freeAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*live.OptNode, n)
	for i := 1; i <= n; i++ {
		node, err := live.StartOptNode(live.OptNodeConfig{
			Self: runtime.NodeID(i), Addrs: addrs, Seed: int64(i),
			GossipInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i-1] = node
	}
	for _, ev := range events {
		node := nodes[ev.Home-1]
		var serr error
		if !node.Eng.Do(func() { _, serr = node.Cluster.Submit(ev.Home, ev.Key, ev.Value) }) {
			t.Fatal("engine closed during submit")
		}
		if serr != nil {
			t.Fatal(serr)
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.OptNode) {
			defer wg.Done()
			errs[i] = node.Cluster.RunUntilStable(time.Minute, uint64(len(events)))
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("live node %d: %v", i+1, err)
		}
	}
	// Each live process records outcomes for its own submissions only, so
	// the cluster-wide stable commit set is the union across processes; the
	// stable-prefix digest must agree at every process.
	digest := ""
	var allOuts []optimistic.Outcome
	for i, node := range nodes {
		var d string
		var derr error
		var outs []optimistic.Outcome
		if !node.Eng.Do(func() {
			d, _, derr = node.Cluster.StableDigest(runtime.NodeID(i + 1))
			outs = node.Cluster.Outcomes()
		}) {
			t.Fatal("engine closed during digest read")
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if digest == "" {
			digest = d
		} else if d != digest {
			t.Fatalf("live replicas diverged: node %d digest %s != %s", i+1, d, digest)
		}
		allOuts = append(allOuts, outs...)
	}
	liveSet := stableTxnSet(t, "live", allOuts)
	if len(liveSet) != len(desSet) {
		t.Fatalf("live stabilized %d transactions, DES %d", len(liveSet), len(desSet))
	}
	for i := range desSet {
		if liveSet[i] != desSet[i] {
			t.Fatalf("stable commit sets differ at %d: live %s vs DES %s", i, liveSet[i], desSet[i])
		}
	}
	t.Logf("both engines stabilized the identical %d-transaction commit set", len(desSet))
}

// optTxnSetDES re-runs the DES half of the equivalence workload (seed 42,
// the same spec runOptimisticDES derives) and returns its sorted stable
// transaction-ID set.
func optTxnSetDES(t *testing.T, n, reqs int) ([]string, error) {
	t.Helper()
	cl, err := desengine.NewOptimistic(desengine.OptConfig{
		Seed:    42,
		Cluster: optimistic.Config{N: n, GossipInterval: LAN.optGossip()},
	})
	if err != nil {
		return nil, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers: n, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Seed: 42 + 1000,
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() { _, _ = cl.Submit(ev.Home, ev.Key, ev.Value) })
	}
	cl.Sim().RunFor(workload.Span(events) + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return nil, err
	}
	if err := cl.CheckConvergence(); err != nil {
		return nil, err
	}
	return stableTxnSet(t, "DES", cl.Outcomes()), nil
}
