package harness

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/failure"
	"repro/internal/simnet"
)

// propChurn returns one of four churn profiles over a workload of the given
// span. All of them keep node 1 up (so submissions homed there are never
// silently dropped at dispatch) and keep a mutually reachable majority —
// Validate re-proves both below, so a bug here fails loudly.
func propChurn(pick uint8, span time.Duration) failure.Schedule {
	switch pick % 4 {
	case 1:
		victim := simnet.NodeID(2 + int(pick)%4) // one of 2..5
		return failure.Blip(victim, span/4, span/3)
	case 2:
		// Node 1 in the majority side: its agents keep committing.
		return failure.PartitionWindow(span/5, span/2,
			[]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})
	case 3:
		// Node 1 in the minority side: its agents must park and retry
		// until the heal restores a reachable majority.
		return failure.PartitionWindow(span/5, span/2,
			[]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5})
	}
	return nil
}

// TestPropertyLossyMajorityStillCommits is the ISSUE's liveness property: for
// any loss rate up to 30% and any valid churn schedule that preserves a
// connected majority, every submitted request commits and the replicas
// converge.
func TestPropertyLossyMajorityStillCommits(t *testing.T) {
	const n, requests = 5, 6
	prop := func(seed uint16, lossRaw, pick uint8) bool {
		loss := float64(lossRaw%31) / 100 // 0% .. 30%
		cl, err := desengine.New(desengine.Config{
			Seed:   int64(seed),
			Faults: simnet.NewFaultModel(int64(seed)+7, loss, 0.05),
			Cluster: core.Config{
				N:                  n,
				Reliable:           true,
				RetransmitBase:     10 * time.Millisecond,
				RetransmitAttempts: 12,
				RegenerateAgents:   true,
				MigrationTimeout:   60 * time.Millisecond,
				ClaimTimeout:       250 * time.Millisecond,
				RetryInterval:      120 * time.Millisecond,
			},
		})
		if err != nil {
			t.Log(err)
			return false
		}
		span := requests * 60 * time.Millisecond
		for i := 0; i < requests; i++ {
			i := i
			cl.Sim().After(time.Duration(i)*60*time.Millisecond, func() {
				_ = cl.Submit(1, core.Set("k", string(rune('a'+i))))
			})
		}
		sched := propChurn(pick, span)
		if err := sched.Validate(n, (n-1)/2); err != nil {
			t.Logf("generated schedule invalid: %v", err)
			return false
		}
		sched.Apply(func(d time.Duration, fn func()) { cl.Sim().After(d, fn) }, cl)
		cl.Sim().RunFor(span + time.Millisecond)
		if err := cl.RunUntilDone(30 * time.Minute); err != nil {
			t.Logf("loss=%.2f pick=%d: %v", loss, pick%4, err)
			return false
		}
		cl.Settle(10 * time.Second)
		if err := cl.Referee().Err(); err != nil {
			t.Logf("loss=%.2f pick=%d referee: %v", loss, pick%4, err)
			return false
		}
		outs := cl.Outcomes()
		if len(outs) != requests {
			t.Logf("loss=%.2f pick=%d: %d outcomes, want %d", loss, pick%4, len(outs), requests)
			return false
		}
		for _, o := range outs {
			if o.Failed {
				t.Logf("loss=%.2f pick=%d: outcome failed: %+v", loss, pick%4, o)
				return false
			}
		}
		if err := cl.CheckConvergence(); err != nil {
			t.Logf("loss=%.2f pick=%d convergence: %v", loss, pick%4, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
	// quick's generator may not hit every churn shape; pin each one at the
	// 30% loss bound so all four are always exercised.
	for pick := uint8(0); pick < 4; pick++ {
		if !prop(99, 30, pick) {
			t.Fatalf("churn shape %d failed at the 30%% loss bound", pick)
		}
	}
}

// TestChaosDeterministicAcrossParallelism re-runs the full A6 grid with 1 and
// 8 sweep workers: identical tables and result structs, or the experiment is
// not reproducible.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full A6 grid")
	}
	run := func(par int) (string, []ChaosResult) {
		tbl, res, err := Chaos(FigureOptions{Quick: true, Seed: 5, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return tbl.String(), res
	}
	t1, r1 := run(1)
	t8, r8 := run(8)
	if t1 != t8 {
		t.Fatalf("tables differ across parallelism:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", t1, t8)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("results differ across parallelism:\n%+v\n%+v", r1, r8)
	}
}

// TestChaosGridSmoke is the CI smoke: the quick A6 grid must drain, converge,
// and pass the referee at every cell (runChaos turns any violation into an
// error), and the lossy cells must show the recovery stack actually working.
func TestChaosGridSmoke(t *testing.T) {
	tbl, res, err := Chaos(FigureOptions{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(chaosGrid()) {
		t.Fatalf("%d results, want %d", len(res), len(chaosGrid()))
	}
	for _, r := range res {
		if !r.Converged {
			t.Fatalf("cell %+v did not converge", r.Point)
		}
		if r.Point.Loss == 0 && !r.Point.Churn {
			if r.Lost != 0 || r.Reliable.Retransmissions != 0 {
				t.Fatalf("clean cell saw faults: %+v", r)
			}
			continue
		}
		if r.Point.Loss >= 0.10 {
			if r.Lost == 0 {
				t.Fatalf("cell %+v: fault model ate no messages", r.Point)
			}
			if r.Reliable.Retransmissions == 0 {
				t.Fatalf("cell %+v: no retransmissions under loss", r.Point)
			}
			if r.Reliable.DuplicatesSuppressed == 0 {
				t.Fatalf("cell %+v: no duplicates suppressed", r.Point)
			}
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
}
