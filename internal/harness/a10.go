package harness

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/optimistic"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/simnet"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// A10 is the optimistic-commitment showdown: the same workloads that drive
// the pessimistic A-series, run against internal/optimistic. The protocol
// trades MARP's lock-then-commit round trips for a tentative commit at
// LOCAL latency plus an asynchronous stability lag, so the experiment
// reports both numbers side by side — the ALT a client observes, and how
// long the update stays tentative before the deterministic election makes
// it immutable. Three tables:
//
//   - A10a (simulator): LAN and WAN, optimistic vs MARP and the two
//     message-passing baselines. The headline is the WAN row — MARP's ALT
//     carries ring visits over hundred-millisecond links while the
//     optimistic ALT stays local.
//   - A10b (simulator): a WAN loss grid. No retransmission layer exists or
//     is needed: every gossip round re-advertises and re-carries whatever
//     the destination still lacks, so loss stretches the stability lag and
//     nothing else. Every cell must converge to one digest-verified stable
//     prefix.
//   - A10c (live engine): three replica processes over loopback TCP, MARP
//     vs optimistic, wall clock. Machine-dependent like A8's live table;
//     the shape — tentative ALT orders of magnitude under lock ALT — is
//     the result.

// Optimistic protocol name for A10 rows.
const OPT Protocol = "optimistic"

// optGossip returns the reconciliation launch period proportionate to the
// latency preset: a few one-way delays, so an agent generation is usually
// in flight without flooding the ring.
func (p LatencyPreset) optGossip() time.Duration {
	switch p {
	case LAN:
		return 25 * time.Millisecond
	case WAN:
		return 250 * time.Millisecond
	default: // Prototype
		return 60 * time.Millisecond
	}
}

// OptRunConfig describes one optimistic simulator run.
type OptRunConfig struct {
	N                 int
	Seed              int64
	Latency           LatencyPreset
	Loss              float64 // fault-model message loss (0 = reliable)
	RequestsPerServer int
	Mean              time.Duration
	Keys              int
	// Durable journals every replica on a Mem backend — required when the
	// run crashes nodes (Churn).
	Durable bool
	// Churn applies the A6 churn profile: minority partition window, loss
	// burst, one crash blip.
	Churn bool
}

// OptRunResult is one optimistic run's aggregation.
type OptRunResult struct {
	Committed    int           // submissions that reached the stable prefix
	Aborted      int           // election losers (0 without CAS guards)
	Refused      int           // submits rejected at the origin (replica down)
	TentativeALT time.Duration // mean submit -> tentative-commit latency
	StableLag    time.Duration // mean submit -> stable latency, at the origin
	Rollbacks    int           // tentative executions displaced by reordering
	GossipHops   int           // reconciliation-agent hops hosted
	MsgsPerUpd   float64       // fabric messages per stable update
	Lost         int           // messages eaten by the fault model
	Digest       string        // the converged stable-prefix digest (all replicas equal)
}

// runOptimisticDES drives one optimistic cluster on the simulator through
// the standard workload generator and verifies the protocol's oracles:
// every submission elected, every replica converged on one digest-verified
// stable prefix.
func runOptimisticDES(cfg OptRunConfig) (OptRunResult, error) {
	model, err := cfg.Latency.model()
	if err != nil {
		return OptRunResult{}, err
	}
	var faults *simnet.FaultModel
	if cfg.Loss > 0 {
		faults = simnet.NewFaultModel(cfg.Seed+7000, cfg.Loss, 0.05)
	}
	ocfg := optimistic.Config{N: cfg.N, GossipInterval: cfg.Latency.optGossip()}
	if cfg.Durable {
		ocfg.Durability = &optimistic.DurabilityConfig{
			Backend: func(runtime.NodeID) disk.Backend { return disk.NewMem() },
		}
	}
	cl, err := desengine.NewOptimistic(desengine.OptConfig{
		Seed: cfg.Seed, Latency: model, Faults: faults, Cluster: ocfg,
	})
	if err != nil {
		return OptRunResult{}, err
	}
	events, err := workload.Generate(workload.Spec{
		Servers:           cfg.N,
		RequestsPerServer: cfg.RequestsPerServer,
		MeanInterarrival:  cfg.Mean,
		Keys:              cfg.Keys,
		Seed:              cfg.Seed + 1000,
	})
	if err != nil {
		return OptRunResult{}, err
	}
	// A down replica cannot host a tentative commit — that IS the protocol's
	// availability story, a local up replica — so submits during a crash
	// blip are refused and counted, not retried.
	refused := 0
	for _, ev := range events {
		ev := ev
		cl.Sim().After(ev.At, func() {
			if ev.Read {
				_, _, _ = cl.Read(ev.Home, ev.Key, true)
				return
			}
			if _, err := cl.Submit(ev.Home, ev.Key, ev.Value); err != nil {
				refused++
			}
		})
	}
	span := workload.Span(events)
	if cfg.Churn {
		sched := chaosSchedule(span)
		if err := sched.Validate(cfg.N, (cfg.N-1)/2); err != nil {
			return OptRunResult{}, err
		}
		sched.Apply(func(d time.Duration, fn func()) { cl.Sim().After(d, fn) },
			&optChaosTarget{cl: cl.Cluster})
	}
	cl.Sim().RunFor(span + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return OptRunResult{}, err
	}
	cl.Settle(5 * time.Second)
	if err := cl.CheckConvergence(); err != nil {
		return OptRunResult{}, err
	}
	res := OptRunResult{Refused: refused}
	// Digest-verified convergence: CheckConvergence compared the logs
	// entry by entry; the digests make the verdict independently checkable
	// (the same fold `marpctl digest` reports).
	for _, id := range cl.LocalNodes() {
		d, _, err := cl.StableDigest(id)
		if err != nil {
			return OptRunResult{}, err
		}
		if res.Digest == "" {
			res.Digest = d
		} else if d != res.Digest {
			return OptRunResult{}, fmt.Errorf("node %d stable digest %s != %s", id, d, res.Digest)
		}
	}
	var tentSum, lagSum time.Duration
	for _, o := range cl.Outcomes() {
		if o.Aborted {
			res.Aborted++
			continue
		}
		if o.StableAt == 0 {
			return OptRunResult{}, fmt.Errorf("%s drained while still tentative", o.Txn)
		}
		res.Committed++
		tentSum += o.TentativeAt.Sub(o.SubmittedAt)
		lagSum += o.StableAt.Sub(o.SubmittedAt)
	}
	if res.Committed > 0 {
		res.TentativeALT = tentSum / time.Duration(res.Committed)
		res.StableLag = lagSum / time.Duration(res.Committed)
	}
	snap := cl.Metrics().Gather()
	res.Rollbacks = int(snap.Value("marp.opt.rollbacks"))
	res.GossipHops = int(snap.Value("marp.opt.gossip_hops"))
	res.Lost = int(snap.Value("marp.fabric.messages_lost"))
	if res.Committed > 0 {
		res.MsgsPerUpd = snap.Value("marp.fabric.messages_sent") / float64(res.Committed)
	}
	return res, nil
}

// optChaosTarget adapts the optimistic cluster to failure.ChaosTarget:
// the schedule's hooks return nothing, the cluster's Crash/Recover return
// errors, and in a validated DES run those errors are programming mistakes
// (the harness always journals churned runs), so they fail fast.
type optChaosTarget struct{ cl *optimistic.Cluster }

func (t *optChaosTarget) Crash(id simnet.NodeID) {
	if err := t.cl.Crash(id); err != nil {
		panic("harness: " + err.Error())
	}
}

func (t *optChaosTarget) Recover(id simnet.NodeID) {
	if err := t.cl.Recover(id); err != nil {
		panic("harness: " + err.Error())
	}
}

func (t *optChaosTarget) PartitionNet(groups ...[]simnet.NodeID) { t.cl.PartitionNet(groups...) }
func (t *optChaosTarget) HealNet()                               { t.cl.HealNet() }
func (t *optChaosTarget) SetLoss(p float64)                      { t.cl.SetLoss(p) }

// a10Protocols is the A10a row order within each environment.
var a10Protocols = []Protocol{MARP, MCV, PrimaryCopy, OPT}

// optShowdownDES builds A10a.
func optShowdownDES(o FigureOptions) (*metrics.Table, error) {
	o.fill()
	tbl := &metrics.Table{
		Title: "Ablation A10a: optimistic asynchronous commitment vs MARP (simulator)",
		Note: fmt.Sprintf("N=5, %d requests/server, 50ms mean inter-arrival, single key; "+
			"optimistic ALT is the tentative commit (local, no network wait), stable lag is submit->election; "+
			"MARP/baseline ALT carries their locking round trips", o.RequestsPerServer),
		Columns: []string{"env", "protocol", "ALT (ms)", "stable/ATT (ms)", "msgs/update", "rollbacks"},
	}
	for _, env := range []LatencyPreset{LAN, WAN} {
		for _, p := range a10Protocols {
			if p == OPT {
				res, err := runOptimisticDES(OptRunConfig{
					N: 5, Seed: o.Seed, Latency: env,
					RequestsPerServer: o.RequestsPerServer, Mean: 50 * time.Millisecond,
				})
				if err != nil {
					return nil, fmt.Errorf("a10a %s optimistic: %w", env, err)
				}
				tbl.AddRow(string(env), string(OPT),
					metrics.Ms(res.TentativeALT), metrics.Ms(res.StableLag),
					fmt.Sprintf("%.1f", res.MsgsPerUpd), fmt.Sprintf("%d", res.Rollbacks))
				continue
			}
			res, err := Run(RunConfig{
				Protocol: p, N: 5, Seed: o.Seed, Mean: 50 * time.Millisecond,
				RequestsPerServer: o.RequestsPerServer, Latency: env,
			})
			if err != nil {
				return nil, fmt.Errorf("a10a %s %s: %w", env, p, err)
			}
			tbl.AddRow(string(env), string(p),
				metrics.Ms(res.Summary.MeanALT), metrics.Ms(res.Summary.MeanATT),
				fmt.Sprintf("%.1f", res.MsgsPerUpdate()), "-")
		}
	}
	return tbl, nil
}

// optLossDES builds A10b.
func optLossDES(o FigureOptions) (*metrics.Table, error) {
	o.fill()
	tbl := &metrics.Table{
		Title: "Ablation A10b: optimistic commitment under WAN message loss (simulator)",
		Note: "no retransmission layer: each gossip round re-advertises and re-carries what the " +
			"destination lacks, so loss stretches the stability lag, not the commit set; the digest " +
			"is the cell's converged stable prefix, held identically by all 5 replicas (the order can " +
			"shift across loss levels — Lamport stamps see different gossip interleavings — but " +
			"within a cell it cannot differ between replicas)",
		Columns: []string{"loss", "committed", "stable lag (ms)", "rollbacks", "gossip hops", "lost", "stable digest"},
	}
	// One seed for all rows: the workload is identical, so the committed
	// column demonstrates the claim directly — loss moves the lag, never
	// the commit set.
	for _, loss := range []float64{0, 0.10, 0.30} {
		res, err := runOptimisticDES(OptRunConfig{
			N: 5, Seed: o.Seed, Latency: WAN, Loss: loss,
			RequestsPerServer: o.RequestsPerServer, Mean: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("a10b loss=%.2f: %w", loss, err)
		}
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", loss*100),
			fmt.Sprintf("%d", res.Committed),
			metrics.Ms(res.StableLag),
			fmt.Sprintf("%d", res.Rollbacks),
			fmt.Sprintf("%d", res.GossipHops),
			fmt.Sprintf("%d", res.Lost),
			res.Digest)
	}
	return tbl, nil
}

// --- A10c: the live-engine half ------------------------------------------

const a10LiveServers = 3

// freeAddrs reserves n ephemeral loopback addresses.
func freeAddrs(n int) (map[runtime.NodeID]string, error) {
	addrs := make(map[runtime.NodeID]string, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[runtime.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// optShowdownLive builds A10c: MARP and optimistic, each as three replica
// processes in this process wired through real TCP sockets, wall clock.
func optShowdownLive(o FigureOptions) (*metrics.Table, error) {
	o.fill()
	reqs := 12
	if o.Quick {
		reqs = 6
	}
	tbl := &metrics.Table{
		Title: "Ablation A10c (live): optimistic vs MARP on the TCP engine (wall clock)",
		Note: fmt.Sprintf("N=%d in-process replicas over loopback TCP, %d requests/server; "+
			"optimistic ALT is the client-observed tentative commit, stable lag is submit->election; "+
			"wall clock and machine-dependent", a10LiveServers, reqs),
		Columns: []string{"protocol", "ALT (ms)", "stable/ATT (ms)", "converged"},
	}
	alt, att, err := a10LiveMARP(o.Seed, reqs)
	if err != nil {
		return nil, fmt.Errorf("a10c marp: %w", err)
	}
	tbl.AddRow(string(MARP), metrics.Ms(alt), metrics.Ms(att), "yes")
	optALT, optLag, err := a10LiveOptimistic(o.Seed, reqs)
	if err != nil {
		return nil, fmt.Errorf("a10c optimistic: %w", err)
	}
	tbl.AddRow(string(OPT), metrics.Ms(optALT), metrics.Ms(optLag), "yes (digest-verified)")
	// The WAN acceptance bound lives in a10_test.go; the live half's bound
	// is structural: a tentative commit never waits on the network, so even
	// over loopback it must undercut the locking ALT.
	if optALT >= alt {
		return nil, fmt.Errorf("a10c: optimistic tentative ALT %v did not beat MARP ALT %v", optALT, alt)
	}
	return tbl, nil
}

// a10LiveMARP runs the MARP cell of A10c and returns mean ALT and ATT.
func a10LiveMARP(seed int64, reqs int) (time.Duration, time.Duration, error) {
	addrs, err := freeAddrs(a10LiveServers)
	if err != nil {
		return 0, 0, err
	}
	nodes := make([]*live.Node, a10LiveServers)
	for i := 1; i <= a10LiveServers; i++ {
		node, err := live.StartNode(live.NodeConfig{
			Self: runtime.NodeID(i), Addrs: addrs, Seed: seed + int64(i),
		})
		if err != nil {
			for _, up := range nodes[:i-1] {
				up.Close()
			}
			return 0, 0, err
		}
		nodes[i-1] = node
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()
	events, err := workload.Generate(workload.Spec{
		Servers: a10LiveServers, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Seed: seed + 1000,
	})
	if err != nil {
		return 0, 0, err
	}
	for _, ev := range events {
		node := nodes[ev.Home-1]
		var serr error
		if !node.Eng.Do(func() { serr = node.Cluster.Submit(ev.Home, core.Set(ev.Key, ev.Value)) }) {
			return 0, 0, fmt.Errorf("engine closed during submit")
		}
		if serr != nil {
			return 0, 0, serr
		}
	}
	errs := make([]error, a10LiveServers)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.Node) {
			defer wg.Done()
			errs[i] = node.Cluster.RunUntilDone(2 * time.Minute)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("node %d: %w", i+1, err)
		}
	}
	committed := 0
	var altSum, attSum time.Duration
	for _, node := range nodes {
		var outs []coreOutcome
		if !node.Eng.Do(func() {
			for _, o := range node.Cluster.Outcomes() {
				outs = append(outs, coreOutcome{
					failed: o.Failed,
					alt:    o.LockLatency().Duration(),
					att:    o.TotalLatency().Duration(),
				})
			}
		}) {
			return 0, 0, fmt.Errorf("engine closed during outcome read")
		}
		for _, o := range outs {
			if o.failed {
				continue
			}
			committed++
			altSum += o.alt
			attSum += o.att
		}
	}
	if committed == 0 {
		return 0, 0, fmt.Errorf("no updates committed")
	}
	return altSum / time.Duration(committed), attSum / time.Duration(committed), nil
}

// coreOutcome is the slice of a MARP outcome a10LiveMARP carries off the
// actor loop (core.Outcome holds engine-owned pointers; copy what we read).
type coreOutcome struct {
	failed   bool
	alt, att time.Duration
}

// a10LiveOptimistic runs the optimistic cell of A10c: mean client-observed
// tentative ALT and mean stability lag, with cross-process digest
// verification.
func a10LiveOptimistic(seed int64, reqs int) (time.Duration, time.Duration, error) {
	addrs, err := freeAddrs(a10LiveServers)
	if err != nil {
		return 0, 0, err
	}
	nodes := make([]*live.OptNode, a10LiveServers)
	for i := 1; i <= a10LiveServers; i++ {
		node, err := live.StartOptNode(live.OptNodeConfig{
			Self: runtime.NodeID(i), Addrs: addrs, Seed: seed + int64(i),
			GossipInterval: LAN.optGossip(),
		})
		if err != nil {
			for _, up := range nodes[:i-1] {
				up.Close()
			}
			return 0, 0, err
		}
		nodes[i-1] = node
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()
	events, err := workload.Generate(workload.Spec{
		Servers: a10LiveServers, RequestsPerServer: reqs,
		MeanInterarrival: time.Millisecond, Seed: seed + 1000,
	})
	if err != nil {
		return 0, 0, err
	}
	var altSum time.Duration
	for _, ev := range events {
		node := nodes[ev.Home-1]
		var serr error
		start := time.Now()
		if !node.Eng.Do(func() { _, serr = node.Cluster.Submit(ev.Home, ev.Key, ev.Value) }) {
			return 0, 0, fmt.Errorf("engine closed during submit")
		}
		altSum += time.Since(start)
		if serr != nil {
			return 0, 0, serr
		}
	}
	expect := uint64(len(events))
	errs := make([]error, a10LiveServers)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.OptNode) {
			defer wg.Done()
			errs[i] = node.Cluster.RunUntilStable(2*time.Minute, expect)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("node %d: %w", i+1, err)
		}
	}
	var lagSum time.Duration
	stable := 0
	digest := ""
	for i, node := range nodes {
		var d string
		var outs []optimistic.Outcome
		var derr error
		if !node.Eng.Do(func() {
			d, _, derr = node.Cluster.StableDigest(runtime.NodeID(i + 1))
			outs = node.Cluster.Outcomes()
		}) {
			return 0, 0, fmt.Errorf("engine closed during digest read")
		}
		if derr != nil {
			return 0, 0, derr
		}
		if digest == "" {
			digest = d
		} else if d != digest {
			return 0, 0, fmt.Errorf("node %d stable digest %s != %s", i+1, d, digest)
		}
		for _, o := range outs {
			if o.Aborted || o.StableAt == 0 {
				return 0, 0, fmt.Errorf("%s not stable after drain", o.Txn)
			}
			stable++
			lagSum += o.StableAt.Sub(o.SubmittedAt)
		}
	}
	if stable == 0 {
		return 0, 0, fmt.Errorf("no updates stabilized")
	}
	return altSum / time.Duration(len(events)), lagSum / time.Duration(stable), nil
}

// Optimistic runs the A10 experiment: the two simulator tables, then the
// live-engine table.
func Optimistic(o FigureOptions) ([]*metrics.Table, error) {
	a, err := optShowdownDES(o)
	if err != nil {
		return nil, err
	}
	b, err := optLossDES(o)
	if err != nil {
		return nil, err
	}
	c, err := optShowdownLive(o)
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{a, b, c}, nil
}

// OptChaosResult is one cell of the optimistic chaos grid.
type OptChaosResult struct {
	Point ChaosPoint
	OptRunResult
}

// ChaosOptimistic runs the optimistic protocol through the A6 loss x churn
// grid. The pessimistic protocol needs its reliable-delivery and agent-
// regeneration stack to survive this grid; the optimistic protocol brings
// no extra machinery — the periodic gossip IS the retransmission path —
// and every cell must still end with one digest-verified stable prefix on
// every replica.
func ChaosOptimistic(o FigureOptions) (*metrics.Table, []OptChaosResult, error) {
	o.fill()
	tbl := &metrics.Table{
		Title: "Ablation A6-opt: optimistic commitment through the chaos grid",
		Note: "same loss x churn grid as A6 (minority partition, loss burst, crash blip), " +
			"Mem-journaled replicas; no reliable-delivery layer — gossip rounds re-carry losses; " +
			"a refused submit is one homed at the crashed replica during the blip (a down replica " +
			"cannot host a tentative commit); every cell must converge to one digest-verified " +
			"stable prefix",
		Columns: []string{"loss", "churn", "committed", "refused", "stable lag (ms)", "rollbacks", "lost", "stable digest"},
	}
	grid := chaosGrid()
	all, err := sweep.Run(o.runner(), grid, func(i int, p ChaosPoint) (OptChaosResult, error) {
		res, err := runOptimisticDES(OptRunConfig{
			N: 5, Seed: o.Seed + int64(i), Latency: LAN, Loss: p.Loss,
			RequestsPerServer: o.RequestsPerServer, Mean: 30 * time.Millisecond,
			Durable: true, Churn: p.Churn,
		})
		if err != nil {
			return OptChaosResult{}, fmt.Errorf("optimistic loss=%.2f churn=%v: %w", p.Loss, p.Churn, err)
		}
		return OptChaosResult{Point: p, OptRunResult: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, res := range all {
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", res.Point.Loss*100),
			fmt.Sprintf("%v", res.Point.Churn),
			fmt.Sprintf("%d", res.Committed),
			fmt.Sprintf("%d", res.Refused),
			metrics.Ms(res.StableLag),
			fmt.Sprintf("%d", res.Rollbacks),
			fmt.Sprintf("%d", res.Lost),
			res.Digest)
	}
	return tbl, all, nil
}
