// Package transport exposes a live MARP cluster as a network service: a
// TCP server speaking a line-delimited JSON protocol (one request object per
// line, one response object per line), plus the matching client.
//
// The replication protocol itself runs on the deterministic simulation
// engine, paced against the wall clock by internal/realtime; the transport
// layer carries client traffic only. DESIGN.md documents why this
// substitution preserves the studied behaviour: the agent/replica dynamics
// under test are identical whether the replicas exchange messages over
// simulated or physical links, and keeping them on the simulated fabric
// preserves the correctness oracles (referee, convergence checks) in the
// live deployment too.
//
// Wire protocol (JSON per line):
//
//	-> {"op":"submit","home":1,"key":"k","value":"v","append":false}
//	<- {"ok":true}
//	-> {"op":"read","node":2,"key":"k"}
//	<- {"ok":true,"value":"v","seq":3,"found":true}
//	-> {"op":"stats"}
//	<- {"ok":true,"stats":{...}}
//	-> {"op":"crash","node":3} / {"op":"recover","node":3}
//	<- {"ok":true}
//	-> {"op":"partition","groups":[[1,2],[3]]} / {"op":"heal"}
//	<- {"ok":true}
//	-> {"op":"scenario"}
//	<- {"ok":true,"scenario":{...}}
//
// partition/heal drive the process's own fabric only — a live cluster is
// split by sending the same partition to every process (marpctl fans out).
// scenario reports the cluster shape plus the per-key commit digests that
// seed an incident bundle's footer (marpctl snapshot-scenario).
package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	marp "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/optimistic"
	"repro/internal/realtime"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/scenario"
	"repro/internal/store"
)

// GatherMetrics samples the cluster's metric registry on the engine's
// execution context — the scrape path behind the ops listener's /metrics.
// The registry's read-through collectors touch engine-owned state, so the
// marshalling here is what makes concurrent scrapes race-free.
func (s *Server) GatherMetrics() (metrics.Snapshot, *metrics.Registry, error) {
	var snap metrics.Snapshot
	reg := s.registry()
	err := s.exec(func() { snap = reg.Gather() })
	if err != nil {
		return nil, nil, err
	}
	return snap, reg, nil
}

func (s *Server) registry() *metrics.Registry {
	if s.opt != nil {
		return s.opt.Metrics()
	}
	return s.cluster.Metrics()
}

// Health computes the cluster's quorum-reachability summary on the
// engine's execution context — the /healthz body. An optimistic cluster
// has no quorums to lose: it is healthy exactly when a locally hosted
// replica is up (tentative commits need only the local node).
func (s *Server) Health() (core.Health, error) {
	var h core.Health
	err := s.exec(func() {
		if s.opt != nil {
			h = s.optHealth()
			return
		}
		h = s.cluster.Health()
	})
	return h, err
}

// Request is one client command.
type Request struct {
	Op     string `json:"op"`
	Home   int    `json:"home,omitempty"`
	Node   int    `json:"node,omitempty"`
	Key    string `json:"key,omitempty"`
	Value  string `json:"value,omitempty"`
	Append bool   `json:"append,omitempty"`
	// Groups carries a partition op's node groups (unlisted nodes form
	// group 0).
	Groups [][]int `json:"groups,omitempty"`
	// Tentative asks an optimistic read for the overlay's last writer
	// instead of the stable value.
	Tentative bool `json:"tentative,omitempty"`
	// Guard attaches a CAS guard to an optimistic submit (see
	// optimistic.SubmitCAS).
	Guard string `json:"guard,omitempty"`
}

// StatsBody is the payload of a stats response.
type StatsBody struct {
	Servers     int   `json:"servers"`
	Outstanding int   `json:"outstanding"`
	Committed   int   `json:"committed"`
	Failed      int   `json:"failed"`
	Messages    int   `json:"messages"`
	Bytes       int   `json:"bytes"`
	Migrations  int   `json:"migrations"`
	VirtualMs   int64 `json:"virtual_ms"`
}

// ShardDigest is one shard's slice of a digest response: the shard's own
// commit-set digest plus the per-shard ALT/ATT/PRK aggregation of the
// outcomes recorded at the addressed process (internal/metrics.ShardSummary,
// flattened for the wire).
type ShardDigest struct {
	Shard      int     `json:"shard"`
	Digest     string  `json:"digest"`
	Commits    int     `json:"commits"`
	Requests   int     `json:"requests"`
	MeanALTMs  float64 `json:"mean_alt_ms"`
	MeanATTMs  float64 `json:"mean_att_ms"`
	MeanVisits float64 `json:"mean_visits"`
}

// ScenarioBody is the payload of a scenario response: the cluster shape a
// bundle header records, plus the snapshot state a bundle footer records —
// per-key commit digests (scenario.KeyDigests) and request counts. Commits
// and Failed count client requests (not agents), summed over the outcomes
// the addressed process recorded, so the numbers add across processes and
// are batching-independent.
type ScenarioBody struct {
	Servers       int    `json:"servers"`
	Shards        int    `json:"shards"`
	Geometry      string `json:"geometry"`
	Fsync         string `json:"fsync,omitempty"`
	CommitDelayUS int64  `json:"commit_delay_us,omitempty"`
	Outstanding   int    `json:"outstanding"`
	Commits       int    `json:"commits"`
	Failed        int    `json:"failed"`
	// DigestKind names what Keys digests: DigestKindCommitSet (MARP; also
	// every body that omits the field, from before the optimistic protocol
	// existed) or DigestKindStablePrefix (optimistic; tentative state is
	// deliberately excluded — it legitimately diverges). Consumers that
	// compare Keys across processes must compare kinds first.
	DigestKind string            `json:"digest_kind,omitempty"`
	Keys       map[string]string `json:"keys"`
}

// Digest kinds. A digest is only comparable to another of the same kind:
// a MARP commit-set digest and an optimistic stable-prefix digest of the
// same workload differ by construction.
const (
	DigestKindCommitSet    = "commit-set"
	DigestKindStablePrefix = "stable-prefix"
)

// TierDigest is one tier of an optimistic replica's state in a digest
// response: the tier's whole digest, its entry count, and the per-key
// digests (scenario.KeyDigests).
type TierDigest struct {
	Digest  string            `json:"digest"`
	Entries int               `json:"entries"`
	Keys    map[string]string `json:"keys,omitempty"`
}

// Response is one server reply.
type Response struct {
	OK         bool          `json:"ok"`
	Error      string        `json:"error,omitempty"`
	Found      bool          `json:"found,omitempty"`
	Value      string        `json:"value,omitempty"`
	Seq        uint64        `json:"seq,omitempty"`
	Stats      *StatsBody    `json:"stats,omitempty"`
	Wins       int           `json:"wins,omitempty"`
	Violations int           `json:"violations,omitempty"`
	Shards     []ShardDigest `json:"shards,omitempty"`
	// QueueDrops counts messages the live fabric dropped because a
	// per-peer writer queue was full (digest responses; health signal for
	// a digest mismatch investigation).
	QueueDrops int           `json:"queue_drops,omitempty"`
	Scenario   *ScenarioBody `json:"scenario,omitempty"`
	// Txn is an optimistic submit's assigned transaction ID.
	Txn string `json:"txn,omitempty"`
	// Kind labels what a digest or referee response reports — see the
	// DigestKind constants. Empty means DigestKindCommitSet (pre-optimistic
	// servers never set it).
	Kind string `json:"kind,omitempty"`
	// Stable and Tentative are an optimistic digest response's two tiers.
	// The legacy Value/Seq fields alias the stable tier so kind-unaware
	// tooling keeps reading the tier that actually converges.
	Stable    *TierDigest `json:"stable,omitempty"`
	Tentative *TierDigest `json:"tentative,omitempty"`
}

// Server serves a MARP cluster over TCP. The same server fronts either
// engine: in sim mode it owns a whole simulated cluster paced against the
// wall clock; in live mode it fronts this process's single replica, with
// the rest of the cluster in sibling processes.
type Server struct {
	cluster  *core.Cluster       // MARP deployments; nil when opt is set
	opt      *optimistic.Cluster // optimistic deployments; nil when cluster is set
	exec     func(func()) error  // runs fn on the engine's execution context
	teardown func()
	listener net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	rec   *scenario.Recorder
	done  chan struct{}
}

// SetRecorder attaches an incident recorder: every accepted submit is
// appended to it as a scenario event (`marpd -record`). Faults are NOT
// recorded here — the injector records them (marpctl -record), exactly
// once for the whole cluster, which also covers faults no process could
// log for itself (kill -9).
func (s *Server) SetRecorder(rec *scenario.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
}

func (s *Server) recorder() *scenario.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Serve starts a simulated cluster service on addr (e.g. "127.0.0.1:7707";
// use port 0 for an ephemeral port). speed scales virtual time against the
// wall clock.
func Serve(addr string, opts marp.Options, speed float64) (*Server, error) {
	cluster, err := marp.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	driver := realtime.NewDriver(cluster.Internal().Sim(), speed)
	s, err := serve(addr, cluster.Internal().Cluster, driver.Do, driver.Stop)
	if err != nil {
		return nil, err
	}
	driver.Start()
	return s, nil
}

// ServeLive starts one live replica process on addr: the protocol runs on
// the wall clock and exchanges replica-to-replica traffic — mobile agents
// included — with its peers over TCP (cfg.Addrs).
func ServeLive(addr string, cfg live.NodeConfig) (*Server, error) {
	node, err := live.StartNode(cfg)
	if err != nil {
		return nil, err
	}
	exec := func(fn func()) error {
		if !node.Eng.Do(fn) {
			return realtime.ErrStopped
		}
		return nil
	}
	s, err := serve(addr, node.Cluster, exec, node.Close)
	if err != nil {
		node.Close()
		return nil, err
	}
	return s, nil
}

// serve wires the listener over an already running cluster.
func serve(addr string, cluster *core.Cluster, exec func(func()) error, teardown func()) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cluster:  cluster,
		exec:     exec,
		teardown: teardown,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes live connections, and stops the driver.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
		close(s.done)
	}
	s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.teardown()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one request on the engine's execution context.
func (s *Server) handle(req Request) Response {
	var resp Response
	err := s.exec(func() {
		resp = s.apply(req)
	})
	if err != nil {
		return Response{Error: err.Error()}
	}
	return resp
}

func (s *Server) apply(req Request) Response {
	if s.opt != nil {
		return s.applyOpt(req)
	}
	switch req.Op {
	case "submit":
		if req.Guard != "" {
			// Refused rather than ignored: a silently dropped guard would
			// turn an intended CAS into an unconditional overwrite.
			return Response{Error: "guard requires an optimistic service (marpd -protocol optimistic); MARP has no CAS submit"}
		}
		r := core.Set(req.Key, req.Value)
		if req.Append {
			r = core.Append(req.Key, req.Value)
		}
		if err := s.cluster.Submit(runtime.NodeID(req.Home), r); err != nil {
			return Response{Error: err.Error()}
		}
		if rec := s.recorder(); rec != nil {
			_ = rec.Record(scenario.Event{
				Kind: scenario.KindSubmit, Home: req.Home,
				Key: req.Key, Value: req.Value, Append: req.Append,
			})
		}
		return Response{OK: true}
	case "read":
		v, ok := s.cluster.Read(runtime.NodeID(req.Node), req.Key)
		return Response{OK: true, Found: ok, Value: v.Data, Seq: v.Version.Seq}
	case "crash":
		s.cluster.Crash(runtime.NodeID(req.Node))
		return Response{OK: true}
	case "recover":
		s.cluster.Recover(runtime.NodeID(req.Node))
		return Response{OK: true}
	case "partition":
		groups := make([][]runtime.NodeID, len(req.Groups))
		for i, g := range req.Groups {
			groups[i] = make([]runtime.NodeID, len(g))
			for j, id := range g {
				groups[i][j] = runtime.NodeID(id)
			}
		}
		s.cluster.PartitionNet(groups...)
		return Response{OK: true}
	case "heal":
		s.cluster.HealNet()
		return Response{OK: true}
	case "scenario":
		return s.scenarioBody()
	case "digest":
		srv := s.cluster.Server(runtime.NodeID(req.Node))
		if srv == nil {
			return Response{Error: fmt.Sprintf("node %d is not hosted here", req.Node)}
		}
		// Whole-replica digest spans every shard the node serves; digestLog
		// is order-independent, so shard concatenation order cannot matter.
		var all []store.Update
		for sh := 0; sh < srv.Shards(); sh++ {
			all = append(all, srv.StoreOf(sh).Log()...)
		}
		d, n := digestLog(all)
		// The queue-drop count reads through the registry's stable name —
		// the same number a /metrics scrape exports.
		drops := int(s.cluster.Metrics().Value("marp.fabric.queue_drops"))
		resp := Response{OK: true, Kind: DigestKindCommitSet, Value: d, Seq: uint64(n), QueueDrops: drops}
		if srv.Shards() > 1 {
			resp.Shards = s.shardDigests(srv)
		}
		return resp
	case "referee":
		ref := s.cluster.Referee()
		return Response{OK: true, Kind: RefereeKindGrants, Wins: ref.Wins(), Violations: len(ref.Violations())}
	case "stats":
		// Counters read through the metric registry's stable names (the
		// same values /metrics exports); committed/failed keep their
		// historical per-agent granularity rather than the registry's
		// per-request one.
		snap := s.cluster.Metrics().Gather()
		committed, failed := 0, 0
		for _, o := range s.cluster.Outcomes() {
			if o.Failed {
				failed++
			} else {
				committed++
			}
		}
		return Response{OK: true, Stats: &StatsBody{
			Servers:     len(s.cluster.Nodes()),
			Outstanding: int(snap.Value("marp.replica.outstanding")),
			Committed:   committed,
			Failed:      failed,
			Messages:    int(snap.Value("marp.fabric.messages_sent")),
			Bytes:       int(snap.Value("marp.fabric.bytes_sent")),
			Migrations:  int(snap.Value("marp.agent.migrations_completed")),
			VirtualMs:   s.cluster.Now().Duration().Milliseconds(),
		}}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// scenarioBody snapshots what an incident bundle needs from this process:
// the cluster shape for the header, and the per-key commit digests plus
// request counts for the footer. Every live replica this process hosts
// must already agree on the digests (in sim mode that is all N replicas;
// live mode hosts one) — disagreement means the cluster has not converged
// and the snapshot is refused.
func (s *Server) scenarioBody() Response {
	shape := s.cluster.Describe()
	body := &ScenarioBody{
		Servers:       shape.N,
		Shards:        shape.Shards,
		Geometry:      string(shape.Geometry),
		Fsync:         shape.Fsync,
		CommitDelayUS: shape.GroupCommitDelay.Microseconds(),
		Outstanding:   s.cluster.Outstanding(),
		DigestKind:    DigestKindCommitSet,
	}
	for _, o := range s.cluster.Outcomes() {
		if o.Failed {
			body.Failed += o.Requests
		} else {
			body.Commits += o.Requests
		}
	}
	var refNode runtime.NodeID
	for _, id := range s.cluster.Nodes() {
		srv := s.cluster.Server(id)
		if srv == nil || srv.Down() {
			continue
		}
		var all []store.Update
		for sh := 0; sh < srv.Shards(); sh++ {
			all = append(all, srv.StoreOf(sh).Log()...)
		}
		keys := scenario.KeyDigests(all)
		if body.Keys == nil {
			body.Keys, refNode = keys, id
			continue
		}
		if diffs := scenario.DiffDigests(body.Keys, keys); len(diffs) > 0 {
			return Response{Error: fmt.Sprintf(
				"replicas %d and %d disagree (%s); not converged, snapshot refused",
				refNode, id, diffs[0])}
		}
	}
	if body.Keys == nil {
		return Response{Error: "no live replica hosted here"}
	}
	return Response{OK: true, Scenario: body}
}

// shardDigests builds the per-shard digest rows: each shard's commit-set
// digest plus the shard-labelled latency aggregation of the outcomes this
// process recorded.
func (s *Server) shardDigests(srv interface {
	Shards() int
	StoreOf(int) *store.Store
}) []ShardDigest {
	var samples []metrics.Sample
	for _, o := range s.cluster.Outcomes() {
		samples = append(samples, metrics.Sample{
			ALT:    o.LockLatency().Duration(),
			ATT:    o.TotalLatency().Duration(),
			Visits: o.Visits,
			Failed: o.Failed,
			Shards: o.Shards,
		})
	}
	sum := metrics.Summarize(samples)
	out := make([]ShardDigest, srv.Shards())
	for sh := range out {
		d, n := digestLog(srv.StoreOf(sh).Log())
		row := ShardDigest{Shard: sh, Digest: d, Commits: n}
		if ss, ok := sum.ByShard[sh]; ok {
			row.Requests = ss.Count
			row.MeanALTMs = float64(ss.MeanALT) / float64(time.Millisecond)
			row.MeanATTMs = float64(ss.MeanATT) / float64(time.Millisecond)
			visits, cnt := 0, 0
			for k, c := range ss.VisitDist {
				visits += k * c
				cnt += c
			}
			if cnt > 0 {
				row.MeanVisits = float64(visits) / float64(cnt)
			}
		}
		out[sh] = row
	}
	return out
}

// Client is a TCP client for a transport.Server.
type Client struct {
	conn    net.Conn
	dec     *json.Decoder
	enc     *json.Encoder
	mu      sync.Mutex
	timeout time.Duration
}

// Dial connects to a MARP service.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetRequestTimeout bounds every subsequent request/response exchange with a
// connection deadline; zero (the default) leaves requests unbounded. A
// request that misses the deadline fails with a net timeout error and leaves
// the stream in an undefined position, so callers should redial after one.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// roundTrip sends one request and reads one response. Clients may be used
// from multiple goroutines.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return Response{}, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("transport: %s", resp.Error)
	}
	return resp, nil
}

// Submit sends an update request to the given home server.
func (c *Client) Submit(home int, key, value string, appendOp bool) error {
	_, err := c.roundTrip(Request{Op: "submit", Home: home, Key: key, Value: value, Append: appendOp})
	return err
}

// Read reads a key from a replica's local copy.
func (c *Client) Read(node int, key string) (value string, seq uint64, found bool, err error) {
	resp, err := c.roundTrip(Request{Op: "read", Node: node, Key: key})
	if err != nil {
		return "", 0, false, err
	}
	return resp.Value, resp.Seq, resp.Found, nil
}

// Crash fail-stops a server.
func (c *Client) Crash(node int) error {
	_, err := c.roundTrip(Request{Op: "crash", Node: node})
	return err
}

// Recover restarts a crashed server.
func (c *Client) Recover(node int) error {
	_, err := c.roundTrip(Request{Op: "recover", Node: node})
	return err
}

// Partition splits the addressed process's fabric into the given node
// groups. Live clusters need the same call at every process; the sim
// server's one simulated network is split by this single call.
func (c *Client) Partition(groups [][]int) error {
	_, err := c.roundTrip(Request{Op: "partition", Groups: groups})
	return err
}

// Heal removes all partitions at the addressed process and triggers an
// anti-entropy round on its local replicas.
func (c *Client) Heal() error {
	_, err := c.roundTrip(Request{Op: "heal"})
	return err
}

// Scenario fetches the process's incident-bundle snapshot: cluster shape,
// per-key commit digests, and request counts.
func (c *Client) Scenario() (*ScenarioBody, error) {
	resp, err := c.roundTrip(Request{Op: "scenario"})
	if err != nil {
		return nil, err
	}
	if resp.Scenario == nil {
		return nil, fmt.Errorf("transport: empty scenario body")
	}
	return resp.Scenario, nil
}

// Stats fetches service counters.
func (c *Client) Stats() (StatsBody, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return StatsBody{}, err
	}
	if resp.Stats == nil {
		return StatsBody{}, fmt.Errorf("transport: empty stats")
	}
	return *resp.Stats, nil
}

// digestLog folds a replica's committed-update log into an order-independent
// digest of the commit set: entries are sorted by (key, txn, data) and the
// engine-dependent fields (local commit sequence, wall stamp) are excluded.
// Two replicas — or the same workload on two engines — that committed the
// same writes produce the same digest even when commit order differed, which
// MARP permits for independent keys (agents for disjoint keys serialize per
// key, not globally).
func digestLog(log []store.Update) (string, int) {
	entries := make([]string, len(log))
	for i, u := range log {
		entries[i] = u.Key + "\x00" + u.TxnID + "\x00" + u.Data
	}
	sort.Strings(entries)
	h := fnv.New64a()
	for _, e := range entries {
		h.Write([]byte(e))
		h.Write([]byte{0xff})
	}
	return fmt.Sprintf("%016x", h.Sum64()), len(entries)
}

// Digest fetches the order-independent commit-set digest of a replica's
// store (live mode: the one replica the addressed process hosts).
func (c *Client) Digest(node int) (digest string, commits int, err error) {
	resp, err := c.roundTrip(Request{Op: "digest", Node: node})
	if err != nil {
		return "", 0, err
	}
	return resp.Value, int(resp.Seq), nil
}

// DigestShards fetches the whole-replica digest plus the per-shard rows
// (empty on a single-shard deployment) and the process's fabric queue-drop
// count — a non-zero count is the first thing to check when two replicas'
// digests disagree.
func (c *Client) DigestShards(node int) (digest string, commits int, shards []ShardDigest, drops int, err error) {
	resp, err := c.roundTrip(Request{Op: "digest", Node: node})
	if err != nil {
		return "", 0, nil, 0, err
	}
	return resp.Value, int(resp.Seq), resp.Shards, resp.QueueDrops, nil
}

// Referee fetches the process-local referee verdict: how many update
// permissions were granted and how many single-claimant violations were
// observed.
func (c *Client) Referee() (wins, violations int, err error) {
	resp, err := c.roundTrip(Request{Op: "referee"})
	if err != nil {
		return 0, 0, err
	}
	return resp.Wins, resp.Violations, nil
}
