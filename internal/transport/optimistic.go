package transport

// The optimistic protocol behind the same wire surface. One Server fronts
// either protocol — the op vocabulary is shared where the semantics match
// (submit, read, crash, recover, partition, heal, stats, scenario) and
// kind-tagged where they cannot (digest, referee): an optimistic digest has
// two tiers, a stable prefix that converges and a tentative overlay that
// legitimately diverges, so responses carry Kind and consumers must never
// compare digests of different kinds.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/optimistic"
	"repro/internal/realtime"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/scenario"
	"repro/internal/store"
	"time"
)

// Referee kinds: what a referee response's wins/violations count. The
// pessimistic referee audits lock grants; the optimistic one audits
// stable-prefix agreement across the replicas the process hosts.
const (
	RefereeKindGrants = "grants"
)

// OptGeometry is the geometry string an optimistic deployment reports in
// scenario bodies: the protocol is quorum-less, so none of the quorum
// geometries apply.
const OptGeometry = "optimistic"

// ServeOptimistic starts a simulated optimistic cluster service on addr,
// paced against the wall clock at speed (the optimistic analogue of Serve).
func ServeOptimistic(addr string, cfg desengine.OptConfig, speed float64) (*Server, error) {
	cl, err := desengine.NewOptimistic(cfg)
	if err != nil {
		return nil, err
	}
	driver := realtime.NewDriver(cl.Sim(), speed)
	s, err := serveOpt(addr, cl.Cluster, driver.Do, driver.Stop)
	if err != nil {
		return nil, err
	}
	driver.Start()
	return s, nil
}

// ServeLiveOptimistic starts one live optimistic replica process on addr:
// tentative commits happen at local latency, and reconciliation agents
// migrate between the processes over TCP (cfg.Addrs).
func ServeLiveOptimistic(addr string, cfg live.OptNodeConfig) (*Server, error) {
	node, err := live.StartOptNode(cfg)
	if err != nil {
		return nil, err
	}
	exec := func(fn func()) error {
		if !node.Eng.Do(fn) {
			return realtime.ErrStopped
		}
		return nil
	}
	s, err := serveOpt(addr, node.Cluster, exec, node.Close)
	if err != nil {
		node.Close()
		return nil, err
	}
	return s, nil
}

// serveOpt wires the listener over an already running optimistic cluster.
func serveOpt(addr string, opt *optimistic.Cluster, exec func(func()) error, teardown func()) (*Server, error) {
	s, err := serve(addr, nil, exec, teardown)
	if err != nil {
		return nil, err
	}
	s.opt = opt
	return s, nil
}

// applyOpt is apply for an optimistic deployment.
func (s *Server) applyOpt(req Request) Response {
	switch req.Op {
	case "submit":
		if req.Append {
			return Response{Error: "optimistic: append is not supported (reconciliation re-executes blind writes only; use a CAS guard for read-modify-write)"}
		}
		txn, err := s.opt.SubmitCAS(runtime.NodeID(req.Home), req.Key, req.Value, req.Guard)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if rec := s.recorder(); rec != nil {
			_ = rec.Record(scenario.Event{
				Kind: scenario.KindSubmit, Home: req.Home,
				Key: req.Key, Value: req.Value,
			})
		}
		return Response{OK: true, Txn: txn}
	case "read":
		v, ok, err := s.opt.Read(runtime.NodeID(req.Node), req.Key, req.Tentative)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Found: ok, Value: v.Data, Seq: v.Version.Seq}
	case "crash":
		if err := s.opt.Crash(runtime.NodeID(req.Node)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "recover":
		if err := s.opt.Recover(runtime.NodeID(req.Node)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "partition":
		groups := make([][]runtime.NodeID, len(req.Groups))
		for i, g := range req.Groups {
			groups[i] = make([]runtime.NodeID, len(g))
			for j, id := range g {
				groups[i][j] = runtime.NodeID(id)
			}
		}
		s.opt.PartitionNet(groups...)
		return Response{OK: true}
	case "heal":
		s.opt.HealNet()
		return Response{OK: true}
	case "digest":
		return s.optDigest(runtime.NodeID(req.Node))
	case "referee":
		return s.optReferee()
	case "stats":
		return s.optStats()
	case "scenario":
		return s.optScenarioBody()
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// optDigest builds the two-tier digest response for one hosted replica.
// The stable tier's whole digest is ORDER-DEPENDENT (invariant 15 pins the
// prefix order, so two converged replicas agree on it exactly); the
// tentative tier's is order-independent, matching its weaker promise —
// overlays at two replicas agree on membership only after gossip quiesces,
// never on arrival order. The legacy Value/Seq alias the stable tier.
func (s *Server) optDigest(node runtime.NodeID) Response {
	hosted := false
	for _, id := range s.opt.LocalNodes() {
		if id == node {
			hosted = true
		}
	}
	if !hosted {
		return Response{Error: fmt.Sprintf("node %d is not hosted here", node)}
	}
	if s.opt.Down(node) {
		return Response{Error: fmt.Sprintf("node %d is down", node)}
	}
	stableDigest, stableN, err := s.opt.StableDigest(node)
	if err != nil {
		return Response{Error: err.Error()}
	}
	var stableLog, overlay []store.Update
	shards := make([]ShardDigest, 0, s.opt.Shards())
	for sh := 0; sh < s.opt.Shards(); sh++ {
		slog, err := s.opt.StableLog(node, sh)
		if err != nil {
			return Response{Error: err.Error()}
		}
		ov, err := s.opt.Overlay(node, sh)
		if err != nil {
			return Response{Error: err.Error()}
		}
		stableLog = append(stableLog, slog...)
		overlay = append(overlay, ov...)
		d, n := digestLog(slog)
		shards = append(shards, ShardDigest{Shard: sh, Digest: d, Commits: n})
	}
	tentDigest, _ := digestLog(overlay)
	resp := Response{
		OK:   true,
		Kind: DigestKindStablePrefix,
		Stable: &TierDigest{
			Digest:  stableDigest,
			Entries: stableN,
			Keys:    scenario.KeyDigests(stableLog),
		},
		Tentative: &TierDigest{
			Digest:  tentDigest,
			Entries: len(overlay),
			Keys:    scenario.KeyDigests(overlay),
		},
		Value:      stableDigest,
		Seq:        uint64(stableN),
		QueueDrops: int(s.opt.Metrics().Value("marp.fabric.queue_drops")),
	}
	if s.opt.Shards() > 1 {
		resp.Shards = shards
	}
	return resp
}

// optReferee audits the optimistic protocol's analogue of the lock
// referee's single-claimant rule: every up replica this process hosts must
// hold the identical stable prefix. Wins counts the elections decided at
// the digest vantage (stable promotions plus aborts — both are verdicts);
// one violation is reported when hosted replicas diverge.
func (s *Server) optReferee() Response {
	resp := Response{OK: true, Kind: DigestKindStablePrefix}
	for _, id := range s.opt.LocalNodes() {
		if s.opt.Down(id) {
			continue
		}
		_, n, err := s.opt.StableDigest(id)
		if err != nil {
			return Response{Error: err.Error()}
		}
		resp.Wins = n
		break
	}
	if err := s.opt.CheckConvergence(); err != nil {
		resp.Violations = 1
	}
	return resp
}

func (s *Server) optStats() Response {
	snap := s.opt.Metrics().Gather()
	stable, aborted, pending := 0, 0, 0
	for _, o := range s.opt.Outcomes() {
		switch {
		case o.Aborted:
			aborted++
		case o.StableAt != 0:
			stable++
		default:
			pending++
		}
	}
	return Response{OK: true, Stats: &StatsBody{
		Servers:     s.opt.N(),
		Outstanding: pending,
		Committed:   stable,
		Failed:      aborted,
		Messages:    int(snap.Value("marp.fabric.messages_sent")),
		Bytes:       int(snap.Value("marp.fabric.bytes_sent")),
		Migrations:  int(snap.Value("marp.opt.gossip_hops")),
		VirtualMs:   time.Duration(s.opt.Now()).Milliseconds(),
	}}
}

// optScenarioBody is scenarioBody for an optimistic deployment: the
// per-key digests cover the STABLE tier only and the body says so
// (DigestKind), so a snapshot consumer can refuse to mix them with
// commit-set digests. Still-tentative submissions count as outstanding —
// like the pessimistic body, a clean capture is one where everything the
// clients were told about has reached its final state.
func (s *Server) optScenarioBody() Response {
	body := &ScenarioBody{
		Servers:    s.opt.N(),
		Shards:     s.opt.Shards(),
		Geometry:   OptGeometry,
		DigestKind: DigestKindStablePrefix,
	}
	for _, o := range s.opt.Outcomes() {
		switch {
		case o.Aborted:
			body.Failed++
		case o.StableAt != 0:
			body.Commits++
		default:
			body.Outstanding++
		}
	}
	var refNode runtime.NodeID
	for _, id := range s.opt.LocalNodes() {
		if s.opt.Down(id) {
			continue
		}
		var all []store.Update
		for sh := 0; sh < s.opt.Shards(); sh++ {
			slog, err := s.opt.StableLog(id, sh)
			if err != nil {
				return Response{Error: err.Error()}
			}
			all = append(all, slog...)
		}
		keys := scenario.KeyDigests(all)
		if body.Keys == nil {
			body.Keys, refNode = keys, id
			continue
		}
		if diffs := scenario.DiffDigests(body.Keys, keys); len(diffs) > 0 {
			return Response{Error: fmt.Sprintf(
				"replicas %d and %d disagree on the stable prefix (%s); not converged, snapshot refused",
				refNode, id, diffs[0])}
		}
	}
	if body.Keys == nil {
		return Response{Error: "no live replica hosted here"}
	}
	return Response{OK: true, Scenario: body}
}

// optHealth synthesizes the /healthz body for an optimistic deployment.
// There is no quorum to reach: a replica serves tentative commits alone,
// so the process is healthy exactly when it hosts an up replica.
func (s *Server) optHealth() core.Health {
	h := core.Health{Vantage: runtime.None}
	for _, id := range s.opt.LocalNodes() {
		if !s.opt.Down(id) {
			h.Vantage = id
			h.QuorumOK = true
			break
		}
	}
	return h
}

// --- client surface -------------------------------------------------------

// SubmitCAS submits an optimistic CAS write and returns the assigned
// transaction ID (guard semantics: optimistic.SubmitCAS). Plain optimistic
// submits go through Submit with an empty guard — the server routes by its
// protocol, not by the request shape.
func (c *Client) SubmitCAS(home int, key, value, guard string) (string, error) {
	resp, err := c.roundTrip(Request{Op: "submit", Home: home, Key: key, Value: value, Guard: guard})
	if err != nil {
		return "", err
	}
	return resp.Txn, nil
}

// ReadTentative reads a key's tentative (overlay last-writer) value at an
// optimistic replica.
func (c *Client) ReadTentative(node int, key string) (value string, found bool, err error) {
	resp, err := c.roundTrip(Request{Op: "read", Node: node, Key: key, Tentative: true})
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, nil
}

// DigestReport fetches the full kind-tagged digest response: Kind plus, on
// an optimistic service, both tiers with their per-key digests. Callers
// comparing digests across processes must compare Kind first — DigestShards
// remains for kind-unaware tooling and reads the converging tier.
func (c *Client) DigestReport(node int) (Response, error) {
	return c.roundTrip(Request{Op: "digest", Node: node})
}

// RefereeReport fetches the kind-tagged referee verdict (see Referee for
// the legacy two-int form).
func (c *Client) RefereeReport() (Response, error) {
	return c.roundTrip(Request{Op: "referee"})
}
