package transport

import (
	"testing"
	"time"

	marp "repro"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	// 200x speed: protocol milliseconds resolve almost immediately.
	srv, err := Serve("127.0.0.1:0", marp.Options{Servers: 5, Seed: 42}, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func waitCommitted(t *testing.T, cli *Client, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cli.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Committed >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d updates committed (outstanding %d)", st.Committed, want, st.Outstanding)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitReadOverTCP(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Submit(1, "greeting", "hello-tcp", false); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, cli, 1)
	for node := 1; node <= 5; node++ {
		value, seq, found, err := cli.Read(node, "greeting")
		if err != nil {
			t.Fatal(err)
		}
		if !found || value != "hello-tcp" || seq != 1 {
			t.Fatalf("node %d: value=%q seq=%d found=%v", node, value, seq, found)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			errs <- cli.Submit(i+1, "shared", "from-client", true)
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitCommitted(t, cli, clients)
	value, _, found, err := cli.Read(1, "shared")
	if err != nil || !found {
		t.Fatalf("read: %v found=%v", err, found)
	}
	if len(value) != clients*len("from-client") {
		t.Fatalf("append lost data: %q", value)
	}
}

func TestCrashRecoverOverTCP(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Crash(5); err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(1, "x", "v", false); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, cli, 1)
	if _, _, found, _ := cli.Read(5, "x"); found {
		t.Fatal("crashed server answered a read")
	}
	if err := cli.Recover(5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, seq, found, err := cli.Read(5, "x")
		if err != nil {
			t.Fatal(err)
		}
		if found && seq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered server never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStats(t *testing.T) {
	_, cli := startServer(t)
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Servers != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if err := cli.Submit(2, "k", "v", false); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, cli, 1)
	st, err = cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages == 0 || st.Migrations == 0 {
		t.Fatalf("stats after update = %+v", st)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Submit(99, "k", "v", false); err == nil {
		t.Fatal("submit to unknown home accepted")
	}
	if _, err := cli.roundTrip(Request{Op: "dance"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// The connection remains usable after an error response.
	if err := cli.Submit(1, "k", "v", false); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", marp.Options{Servers: 3, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // no panic
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dial succeeded after close")
	}
}
