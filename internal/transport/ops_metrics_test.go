package transport

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/ops"
)

// scrape fetches /metrics and returns the parsed sample lines.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			t.Fatalf("unparseable sample line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsScrapeUnderLoad is the ops-plane half of the registry
// concurrency test (internal/metrics has the package-level half): HTTP
// scrapes race live submit traffic, every Gather marshalled onto the
// engine's execution context, and the exported counters must be present
// and monotonic throughout. Run with -race this doubles as the proof
// that scraping never touches engine state off-loop.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv, cli := startServer(t)
	opsSrv, err := ops.Serve("127.0.0.1:0", ops.Config{
		Gather: srv.GatherMetrics,
		Health: srv.Health,
	})
	if err != nil {
		t.Fatalf("ops.Serve: %v", err)
	}
	defer opsSrv.Close()
	url := "http://" + opsSrv.Addr() + "/metrics"

	const writers, submits = 3, 8
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < submits; i++ {
				if err := c.Submit(w+1, fmt.Sprintf("k%d-%d", w, i), "v", false); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}

	monotonic := []string{
		"marp_replica_commits",
		"marp_fabric_messages_sent",
		"marp_agent_migrations_completed",
		"marp_wal_appends", // zero throughout (volatile sim), still monotonic
	}
	prev := make(map[string]float64)
	const scrapes = 40
	for i := 0; i < scrapes; i++ {
		samples := scrape(t, url)
		for _, name := range monotonic {
			v, present := samples[name]
			if !present {
				t.Fatalf("scrape %d: %s missing", i, name)
			}
			if v < prev[name] {
				t.Fatalf("scrape %d: %s went backwards: %v -> %v", i, name, prev[name], v)
			}
			prev[name] = v
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The final scrape must show the whole ops surface: one family from
	// each instrumented subsystem.
	samples := scrape(t, url)
	for _, subsystem := range []string{
		"marp_wal_", "marp_disk_", "marp_reliable_", "marp_fabric_",
		"marp_agent_", "marp_replica_", "marp_shard_", "marp_health_",
	} {
		found := false
		for name := range samples {
			if strings.HasPrefix(name, subsystem) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no metric exported under %s*", subsystem)
		}
	}
	waitCommitted(t, cli, writers*submits)
	if got := scrape(t, url)["marp_replica_commits"]; got < float64(writers*submits) {
		t.Errorf("marp_replica_commits = %v after %d committed submits", got, writers*submits)
	}
}
