// Staged is the optimistic counterpart of Store: a replica's data under
// the optimistic commitment protocol (internal/optimistic) keeps two tiers
// instead of one committed log.
//
//   - The stable prefix: an immutable, totally ordered log of updates the
//     decentralised election has promoted. It only ever grows at the tail
//     (DESIGN.md invariant 15), and per-key digests are computed over this
//     tier only.
//   - The tentative overlay: updates applied locally the moment they were
//     submitted or received, held in the global candidate order — sorted by
//     (Stamp, TxnID) — awaiting election. An arrival that sorts into the
//     middle of the overlay invalidates the tentative execution of every
//     later entry; those entries are re-executed against the new order, and
//     the displacement is counted as rollbacks (the `marp.opt.rollbacks`
//     instrument).
//
// Reads come in two kinds, matching the two digests marpctl reports: a
// stable read sees the elected prefix only; a tentative read sees the
// overlay's last writer for the key, which is what the submitting client
// observed at local-commit time.

package store

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// StagedLess is the global candidate order of the optimistic protocol:
// Lamport stamp first, transaction ID as the deterministic tie-break.
// Transaction IDs encode (origin, shard, oseq) zero-padded, so the string
// order equals the numeric (origin, oseq) order within a shard and every
// replica sorts identically without coordination.
func StagedLess(a, b Update) bool {
	if a.Stamp != b.Stamp {
		return a.Stamp < b.Stamp
	}
	return a.TxnID < b.TxnID
}

// Staged is one shard's two-tier optimistic store. Like Store it is
// single-threaded: its owning replica drives it from the engine's
// execution context.
type Staged struct {
	stable    []Update         // the immutable stable prefix, Seq 1..len
	values    map[string]Value // stable values (last stable writer per key)
	overlay   []Update         // tentative candidates, sorted by StagedLess
	inOverlay map[string]bool  // TxnIDs present in the overlay
	inStable  map[string]bool  // TxnIDs promoted into the stable prefix
	rollbacks uint64
}

// NewStaged returns an empty two-tier store.
func NewStaged() *Staged {
	return &Staged{
		values:    make(map[string]Value),
		inOverlay: make(map[string]bool),
		inStable:  make(map[string]bool),
	}
}

// Stage applies an update tentatively, inserting it at its slot in the
// candidate order. It returns how many later overlay entries the insertion
// displaced — tentative executions that were rolled back and re-executed
// against the new order (zero when the update lands at the tail, the common
// case for a fresh local submit). Duplicate transactions are rejected; the
// replica's contiguous-delivery counters make that a protocol bug, not a
// network artifact.
func (s *Staged) Stage(u Update) (displaced int, err error) {
	if u.TxnID == "" || u.Key == "" {
		return 0, fmt.Errorf("store: malformed staged update %+v", u)
	}
	if s.inOverlay[u.TxnID] || s.inStable[u.TxnID] {
		return 0, fmt.Errorf("store: %w: %s staged twice", ErrTxnCollision, u.TxnID)
	}
	i := sort.Search(len(s.overlay), func(i int) bool { return StagedLess(u, s.overlay[i]) })
	s.overlay = append(s.overlay, Update{})
	copy(s.overlay[i+1:], s.overlay[i:])
	s.overlay[i] = u
	s.inOverlay[u.TxnID] = true
	displaced = len(s.overlay) - 1 - i
	s.rollbacks += uint64(displaced)
	return displaced, nil
}

// PromoteUpTo runs the election's promotion step: every overlay entry with
// Stamp <= bound — by construction of the stability frontier a contiguous
// prefix of the candidate order, identical at every replica — leaves the
// overlay in order. Entries passing the guard check are appended to the
// stable prefix with the next stable sequence number; losers are aborted.
// guardOK may be nil (no constraints — every candidate wins).
func (s *Staged) PromoteUpTo(bound int64, guardOK func(Update) bool) (promoted, aborted []Update) {
	n := 0
	for n < len(s.overlay) && s.overlay[n].Stamp <= bound {
		n++
	}
	if n == 0 {
		return nil, nil
	}
	batch := make([]Update, n)
	copy(batch, s.overlay[:n])
	s.overlay = s.overlay[:copy(s.overlay, s.overlay[n:])]
	for _, u := range batch {
		delete(s.inOverlay, u.TxnID)
		if guardOK != nil && !guardOK(u) {
			aborted = append(aborted, u)
			continue
		}
		u.Seq = uint64(len(s.stable) + 1)
		s.stable = append(s.stable, u)
		s.inStable[u.TxnID] = true
		s.values[u.Key] = Value{Data: u.Data, Version: u.version()}
		promoted = append(promoted, u)
	}
	return promoted, aborted
}

// RestoreStable appends an already-elected update to the stable prefix —
// the journal-replay path. The update must carry the next stable sequence
// number; anything else is corruption.
func (s *Staged) RestoreStable(u Update) error {
	if u.Seq != uint64(len(s.stable)+1) {
		return fmt.Errorf("store: %w: stable restore seq %d, want %d", ErrSeqGap, u.Seq, len(s.stable)+1)
	}
	s.stable = append(s.stable, u)
	s.inStable[u.TxnID] = true
	s.values[u.Key] = Value{Data: u.Data, Version: u.version()}
	return nil
}

// Get returns the stable value for key — the elected, immutable state.
func (s *Staged) Get(key string) (Value, bool) {
	v, ok := s.values[key]
	return v, ok
}

// TentativeGet returns the tentative view of key: the overlay's last writer
// in candidate order, falling back to the stable value. This is what the
// submitting client observed at local-commit time.
func (s *Staged) TentativeGet(key string) (Value, bool) {
	for i := len(s.overlay) - 1; i >= 0; i-- {
		if u := s.overlay[i]; u.Key == key {
			return Value{Data: u.Data, Version: Version{Stamp: u.Stamp, Writer: u.TxnID}}, true
		}
	}
	return s.Get(key)
}

// StableWriter returns the TxnID of key's last stable writer ("" if the
// key has no stable version) — the value optimistic CAS guards compare.
func (s *Staged) StableWriter(key string) string { return s.values[key].Version.Writer }

// StableLog returns a copy of the stable prefix in election order.
func (s *Staged) StableLog() []Update {
	out := make([]Update, len(s.stable))
	copy(out, s.stable)
	return out
}

// StableLen returns the stable prefix length without copying.
func (s *Staged) StableLen() int { return len(s.stable) }

// Overlay returns a copy of the tentative overlay in candidate order.
func (s *Staged) Overlay() []Update {
	out := make([]Update, len(s.overlay))
	copy(out, s.overlay)
	return out
}

// OverlayLen returns the tentative overlay depth without copying.
func (s *Staged) OverlayLen() int { return len(s.overlay) }

// InStable reports whether txn has been promoted into the stable prefix.
func (s *Staged) InStable(txn string) bool { return s.inStable[txn] }

// InOverlay reports whether txn is still tentative.
func (s *Staged) InOverlay(txn string) bool { return s.inOverlay[txn] }

// Rollbacks returns the cumulative count of tentative executions displaced
// by out-of-order arrivals.
func (s *Staged) Rollbacks() uint64 { return s.rollbacks }

// StableDigest folds the stable prefix into an order-DEPENDENT digest:
// unlike the commit-set digest of the pessimistic path (which MARP's
// per-key serialization makes order-free), the optimistic stable prefix is
// one total order, and two replicas agree only if they elected the same
// updates in the same sequence.
func (s *Staged) StableDigest() (string, int) {
	h := fnv.New64a()
	for _, u := range s.stable {
		h.Write([]byte(u.Key))
		h.Write([]byte{0})
		h.Write([]byte(u.TxnID))
		h.Write([]byte{0})
		h.Write([]byte(u.Data))
		h.Write([]byte{0xff})
	}
	return fmt.Sprintf("%016x", h.Sum64()), len(s.stable)
}
