package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPrepare(t *testing.T, s *Store, u Update) {
	t.Helper()
	if err := s.Prepare(u); err != nil {
		t.Fatalf("Prepare(%+v): %v", u, err)
	}
}

func mustCommit(t *testing.T, s *Store, txn string) {
	t.Helper()
	if err := s.Commit(txn); err != nil {
		t.Fatalf("Commit(%s): %v", txn, err)
	}
}

func TestPrepareCommitGet(t *testing.T) {
	s := New()
	mustPrepare(t, s, Update{TxnID: "t1", Key: "x", Data: "v1", Seq: 1, Stamp: 100})
	if _, ok := s.Get("x"); ok {
		t.Fatal("tentative update visible before commit")
	}
	mustCommit(t, s, "t1")
	v, ok := s.Get("x")
	if !ok || v.Data != "v1" || v.Version.Seq != 1 || v.Version.Writer != "t1" || v.Version.Stamp != 100 {
		t.Fatalf("Get = %+v, %v", v, ok)
	}
	if s.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d", s.LastSeq())
	}
}

func TestAbortDiscards(t *testing.T) {
	s := New()
	mustPrepare(t, s, Update{TxnID: "t1", Key: "x", Data: "v1", Seq: 1})
	s.Abort("t1")
	if s.Pending() != 0 {
		t.Fatal("pending after abort")
	}
	if err := s.Commit("t1"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("Commit after abort = %v, want ErrUnknownTxn", err)
	}
	// The sequence number is reusable after an abort.
	mustPrepare(t, s, Update{TxnID: "t2", Key: "x", Data: "v2", Seq: 1})
	mustCommit(t, s, "t2")
	if v, _ := s.Get("x"); v.Data != "v2" {
		t.Fatalf("Get = %+v", v)
	}
}

func TestPrepareRejectsStaleAndGaps(t *testing.T) {
	s := New()
	mustPrepare(t, s, Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1})
	mustCommit(t, s, "t1")
	if err := s.Prepare(Update{TxnID: "t2", Key: "x", Data: "b", Seq: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale prepare = %v", err)
	}
	if err := s.Prepare(Update{TxnID: "t3", Key: "x", Data: "c", Seq: 3}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap prepare = %v", err)
	}
}

func TestPrepareRejectsMalformedAndDup(t *testing.T) {
	s := New()
	if err := s.Prepare(Update{TxnID: "", Key: "x", Seq: 1}); err == nil {
		t.Fatal("empty TxnID accepted")
	}
	if err := s.Prepare(Update{TxnID: "t", Key: "", Seq: 1}); err == nil {
		t.Fatal("empty key accepted")
	}
	mustPrepare(t, s, Update{TxnID: "t", Key: "x", Data: "a", Seq: 1})
	if err := s.Prepare(Update{TxnID: "t", Key: "y", Data: "b", Seq: 1}); !errors.Is(err, ErrTxnCollision) {
		t.Fatalf("dup txn = %v", err)
	}
}

func TestCommitIdempotentAfterAntiEntropy(t *testing.T) {
	s := New()
	mustPrepare(t, s, Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1})
	// Anti-entropy applies the same committed update before the COMMIT
	// message arrives.
	if err := s.ApplyCommitted(Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("t1"); err != nil {
		t.Fatalf("Commit after anti-entropy = %v", err)
	}
	if s.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d", s.LastSeq())
	}
}

func TestApplyCommittedOrdering(t *testing.T) {
	s := New()
	if err := s.ApplyCommitted(Update{TxnID: "t2", Key: "x", Data: "b", Seq: 2}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap apply = %v", err)
	}
	if err := s.ApplyCommitted(Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyCommitted(Update{TxnID: "t1", Key: "x", Data: "a", Seq: 1}); err != nil {
		t.Fatalf("idempotent re-apply = %v", err)
	}
	if err := s.ApplyCommitted(Update{TxnID: "t2", Key: "x", Data: "b", Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("x"); v.Data != "b" {
		t.Fatalf("Get = %+v", v)
	}
}

func TestUpdatesSince(t *testing.T) {
	s := New()
	for i := 1; i <= 5; i++ {
		u := Update{TxnID: fmt.Sprintf("t%d", i), Key: "k", Data: fmt.Sprintf("v%d", i), Seq: uint64(i)}
		if err := s.ApplyCommitted(u); err != nil {
			t.Fatal(err)
		}
	}
	got := s.UpdatesSince(2)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("UpdatesSince(2) = %+v", got)
	}
	if len(s.Log()) != 5 {
		t.Fatalf("Log len = %d", len(s.Log()))
	}
	// Mutating the returned slice must not affect the store.
	got[0].Data = "mutated"
	if s.Log()[2].Data == "mutated" {
		t.Fatal("UpdatesSince returned aliasing slice")
	}
}

func TestKeysAndSnapshot(t *testing.T) {
	s := New()
	_ = s.ApplyCommitted(Update{TxnID: "a", Key: "zebra", Data: "1", Seq: 1})
	_ = s.ApplyCommitted(Update{TxnID: "b", Key: "apple", Data: "2", Seq: 2})
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "apple" || keys[1] != "zebra" {
		t.Fatalf("Keys = %v", keys)
	}
	snap := s.Snapshot()
	if snap["apple"].Data != "2" {
		t.Fatalf("Snapshot = %+v", snap)
	}
	snap["apple"] = Value{Data: "hacked"}
	if v, _ := s.Get("apple"); v.Data != "2" {
		t.Fatal("Snapshot aliases store")
	}
}

func TestVersionLess(t *testing.T) {
	a := Version{Seq: 1, Stamp: 10}
	b := Version{Seq: 2, Stamp: 5}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Seq ordering wrong")
	}
	c := Version{Seq: 1, Stamp: 20}
	if !a.Less(c) {
		t.Fatal("Stamp tiebreak wrong")
	}
}

func TestVersionOfMissingKey(t *testing.T) {
	s := New()
	if v := s.VersionOf("nope"); v.Seq != 0 {
		t.Fatalf("VersionOf missing = %+v", v)
	}
}

// Property: two stores fed the same committed updates — one via
// prepare/commit, one via anti-entropy replay — converge to identical state.
func TestPropertyConvergenceAcrossPaths(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		primary, replica := New(), New()
		keys := []string{"a", "b", "c"}
		for i := 1; i <= int(nOps); i++ {
			u := Update{
				TxnID: fmt.Sprintf("t%d", i),
				Key:   keys[rng.Intn(len(keys))],
				Data:  fmt.Sprintf("v%d", rng.Intn(100)),
				Seq:   uint64(i),
				Stamp: int64(i * 10),
			}
			if err := primary.Prepare(u); err != nil {
				return false
			}
			if err := primary.Commit(u.TxnID); err != nil {
				return false
			}
		}
		for _, u := range primary.Log() {
			if err := replica.ApplyCommitted(u); err != nil {
				return false
			}
		}
		a, b := primary.Snapshot(), replica.Snapshot()
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the committed log always has strictly increasing, gapless Seq.
func TestPropertyLogGapless(t *testing.T) {
	f := func(aborts []bool) bool {
		s := New()
		seq := uint64(0)
		for i, abort := range aborts {
			u := Update{TxnID: fmt.Sprintf("t%d", i), Key: "k", Data: "v", Seq: seq + 1}
			if err := s.Prepare(u); err != nil {
				return false
			}
			if abort {
				s.Abort(u.TxnID)
				continue
			}
			if err := s.Commit(u.TxnID); err != nil {
				return false
			}
			seq++
		}
		log := s.Log()
		for i, u := range log {
			if u.Seq != uint64(i+1) {
				return false
			}
		}
		return s.LastSeq() == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrepareCommit(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := Update{TxnID: "t", Key: "k", Data: "v", Seq: uint64(i + 1)}
		if err := s.Prepare(u); err != nil {
			b.Fatal(err)
		}
		if err := s.Commit("t"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdatesSince(b *testing.B) {
	s := New()
	for i := 1; i <= 10000; i++ {
		_ = s.ApplyCommitted(Update{TxnID: "t", Key: "k", Data: "v", Seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.UpdatesSince(9990); len(got) != 10 {
			b.Fatal("wrong tail")
		}
	}
}
