package store

import (
	"errors"
	"testing"
)

func stagedUpdate(txn, key, data string, stamp int64) Update {
	return Update{TxnID: txn, Key: key, Data: data, Stamp: stamp}
}

func TestStagedCandidateOrder(t *testing.T) {
	s := NewStaged()
	// Arrivals out of candidate order; the overlay must sort by
	// (Stamp, TxnID) regardless.
	ins := []Update{
		stagedUpdate("o002-s000-000000001", "k", "b", 3),
		stagedUpdate("o001-s000-000000001", "k", "a", 1),
		stagedUpdate("o001-s000-000000002", "k", "c", 3),
	}
	displaced := make([]int, len(ins))
	for i, u := range ins {
		var err error
		if displaced[i], err = s.Stage(u); err != nil {
			t.Fatalf("Stage(%s): %v", u.TxnID, err)
		}
	}
	// First insert displaces nothing; the stamp-1 arrival displaces one;
	// stamp-3 with smaller TxnID displaces the stamp-3 tail entry.
	if displaced[0] != 0 || displaced[1] != 1 || displaced[2] != 1 {
		t.Fatalf("displaced = %v, want [0 1 1]", displaced)
	}
	if got := s.Rollbacks(); got != 2 {
		t.Fatalf("Rollbacks = %d, want 2", got)
	}
	ov := s.Overlay()
	want := []string{"o001-s000-000000001", "o001-s000-000000002", "o002-s000-000000001"}
	for i, txn := range want {
		if ov[i].TxnID != txn {
			t.Fatalf("overlay[%d] = %s, want %s", i, ov[i].TxnID, txn)
		}
	}
	// Tentative read sees the overlay's last writer; stable read nothing.
	if v, ok := s.TentativeGet("k"); !ok || v.Data != "b" {
		t.Fatalf("TentativeGet = %+v %v, want last-writer b", v, ok)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("stable Get visible before promotion")
	}
}

func TestStagedDuplicateRejected(t *testing.T) {
	s := NewStaged()
	u := stagedUpdate("o001-s000-000000001", "k", "a", 1)
	if _, err := s.Stage(u); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stage(u); !errors.Is(err, ErrTxnCollision) {
		t.Fatalf("restaging = %v, want ErrTxnCollision", err)
	}
	if _, _ = s.PromoteUpTo(10, nil); !s.InStable(u.TxnID) {
		t.Fatal("not promoted")
	}
	if _, err := s.Stage(u); !errors.Is(err, ErrTxnCollision) {
		t.Fatalf("restaging after promotion = %v, want ErrTxnCollision", err)
	}
}

func TestStagedPromoteGuardAndSeq(t *testing.T) {
	s := NewStaged()
	for _, u := range []Update{
		stagedUpdate("o001-s000-000000001", "k", "a", 1),
		stagedUpdate("o002-s000-000000001", "k", "b", 1),
		stagedUpdate("o003-s000-000000001", "q", "z", 5),
	} {
		if _, err := s.Stage(u); err != nil {
			t.Fatal(err)
		}
	}
	// Election up to stamp 1: both k-writers are candidates; the guard
	// admits only the first writer of each key (a CAS race).
	promoted, aborted := s.PromoteUpTo(1, func(u Update) bool { return s.StableWriter(u.Key) == "" })
	if len(promoted) != 1 || promoted[0].TxnID != "o001-s000-000000001" || promoted[0].Seq != 1 {
		t.Fatalf("promoted = %+v, want o001 at seq 1", promoted)
	}
	if len(aborted) != 1 || aborted[0].TxnID != "o002-s000-000000001" {
		t.Fatalf("aborted = %+v, want o002", aborted)
	}
	if s.OverlayLen() != 1 {
		t.Fatalf("overlay len %d, want the stamp-5 entry left", s.OverlayLen())
	}
	// The stamp-5 entry promotes in a later batch with the next Seq.
	promoted, aborted = s.PromoteUpTo(5, nil)
	if len(aborted) != 0 || len(promoted) != 1 || promoted[0].Seq != 2 {
		t.Fatalf("second batch = %+v / %+v, want one promotion at seq 2", promoted, aborted)
	}
	if v, ok := s.Get("k"); !ok || v.Data != "a" {
		t.Fatalf("stable k = %+v %v, want a", v, ok)
	}
	if got := s.StableWriter("k"); got != "o001-s000-000000001" {
		t.Fatalf("StableWriter(k) = %s", got)
	}
}

func TestStagedRestoreMatchesPromotion(t *testing.T) {
	a := NewStaged()
	for _, u := range []Update{
		stagedUpdate("o001-s000-000000001", "k", "a", 1),
		stagedUpdate("o002-s000-000000001", "k", "b", 2),
	} {
		if _, err := a.Stage(u); err != nil {
			t.Fatal(err)
		}
	}
	a.PromoteUpTo(10, nil)

	b := NewStaged()
	for _, u := range a.StableLog() {
		if err := b.RestoreStable(u); err != nil {
			t.Fatalf("RestoreStable: %v", err)
		}
	}
	da, na := a.StableDigest()
	db, nb := b.StableDigest()
	if da != db || na != nb {
		t.Fatalf("restored digest %s/%d, want %s/%d", db, nb, da, na)
	}
	if va, _ := a.Get("k"); va != mustGet(t, b, "k") {
		t.Fatal("restored value mismatch")
	}
	// A gap in the restore sequence is corruption.
	c := NewStaged()
	if err := c.RestoreStable(a.StableLog()[1]); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap restore = %v, want ErrSeqGap", err)
	}
}

func mustGet(t *testing.T, s *Staged, key string) Value {
	t.Helper()
	v, ok := s.Get(key)
	if !ok {
		t.Fatalf("missing stable %q", key)
	}
	return v
}

func TestStagedDigestIsOrderDependent(t *testing.T) {
	mk := func(first, second Update) string {
		s := NewStaged()
		first.Seq, second.Seq = 1, 2
		if err := s.RestoreStable(first); err != nil {
			t.Fatal(err)
		}
		if err := s.RestoreStable(second); err != nil {
			t.Fatal(err)
		}
		d, _ := s.StableDigest()
		return d
	}
	u1 := stagedUpdate("o001-s000-000000001", "k", "a", 1)
	u2 := stagedUpdate("o002-s000-000000001", "k", "b", 2)
	if mk(u1, u2) == mk(u2, u1) {
		t.Fatal("digest ignores stable order")
	}
}
