// Package store implements the versioned data store kept by each replica.
//
// The paper's replicas hold "copies of the replicated data" together with
// the time of last update; the winning agent inspects the last-update times
// of the quorum members to find the most recent copy, then broadcasts an
// UPDATE that every server applies tentatively and a COMMIT that finalizes
// it (paper §3.1). Store models exactly that two-step application, plus the
// "background information transfer" the paper assigns to replicas: a
// committed-update log that lets a recovering replica pull the updates it
// missed, in order.
//
// Updates are totally ordered by a global sequence number. The MARP lock
// serializes writers, so sequence numbers increase by exactly one; Store
// enforces that, turning any ordering bug in the protocol layer into an
// immediate error instead of silent divergence.
package store

import (
	"errors"
	"fmt"
	"sort"
)

// Version identifies one committed state of a key.
type Version struct {
	Seq    uint64 // global update sequence number (1-based; 0 = never written)
	Stamp  int64  // virtual time of the update, nanoseconds (the "time of last update")
	Writer string // ID of the agent/transaction that wrote it
}

// Less reports whether v is older than u. Seq is authoritative; Stamp only
// breaks ties for diagnostics (two committed versions never share a Seq).
func (v Version) Less(u Version) bool {
	if v.Seq != u.Seq {
		return v.Seq < u.Seq
	}
	return v.Stamp < u.Stamp
}

// Value is a versioned datum.
type Value struct {
	Data    string
	Version Version
}

// Update is one write in the global order.
type Update struct {
	TxnID string // unique transaction (agent) identifier
	Key   string
	Data  string
	Seq   uint64
	Stamp int64
}

func (u Update) version() Version { return Version{Seq: u.Seq, Stamp: u.Stamp, Writer: u.TxnID} }

// Errors returned by Store operations.
var (
	ErrSeqGap       = errors.New("store: update sequence gap, sync required")
	ErrStale        = errors.New("store: update older than committed state")
	ErrUnknownTxn   = errors.New("store: unknown transaction")
	ErrTxnCollision = errors.New("store: transaction already prepared")
)

// Journal receives every state-changing store operation after it has been
// validated, in execution order. The durability subsystem (internal/durable)
// implements it over a write-ahead log; a recovering replica rebuilds its
// store from a snapshot plus the journaled suffix. Each callback fires only
// after the operation succeeded, so replaying the journal against the
// snapshot cannot fail.
type Journal interface {
	// Prepared logs a tentatively staged update.
	Prepared(u Update)
	// Committed logs the finalization of a prepared transaction.
	Committed(txnID string)
	// Applied logs a directly applied committed update (the COMMIT
	// broadcast and anti-entropy paths). This is the record a durable
	// replica must never lose: implementations treat it as a commit
	// barrier for their fsync policy.
	Applied(u Update)
	// Aborted logs a discarded tentative transaction.
	Aborted(txnID string)
}

// Store is a single replica's data store. It is not safe for concurrent use;
// each simulated or real server owns one and accesses it from its event loop.
type Store struct {
	committed map[string]Value
	tentative map[string]Update // keyed by TxnID
	log       []Update          // committed updates, ascending Seq
	lastSeq   uint64
	journal   Journal // nil = volatile store (the default)
}

// New returns an empty store.
func New() *Store {
	return &Store{
		committed: make(map[string]Value),
		tentative: make(map[string]Update),
	}
}

// SetJournal attaches (or, with nil, detaches) the store's durability
// journal. Mutations made while attached are logged after they succeed.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// State is the serializable form of a Store: the committed log (from which
// the key-value state is derivable) plus the tentative set. It is what a
// durability snapshot carries.
type State struct {
	Log       []Update
	Tentative []Update
}

// State captures the store's full state for a snapshot.
func (s *Store) State() State {
	st := State{Log: make([]Update, len(s.log))}
	copy(st.Log, s.log)
	for _, u := range s.tentative {
		st.Tentative = append(st.Tentative, u)
	}
	sort.Slice(st.Tentative, func(i, j int) bool { return st.Tentative[i].TxnID < st.Tentative[j].TxnID })
	return st
}

// FromState rebuilds a store from a captured State. The returned store has
// no journal attached; recovery attaches one after replay so the rebuild
// itself is not re-logged.
func FromState(st State) *Store {
	s := New()
	for _, u := range st.Log {
		s.apply(u)
	}
	for _, u := range st.Tentative {
		s.tentative[u.TxnID] = u
	}
	return s
}

// Get returns the committed value for key.
func (s *Store) Get(key string) (Value, bool) {
	v, ok := s.committed[key]
	return v, ok
}

// VersionOf returns the committed version of key (zero Version if absent).
func (s *Store) VersionOf(key string) Version { return s.committed[key].Version }

// LastSeq returns the highest committed sequence number.
func (s *Store) LastSeq() uint64 { return s.lastSeq }

// Prepare stages an update tentatively (the server's reaction to an UPDATE
// message). It validates the global ordering: the update must carry exactly
// the next sequence number. A stale update (already committed here) returns
// ErrStale; a gap returns ErrSeqGap, signalling that the replica missed
// updates while failed and must sync before acknowledging.
func (s *Store) Prepare(u Update) error {
	if u.TxnID == "" || u.Key == "" {
		return fmt.Errorf("store: malformed update %+v", u)
	}
	if _, dup := s.tentative[u.TxnID]; dup {
		return ErrTxnCollision
	}
	switch {
	case u.Seq <= s.lastSeq:
		return ErrStale
	case u.Seq != s.lastSeq+1:
		return ErrSeqGap
	}
	s.tentative[u.TxnID] = u
	if s.journal != nil {
		s.journal.Prepared(u)
	}
	return nil
}

// Commit finalizes a prepared update (the server's reaction to a COMMIT
// message). Committing is idempotent with respect to Abort-after-Commit but
// an unknown TxnID returns ErrUnknownTxn.
func (s *Store) Commit(txnID string) error {
	u, ok := s.tentative[txnID]
	if !ok {
		return ErrUnknownTxn
	}
	delete(s.tentative, txnID)
	if u.Seq != s.lastSeq+1 {
		// Another path (anti-entropy) may have applied it already.
		if u.Seq <= s.lastSeq {
			if s.journal != nil {
				s.journal.Committed(txnID)
			}
			return nil
		}
		return ErrSeqGap
	}
	s.apply(u)
	if s.journal != nil {
		s.journal.Committed(txnID)
	}
	return nil
}

// Abort discards a prepared update. Unknown transactions are ignored.
func (s *Store) Abort(txnID string) {
	if _, ok := s.tentative[txnID]; !ok {
		return
	}
	delete(s.tentative, txnID)
	if s.journal != nil {
		s.journal.Aborted(txnID)
	}
}

// Pending reports the number of prepared-but-uncommitted updates.
func (s *Store) Pending() int { return len(s.tentative) }

// ApplyCommitted applies an already-globally-committed update directly,
// bypassing the prepare/commit handshake. It is the anti-entropy path used
// by a recovering replica. Already-applied updates are no-ops; gaps are
// rejected so callers must replay in order.
func (s *Store) ApplyCommitted(u Update) error {
	if u.Seq <= s.lastSeq {
		return nil
	}
	if u.Seq != s.lastSeq+1 {
		return ErrSeqGap
	}
	s.apply(u)
	if s.journal != nil {
		s.journal.Applied(u)
	}
	return nil
}

func (s *Store) apply(u Update) {
	s.committed[u.Key] = Value{Data: u.Data, Version: u.version()}
	s.log = append(s.log, u)
	s.lastSeq = u.Seq
}

// UpdatesSince returns the committed updates with Seq greater than seq, in
// order — the payload of a background information transfer to a recovering
// peer.
func (s *Store) UpdatesSince(seq uint64) []Update {
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].Seq > seq })
	out := make([]Update, len(s.log)-i)
	copy(out, s.log[i:])
	return out
}

// Log returns a copy of the full committed update log.
func (s *Store) Log() []Update { return s.UpdatesSince(0) }

// LogLen returns the committed update count without copying the log — the
// ops plane samples it on every scrape.
func (s *Store) LogLen() int { return len(s.log) }

// Keys returns the committed keys in sorted order.
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.committed))
	for k := range s.committed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the committed state.
func (s *Store) Snapshot() map[string]Value {
	out := make(map[string]Value, len(s.committed))
	for k, v := range s.committed {
		out[k] = v
	}
	return out
}
