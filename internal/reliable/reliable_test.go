package reliable

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
)

type rec struct{ msgs []simnet.Message }

func (r *rec) Deliver(m simnet.Message) { r.msgs = append(r.msgs, m) }

func pair(t *testing.T, faults *simnet.FaultModel, cfg Config) (*des.Simulator, *simnet.Network, *Layer, *rec, *rec) {
	t.Helper()
	sim := des.New(11)
	net := simnet.New(sim, simnet.FullMesh(2), simnet.Constant(time.Millisecond))
	net.SetFaults(faults)
	l := NewLayer(sim, net, cfg)
	a, b := &rec{}, &rec{}
	l.Attach(1, a)
	l.Attach(2, b)
	return sim, net, l, a, b
}

func TestBackoffSchedule(t *testing.T) {
	cfg := Config{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Attempts: 6}
	want := []time.Duration{
		10 * time.Millisecond, // after 1st transmission
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped at Max
	}
	for i, w := range want {
		if got := Backoff(cfg, i+1); got != w {
			t.Errorf("Backoff(attempt=%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := Backoff(cfg, 0); got != cfg.Base {
		t.Errorf("Backoff(attempt=0) = %v, want base %v", got, cfg.Base)
	}
	if got := Backoff(Config{}, 1); got != DefaultConfig.Base {
		t.Errorf("zero config Backoff = %v, want default base %v", got, DefaultConfig.Base)
	}
}

func TestDedupDeliversExactlyOnce(t *testing.T) {
	// Heavy network-level duplication: every frame may arrive several times
	// (and acks duplicate too), yet the upper handler sees each payload once.
	sim, net, l, _, b := pair(t, simnet.NewFaultModel(21, 0, 0.9), Config{})
	const n = 50
	for i := 0; i < n; i++ {
		l.Send(simnet.Message{From: 1, To: 2, Payload: i, Size: 10})
	}
	sim.Run()
	if len(b.msgs) != n {
		t.Fatalf("delivered %d payloads, want exactly %d", len(b.msgs), n)
	}
	seen := make(map[int]bool)
	for _, m := range b.msgs {
		v := m.Payload.(int)
		if seen[v] {
			t.Fatalf("payload %d delivered twice", v)
		}
		seen[v] = true
		if m.Size != 10 {
			t.Fatalf("payload size %d, want caller's 10", m.Size)
		}
	}
	if l.Stats().DuplicatesSuppressed == 0 {
		t.Fatal("no duplicates suppressed despite dup=0.9")
	}
	if net.Stats().MessagesDuplicated == 0 {
		t.Fatal("network injected no duplicates")
	}
}

func TestLossRecoveredByRetransmission(t *testing.T) {
	// 30% loss in both directions (data and acks) — the chaos experiment's
	// upper bound. A transmission confirms only when data AND ack both pass
	// (p≈0.49), so with 12 transmissions the chance a frame is never
	// confirmed is ~0.03%; the seeded run confirms all of them.
	sim, _, l, _, b := pair(t, simnet.NewFaultModel(5, 0.3, 0),
		Config{Base: 5 * time.Millisecond, Max: 40 * time.Millisecond, Attempts: 12})
	const n = 100
	for i := 0; i < n; i++ {
		l.Send(simnet.Message{From: 1, To: 2, Payload: i, Size: 10})
	}
	sim.Run()
	st := l.Stats()
	if st.GaveUp != 0 {
		t.Fatalf("%d sends gave up under 30%% loss with 12 attempts", st.GaveUp)
	}
	if len(b.msgs) != n {
		t.Fatalf("delivered %d payloads, want %d (stats %+v)", len(b.msgs), n, st)
	}
	if st.Retransmissions == 0 {
		t.Fatal("no retransmissions under 30% loss")
	}
}

func TestUnreachablePeerSurfaces(t *testing.T) {
	sim, net, l, _, b := pair(t, nil, Config{Base: 5 * time.Millisecond, Attempts: 3})
	net.SetDown(2, true)
	var gaveUp []simnet.Message
	l.OnUnreachable(func(from, to simnet.NodeID, msg simnet.Message) {
		if from != 1 || to != 2 {
			t.Errorf("unreachable endpoints %d->%d, want 1->2", from, to)
		}
		gaveUp = append(gaveUp, msg)
	})
	l.Send(simnet.Message{From: 1, To: 2, Payload: "lost", Size: 4})
	sim.Run()
	if len(gaveUp) != 1 || gaveUp[0].Payload != "lost" {
		t.Fatalf("OnUnreachable calls = %+v, want exactly one with the original payload", gaveUp)
	}
	if st := l.Stats(); st.GaveUp != 1 || st.Retransmissions != 2 {
		t.Fatalf("stats = %+v, want GaveUp=1 Retransmissions=2 (3 transmissions total)", st)
	}
	if len(b.msgs) != 0 {
		t.Fatalf("down node received %d messages", len(b.msgs))
	}
}

func TestCrashClearsVolatileState(t *testing.T) {
	sim, net, l, a, _ := pair(t, nil, Config{Base: 5 * time.Millisecond, Attempts: 4})
	net.SetDown(2, true)
	l.Send(simnet.Message{From: 1, To: 2, Payload: "doomed", Size: 4})
	var unreachable int
	l.OnUnreachable(func(_, _ simnet.NodeID, _ simnet.Message) { unreachable++ })
	l.Crash(1) // sender crashes: its unacked send must die silently
	net.SetDown(1, true)
	sim.Run()
	if unreachable != 0 {
		t.Fatal("a crashed sender reported unreachable peers")
	}
	// After recovery of both nodes the link works again, and the surviving
	// send counter keeps post-recovery frames distinct from old ones.
	net.SetDown(1, false)
	net.SetDown(2, false)
	l.Send(simnet.Message{From: 2, To: 1, Payload: "fresh", Size: 5})
	sim.Run()
	if len(a.msgs) != 1 || a.msgs[0].Payload != "fresh" {
		t.Fatalf("post-recovery delivery = %+v", a.msgs)
	}
}

func TestRawMessagesPassThrough(t *testing.T) {
	// A sender that bypasses the layer (legacy path) still reaches the
	// handler unchanged.
	sim, net, _, _, b := pair(t, nil, Config{})
	net.Send(simnet.Message{From: 1, To: 2, Payload: "raw", Size: 3})
	sim.Run()
	if len(b.msgs) != 1 || b.msgs[0].Payload != "raw" {
		t.Fatalf("raw delivery = %+v", b.msgs)
	}
}
