package reliable

import "repro/internal/wire"

// Wire-codec tags for the ack/retransmit frames (DESIGN.md §11). Tags are
// part of the wire format: never renumber.
const (
	tagDataMsg = 40
	tagAckMsg  = 41
)

func init() {
	wire.Register(tagDataMsg, dataMsg{},
		func(b []byte, v any) []byte {
			m := v.(dataMsg)
			b = wire.AppendUvarint(b, m.Seq)
			out, err := wire.AppendMessage(b, m.Payload)
			if err != nil {
				// Unencodable nested payloads are programming errors: the
				// live fabric checks Registered before queueing a frame.
				panic("reliable: " + err.Error())
			}
			return out
		},
		func(r *wire.Reader) any {
			m := dataMsg{Seq: r.Uvarint()}
			payload, err := wire.DecodeMessage(r)
			if err != nil {
				return nil // sticky error already armed on r
			}
			m.Payload = payload
			return m
		})
	wire.Register(tagAckMsg, ackMsg{},
		func(b []byte, v any) []byte {
			return wire.AppendUvarint(b, v.(ackMsg).Seq)
		},
		func(r *wire.Reader) any {
			return ackMsg{Seq: r.Uvarint()}
		})
}
