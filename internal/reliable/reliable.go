// Package reliable layers acknowledged, at-most-once-duplicated delivery on
// top of a lossy runtime.Fabric.
//
// The paper (§2) assumes reliable asynchronous channels, so the MARP
// protocol layers never had to cope with message loss. When a
// simnet.FaultModel is attached to the network that assumption breaks, and
// this package restores it end-to-end the way real systems do: every
// payload is wrapped in a sequenced frame, the receiver acknowledges each
// frame and suppresses duplicates, and the sender retransmits with
// exponential backoff and jitter until either an ack arrives or the retry
// cap is exhausted — at which point the peer is reported unreachable to the
// caller, who falls back on the protocol's own timeout machinery.
//
// Layer implements runtime.Fabric, so protocol code (agent.Platform,
// replica.Server) runs over either a bare fabric or a *Layer without
// change. Fault decisions live in the fabric; this layer draws randomness
// only for retransmit jitter, from the engine's seeded source, so simulated
// runs remain deterministic. Over the live TCP fabric the same framing
// provides at-least-once delivery with dedup for agent migration.
//
// Crash semantics follow fail-stop: Crash(id) discards the node's volatile
// state — unacked sends die with the node and the duplicate-suppression
// table is lost, so a retransmit that straddles a crash/recovery may be
// delivered twice. The protocol handlers tolerate that (they are idempotent
// or guarded by attempt numbers). The per-node send counter survives a
// crash, modelling the sequence number kept in stable storage.
//
// With a durability journal attached (SetJournal), that modelling becomes
// real: the send counter is journaled as a striding high-water mark and the
// dedup table as one record per first-seen frame, and Restore rebuilds both
// after a restart — so a retransmit straddling the crash is suppressed
// instead of double-delivered.
package reliable

import (
	"sort"
	"time"

	"repro/internal/runtime"
)

// Config tunes the retransmission policy.
type Config struct {
	// Base is the delay before the first retransmission. Subsequent delays
	// double up to Max.
	Base time.Duration
	// Max caps the backoff delay.
	Max time.Duration
	// Attempts is the maximum number of transmissions per message
	// (the initial send counts as the first).
	Attempts int
	// Jitter is the fraction of each delay added uniformly at random, so
	// retransmissions from different senders decorrelate.
	Jitter float64
}

// DefaultConfig suits the LAN/prototype latency presets: first retry after
// 20ms, doubling to 500ms, five transmissions total.
var DefaultConfig = Config{Base: 20 * time.Millisecond, Max: 500 * time.Millisecond, Attempts: 5, Jitter: 0.2}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.Base <= 0 {
		c.Base = d.Base
	}
	if c.Max <= 0 {
		c.Max = d.Max
	}
	if c.Attempts <= 0 {
		c.Attempts = d.Attempts
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	return c
}

// Backoff returns the (jitter-free) delay scheduled after the attempt-th
// transmission: Base doubled attempt-1 times, capped at Max. Exposed pure so
// the schedule is unit-testable.
func Backoff(cfg Config, attempt int) time.Duration {
	cfg = cfg.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := cfg.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cfg.Max {
			return cfg.Max
		}
	}
	if d > cfg.Max {
		d = cfg.Max
	}
	return d
}

// Stats counts the layer's recovery work across all nodes.
type Stats struct {
	Retransmissions      int // frames sent beyond the first transmission
	DuplicatesSuppressed int // frames received more than once and dropped
	AcksSent             int
	GaveUp               int // sends that exhausted the retry cap
}

// frame header and ack sizes, charged to the network's byte accounting.
const (
	headerSize = 12
	ackSize    = 16
)

// dataMsg is a sequenced frame wrapping a protocol payload. Kind delegates
// to the payload so per-kind traffic accounting still names the protocol
// message (retransmissions count again — they are real transmissions).
type dataMsg struct {
	Seq     uint64
	Payload any
}

func (d dataMsg) Kind() string {
	if k, ok := d.Payload.(runtime.Kinder); ok {
		return k.Kind()
	}
	return "rel-data"
}

// ackMsg acknowledges receipt of the frame with the given sequence number.
type ackMsg struct{ Seq uint64 }

func (ackMsg) Kind() string { return "rel-ack" }

type pendingSend struct {
	msg     runtime.Message // the caller's original message
	seq     uint64
	attempt int
	timer   runtime.Timer
}

// Journal receives the endpoint state a node must not lose across a
// restart. The durability subsystem implements it; both callbacks fire
// from the node's execution context, after the in-memory mutation.
type Journal interface {
	// NextSeq reports the send counter after an increment. Implementations
	// persist a striding high-water mark, not every value.
	NextSeq(seq uint64)
	// Seen reports a first-seen frame from a peer.
	Seen(from runtime.NodeID, seq uint64)
}

// port is one node's endpoint state.
type port struct {
	id      runtime.NodeID
	nextSeq uint64 // survives Crash (stable storage)
	pending map[uint64]*pendingSend
	seen    map[runtime.NodeID]map[uint64]bool
	journal Journal // nil = volatile endpoint (the default)
}

func (p *port) reset() {
	p.pending = make(map[uint64]*pendingSend)
	p.seen = make(map[runtime.NodeID]map[uint64]bool)
}

// Layer is the ack/retransmit shim. It implements runtime.Fabric.
type Layer struct {
	eng           runtime.Engine
	net           runtime.Fabric
	cfg           Config
	ports         map[runtime.NodeID]*port
	upper         map[runtime.NodeID]runtime.Handler
	onUnreachable func(from, to runtime.NodeID, msg runtime.Message)
	stats         Stats
}

var _ runtime.Fabric = (*Layer)(nil)

func init() {
	// The frames must decode on the far side of a serializing fabric.
	runtime.RegisterWireType(dataMsg{})
	runtime.RegisterWireType(ackMsg{})
}

// NewLayer wraps the fabric net, scheduling retransmissions on eng.
// Zero-valued Config fields take defaults.
func NewLayer(eng runtime.Engine, net runtime.Fabric, cfg Config) *Layer {
	return &Layer{
		eng:   eng,
		net:   net,
		cfg:   cfg.withDefaults(),
		ports: make(map[runtime.NodeID]*port),
		upper: make(map[runtime.NodeID]runtime.Handler),
	}
}

// Cost delegates to the underlying fabric.
func (l *Layer) Cost(from, to runtime.NodeID) float64 { return l.net.Cost(from, to) }

// Down delegates to the underlying fabric.
func (l *Layer) Down(id runtime.NodeID) bool { return l.net.Down(id) }

// NetStats delegates the runtime.StatsSource capability to the underlying
// fabric (zero counters if it keeps none).
func (l *Layer) NetStats() runtime.NetStats {
	if src, ok := l.net.(runtime.StatsSource); ok {
		return src.NetStats()
	}
	return runtime.NetStats{}
}

// Reachable forwards the runtime.ReachabilitySource capability; retries do
// not change what the underlying fabric can reach right now.
func (l *Layer) Reachable(from, to runtime.NodeID) bool {
	if src, ok := l.net.(runtime.ReachabilitySource); ok {
		return src.Reachable(from, to)
	}
	return true
}

// WireDelivery forwards the runtime.WireFabric capability: framing does not
// change whether payloads are physically serialized underneath.
func (l *Layer) WireDelivery() bool {
	if wf, ok := l.net.(runtime.WireFabric); ok {
		return wf.WireDelivery()
	}
	return false
}

// OnUnreachable registers fn to be called when a send exhausts its retry
// cap. The protocol layers treat this as advisory — their own timeouts
// (claim, migration) drive recovery — but the cluster counts it.
func (l *Layer) OnUnreachable(fn func(from, to runtime.NodeID, msg runtime.Message)) {
	l.onUnreachable = fn
}

func (l *Layer) port(id runtime.NodeID) *port {
	p, ok := l.ports[id]
	if !ok {
		p = &port{id: id}
		p.reset()
		l.ports[id] = p
	}
	return p
}

// Attach registers h as node id's protocol handler and interposes the
// layer's framing on the wire. Re-attaching (recovery) replaces the handler.
func (l *Layer) Attach(id runtime.NodeID, h runtime.Handler) {
	l.upper[id] = h
	p := l.port(id)
	l.net.Attach(id, runtime.HandlerFunc(func(m runtime.Message) { l.receive(p, m) }))
}

// SetJournal attaches (or, with nil, detaches) node id's durability
// journal. Crash detaches it implicitly — a dead node must not journal.
func (l *Layer) SetJournal(id runtime.NodeID, j Journal) { l.port(id).journal = j }

// Restore reinstates node id's persistent endpoint state after a restart:
// the send counter (already slack-adjusted by the journal) and the
// duplicate-suppression table.
func (l *Layer) Restore(id runtime.NodeID, nextSeq uint64, seen map[runtime.NodeID][]uint64) {
	p := l.port(id)
	if nextSeq > p.nextSeq {
		p.nextSeq = nextSeq
	}
	for from, seqs := range seen {
		if p.seen[from] == nil {
			p.seen[from] = make(map[uint64]bool, len(seqs))
		}
		for _, q := range seqs {
			p.seen[from][q] = true
		}
	}
}

// PortState captures node id's persistent endpoint state for a compaction
// snapshot: the send counter and the dedup table as sorted slices.
func (l *Layer) PortState(id runtime.NodeID) (nextSeq uint64, seen map[runtime.NodeID][]uint64) {
	p := l.port(id)
	seen = make(map[runtime.NodeID][]uint64, len(p.seen))
	for from, set := range p.seen {
		seqs := make([]uint64, 0, len(set))
		for q := range set {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		seen[from] = seqs
	}
	return p.nextSeq, seen
}

// Send transmits msg with ack/retransmit semantics. Delivery to the remote
// handler happens at most the configured number of transmissions later; if
// every transmission is lost the send is abandoned and OnUnreachable fires.
func (l *Layer) Send(msg runtime.Message) {
	p := l.port(msg.From)
	p.nextSeq++
	if p.journal != nil {
		p.journal.NextSeq(p.nextSeq)
	}
	ps := &pendingSend{msg: msg, seq: p.nextSeq, attempt: 1}
	p.pending[ps.seq] = ps
	l.transmit(p, ps)
}

func (l *Layer) transmit(p *port, ps *pendingSend) {
	l.net.Send(runtime.Message{
		From:    ps.msg.From,
		To:      ps.msg.To,
		Payload: dataMsg{Seq: ps.seq, Payload: ps.msg.Payload},
		Size:    ps.msg.Size + headerSize,
	})
	d := Backoff(l.cfg, ps.attempt)
	if l.cfg.Jitter > 0 {
		d += time.Duration(l.cfg.Jitter * l.eng.Rand().Float64() * float64(d))
	}
	ps.timer = l.eng.AfterFunc(d, func() { l.expire(p, ps) })
}

func (l *Layer) expire(p *port, ps *pendingSend) {
	if p.pending[ps.seq] != ps {
		return // acked, or cleared by Crash, while the timer was in flight
	}
	if l.net.Down(ps.msg.From) {
		// Fail-stop: a down sender retransmits nothing. Crash() normally
		// clears pending first; this guards direct SetDown use.
		delete(p.pending, ps.seq)
		return
	}
	if ps.attempt >= l.cfg.Attempts {
		delete(p.pending, ps.seq)
		l.stats.GaveUp++
		if l.onUnreachable != nil {
			l.onUnreachable(ps.msg.From, ps.msg.To, ps.msg)
		}
		return
	}
	ps.attempt++
	l.stats.Retransmissions++
	l.transmit(p, ps)
}

func (l *Layer) receive(p *port, m runtime.Message) {
	switch pl := m.Payload.(type) {
	case dataMsg:
		dup := p.seen[m.From][pl.Seq]
		if dup {
			l.stats.DuplicatesSuppressed++
		} else {
			if p.seen[m.From] == nil {
				p.seen[m.From] = make(map[uint64]bool)
			}
			p.seen[m.From][pl.Seq] = true
			if p.journal != nil {
				p.journal.Seen(m.From, pl.Seq)
			}
		}
		// Ack even duplicates: the previous ack may itself have been lost.
		l.stats.AcksSent++
		l.net.Send(runtime.Message{From: p.id, To: m.From, Payload: ackMsg{Seq: pl.Seq}, Size: ackSize})
		if dup {
			return
		}
		if h := l.upper[p.id]; h != nil {
			h.Deliver(runtime.Message{From: m.From, To: m.To, Payload: pl.Payload, Size: m.Size - headerSize})
		}
	case ackMsg:
		if ps, ok := p.pending[pl.Seq]; ok {
			ps.timer.Cancel()
			delete(p.pending, pl.Seq)
		}
	default:
		// A sender bypassed the layer; hand the raw message up unchanged.
		if h := l.upper[p.id]; h != nil {
			h.Deliver(m)
		}
	}
}

// Crash discards node id's volatile endpoint state: unacked sends die with
// the node and its duplicate-suppression table is lost (see the package
// comment for the recovery consequences). The send counter survives.
func (l *Layer) Crash(id runtime.NodeID) {
	p, ok := l.ports[id]
	if !ok {
		return
	}
	for _, ps := range p.pending {
		ps.timer.Cancel()
	}
	p.reset()
	p.journal = nil
}

// Stats returns a copy of the recovery counters.
func (l *Layer) Stats() Stats { return l.stats }
