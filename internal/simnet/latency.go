package simnet

import (
	"math"
	"time"
)

// LatencyModel draws a one-way delivery delay for a message. Models may use
// the network's seeded random source and the topology's costs; they must not
// consult any other source of randomness, to preserve determinism.
type LatencyModel interface {
	Sample(n *Network, msg Message) time.Duration
}

// constantLatency delivers every message after a fixed delay.
type constantLatency time.Duration

// Constant returns a model with a fixed one-way delay.
func Constant(d time.Duration) LatencyModel { return constantLatency(d) }

func (c constantLatency) Sample(*Network, Message) time.Duration { return time.Duration(c) }

// uniformLatency draws delays uniformly from [Min, Max].
type uniformLatency struct{ min, max time.Duration }

// Uniform returns a model drawing delays uniformly from [min, max].
func Uniform(min, max time.Duration) LatencyModel {
	if max < min {
		min, max = max, min
	}
	return uniformLatency{min, max}
}

func (u uniformLatency) Sample(n *Network, _ Message) time.Duration {
	if u.max == u.min {
		return u.min
	}
	return u.min + time.Duration(n.Sim().Rand().Int63n(int64(u.max-u.min)))
}

// expLatency draws base + Exp(mean) jitter, truncated at base+10*mean so a
// single unlucky draw cannot stall a simulation.
type expLatency struct {
	base time.Duration
	mean time.Duration
}

// Exponential returns a model with a fixed base delay plus exponentially
// distributed jitter with the given mean — the paper's characterization of
// Internet paths ("long, variable communication latency").
func Exponential(base, jitterMean time.Duration) LatencyModel {
	return expLatency{base, jitterMean}
}

func (e expLatency) Sample(n *Network, _ Message) time.Duration {
	if e.mean <= 0 {
		return e.base
	}
	j := n.Sim().Rand().ExpFloat64() * float64(e.mean)
	if max := 10 * float64(e.mean); j > max {
		j = max
	}
	return e.base + time.Duration(j)
}

// costLatency maps topology cost to latency: delay = PerCost*cost + jitter.
type costLatency struct {
	perCost time.Duration
	jitter  LatencyModel
}

// CostProportional returns a model where the delay between two nodes is
// perCost multiplied by their topology cost, plus an optional jitter model.
// With a RandomGeo topology this yields the heterogeneous wide-area delays
// the paper argues MARP is designed for.
func CostProportional(perCost time.Duration, jitter LatencyModel) LatencyModel {
	return costLatency{perCost, jitter}
}

func (c costLatency) Sample(n *Network, msg Message) time.Duration {
	cost := n.Cost(msg.From, msg.To)
	if math.IsInf(cost, 1) {
		cost = 1
	}
	d := time.Duration(float64(c.perCost) * cost)
	if c.jitter != nil {
		d += c.jitter.Sample(n, msg)
	}
	return d
}

// LAN returns the latency preset for the paper's prototype environment: a
// local network of workstations with sub-millisecond to few-millisecond
// one-way delays.
func LAN() LatencyModel { return Exponential(500*time.Microsecond, 300*time.Microsecond) }

// WAN returns the latency preset for the Internet environment the paper
// targets: tens of milliseconds base delay with heavy jitter.
func WAN() LatencyModel { return Exponential(40*time.Millisecond, 15*time.Millisecond) }

// Prototype returns the latency preset calibrated to the paper's prototype:
// Java-based agent migration between SUN workstations on a LAN cost several
// milliseconds per hop (serialization plus transfer), which is what puts the
// paper's Figure 4 crossover near a 45 ms inter-arrival time.
func Prototype() LatencyModel { return Exponential(3*time.Millisecond, 1500*time.Microsecond) }
