package simnet

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology describes the relative travel costs between nodes. Costs are
// dimensionless; latency models map them to time. The paper assumes every
// server knows the cost of transferring a mobile agent to every other server
// (its routing table); Topology is the ground truth those tables reflect.
type Topology struct {
	n    int
	cost [][]float64
}

// NewTopology builds a topology from an explicit symmetric cost matrix.
// cost[i][j] is the cost between node i+1 and node j+1.
func NewTopology(cost [][]float64) *Topology {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			panic(fmt.Sprintf("simnet: cost matrix row %d has %d entries, want %d", i, len(row), n))
		}
	}
	return &Topology{n: n, cost: cost}
}

// FullMesh returns a topology of n nodes where every pair has cost 1 —
// the LAN-of-workstations setting of the paper's prototype.
func FullMesh(n int) *Topology {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1
			}
		}
	}
	return &Topology{n: n, cost: cost}
}

// RandomGeo places n nodes uniformly at random on the unit square and uses
// Euclidean distances as costs — a stand-in for geographically dispersed
// Internet replicas with heterogeneous inter-site costs.
func RandomGeo(n int, rng *rand.Rand) *Topology {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			cost[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return &Topology{n: n, cost: cost}
}

// Ring returns a topology where cost equals hop distance around a ring —
// useful for exercising strongly non-uniform itineraries.
func Ring(n int) *Topology {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			cost[i][j] = float64(d)
		}
	}
	return &Topology{n: n, cost: cost}
}

// Len returns the number of nodes in the topology.
func (t *Topology) Len() int { return t.n }

// Cost returns the travel cost between two node IDs (1-based). Unknown IDs
// cost +Inf, which keeps them last in any cost-ordered itinerary.
func (t *Topology) Cost(from, to NodeID) float64 {
	i, j := int(from)-1, int(to)-1
	if i < 0 || j < 0 || i >= t.n || j >= t.n {
		return math.Inf(1)
	}
	return t.cost[i][j]
}

// NodeIDs returns the node IDs 1..n of the topology.
func (t *Topology) NodeIDs() []NodeID {
	ids := make([]NodeID, t.n)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	return ids
}
