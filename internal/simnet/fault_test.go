package simnet

import (
	"testing"
	"time"

	"repro/internal/des"
)

// faultPair builds a 2-node network with a fault model attached.
func faultPair(t *testing.T, f *FaultModel) (*des.Simulator, *Network, *rec) {
	t.Helper()
	sim, net, _, b := pair(t, Constant(time.Millisecond))
	net.SetFaults(f)
	return sim, net, b
}

func TestFaultLossDeterministicAndCounted(t *testing.T) {
	const n = 1000
	run := func() (Stats, int) {
		sim, net, b := faultPair(t, NewFaultModel(42, 0.3, 0))
		for i := 0; i < n; i++ {
			net.Send(Message{From: 1, To: 2, Payload: i, Size: 1})
		}
		sim.Run()
		return net.Stats(), len(b.msgs)
	}
	s1, got1 := run()
	s2, got2 := run()
	if s1.MessagesLost != s2.MessagesLost || got1 != got2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, got1, s2, got2)
	}
	if s1.MessagesLost == 0 || s1.MessagesLost == n {
		t.Fatalf("loss=0.3 over %d sends lost %d messages", n, s1.MessagesLost)
	}
	if s1.MessagesDropped != 0 {
		t.Fatalf("fault losses counted as drops: %+v", s1)
	}
	if got1 != n-s1.MessagesLost {
		t.Fatalf("delivered %d, want %d - %d lost", got1, n, s1.MessagesLost)
	}
}

func TestFaultDuplicationDeliversTwice(t *testing.T) {
	const n = 500
	sim, net, b := faultPair(t, NewFaultModel(7, 0, 0.5))
	for i := 0; i < n; i++ {
		net.Send(Message{From: 1, To: 2, Payload: i, Size: 1})
	}
	sim.Run()
	s := net.Stats()
	if s.MessagesDuplicated == 0 || s.MessagesLost != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(b.msgs) != n+s.MessagesDuplicated {
		t.Fatalf("delivered %d, want %d originals + %d duplicates", len(b.msgs), n, s.MessagesDuplicated)
	}
}

func TestFaultLossyWindow(t *testing.T) {
	f := NewFaultModel(3, 0, 0)
	if err := f.AddWindow(LossyWindow{From: 10 * time.Millisecond, To: 20 * time.Millisecond, Loss: MaxLoss}); err != nil {
		t.Fatal(err)
	}
	sim, net, b := faultPair(t, f)
	send := func(at time.Duration, tag string) {
		sim.At(des.Time(at), func() {
			net.Send(Message{From: 1, To: 2, Payload: tag, Size: 1})
		})
	}
	// Outside the window nothing is lost; inside, loss is MaxLoss.
	for i := 0; i < 50; i++ {
		send(time.Duration(i)*100*time.Microsecond, "before")                     // [0ms, 5ms)
		send(10*time.Millisecond+time.Duration(i)*100*time.Microsecond, "during") // [10ms, 15ms)
		send(30*time.Millisecond+time.Duration(i)*100*time.Microsecond, "after")  // [30ms, 35ms)
	}
	sim.Run()
	counts := map[string]int{}
	for _, m := range b.msgs {
		counts[m.Payload.(string)]++
	}
	if counts["before"] != 50 || counts["after"] != 50 {
		t.Fatalf("lost messages outside the window: %v", counts)
	}
	if counts["during"] == 50 {
		t.Fatalf("window had no effect: %v", counts)
	}
}

func TestFaultLinkLossAndExtraLoss(t *testing.T) {
	f := NewFaultModel(9, 0, 0)
	f.SetLinkLoss(1, 2, MaxLoss)
	sim, net, b := faultPair(t, f)
	a := &rec{}
	net.Attach(1, a)
	for i := 0; i < 100; i++ {
		net.Send(Message{From: 1, To: 2, Payload: i, Size: 1}) // lossy direction
		net.Send(Message{From: 2, To: 1, Payload: i, Size: 1}) // clean direction
	}
	sim.Run()
	if len(a.msgs) != 100 {
		t.Fatalf("clean reverse link lost messages: got %d", len(a.msgs))
	}
	if len(b.msgs) == 100 {
		t.Fatal("per-link override had no effect")
	}

	// Dynamic extra loss applies network-wide and clears with zero.
	f2 := NewFaultModel(9, 0, 0)
	f2.SetExtraLoss(MaxLoss)
	sim2, net2, b2 := faultPair(t, f2)
	for i := 0; i < 100; i++ {
		net2.Send(Message{From: 1, To: 2, Payload: i, Size: 1})
	}
	sim2.Run()
	lostUnder := net2.Stats().MessagesLost
	if lostUnder == 0 {
		t.Fatal("SetExtraLoss had no effect")
	}
	f2.SetExtraLoss(0)
	for i := 0; i < 50; i++ {
		net2.Send(Message{From: 1, To: 2, Payload: i, Size: 1})
	}
	sim2.Run()
	if len(b2.msgs) != (100-lostUnder)+50 {
		t.Fatalf("clearing extra loss still lost messages: %d delivered", len(b2.msgs))
	}
}

func TestFaultProbabilityClamping(t *testing.T) {
	f := NewFaultModel(1, 2.0, -1)
	if f.loss != MaxLoss || f.dup != 0 {
		t.Fatalf("loss=%v dup=%v after clamping", f.loss, f.dup)
	}
	if err := f.AddWindow(LossyWindow{From: 2, To: 1}); err == nil {
		t.Fatal("inverted window accepted")
	}
}
