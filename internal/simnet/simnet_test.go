package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
)

type rec struct {
	msgs []Message
}

func (r *rec) Deliver(m Message) { r.msgs = append(r.msgs, m) }

func pair(t *testing.T, lat LatencyModel) (*des.Simulator, *Network, *rec, *rec) {
	t.Helper()
	sim := des.New(11)
	net := New(sim, FullMesh(2), lat)
	a, b := &rec{}, &rec{}
	net.Attach(1, a)
	net.Attach(2, b)
	return sim, net, a, b
}

func TestDeliverBasic(t *testing.T) {
	sim, net, _, b := pair(t, Constant(5*time.Millisecond))
	net.Send(Message{From: 1, To: 2, Payload: "hi", Size: 10})
	sim.Run()
	if len(b.msgs) != 1 || b.msgs[0].Payload != "hi" {
		t.Fatalf("b.msgs = %+v", b.msgs)
	}
	if sim.Now().Duration() != 5*time.Millisecond {
		t.Fatalf("delivery time %v, want 5ms", sim.Now())
	}
}

func TestStatsAccounting(t *testing.T) {
	sim, net, _, _ := pair(t, Constant(time.Millisecond))
	net.Send(Message{From: 1, To: 2, Payload: kinded("lock"), Size: 100})
	net.Send(Message{From: 2, To: 1, Payload: kinded("ack"), Size: 20})
	net.Send(Message{From: 1, To: 2, Payload: kinded("lock"), Size: 100})
	sim.Run()
	s := net.Stats()
	if s.MessagesSent != 3 || s.MessagesDelivered != 3 || s.BytesSent != 220 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ByKind["lock"] != 2 || s.ByKind["ack"] != 1 {
		t.Fatalf("by kind = %v", s.ByKind)
	}
	net.ResetStats()
	if net.Stats().MessagesSent != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

type kinded string

func (k kinded) Kind() string { return string(k) }

func TestDownNodeDropsMessages(t *testing.T) {
	sim, net, _, b := pair(t, Constant(time.Millisecond))
	net.SetDown(2, true)
	net.Send(Message{From: 1, To: 2, Payload: 1})
	sim.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message delivered to down node")
	}
	if net.Stats().MessagesDropped != 1 {
		t.Fatalf("dropped = %d, want 1", net.Stats().MessagesDropped)
	}
	net.SetDown(2, false)
	net.Send(Message{From: 1, To: 2, Payload: 2})
	sim.Run()
	if len(b.msgs) != 1 {
		t.Fatal("message not delivered after recovery")
	}
}

func TestDownSenderDrops(t *testing.T) {
	sim, net, _, b := pair(t, Constant(time.Millisecond))
	net.SetDown(1, true)
	net.Send(Message{From: 1, To: 2, Payload: 1})
	sim.Run()
	if len(b.msgs) != 0 {
		t.Fatal("down sender's message delivered")
	}
}

func TestCrashWhileInFlight(t *testing.T) {
	sim, net, _, b := pair(t, Constant(10*time.Millisecond))
	net.Send(Message{From: 1, To: 2, Payload: 1})
	sim.After(time.Millisecond, func() { net.SetDown(2, true) })
	sim.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message delivered to node that crashed while it was in flight")
	}
}

func TestPartition(t *testing.T) {
	sim := des.New(1)
	net := New(sim, FullMesh(4), Constant(time.Millisecond))
	recs := make([]*rec, 5)
	for i := 1; i <= 4; i++ {
		recs[i] = &rec{}
		net.Attach(NodeID(i), recs[i])
	}
	net.Partition([]NodeID{1, 2}, []NodeID{3, 4})
	net.Send(Message{From: 1, To: 2, Payload: "same-side"})
	net.Send(Message{From: 1, To: 3, Payload: "cross"})
	sim.Run()
	if len(recs[2].msgs) != 1 {
		t.Fatal("same-partition message lost")
	}
	if len(recs[3].msgs) != 0 {
		t.Fatal("cross-partition message delivered")
	}
	net.Heal()
	net.Send(Message{From: 1, To: 3, Payload: "after-heal"})
	sim.Run()
	if len(recs[3].msgs) != 1 {
		t.Fatal("message lost after heal")
	}
	if !net.Reachable(1, 3) {
		t.Fatal("Reachable false after heal")
	}
}

func TestUnattachedDestinationDropped(t *testing.T) {
	sim := des.New(1)
	net := New(sim, FullMesh(3), Constant(time.Millisecond))
	net.Attach(1, &rec{})
	net.Send(Message{From: 1, To: 3, Payload: 1})
	sim.Run()
	if net.Stats().MessagesDropped != 1 {
		t.Fatal("message to unattached node not dropped")
	}
}

func TestSendUnsetEndpointsPanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, FullMesh(2), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Send(Message{From: 1, To: None})
}

func TestNodesSorted(t *testing.T) {
	sim := des.New(1)
	net := New(sim, FullMesh(5), nil)
	for _, id := range []NodeID{3, 1, 5, 2, 4} {
		net.Attach(id, &rec{})
	}
	got := net.Nodes()
	for i, want := range []NodeID{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("Nodes() = %v", got)
		}
	}
}

func TestUniformLatencyInRange(t *testing.T) {
	sim := des.New(3)
	net := New(sim, FullMesh(2), Uniform(2*time.Millisecond, 8*time.Millisecond))
	var times []time.Duration
	net.Attach(1, &rec{})
	net.Attach(2, HandlerFunc(func(Message) { times = append(times, sim.Now().Duration()) }))
	for i := 0; i < 50; i++ {
		net.Send(Message{From: 1, To: 2, Payload: i})
	}
	sim.Run()
	if len(times) != 50 {
		t.Fatalf("delivered %d", len(times))
	}
	for _, d := range times {
		if d < 2*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("latency %v out of range", d)
		}
	}
}

func TestExponentialLatencyPositiveAndBounded(t *testing.T) {
	sim := des.New(3)
	net := New(sim, FullMesh(2), Exponential(10*time.Millisecond, 5*time.Millisecond))
	model := Exponential(10*time.Millisecond, 5*time.Millisecond)
	for i := 0; i < 200; i++ {
		d := model.Sample(net, Message{From: 1, To: 2})
		if d < 10*time.Millisecond {
			t.Fatalf("latency %v below base", d)
		}
		if d > 10*time.Millisecond+50*time.Millisecond {
			t.Fatalf("latency %v above truncation bound", d)
		}
	}
}

func TestCostProportionalLatency(t *testing.T) {
	sim := des.New(1)
	topo := NewTopology([][]float64{{0, 2}, {2, 0}})
	net := New(sim, topo, nil)
	model := CostProportional(10*time.Millisecond, nil)
	d := model.Sample(net, Message{From: 1, To: 2})
	if d != 20*time.Millisecond {
		t.Fatalf("cost latency = %v, want 20ms", d)
	}
}

func TestTopologyCost(t *testing.T) {
	topo := Ring(5)
	if topo.Cost(1, 2) != 1 || topo.Cost(1, 4) != 2 || topo.Cost(1, 1) != 0 {
		t.Fatalf("ring costs wrong: %v %v %v", topo.Cost(1, 2), topo.Cost(1, 4), topo.Cost(1, 1))
	}
	if c := topo.Cost(1, 99); c == 0 {
		t.Fatal("out-of-range cost should be +Inf")
	}
	ids := topo.NodeIDs()
	if len(ids) != 5 || ids[0] != 1 || ids[4] != 5 {
		t.Fatalf("NodeIDs = %v", ids)
	}
}

func TestRandomGeoSymmetric(t *testing.T) {
	topo := RandomGeo(6, rand.New(rand.NewSource(9)))
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 6; j++ {
			a, b := topo.Cost(NodeID(i), NodeID(j)), topo.Cost(NodeID(j), NodeID(i))
			if a != b {
				t.Fatalf("asymmetric cost (%d,%d): %v vs %v", i, j, a, b)
			}
			if i == j && a != 0 {
				t.Fatalf("self cost (%d) = %v", i, a)
			}
		}
	}
}

func TestBadCostMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopology([][]float64{{0, 1}, {1}})
}

// Property: with a constant latency model, message delivery preserves
// per-(sender,receiver) FIFO order.
func TestPropertyFIFOPerChannel(t *testing.T) {
	f := func(payloads []uint8) bool {
		sim := des.New(5)
		net := New(sim, FullMesh(2), Constant(3*time.Millisecond))
		var got []uint8
		net.Attach(1, &rec{})
		net.Attach(2, HandlerFunc(func(m Message) { got = append(got, m.Payload.(uint8)) }))
		for _, p := range payloads {
			net.Send(Message{From: 1, To: 2, Payload: p})
		}
		sim.Run()
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			if got[i] != payloads[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetsProducePlausibleDelays(t *testing.T) {
	sim := des.New(5)
	net := New(sim, FullMesh(2), nil)
	msg := Message{From: 1, To: 2}
	for _, tc := range []struct {
		name     string
		model    LatencyModel
		min, max time.Duration
	}{
		{"lan", LAN(), 500 * time.Microsecond, 4 * time.Millisecond},
		{"prototype", Prototype(), 3 * time.Millisecond, 20 * time.Millisecond},
		{"wan", WAN(), 40 * time.Millisecond, 200 * time.Millisecond},
	} {
		for i := 0; i < 100; i++ {
			d := tc.model.Sample(net, msg)
			if d < tc.min || d > tc.max {
				t.Fatalf("%s latency %v outside [%v, %v]", tc.name, d, tc.min, tc.max)
			}
		}
	}
}

func TestUniformDegenerateAndSwapped(t *testing.T) {
	sim := des.New(5)
	net := New(sim, FullMesh(2), nil)
	msg := Message{From: 1, To: 2}
	same := Uniform(3*time.Millisecond, 3*time.Millisecond)
	if d := same.Sample(net, msg); d != 3*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
	swapped := Uniform(8*time.Millisecond, 2*time.Millisecond)
	for i := 0; i < 50; i++ {
		d := swapped.Sample(net, msg)
		if d < 2*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("swapped-bounds uniform = %v", d)
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	sim := des.New(1)
	topo := Ring(4)
	net := New(sim, topo, nil)
	if net.Topology() != topo {
		t.Fatal("Topology accessor")
	}
	if net.Sim() != sim {
		t.Fatal("Sim accessor")
	}
	if topo.Len() != 4 {
		t.Fatalf("Len = %d", topo.Len())
	}
	if net.Down(1) {
		t.Fatal("fresh node down")
	}
	net.SetDown(1, true)
	if !net.Down(1) {
		t.Fatal("SetDown ignored")
	}
	if net.Cost(2, 4) != topo.Cost(2, 4) {
		t.Fatal("Cost delegation")
	}
}

func TestAttachZeroPanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, FullMesh(2), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Attach(None, &rec{})
}

func BenchmarkSendDeliver(b *testing.B) {
	sim := des.New(1)
	net := New(sim, FullMesh(2), Constant(time.Millisecond))
	delivered := 0
	net.Attach(1, &rec{})
	net.Attach(2, HandlerFunc(func(Message) { delivered++ }))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(Message{From: 1, To: 2, Payload: i, Size: 64})
		sim.Step()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
