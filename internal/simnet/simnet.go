// Package simnet provides a simulated wide-area network on top of the
// discrete-event simulator in internal/des.
//
// The network model follows the paper's assumptions (§2): logical channels
// are asynchronous and reliable with unpredictable but finite delays; nodes
// fail according to the fail-stop model. A message sent to a node that is
// down (or unreachable due to a partition) is silently dropped — exactly the
// behaviour a fail-stop process presents to its peers — and senders detect
// such failures by timeout, as the protocol layer prescribes.
//
// The reliable-channel assumption can be weakened per run by attaching a
// FaultModel (SetFaults): messages between live, connected nodes may then be
// lost or duplicated with configured probabilities, including time-windowed
// loss bursts. Protocol layers that must survive such links run over the
// ack/retransmit shim in internal/reliable rather than the raw Network; the
// Fabric interface abstracts over the two.
//
// Every delivery is scheduled on the shared des.Simulator, so an entire
// multi-node execution remains deterministic.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/runtime"
)

// The vocabulary types of the fabric — node identity, messages, handlers,
// traffic counters — are the engine-neutral definitions in internal/runtime.
// The aliases keep simulation-side call sites (tests, harness, topology
// code) reading in this package's terms while protocol code sees only the
// runtime names.
type (
	// NodeID identifies a simulated host (1..N; zero = "no node").
	NodeID = runtime.NodeID
	// Message is a single datagram on the simulated network.
	Message = runtime.Message
	// Kinder is implemented by payloads wanting per-kind accounting.
	Kinder = runtime.Kinder
	// Handler receives messages delivered to a node.
	Handler = runtime.Handler
	// HandlerFunc adapts a function to the Handler interface.
	HandlerFunc = runtime.HandlerFunc
	// Stats aggregates network traffic counters.
	Stats = runtime.NetStats
	// Fabric is the message-passing surface protocol layers run on:
	// either a *Network directly (the paper's reliable channels) or a
	// reliability shim wrapping one (internal/reliable).
	Fabric = runtime.Fabric
)

// None is the zero NodeID, meaning "no node".
const None = runtime.None

// Network is a simulated message-passing network.
type Network struct {
	sim     *des.Simulator
	topo    *Topology
	latency LatencyModel
	nodes   map[NodeID]Handler
	down    map[NodeID]bool
	group   map[NodeID]int // partition group; all zero = fully connected
	faults  *FaultModel
	stats   Stats
}

// New creates a network over topo using the given latency model. All
// deliveries are scheduled on sim.
func New(sim *des.Simulator, topo *Topology, latency LatencyModel) *Network {
	if topo == nil {
		panic("simnet: nil topology")
	}
	if latency == nil {
		latency = Constant(1 * time.Millisecond)
	}
	return &Network{
		sim:     sim,
		topo:    topo,
		latency: latency,
		nodes:   make(map[NodeID]Handler),
		down:    make(map[NodeID]bool),
		group:   make(map[NodeID]int),
	}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *des.Simulator { return n.sim }

// Topology returns the network's topology (cost matrix).
func (n *Network) Topology() *Topology { return n.topo }

// Attach registers h as the handler for node id. Attaching twice replaces
// the handler (used by recovery: a restarted server re-attaches itself).
func (n *Network) Attach(id NodeID, h Handler) {
	if id == None {
		panic("simnet: cannot attach node 0")
	}
	n.nodes[id] = h
}

// Nodes returns the attached node IDs in ascending order.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// SetDown marks a node as crashed (fail-stop) or recovered. Messages to and
// from a down node are dropped. In-flight messages already scheduled for
// delivery are dropped at delivery time if the destination is still down.
func (n *Network) SetDown(id NodeID, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Down reports whether a node is currently crashed.
func (n *Network) Down(id NodeID) bool { return n.down[id] }

// Partition splits the network into groups; nodes in different groups cannot
// exchange messages. Nodes not mentioned stay in group 0.
func (n *Network) Partition(groups ...[]NodeID) {
	n.group = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.group = make(map[NodeID]int) }

// SetFaults attaches (or, with nil, detaches) a fault model. With no model
// attached the network is the paper's reliable channel: a message between
// two live, connected nodes is never lost.
func (n *Network) SetFaults(f *FaultModel) { n.faults = f }

// Faults returns the attached fault model, if any.
func (n *Network) Faults() *FaultModel { return n.faults }

// Reachable reports whether a message from one node can currently reach the
// other (both up, same partition group).
func (n *Network) Reachable(from, to NodeID) bool {
	if n.down[from] || n.down[to] {
		return false
	}
	return n.group[from] == n.group[to]
}

// Cost returns the travel cost between two nodes per the topology. The cost
// drives the agents' Un-visited Servers List ordering (paper §3.2: each
// server maintains a routing table with the cost of transferring an agent to
// every other server).
func (n *Network) Cost(from, to NodeID) float64 { return n.topo.Cost(from, to) }

// Send transmits msg. Delivery is scheduled after a latency drawn from the
// network's latency model. If the destination is unreachable now, or is down
// when the message would arrive, the message is dropped.
func (n *Network) Send(msg Message) {
	if msg.From == None || msg.To == None {
		panic(fmt.Sprintf("simnet: message with unset endpoints %+v", msg))
	}
	n.stats.MessagesSent++
	n.stats.BytesSent += msg.Size
	if k, ok := msg.Payload.(Kinder); ok {
		if n.stats.ByKind == nil {
			n.stats.ByKind = make(map[string]int)
		}
		n.stats.ByKind[k.Kind()]++
	}
	if !n.Reachable(msg.From, msg.To) {
		n.stats.MessagesDropped++
		return
	}
	if n.faults != nil {
		if n.faults.drop(time.Duration(n.sim.Now()), msg.From, msg.To) {
			n.stats.MessagesLost++
			return
		}
		if n.faults.duplicate() {
			n.stats.MessagesDuplicated++
			n.schedule(msg)
		}
	}
	n.schedule(msg)
}

// schedule queues one delivery of msg after a freshly drawn latency.
func (n *Network) schedule(msg Message) {
	d := n.latency.Sample(n, msg)
	if d < 0 {
		d = 0
	}
	n.sim.After(d, func() { n.deliver(msg) })
}

func (n *Network) deliver(msg Message) {
	// The message was in flight; re-check the destination at arrival time.
	if n.down[msg.To] || n.group[msg.From] != n.group[msg.To] {
		n.stats.MessagesDropped++
		return
	}
	h, ok := n.nodes[msg.To]
	if !ok {
		n.stats.MessagesDropped++
		return
	}
	n.stats.MessagesDelivered++
	h.Deliver(msg)
}

// NetStats implements the runtime.StatsSource capability.
func (n *Network) NetStats() runtime.NetStats { return n.Stats() }

// SetExtraLoss implements the runtime.LossController capability by routing
// to the attached fault model; without one the call is a no-op (the paper's
// reliable channels stay reliable).
func (n *Network) SetExtraLoss(p float64) {
	if n.faults != nil {
		n.faults.SetExtraLoss(p)
	}
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats {
	s := n.stats
	if n.stats.ByKind != nil {
		s.ByKind = make(map[string]int, len(n.stats.ByKind))
		for k, v := range n.stats.ByKind {
			s.ByKind[k] = v
		}
	}
	return s
}

// ResetStats zeroes the traffic counters (used between benchmark phases).
func (n *Network) ResetStats() { n.stats = Stats{} }
