package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// FaultModel injects transient message faults into a Network, weakening the
// paper's §2 assumption of reliable channels: a message between two live,
// connected nodes may now be lost or duplicated, and whole windows of
// virtual time may be extra lossy — the "frequent short transient failures"
// the paper attributes to the Internet. All fault decisions are drawn from
// the model's own seeded random source, so a faulty run is exactly as
// deterministic as a clean one, and a Network with no FaultModel attached
// draws no fault randomness at all (its executions are byte-identical to
// the pre-fault-model behaviour).
//
// Probabilities compose as follows: each transmission uses the largest of
// the base loss probability, the link's override, any covering lossy
// window, and the dynamic loss level (failure.Lossy events). The result is
// clamped to MaxLoss so a misconfigured window can never make a link
// certainly dead — timeouts, not infinite loss, model long outages.
type FaultModel struct {
	rng       *rand.Rand
	loss      float64 // base per-message loss probability
	dup       float64 // per-message duplication probability
	linkLoss  map[[2]NodeID]float64
	windows   []LossyWindow
	extraLoss float64 // dynamic network-wide loss (SetExtraLoss)
}

// MaxLoss caps any effective loss probability: above it, loss stops being
// "transient" and should be modelled as a crash or partition instead.
const MaxLoss = 0.95

// LossyWindow elevates the loss probability network-wide during a virtual
// time interval [From, To).
type LossyWindow struct {
	From, To time.Duration
	Loss     float64
}

// NewFaultModel returns a model with the given base loss and duplication
// probabilities, drawing every fault decision from a source seeded with
// seed. Probabilities outside [0, MaxLoss] are clamped.
func NewFaultModel(seed int64, loss, dup float64) *FaultModel {
	return &FaultModel{
		rng:  rand.New(rand.NewSource(seed)),
		loss: clampProb(loss),
		dup:  clampProb(dup),
	}
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > MaxLoss {
		return MaxLoss
	}
	return p
}

// SetLinkLoss overrides the loss probability for messages from one node to
// another (directed). It replaces the base probability for that link; lossy
// windows and the dynamic level still apply on top (largest wins).
func (f *FaultModel) SetLinkLoss(from, to NodeID, p float64) {
	if f.linkLoss == nil {
		f.linkLoss = make(map[[2]NodeID]float64)
	}
	f.linkLoss[[2]NodeID{from, to}] = clampProb(p)
}

// AddWindow schedules a lossy window. Windows may overlap; the largest
// applicable probability wins.
func (f *FaultModel) AddWindow(w LossyWindow) error {
	if w.To < w.From {
		return fmt.Errorf("simnet: lossy window ends %v before it starts %v", w.To, w.From)
	}
	w.Loss = clampProb(w.Loss)
	f.windows = append(f.windows, w)
	return nil
}

// SetExtraLoss sets the dynamic network-wide loss level — the hook
// failure.Lossy schedule events drive. Zero clears it.
func (f *FaultModel) SetExtraLoss(p float64) { f.extraLoss = clampProb(p) }

// lossAt resolves the effective loss probability for one transmission.
func (f *FaultModel) lossAt(now time.Duration, from, to NodeID) float64 {
	p := f.loss
	if lp, ok := f.linkLoss[[2]NodeID{from, to}]; ok {
		p = lp
	}
	for _, w := range f.windows {
		if now >= w.From && now < w.To && w.Loss > p {
			p = w.Loss
		}
	}
	if f.extraLoss > p {
		p = f.extraLoss
	}
	return p
}

// drop decides whether this transmission is lost. One uniform draw per
// call, unconditionally, so the random stream does not depend on the
// resolved probability.
func (f *FaultModel) drop(now time.Duration, from, to NodeID) bool {
	return f.rng.Float64() < f.lossAt(now, from, to)
}

// duplicate decides whether this transmission is delivered twice.
func (f *FaultModel) duplicate() bool {
	if f.dup <= 0 {
		return false
	}
	return f.rng.Float64() < f.dup
}
