package desengine

// The optimistic protocol's simulated assembly, mirroring New: same
// engine, same network, same fault hooks — a different protocol cluster on
// top. Keeping both assemblies here preserves the package's role as the
// single place where protocol meets simulation.

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/optimistic"
	"repro/internal/simnet"
)

// OptConfig assembles a simulated optimistic deployment.
type OptConfig struct {
	// Seed drives every random choice in the simulation.
	Seed int64
	// Topology supplies inter-server travel costs; defaults to a full
	// mesh with uniform costs.
	Topology *simnet.Topology
	// Latency is the network delay model; defaults to simnet.LAN().
	Latency simnet.LatencyModel
	// Faults, if non-nil, attaches a message fault model (loss grids,
	// chaos). Nil keeps reliable channels.
	Faults *simnet.FaultModel
	// Cluster carries the engine-neutral optimistic configuration.
	Cluster optimistic.Config
}

// OptCluster is an optimistic.Cluster plus the simulation machinery
// underneath it, for harness and test drivers.
type OptCluster struct {
	*optimistic.Cluster
	sim *des.Simulator
	net *simnet.Network
}

// NewOptimistic builds and wires a simulated optimistic cluster per cfg.
func NewOptimistic(cfg OptConfig) (*OptCluster, error) {
	n := cfg.Cluster.N
	if n < 1 {
		return nil, fmt.Errorf("optimistic: config needs N >= 1, got %d", n)
	}
	topo := cfg.Topology
	if topo == nil {
		topo = simnet.FullMesh(n)
	}
	if topo.Len() < n {
		return nil, fmt.Errorf("optimistic: topology has %d nodes, need %d", topo.Len(), n)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = simnet.LAN()
	}
	sim := des.New(cfg.Seed)
	net := simnet.New(sim, topo, lat)
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
	cl, err := optimistic.NewCluster(sim, net, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	return &OptCluster{Cluster: cl, sim: sim, net: net}, nil
}

// Sim returns the underlying simulator (simulation-side drivers only).
func (c *OptCluster) Sim() *des.Simulator { return c.sim }

// Network returns the simulated network (simulation-side drivers only).
func (c *OptCluster) Network() *simnet.Network { return c.net }
