// Package desengine assembles a simulated MARP deployment: the
// deterministic discrete-event engine (internal/des) plus the simulated
// network (internal/simnet), wired under an engine-neutral core.Cluster.
//
// This is the only package that pairs the protocol with the simulation
// engine. Everything the simulation owns — the seed, the topology, the
// latency model, the fault model — is configured here rather than on
// core.Config, so the protocol layers stay ignorant of how they are being
// executed. Tests, examples and the benchmark harness build clusters
// through this package; the live deployment builds the same core.Cluster
// through internal/runtime/live instead.
package desengine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/simnet"
)

// Config assembles a simulated deployment.
type Config struct {
	// Seed drives every random choice in the simulation.
	Seed int64
	// Topology supplies inter-server travel costs; defaults to a full
	// mesh with uniform costs (the paper's LAN prototype).
	Topology *simnet.Topology
	// Latency is the network delay model; defaults to simnet.LAN().
	Latency simnet.LatencyModel
	// Faults, if non-nil, attaches a message fault model to the network:
	// messages between live, connected nodes may then be lost or
	// duplicated (chaos experiment A6). Nil keeps the paper's §2 reliable
	// channels — and keeps executions byte-identical to the baseline,
	// because the fault model owns its random source.
	Faults *simnet.FaultModel
	// Cluster carries the engine-neutral protocol configuration.
	Cluster core.Config
}

// Cluster is a core.Cluster plus access to the concrete simulation
// machinery underneath it. Harness and test code uses Sim()/Network() to
// step virtual time and inject faults; protocol code never sees either.
type Cluster struct {
	*core.Cluster
	sim *des.Simulator
	net *simnet.Network
}

// New builds and wires a simulated cluster per cfg.
func New(cfg Config) (*Cluster, error) {
	n := cfg.Cluster.N
	if n < 1 {
		return nil, fmt.Errorf("core: config needs N >= 1, got %d", n)
	}
	topo := cfg.Topology
	if topo == nil {
		topo = simnet.FullMesh(n)
	}
	if topo.Len() < n {
		return nil, fmt.Errorf("core: topology has %d nodes, need %d", topo.Len(), n)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = simnet.LAN()
	}
	sim := des.New(cfg.Seed)
	net := simnet.New(sim, topo, lat)
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
	cl, err := core.NewCluster(sim, net, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	return &Cluster{Cluster: cl, sim: sim, net: net}, nil
}

// Sim returns the underlying simulator. Simulation-side drivers only:
// protocol code must reach time through the runtime seam.
func (c *Cluster) Sim() *des.Simulator { return c.sim }

// Network returns the simulated network. Simulation-side drivers only.
func (c *Cluster) Network() *simnet.Network { return c.net }
