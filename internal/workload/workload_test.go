package workload

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateBasics(t *testing.T) {
	spec := Spec{Servers: 5, RequestsPerServer: 20, MeanInterarrival: 10 * time.Millisecond, Seed: 1}
	evs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 100 {
		t.Fatalf("events = %d", len(evs))
	}
	perHome := make(map[int]int)
	for i, e := range evs {
		if i > 0 && evs[i-1].At > e.At {
			t.Fatal("events not sorted")
		}
		if e.Home < 1 || e.Home > 5 {
			t.Fatalf("home = %d", e.Home)
		}
		if e.Key != "k0" {
			t.Fatalf("single-key default violated: %q", e.Key)
		}
		if e.Read {
			t.Fatal("read generated with ReadFraction 0")
		}
		perHome[int(e.Home)]++
	}
	for h := 1; h <= 5; h++ {
		if perHome[h] != 20 {
			t.Fatalf("home %d got %d events", h, perHome[h])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Servers: 3, RequestsPerServer: 10, MeanInterarrival: 5 * time.Millisecond, Seed: 7}
	a, _ := Generate(spec)
	b, _ := Generate(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	spec.Seed = 8
	c, _ := Generate(spec)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateMeanInterarrival(t *testing.T) {
	spec := Spec{Servers: 1, RequestsPerServer: 5000, MeanInterarrival: 10 * time.Millisecond, Seed: 3}
	evs, _ := Generate(spec)
	span := Span(evs)
	mean := span / time.Duration(len(evs))
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Fatalf("empirical mean interarrival %v, want ~10ms", mean)
	}
}

func TestGenerateRateSkew(t *testing.T) {
	spec := Spec{Servers: 2, RequestsPerServer: 3000, MeanInterarrival: 10 * time.Millisecond, RateSkew: 1, Seed: 4}
	evs, _ := Generate(spec)
	var last [3]time.Duration
	for _, e := range evs {
		if e.At > last[e.Home] {
			last[e.Home] = e.At
		}
	}
	// Server 2 runs at 2x the rate of server 1, so its schedule spans
	// roughly half the time.
	ratio := float64(last[2]) / float64(last[1])
	if ratio < 0.4 || ratio > 0.65 {
		t.Fatalf("span ratio = %.2f, want ~0.5", ratio)
	}
}

func TestGenerateKeyDistributions(t *testing.T) {
	uni := Spec{Servers: 1, RequestsPerServer: 1000, MeanInterarrival: time.Millisecond, Keys: 10, Dist: UniformKeys, Seed: 5}
	evs, _ := Generate(uni)
	seen := make(map[string]int)
	for _, e := range evs {
		seen[e.Key]++
	}
	if len(seen) != 10 {
		t.Fatalf("uniform keys used %d of 10", len(seen))
	}
	zipf := Spec{Servers: 1, RequestsPerServer: 1000, MeanInterarrival: time.Millisecond, Keys: 10, Dist: ZipfKeys, Seed: 5}
	evs, _ = Generate(zipf)
	seen = make(map[string]int)
	for _, e := range evs {
		seen[e.Key]++
	}
	if seen["k0"] < 400 {
		t.Fatalf("zipf hot key k0 only %d of 1000", seen["k0"])
	}
}

func TestGenerateReadFraction(t *testing.T) {
	spec := Spec{Servers: 1, RequestsPerServer: 2000, MeanInterarrival: time.Millisecond, ReadFraction: 0.8, Seed: 6}
	evs, _ := Generate(spec)
	reads := 0
	for _, e := range evs {
		if e.Read {
			reads++
		}
	}
	frac := float64(reads) / float64(len(evs))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction = %.2f, want ~0.8", frac)
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Servers: 0, RequestsPerServer: 1, MeanInterarrival: time.Millisecond},
		{Servers: 1, RequestsPerServer: -1, MeanInterarrival: time.Millisecond},
		{Servers: 1, RequestsPerServer: 1, MeanInterarrival: 0},
		{Servers: 1, RequestsPerServer: 1, MeanInterarrival: time.Millisecond, ReadFraction: 1},
		{Servers: 1, RequestsPerServer: 1, MeanInterarrival: time.Millisecond, RateSkew: -1},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestSpanEmpty(t *testing.T) {
	if Span(nil) != 0 {
		t.Fatal("Span(nil) != 0")
	}
}

func TestEventValuesUnique(t *testing.T) {
	spec := Spec{Servers: 3, RequestsPerServer: 50, MeanInterarrival: time.Millisecond, Seed: 9}
	evs, _ := Generate(spec)
	seen := make(map[string]bool)
	for _, e := range evs {
		if !strings.HasPrefix(e.Value, "s") {
			t.Fatalf("value format: %q", e.Value)
		}
		if seen[e.Value] {
			t.Fatalf("duplicate value %q", e.Value)
		}
		seen[e.Value] = true
	}
}

// Property: schedules are sorted and sized Servers*RequestsPerServer for any
// valid parameters.
func TestPropertyGenerateWellFormed(t *testing.T) {
	f := func(seed int64, srvRaw, reqRaw uint8) bool {
		spec := Spec{
			Servers:           int(srvRaw%8) + 1,
			RequestsPerServer: int(reqRaw % 30),
			MeanInterarrival:  time.Millisecond,
			Seed:              seed,
		}
		evs, err := Generate(spec)
		if err != nil {
			return false
		}
		if len(evs) != spec.Servers*spec.RequestsPerServer {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i-1].At > evs[i].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
