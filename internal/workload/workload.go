// Package workload generates the request schedules used by the paper's
// experiments: "an exponential random number generator was used to generate
// requests; for each server, requests were generated at different rates"
// (§4). A Spec describes the shape; Generate produces the deterministic
// event list a harness feeds into a cluster.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/simnet"
)

// KeyDist selects how keys are drawn.
type KeyDist int

// Supported key distributions.
const (
	// UniformKeys draws keys uniformly from the key universe.
	UniformKeys KeyDist = iota
	// ZipfKeys draws keys from a Zipf(1.2) distribution — a hot-spot
	// workload where most updates touch few keys.
	ZipfKeys
	// SingleKey sends every update to one key — the maximal-contention
	// workload of the paper's experiments (all agents compete for the
	// same lock order).
	SingleKey
)

// Spec describes a workload.
type Spec struct {
	// Servers is the number of replicated servers (homes 1..Servers).
	Servers int
	// RequestsPerServer is how many update requests each server's
	// clients issue.
	RequestsPerServer int
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// of requests at each server (the paper's x-axis).
	MeanInterarrival time.Duration
	// RateSkew, if nonzero, scales server i's arrival rate by
	// 1 + RateSkew*(i-1)/(Servers-1), reproducing the paper's "requests
	// were generated at different rates" per server.
	RateSkew float64
	// Keys is the size of the key universe (default 1).
	Keys int
	// Dist selects the key distribution (default SingleKey when Keys<=1,
	// else UniformKeys unless set).
	Dist KeyDist
	// ReadFraction in [0,1) makes that fraction of events reads instead
	// of updates. Reads are served locally in all protocols under test.
	ReadFraction float64
	// Seed drives the generator.
	Seed int64
}

// Event is one client request: a read or an update arriving at a home
// server at a virtual time offset.
type Event struct {
	At    time.Duration
	Home  simnet.NodeID
	Key   string
	Value string
	Read  bool
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Servers < 1 {
		return fmt.Errorf("workload: Servers = %d", s.Servers)
	}
	if s.RequestsPerServer < 0 {
		return fmt.Errorf("workload: RequestsPerServer = %d", s.RequestsPerServer)
	}
	if s.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: MeanInterarrival = %v", s.MeanInterarrival)
	}
	if s.ReadFraction < 0 || s.ReadFraction >= 1 {
		return fmt.Errorf("workload: ReadFraction = %v", s.ReadFraction)
	}
	if s.RateSkew < 0 {
		return fmt.Errorf("workload: RateSkew = %v", s.RateSkew)
	}
	return nil
}

// Generate produces the deterministic event schedule for the spec, sorted
// by arrival time.
func Generate(spec Spec) ([]Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	keys := spec.Keys
	if keys < 1 {
		keys = 1
	}
	dist := spec.Dist
	if keys == 1 {
		dist = SingleKey
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var zipf *rand.Zipf
	if dist == ZipfKeys {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	}

	var events []Event
	for srv := 1; srv <= spec.Servers; srv++ {
		mean := float64(spec.MeanInterarrival)
		if spec.RateSkew > 0 && spec.Servers > 1 {
			rate := 1 + spec.RateSkew*float64(srv-1)/float64(spec.Servers-1)
			mean /= rate
		}
		t := time.Duration(0)
		for i := 0; i < spec.RequestsPerServer; i++ {
			t += time.Duration(rng.ExpFloat64() * mean)
			var key string
			switch dist {
			case SingleKey:
				key = "k0"
			case ZipfKeys:
				key = fmt.Sprintf("k%d", zipf.Uint64())
			default:
				key = fmt.Sprintf("k%d", rng.Intn(keys))
			}
			ev := Event{
				At:    t,
				Home:  simnet.NodeID(srv),
				Key:   key,
				Value: fmt.Sprintf("s%d-r%d", srv, i),
			}
			if spec.ReadFraction > 0 && rng.Float64() < spec.ReadFraction {
				ev.Read = true
			}
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// Span returns the time of the last event (0 for an empty schedule).
func Span(events []Event) time.Duration {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].At
}
