package quorum

import (
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func ids(ns ...int) []simnet.NodeID {
	out := make([]simnet.NodeID, len(ns))
	for i, n := range ns {
		out[i] = simnet.NodeID(n)
	}
	return out
}

func TestEqualAssignment(t *testing.T) {
	a := Equal(ids(1, 2, 3, 4, 5))
	if a.Total() != 5 || a.Majority() != 3 {
		t.Fatalf("total=%d majority=%d", a.Total(), a.Majority())
	}
	if a.Votes(3) != 1 || a.Votes(9) != 0 {
		t.Fatal("votes wrong")
	}
}

func TestMajorityEvenCount(t *testing.T) {
	a := Equal(ids(1, 2, 3, 4))
	if a.Majority() != 3 {
		t.Fatalf("majority of 4 = %d, want 3", a.Majority())
	}
}

func TestWeighted(t *testing.T) {
	a := Weighted(map[simnet.NodeID]int{1: 3, 2: 1, 3: 1})
	if a.Total() != 5 || a.Majority() != 3 {
		t.Fatalf("total=%d majority=%d", a.Total(), a.Majority())
	}
	if !a.IsMajority(ids(1)) {
		t.Fatal("node with 3/5 votes should be a majority alone")
	}
	if a.IsMajority(ids(2, 3)) {
		t.Fatal("2/5 votes is not a majority")
	}
}

func TestWeightedRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Weighted(map[simnet.NodeID]int{1: 0})
}

func TestCountDeduplicates(t *testing.T) {
	a := Equal(ids(1, 2, 3))
	if a.Count(ids(1, 1, 1)) != 1 {
		t.Fatal("duplicates double counted")
	}
}

func TestNodesSorted(t *testing.T) {
	a := Equal(ids(5, 2, 9, 1))
	got := a.Nodes()
	want := ids(1, 2, 5, 9)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v", got)
		}
	}
}

func TestMajoritySpec(t *testing.T) {
	s := MajoritySpec(ids(1, 2, 3, 4, 5))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.R != 1 || s.W != 3 {
		t.Fatalf("R=%d W=%d", s.R, s.W)
	}
	if s.OneCopySerializable() {
		t.Fatal("read-one/write-majority must not claim one-copy serializable reads")
	}
	if !s.HasWriteQuorum(ids(1, 3, 5)) || s.HasWriteQuorum(ids(1, 2)) {
		t.Fatal("write quorum check wrong")
	}
	if !s.HasReadQuorum(ids(2)) {
		t.Fatal("read quorum of one should pass")
	}
}

func TestStrictSpec(t *testing.T) {
	s := StrictSpec(ids(1, 2, 3, 4, 5))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.OneCopySerializable() {
		t.Fatal("strict spec should be one-copy serializable")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	a := Equal(ids(1, 2, 3, 4))
	cases := []Spec{
		{Assignment: a, R: 1, W: 2},        // 2W <= total
		{Assignment: a, R: 0, W: 3},        // R out of range
		{Assignment: a, R: 1, W: 5},        // W out of range
		{Assignment: Voting{}, R: 1, W: 1}, // empty
		{Assignment: a, R: 5, W: 3},        // R out of range high
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d validated unexpectedly: %+v", i, s)
		}
	}
}

// Property: any two write quorums of a valid spec intersect, and if the spec
// is one-copy serializable, any read quorum intersects any write quorum.
func TestPropertyQuorumIntersection(t *testing.T) {
	f := func(n uint8, pickA, pickB uint64) bool {
		size := int(n%7) + 1 // 1..7 replicas
		nodes := make([]simnet.NodeID, size)
		for i := range nodes {
			nodes[i] = simnet.NodeID(i + 1)
		}
		s := MajoritySpec(nodes)
		subset := func(bits uint64) []simnet.NodeID {
			var out []simnet.NodeID
			for i, id := range nodes {
				if bits&(1<<uint(i)) != 0 {
					out = append(out, id)
				}
			}
			return out
		}
		a, b := subset(pickA), subset(pickB)
		if !s.HasWriteQuorum(a) || !s.HasWriteQuorum(b) {
			return true // vacuous
		}
		inA := make(map[simnet.NodeID]bool)
		for _, id := range a {
			inA[id] = true
		}
		for _, id := range b {
			if inA[id] {
				return true
			}
		}
		return false // two disjoint write quorums: safety violation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: majority is the minimal count that guarantees intersection.
func TestPropertyMajorityMinimal(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%9) + 1
		nodes := make([]simnet.NodeID, size)
		for i := range nodes {
			nodes[i] = simnet.NodeID(i + 1)
		}
		a := Equal(nodes)
		m := a.Majority()
		// m votes exceed half; m-1 votes do not.
		return 2*m > size && 2*(m-1) <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
