// Structured quorum geometries: the grid and the hierarchical (tree)
// protocols of "A Novel Quorum Protocol" (see PAPERS.md). Both shrink write
// quorums from the vote majority's ⌈N/2⌉+1 replicas toward O(√N) while
// preserving the two intersection invariants the replication protocol
// depends on. Construction is intersection-checked: Build enumerates each
// geometry's minimal write quorums and verifies, via the complement trick,
// that no write quorum is disjoint from another write quorum or from any
// read quorum; a geometry that fails the check never reaches the protocol.
package quorum

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// Geometry names a quorum construction selectable from configuration.
type Geometry string

// The supported geometries.
const (
	// GeomMajority is vote counting: write = read = majority of votes.
	GeomMajority Geometry = "majority"
	// GeomGrid arranges the replicas in a ⌈√N⌉-column grid; a write
	// quorum is one full column plus one replica from every other
	// column (≤ 2⌈√N⌉−1 replicas), a read quorum is one replica per
	// column (⌈√N⌉ replicas).
	GeomGrid Geometry = "grid"
	// GeomTree organizes the replicas as leaves of a ternary tree and
	// takes recursive majorities of subtrees; write quorums shrink to
	// O(N^0.63) with read = write.
	GeomTree Geometry = "tree"
)

// Build constructs the named geometry over nodes. Votes are honored only
// by GeomMajority (nil votes = one vote each); the structured geometries
// treat replicas uniformly. Every non-majority construction is
// intersection-checked before being returned.
func Build(g Geometry, nodes []simnet.NodeID, votes map[simnet.NodeID]int) (Assignment, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("quorum: no nodes for geometry %q", g)
	}
	switch g {
	case GeomMajority, "":
		if votes != nil {
			return Weighted(votes), nil
		}
		return Equal(nodes), nil
	case GeomGrid:
		a := NewGrid(nodes)
		if err := checkIntersection(a); err != nil {
			return nil, err
		}
		return a, nil
	case GeomTree:
		a := NewTree(nodes)
		if err := checkIntersection(a); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, fmt.Errorf("quorum: unknown geometry %q", g)
	}
}

// ParseGeometry validates a configuration string.
func ParseGeometry(s string) (Geometry, error) {
	switch Geometry(s) {
	case "", GeomMajority:
		return GeomMajority, nil
	case GeomGrid:
		return GeomGrid, nil
	case GeomTree:
		return GeomTree, nil
	}
	return "", fmt.Errorf("quorum: unknown geometry %q (want majority, grid or tree)", s)
}

// minimalWriter is implemented by geometries that can enumerate their
// minimal write quorums, enabling the construction-time intersection check.
type minimalWriter interface {
	minimalWrites(cap int) [][]simnet.NodeID
}

// checkIntersection verifies W∩W and W∩R intersection for a geometry by
// the complement trick: a monotone quorum system has two disjoint write
// quorums iff the complement of some MINIMAL write quorum still contains a
// write quorum, and a write/read disjointness iff such a complement
// contains a read quorum. Enumeration is capped; the geometries built here
// stay far under the cap for every group size the cluster configures.
func checkIntersection(a Assignment) error {
	mw, ok := a.(minimalWriter)
	if !ok {
		return nil
	}
	const cap = 100000
	nodes := a.Nodes()
	for _, w := range mw.minimalWrites(cap) {
		in := make(map[simnet.NodeID]bool, len(w))
		for _, n := range w {
			in[n] = true
		}
		comp := make([]simnet.NodeID, 0, len(nodes)-len(w))
		for _, n := range nodes {
			if !in[n] {
				comp = append(comp, n)
			}
		}
		if a.HasWrite(comp) {
			return fmt.Errorf("quorum: %s over %d nodes admits disjoint write quorums (%v vs its complement)", a.Name(), len(nodes), w)
		}
		if a.HasRead(comp) {
			return fmt.Errorf("quorum: %s over %d nodes admits a read quorum disjoint from write quorum %v", a.Name(), len(nodes), w)
		}
	}
	return nil
}

// Grid is the grid quorum protocol: replicas in ascending order fill a
// row-major grid with ⌈√N⌉ columns. A write quorum owns one full column
// and covers every column; a read quorum covers every column.
type Grid struct {
	nodes []simnet.NodeID // ascending, row-major
	cols  int
}

// NewGrid arranges nodes into a grid. The construction is deterministic:
// nodes are sorted ascending and laid out row-major.
func NewGrid(nodes []simnet.NodeID) Grid {
	sorted := make([]simnet.NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cols := 1
	for cols*cols < len(sorted) {
		cols++
	}
	return Grid{nodes: sorted, cols: cols}
}

// Nodes returns the replicas in ascending order.
func (g Grid) Nodes() []simnet.NodeID {
	out := make([]simnet.NodeID, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// column returns the replicas of column c (may be shorter in the last row).
func (g Grid) column(c int) []simnet.NodeID {
	var out []simnet.NodeID
	for i := c; i < len(g.nodes); i += g.cols {
		out = append(out, g.nodes[i])
	}
	return out
}

func (g Grid) membership(nodes []simnet.NodeID) map[simnet.NodeID]bool {
	in := make(map[simnet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	return in
}

// HasWrite reports whether nodes own one full column and touch every
// column.
func (g Grid) HasWrite(nodes []simnet.NodeID) bool {
	in := g.membership(nodes)
	full := false
	for c := 0; c < g.cols && c < len(g.nodes); c++ {
		col := g.column(c)
		hit, all := false, true
		for _, n := range col {
			if in[n] {
				hit = true
			} else {
				all = false
			}
		}
		if !hit {
			return false
		}
		if all {
			full = true
		}
	}
	return full
}

// HasRead reports whether nodes touch every column. Any full column (owned
// by every write quorum) then intersects the cover.
func (g Grid) HasRead(nodes []simnet.NodeID) bool {
	in := g.membership(nodes)
	for c := 0; c < g.cols && c < len(g.nodes); c++ {
		hit := false
		for _, n := range g.column(c) {
			if in[n] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Score counts the member replicas — tie-break strength.
func (g Grid) Score(nodes []simnet.NodeID) int {
	in := g.membership(nodes)
	count := 0
	for _, n := range g.nodes {
		if in[n] {
			count++
		}
	}
	return count
}

// MinWrite returns the size of a smallest write quorum: the shortest full
// column plus one replica from each remaining column, ≤ 2⌈√N⌉−1.
func (g Grid) MinWrite() int {
	ncols := g.cols
	if len(g.nodes) < ncols {
		ncols = len(g.nodes)
	}
	shortest := len(g.nodes)
	for c := 0; c < ncols; c++ {
		if h := len(g.column(c)); h < shortest {
			shortest = h
		}
	}
	return shortest + ncols - 1
}

// Name identifies the geometry.
func (g Grid) Name() string { return "grid" }

// minimalWrites enumerates every minimal write quorum: choose the full
// column, then one replica from each other column.
func (g Grid) minimalWrites(cap int) [][]simnet.NodeID {
	ncols := g.cols
	if len(g.nodes) < ncols {
		ncols = len(g.nodes)
	}
	var out [][]simnet.NodeID
	for full := 0; full < ncols; full++ {
		picks := [][]simnet.NodeID{g.column(full)}
		for c := 0; c < ncols; c++ {
			if c == full {
				continue
			}
			var next [][]simnet.NodeID
			for _, p := range picks {
				for _, n := range g.column(c) {
					q := make([]simnet.NodeID, len(p), len(p)+1)
					copy(q, p)
					next = append(next, append(q, n))
				}
				if len(next) > cap {
					break
				}
			}
			picks = next
		}
		out = append(out, picks...)
		if len(out) > cap {
			return out[:cap]
		}
	}
	return out
}

// Tree is the ternary hierarchical quorum consensus: replicas in ascending
// order are the leaves of a tree whose internal nodes have up to three
// children; a set is a quorum iff it satisfies a majority of the children
// at every level. Read and write quorums coincide.
type Tree struct {
	root  *treeNode
	nodes []simnet.NodeID
}

type treeNode struct {
	leaf     simnet.NodeID
	children []*treeNode
}

// NewTree builds the ternary hierarchy over the sorted nodes.
func NewTree(nodes []simnet.NodeID) Tree {
	sorted := make([]simnet.NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Tree{root: buildTree(sorted), nodes: sorted}
}

func buildTree(nodes []simnet.NodeID) *treeNode {
	if len(nodes) == 1 {
		return &treeNode{leaf: nodes[0]}
	}
	fan := 3
	if len(nodes) < fan {
		fan = len(nodes)
	}
	n := &treeNode{children: make([]*treeNode, 0, fan)}
	base, extra := len(nodes)/fan, len(nodes)%fan
	at := 0
	for i := 0; i < fan; i++ {
		size := base
		if i < extra {
			size++
		}
		n.children = append(n.children, buildTree(nodes[at:at+size]))
		at += size
	}
	return n
}

// Nodes returns the replicas in ascending order.
func (t Tree) Nodes() []simnet.NodeID {
	out := make([]simnet.NodeID, len(t.nodes))
	copy(out, t.nodes)
	return out
}

func (n *treeNode) satisfied(in map[simnet.NodeID]bool) bool {
	if n.children == nil {
		return in[n.leaf]
	}
	need := len(n.children)/2 + 1
	got := 0
	for _, c := range n.children {
		if c.satisfied(in) {
			got++
		}
	}
	return got >= need
}

// HasWrite reports whether nodes satisfy a recursive child majority.
func (t Tree) HasWrite(nodes []simnet.NodeID) bool {
	in := make(map[simnet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	return t.root.satisfied(in)
}

// HasRead equals HasWrite: hierarchical quorum consensus is symmetric.
func (t Tree) HasRead(nodes []simnet.NodeID) bool { return t.HasWrite(nodes) }

// Score counts the member replicas — tie-break strength.
func (t Tree) Score(nodes []simnet.NodeID) int {
	in := make(map[simnet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	count := 0
	for _, n := range t.nodes {
		if in[n] {
			count++
		}
	}
	return count
}

func (n *treeNode) minWrite() int {
	if n.children == nil {
		return 1
	}
	need := len(n.children)/2 + 1
	sizes := make([]int, len(n.children))
	for i, c := range n.children {
		sizes[i] = c.minWrite()
	}
	sort.Ints(sizes)
	sum := 0
	for i := 0; i < need; i++ {
		sum += sizes[i]
	}
	return sum
}

// MinWrite returns the size of a smallest write quorum.
func (t Tree) MinWrite() int { return t.root.minWrite() }

// Name identifies the geometry.
func (t Tree) Name() string { return "tree" }

func (n *treeNode) minimalQuorums(cap int) [][]simnet.NodeID {
	if n.children == nil {
		return [][]simnet.NodeID{{n.leaf}}
	}
	need := len(n.children)/2 + 1
	var out [][]simnet.NodeID
	// Every child subset of exactly `need` children, cross product of
	// their minimal quorums.
	subsets := chooseIndexes(len(n.children), need)
	for _, sub := range subsets {
		picks := [][]simnet.NodeID{nil}
		for _, ci := range sub {
			childQs := n.children[ci].minimalQuorums(cap)
			var next [][]simnet.NodeID
			for _, p := range picks {
				for _, q := range childQs {
					merged := make([]simnet.NodeID, len(p), len(p)+len(q))
					copy(merged, p)
					next = append(next, append(merged, q...))
				}
				if len(next) > cap {
					break
				}
			}
			picks = next
		}
		out = append(out, picks...)
		if len(out) > cap {
			return out[:cap]
		}
	}
	return out
}

func chooseIndexes(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

// minimalWrites enumerates the minimal write quorums for the construction
// check.
func (t Tree) minimalWrites(cap int) [][]simnet.NodeID {
	return t.root.minimalQuorums(cap)
}
