package quorum

import (
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func nodeRange(n int) []simnet.NodeID {
	out := make([]simnet.NodeID, n)
	for i := range out {
		out[i] = simnet.NodeID(i + 1)
	}
	return out
}

// geometries returns every Assignment under test for n replicas: equal and
// weighted voting plus the tree and grid constructions.
func geometries(t testing.TB, n int) []Assignment {
	nodes := nodeRange(n)
	weights := make(map[simnet.NodeID]int, n)
	for i, id := range nodes {
		weights[id] = 1 + i%3
	}
	out := []Assignment{Equal(nodes), Weighted(weights)}
	for _, g := range []Geometry{GeomTree, GeomGrid} {
		a, err := Build(g, nodes, nil)
		if err != nil {
			t.Fatalf("Build(%s, %d): %v", g, n, err)
		}
		out = append(out, a)
	}
	return out
}

func subset(nodes []simnet.NodeID, bits uint64) []simnet.NodeID {
	var out []simnet.NodeID
	for i, id := range nodes {
		if bits&(1<<uint(i)) != 0 {
			out = append(out, id)
		}
	}
	return out
}

func disjoint(a, b []simnet.NodeID) bool {
	in := make(map[simnet.NodeID]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	for _, id := range b {
		if in[id] {
			return false
		}
	}
	return true
}

// Property (ISSUE 6 satellite): for N in [3, 25] and every geometry —
// equal, weighted, tree, grid — any two write quorums intersect, and any
// write quorum intersects any read quorum.
func TestPropertyGeometryIntersection(t *testing.T) {
	f := func(nRaw uint8, pickA, pickB uint64) bool {
		n := 3 + int(nRaw)%23 // 3..25
		nodes := nodeRange(n)
		for _, a := range geometries(t, n) {
			w1, w2 := subset(nodes, pickA), subset(nodes, pickB)
			if a.HasWrite(w1) && a.HasWrite(w2) && disjoint(w1, w2) {
				t.Logf("%s n=%d: disjoint write quorums %v / %v", a.Name(), n, w1, w2)
				return false
			}
			if a.HasWrite(w1) && a.HasRead(w2) && disjoint(w1, w2) {
				t.Logf("%s n=%d: write %v disjoint from read %v", a.Name(), n, w1, w2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The construction-time check enumerates minimal write quorums; their
// complements must hold neither a write nor a read quorum for every size.
func TestGeometryConstructionCheck(t *testing.T) {
	for n := 1; n <= 25; n++ {
		for _, g := range []Geometry{GeomTree, GeomGrid} {
			if _, err := Build(g, nodeRange(n), nil); err != nil {
				t.Fatalf("Build(%s, %d): %v", g, n, err)
			}
		}
	}
}

// Acceptance: grid write quorums stay within 2⌈√N⌉−1 replicas and a
// minimal write quorum of that size really exists.
func TestGridMinWriteBound(t *testing.T) {
	for n := 1; n <= 64; n++ {
		g := NewGrid(nodeRange(n))
		cols := 1
		for cols*cols < n {
			cols++
		}
		if g.MinWrite() > 2*cols-1 {
			t.Fatalf("n=%d: MinWrite=%d > 2⌈√N⌉−1=%d", n, g.MinWrite(), 2*cols-1)
		}
		const cap = 100000
		ws := g.minimalWrites(cap)
		best := n + 1
		for _, w := range ws {
			if !g.HasWrite(w) {
				t.Fatalf("n=%d: enumerated non-quorum %v", n, w)
			}
			if len(w) < best {
				best = len(w)
			}
		}
		// The enumeration is truncated at the cap for very large grids;
		// only a complete enumeration must contain a quorum of MinWrite.
		if len(ws) < cap && best != g.MinWrite() {
			t.Fatalf("n=%d: smallest enumerated=%d, MinWrite=%d", n, best, g.MinWrite())
		}
	}
}

// Tree write quorums shrink below the vote majority once N is large
// enough, and every enumerated minimal quorum verifies.
func TestTreeMinWrite(t *testing.T) {
	tr := NewTree(nodeRange(9))
	if tr.MinWrite() != 4 {
		t.Fatalf("ternary tree over 9: MinWrite=%d, want 4", tr.MinWrite())
	}
	for _, w := range tr.minimalWrites(100000) {
		if !tr.HasWrite(w) {
			t.Fatalf("enumerated non-quorum %v", w)
		}
	}
	if tr.HasWrite(nodeRange(3)) {
		// {1,2,3} is exactly one child subtree of the 9-leaf tree: one
		// of three children is not a majority.
		t.Fatal("single subtree must not be a write quorum")
	}
}

func TestBuildRejectsUnknownGeometry(t *testing.T) {
	if _, err := Build("hexagon", nodeRange(4), nil); err == nil {
		t.Fatal("expected error for unknown geometry")
	}
	if _, err := ParseGeometry("hexagon"); err == nil {
		t.Fatal("expected parse error")
	}
	if g, err := ParseGeometry(""); err != nil || g != GeomMajority {
		t.Fatalf("empty geometry = %q, %v; want majority", g, err)
	}
}

func TestVotingMinWrite(t *testing.T) {
	if mw := Equal(nodeRange(5)).MinWrite(); mw != 3 {
		t.Fatalf("equal/5 MinWrite=%d, want 3", mw)
	}
	w := Weighted(map[simnet.NodeID]int{1: 3, 2: 1, 3: 1})
	if mw := w.MinWrite(); mw != 1 {
		t.Fatalf("weighted MinWrite=%d, want 1 (node 1 alone)", mw)
	}
}
