// Package quorum implements vote assignments and read/write quorum
// arithmetic for replicated data, after Thomas's Majority Consensus Voting
// (MCV) and Gifford's weighted voting — the two schemes the paper builds on
// (§3.1) — plus the structured tree and grid geometries that shrink write
// quorums toward O(√N). The MARP protocol of internal/core and the
// message-passing baselines of internal/baseline both consult this package,
// so they are guaranteed to agree on what constitutes a quorum.
package quorum

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// Assignment is a quorum geometry over a fixed replica set: it decides
// which subsets of the replicas constitute read and write quorums. Every
// implementation guarantees W∩W and W∩R intersection — any two write
// quorums share a replica, and any write quorum shares a replica with any
// read quorum — so a protocol that collects a write quorum of grants (or
// acknowledgements) excludes every concurrent writer and is visible to
// every subsequent quorum read.
type Assignment interface {
	// Nodes returns the participating replicas in ascending order.
	Nodes() []simnet.NodeID
	// HasWrite reports whether nodes contain a write quorum.
	// Duplicates and replicas outside the assignment are ignored.
	HasWrite(nodes []simnet.NodeID) bool
	// HasRead reports whether nodes contain a read quorum.
	HasRead(nodes []simnet.NodeID) bool
	// Score ranks partial progress toward a write quorum (larger is
	// stronger); the protocol uses it only to break ties between
	// competing agents, never to grant a quorum.
	Score(nodes []simnet.NodeID) int
	// MinWrite returns the size (in replicas) of a smallest write
	// quorum.
	MinWrite() int
	// Name identifies the geometry ("majority", "weighted", "tree",
	// "grid") for tables and diagnostics.
	Name() string
}

// Voting is the vote-counting Assignment: each replica carries a vote
// weight and any set holding more than half the total votes is both a
// write and a read quorum. Equal weights give Thomas's majority consensus;
// explicit weights give Gifford's weighted voting.
type Voting struct {
	votes map[simnet.NodeID]int
	total int
}

// Equal assigns one vote to every node — plain majority consensus, the
// scheme used by the paper's protocol ("a quorum of replicas of an object is
// simply any majority of its copies").
func Equal(nodes []simnet.NodeID) Voting {
	v := make(map[simnet.NodeID]int, len(nodes))
	for _, n := range nodes {
		v[n] = 1
	}
	return Voting{votes: v, total: len(nodes)}
}

// Weighted assigns explicit vote counts (Gifford's weighted voting).
// Non-positive vote counts panic: a replica with zero votes is simply not
// part of the assignment.
func Weighted(votes map[simnet.NodeID]int) Voting {
	v := make(map[simnet.NodeID]int, len(votes))
	total := 0
	for n, k := range votes {
		if k <= 0 {
			panic(fmt.Sprintf("quorum: non-positive votes %d for node %d", k, n))
		}
		v[n] = k
		total += k
	}
	return Voting{votes: v, total: total}
}

// Votes returns node's vote count (0 if not in the assignment).
func (a Voting) Votes(n simnet.NodeID) int { return a.votes[n] }

// Total returns the total number of votes.
func (a Voting) Total() int { return a.total }

// Nodes returns the participating nodes in ascending order.
func (a Voting) Nodes() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(a.votes))
	for n := range a.votes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Majority returns the smallest vote count that exceeds half the total:
// floor(total/2) + 1.
func (a Voting) Majority() int { return a.total/2 + 1 }

// Count sums the votes of the given nodes (duplicates counted once).
func (a Voting) Count(nodes []simnet.NodeID) int {
	seen := make(map[simnet.NodeID]bool, len(nodes))
	sum := 0
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		sum += a.votes[n]
	}
	return sum
}

// IsMajority reports whether the given nodes hold more than half the votes.
func (a Voting) IsMajority(nodes []simnet.NodeID) bool {
	return a.Count(nodes) >= a.Majority()
}

// HasWrite reports whether nodes hold a vote majority — the write quorum.
func (a Voting) HasWrite(nodes []simnet.NodeID) bool { return a.IsMajority(nodes) }

// HasRead reports whether nodes hold a vote majority. Voting keeps the
// symmetric R = W = majority configuration for consistent reads; the
// paper's fast read path (read-one) bypasses quorums entirely.
func (a Voting) HasRead(nodes []simnet.NodeID) bool { return a.IsMajority(nodes) }

// Score returns the vote count of nodes.
func (a Voting) Score(nodes []simnet.NodeID) int { return a.Count(nodes) }

// MinWrite returns how many replicas the smallest vote majority needs:
// the heaviest-first prefix reaching Majority().
func (a Voting) MinWrite() int {
	weights := make([]int, 0, len(a.votes))
	for _, w := range a.votes {
		weights = append(weights, w)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(weights)))
	sum, need := 0, a.Majority()
	for i, w := range weights {
		sum += w
		if sum >= need {
			return i + 1
		}
	}
	return len(weights)
}

// Name identifies the assignment for tables.
func (a Voting) Name() string {
	for _, w := range a.votes {
		if w != 1 {
			return "weighted"
		}
	}
	return "majority"
}

// Spec is a full quorum specification: a vote assignment plus read and write
// thresholds.
type Spec struct {
	Assignment Voting
	R          int // votes required for a read quorum
	W          int // votes required for a write quorum
}

// MajoritySpec returns the paper's configuration: write quorum = majority,
// read quorum = 1 (read-one/write-majority; "a read operation may be
// executed on an arbitrary copy", §3.1).
func MajoritySpec(nodes []simnet.NodeID) Spec {
	a := Equal(nodes)
	return Spec{Assignment: a, R: 1, W: a.Majority()}
}

// StrictSpec returns a read-write intersecting configuration with both
// quorums at majority — the consistent-read extension.
func StrictSpec(nodes []simnet.NodeID) Spec {
	a := Equal(nodes)
	return Spec{Assignment: a, R: a.Majority(), W: a.Majority()}
}

// Validate checks Gifford's safety conditions: W+W > total (no two
// concurrent write quorums) and, when reads must observe the latest write,
// R+W > total. MajoritySpec intentionally violates the second condition —
// that is the paper's explicit trade-off ("it is acceptable that queries
// executed on a replica are not guaranteed to give an up-to-date answer") —
// so Validate distinguishes the two.
func (s Spec) Validate() error {
	t := s.Assignment.Total()
	if t == 0 {
		return fmt.Errorf("quorum: empty assignment")
	}
	if s.W < 1 || s.W > t || s.R < 1 || s.R > t {
		return fmt.Errorf("quorum: thresholds R=%d W=%d out of range 1..%d", s.R, s.W, t)
	}
	if 2*s.W <= t {
		return fmt.Errorf("quorum: 2W=%d <= total=%d permits concurrent writes", 2*s.W, t)
	}
	return nil
}

// OneCopySerializable reports whether the spec also guarantees reads observe
// the most recent write (R+W > total).
func (s Spec) OneCopySerializable() bool {
	return s.R+s.W > s.Assignment.Total()
}

// HasWriteQuorum reports whether nodes hold a write quorum.
func (s Spec) HasWriteQuorum(nodes []simnet.NodeID) bool {
	return s.Assignment.Count(nodes) >= s.W
}

// HasReadQuorum reports whether nodes hold a read quorum.
func (s Spec) HasReadQuorum(nodes []simnet.NodeID) bool {
	return s.Assignment.Count(nodes) >= s.R
}
