package shard

import (
	"testing"

	"repro/internal/runtime"
)

func nodes(n int) []runtime.NodeID {
	out := make([]runtime.NodeID, n)
	for i := range out {
		out[i] = runtime.NodeID(i + 1)
	}
	return out
}

func TestOfSingleShard(t *testing.T) {
	for _, key := range []string{"", "k0", "anything"} {
		if Of(key, 1) != 0 || Of(key, 0) != 0 {
			t.Fatalf("Of(%q) != 0 with <=1 shards", key)
		}
	}
}

func TestOfStableAndInRange(t *testing.T) {
	for s := 2; s <= 64; s *= 2 {
		for i := 0; i < 100; i++ {
			key := string(rune('a'+i%26)) + string(rune('0'+i%10))
			got := Of(key, s)
			if got < 0 || got >= s {
				t.Fatalf("Of(%q, %d) = %d out of range", key, s, got)
			}
			if got != Of(key, s) {
				t.Fatalf("Of(%q, %d) not stable", key, s)
			}
		}
	}
}

func TestOfSpreadsKeys(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 800; i++ {
		counts[Of(string(rune('a'+i%26))+string(rune('A'+i/26%26))+string(rune('0'+i%10)), 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no keys of 800", s)
		}
	}
}

func TestGroupFullReplication(t *testing.T) {
	ns := nodes(5)
	for _, size := range []int{0, 5, 9} {
		g := Group(3, ns, size)
		if len(g) != 5 {
			t.Fatalf("size=%d: group %v, want all 5", size, g)
		}
		for i, n := range g {
			if n != runtime.NodeID(i+1) {
				t.Fatalf("group not ascending: %v", g)
			}
		}
	}
}

func TestGroupSubsetDeterministicSortedDistinct(t *testing.T) {
	ns := nodes(9)
	for s := 0; s < 32; s++ {
		g := Group(s, ns, 3)
		if len(g) != 3 {
			t.Fatalf("shard %d: group %v, want 3 nodes", s, g)
		}
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				t.Fatalf("shard %d: group not strictly ascending: %v", s, g)
			}
		}
		again := Group(s, ns, 3)
		for i := range g {
			if g[i] != again[i] {
				t.Fatalf("shard %d: group not deterministic: %v vs %v", s, g, again)
			}
		}
	}
}

func TestGroupBalancesShards(t *testing.T) {
	ns := nodes(6)
	load := make(map[runtime.NodeID]int)
	for s := 0; s < 64; s++ {
		for _, n := range Group(s, ns, 3) {
			load[n]++
		}
	}
	for _, n := range ns {
		if load[n] == 0 {
			t.Fatalf("node %d owns no shards: %v", n, load)
		}
	}
}
