// Package shard maps object keys onto shards and shards onto replica
// groups. MARP as published locks "the replicated data" as one object;
// sharding splits the key space into independent locking domains so that
// agents working on unrelated keys never contend. The mapping must be a
// pure function of (key, configuration): every server and every agent
// computes it locally and they all agree without coordination.
//
// Keys hash onto shards with FNV-1a; shards map onto replica groups with
// rendezvous (highest-random-weight) hashing, so growing the cluster moves
// only the minimal number of shards between groups.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/runtime"
)

// Of returns the shard that owns key, in [0, shards). With shards <= 1
// every key lives on shard 0 — the unsharded protocol of the paper.
func Of(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// Group returns the replica group that stores shard s: the size nodes with
// the highest rendezvous weight for s, in ascending node order. With
// size <= 0 or size >= len(nodes) every node replicates every shard (full
// replication, the pre-sharding behavior).
func Group(s int, nodes []runtime.NodeID, size int) []runtime.NodeID {
	out := make([]runtime.NodeID, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if size <= 0 || size >= len(nodes) {
		return out
	}
	type scored struct {
		node   runtime.NodeID
		weight uint64
	}
	ranked := make([]scored, len(out))
	for i, n := range out {
		ranked[i] = scored{node: n, weight: weight(s, n)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].weight != ranked[j].weight {
			return ranked[i].weight > ranked[j].weight
		}
		return ranked[i].node < ranked[j].node
	})
	group := make([]runtime.NodeID, size)
	for i := 0; i < size; i++ {
		group[i] = ranked[i].node
	}
	sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
	return group
}

// weight is the rendezvous score of node n for shard s.
func weight(s int, n runtime.NodeID) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "s%d|n%d", s, n)
	return h.Sum64()
}
