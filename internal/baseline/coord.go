package baseline

import (
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

type coordPhase int

const (
	coordReading coordPhase = iota
	coordVoting
	coordDone
)

// coord is a stationary per-request coordinator. For MCV and AvailableCopy
// it runs at the request's home node and drives Thomas-style rounds (read
// horizon / vote / commit); for PrimaryCopy it is seated at the primary,
// which serializes requests locally and skips the read round.
type coord struct {
	sys  *System
	txn  TxnID
	home simnet.NodeID
	seat simnet.NodeID
	key  string
	val  string

	phase      coordPhase
	round      int
	dispatched des.Time
	lockAt     des.Time
	retries    int
	reads      map[simnet.NodeID]readRep
	votes      map[simnet.NodeID]bool
	rejects    map[simnet.NodeID]bool
	update     store.Update
	timer      des.Timer
}

// quorum returns how many replies the protocol requires per round.
func (c *coord) quorum() int {
	if c.sys.cfg.Kind == AvailableCopy {
		return c.sys.cfg.N // write-all
	}
	return c.sys.cfg.N/2 + 1 // majority
}

func (c *coord) start() {
	if c.sys.cfg.Kind == PrimaryCopy {
		c.seat = c.sys.cfg.Primary
		f := &forward{Txn: c.txn, From: c.home, Key: c.key, Val: c.val}
		c.sys.send(c.home, c.seat, f, f.WireSize())
		return
	}
	c.seat = c.home
	c.beginRound()
}

// beginRound starts (or restarts) the read round and arms the stall timer.
func (c *coord) beginRound() {
	c.phase = coordReading
	c.round++
	c.reads = make(map[simnet.NodeID]readRep)
	for _, id := range c.sys.ids {
		m := &readReq{Txn: c.txn, Round: c.round, From: c.seat, Key: c.key}
		c.sys.send(c.seat, id, m, m.WireSize())
	}
	round := c.round
	c.timer = c.sys.sim.After(c.sys.cfg.LockTimeout, func() {
		if c.phase == coordDone || c.round != round {
			return
		}
		c.retries++
		c.sys.cfg.Trace.Addf(int64(c.sys.sim.Now()), int(c.seat), c.txn.String(),
			trace.ClaimAborted, "round %d timed out (retry %d)", c.round, c.retries)
		c.abortAndRetry()
	})
}

// abortAndRetry withdraws the proposal everywhere and restarts after a
// randomized exponential backoff — under heavy write contention (especially
// for write-all AvailableCopy, whose unanimity requirement makes every
// concurrent proposal a conflict) the growing backoff is what spreads the
// competitors out enough for someone to win.
func (c *coord) abortAndRetry() {
	c.timer.Cancel()
	for _, id := range c.sys.ids {
		m := &abortReq{Txn: c.txn, Round: c.round, From: c.seat}
		c.sys.send(c.seat, id, m, m.WireSize())
	}
	shift := c.retries
	if shift > 10 {
		shift = 10
	}
	window := c.sys.cfg.RetryBackoff << uint(shift)
	backoff := c.sys.cfg.RetryBackoff/2 +
		time.Duration(c.sys.sim.Rand().Int63n(int64(window)))
	// Invalidate the aborted round so straggler replies cannot reactivate
	// the coordinator before the backoff elapses.
	c.round++
	c.phase = coordReading
	c.reads = make(map[simnet.NodeID]readRep)
	c.sys.sim.After(backoff, c.beginRound)
}

func (c *coord) onReadRep(r readRep) {
	if c.phase != coordReading || r.Round != c.round {
		return
	}
	c.reads[r.From] = r
	if len(c.reads) < c.quorum() {
		return
	}
	var base uint64
	for _, rr := range c.reads {
		if rr.LastSeq > base {
			base = rr.LastSeq
		}
	}
	c.propose(base)
}

// propose broadcasts the vote round for sequence slot base+1.
func (c *coord) propose(base uint64) {
	c.phase = coordVoting
	c.votes = make(map[simnet.NodeID]bool)
	c.rejects = make(map[simnet.NodeID]bool)
	c.update = store.Update{
		TxnID: c.txn.String(),
		Key:   c.key,
		Data:  c.val,
		Seq:   base + 1,
		Stamp: int64(c.sys.sim.Now()),
	}
	for _, id := range c.sys.ids {
		m := &voteReq{Txn: c.txn, Round: c.round, From: c.seat, Update: c.update}
		c.sys.send(c.seat, id, m, m.WireSize())
	}
	c.sys.cfg.Trace.Addf(int64(c.sys.sim.Now()), int(c.seat), c.txn.String(), trace.UpdateSent,
		"proposed seq %d (round %d)", c.update.Seq, c.round)
}

func (c *coord) onVoteRep(v voteRep) {
	if c.phase != coordVoting || v.Round != c.round {
		return
	}
	if !v.OK {
		c.rejects[v.From] = true
		// A majority is impossible once enough replicas rejected.
		if c.sys.cfg.N-len(c.rejects) < c.quorum() {
			c.retries++
			c.sys.cfg.Trace.Addf(int64(c.sys.sim.Now()), int(c.seat), c.txn.String(),
				trace.ClaimAborted, "proposal for seq %d rejected (retry %d)", c.update.Seq, c.retries)
			c.abortAndRetry()
		}
		return
	}
	c.votes[v.From] = true
	if len(c.votes) < c.quorum() {
		return
	}
	c.timer.Cancel()
	if c.sys.cfg.Kind != PrimaryCopy {
		c.lockAt = c.sys.sim.Now()
	}
	c.sys.cfg.Trace.Addf(int64(c.sys.sim.Now()), int(c.seat), c.txn.String(),
		trace.LockRequested, "vote quorum of %d for seq %d", len(c.votes), c.update.Seq)
	c.commit()
}

// commit finalizes the update everywhere and completes the request.
func (c *coord) commit() {
	c.phase = coordDone
	now := c.sys.sim.Now()
	for _, id := range c.sys.ids {
		m := &commitReq{Txn: c.txn, From: c.seat, Update: c.update}
		c.sys.send(c.seat, id, m, m.WireSize())
	}
	c.sys.cfg.Trace.Addf(int64(now), int(c.seat), c.txn.String(), trace.CommitSent, "seq %d", c.update.Seq)
	if c.sys.cfg.Kind == PrimaryCopy {
		if c.home != c.seat {
			m := &done{Txn: c.txn, From: c.seat, LockAt: c.lockAt}
			c.sys.send(c.seat, c.home, m, m.WireSize())
		}
		// Free the primary for the next queued request.
		prim := c.sys.nodes[c.seat]
		prim.primBusy = false
		c.sys.sim.After(0, prim.pumpPrimary)
	}
	c.sys.finish(Result{
		Txn:        c.txn,
		Home:       c.home,
		Dispatched: c.dispatched,
		LockAt:     c.lockAt,
		DoneAt:     now,
		Retries:    c.retries,
	})
}
