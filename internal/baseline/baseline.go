// Package baseline implements the conventional message-passing replication
// protocols the paper positions MARP against (§1, §3.1):
//
//   - MCV: Majority Consensus Voting by message passing, after Thomas [11]
//     and Gifford [5] — a stationary coordinator reads the data horizon
//     from a quorum, proposes a timestamped update, collects a majority of
//     votes (each replica votes for at most one proposal per sequence
//     slot), then commits. Conflicting proposals are rejected and retried,
//     exactly the optimistic behaviour of Thomas's algorithm.
//   - AvailableCopy: the write-all/read-one protocol of Bernstein et al.
//     [2] — an update must be accepted by every available replica.
//   - PrimaryCopy: all updates funnel through a designated primary, which
//     serializes them locally and propagates to the backups.
//
// All three run over the same simulated network and data store as MARP, so
// latency and traffic comparisons between the approaches measure protocol
// structure, not substrate differences. The coordinators are stationary
// processes: every round (read, vote, commit) pays wide-area round-trip
// latency, which is exactly the cost the paper argues mobile agents avoid.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// Kind selects the baseline protocol.
type Kind int

// The implemented baseline protocols.
const (
	MCV Kind = iota
	AvailableCopy
	PrimaryCopy
)

// String returns the protocol name.
func (k Kind) String() string {
	switch k {
	case MCV:
		return "mcv-mp"
	case AvailableCopy:
		return "available-copy"
	case PrimaryCopy:
		return "primary-copy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TxnID identifies one update transaction. The (Born, Home, Seq) order is a
// global timestamp, used to bias conflict resolution toward older
// transactions.
type TxnID struct {
	Born int64
	Home simnet.NodeID
	Seq  uint64
}

// IsZero reports whether the ID is unset.
func (t TxnID) IsZero() bool { return t == TxnID{} }

// Less orders transactions by age, then home, then sequence.
func (t TxnID) Less(o TxnID) bool {
	if t.Born != o.Born {
		return t.Born < o.Born
	}
	if t.Home != o.Home {
		return t.Home < o.Home
	}
	return t.Seq < o.Seq
}

// String renders the ID compactly.
func (t TxnID) String() string { return fmt.Sprintf("T%d.%d", t.Home, t.Seq) }

// Result records one completed update, mirroring core.Outcome's timing
// fields so the harness can compare protocols uniformly.
type Result struct {
	Txn        TxnID
	Home       simnet.NodeID
	Dispatched des.Time
	LockAt     des.Time // vote quorum achieved (the serialization point)
	DoneAt     des.Time // commit broadcast sent
	Retries    int
	Failed     bool
}

// LockLatency returns the time to win the vote quorum.
func (r Result) LockLatency() des.Time { return r.LockAt - r.Dispatched }

// TotalLatency returns the time to fully process the update.
func (r Result) TotalLatency() des.Time { return r.DoneAt - r.Dispatched }

// Config assembles a baseline deployment.
type Config struct {
	Kind     Kind
	N        int
	Seed     int64
	Topology *simnet.Topology
	Latency  simnet.LatencyModel
	// Primary designates the primary replica for PrimaryCopy (default 1).
	Primary simnet.NodeID
	// LockTimeout aborts a read or vote round that stalls (lost replies
	// under failures) and retries after a randomized backoff. Default 5s.
	LockTimeout time.Duration
	// RetryBackoff is the mean randomized retry delay after a conflict.
	// Default 50ms.
	RetryBackoff time.Duration
	// Trace, if non-nil, receives protocol events.
	Trace *trace.Log
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("baseline: config needs N >= 1, got %d", c.N)
	}
	if c.Topology == nil {
		c.Topology = simnet.FullMesh(c.N)
	}
	if c.Topology.Len() < c.N {
		return fmt.Errorf("baseline: topology has %d nodes, need %d", c.Topology.Len(), c.N)
	}
	if c.Latency == nil {
		c.Latency = simnet.LAN()
	}
	if c.Primary == simnet.None {
		c.Primary = 1
	}
	if int(c.Primary) > c.N {
		return fmt.Errorf("baseline: primary %d out of range 1..%d", c.Primary, c.N)
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 5 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return nil
}

// Wire messages. Sizes model a compact binary encoding.

// readReq asks a replica for its data horizon (round 1 of MCV/AC).
type readReq struct {
	Txn   TxnID
	Round int
	From  simnet.NodeID
	Key   string
}

func (readReq) Kind() string  { return "read-req" }
func (readReq) WireSize() int { return 64 }

// readRep carries the replica's last sequence number and current value.
type readRep struct {
	Txn     TxnID
	Round   int
	From    simnet.NodeID
	LastSeq uint64
	Value   store.Value
}

func (readRep) Kind() string  { return "read-rep" }
func (readRep) WireSize() int { return 96 }

// voteReq proposes a concrete update for the next sequence slot (round 2).
type voteReq struct {
	Txn    TxnID
	Round  int
	From   simnet.NodeID
	Update store.Update
}

func (voteReq) Kind() string  { return "vote-req" }
func (voteReq) WireSize() int { return 160 }

// voteRep accepts or rejects the proposal. A replica votes for at most one
// proposal per sequence slot, so any two majorities intersect in a replica
// that voted for only one of them.
type voteRep struct {
	Txn    TxnID
	Round  int
	From   simnet.NodeID
	OK     bool
	Reason string
}

func (voteRep) Kind() string  { return "vote-rep" }
func (voteRep) WireSize() int { return 48 }

// abortReq withdraws a proposal, freeing the replica's vote slot. Round is
// the highest round being abandoned: the replica refuses any straggling
// voteReq of that round or earlier, so a vote request that lands after its
// coordinator gave up cannot reserve the slot for a sleeping coordinator.
type abortReq struct {
	Txn   TxnID
	Round int
	From  simnet.NodeID
}

func (abortReq) Kind() string  { return "abort" }
func (abortReq) WireSize() int { return 48 }

// commitReq finalizes a voted update at every replica.
type commitReq struct {
	Txn    TxnID
	From   simnet.NodeID
	Update store.Update
}

func (commitReq) Kind() string  { return "commit" }
func (commitReq) WireSize() int { return 160 }

// forward ships a request to the primary (PrimaryCopy only).
type forward struct {
	Txn  TxnID
	From simnet.NodeID
	Key  string
	Val  string
}

func (forward) Kind() string  { return "forward" }
func (forward) WireSize() int { return 96 }

// done notifies the origin that the primary finished its request.
type done struct {
	Txn    TxnID
	From   simnet.NodeID
	LockAt des.Time
}

func (done) Kind() string  { return "done" }
func (done) WireSize() int { return 48 }
