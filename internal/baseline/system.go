package baseline

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// System is a running deployment of one baseline protocol: N replica nodes
// over a simulated network, with stationary per-request coordinators.
type System struct {
	cfg    Config
	sim    *des.Simulator
	net    *simnet.Network
	nodes  map[simnet.NodeID]*node
	ids    []simnet.NodeID
	coords map[TxnID]*coord

	results     []Result
	outstanding int
	txnSeq      uint64
}

// New builds a baseline system per cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	sim := des.New(cfg.Seed)
	s := &System{
		cfg:    cfg,
		sim:    sim,
		net:    simnet.New(sim, cfg.Topology, cfg.Latency),
		nodes:  make(map[simnet.NodeID]*node),
		coords: make(map[TxnID]*coord),
	}
	for i := 1; i <= cfg.N; i++ {
		id := simnet.NodeID(i)
		s.ids = append(s.ids, id)
		n := &node{sys: s, id: id, st: store.New(), votes: make(map[uint64]TxnID), aborted: make(map[TxnID]int)}
		s.nodes[id] = n
		s.net.Attach(id, n)
	}
	return s, nil
}

// Sim returns the simulator.
func (s *System) Sim() *des.Simulator { return s.sim }

// Network returns the simulated network.
func (s *System) Network() *simnet.Network { return s.net }

// Results returns the completed updates so far.
func (s *System) Results() []Result {
	out := make([]Result, len(s.results))
	copy(out, s.results)
	return out
}

// Outstanding reports in-flight updates.
func (s *System) Outstanding() int { return s.outstanding }

// Read serves a read from the local copy (read-one in all three baselines).
func (s *System) Read(id simnet.NodeID, key string) (store.Value, bool) {
	n := s.nodes[id]
	if n == nil {
		return store.Value{}, false
	}
	return n.st.Get(key)
}

// Submit initiates an update of key to val from the given home node.
func (s *System) Submit(home simnet.NodeID, key, val string) error {
	n := s.nodes[home]
	if n == nil {
		return fmt.Errorf("baseline: unknown home %d", home)
	}
	if key == "" {
		return fmt.Errorf("baseline: empty key")
	}
	s.txnSeq++
	txn := TxnID{Born: int64(s.sim.Now()), Home: home, Seq: s.txnSeq}
	c := &coord{
		sys: s, txn: txn, home: home, key: key, val: val,
		dispatched: s.sim.Now(),
	}
	s.coords[txn] = c
	s.outstanding++
	s.cfg.Trace.Addf(int64(s.sim.Now()), int(home), txn.String(), trace.RequestArrived, "%s=%s", key, val)
	c.start()
	return nil
}

// RunUntilDone advances the simulation until all submitted updates finish.
func (s *System) RunUntilDone(maxVirtual time.Duration) error {
	deadline := s.sim.Now().Add(maxVirtual)
	for s.outstanding > 0 {
		if s.sim.Now() > deadline {
			return fmt.Errorf("baseline(%v): %d updates still outstanding after %v", s.cfg.Kind, s.outstanding, maxVirtual)
		}
		if !s.sim.Step() {
			return fmt.Errorf("baseline(%v): event queue drained with %d updates outstanding", s.cfg.Kind, s.outstanding)
		}
	}
	return nil
}

// Settle runs the simulation d further so in-flight commits land.
func (s *System) Settle(d time.Duration) { s.sim.RunFor(d) }

// CheckConvergence verifies all replicas hold identical committed logs.
func (s *System) CheckConvergence() error {
	var ref []store.Update
	for _, id := range s.ids {
		log := s.nodes[id].st.Log()
		if ref == nil {
			ref = log
			continue
		}
		if len(log) != len(ref) {
			return fmt.Errorf("baseline: node %d has %d updates, node 1 has %d", id, len(log), len(ref))
		}
		for i := range log {
			if log[i] != ref[i] {
				return fmt.Errorf("baseline: node %d log[%d] = %+v, want %+v", id, i, log[i], ref[i])
			}
		}
	}
	return nil
}

// send routes a payload, short-circuiting node-local deliveries (a
// stationary coordinator talks to its co-located replica at memory speed,
// same as MARP's local interactions).
func (s *System) send(from, to simnet.NodeID, payload any, size int) {
	if from == to {
		s.nodes[to].Deliver(simnet.Message{From: from, To: to, Payload: payload, Size: size})
		return
	}
	s.net.Send(simnet.Message{From: from, To: to, Payload: payload, Size: size})
}

func (s *System) finish(r Result) {
	s.results = append(s.results, r)
	s.outstanding--
	delete(s.coords, r.Txn)
	s.cfg.Trace.Addf(int64(s.sim.Now()), int(r.Home), r.Txn.String(), trace.RequestDone,
		"alt=%v att=%v", r.LockLatency().Duration(), r.TotalLatency().Duration())
}

// node is one replica: the data store plus the per-sequence-slot vote state
// of Thomas's majority consensus, and the serialization queue when acting as
// the primary in PrimaryCopy.
type node struct {
	sys *System
	id  simnet.NodeID
	st  *store.Store
	// votes maps a sequence slot to the transaction this replica voted
	// for. At most one live vote per slot makes any two vote majorities
	// intersect, which is the protocol's safety core.
	votes map[uint64]TxnID
	// aborted records, per transaction, the highest proposal round its
	// coordinator has withdrawn; votes for those rounds are refused.
	aborted map[TxnID]int
	// backlogged commits waiting for earlier sequence numbers.
	backlog map[uint64]store.Update
	// primary-copy serialization queue (only used on the primary).
	primQ    []forward
	primBusy bool
}

// Deliver implements simnet.Handler.
func (n *node) Deliver(msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case *readReq:
		n.onReadReq(*m)
	case *voteReq:
		n.onVoteReq(*m)
	case *abortReq:
		n.onAbort(*m)
	case *commitReq:
		n.onCommitReq(*m)
	case *forward:
		n.onForward(*m)
	case *readRep:
		if c := n.sys.coords[m.Txn]; c != nil {
			c.onReadRep(*m)
		}
	case *voteRep:
		if c := n.sys.coords[m.Txn]; c != nil {
			c.onVoteRep(*m)
		}
	case *done:
		// Client notification only; the result was recorded at commit
		// time by the coordinator.
		_ = m
	}
}

func (n *node) onReadReq(m readReq) {
	v, _ := n.st.Get(m.Key)
	rep := &readRep{Txn: m.Txn, Round: m.Round, From: n.id, LastSeq: n.st.LastSeq(), Value: v}
	n.sys.send(n.id, m.From, rep, rep.WireSize())
}

// onVoteReq applies Thomas's voting rule: accept a proposal for the next
// sequence slot if this replica has not voted for a different live proposal
// on that slot; reject stale or conflicting proposals.
func (n *node) onVoteReq(m voteReq) {
	reply := func(ok bool, reason string) {
		rep := &voteRep{Txn: m.Txn, Round: m.Round, From: n.id, OK: ok, Reason: reason}
		n.sys.send(n.id, m.From, rep, rep.WireSize())
	}
	seq := m.Update.Seq
	switch {
	case m.Round <= n.aborted[m.Txn]:
		reply(false, "withdrawn")
	case seq <= n.st.LastSeq():
		reply(false, "stale")
	case seq != n.st.LastSeq()+1:
		reply(false, "future")
	default:
		if holder, ok := n.votes[seq]; ok && holder != m.Txn {
			reply(false, "slot-taken")
			return
		}
		n.votes[seq] = m.Txn
		reply(true, "")
	}
}

func (n *node) onAbort(m abortReq) {
	if m.Round > n.aborted[m.Txn] {
		n.aborted[m.Txn] = m.Round
	}
	for seq, holder := range n.votes {
		if holder == m.Txn {
			delete(n.votes, seq)
		}
	}
	n.st.Abort(m.Txn.String())
}

func (n *node) onCommitReq(m commitReq) {
	delete(n.aborted, m.Txn)
	if err := n.st.ApplyCommitted(m.Update); err == store.ErrSeqGap {
		if n.backlog == nil {
			n.backlog = make(map[uint64]store.Update)
		}
		n.backlog[m.Update.Seq] = m.Update
	}
	n.drain()
}

// drain applies backlogged commits in order and reaps the vote slots they
// settle.
func (n *node) drain() {
	for {
		if n.backlog == nil {
			break
		}
		u, ok := n.backlog[n.st.LastSeq()+1]
		if !ok {
			break
		}
		delete(n.backlog, u.Seq)
		if n.st.ApplyCommitted(u) != nil {
			break
		}
	}
	for seq := range n.votes {
		if seq <= n.st.LastSeq() {
			delete(n.votes, seq)
		}
	}
}

// onForward enqueues a forwarded request at the primary (PrimaryCopy).
func (n *node) onForward(m forward) {
	n.primQ = append(n.primQ, m)
	n.pumpPrimary()
}

// pumpPrimary serializes the primary's queue: one update at a time through
// vote/commit with the backups.
func (n *node) pumpPrimary() {
	if n.primBusy || len(n.primQ) == 0 {
		return
	}
	n.primBusy = true
	m := n.primQ[0]
	n.primQ = n.primQ[1:]
	c := n.sys.coords[m.Txn]
	if c == nil {
		n.primBusy = false
		n.pumpPrimary()
		return
	}
	c.lockAt = n.sys.sim.Now() // serialization point
	c.round++
	c.propose(n.st.LastSeq())
}
