package baseline

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
	"repro/internal/store"
)

func storeUpdate(txn TxnID, seq uint64) (u store.Update) {
	return store.Update{TxnID: txn.String(), Key: "k", Data: "v", Seq: seq}
}

func newSystem(t *testing.T, kind Kind, n int, seed int64) *System {
	t.Helper()
	s, err := New(Config{Kind: kind, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allKinds() []Kind { return []Kind{MCV, AvailableCopy, PrimaryCopy} }

func TestSingleUpdateEachKind(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			s := newSystem(t, kind, 5, 1)
			if err := s.Submit(2, "x", "hello"); err != nil {
				t.Fatal(err)
			}
			if err := s.RunUntilDone(time.Minute); err != nil {
				t.Fatal(err)
			}
			s.Settle(time.Second)
			if err := s.CheckConvergence(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				v, ok := s.Read(simnet.NodeID(i), "x")
				if !ok || v.Data != "hello" {
					t.Fatalf("node %d read = %+v %v", i, v, ok)
				}
			}
			res := s.Results()
			if len(res) != 1 || res[0].Failed {
				t.Fatalf("results = %+v", res)
			}
			if res[0].LockAt < res[0].Dispatched || res[0].DoneAt < res[0].LockAt {
				t.Fatalf("time travel: %+v", res[0])
			}
		})
	}
}

func TestConcurrentUpdatesSerializeEachKind(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			s := newSystem(t, kind, n, 2)
			for i := 1; i <= n; i++ {
				if err := s.Submit(simnet.NodeID(i), "x", fmt.Sprintf("v%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.RunUntilDone(2 * time.Minute); err != nil {
				t.Fatal(err)
			}
			s.Settle(2 * time.Second)
			if err := s.CheckConvergence(); err != nil {
				t.Fatal(err)
			}
			log := s.nodes[1].st.Log()
			if len(log) != n {
				t.Fatalf("log = %d updates, want %d", len(log), n)
			}
			for i, u := range log {
				if u.Seq != uint64(i+1) {
					t.Fatalf("log[%d].Seq = %d", i, u.Seq)
				}
			}
		})
	}
}

func TestHighContentionEachKind(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			const n, rounds = 5, 4
			s := newSystem(t, kind, n, 3)
			count := 0
			for r := 0; r < rounds; r++ {
				for i := 1; i <= n; i++ {
					count++
					home := simnet.NodeID(i)
					val := fmt.Sprintf("r%d-s%d", r, i)
					delay := time.Duration(count) * time.Millisecond
					s.Sim().After(delay, func() { _ = s.Submit(home, "hot", val) })
				}
			}
			s.Sim().RunFor(time.Duration(count+1) * time.Millisecond)
			if err := s.RunUntilDone(5 * time.Minute); err != nil {
				t.Fatal(err)
			}
			s.Settle(2 * time.Second)
			if err := s.CheckConvergence(); err != nil {
				t.Fatal(err)
			}
			if got := int(s.nodes[1].st.LastSeq()); got != n*rounds {
				t.Fatalf("LastSeq = %d, want %d", got, n*rounds)
			}
		})
	}
}

func TestPrimaryCopySerializesAtPrimary(t *testing.T) {
	s := newSystem(t, PrimaryCopy, 3, 4)
	for i := 1; i <= 3; i++ {
		if err := s.Submit(simnet.NodeID(i), "k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntilDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	s.Settle(time.Second)
	if err := s.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	// Requests from every home committed through the primary's serial
	// order, and each result's timeline is sane.
	for _, r := range s.Results() {
		if r.LockAt < r.Dispatched || r.DoneAt < r.LockAt {
			t.Fatalf("time travel: %+v", r)
		}
	}
}

func TestQuorumSizes(t *testing.T) {
	s := newSystem(t, MCV, 5, 5)
	c := &coord{sys: s, txn: TxnID{Born: 1, Home: 1, Seq: 1}, home: 1, key: "x"}
	if c.quorum() != 3 {
		t.Fatalf("MCV quorum = %d", c.quorum())
	}
	sAC := newSystem(t, AvailableCopy, 5, 5)
	cAC := &coord{sys: sAC, txn: TxnID{Born: 1, Home: 1, Seq: 1}, home: 1, key: "x"}
	if cAC.quorum() != 5 {
		t.Fatalf("AC quorum = %d", cAC.quorum())
	}
}

func TestVoteSlotExclusive(t *testing.T) {
	s := newSystem(t, MCV, 3, 7)
	n := s.nodes[1]
	a := TxnID{Born: 1, Home: 1, Seq: 1}
	b := TxnID{Born: 2, Home: 2, Seq: 2}
	var got []voteRep
	// Capture replies by submitting from node 1 itself (local replies go
	// through Deliver, which needs a coordinator; instead call handlers
	// directly and inspect the vote map).
	n.onVoteReq(voteReq{Txn: a, Round: 1, From: 1, Update: storeUpdate(a, 1)})
	if holder := n.votes[1]; holder != a {
		t.Fatalf("vote holder = %v", holder)
	}
	n.onVoteReq(voteReq{Txn: b, Round: 1, From: 1, Update: storeUpdate(b, 1)})
	if holder := n.votes[1]; holder != a {
		t.Fatalf("slot stolen: %v", n.votes[1])
	}
	n.onAbort(abortReq{Txn: a, From: 1})
	if _, held := n.votes[1]; held {
		t.Fatal("abort did not free the slot")
	}
	n.onVoteReq(voteReq{Txn: b, Round: 2, From: 1, Update: storeUpdate(b, 1)})
	if holder := n.votes[1]; holder != b {
		t.Fatalf("slot not granted after abort: %v", n.votes[1])
	}
	_ = got
}

func TestTxnIDOrdering(t *testing.T) {
	a := TxnID{Born: 1, Home: 1, Seq: 1}
	b := TxnID{Born: 1, Home: 2, Seq: 2}
	c := TxnID{Born: 2, Home: 1, Seq: 3}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("ordering wrong")
	}
	if a.String() != "T1.1" {
		t.Fatalf("String = %q", a.String())
	}
	if !(TxnID{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 3, Primary: 9}); err == nil {
		t.Fatal("out-of-range primary accepted")
	}
	if _, err := New(Config{N: 5, Topology: simnet.FullMesh(2)}); err == nil {
		t.Fatal("undersized topology accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSystem(t, MCV, 3, 6)
	if err := s.Submit(9, "x", "v"); err == nil {
		t.Fatal("unknown home accepted")
	}
	if err := s.Submit(1, "", "v"); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestKindString(t *testing.T) {
	if MCV.String() != "mcv-mp" || AvailableCopy.String() != "available-copy" || PrimaryCopy.String() != "primary-copy" {
		t.Fatal("Kind names wrong")
	}
}

// Property: random workloads on every baseline converge with gapless logs.
func TestPropertyBaselineConvergence(t *testing.T) {
	f := func(seed int64, kindRaw, opsRaw uint8) bool {
		kind := allKinds()[int(kindRaw)%3]
		ops := int(opsRaw%10) + 1
		s, err := New(Config{Kind: kind, N: 5, Seed: seed})
		if err != nil {
			return false
		}
		rng := s.Sim().Rand()
		for i := 0; i < ops; i++ {
			i := i
			home := simnet.NodeID(rng.Intn(5) + 1)
			delay := time.Duration(rng.Intn(40)) * time.Millisecond
			s.Sim().After(delay, func() {
				_ = s.Submit(home, "k", fmt.Sprintf("v%d", i))
			})
		}
		s.Sim().RunFor(50 * time.Millisecond)
		if err := s.RunUntilDone(5 * time.Minute); err != nil {
			t.Log(err)
			return false
		}
		s.Settle(2 * time.Second)
		if err := s.CheckConvergence(); err != nil {
			t.Log(err)
			return false
		}
		return int(s.nodes[1].st.LastSeq()) == ops
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
