package realtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/des"
)

func TestDriverFiresScheduledEvents(t *testing.T) {
	sim := des.New(1)
	var mu sync.Mutex
	fired := 0
	// 100x speed: 50ms of virtual time elapses in ~0.5ms of wall time.
	for i := 1; i <= 5; i++ {
		i := i
		sim.After(time.Duration(i)*10*time.Millisecond, func() {
			mu.Lock()
			fired = i
			mu.Unlock()
		})
	}
	d := NewDriver(sim, 100)
	d.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := fired == 5
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events did not fire; fired=%d", fired)
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
}

func TestDriverDoRunsOnLoop(t *testing.T) {
	sim := des.New(1)
	d := NewDriver(sim, 1000)
	d.Start()
	defer d.Stop()
	var now des.Time
	if err := d.Do(func() { now = sim.Now() }); err != nil {
		t.Fatal(err)
	}
	_ = now // any value is fine; the point is it did not race or hang
	// Injections scheduled from Do run in order.
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.Do(func() { order = append(order, i) })
		}()
	}
	wg.Wait()
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 injections", len(order))
	}
}

func TestDriverStopIdempotentAndUnblocks(t *testing.T) {
	sim := des.New(1)
	d := NewDriver(sim, 1)
	d.Start()
	d.Stop()
	d.Stop() // no panic
	if err := d.Do(func() {}); err == nil {
		t.Fatal("Do after Stop should fail")
	}
}

func TestDriverSpeedScalesVirtualTime(t *testing.T) {
	sim := des.New(1)
	d := NewDriver(sim, 1000) // 1000 virtual seconds per wall second
	d.Start()
	defer d.Stop()
	time.Sleep(50 * time.Millisecond)
	var v time.Duration
	if err := d.Do(func() { v = sim.Now().Duration() }); err != nil {
		t.Fatal(err)
	}
	// ~50 virtual seconds should have elapsed; accept a broad window for
	// slow CI machines.
	if v < 10*time.Second {
		t.Fatalf("virtual clock advanced only %v at 1000x", v)
	}
}
