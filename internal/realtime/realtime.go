// Package realtime paces a deterministic discrete-event simulation against
// the wall clock, turning the simulated MARP cluster into a live service:
// events fire when their virtual timestamps come due, and other goroutines
// (TCP connection handlers, signal handlers) inject work onto the simulation
// loop without breaking its single-threaded discipline.
//
// The Driver owns the simulator: after Start, all access to the simulator
// and everything scheduled on it must go through Inject/Do.
package realtime

import (
	"errors"
	"sync"
	"time"

	"repro/internal/des"
)

// ErrStopped is returned by Do after the driver has shut down.
var ErrStopped = errors.New("realtime: driver stopped")

// Driver runs a des.Simulator in real time. Speed scales the mapping
// between wall time and virtual time: with Speed == 10, ten virtual seconds
// elapse per wall-clock second. Speed <= 0 defaults to 1.
type Driver struct {
	sim   *des.Simulator
	speed float64

	mu     sync.Mutex
	inbox  []func()
	wake   chan struct{}
	done   chan struct{}
	stop   chan struct{}
	closed bool
}

// NewDriver wraps sim. The caller must not touch sim directly once Start
// has been called.
func NewDriver(sim *des.Simulator, speed float64) *Driver {
	if speed <= 0 {
		speed = 1
	}
	return &Driver{
		sim:   sim,
		speed: speed,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
}

// Start launches the pacing loop on its own goroutine.
func (d *Driver) Start() {
	go d.run()
}

// Stop shuts the loop down and waits for it to exit. Safe to call more than
// once.
func (d *Driver) Stop() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.stop)
	}
	d.mu.Unlock()
	<-d.done
}

// Inject schedules fn to run on the simulation loop at the current virtual
// time. It never blocks. Injections after Stop are discarded.
func (d *Driver) Inject(fn func()) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.inbox = append(d.inbox, fn)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Do runs fn on the simulation loop and waits for it to finish — the
// synchronous variant of Inject, used by request/response handlers.
func (d *Driver) Do(fn func()) error {
	ch := make(chan struct{})
	d.Inject(func() {
		fn()
		close(ch)
	})
	select {
	case <-ch:
		return nil
	case <-d.done:
		// The loop exited; the injection may never run.
		select {
		case <-ch:
			return nil
		default:
			return ErrStopped
		}
	}
}

// run is the pacing loop: it advances virtual time in step with the wall
// clock, fires due events, and executes injected work.
func (d *Driver) run() {
	defer close(d.done)
	start := time.Now()
	base := d.sim.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Execute pending injections first: they represent "now".
		d.mu.Lock()
		inbox := d.inbox
		d.inbox = nil
		d.mu.Unlock()
		for _, fn := range inbox {
			fn()
		}

		// Fire every event due at the current wall-clock instant.
		elapsed := time.Since(start)
		target := base.Add(time.Duration(float64(elapsed) * d.speed))
		d.sim.RunUntil(target)

		// Sleep until the next event is due or an injection arrives.
		var wait time.Duration
		if next, ok := d.sim.NextEvent(); ok {
			wait = time.Duration(float64(next.Sub(target)) / d.speed)
			if wait < 50*time.Microsecond {
				wait = 50 * time.Microsecond
			}
		} else {
			wait = 10 * time.Millisecond // idle; injections wake us sooner
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-d.stop:
			return
		case <-d.wake:
		case <-timer.C:
		}
	}
}
