package optimistic_test

// Protocol tests run the optimistic cluster under the deterministic
// simulation engine (via desengine, the same assembly the harness uses):
// convergence to one stable prefix, rollback/abort accounting, and the
// crash-recovery safety property behind DESIGN.md invariant 15.

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/desengine"
	"repro/internal/disk"
	"repro/internal/optimistic"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/wire"
)

func newSimCluster(t *testing.T, seed int64, n, shards int, durable bool) *desengine.OptCluster {
	t.Helper()
	cfg := optimistic.Config{N: n, Shards: shards, GossipInterval: 20 * time.Millisecond}
	if durable {
		cfg.Durability = &optimistic.DurabilityConfig{
			Backend: func(runtime.NodeID) disk.Backend { return disk.NewMem() },
		}
	}
	cl, err := desengine.NewOptimistic(desengine.OptConfig{Seed: seed, Cluster: cfg})
	if err != nil {
		t.Fatalf("NewOptimistic: %v", err)
	}
	return cl
}

func drain(t *testing.T, cl *desengine.OptCluster) {
	t.Helper()
	if err := cl.RunUntilDone(10 * time.Minute); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	if err := cl.CheckConvergence(); err != nil {
		t.Fatalf("CheckConvergence: %v", err)
	}
}

// TestConvergesToOneStablePrefix: concurrent submits from every node end
// as one identical, digest-verified stable prefix everywhere.
func TestConvergesToOneStablePrefix(t *testing.T) {
	const n = 5
	cl := newSimCluster(t, 1, n, 2, false)
	for i := 0; i < 20; i++ {
		home := runtime.NodeID(i%n + 1)
		if _, err := cl.Submit(home, fmt.Sprintf("key-%d", i%7), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	drain(t, cl)
	ref, refN, err := cl.StableDigest(1)
	if err != nil {
		t.Fatal(err)
	}
	if refN != 20 {
		t.Fatalf("stable length %d, want 20", refN)
	}
	for id := runtime.NodeID(2); id <= n; id++ {
		d, dn, err := cl.StableDigest(id)
		if err != nil {
			t.Fatal(err)
		}
		if d != ref || dn != refN {
			t.Fatalf("node %d digest %s/%d, node 1 has %s/%d", id, d, dn, ref, refN)
		}
	}
	// Every outcome stabilized, none aborted, and stability follows the
	// tentative commit.
	for _, o := range cl.Outcomes() {
		if o.Aborted || o.StableAt == 0 {
			t.Fatalf("outcome %+v not stable", o)
		}
		if o.StableAt < o.TentativeAt {
			t.Fatalf("outcome %s stable before tentative", o.Txn)
		}
	}
}

// TestTentativeReadThenStable: a submit is readable tentatively at its
// origin immediately, and becomes the stable value after reconciliation.
func TestTentativeReadThenStable(t *testing.T) {
	cl := newSimCluster(t, 2, 3, 1, false)
	if _, err := cl.Submit(1, "x", "hello"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := cl.Read(1, "x", true); !ok || v.Data != "hello" {
		t.Fatalf("tentative read = %+v %v, want hello", v, ok)
	}
	if _, ok, _ := cl.Read(1, "x", false); ok {
		t.Fatal("stable read visible before election")
	}
	drain(t, cl)
	for id := runtime.NodeID(1); id <= 3; id++ {
		if v, ok, _ := cl.Read(id, "x", false); !ok || v.Data != "hello" {
			t.Fatalf("node %d stable read = %+v %v, want hello", id, v, ok)
		}
	}
}

// TestRollbacksCounted: same-key concurrent submits at different origins
// force at least one replica to re-order its overlay, and the instrument
// sees it.
func TestRollbacksCounted(t *testing.T) {
	cl := newSimCluster(t, 3, 3, 1, false)
	if _, err := cl.Submit(1, "k", "from-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(2, "k", "from-2"); err != nil {
		t.Fatal(err)
	}
	drain(t, cl)
	// Both stamped 1; the tie-break orders node 1's first, so node 2 (and
	// anyone who heard node 2 first) rolled back.
	if got := cl.Metrics().Value("marp.opt.rollbacks"); got < 1 {
		t.Fatalf("marp.opt.rollbacks = %v, want >= 1", got)
	}
	for id := runtime.NodeID(1); id <= 3; id++ {
		if v, ok, _ := cl.Read(id, "k", false); !ok || v.Data != "from-2" {
			t.Fatalf("node %d stable k = %+v %v, want last-writer from-2", id, v, ok)
		}
	}
}

// TestCASGuardElectsOneWinner: two replicas racing GuardUnwritten on one
// key elect the same single winner everywhere; the loser aborts.
func TestCASGuardElectsOneWinner(t *testing.T) {
	cl := newSimCluster(t, 4, 3, 1, false)
	t1, err := cl.SubmitCAS(1, "lock", "owner-1", optimistic.GuardUnwritten)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cl.SubmitCAS(2, "lock", "owner-2", optimistic.GuardUnwritten)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, cl)
	var winner, loser optimistic.Outcome
	for _, o := range cl.Outcomes() {
		switch {
		case o.Aborted:
			loser = o
		case o.StableAt != 0:
			winner = o
		}
	}
	if winner.Txn != t1 || loser.Txn != t2 {
		t.Fatalf("winner %s loser %s, want %s / %s (tie-break by origin)", winner.Txn, loser.Txn, t1, t2)
	}
	if got := cl.Metrics().Value("marp.opt.aborts"); got != 3 {
		t.Fatalf("marp.opt.aborts = %v, want 3 (one loser, elected at each of 3 replicas)", got)
	}
	for id := runtime.NodeID(1); id <= 3; id++ {
		if v, ok, _ := cl.Read(id, "lock", false); !ok || v.Data != "owner-1" {
			t.Fatalf("node %d lock = %+v %v, want owner-1", id, v, ok)
		}
	}
}

// TestCrashWithoutDurabilityRefused: a volatile optimistic replica holds
// the only copy of its own actions; Crash must refuse rather than lose it.
func TestCrashWithoutDurabilityRefused(t *testing.T) {
	cl := newSimCluster(t, 5, 3, 1, false)
	if err := cl.Crash(2); err == nil {
		t.Fatal("Crash succeeded without durability")
	}
}

// stableLogs snapshots every shard's stable prefix at one node.
func stableLogs(t *testing.T, cl *desengine.OptCluster, id runtime.NodeID, shards int) [][]store.Update {
	t.Helper()
	out := make([][]store.Update, shards)
	for s := 0; s < shards; s++ {
		log, err := cl.StableLog(id, s)
		if err != nil {
			t.Fatalf("StableLog(%d, %d): %v", id, s, err)
		}
		out[s] = log
	}
	return out
}

// TestQuickStablePrefixSurvivesCrash is the testing/quick property behind
// invariant 15: kill -9 a replica mid-run (power cut past the last fsync),
// recover it, keep submitting — the stable prefix it had promoted before
// the crash is a prefix of every final stable log, nothing reordered or
// dropped, and the cluster still converges.
func TestQuickStablePrefixSurvivesCrash(t *testing.T) {
	const (
		n      = 3
		shards = 2
		victim = runtime.NodeID(2)
	)
	prop := func(seed int64) bool {
		seed &= 0xffff // keep scenario space small and reproducible
		cl := newSimCluster(t, seed, n, shards, true)
		submit := func(i int) {
			home := runtime.NodeID(i%n + 1)
			if cl.Down(home) {
				home = runtime.NodeID(int(home)%n + 1) // next node up
			}
			key := fmt.Sprintf("k%d", i%5)
			if _, err := cl.Submit(home, key, fmt.Sprintf("s%d-i%d", seed, i)); err != nil {
				t.Errorf("seed %d: Submit: %v", seed, err)
			}
		}
		// Phase 1: load, then let elections run mid-stream.
		for i := 0; i < 8; i++ {
			submit(i)
		}
		cl.Settle(time.Duration(50+seed%200) * time.Millisecond)
		// Power-cut the victim mid-election and snapshot what it had
		// promoted; barrier'd stable records must all survive.
		preCrash := stableLogs(t, cl, victim, shards)
		if err := cl.Crash(victim); err != nil {
			t.Errorf("seed %d: Crash: %v", seed, err)
			return false
		}
		// Phase 2: the survivors keep committing around the crash.
		for i := 8; i < 14; i++ {
			submit(i)
		}
		cl.Settle(time.Duration(30+seed%100) * time.Millisecond)
		if err := cl.Recover(victim); err != nil {
			t.Errorf("seed %d: Recover: %v", seed, err)
			return false
		}
		// The recovered replica must come back with its stable prefix
		// intact before any new reconciliation touches it.
		postRecover := stableLogs(t, cl, victim, shards)
		for s := 0; s < shards; s++ {
			if len(postRecover[s]) < len(preCrash[s]) {
				t.Errorf("seed %d: shard %d: recovery dropped stable entries (%d -> %d)", seed, s, len(preCrash[s]), len(postRecover[s]))
				return false
			}
			for i, u := range preCrash[s] {
				if postRecover[s][i] != u {
					t.Errorf("seed %d: shard %d: stable[%d] changed across crash: %+v -> %+v", seed, s, i, u, postRecover[s][i])
					return false
				}
			}
		}
		// Phase 3: more load after recovery, then full drain.
		for i := 14; i < 18; i++ {
			submit(i)
		}
		if err := cl.RunUntilDone(10 * time.Minute); err != nil {
			t.Errorf("seed %d: RunUntilDone: %v", seed, err)
			return false
		}
		if err := cl.CheckConvergence(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		// Invariant 15 end to end: the pre-crash prefix is a prefix of the
		// converged final log at every node.
		for _, id := range cl.LocalNodes() {
			final := stableLogs(t, cl, id, shards)
			for s := 0; s < shards; s++ {
				if len(final[s]) < len(preCrash[s]) {
					t.Errorf("seed %d: node %d shard %d: final stable shorter than pre-crash prefix", seed, id, s)
					return false
				}
				for i, u := range preCrash[s] {
					if final[s][i] != u {
						t.Errorf("seed %d: node %d shard %d: stable[%d] reordered: %+v -> %+v", seed, id, s, i, u, final[s][i])
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, ag *optimistic.Recon) *optimistic.Recon {
	t.Helper()
	buf, err := wire.AppendMessage(nil, ag)
	if err != nil {
		t.Fatalf("AppendMessage: %v", err)
	}
	r := wire.NewReader(buf)
	v, err := wire.DecodeMessage(r)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	got, ok := v.(*optimistic.Recon)
	if !ok {
		t.Fatalf("decoded %T, want *optimistic.Recon", v)
	}
	return got
}

// TestReconWireRoundTrip: the reconciliation agent survives its wire codec
// byte-exactly (the live fabric migrates it as encoded state).
func TestReconWireRoundTrip(t *testing.T) {
	// Covered via the cluster path too, but the codec deserves a direct
	// check with every field populated.
	ag := &optimistic.Recon{
		From: 2, Seq: 7,
		Hops: []runtime.NodeID{3, 1}, Hop: 1,
		Know: []optimistic.KnowEntry{
			{Node: 2, Clock: 42, Counts: []uint64{3, 0}, Have: [][]uint64{{1, 2, 3}, {0, 0, 1}}},
			{Node: 1, Clock: 40, Counts: []uint64{1, 1}, Have: [][]uint64{{1, 0, 0}, {1, 0, 0}}},
		},
		Carry: []optimistic.Action{
			{Origin: 2, OSeq: 3, Shard: 0, Stamp: 41, Key: "k", Data: "v", Guard: optimistic.GuardUnwritten, Deps: []string{"o001-s000-000000001"}},
			{Origin: 1, OSeq: 1, Shard: 1, Stamp: 2, Key: "q", Data: ""},
		},
	}
	if ag.WireSize() <= 0 {
		t.Fatal("WireSize not positive")
	}
	got := roundTrip(t, ag)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ag) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ag)
	}
}
