package optimistic

import (
	"fmt"
	"sort"

	"repro/internal/durable"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
)

// replica is one optimistic replica's protocol state. Like the pessimistic
// Server it is single-threaded: the engine's execution context (simulation
// loop or live actor goroutine) drives every method.
type replica struct {
	c    *Cluster
	id   runtime.NodeID
	down bool

	clock int64    // Lamport clock; stamps submits, merges on receive
	oseq  []uint64 // per shard: own actions issued (contiguous, 1-based)

	st   []*store.Staged     // per shard: the two-tier store
	meta []map[string]Action // per shard: TxnID -> action, while tentative

	// hist[s][o-1] is the contiguously delivered prefix of origin o's
	// actions on shard s, in OSeq order — simultaneously the delivery
	// counter (its length), the evidence behind the stability frontier,
	// and the source agents carry from. Append-only between crashes.
	hist [][][]Action
	// hold[s][o] parks out-of-order arrivals until the gap fills.
	hold []map[runtime.NodeID]map[uint64]Action

	// know holds the freshest self-report seen from each other origin
	// (newest-clock-wins); satisfied[s][o-1] caches the highest clock of
	// o's reports this replica has fully covered by deliveries — monotone,
	// so a newer-but-not-yet-covered report never regresses the frontier.
	know      map[runtime.NodeID]KnowEntry
	satisfied [][]int64

	journal *durable.OptJournal
	launch  uint64 // reconciliation agents launched (agent Seq)
	aborted uint64 // election losers discarded here
}

func newReplica(c *Cluster, id runtime.NodeID) *replica {
	r := &replica{
		c:    c,
		id:   id,
		oseq: make([]uint64, c.cfg.Shards),
		know: make(map[runtime.NodeID]KnowEntry),
	}
	r.resetVolatile()
	return r
}

// resetVolatile (re)builds every structure a crash erases.
func (r *replica) resetVolatile() {
	sh, n := r.c.cfg.Shards, r.c.cfg.N
	r.clock = 0
	r.oseq = make([]uint64, sh)
	r.st = make([]*store.Staged, sh)
	r.meta = make([]map[string]Action, sh)
	r.hist = make([][][]Action, sh)
	r.hold = make([]map[runtime.NodeID]map[uint64]Action, sh)
	r.satisfied = make([][]int64, sh)
	for s := 0; s < sh; s++ {
		r.st[s] = store.NewStaged()
		r.meta[s] = make(map[string]Action)
		r.hist[s] = make([][]Action, n)
		r.hold[s] = make(map[runtime.NodeID]map[uint64]Action)
		r.satisfied[s] = make([]int64, n)
	}
	r.know = make(map[runtime.NodeID]KnowEntry)
}

func recordOf(a Action) durable.OptRecord {
	return durable.OptRecord{U: a.Update(), Guard: a.Guard, Deps: a.Deps}
}

// actionOf reverses recordOf: the identity fields come back out of the
// canonical TxnID encoding.
func actionOf(rec durable.OptRecord) (Action, error) {
	origin, s, oseq, err := ParseTxnID(rec.U.TxnID)
	if err != nil {
		return Action{}, err
	}
	return Action{
		Origin: origin, OSeq: oseq, Shard: s, Stamp: rec.U.Stamp,
		Key: rec.U.Key, Data: rec.U.Data, Guard: rec.Guard, Deps: rec.Deps,
	}, nil
}

// submit commits a new action tentatively: stamp it, stage it, journal it
// behind the own-tentative barrier. The client's answer does not wait for
// anything wide-area — this call IS the optimistic protocol's ALT.
func (r *replica) submit(key, data, guard string) (Action, error) {
	if r.down {
		return Action{}, fmt.Errorf("optimistic: node %d is down", r.id)
	}
	s := shard.Of(key, r.c.cfg.Shards)
	// The notAfter edges: every same-key tentative this replica has staged
	// must order before the new action, which Lamport stamping guarantees.
	var deps []string
	for _, u := range r.st[s].Overlay() {
		if u.Key == key {
			deps = append(deps, u.TxnID)
		}
	}
	r.clock++
	r.oseq[s]++
	a := Action{
		Origin: r.id, OSeq: r.oseq[s], Shard: s, Stamp: r.clock,
		Key: key, Data: data, Guard: guard, Deps: deps,
	}
	r.accept(a)
	return a, nil
}

// deliver ingests a foreign action, enforcing contiguous per-(shard,
// origin) delivery: duplicates drop, gaps park in the holdback until the
// missing OSeq arrives. Contiguity is what makes the delivery counters
// valid stability evidence.
func (r *replica) deliver(a Action) {
	if a.Origin == r.id {
		return // own actions are never re-learned from peers
	}
	if a.Shard < 0 || a.Shard >= r.c.cfg.Shards || a.Origin < 1 || int(a.Origin) > r.c.cfg.N {
		return // malformed; ignore like any corrupt datagram
	}
	s, o := a.Shard, int(a.Origin)-1
	have := uint64(len(r.hist[s][o]))
	switch {
	case a.OSeq <= have:
		return
	case a.OSeq > have+1:
		hb := r.hold[s][a.Origin]
		if hb == nil {
			hb = make(map[uint64]Action)
			r.hold[s][a.Origin] = hb
		}
		hb[a.OSeq] = a
		return
	}
	r.accept(a)
	hb := r.hold[s][a.Origin]
	for {
		next := uint64(len(r.hist[s][o])) + 1
		na, ok := hb[next]
		if !ok {
			return
		}
		delete(hb, next)
		r.accept(na)
	}
}

// accept stages an in-order action: Lamport merge, history append, overlay
// insertion, journal. Own actions journal behind the advertisement barrier
// (see durable.OptJournal.Tentative); foreign ones are re-fetchable and
// need no barrier.
func (r *replica) accept(a Action) {
	s := a.Shard
	if a.Stamp > r.clock {
		r.clock = a.Stamp
	}
	// Debug assert on the constraint graph: every notAfter edge must sort
	// strictly before the action in the candidate order. Lamport stamping
	// makes this a theorem; a violation is a protocol bug, and under
	// simulation the panic is the oracle.
	au := a.Update()
	for _, dep := range a.Deps {
		if da, ok := r.meta[s][dep]; ok && !store.StagedLess(da.Update(), au) {
			panic(fmt.Sprintf("optimistic: node %d: %s carries notAfter dep %s that does not precede it", r.id, a.TxnID(), dep))
		}
	}
	r.hist[s][a.Origin-1] = append(r.hist[s][a.Origin-1], a)
	if _, err := r.st[s].Stage(au); err != nil {
		panic(fmt.Sprintf("optimistic: node %d: %v", r.id, err))
	}
	r.meta[s][au.TxnID] = a
	if r.journal != nil {
		r.journal.Tentative(recordOf(a), a.Origin == r.id)
	}
}

// bound computes shard s's stability frontier: the highest Lamport clock B
// such that this replica provably holds every action any origin stamped at
// or below B. Zero (promote nothing) until every origin has reported.
func (r *replica) bound(s int) int64 {
	b := int64(-1)
	for o := 1; o <= r.c.cfg.N; o++ {
		var sat int64
		if runtime.NodeID(o) == r.id {
			sat = r.clock // every own action is held, by definition
		} else {
			k, ok := r.know[runtime.NodeID(o)]
			if !ok {
				return 0
			}
			if s < len(k.Counts) && uint64(len(r.hist[s][o-1])) >= k.Counts[s] && k.Clock > r.satisfied[s][o-1] {
				r.satisfied[s][o-1] = k.Clock
			}
			sat = r.satisfied[s][o-1]
		}
		if b < 0 || sat < b {
			b = sat
		}
	}
	if b < 0 {
		b = 0
	}
	return b
}

// guardFn evaluates CAS constraints against the stable state as the
// election applies the batch — deterministic at every replica because both
// the stable state and the batch order are.
func (r *replica) guardFn(s int) func(store.Update) bool {
	return func(u store.Update) bool {
		switch g := r.meta[s][u.TxnID].Guard; g {
		case "":
			return true
		case GuardUnwritten:
			return r.st[s].StableWriter(u.Key) == ""
		default:
			return r.st[s].StableWriter(u.Key) == g
		}
	}
}

// tryPromote runs the election on every shard whose frontier has advanced,
// promoting the candidate prefix into the stable log and aborting guard
// losers. Stable promotions journal behind a commit barrier (invariant 15).
func (r *replica) tryPromote() {
	now := r.c.eng.Now()
	for s := range r.st {
		b := r.bound(s)
		if b <= 0 {
			continue
		}
		promoted, aborted := r.st[s].PromoteUpTo(b, r.guardFn(s))
		for _, u := range promoted {
			a := r.meta[s][u.TxnID]
			if r.journal != nil {
				r.journal.Stable(durable.OptRecord{U: u, Guard: a.Guard, Deps: a.Deps})
			}
			delete(r.meta[s], u.TxnID)
			r.c.noteStable(r.id, u.TxnID, now)
		}
		for _, u := range aborted {
			if r.journal != nil {
				r.journal.Abort(u.TxnID)
			}
			delete(r.meta[s], u.TxnID)
			r.aborted++
			r.c.noteAborted(r.id, u.TxnID)
		}
	}
}

// selfKnow builds this replica's fresh self-report. The clock high-water
// barrier runs first: nothing may advertise a clock the journal could
// forget.
func (r *replica) selfKnow() KnowEntry {
	if r.journal != nil {
		r.journal.Clock(r.clock)
	}
	counts := make([]uint64, len(r.oseq))
	copy(counts, r.oseq)
	have := make([][]uint64, r.c.cfg.Shards)
	for s := range have {
		row := make([]uint64, r.c.cfg.N)
		for o := 0; o < r.c.cfg.N; o++ {
			row[o] = uint64(len(r.hist[s][o]))
		}
		have[s] = row
	}
	return KnowEntry{Node: r.id, Clock: r.clock, Counts: counts, Have: have}
}

// knowSnapshot is the knowledge table an agent departs with: the fresh
// self-report plus the freshest report held for every other origin, in
// deterministic node order. Entries are shared, never copied — they are
// immutable by convention (see KnowEntry).
func (r *replica) knowSnapshot() []KnowEntry {
	out := make([]KnowEntry, 0, r.c.cfg.N)
	out = append(out, r.selfKnow())
	for o := 1; o <= r.c.cfg.N; o++ {
		id := runtime.NodeID(o)
		if id == r.id {
			continue
		}
		if k, ok := r.know[id]; ok {
			out = append(out, k)
		}
	}
	return out
}

// pickCarry packs the actions the next hop is estimated to be missing,
// judged from its freshest self-report (everything, if it has never
// reported). A node's own actions are never carried back to it — it holds
// them durably by the submit barrier. Estimates can be stale both ways:
// over-delivery is dropped idempotently, under-delivery heals next round.
func (r *replica) pickCarry(to runtime.NodeID) []Action {
	est, known := r.know[to]
	var carry []Action
	for s := 0; s < r.c.cfg.Shards; s++ {
		for o := 0; o < r.c.cfg.N; o++ {
			if runtime.NodeID(o+1) == to {
				continue
			}
			var from uint64
			if known && s < len(est.Have) && o < len(est.Have[s]) {
				from = est.Have[s][o]
			}
			list := r.hist[s][o]
			for q := from; q < uint64(len(list)); q++ {
				if len(carry) >= r.c.cfg.MaxCarry {
					return carry
				}
				carry = append(carry, list[q])
			}
		}
	}
	return carry
}

// launchGossip starts one reconciliation agent on the ring itinerary.
func (r *replica) launchGossip() {
	if r.down || r.c.cfg.N < 2 {
		return
	}
	hops := ring(r.id, r.c.cfg.N)
	ag := &Recon{
		From: r.id, Seq: r.launch, Hops: hops, Hop: 0,
		Know: r.knowSnapshot(), Carry: r.pickCarry(hops[0]),
	}
	r.launch++
	r.c.mAgents.Inc()
	r.c.send(r.id, hops[0], ag)
}

// onRecon hosts a visiting reconciliation agent: merge its knowledge,
// deliver its cargo, run the election, and — unless this was the last hop —
// re-pack a NEW agent for the next hop. The received agent is never
// mutated or resent, so a fault model that duplicates the migration merely
// spawns a second, equally idempotent agent.
func (r *replica) onRecon(ag *Recon) {
	if r.down {
		return
	}
	for _, e := range ag.Know {
		if e.Node == r.id {
			continue // nobody knows this replica better than itself
		}
		if cur, ok := r.know[e.Node]; !ok || e.Clock > cur.Clock {
			r.know[e.Node] = e
		}
		if e.Clock > r.clock {
			r.clock = e.Clock // Lamport merge: future submits stamp above
		}
	}
	for _, a := range ag.Carry {
		r.deliver(a)
	}
	r.tryPromote()
	r.c.mHops.Inc()
	next := ag.Hop + 1
	if next >= len(ag.Hops) {
		return // itinerary complete; the agent dies here
	}
	to := ag.Hops[next]
	fwd := &Recon{
		From: ag.From, Seq: ag.Seq, Hops: ag.Hops, Hop: next,
		Know: r.knowSnapshot(), Carry: r.pickCarry(to),
	}
	r.c.send(r.id, to, fwd)
}

// crash fail-stops the replica: volatile state is abandoned (restore
// rebuilds from the journal), the journal handle dies un-synced.
func (r *replica) crash() {
	r.down = true
	if r.journal != nil {
		r.journal.Kill()
		r.journal = nil
	}
}

// restore rebuilds the replica from its replayed journal state. The
// invariants it relies on: the journal's record order preserves the stable
// prefix order; own-tentative barriers make the own history exact; foreign
// histories may have lost a suffix (re-fetched from peers after the fresh
// self-report advertises the decreased delivery vector); ClockHi rides
// above any clock ever advertised.
func (r *replica) restore(st *durable.OptState) error {
	r.resetVolatile()
	if st == nil {
		return nil
	}
	r.clock = st.ClockHi
	// Every surviving action, whatever its fate, re-enters the history so
	// the delivery counters and gossip carry see it.
	byOrigin := make(map[[2]int][]Action) // (shard, origin) -> actions
	note := func(rec durable.OptRecord) (Action, error) {
		a, err := actionOf(rec)
		if err != nil {
			return Action{}, err
		}
		if a.Stamp > r.clock {
			r.clock = a.Stamp
		}
		k := [2]int{a.Shard, int(a.Origin)}
		byOrigin[k] = append(byOrigin[k], a)
		return a, nil
	}
	for _, rec := range st.Stable {
		a, err := note(rec)
		if err != nil {
			return err
		}
		if err := r.st[a.Shard].RestoreStable(rec.U); err != nil {
			return fmt.Errorf("optimistic: node %d: %w", r.id, err)
		}
	}
	// Overlay entries re-stage in candidate order (the journal holds them
	// in arrival order); aborted ones only rejoin the history.
	overlay := make([]Action, 0, len(st.Overlay))
	for _, rec := range st.Overlay {
		a, err := note(rec)
		if err != nil {
			return err
		}
		overlay = append(overlay, a)
	}
	sortActions(overlay)
	for _, a := range overlay {
		if _, err := r.st[a.Shard].Stage(a.Update()); err != nil {
			return fmt.Errorf("optimistic: node %d: %w", r.id, err)
		}
		r.meta[a.Shard][a.TxnID()] = a
	}
	for _, rec := range st.Aborted {
		if _, err := note(rec); err != nil {
			return err
		}
		r.aborted++
	}
	// Histories must be dense 1..k per (shard, origin): the journal is
	// prefix-truncated by a crash, and deliveries were journaled in order,
	// so any gap is corruption.
	for k, list := range byOrigin {
		sortActions(list)
		for i, a := range list {
			if a.OSeq != uint64(i+1) {
				return fmt.Errorf("optimistic: node %d: shard %d origin %d history gap at oseq %d", r.id, k[0], k[1], a.OSeq)
			}
		}
		r.hist[k[0]][k[1]-1] = list
	}
	r.oseq = make([]uint64, r.c.cfg.Shards)
	for s := 0; s < r.c.cfg.Shards; s++ {
		r.oseq[s] = uint64(len(r.hist[s][r.id-1]))
	}
	return nil
}

// sortActions orders by OSeq within one origin or by the candidate order
// across origins — StagedLess on the updates covers both (stamps are
// monotone in OSeq at one origin).
func sortActions(list []Action) {
	sort.Slice(list, func(i, j int) bool {
		return store.StagedLess(list[i].Update(), list[j].Update())
	})
}
