package optimistic

import (
	"repro/internal/runtime"
	"repro/internal/wire"
)

// Wire-codec tag for the reconciliation agent (DESIGN.md §11). The
// pessimistic message set owns tags 1–41; the optimistic protocol starts
// at 50. Tags are part of the wire format: never renumber.
const tagRecon = 50

func init() {
	wire.Register(tagRecon, &Recon{}, encRecon, decRecon)
	// The live fabric's gob path (agent WireState nesting) also needs the
	// concrete type known.
	runtime.RegisterWireType(&Recon{})
}

func appendAction(b []byte, a Action) []byte {
	b = wire.AppendVarint(b, int64(a.Origin))
	b = wire.AppendUvarint(b, a.OSeq)
	b = wire.AppendVarint(b, int64(a.Shard))
	b = wire.AppendVarint(b, a.Stamp)
	b = wire.AppendString(b, a.Key)
	b = wire.AppendString(b, a.Data)
	b = wire.AppendString(b, a.Guard)
	b = wire.AppendUvarint(b, uint64(len(a.Deps)))
	for _, dep := range a.Deps {
		b = wire.AppendString(b, dep)
	}
	return b
}

func decodeAction(r *wire.Reader) Action {
	a := Action{
		Origin: runtime.NodeID(r.Varint()),
		OSeq:   r.Uvarint(),
		Shard:  int(r.Varint()),
		Stamp:  r.Varint(),
		Key:    r.String(),
		Data:   r.String(),
		Guard:  r.String(),
	}
	if n := r.Count(1); n > 0 {
		a.Deps = make([]string, 0, n)
		for i := 0; i < n; i++ {
			a.Deps = append(a.Deps, r.String())
		}
	}
	return a
}

func appendKnow(b []byte, e KnowEntry) []byte {
	b = wire.AppendVarint(b, int64(e.Node))
	b = wire.AppendVarint(b, e.Clock)
	b = wire.AppendUvarint(b, uint64(len(e.Counts)))
	for _, c := range e.Counts {
		b = wire.AppendUvarint(b, c)
	}
	b = wire.AppendUvarint(b, uint64(len(e.Have)))
	for _, row := range e.Have {
		b = wire.AppendUvarint(b, uint64(len(row)))
		for _, h := range row {
			b = wire.AppendUvarint(b, h)
		}
	}
	return b
}

func decodeKnow(r *wire.Reader) KnowEntry {
	e := KnowEntry{Node: runtime.NodeID(r.Varint()), Clock: r.Varint()}
	if n := r.Count(1); n > 0 {
		e.Counts = make([]uint64, n)
		for i := range e.Counts {
			e.Counts[i] = r.Uvarint()
		}
	}
	if n := r.Count(1); n > 0 {
		e.Have = make([][]uint64, n)
		for i := range e.Have {
			if m := r.Count(1); m > 0 {
				e.Have[i] = make([]uint64, m)
				for j := range e.Have[i] {
					e.Have[i][j] = r.Uvarint()
				}
			}
		}
	}
	return e
}

func appendRecon(b []byte, m *Recon) []byte {
	b = wire.AppendVarint(b, int64(m.From))
	b = wire.AppendUvarint(b, m.Seq)
	b = wire.AppendUvarint(b, uint64(len(m.Hops)))
	for _, h := range m.Hops {
		b = wire.AppendVarint(b, int64(h))
	}
	b = wire.AppendVarint(b, int64(m.Hop))
	b = wire.AppendUvarint(b, uint64(len(m.Know)))
	for _, e := range m.Know {
		b = appendKnow(b, e)
	}
	b = wire.AppendUvarint(b, uint64(len(m.Carry)))
	for _, a := range m.Carry {
		b = appendAction(b, a)
	}
	return b
}

func encRecon(b []byte, v any) []byte { return appendRecon(b, v.(*Recon)) }

func decRecon(r *wire.Reader) any {
	m := &Recon{From: runtime.NodeID(r.Varint()), Seq: r.Uvarint()}
	if n := r.Count(1); n > 0 {
		m.Hops = make([]runtime.NodeID, n)
		for i := range m.Hops {
			m.Hops[i] = runtime.NodeID(r.Varint())
		}
	}
	m.Hop = int(r.Varint())
	if n := r.Count(1); n > 0 {
		m.Know = make([]KnowEntry, 0, n)
		for i := 0; i < n; i++ {
			m.Know = append(m.Know, decodeKnow(r))
		}
	}
	if n := r.Count(1); n > 0 {
		m.Carry = make([]Action, 0, n)
		for i := 0; i < n; i++ {
			m.Carry = append(m.Carry, decodeAction(r))
		}
	}
	return m
}
