package optimistic

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/disk"
	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
)

// Outcome is one locally submitted action's lifecycle, as observed at its
// origin. TentativeAt is when the local tentative commit was acknowledged —
// the optimistic protocol's ALT; StableAt is when the origin's own election
// promoted it (zero while still tentative); Aborted marks guard losers.
type Outcome struct {
	Txn    string
	Key    string
	Origin runtime.NodeID
	Shard  int

	SubmittedAt runtime.Time
	TentativeAt runtime.Time
	StableAt    runtime.Time
	Aborted     bool
}

// stabilityBuckets spans one gossip round (tens of ms) to a WAN ring under
// loss (tens of seconds), in seconds.
var stabilityBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
}

// Cluster drives the locally hosted optimistic replicas over a fabric,
// mirroring core.Cluster's shape: under simulation it hosts all N, live
// each process hosts one. Single-threaded like everything behind the seam —
// callers outside the engine context go through transport's Do.
type Cluster struct {
	cfg   Config
	eng   runtime.Engine
	fab   runtime.Fabric
	nodes []runtime.NodeID // locally hosted, ascending
	reps  map[runtime.NodeID]*replica

	backends map[runtime.NodeID]disk.Backend

	registry *metrics.Registry
	mSubmits *metrics.Counter
	mAgents  *metrics.Counter
	mHops    *metrics.Counter
	mLag     *metrics.Histogram

	outcomes map[string]*Outcome
	order    []string // TxnIDs in submit order
	closed   bool
}

// NewCluster assembles the locally hosted replicas on eng and fab, opens
// their journals when durability is configured, and starts the staggered
// gossip schedule.
func NewCluster(eng runtime.Engine, fab runtime.Fabric, cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	local := cfg.Local
	if len(local) == 0 {
		local = make([]runtime.NodeID, cfg.N)
		for i := range local {
			local[i] = runtime.NodeID(i + 1)
		}
	}
	c := &Cluster{
		cfg:      cfg,
		eng:      eng,
		fab:      fab,
		nodes:    local,
		reps:     make(map[runtime.NodeID]*replica, len(local)),
		backends: make(map[runtime.NodeID]disk.Backend),
		outcomes: make(map[string]*Outcome),
	}
	c.initMetrics()
	for _, id := range local {
		if id < 1 || int(id) > cfg.N {
			return nil, fmt.Errorf("optimistic: local node %d outside 1..%d", id, cfg.N)
		}
		if _, dup := c.reps[id]; dup {
			return nil, fmt.Errorf("optimistic: local node %d listed twice", id)
		}
		rep := newReplica(c, id)
		if cfg.Durability != nil {
			if err := c.openJournal(rep); err != nil {
				return nil, err
			}
		}
		c.reps[id] = rep
		r := rep
		fab.Attach(id, runtime.HandlerFunc(func(msg runtime.Message) {
			if ag, ok := msg.Payload.(*Recon); ok {
				r.onRecon(ag)
			}
		}))
	}
	c.registerMetrics()
	// Staggered periodic gossip: replica id's first launch lands at
	// G + G*(id-1)/N, then every G — launches never collide cluster-wide.
	for _, id := range local {
		rep := c.reps[id]
		first := cfg.GossipInterval + cfg.GossipInterval*time.Duration(int(id)-1)/time.Duration(cfg.N)
		c.armGossip(rep, first)
	}
	return c, nil
}

func (c *Cluster) armGossip(rep *replica, d time.Duration) {
	c.eng.AfterFunc(d, func() {
		if c.closed {
			return
		}
		rep.launchGossip()
		c.armGossip(rep, c.cfg.GossipInterval)
	})
}

func (c *Cluster) openJournal(rep *replica) error {
	b := c.backends[rep.id]
	if b == nil {
		b = c.cfg.Durability.Backend(rep.id)
		c.backends[rep.id] = b
	}
	j, st, err := durable.OpenOpt(b, durable.OptOptions{
		Policy:       c.cfg.Durability.Policy,
		SegmentBytes: c.cfg.Durability.SegmentBytes,
		CompactEvery: c.cfg.Durability.CompactEvery,
	})
	if err != nil {
		return fmt.Errorf("optimistic: opening journal for node %d: %w", rep.id, err)
	}
	if err := rep.restore(st); err != nil {
		j.Kill()
		return err
	}
	rep.journal = j
	j.SetSource(func() *durable.OptState { return c.snapshotState(rep) })
	return nil
}

// snapshotState assembles the compaction snapshot from the replica's live
// structures.
func (c *Cluster) snapshotState(rep *replica) *durable.OptState {
	st := &durable.OptState{}
	for s := 0; s < c.cfg.Shards; s++ {
		for _, u := range rep.st[s].StableLog() {
			// Constraint metadata is gone from meta once promoted; recover
			// it from the history (same TxnID, same action).
			a := rep.histAction(s, u.TxnID)
			st.Stable = append(st.Stable, durable.OptRecord{U: u, Guard: a.Guard, Deps: a.Deps})
		}
		for _, u := range rep.st[s].Overlay() {
			st.Overlay = append(st.Overlay, recordOf(rep.meta[s][u.TxnID]))
		}
	}
	for s := 0; s < c.cfg.Shards; s++ {
		for o := range rep.hist[s] {
			for _, a := range rep.hist[s][o] {
				txn := a.TxnID()
				if rep.isDecidedAborted(s, txn) {
					st.Aborted = append(st.Aborted, recordOf(a))
				}
			}
		}
	}
	return st
}

// histAction finds txn in shard s's history (it must be there: everything
// staged was delivered).
func (r *replica) histAction(s int, txn string) Action {
	origin, _, oseq, err := ParseTxnID(txn)
	if err != nil || int(origin) > len(r.hist[s]) || oseq == 0 || oseq > uint64(len(r.hist[s][origin-1])) {
		panic(fmt.Sprintf("optimistic: node %d: no history for %s", r.id, txn))
	}
	return r.hist[s][origin-1][oseq-1]
}

// isDecidedAborted reports whether txn was elected and lost: delivered
// (in history) but neither tentative nor stable.
func (r *replica) isDecidedAborted(s int, txn string) bool {
	return !r.st[s].InOverlay(txn) && !r.st[s].InStable(txn)
}

// --- client surface -----------------------------------------------------

// Submit commits key=data tentatively at home, returning the TxnID. The
// call completes at local latency; stability arrives asynchronously
// (Outcomes reports both timestamps).
func (c *Cluster) Submit(home runtime.NodeID, key, data string) (string, error) {
	return c.SubmitCAS(home, key, data, "")
}

// SubmitCAS is Submit with a CAS guard: the action is promoted only if, at
// its election, key's last stable writer is guard (GuardUnwritten for "no
// stable version yet"). Losers abort identically everywhere.
func (c *Cluster) SubmitCAS(home runtime.NodeID, key, data, guard string) (string, error) {
	rep := c.reps[home]
	if rep == nil {
		return "", fmt.Errorf("optimistic: node %d is not hosted locally", home)
	}
	submitted := c.eng.Now()
	a, err := rep.submit(key, data, guard)
	if err != nil {
		return "", err
	}
	txn := a.TxnID()
	c.mSubmits.Inc()
	c.outcomes[txn] = &Outcome{
		Txn: txn, Key: key, Origin: home, Shard: a.Shard,
		SubmittedAt: submitted, TentativeAt: c.eng.Now(),
	}
	c.order = append(c.order, txn)
	rep.tryPromote() // N=1 degenerates to immediate stability
	return txn, nil
}

// Read returns home's view of key: the stable value, or with tentative set
// the overlay's last writer (what the submitting client observed).
func (c *Cluster) Read(home runtime.NodeID, key string, tentative bool) (store.Value, bool, error) {
	rep := c.reps[home]
	if rep == nil {
		return store.Value{}, false, fmt.Errorf("optimistic: node %d is not hosted locally", home)
	}
	if rep.down {
		return store.Value{}, false, fmt.Errorf("optimistic: node %d is down", home)
	}
	s := shard.Of(key, c.cfg.Shards)
	if tentative {
		v, ok := rep.st[s].TentativeGet(key)
		return v, ok, nil
	}
	v, ok := rep.st[s].Get(key)
	return v, ok, nil
}

func (c *Cluster) noteStable(at runtime.NodeID, txn string, now runtime.Time) {
	o := c.outcomes[txn]
	if o == nil || o.Origin != at || o.StableAt != 0 || o.Aborted {
		return
	}
	o.StableAt = now
	c.mLag.Observe(now.Sub(o.SubmittedAt).Seconds())
}

func (c *Cluster) noteAborted(at runtime.NodeID, txn string) {
	o := c.outcomes[txn]
	if o == nil || o.Origin != at || o.StableAt != 0 || o.Aborted {
		return
	}
	o.Aborted = true
}

// Outcomes returns every locally submitted action's lifecycle in submit
// order.
func (c *Cluster) Outcomes() []Outcome {
	out := make([]Outcome, 0, len(c.order))
	for _, txn := range c.order {
		out = append(out, *c.outcomes[txn])
	}
	return out
}

// Submitted returns how many actions this cluster accepted locally.
func (c *Cluster) Submitted() uint64 { return uint64(len(c.order)) }

// --- run control --------------------------------------------------------

// decided is a replica's count of elected actions (stable + aborted),
// summed over shards. Identical at every replica once converged — the
// election is deterministic.
func (c *Cluster) decided(rep *replica) uint64 {
	n := rep.aborted
	for s := range rep.st {
		n += uint64(rep.st[s].StableLen())
	}
	return n
}

// Drained reports whether every locally hosted replica is up, has elected
// exactly expect actions, and holds nothing tentative or parked.
func (c *Cluster) Drained(expect uint64) bool {
	for _, id := range c.nodes {
		rep := c.reps[id]
		if rep.down || c.decided(rep) != expect {
			return false
		}
		for s := range rep.st {
			if rep.st[s].OverlayLen() != 0 {
				return false
			}
			for _, hb := range rep.hold[s] {
				if len(hb) != 0 {
					return false
				}
			}
		}
	}
	return true
}

// RunUntilDone runs the engine until every locally submitted action is
// stable (or aborted) at every locally hosted replica — the whole-cluster
// condition when one process hosts all N (simulation). Live processes,
// which see only their own submissions, use RunUntilStable with the
// cross-process total instead.
func (c *Cluster) RunUntilDone(maxVirtual time.Duration) error {
	return c.RunUntilStable(maxVirtual, c.Submitted())
}

// RunUntilStable runs the engine until Drained(expect) holds.
func (c *Cluster) RunUntilStable(maxVirtual time.Duration, expect uint64) error {
	switch err := c.eng.Wait(maxVirtual, func() bool { return c.Drained(expect) }); {
	case err == nil:
		return nil
	case errors.Is(err, runtime.ErrStalled):
		return fmt.Errorf("optimistic: event queue drained before stability (deadlock)")
	default:
		return fmt.Errorf("optimistic: not stable at %d elections after %v", expect, maxVirtual)
	}
}

// Settle advances time by d (virtual under simulation).
func (c *Cluster) Settle(d time.Duration) { c.eng.Sleep(d) }

// Close stops the gossip schedule and cleanly closes open journals.
func (c *Cluster) Close() error {
	c.closed = true
	var first error
	for _, id := range c.nodes {
		rep := c.reps[id]
		if rep.journal != nil {
			if err := rep.journal.Close(); err != nil && first == nil {
				first = err
			}
			rep.journal = nil
		}
	}
	return first
}

// --- state inspection ---------------------------------------------------

// N returns the configured cluster size.
func (c *Cluster) N() int { return c.cfg.N }

// Now returns the engine's current time (virtual under simulation).
func (c *Cluster) Now() runtime.Time { return c.eng.Now() }

// Shards returns the keyspace shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// LocalNodes returns the locally hosted node IDs, ascending.
func (c *Cluster) LocalNodes() []runtime.NodeID {
	out := make([]runtime.NodeID, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Down reports whether a locally hosted node is crashed.
func (c *Cluster) Down(id runtime.NodeID) bool {
	rep := c.reps[id]
	return rep == nil || rep.down
}

// HasDurability reports whether replicas are journaled (the precondition
// for Crash/Recover).
func (c *Cluster) HasDurability() bool { return c.cfg.Durability != nil }

// StableLog returns node id's stable prefix for one shard, in election
// order.
func (c *Cluster) StableLog(id runtime.NodeID, shard int) ([]store.Update, error) {
	rep := c.reps[id]
	if rep == nil {
		return nil, fmt.Errorf("optimistic: node %d is not hosted locally", id)
	}
	if shard < 0 || shard >= c.cfg.Shards {
		return nil, fmt.Errorf("optimistic: shard %d outside 0..%d", shard, c.cfg.Shards-1)
	}
	return rep.st[shard].StableLog(), nil
}

// Overlay returns node id's tentative overlay for one shard, in candidate
// order.
func (c *Cluster) Overlay(id runtime.NodeID, shard int) ([]store.Update, error) {
	rep := c.reps[id]
	if rep == nil {
		return nil, fmt.Errorf("optimistic: node %d is not hosted locally", id)
	}
	if shard < 0 || shard >= c.cfg.Shards {
		return nil, fmt.Errorf("optimistic: shard %d outside 0..%d", shard, c.cfg.Shards-1)
	}
	return rep.st[shard].Overlay(), nil
}

// StableDigest folds node id's per-shard stable-prefix digests into one
// order-dependent digest plus the total stable length.
func (c *Cluster) StableDigest(id runtime.NodeID) (string, int, error) {
	rep := c.reps[id]
	if rep == nil {
		return "", 0, fmt.Errorf("optimistic: node %d is not hosted locally", id)
	}
	digest, n := foldShardDigests(rep.st)
	return digest, n, nil
}

// CheckConvergence verifies that every up, locally hosted replica holds the
// identical stable prefix per shard — the optimistic analogue of the
// pessimistic invariant-2 check, over the stable tier only (overlays
// legitimately diverge until elected).
func (c *Cluster) CheckConvergence() error {
	for s := 0; s < c.cfg.Shards; s++ {
		var ref []store.Update
		var refNode runtime.NodeID
		for _, id := range c.nodes {
			rep := c.reps[id]
			if rep.down {
				continue
			}
			log := rep.st[s].StableLog()
			if ref == nil {
				ref, refNode = log, id
				continue
			}
			if len(log) != len(ref) {
				return fmt.Errorf("optimistic: shard %d: node %d has %d stable, node %d has %d", s, id, len(log), refNode, len(ref))
			}
			for i := range log {
				if log[i] != ref[i] {
					return fmt.Errorf("optimistic: shard %d: node %d stable[%d] = %+v, node %d has %+v", s, id, i, log[i], refNode, ref[i])
				}
			}
		}
	}
	return nil
}

// --- fault injection ----------------------------------------------------

// Crash fail-stops node id: the fabric drops its traffic, its volatile
// state is lost, and its disk forgets everything past the last fsync.
// Requires durability — a volatile optimistic replica holds the only copy
// of its own un-gossiped actions, so crashing one would violate the
// protocol's model (peers can never complete their frontiers).
func (c *Cluster) Crash(id runtime.NodeID) error {
	rep := c.reps[id]
	if rep == nil || rep.down {
		return nil
	}
	if c.cfg.Durability == nil {
		return fmt.Errorf("optimistic: Crash(%d) without durability would lose the only copy of its actions", id)
	}
	cr, ok := c.fab.(runtime.Crasher)
	if !ok {
		return nil // the fabric cannot fail-stop nodes
	}
	cr.SetDown(id, true)
	rep.crash()
	if dc, ok := c.backends[id].(disk.Crasher); ok {
		dc.Crash()
	}
	return nil
}

// Recover restarts a crashed node: replay the journal, rebuild the replica,
// rejoin the fabric. Lost foreign deliveries come back from peers once the
// fresh self-report advertises the decreased vectors.
func (c *Cluster) Recover(id runtime.NodeID) error {
	rep := c.reps[id]
	if rep == nil || !rep.down {
		return nil
	}
	cr, ok := c.fab.(runtime.Crasher)
	if !ok {
		return nil
	}
	if err := c.openJournal(rep); err != nil {
		return err
	}
	cr.SetDown(id, false)
	rep.down = false
	return nil
}

// PartitionNet splits the fabric into disconnected groups (no-op when it
// cannot partition).
func (c *Cluster) PartitionNet(groups ...[]runtime.NodeID) {
	if p, ok := c.fab.(runtime.Partitioner); ok {
		p.Partition(groups...)
	}
}

// HealNet removes all partitions. No explicit sync is needed: the periodic
// gossip schedule is the anti-entropy path, and the next round crosses the
// healed links.
func (c *Cluster) HealNet() {
	if p, ok := c.fab.(runtime.Partitioner); ok {
		p.Heal()
	}
}

// SetLoss sets the fabric's dynamic loss level (no-op without a fault
// model).
func (c *Cluster) SetLoss(p float64) {
	if lc, ok := c.fab.(runtime.LossController); ok {
		lc.SetExtraLoss(p)
	}
}

// --- metrics ------------------------------------------------------------

// Metrics returns the cluster's registry. Read-through collectors sample
// engine-owned state: Gather must run on the engine's execution context.
func (c *Cluster) Metrics() *metrics.Registry { return c.registry }

func (c *Cluster) initMetrics() {
	r := metrics.NewRegistry()
	c.registry = r
	c.mSubmits = r.Counter("marp.opt.submitted", "Actions submitted (tentatively committed) at locally hosted replicas.")
	c.mAgents = r.Counter("marp.opt.gossip_agents", "Reconciliation agents launched by locally hosted replicas.")
	c.mHops = r.Counter("marp.opt.gossip_hops", "Reconciliation-agent hops hosted by locally hosted replicas.")
	c.mLag = r.Histogram("marp.opt.stability_lag",
		"Submit-to-stable latency of locally submitted actions, at their origin (seconds).", stabilityBuckets)
}

func (c *Cluster) registerMetrics() {
	r := c.registry
	sum := func(per func(rep *replica) float64) func() float64 {
		return func() float64 {
			var v float64
			for _, id := range c.nodes {
				v += per(c.reps[id])
			}
			return v
		}
	}
	r.GaugeFunc("marp.opt.tentative_depth", "Tentative overlay entries across locally hosted replicas.",
		sum(func(rep *replica) float64 {
			var n int
			for s := range rep.st {
				n += rep.st[s].OverlayLen()
			}
			return float64(n)
		}))
	r.CounterFunc("marp.opt.promotions", "Updates promoted into stable prefixes across locally hosted replicas.",
		sum(func(rep *replica) float64 {
			var n int
			for s := range rep.st {
				n += rep.st[s].StableLen()
			}
			return float64(n)
		}))
	r.CounterFunc("marp.opt.rollbacks", "Tentative executions displaced (rolled back and re-executed) by out-of-order arrivals.",
		sum(func(rep *replica) float64 {
			var n uint64
			for s := range rep.st {
				n += rep.st[s].Rollbacks()
			}
			return float64(n)
		}))
	r.CounterFunc("marp.opt.aborts", "Election losers (CAS guard failures) discarded across locally hosted replicas.",
		sum(func(rep *replica) float64 { return float64(rep.aborted) }))

	// Fabric: same family the pessimistic cluster reports, so dashboards
	// and the A-series tables read one vocabulary.
	ss, ok := c.fab.(runtime.StatsSource)
	if !ok {
		return
	}
	r.CounterFunc("marp.fabric.messages_sent", "Protocol messages handed to the fabric.",
		func() float64 { return float64(ss.NetStats().MessagesSent) })
	r.CounterFunc("marp.fabric.messages_delivered", "Messages delivered (or handed to the kernel).",
		func() float64 { return float64(ss.NetStats().MessagesDelivered) })
	r.CounterFunc("marp.fabric.messages_dropped", "Messages dropped: destination down, partitioned, or detached.",
		func() float64 { return float64(ss.NetStats().MessagesDropped) })
	r.CounterFunc("marp.fabric.messages_lost", "Messages eaten by the fault model or a dead connection.",
		func() float64 { return float64(ss.NetStats().MessagesLost) })
	r.CounterFunc("marp.fabric.messages_duplicated", "Messages delivered twice by the fault model.",
		func() float64 { return float64(ss.NetStats().MessagesDuplicated) })
	r.CounterFunc("marp.fabric.queue_drops", "Messages dropped by a full per-peer writer queue (live fabric).",
		func() float64 { return float64(ss.NetStats().QueueDrops) })
	r.CounterFunc("marp.fabric.bytes_sent", "Modelled payload bytes handed to the fabric.",
		func() float64 { return float64(ss.NetStats().BytesSent) })
}

// foldShardDigests combines per-shard stable digests into one node-level
// digest (order-dependent within each shard, shard-index order across).
func foldShardDigests(sts []*store.Staged) (string, int) {
	h := fnv.New64a()
	total := 0
	for _, st := range sts {
		d, n := st.StableDigest()
		h.Write([]byte(d))
		h.Write([]byte{0xff})
		total += n
	}
	return fmt.Sprintf("%016x", h.Sum64()), total
}

func (c *Cluster) send(from, to runtime.NodeID, ag *Recon) {
	c.fab.Send(runtime.Message{From: from, To: to, Payload: ag, Size: ag.WireSize()})
}
