// Package optimistic implements the third replication protocol behind the
// runtime seam: optimistic asynchronous commitment in the style of
// Sutra–Shapiro's decentralised commitment for optimistic semantic
// replication (PAPERS.md), answering the source paper's §6 speculation
// about WAN deployment with a protocol that never pays wide-area latency
// on the submit path.
//
// Where MARP is pessimistic — an agent must head a majority of Locking
// Lists before any replica applies an update — the optimistic protocol
// commits every submit TENTATIVELY at the local replica immediately, at
// local-disk latency. A mobile reconciliation agent then carries the
// action and its constraints (the Lamport stamp that orders it, the
// notAfter dependency edges onto the same-key tentative updates its origin
// observed, and an optional CAS guard) along a background ring itinerary.
// Replicas exchange constraint knowledge epidemically through these
// agents, and a quorum-LESS, fully decentralised election promotes
// tentative updates into an immutable stable prefix — every replica
// computes the same election locally, from evidence alone, and no replica
// ever waits for a vote.
//
// # The candidate order and the election
//
// Every action is stamped from its origin's Lamport clock and identified
// by (origin, shard, oseq) — oseq a per-origin, per-shard contiguous
// counter. The global candidate order per shard is (Stamp, TxnID), a total
// order every replica computes identically; Lamport stamping makes it
// causality-consistent, so an action's notAfter dependencies always sort
// strictly before it and the order provably extends the constraint graph
// the agents carry (accept asserts this).
//
// A replica may promote the order's prefix up to a stability bound B once
// it can prove it holds EVERY action any origin stamped at or below B.
// The proof is evidence-based: each agent carries Know entries — origin o
// reported clock C having issued k actions on the shard — and the receiver
// credits the entry only once its own contiguous-delivery counter for o
// reaches k. The bound is the minimum credited clock across all origins.
// Because every candidate at or below the bound is present and the order
// is deterministic, election needs no quorum and no messages: replicas
// promote identical prefixes independently, possibly at different times.
// Losers — candidates whose CAS guard no longer matches the stable state —
// abort deterministically everywhere.
//
// # What the optimism costs
//
// A tentative update that arrives with a stamp ordering it before
// already-staged tentative updates displaces them: their tentative
// executions roll back and re-execute against the new order (the
// `marp.opt.rollbacks` instrument). And stability lags the tentative
// commit by the gossip round-trip needed to collect evidence from every
// origin (`marp.opt.stability_lag`): a partitioned or crashed origin
// freezes the bound — tentative commits continue everywhere, but nothing
// promotes until it returns. That is the protocol's availability trade,
// measured against MARP in experiment A10.
//
// # Recovery
//
// Optimistic replicas survive crashes only with a journal (volatile MARP
// replicas can rebuild from a majority; a volatile optimistic replica
// could re-mint an oseq peers already hold, which is unrecoverable).
// Three barrier rules keep recovery sound — own tentatives fsync before
// the gossip layer may advertise them, stable promotions fsync before
// anything else leaves the node, and the Lamport clock journals a strided
// high-water mark before being advertised — so a restart never reuses an
// action identity, never regresses an advertised clock, and never drops or
// reorders the stable prefix (DESIGN.md invariant 15).
package optimistic

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/wal"
)

// GuardUnwritten is the CAS guard expecting the key to have no stable
// version yet. The empty guard means unconditional (last-writer-wins).
const GuardUnwritten = "!unwritten"

// Action is one tentative update plus the constraints the reconciliation
// agents carry for it.
type Action struct {
	Origin runtime.NodeID
	OSeq   uint64 // per-(origin, shard) contiguous counter, 1-based
	Shard  int
	Stamp  int64 // origin's Lamport clock at submit
	Key    string
	Data   string
	// Guard is the optional CAS constraint: the TxnID the key's last
	// stable writer must carry at election time (GuardUnwritten for "no
	// stable writer yet"; empty for unconditional).
	Guard string
	// Deps are the notAfter constraint edges: the TxnIDs of the same-key
	// tentative updates the origin had staged when this action was
	// submitted. The candidate order provably schedules every dep first;
	// accept asserts it.
	Deps []string
}

// TxnID returns the action's globally unique transaction ID. The encoding
// is zero-padded so that the string order of IDs equals the numeric
// (origin, oseq) order within a shard — the election's tie-break relies on
// it (store.StagedLess).
func (a Action) TxnID() string { return OptTxnID(a.Origin, a.Shard, a.OSeq) }

// OptTxnID builds the canonical optimistic transaction ID.
func OptTxnID(origin runtime.NodeID, shrd int, oseq uint64) string {
	return fmt.Sprintf("o%03d-s%03d-%09d", origin, shrd, oseq)
}

// ParseTxnID decodes a canonical optimistic transaction ID.
func ParseTxnID(txn string) (origin runtime.NodeID, shrd int, oseq uint64, err error) {
	var o, s int
	if _, err = fmt.Sscanf(txn, "o%03d-s%03d-%09d", &o, &s, &oseq); err != nil {
		return 0, 0, 0, fmt.Errorf("optimistic: bad txn id %q: %w", txn, err)
	}
	return runtime.NodeID(o), s, oseq, nil
}

// Update converts the action to its store representation (Seq is assigned
// at promotion).
func (a Action) Update() store.Update {
	return store.Update{TxnID: a.TxnID(), Key: a.Key, Data: a.Data, Stamp: a.Stamp}
}

// KnowEntry is one origin's self-report as carried by the agents: "my
// Lamport clock read Clock; by then I had issued Counts[s] actions on
// shard s and had contiguously delivered Have[s][o-1] actions from origin
// o". Receivers credit the clock toward their stability frontier only once
// their own delivery counters reach Counts — relayed knowledge alone never
// advances a frontier. Entries are immutable once built (hosts on an
// itinerary share them); replacement is newest-clock-wins, which lets the
// Have vector DECREASE after the origin recovers from a crash — that is
// what tells peers to resend the deliveries the crash erased. The clock
// high-water barrier makes newest-clock-wins sound: a recovered origin's
// first fresh report always outranks anything it advertised before the
// crash.
type KnowEntry struct {
	Node   runtime.NodeID
	Clock  int64
	Counts []uint64
	Have   [][]uint64
}

// Recon is the reconciliation agent: the package's mobile agent, migrating
// host to host along its itinerary. At each hop it delivers the actions it
// carries, merges its knowledge table with the host's, and is re-packed by
// the host with whatever the NEXT hop is missing according to the merged
// estimates. Estimates are evidence-based and may be stale; over-delivery
// is dropped idempotently and under-delivery is healed by the next round,
// so a lost agent only delays convergence.
type Recon struct {
	From  runtime.NodeID   // launching replica
	Seq   uint64           // launch counter at From (diagnostics)
	Hops  []runtime.NodeID // itinerary, visited in order
	Hop   int              // index of the hop this migration targets
	Know  []KnowEntry
	Carry []Action
}

// Kind implements runtime.Kinder for per-kind traffic accounting.
func (*Recon) Kind() string { return "opt-recon" }

// WireSize implements the fabric's size accounting with the real encoded
// size (deterministic, so DES byte-identity holds).
func (m *Recon) WireSize() int { return len(appendRecon(nil, m)) }

// ring returns the itinerary for an agent launched at from: every other
// node once, ascending from from+1 with wraparound — the deterministic
// ring that staggers against other launchers' rings.
func ring(from runtime.NodeID, n int) []runtime.NodeID {
	out := make([]runtime.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		id := runtime.NodeID((int(from)-1+i)%n + 1)
		out = append(out, id)
	}
	return out
}

// DurabilityConfig arms optimistic replicas with stable storage, the
// precondition for Crash/Recover (see the package comment on recovery).
type DurabilityConfig struct {
	// Backend returns node id's stable-storage backend (disk.NewFS for a
	// live data dir, disk.NewMem for deterministic simulation). Called
	// once per local node at construction.
	Backend func(id runtime.NodeID) disk.Backend
	// Policy is the fsync policy (default wal.PolicyCommit).
	Policy wal.Policy
	// SegmentBytes and CompactEvery tune the journal (see durable).
	SegmentBytes int
	CompactEvery int
}

// Config assembles an optimistic cluster. Quorum geometry does not apply —
// the election is quorum-less by construction and every replica holds
// every shard — so unlike core.Config there are no GroupSize/Geometry
// knobs; shard routing itself (shard.Of) is shared with the pessimistic
// path, which keeps `marpctl digest` shard rows comparable.
type Config struct {
	// N is the cluster size.
	N int
	// Local lists the node IDs this process hosts (nil = all N, the
	// simulation layout; a live process hosts exactly one).
	Local []runtime.NodeID
	// Shards is the keyspace shard count (default 1). Each shard has its
	// own candidate order and stability frontier.
	Shards int
	// GossipInterval is the reconciliation-agent launch period at each
	// replica (default 50ms). Launches are staggered across replicas.
	GossipInterval time.Duration
	// MaxCarry caps the actions packed per hop (default 512); the next
	// round carries the remainder.
	MaxCarry int
	// Durability, when non-nil, journals every replica and enables
	// Crash/Recover.
	Durability *DurabilityConfig
}

func (c *Config) fill() error {
	if c.N < 1 {
		return fmt.Errorf("optimistic: config needs N >= 1, got %d", c.N)
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 50 * time.Millisecond
	}
	if c.MaxCarry <= 0 {
		c.MaxCarry = 512
	}
	return nil
}
