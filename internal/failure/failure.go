// Package failure builds and applies fault-injection schedules: fail-stop
// crashes and recoveries of replicated servers, per the paper's system model
// (§2: processes "fail according to the fail-stop model" and recover; the
// Internet exhibits "frequent short transient failures but rare long
// transient failures").
//
// A Schedule is plain data — a list of (time, node, kind) events — so it can
// be inspected, stored, and replayed deterministically. Beyond fail-stop
// crashes the schedule language covers network partitions (Partition/Heal)
// and transient message-loss bursts (Lossy), the chaos dimensions of
// experiment A6. Builders construct common patterns: a single blip, rolling
// restarts, partition and loss windows, and random churn that provably never
// takes down a majority — Validate proves a mutually reachable strict
// majority survives every event, so the protocol's liveness assumptions hold
// and every injected run must still drain.
package failure

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/simnet"
)

// Kind is the type of one fault event.
type Kind int

// The fault event kinds. Crash/Recover are per-node fail-stop events;
// Partition/Heal reshape network reachability; Lossy sets the network-wide
// transient message-loss level (zero restores clean links).
const (
	Crash Kind = iota
	Recover
	Partition
	Heal
	Lossy
)

// String returns the event-kind name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Lossy:
		return "lossy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// rank defines the canonical same-instant processing order: events healing
// the system (Recover, Heal) are processed before events degrading it
// (Lossy, Partition, Crash), so the semantics of equal-time events never
// depend on the order a schedule was constructed in. See Sorted.
func (k Kind) rank() int {
	switch k {
	case Recover:
		return 0
	case Heal:
		return 1
	case Lossy:
		return 2
	case Partition:
		return 3
	case Crash:
		return 4
	default:
		return 5
	}
}

// Event is one scheduled fault. Node is set for Crash/Recover, Groups for
// Partition, Loss for Lossy; Heal carries only a time.
type Event struct {
	At     time.Duration
	Node   simnet.NodeID
	Kind   Kind
	Groups [][]simnet.NodeID // Partition: nodes per group (unlisted = group 0)
	Loss   float64           // Lossy: network-wide loss probability
}

// Schedule is an ordered fault plan.
type Schedule []Event

// Target is anything whose nodes can fail-stop and recover; core.Cluster
// satisfies it.
type Target interface {
	Crash(simnet.NodeID)
	Recover(simnet.NodeID)
}

// ChaosTarget additionally supports partitions and transient message loss;
// core.Cluster satisfies it. Apply delivers Partition/Heal/Lossy events only
// to targets implementing this interface.
type ChaosTarget interface {
	Target
	PartitionNet(groups ...[]simnet.NodeID)
	HealNet()
	SetLoss(p float64)
}

// Scheduler defers a function to a virtual-time offset; des-based systems
// pass their simulator's After (adapted to discard the returned event).
type Scheduler func(d time.Duration, fn func())

// Validate checks that the schedule is well-formed for a system of n nodes:
// times non-negative, nodes in 1..n, crashes and recoveries alternating per
// node, never more than maxDown nodes down at once (pass maxDown = (n-1)/2
// to preserve the protocol's majority-liveness assumption; pass n to disable
// the check), loss levels within [0, simnet.MaxLoss], partition groups
// naming each node at most once — and, after every event, some set of
// mutually reachable up nodes still forming a strict majority of n, so
// liveness holds throughout.
//
// Events are examined in the canonical order (see Sorted): at equal
// instants, recoveries and heals apply before new faults. In particular a
// Recover for a node that is not down at that instant — even if a Crash of
// the same node shares the timestamp — is rejected, deterministically,
// regardless of the order the schedule was built in.
func (s Schedule) Validate(n, maxDown int) error {
	sorted := s.Sorted()
	down := make(map[simnet.NodeID]bool)
	group := make(map[simnet.NodeID]int) // current partition group, 0 default
	majorityReachable := func() bool {
		upPerGroup := make(map[int]int)
		best := 0
		for i := 1; i <= n; i++ {
			id := simnet.NodeID(i)
			if down[id] {
				continue
			}
			upPerGroup[group[id]]++
			if upPerGroup[group[id]] > best {
				best = upPerGroup[group[id]]
			}
		}
		return best >= n/2+1
	}
	for i, e := range sorted {
		if e.At < 0 {
			return fmt.Errorf("failure: event %d at negative time %v", i, e.At)
		}
		switch e.Kind {
		case Crash, Recover:
			if int(e.Node) < 1 || int(e.Node) > n {
				return fmt.Errorf("failure: event %d names unknown node %d", i, e.Node)
			}
		}
		switch e.Kind {
		case Crash:
			if down[e.Node] {
				return fmt.Errorf("failure: node %d crashed twice without recovery", e.Node)
			}
			down[e.Node] = true
			downCount := len(down)
			if downCount > maxDown {
				return fmt.Errorf("failure: %d nodes down at %v exceeds limit %d", downCount, e.At, maxDown)
			}
		case Recover:
			if !down[e.Node] {
				return fmt.Errorf("failure: node %d recovered while up at %v", e.Node, e.At)
			}
			delete(down, e.Node)
		case Partition:
			seen := make(map[simnet.NodeID]bool)
			group = make(map[simnet.NodeID]int)
			for gi, g := range e.Groups {
				for _, id := range g {
					if int(id) < 1 || int(id) > n {
						return fmt.Errorf("failure: partition at %v names unknown node %d", e.At, id)
					}
					if seen[id] {
						return fmt.Errorf("failure: partition at %v names node %d twice", e.At, id)
					}
					seen[id] = true
					group[id] = gi + 1
				}
			}
		case Heal:
			group = make(map[simnet.NodeID]int)
		case Lossy:
			if e.Loss < 0 || e.Loss > simnet.MaxLoss {
				return fmt.Errorf("failure: loss level %v at %v outside [0, %v]", e.Loss, e.At, simnet.MaxLoss)
			}
		default:
			return fmt.Errorf("failure: event %d has unknown kind %d", i, int(e.Kind))
		}
		if !majorityReachable() {
			return fmt.Errorf("failure: no mutually reachable majority after %s at %v", e.Kind, e.At)
		}
	}
	return nil
}

// Sorted returns a copy in canonical order: by time, then by kind rank
// (Recover, Heal, Lossy, Partition, Crash — repairs before new damage),
// then by node. The kind rank makes same-instant semantics independent of
// construction order: a node may recover and a different node crash in the
// same instant without the down-count transiently overshooting, and a
// same-instant Recover+Crash of one node is deterministically a
// recover-then-crash.
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind.rank() != out[j].Kind.rank() {
			return out[i].Kind.rank() < out[j].Kind.rank()
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Span returns the time of the last event.
func (s Schedule) Span() time.Duration {
	var max time.Duration
	for _, e := range s {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// Apply schedules every event against the target, in canonical order.
// Partition, Heal, and Lossy events are delivered only if the target
// implements ChaosTarget; against a plain Target they are skipped.
func (s Schedule) Apply(sched Scheduler, target Target) {
	chaos, _ := target.(ChaosTarget)
	for _, e := range s.Sorted() {
		e := e
		sched(e.At, func() {
			switch e.Kind {
			case Crash:
				target.Crash(e.Node)
			case Recover:
				target.Recover(e.Node)
			case Partition:
				if chaos != nil {
					chaos.PartitionNet(e.Groups...)
				}
			case Heal:
				if chaos != nil {
					chaos.HealNet()
				}
			case Lossy:
				if chaos != nil {
					chaos.SetLoss(e.Loss)
				}
			}
		})
	}
}

// Blip crashes one node at `at` and recovers it downFor later — the paper's
// "frequent short transient failure".
func Blip(node simnet.NodeID, at, downFor time.Duration) Schedule {
	return Schedule{
		{At: at, Node: node, Kind: Crash},
		{At: at + downFor, Node: node, Kind: Recover},
	}
}

// PartitionWindow splits the network into groups at `at` and heals it
// healFor later.
func PartitionWindow(at, healAfter time.Duration, groups ...[]simnet.NodeID) Schedule {
	return Schedule{
		{At: at, Kind: Partition, Groups: groups},
		{At: at + healAfter, Kind: Heal},
	}
}

// LossBurst raises the network-wide loss level to loss at `at` and restores
// clean links lasts later — the paper's "frequent short transient failure"
// as a link phenomenon rather than a node crash.
func LossBurst(at, lasts time.Duration, loss float64) Schedule {
	return Schedule{
		{At: at, Kind: Lossy, Loss: loss},
		{At: at + lasts, Kind: Lossy, Loss: 0},
	}
}

// RollingRestarts takes each of the n nodes down in turn: node i crashes at
// start + (i-1)*interval and recovers downFor later. With interval >
// downFor at most one node is ever down.
func RollingRestarts(n int, start, interval, downFor time.Duration) Schedule {
	var s Schedule
	for i := 1; i <= n; i++ {
		at := start + time.Duration(i-1)*interval
		s = append(s, Blip(simnet.NodeID(i), at, downFor)...)
	}
	return s.Sorted()
}

// RandomChurn generates random crash/recovery cycles over [0, duration):
// crash inter-arrivals are exponential with mean mtbf, outages exponential
// with mean mttr, victims uniform among the currently-up nodes — but never
// more than maxDown nodes are down at once, so a majority of an n-node
// system stays available throughout (use maxDown = (n-1)/2).
func RandomChurn(rng *rand.Rand, n int, duration, mtbf, mttr time.Duration, maxDown int) Schedule {
	if maxDown < 1 || n < 1 || mtbf <= 0 || mttr <= 0 {
		return nil
	}
	var s Schedule
	upAt := make([]time.Duration, n+1) // node -> time it is next up
	downCount := func(t time.Duration) (int, []simnet.NodeID) {
		count := 0
		var up []simnet.NodeID
		for i := 1; i <= n; i++ {
			if upAt[i] > t {
				count++
			} else {
				up = append(up, simnet.NodeID(i))
			}
		}
		return count, up
	}
	t := time.Duration(rng.ExpFloat64() * float64(mtbf))
	for t < duration {
		count, up := downCount(t)
		if count < maxDown && len(up) > 0 {
			victim := up[rng.Intn(len(up))]
			outage := time.Duration(rng.ExpFloat64() * float64(mttr))
			if outage <= 0 {
				outage = time.Millisecond
			}
			s = append(s,
				Event{At: t, Node: victim, Kind: Crash},
				Event{At: t + outage, Node: victim, Kind: Recover},
			)
			upAt[victim] = t + outage
		}
		t += time.Duration(rng.ExpFloat64() * float64(mtbf))
	}
	return s.Sorted()
}
