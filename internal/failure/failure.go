// Package failure builds and applies fault-injection schedules: fail-stop
// crashes and recoveries of replicated servers, per the paper's system model
// (§2: processes "fail according to the fail-stop model" and recover; the
// Internet exhibits "frequent short transient failures but rare long
// transient failures").
//
// A Schedule is plain data — a list of (time, node, kind) events — so it can
// be inspected, stored, and replayed deterministically. Builders construct
// common patterns: a single blip, rolling restarts, and random churn that
// provably never takes down a majority (so the protocol's liveness
// assumptions hold and every injected run must still drain).
package failure

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/simnet"
)

// Kind is the type of one fault event.
type Kind int

// The fault event kinds.
const (
	Crash Kind = iota
	Recover
)

// String returns the event-kind name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   time.Duration
	Node simnet.NodeID
	Kind Kind
}

// Schedule is an ordered fault plan.
type Schedule []Event

// Target is anything whose nodes can fail-stop and recover; core.Cluster
// satisfies it.
type Target interface {
	Crash(simnet.NodeID)
	Recover(simnet.NodeID)
}

// Scheduler defers a function to a virtual-time offset; des-based systems
// pass their simulator's After (adapted to discard the returned event).
type Scheduler func(d time.Duration, fn func())

// Validate checks that the schedule is well-formed for a system of n nodes:
// times non-negative, nodes in 1..n, crashes and recoveries alternating per
// node, and never more than maxDown nodes down at once (pass maxDown =
// (n-1)/2 to preserve the protocol's majority-liveness assumption; pass n to
// disable the check).
func (s Schedule) Validate(n, maxDown int) error {
	sorted := s.Sorted()
	down := make(map[simnet.NodeID]bool)
	for i, e := range sorted {
		if e.At < 0 {
			return fmt.Errorf("failure: event %d at negative time %v", i, e.At)
		}
		if int(e.Node) < 1 || int(e.Node) > n {
			return fmt.Errorf("failure: event %d names unknown node %d", i, e.Node)
		}
		switch e.Kind {
		case Crash:
			if down[e.Node] {
				return fmt.Errorf("failure: node %d crashed twice without recovery", e.Node)
			}
			down[e.Node] = true
			if len(down) > maxDown {
				return fmt.Errorf("failure: %d nodes down at %v exceeds limit %d", len(down), e.At, maxDown)
			}
		case Recover:
			if !down[e.Node] {
				return fmt.Errorf("failure: node %d recovered while up", e.Node)
			}
			delete(down, e.Node)
		default:
			return fmt.Errorf("failure: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Sorted returns a copy ordered by time (stable for equal times).
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Span returns the time of the last event.
func (s Schedule) Span() time.Duration {
	var max time.Duration
	for _, e := range s {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// Apply schedules every event against the target.
func (s Schedule) Apply(sched Scheduler, target Target) {
	for _, e := range s.Sorted() {
		e := e
		sched(e.At, func() {
			switch e.Kind {
			case Crash:
				target.Crash(e.Node)
			case Recover:
				target.Recover(e.Node)
			}
		})
	}
}

// Blip crashes one node at `at` and recovers it downFor later — the paper's
// "frequent short transient failure".
func Blip(node simnet.NodeID, at, downFor time.Duration) Schedule {
	return Schedule{
		{At: at, Node: node, Kind: Crash},
		{At: at + downFor, Node: node, Kind: Recover},
	}
}

// RollingRestarts takes each of the n nodes down in turn: node i crashes at
// start + (i-1)*interval and recovers downFor later. With interval >
// downFor at most one node is ever down.
func RollingRestarts(n int, start, interval, downFor time.Duration) Schedule {
	var s Schedule
	for i := 1; i <= n; i++ {
		at := start + time.Duration(i-1)*interval
		s = append(s, Blip(simnet.NodeID(i), at, downFor)...)
	}
	return s.Sorted()
}

// RandomChurn generates random crash/recovery cycles over [0, duration):
// crash inter-arrivals are exponential with mean mtbf, outages exponential
// with mean mttr, victims uniform among the currently-up nodes — but never
// more than maxDown nodes are down at once, so a majority of an n-node
// system stays available throughout (use maxDown = (n-1)/2).
func RandomChurn(rng *rand.Rand, n int, duration, mtbf, mttr time.Duration, maxDown int) Schedule {
	if maxDown < 1 || n < 1 || mtbf <= 0 || mttr <= 0 {
		return nil
	}
	var s Schedule
	upAt := make([]time.Duration, n+1) // node -> time it is next up
	downCount := func(t time.Duration) (int, []simnet.NodeID) {
		count := 0
		var up []simnet.NodeID
		for i := 1; i <= n; i++ {
			if upAt[i] > t {
				count++
			} else {
				up = append(up, simnet.NodeID(i))
			}
		}
		return count, up
	}
	t := time.Duration(rng.ExpFloat64() * float64(mtbf))
	for t < duration {
		count, up := downCount(t)
		if count < maxDown && len(up) > 0 {
			victim := up[rng.Intn(len(up))]
			outage := time.Duration(rng.ExpFloat64() * float64(mttr))
			if outage <= 0 {
				outage = time.Millisecond
			}
			s = append(s,
				Event{At: t, Node: victim, Kind: Crash},
				Event{At: t + outage, Node: victim, Kind: Recover},
			)
			upAt[victim] = t + outage
		}
		t += time.Duration(rng.ExpFloat64() * float64(mtbf))
	}
	return s.Sorted()
}
