package failure

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/simnet"
)

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || Recover.String() != "recover" {
		t.Fatal("kind names")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestBlip(t *testing.T) {
	s := Blip(3, 10*time.Millisecond, 5*time.Millisecond)
	if err := s.Validate(5, 2); err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Kind != Crash || s[1].Kind != Recover {
		t.Fatalf("schedule = %+v", s)
	}
	if s.Span() != 15*time.Millisecond {
		t.Fatalf("span = %v", s.Span())
	}
}

func TestRollingRestarts(t *testing.T) {
	s := RollingRestarts(5, 0, 100*time.Millisecond, 50*time.Millisecond)
	if err := s.Validate(5, 1); err != nil {
		t.Fatalf("rolling restarts overlap: %v", err)
	}
	if len(s) != 10 {
		t.Fatalf("events = %d", len(s))
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []Schedule{
		{{At: -1, Node: 1, Kind: Crash}},
		{{At: 0, Node: 9, Kind: Crash}},
		{{At: 0, Node: 1, Kind: Recover}},
		{{At: 0, Node: 1, Kind: Crash}, {At: 1, Node: 1, Kind: Crash}},
		{{At: 0, Node: 1, Kind: Kind(7)}},
		{{At: 0, Node: 1, Kind: Crash}, {At: 0, Node: 2, Kind: Crash}}, // maxDown 1
	}
	for i, s := range cases {
		if err := s.Validate(5, 1); err == nil {
			t.Fatalf("case %d validated: %+v", i, s)
		}
	}
}

func TestPropertyRandomChurnRespectsMaxDown(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%7) + 3 // 3..9
		maxDown := (n - 1) / 2
		rng := rand.New(rand.NewSource(seed))
		s := RandomChurn(rng, n, 2*time.Second, 50*time.Millisecond, 80*time.Millisecond, maxDown)
		return s.Validate(n, maxDown) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChurnDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if s := RandomChurn(rng, 5, time.Second, 50*time.Millisecond, 50*time.Millisecond, 0); s != nil {
		t.Fatal("maxDown 0 produced events")
	}
	if s := RandomChurn(rng, 0, time.Second, 50*time.Millisecond, 50*time.Millisecond, 1); s != nil {
		t.Fatal("n 0 produced events")
	}
}

type fakeTarget struct {
	log []string
}

func (f *fakeTarget) Crash(n simnet.NodeID)   { f.log = append(f.log, fmt.Sprintf("crash %d", n)) }
func (f *fakeTarget) Recover(n simnet.NodeID) { f.log = append(f.log, fmt.Sprintf("recover %d", n)) }

func TestApplyOrdersEvents(t *testing.T) {
	s := Schedule{
		{At: 20 * time.Millisecond, Node: 2, Kind: Recover},
		{At: 10 * time.Millisecond, Node: 2, Kind: Crash},
	}
	var fired []func()
	var times []time.Duration
	sched := func(d time.Duration, fn func()) {
		times = append(times, d)
		fired = append(fired, fn)
	}
	target := &fakeTarget{}
	s.Apply(sched, target)
	if times[0] != 10*time.Millisecond || times[1] != 20*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
	for _, fn := range fired {
		fn()
	}
	if target.log[0] != "crash 2" || target.log[1] != "recover 2" {
		t.Fatalf("log = %v", target.log)
	}
}

// Integration: a cluster survives sustained random churn — every surviving
// update commits, mutual exclusion holds, and all replicas reconverge.
func TestChurnAgainstCluster(t *testing.T) {
	const n = 5
	c, err := desengine.New(desengine.Config{Seed: 61, Cluster: core.Config{N: n,
		MigrationTimeout: 25 * time.Millisecond, RetryInterval: 80 * time.Millisecond,
		ClaimTimeout: 60 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	churn := RandomChurn(rng, n, 1500*time.Millisecond, 150*time.Millisecond, 120*time.Millisecond, (n-1)/2)
	if err := churn.Validate(n, (n-1)/2); err != nil {
		t.Fatal(err)
	}
	churn.Apply(func(d time.Duration, fn func()) { c.Sim().After(d, fn) }, c)

	for i := 0; i < 25; i++ {
		i := i
		home := simnet.NodeID(i%n + 1)
		c.Sim().After(time.Duration(i)*60*time.Millisecond, func() {
			_ = c.Submit(home, core.Set("k", fmt.Sprintf("v%d", i)))
		})
	}
	c.Sim().RunFor(churn.Span() + 1600*time.Millisecond)
	// Everything still down recovers by the end of the churn schedule by
	// construction? Not necessarily: recover any stragglers.
	for i := 1; i <= n; i++ {
		c.Recover(simnet.NodeID(i))
	}
	if err := c.RunUntilDone(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Settle(10 * time.Second)
	if err := c.Referee().Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	committed := 0
	for _, o := range c.Outcomes() {
		if !o.Failed {
			committed++
		}
	}
	if int(c.Server(1).Store().LastSeq()) != committed {
		t.Fatalf("LastSeq %d != committed %d", c.Server(1).Store().LastSeq(), committed)
	}
	if committed == 0 {
		t.Fatal("nothing committed under churn")
	}
}
