package failure

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestSortedCanonicalSameInstantOrder(t *testing.T) {
	// Built damage-first: at 20ms node 1 recovers AND node 2 crashes. The
	// canonical order must process the recovery first regardless of
	// construction order, or the down-count transiently overshoots.
	s := Schedule{
		{At: 20 * time.Millisecond, Node: 2, Kind: Crash},
		{At: 10 * time.Millisecond, Node: 1, Kind: Crash},
		{At: 20 * time.Millisecond, Node: 1, Kind: Recover},
	}
	if err := s.Validate(5, 1); err != nil {
		t.Fatalf("recover-before-crash ordering not applied: %v", err)
	}
	sorted := s.Sorted()
	if sorted[1].Kind != Recover || sorted[2].Kind != Crash {
		t.Fatalf("sorted = %+v", sorted)
	}
	// Reversed construction order gives the identical canonical schedule.
	rev := Schedule{s[2], s[1], s[0]}
	for i, e := range rev.Sorted() {
		if e.At != sorted[i].At || e.Kind != sorted[i].Kind || e.Node != sorted[i].Node {
			t.Fatalf("construction order leaked into canonical order: %+v", rev.Sorted())
		}
	}
}

func TestValidateRejectsRecoverOfUpNodeAtSharedInstant(t *testing.T) {
	// Node 3 is up; a same-instant Crash+Recover pair is canonically
	// recover-then-crash, so the Recover targets an up node — invalid in
	// either construction order.
	forward := Schedule{
		{At: 10 * time.Millisecond, Node: 3, Kind: Crash},
		{At: 10 * time.Millisecond, Node: 3, Kind: Recover},
	}
	backward := Schedule{forward[1], forward[0]}
	if err := forward.Validate(5, 2); err == nil {
		t.Fatal("zero-length outage validated (forward order)")
	}
	if err := backward.Validate(5, 2); err == nil {
		t.Fatal("zero-length outage validated (backward order)")
	}
}

func TestValidateMajorityReachability(t *testing.T) {
	ok := []Schedule{
		PartitionWindow(time.Millisecond, 10*time.Millisecond, []simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5}),
		LossBurst(time.Millisecond, 10*time.Millisecond, 0.3),
		append(PartitionWindow(time.Millisecond, 50*time.Millisecond, []simnet.NodeID{4, 5}),
			Blip(4, 5*time.Millisecond, 10*time.Millisecond)...),
	}
	for i, s := range ok {
		if err := s.Validate(5, 2); err != nil {
			t.Fatalf("valid schedule %d rejected: %v", i, err)
		}
	}
	bad := []Schedule{
		// No group holds 3 of 5.
		{{At: 0, Kind: Partition, Groups: [][]simnet.NodeID{{1, 2}, {3}, {4, 5}}}},
		// The majority-capable group loses a member to a crash.
		append(Schedule{{At: 0, Kind: Partition, Groups: [][]simnet.NodeID{{1, 2, 3}, {4, 5}}}},
			Event{At: time.Millisecond, Node: 3, Kind: Crash}),
		// Malformed partitions and loss levels.
		{{At: 0, Kind: Partition, Groups: [][]simnet.NodeID{{1, 1}, {2, 3, 4, 5}}}},
		{{At: 0, Kind: Partition, Groups: [][]simnet.NodeID{{9}, {1, 2, 3}}}},
		{{At: 0, Kind: Lossy, Loss: 0.99}},
		{{At: 0, Kind: Lossy, Loss: -0.1}},
	}
	for i, s := range bad {
		if err := s.Validate(5, 2); err == nil {
			t.Fatalf("bad schedule %d validated: %+v", i, s)
		}
	}
}

type fakeChaosTarget struct {
	fakeTarget
}

func (f *fakeChaosTarget) PartitionNet(groups ...[]simnet.NodeID) {
	f.log = append(f.log, fmt.Sprintf("partition %v", groups))
}
func (f *fakeChaosTarget) HealNet()          { f.log = append(f.log, "heal") }
func (f *fakeChaosTarget) SetLoss(p float64) { f.log = append(f.log, fmt.Sprintf("loss %.2f", p)) }

func TestApplyDeliversChaosEvents(t *testing.T) {
	s := Schedule{}
	s = append(s, PartitionWindow(10*time.Millisecond, 10*time.Millisecond, []simnet.NodeID{1, 2})...)
	s = append(s, LossBurst(5*time.Millisecond, 30*time.Millisecond, 0.25)...)
	var fired []func()
	run := func(target Target) []string {
		fired = fired[:0]
		s.Apply(func(_ time.Duration, fn func()) { fired = append(fired, fn) }, target)
		for _, fn := range fired {
			fn()
		}
		switch tg := target.(type) {
		case *fakeChaosTarget:
			return tg.log
		case *fakeTarget:
			return tg.log
		}
		return nil
	}
	got := run(&fakeChaosTarget{})
	want := []string{"loss 0.25", "partition [[1 2]]", "heal", "loss 0.00"}
	if len(got) != len(want) {
		t.Fatalf("chaos log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chaos log = %v, want %v", got, want)
		}
	}
	// A plain Target silently skips chaos events instead of panicking.
	if got := run(&fakeTarget{}); len(got) != 0 {
		t.Fatalf("plain target received chaos events: %v", got)
	}
}

func TestKindStringCoversChaosKinds(t *testing.T) {
	for k, want := range map[Kind]string{Partition: "partition", Heal: "heal", Lossy: "lossy"} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}
